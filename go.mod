module metaopt

go 1.22
