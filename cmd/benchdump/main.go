// Command benchdump runs the repository's hot-path benchmarks through
// testing.Benchmark and writes the results as machine-readable JSON
// (ns/op, B/op, allocs/op), so performance can be tracked in version
// control and gated in CI without parsing `go test -bench` text output.
//
// Modes:
//
//	benchdump -out BENCH_10.json           run the suite, write JSON
//	benchdump -compare old.json -against new.json -gate LOOCVParallel,PredictBatch,DatasetLoad
//	                                       diff two dumps; non-zero exit if a
//	                                       gated benchmark regressed by more
//	                                       than -threshold (default 10%)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"metaopt/internal/analysis"
	"metaopt/internal/colstore"
	"metaopt/internal/experiments"
	"metaopt/internal/lang"
	"metaopt/internal/machine"
	"metaopt/internal/ml"
	"metaopt/internal/ml/greedy"
	"metaopt/internal/ml/nn"
	"metaopt/internal/ml/tree"
	"metaopt/internal/sched"
	"metaopt/internal/serve"
	"metaopt/internal/sim"
	"metaopt/internal/transform"
	"metaopt/unroll"
	"metaopt/unroll/client"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Dump is the file format.
type Dump struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchmarks []Result `json:"benchmarks"`
}

const daxpySrc = `
kernel daxpy lang=c {
	param double a;
	double x[], y[];
	noalias;
	for i = 0 .. 4096 { y[i] = y[i] + a * x[i]; }
}`

func daxpyLoop() (*unroll.Loop, error) {
	k, err := lang.ParseKernel(daxpySrc)
	if err != nil {
		return nil, err
	}
	return lang.Lower(k)
}

// suite builds the benchmark closures. The corpus-backed entries share one
// lazily-built environment (the same configuration the bench_test.go
// harness uses), so the dump prices the benchmarks, not corpus setup. The
// cleanup function removes the on-disk dataset fixtures the persistence
// benchmarks read.
func suite() ([]struct {
	name string
	fn   func(b *testing.B)
}, func(), error) {
	cleanup := func() {}
	l, err := daxpyLoop()
	if err != nil {
		return nil, cleanup, err
	}
	env := experiments.NewEnv(experiments.Config{
		Seed: 2005, Scale: 0.15, Runs: 10,
		SVMCap: 400, TrainCap: 400, SVMSample: 150,
	})
	d, err := env.Dataset(false)
	if err != nil {
		return nil, cleanup, err
	}
	fs, err := env.Features()
	if err != nil {
		return nil, cleanup, err
	}
	sel := d.Select(fs.Union)
	nnc, err := (&nn.Trainer{}).Train(sel)
	if err != nil {
		return nil, cleanup, err
	}
	m := machine.Itanium2()
	u8, _, err := transform.Unroll(l, 8)
	if err != nil {
		return nil, cleanup, err
	}

	// Serve-path predictors: one trained model, its compiled lowering, and
	// a corpus-derived 256-query batch.
	pc, err := unroll.GenerateCorpus(5, 0.08)
	if err != nil {
		return nil, cleanup, err
	}
	pd, err := unroll.CollectDataset(pc, unroll.CollectOptions{Seed: 1, Runs: 5})
	if err != nil {
		return nil, cleanup, err
	}
	pred, err := unroll.Train(pd, unroll.TrainOptions{Algorithm: unroll.NearNeighbor})
	if err != nil {
		return nil, cleanup, err
	}
	comp, err := unroll.Compile(pred)
	if err != nil {
		return nil, cleanup, err
	}
	qc, err := unroll.GenerateCorpus(2005, 0.3)
	if err != nil {
		return nil, cleanup, err
	}
	um := unroll.Itanium2()
	var queries [][]float64
collect:
	for _, bm := range qc.Benchmarks {
		for _, lp := range bm.Loops {
			queries = append(queries, unroll.Features(lp, um))
			if len(queries) == 256 {
				break collect
			}
		}
	}

	// On-disk dataset fixtures for the persistence benchmarks: the same
	// serve-path dataset written once in the JSON release format and once
	// in the binary columnar format.
	fixtures, err := os.MkdirTemp("", "benchdump")
	if err != nil {
		return nil, cleanup, err
	}
	cleanup = func() { os.RemoveAll(fixtures) }
	jsonPath := filepath.Join(fixtures, "dataset.json")
	colPath := filepath.Join(fixtures, "dataset.cols")
	jf, err := os.Create(jsonPath)
	if err != nil {
		return nil, cleanup, err
	}
	if err := pd.Save(jf); err != nil {
		jf.Close()
		return nil, cleanup, err
	}
	if err := jf.Close(); err != nil {
		return nil, cleanup, err
	}
	if err := pd.SaveColumnar(colPath, "benchdump fixture"); err != nil {
		return nil, cleanup, err
	}
	if sel.UsableCols() == nil {
		sel.BuildColumns()
	}

	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"LOOCVParallel", func(b *testing.B) {
			tr := &tree.Trainer{MaxDepth: 4}
			for i := 0; i < b.N; i++ {
				if _, err := ml.LOOCV(tr, sel); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"LOOCVColumnar", func(b *testing.B) {
			tr := &nn.Trainer{}
			for i := 0; i < b.N; i++ {
				if _, err := tr.LOOCV(sel); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"DatasetLoadJSON", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := unroll.LoadDatasetFile(jsonPath); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"DatasetLoad", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := unroll.LoadDatasetFile(colPath); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"DatasetScan", func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				r, err := colstore.Open(colPath)
				if err != nil {
					b.Fatal(err)
				}
				cols := r.Dataset().Cols
				for c := 0; c < cols.NumChunks(); c++ {
					for _, col := range cols.Chunk(c).Feats {
						for _, v := range col {
							sink += v
						}
					}
				}
				if err := r.Close(); err != nil {
					b.Fatal(err)
				}
			}
			if sink != sink { // NaN guard keeps the scan from being elided
				b.Fatal("scan folded to NaN")
			}
		}},
		{"GreedyParallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := greedy.Select(&nn.Trainer{OneNN: true}, d, 3); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"CompilePipeline", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig()
				cfg.Noise = 0
				t := sim.NewTimer(cfg)
				for u := 1; u <= transform.MaxFactor; u++ {
					if _, err := t.Cycles(l, u); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{"MeasureAll", func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < b.N; i++ {
				t := sim.NewTimer(sim.DefaultConfig())
				if _, _, err := t.MeasureAll(l, rng); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"UnrollTransform", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := transform.Unroll(l, 8); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ListSchedule", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sched.List(analysis.Build(u8, m))
			}
		}},
		{"NNPredict", func(b *testing.B) {
			q := sel.Examples[0].Features
			for i := 0; i < b.N; i++ {
				nnc.Predict(q)
			}
		}},
		{"PredictSingleInterpreted", func(b *testing.B) {
			q := queries[0]
			for i := 0; i < b.N; i++ {
				if _, err := pred.PredictFeatures(q); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"PredictSingle", func(b *testing.B) {
			q := queries[0]
			for i := 0; i < b.N; i++ {
				comp.Predict(q)
			}
		}},
		{"PredictBatchInterpreted", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, err := pred.PredictFeatures(q); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{"PredictBatch", func(b *testing.B) {
			out := make([]int, len(queries))
			for i := 0; i < b.N; i++ {
				var err error
				out, err = comp.PredictFeaturesBatch(queries, out)
				if err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ServeTracedRequest", func(b *testing.B) {
			srv, err := serve.New(serve.Config{
				Model:          pred,
				CacheSize:      -1,
				Workers:        2,
				RequestTimeout: 30 * time.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				srv.Shutdown(ctx)
			}()
			h := srv.Handler()
			bodies := make([][]byte, len(queries))
			for i, q := range queries {
				if bodies[i], err = json.Marshal(client.PredictRequest{Features: q}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(bodies[i%len(bodies)]))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("predict: %d %s", rec.Code, rec.Body.String())
				}
			}
		}},
	}, cleanup, nil
}

func run(out string) error {
	benches, cleanup, err := suite()
	defer cleanup()
	if err != nil {
		return err
	}
	dump := Dump{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	for _, bench := range benches {
		fmt.Fprintf(os.Stderr, "running %s...\n", bench.name)
		r := testing.Benchmark(bench.fn)
		dump.Benchmarks = append(dump.Benchmarks, Result{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "  %s: %.0f ns/op  %d B/op  %d allocs/op\n",
			bench.name, dump.Benchmarks[len(dump.Benchmarks)-1].NsPerOp,
			r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func load(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]Result, len(d.Benchmarks))
	for _, r := range d.Benchmarks {
		m[r.Name] = r
	}
	return m, nil
}

// compare prints per-benchmark deltas of against relative to base and
// returns an error if any gated benchmark slowed down beyond threshold.
func compare(basePath, againstPath, gate string, threshold float64) error {
	base, err := load(basePath)
	if err != nil {
		return err
	}
	against, err := load(againstPath)
	if err != nil {
		return err
	}
	gated := map[string]bool{}
	for _, g := range strings.Split(gate, ",") {
		if g = strings.TrimSpace(g); g != "" {
			gated[g] = true
		}
	}
	var failures []string
	fmt.Printf("%-20s %14s %14s %8s\n", "benchmark", "base ns/op", "new ns/op", "delta")
	for name, b := range base {
		a, ok := against[name]
		if !ok {
			fmt.Printf("%-20s %14.0f %14s\n", name, b.NsPerOp, "(missing)")
			if gated[name] {
				failures = append(failures, fmt.Sprintf("%s missing from %s", name, againstPath))
			}
			continue
		}
		delta := (a.NsPerOp - b.NsPerOp) / b.NsPerOp
		mark := ""
		if gated[name] && delta > threshold {
			mark = "  FAIL"
			failures = append(failures, fmt.Sprintf("%s regressed %.1f%% (limit %.0f%%)", name, delta*100, threshold*100))
		}
		fmt.Printf("%-20s %14.0f %14.0f %+7.1f%%%s\n", name, b.NsPerOp, a.NsPerOp, delta*100, mark)
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func main() {
	out := flag.String("out", "BENCH_10.json", "output file for benchmark results ('-' for stdout)")
	comparePath := flag.String("compare", "", "baseline dump to compare -against (skips running benchmarks)")
	againstPath := flag.String("against", "", "candidate dump compared to -compare")
	gate := flag.String("gate", "LOOCVParallel,PredictBatch,ServeTracedRequest,DatasetLoad,LOOCVColumnar", "comma-separated benchmarks whose regression fails the comparison")
	threshold := flag.Float64("threshold", 0.10, "maximum allowed relative slowdown for gated benchmarks")
	flag.Parse()

	var err error
	if *comparePath != "" {
		if *againstPath == "" {
			err = fmt.Errorf("-compare requires -against")
		} else {
			err = compare(*comparePath, *againstPath, *gate, *threshold)
		}
	} else {
		err = run(*out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdump:", err)
		os.Exit(1)
	}
}
