// Command unrolld serves unroll-factor predictions over HTTP: it loads a
// versioned predictor artifact once at startup (train one with
// 'metaopt train') and answers prediction queries until drained.
//
// Usage:
//
//	metaopt train -o model.json
//	unrolld -model model.json -addr :8080
//
// Endpoints:
//
//	POST /v1/predict        {"source": "kernel ..."} or {"features": [...]}
//	POST /v1/predict/batch  {"loops": [{...}, ...]}
//	POST /v2/predict        v1 body + optional "model" pin and "tenant" label
//	POST /v2/predict/batch  v1 body + optional "model" pin and "tenant" label
//	POST /v1/admin/reload   {"path": "new-model.json"} (empty = re-read -model)
//	POST /v1/admin/shadow   {"path": "candidate.json", "fraction": 0.1}
//	GET  /v1/shadow/report  live-vs-shadow decision comparison
//	GET  /v1/model          identity of the served (default) artifact
//	GET  /v1/admin/models   every version resident in the model registry
//	POST /v1/admin/models/load     {"path": "...", "alias": "canary", "pin": true}
//	POST /v1/admin/models/promote  {"model": "<alias or fingerprint>"}
//	POST /v1/admin/models/evict    {"model": "<alias or fingerprint>"}
//	GET  /metrics           Prometheus text exposition
//	GET  /debug/traces      recent request traces (?format=chrome)
//	GET  /healthz, /readyz  liveness and readiness (+SLO detail)
//
// The registry holds up to -max-models versions at once (LRU-evicting
// unpinned, non-default ones); v2 requests pin any resident version by
// alias or fingerprint without touching the promoted default. With
// -registry-state the registry persists a manifest and restores resident
// versions across restarts.
//
// SIGTERM or SIGINT triggers a graceful drain: readiness flips to 503, new
// predictions are refused, admitted ones complete, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"metaopt/internal/faults"
	"metaopt/internal/obs"
	"metaopt/internal/serve"
	"metaopt/unroll"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	model := flag.String("model", "", "predictor artifact from 'metaopt train' (required)")
	queue := flag.Int("queue", 256, "admission queue depth; overflow answers 503")
	workers := flag.Int("workers", 0, "micro-batching workers (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", 32, "max loops per model dispatch")
	cache := flag.Int("cache", 4096, "prediction cache entries (negative disables)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request deadline")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown budget")
	panicThreshold := flag.Int("panic-threshold", 0, "consecutive worker panics before readiness flips to 503 (0 = default)")
	debugAddr := flag.String("debugaddr", "", "serve /debug/metrics and pprof on this address")
	sloAvailability := flag.Float64("slo-availability", 0, "availability objective in (0,1), e.g. 0.999 (0 = default)")
	sloP99 := flag.Duration("slo-p99", 0, "p99 latency objective, e.g. 250ms (0 = default)")
	slowTrace := flag.Duration("slow-trace", 0, "keep only request traces at least this slow in /debug/traces (0 = keep most recent)")
	maxModels := flag.Int("max-models", 0, "registry residency bound; unpinned non-default versions are LRU-evicted past it (0 = default)")
	registryState := flag.String("registry-state", "", "persist the model-registry manifest here and restore it on startup")
	flag.Parse()

	if err := faults.InstallFromEnv(); err != nil {
		fmt.Fprintf(os.Stderr, "unrolld: %v\n", err)
		os.Exit(1)
	}
	cfg := serve.Config{
		ModelPath:      *model,
		QueueDepth:     *queue,
		Workers:        *workers,
		MaxBatch:       *maxBatch,
		CacheSize:      *cache,
		PanicThreshold: *panicThreshold,
		RequestTimeout: *timeout,
		MaxModels:      *maxModels,
		RegistryState:  *registryState,

		SLOAvailability: *sloAvailability,
		SLOLatencyP99:   *sloP99,
		SlowTrace:       *slowTrace,
	}
	if err := run(*addr, *model, *debugAddr, *drainTimeout, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "unrolld: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, model, debugAddr string, drainTimeout time.Duration, cfg serve.Config) error {
	if model == "" {
		return fmt.Errorf("-model is required: train an artifact with 'metaopt train -o model.json'")
	}
	pred, err := unroll.LoadPredictorFile(model)
	if err != nil {
		return err
	}
	cfg.Model = pred

	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	bound, err := srv.Start(addr)
	if err != nil {
		return err
	}
	log.Printf("unrolld: serving %s model (format v%d, fingerprint %.12s…) on %s",
		pred.Algorithm(), pred.Version(), pred.Fingerprint(), bound)
	if cfp := srv.CompiledFingerprint(); cfp != "" {
		log.Printf("unrolld: compiled serve-time predictor active (%s)", cfp)
	} else {
		log.Printf("unrolld: no compiled lowering; serving interpreted model")
	}
	if debugAddr != "" {
		dbg, err := obs.ServeDebug(debugAddr)
		if err != nil {
			return err
		}
		log.Printf("unrolld: debug endpoint on %s", dbg)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	log.Printf("unrolld: %s received, draining (budget %s)", got, drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	log.Printf("unrolld: drain complete")
	return nil
}
