package main

import (
	"flag"
	"fmt"
	"os"

	"metaopt/unroll"
)

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	data := fs.String("data", "", "training dataset (labelgen JSON, CSV-free; columnar .cols detected by magic); empty = generate a small corpus")
	alg := fs.String("alg", "svm", "algorithm: nn, svm, svm-ecoc, smo, regress, tree, boosted-tree")
	seed := fs.Int64("seed", 1, "seed for corpus generation and selection")
	selectFeats := fs.Bool("select", true, "run feature selection before evaluating")
	outOfCore := fs.Bool("outofcore", false, "mmap a columnar -data file and cross-validate without materializing feature rows (nn or svm, needs -select=false)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outOfCore {
		if *data == "" {
			return fmt.Errorf("eval: -outofcore needs a columnar -data file")
		}
		if *selectFeats {
			return fmt.Errorf("eval: -outofcore needs -select=false (feature selection materializes rows)")
		}
	}
	var ds *unroll.Dataset
	if *outOfCore {
		var closeDS func() error
		var err error
		ds, closeDS, err = unroll.OpenDatasetColumnar(*data)
		if err != nil {
			return err
		}
		defer closeDS()
	} else if *data != "" {
		var err error
		ds, err = unroll.LoadDatasetFile(*data)
		if err != nil {
			return err
		}
	} else {
		fmt.Fprintln(os.Stderr, "metaopt: no -data given; generating and labeling a small corpus")
		c, err := unroll.GenerateCorpus(*seed, 0.15)
		if err != nil {
			return err
		}
		ds, err = unroll.CollectDataset(c, unroll.CollectOptions{Seed: *seed, Runs: 10})
		if err != nil {
			return err
		}
	}
	opt := unroll.TrainOptions{Algorithm: unroll.Algorithm(*alg), Seed: *seed}
	if *selectFeats {
		feats, err := unroll.SelectFeatures(ds, *seed)
		if err != nil {
			return err
		}
		opt.Features = feats
	}
	ev, err := unroll.Evaluate(ds, opt)
	if err != nil {
		return err
	}
	fmt.Print(ev.Render())
	return nil
}
