package main

import (
	"flag"
	"fmt"
	"os"

	"metaopt/unroll"
)

// loadOrCollectDataset reads a dataset file, or — when path is empty —
// generates and labels a small corpus at the given scale.
func loadOrCollectDataset(path string, m *unroll.Machine, seed int64, scale float64, runs int) (*unroll.Dataset, error) {
	if path != "" {
		return unroll.LoadDatasetFile(path)
	}
	fmt.Fprintln(os.Stderr, "metaopt: no -data given; generating and labeling a small corpus (use cmd/labelgen for the full one)")
	c, err := unroll.GenerateCorpus(seed, scale)
	if err != nil {
		return nil, err
	}
	return unroll.CollectDataset(c, unroll.CollectOptions{Machine: m, Seed: seed, Runs: runs})
}

// cmdTrain fits a predictor once and writes the versioned artifact, so
// that predict and unrolld can serve it without ever retraining.
func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	data := fs.String("data", "", "training dataset JSON (from labelgen); empty = generate a small corpus")
	out := fs.String("o", "", "artifact output path (required)")
	alg := fs.String("alg", "svm", "algorithm: nn, svm, svm-ecoc, smo, regress, tree, boosted-tree")
	mach := fs.String("mach", "itanium2", "machine model: itanium2, embedded2, wide8")
	seed := fs.Int64("seed", 1, "seed for corpus generation, selection and training")
	selectFeats := fs.Bool("select", true, "run feature selection before training")
	scale := fs.Float64("scale", 0.15, "generated-corpus scale when no -data is given")
	runs := fs.Int("runs", 10, "measurement repetitions when no -data is given")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("train: -o <artifact path> is required")
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("train: unexpected operand %q", fs.Arg(0))
	}
	m, err := machByName(*mach)
	if err != nil {
		return err
	}
	ds, err := loadOrCollectDataset(*data, m, *seed, *scale, *runs)
	if err != nil {
		return err
	}
	opt := unroll.TrainOptions{Algorithm: unroll.Algorithm(*alg), Machine: m, Seed: *seed}
	if *selectFeats {
		feats, err := unroll.SelectFeatures(ds, *seed)
		if err != nil {
			return err
		}
		opt.Features = feats
	}
	p, err := unroll.Train(ds, opt)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := p.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trained %s predictor on %d examples -> %s (format v%d, fingerprint %.12s…)\n",
		*alg, ds.Len(), *out, p.Version(), p.Fingerprint())
	return nil
}
