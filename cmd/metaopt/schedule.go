package main

import (
	"flag"
	"fmt"
	"sort"

	"metaopt/internal/analysis"
	"metaopt/internal/sched"
	"metaopt/internal/swp"
	"metaopt/internal/transform"
)

func cmdSchedule(args []string) error {
	fs := flag.NewFlagSet("schedule", flag.ExitOnError)
	u := fs.Int("u", 1, "unroll factor")
	swpOn := fs.Bool("swp", false, "software-pipeline the loop (modulo schedule)")
	mach := fs.String("mach", "itanium2", "machine model")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("schedule: want one input file")
	}
	m, err := machByName(*mach)
	if err != nil {
		return err
	}
	loops, err := loadLoops(fs.Arg(0))
	if err != nil {
		return err
	}
	for _, l := range loops {
		unrolled, info, err := transform.Unroll(l, *u)
		if err != nil {
			return err
		}
		if info.ForwardedLoads+info.CoalescedLoads+info.CoalescedStores+info.DeadStores > 0 {
			fmt.Printf("cleanups: %d loads forwarded, %d loads + %d stores coalesced, %d dead stores\n",
				info.ForwardedLoads, info.CoalescedLoads, info.CoalescedStores, info.DeadStores)
		}
		g := analysis.Build(unrolled, m)
		if *swpOn {
			r, err := swp.Schedule(g, g.MII())
			if err != nil {
				return err
			}
			fmt.Print(r.Dump(g))
		} else {
			s := sched.List(g)
			fmt.Print(s.Dump())
			util := s.Utilization()
			keys := make([]string, 0, len(util))
			for k := range util {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("  %s-unit utilization: %4.0f%%\n", k, 100*util[k])
			}
		}
		fmt.Println()
	}
	return nil
}

func cmdDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	u := fs.Int("u", 1, "unroll factor")
	mach := fs.String("mach", "itanium2", "machine model")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("dot: want one input file")
	}
	m, err := machByName(*mach)
	if err != nil {
		return err
	}
	loops, err := loadLoops(fs.Arg(0))
	if err != nil {
		return err
	}
	for _, l := range loops {
		unrolled, _, err := transform.Unroll(l, *u)
		if err != nil {
			return err
		}
		fmt.Print(analysis.Build(unrolled, m).DOT())
	}
	return nil
}
