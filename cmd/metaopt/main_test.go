package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"metaopt/internal/serve"
	"metaopt/unroll"
)

func TestMachByName(t *testing.T) {
	for _, name := range []string{"", "itanium2", "embedded2", "wide8"} {
		m, err := machByName(name)
		if err != nil || m == nil {
			t.Errorf("machByName(%q): %v", name, err)
		}
	}
	if _, err := machByName("vax"); err == nil {
		t.Error("expected error for unknown machine")
	}
}

func TestLoadLoops(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "k.loop")
	src := `kernel k lang=c { double a[]; for i = 0 .. 16 { a[i] = a[i] + 1.0; } }`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loops, err := loadLoops(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 1 || loops[0].Name != "k" {
		t.Errorf("loops = %v", loops)
	}
	if _, err := loadLoops(filepath.Join(dir, "missing.loop")); err == nil {
		t.Error("expected error for missing file")
	}
	bad := filepath.Join(dir, "bad.loop")
	if err := os.WriteFile(bad, []byte("kernel {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadLoops(bad); err == nil {
		t.Error("expected parse error")
	}
}

func TestObtainPredictorModelPathErrors(t *testing.T) {
	if _, err := obtainPredictor("/nonexistent/model.json", "", "nn", nil, 1); err == nil {
		t.Error("expected error for missing model file")
	}
	dir := t.TempDir()
	garbage := filepath.Join(dir, "model.json")
	if err := os.WriteFile(garbage, []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := obtainPredictor(garbage, "", "nn", nil, 1); err == nil {
		t.Error("expected error for garbage model file")
	}
	if _, err := obtainPredictor("", "/nonexistent/data.json", "nn", nil, 1); err == nil {
		t.Error("expected error for missing dataset file")
	}
}

// testDatasetFile collects a tiny labeled dataset and saves it as JSON.
func testDatasetFile(t *testing.T) string {
	t.Helper()
	c, err := unroll.GenerateCorpus(5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := unroll.CollectDataset(c, unroll.CollectOptions{Seed: 1, Runs: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dataset.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeLoopFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "k.loop")
	src := `kernel k lang=c { double a[], b[]; noalias; for i = 0 .. 1024 { a[i] = a[i] + b[i]; } }`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTrainFlagValidation(t *testing.T) {
	if err := cmdTrain(nil); err == nil || !strings.Contains(err.Error(), "-o") {
		t.Errorf("train without -o: %v", err)
	}
	if err := cmdTrain([]string{"-o", "x.json", "-data", "/nonexistent.json"}); err == nil {
		t.Error("expected error for missing dataset")
	}
	if err := cmdTrain([]string{"-o", "x.json", "stray-operand"}); err == nil {
		t.Error("expected error for stray operand")
	}
}

// Train once, predict many: the artifact round-trips through the
// versioned format and predict -model never retrains.
func TestTrainPredictModelRoundTrip(t *testing.T) {
	data := testDatasetFile(t)
	model := filepath.Join(t.TempDir(), "model.json")
	if err := cmdTrain([]string{"-data", data, "-alg", "nn", "-select=false", "-o", model}); err != nil {
		t.Fatalf("train: %v", err)
	}
	blob, err := os.ReadFile(model)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(blob, []byte(`"version"`)) || !bytes.Contains(blob, []byte(`"fingerprint"`)) {
		t.Error("artifact is missing version/fingerprint fields")
	}
	loopFile := writeLoopFile(t)
	if err := cmdPredict([]string{"-model", model, loopFile}); err != nil {
		t.Fatalf("predict -model: %v", err)
	}

	// An artifact claiming a future format version is rejected with an
	// actionable error, not silently misread.
	future := bytes.Replace(blob, []byte(`"version": 1`), []byte(`"version": 99`), 1)
	if bytes.Equal(future, blob) {
		t.Fatal("version field not found for bumping")
	}
	futurePath := filepath.Join(t.TempDir(), "future.json")
	if err := os.WriteFile(futurePath, future, 0o644); err != nil {
		t.Fatal(err)
	}
	err = cmdPredict([]string{"-model", futurePath, loopFile})
	if err == nil || !strings.Contains(err.Error(), "v99") {
		t.Errorf("future artifact: %v", err)
	}
}

// predict -remote queries a running unrolld service.
func TestPredictRemote(t *testing.T) {
	c, err := unroll.GenerateCorpus(5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := unroll.CollectDataset(c, unroll.CollectOptions{Seed: 1, Runs: 3})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := unroll.Train(ds, unroll.TrainOptions{Algorithm: unroll.NearNeighbor})
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{Model: pred})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	loopFile := writeLoopFile(t)
	if err := cmdPredict([]string{"-remote", "http://" + addr, loopFile}); err != nil {
		t.Fatalf("predict -remote: %v", err)
	}
	if err := cmdPredict([]string{"-remote", "http://" + addr, "-model", "x", loopFile}); err == nil {
		t.Error("expected -remote/-model conflict error")
	}
}

func TestCommandArgValidation(t *testing.T) {
	// Every file-taking subcommand rejects a missing operand.
	for name, fn := range map[string]func([]string) error{
		"features":  cmdFeatures,
		"sweep":     cmdSweep,
		"heuristic": cmdHeuristic,
		"schedule":  cmdSchedule,
		"dot":       cmdDot,
	} {
		if err := fn(nil); err == nil {
			t.Errorf("%s: expected usage error with no arguments", name)
		}
	}
}
