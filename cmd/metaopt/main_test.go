package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestMachByName(t *testing.T) {
	for _, name := range []string{"", "itanium2", "embedded2", "wide8"} {
		m, err := machByName(name)
		if err != nil || m == nil {
			t.Errorf("machByName(%q): %v", name, err)
		}
	}
	if _, err := machByName("vax"); err == nil {
		t.Error("expected error for unknown machine")
	}
}

func TestLoadLoops(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "k.loop")
	src := `kernel k lang=c { double a[]; for i = 0 .. 16 { a[i] = a[i] + 1.0; } }`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loops, err := loadLoops(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 1 || loops[0].Name != "k" {
		t.Errorf("loops = %v", loops)
	}
	if _, err := loadLoops(filepath.Join(dir, "missing.loop")); err == nil {
		t.Error("expected error for missing file")
	}
	bad := filepath.Join(dir, "bad.loop")
	if err := os.WriteFile(bad, []byte("kernel {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadLoops(bad); err == nil {
		t.Error("expected parse error")
	}
}

func TestObtainPredictorModelPathErrors(t *testing.T) {
	if _, err := obtainPredictor("/nonexistent/model.json", "", "nn", nil, 1); err == nil {
		t.Error("expected error for missing model file")
	}
	dir := t.TempDir()
	garbage := filepath.Join(dir, "model.json")
	if err := os.WriteFile(garbage, []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := obtainPredictor(garbage, "", "nn", nil, 1); err == nil {
		t.Error("expected error for garbage model file")
	}
	if _, err := obtainPredictor("", "/nonexistent/data.json", "nn", nil, 1); err == nil {
		t.Error("expected error for missing dataset file")
	}
}

func TestCommandArgValidation(t *testing.T) {
	// Every file-taking subcommand rejects a missing operand.
	for name, fn := range map[string]func([]string) error{
		"features":  cmdFeatures,
		"sweep":     cmdSweep,
		"heuristic": cmdHeuristic,
		"schedule":  cmdSchedule,
		"dot":       cmdDot,
	} {
		if err := fn(nil); err == nil {
			t.Errorf("%s: expected usage error with no arguments", name)
		}
	}
}
