// Command metaopt is the user-facing CLI: it compiles LoopLang kernels,
// prints their feature vectors, sweeps unroll factors on the machine model,
// trains predictor artifacts, and predicts factors with them.
//
// Usage:
//
//	metaopt features <file.loop>
//	metaopt sweep [-swp] [-mach itanium2|embedded2] <file.loop>
//	metaopt train -data dataset.json [-alg nn|svm|...] -o model.json
//	metaopt predict [-model model.json | -remote URL] <file.loop>
//	metaopt heuristic [-swp] <file.loop>
//
// Train once, predict many: the train subcommand persists a versioned
// artifact that predict, explain, and the unrolld service load without
// retraining.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"metaopt/unroll"
	"metaopt/unroll/client"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "features":
		err = cmdFeatures(args)
	case "sweep":
		err = cmdSweep(args)
	case "train":
		err = cmdTrain(args)
	case "predict":
		err = cmdPredict(args)
	case "heuristic":
		err = cmdHeuristic(args)
	case "schedule":
		err = cmdSchedule(args)
	case "dot":
		err = cmdDot(args)
	case "explain":
		err = cmdExplain(args)
	case "eval":
		err = cmdEval(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "metaopt: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "metaopt: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  metaopt features <file.loop>                 print the 38-feature vector of each kernel
  metaopt sweep [-swp] [-mach M] <file.loop>   time every unroll factor on the machine model
  metaopt train [-data D] [-alg A] -o M        fit a predictor once and save the artifact
  metaopt predict [-model M | -remote URL] <file>  predict unroll factors (no retraining)
  metaopt heuristic [-swp] <file.loop>         the hand-written baseline's choices
  metaopt schedule [-u N] [-swp] <file.loop>   show the scheduled loop body (bundle table / kernel)
  metaopt dot [-u N] <file.loop>               dependence graph in Graphviz format
  metaopt explain [-model M | -data D] <file>  nearest-neighbor evidence behind each prediction
  metaopt eval [-data D] [-alg A]              leave-one-out evaluation with a confusion matrix`)
}

func loadLoops(path string) ([]*unroll.Loop, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return unroll.ParseFile(string(src))
}

func machByName(name string) (*unroll.Machine, error) {
	switch name {
	case "", "itanium2":
		return unroll.Itanium2(), nil
	case "embedded2":
		return unroll.Embedded(), nil
	case "wide8":
		return unroll.Wide(), nil
	}
	return nil, fmt.Errorf("unknown machine %q", name)
}

func cmdFeatures(args []string) error {
	fs := flag.NewFlagSet("features", flag.ExitOnError)
	mach := fs.String("mach", "itanium2", "machine model: itanium2, embedded2, wide8")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("features: want one input file")
	}
	m, err := machByName(*mach)
	if err != nil {
		return err
	}
	loops, err := loadLoops(fs.Arg(0))
	if err != nil {
		return err
	}
	names := unroll.FeatureNames()
	for _, l := range loops {
		fmt.Printf("loop %s (%s, %d ops)\n", l.Name, l.Lang, l.NumOps())
		v := unroll.Features(l, m)
		for i, name := range names {
			fmt.Printf("  %-18s %10.2f\n", name, v[i])
		}
	}
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	swp := fs.Bool("swp", false, "enable software pipelining")
	mach := fs.String("mach", "itanium2", "machine model: itanium2, embedded2, wide8")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("sweep: want one input file")
	}
	m, err := machByName(*mach)
	if err != nil {
		return err
	}
	loops, err := loadLoops(fs.Arg(0))
	if err != nil {
		return err
	}
	tm := unroll.NewTimer(m, *swp)
	for _, l := range loops {
		best, timings, err := tm.Best(l)
		if err != nil {
			return err
		}
		fmt.Printf("loop %s (trip %d, %d ops, swp=%v on %s)\n", l.Name, l.TripCount, l.NumOps(), *swp, m.Name)
		fmt.Printf("  %2s %12s %10s %6s %6s %6s\n", "u", "cycles", "per-iter", "ops", "II", "spill")
		for u := 1; u <= unroll.MaxFactor; u++ {
			t := timings[u]
			mark := " "
			if u == best {
				mark = "*"
			}
			ii := "-"
			if t.Pipelined {
				ii = fmt.Sprint(t.II)
			}
			fmt.Printf("%s %2d %12d %10.2f %6d %6s %6d\n", mark, u, t.Cycles, t.PerIter, t.Ops, ii, t.Spills)
		}
		fmt.Printf("  best factor: %d; baseline heuristic: %d\n\n", best, unroll.Heuristic(l, m, *swp))
	}
	return nil
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	data := fs.String("data", "", "deprecated: retrain from this dataset per invocation (use 'metaopt train' + -model)")
	model := fs.String("model", "", "predictor artifact from 'metaopt train'")
	remote := fs.String("remote", "", "query a running unrolld fleet at these comma-separated base URLs")
	pin := fs.String("pin", "", "with -remote: pin a served model version by alias or fingerprint")
	tenant := fs.String("tenant", "", "with -remote: tenant label for per-tenant accounting")
	save := fs.String("save", "", "save the trained predictor to this path")
	alg := fs.String("alg", "svm", "algorithm when retraining: nn, svm, svm-ecoc, smo, regress, tree, boosted-tree")
	mach := fs.String("mach", "itanium2", "machine model: itanium2, embedded2, wide8")
	seed := fs.Int64("seed", 1, "seed for corpus generation and training")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("predict: want one input file")
	}
	if *remote != "" {
		if *model != "" || *data != "" {
			return fmt.Errorf("predict: -remote is exclusive of -model and -data")
		}
		return predictRemote(*remote, *mach, *pin, *tenant, fs.Arg(0))
	}
	if *pin != "" || *tenant != "" {
		return fmt.Errorf("predict: -pin and -tenant need -remote")
	}
	m, err := machByName(*mach)
	if err != nil {
		return err
	}

	p, err := obtainPredictor(*model, *data, unroll.Algorithm(*alg), m, *seed)
	if err != nil {
		return err
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		if err := p.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "saved predictor to %s\n", *save)
	}
	loops, err := loadLoops(fs.Arg(0))
	if err != nil {
		return err
	}
	for _, l := range loops {
		u, err := p.PredictCtx(context.Background(), l)
		if err != nil {
			return fmt.Errorf("predict %s: %w", l.Name, err)
		}
		line := fmt.Sprintf("loop %-16s -> unroll %d", l.Name, u)
		if n, agree, ok := p.Confidence(l); ok {
			line += fmt.Sprintf("   (%d neighbors, %.0f%% agreement)", n, 100*agree)
		}
		fmt.Println(line)
	}
	return nil
}

// predictRemote extracts each kernel's feature vector locally and asks a
// running unrolld fleet for the factors in one batch round trip. Multiple
// comma-separated endpoints are balanced and failed over by the client;
// pin and tenant route through the v2 protocol when set. The -mach flag
// must match the machine the served model was trained for.
func predictRemote(endpoints, mach, pin, tenant, path string) error {
	m, err := machByName(mach)
	if err != nil {
		return err
	}
	loops, err := loadLoops(path)
	if err != nil {
		return err
	}
	reqs := make([]client.PredictRequest, len(loops))
	for i, l := range loops {
		reqs[i] = client.PredictRequest{Features: unroll.Features(l, m)}
	}
	c, err := client.NewClient(client.Config{
		Endpoints: strings.Split(endpoints, ","),
		Retry:     &client.RetryPolicy{MaxAttempts: 3},
		Model:     pin,
		Tenant:    tenant,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var resp *client.BatchResponse
	if pin != "" || tenant != "" {
		resp, err = c.PredictBatchV2(ctx, client.BatchV2Request{Loops: reqs})
	} else {
		resp, err = c.PredictBatch(ctx, reqs)
	}
	if err != nil {
		return err
	}
	for i, res := range resp.Results {
		if res.Error != "" {
			return fmt.Errorf("predict %s: service: %s", loops[i].Name, res.Error)
		}
		fmt.Printf("loop %-16s -> unroll %d   (model %.12s…)\n", loops[i].Name, res.Factor, resp.Fingerprint)
	}
	return nil
}

func cmdHeuristic(args []string) error {
	fs := flag.NewFlagSet("heuristic", flag.ExitOnError)
	swp := fs.Bool("swp", false, "enable software pipelining")
	mach := fs.String("mach", "itanium2", "machine model: itanium2, embedded2, wide8")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("heuristic: want one input file")
	}
	m, err := machByName(*mach)
	if err != nil {
		return err
	}
	loops, err := loadLoops(fs.Arg(0))
	if err != nil {
		return err
	}
	for _, l := range loops {
		fmt.Printf("loop %-16s -> unroll %d\n", l.Name, unroll.Heuristic(l, m, *swp))
	}
	return nil
}
