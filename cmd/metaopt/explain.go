package main

import (
	"flag"
	"fmt"
	"os"

	"metaopt/unroll"
)

// obtainPredictor loads a saved artifact (the fast path that never
// retrains), or — deprecated — trains one from a dataset file, or, as a
// last resort, labels a small fresh corpus and trains.
func obtainPredictor(modelPath, dataPath string, alg unroll.Algorithm, m *unroll.Machine, seed int64) (*unroll.Predictor, error) {
	if modelPath != "" {
		f, err := os.Open(modelPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return unroll.LoadPredictor(f)
	}
	if dataPath != "" {
		fmt.Fprintln(os.Stderr, "metaopt: warning: -data retrains the model on every invocation (deprecated); train once with 'metaopt train -data ... -o model.json' and pass -model")
	}
	ds, err := loadOrCollectDataset(dataPath, m, seed, 0.15, 10)
	if err != nil {
		return nil, err
	}
	feats, err := unroll.SelectFeatures(ds, seed)
	if err != nil {
		return nil, err
	}
	return unroll.Train(ds, unroll.TrainOptions{
		Algorithm: alg, Machine: m, Features: feats, Seed: seed,
	})
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	model := fs.String("model", "", "trained predictor JSON (must be near-neighbor)")
	data := fs.String("data", "", "training dataset JSON; empty = generate a small corpus")
	mach := fs.String("mach", "itanium2", "machine model")
	k := fs.Int("k", 5, "how many nearest neighbors to show")
	seed := fs.Int64("seed", 1, "seed for corpus generation and training")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("explain: want one input file")
	}
	m, err := machByName(*mach)
	if err != nil {
		return err
	}
	p, err := obtainPredictor(*model, *data, unroll.NearNeighbor, m, *seed)
	if err != nil {
		return err
	}
	loops, err := loadLoops(fs.Arg(0))
	if err != nil {
		return err
	}
	for _, l := range loops {
		ex, err := p.Explain(l, *k)
		if err != nil {
			return err
		}
		fmt.Printf("loop %s:\n%s\n", l.Name, ex.Render())
	}
	return nil
}
