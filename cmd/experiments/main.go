// Command experiments regenerates the paper's tables and figures on the
// synthetic substrate. Each experiment prints the same rows/series the
// paper reports; EXPERIMENTS.md records paper-vs-measured values.
//
// Usage:
//
//	experiments [-run all|table2,table3,table4,figure1..figure5,summary] \
//	            [-scale 1.0] [-seed 2005] [-runs 30] [-svmcap 0] [-traincap 1500] \
//	            [-workers 0] [-cpuprofile out.pprof] [-memprofile out.pprof] \
//	            [-manifest out.json] [-trace out.json] [-debugaddr :0]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"metaopt/internal/experiments"
	"metaopt/internal/obs"
	"metaopt/internal/par"
)

func main() {
	var (
		run       = flag.String("run", "all", "comma-separated experiments: summary,table1,table2,table3,table4,figure1,figure2,figure3,figure4,figure5")
		scale     = flag.Float64("scale", 1.0, "corpus scale (1.0 = full ~3500-loop corpus)")
		seed      = flag.Int64("seed", 2005, "corpus and measurement seed")
		runs      = flag.Int("runs", 30, "measurement repetitions per timing")
		svmCap    = flag.Int("svmcap", 0, "cap on Table 2 SVM LOOCV set (0 = full)")
		trainCap  = flag.Int("traincap", 1500, "cap on SVM training set per speedup fold")
		workers   = flag.Int("workers", 0, "worker-pool width for parallel stages (0 = GOMAXPROCS, 1 = serial)")
		quiet     = flag.Bool("q", false, "suppress the end-of-run telemetry summary")
		asJSON    = flag.Bool("json", false, "emit results as JSON instead of rendered text")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		manifest  = flag.String("manifest", "", "write a machine-readable run manifest (config, versions, phases, metrics) to this file")
		traceOut  = flag.String("trace", "", "write phase spans as Chrome trace-event JSON to this file")
		debugAddr = flag.String("debugaddr", "", "serve live /debug/metrics and /debug/pprof on this address while running (\":0\" picks a port)")
	)
	flag.Parse()

	if *workers > 0 {
		par.SetLimit(*workers)
	}
	if *debugAddr != "" {
		addr, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug endpoint: http://%s/debug/metrics\n", addr)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: memprofile: %v\n", err)
			}
		}()
	}

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	cfg.Runs = *runs
	cfg.SVMCap = *svmCap
	cfg.TrainCap = *trainCap
	env := experiments.NewEnv(cfg)

	type step struct {
		name string
		fn   func() (fmt.Stringer, error)
	}
	render := func(f func() (interface{ Render() string }, error)) func() (fmt.Stringer, error) {
		return func() (fmt.Stringer, error) {
			r, err := f()
			if err != nil {
				return nil, err
			}
			if *asJSON {
				return jsonify(r)
			}
			return stringer{r.Render()}, nil
		}
	}
	steps := []step{
		{"summary", render(func() (interface{ Render() string }, error) { return experiments.Summary(env) })},
		{"table1", render(func() (interface{ Render() string }, error) { return experiments.Table1(env) })},
		{"figure3", render(func() (interface{ Render() string }, error) { return experiments.Figure3(env) })},
		{"table3", render(func() (interface{ Render() string }, error) { return experiments.Table3(env) })},
		{"table4", render(func() (interface{ Render() string }, error) { return experiments.Table4(env) })},
		{"table2", render(func() (interface{ Render() string }, error) { return experiments.Table2(env) })},
		{"figure1", render(func() (interface{ Render() string }, error) { return experiments.Figure1(env) })},
		{"figure2", render(func() (interface{ Render() string }, error) { return experiments.Figure2(env) })},
		{"figure4", render(func() (interface{ Render() string }, error) { return experiments.Figure4(env) })},
		{"figure5", render(func() (interface{ Render() string }, error) { return experiments.Figure5(env) })},
	}

	valid := map[string]bool{"all": true}
	for _, s := range steps {
		valid[s.name] = true
	}
	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		name = strings.TrimSpace(strings.ToLower(name))
		if name == "" {
			continue
		}
		if !valid[name] {
			names := make([]string, 0, len(valid))
			for n := range valid {
				names = append(names, n)
			}
			sort.Strings(names)
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (valid: %s)\n",
				name, strings.Join(names, ", "))
			os.Exit(2)
		}
		want[name] = true
	}
	all := want["all"]

	for _, s := range steps {
		if !all && !want[s.name] {
			continue
		}
		sp := obs.Begin("experiment." + s.name)
		out, err := s.fn()
		sp.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", s.name, err)
			os.Exit(1)
		}
		fmt.Println(out.String())
	}

	if !*quiet {
		obs.WriteSummary(os.Stderr)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = obs.DefaultTrace.WriteChromeTrace(f)
		}
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: trace: %v\n", err)
			os.Exit(1)
		}
	}
	if *manifest != "" {
		m := obs.BuildManifest("experiments", os.Args[1:], *seed, par.Limit(), cfg)
		if err := m.WriteFile(*manifest); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: manifest: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote manifest to %s\n", *manifest)
		}
	}
}

type stringer struct{ s string }

func (s stringer) String() string { return s.s }

// jsonify marshals an experiment result for machine consumption.
func jsonify(r any) (fmt.Stringer, error) {
	raw, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return nil, err
	}
	return stringer{string(raw)}, nil
}
