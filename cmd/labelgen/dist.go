package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"metaopt/internal/dist"
)

// runCoordinator boots the labeling coordinator: it shards the corpus,
// leases shards to workers over HTTP, and — once every shard checkpoint is
// sealed — merges them into a dataset byte-identical to a serial labelgen
// run. Restarting over the same -dir resumes from the manifest.
func runCoordinator(addr string, rc dist.RunConfig, shards int, dir, out, format string,
	leaseTTL, linger time.Duration) error {
	c, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Run:      rc,
		Shards:   shards,
		Dir:      dir,
		Out:      out,
		Format:   format,
		LeaseTTL: leaseTTL,
		Linger:   linger,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := c.Run(ctx, addr); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	return nil
}

// runWorker boots a labeling worker against a coordinator. The run
// configuration comes from the coordinator's lease responses, so a fleet
// can never mix measurement setups.
func runWorker(url, name, dir string, heartbeat time.Duration, saveEvery int) error {
	if name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w, err := dist.NewWorker(dist.WorkerConfig{
		Name:        name,
		Coordinator: url,
		Dir:         dir,
		Heartbeat:   heartbeat,
		SaveEvery:   saveEvery,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return w.Run(ctx)
}
