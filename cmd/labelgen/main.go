// Command labelgen reproduces the paper's fully automated label
// collection: it generates the 72-benchmark corpus, times every loop at
// every unroll factor (median of repeated noisy runs), applies the
// instrumentation floor and the 1.05x filter, and writes the labeled
// dataset as JSON — the equivalent of the raw loop data the authors
// released. Optionally it also dumps every kernel's LoopLang source.
//
// Long runs survive interruption: -checkpoint snapshots progress
// atomically every few benchmarks, and -resume continues from the snapshot
// with output bit-identical to an uninterrupted run.
//
// At 100× corpus scale one process is not enough; labelgen then runs as a
// fault-tolerant cluster. -coordinator serves the corpus as leased shards
// and merges the uploaded shard checkpoints into a dataset byte-identical
// to a serial run, surviving kills of itself (manifest replay) and of any
// worker (lease expiry, fencing, re-lease). -worker labels leased shards
// with the resumable collector and uploads them.
//
// Usage:
//
//	labelgen [-scale 1.0] [-replicate 1] [-seed 2005] [-runs 30] [-swp] [-workers n] \
//	         [-out dataset.json] [-dump-kernels dir] \
//	         [-checkpoint labels.ckpt] [-resume] [-checkpoint-every 8] \
//	         [-manifest out.json] [-debugaddr :0]
//
//	labelgen -coordinator 127.0.0.1:9471 -dir coord [-shards 16] \
//	         [-lease-ttl 10s] [-linger 2s] [-scale ...] [-out dataset.json]
//
//	labelgen -worker http://127.0.0.1:9471 -dir w1 [-name w1] \
//	         [-heartbeat 2s] [-checkpoint-every 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"metaopt/internal/atomicio"
	"metaopt/internal/dist"
	"metaopt/internal/faults"
	"metaopt/internal/obs"
	"metaopt/internal/par"
	"metaopt/unroll"
)

func main() {
	var (
		scale     = flag.Float64("scale", 1.0, "corpus scale (1.0 = full ~3500 loops)")
		seed      = flag.Int64("seed", 2005, "generation and measurement seed")
		runs      = flag.Int("runs", 30, "measurement repetitions per timing")
		swp       = flag.Bool("swp", false, "label with software pipelining enabled")
		out       = flag.String("out", "dataset.json", "output dataset path")
		format    = flag.String("format", "json", "output format: json, csv or colstore (binary columnar)")
		replicate = flag.Int("replicate", 1, "deterministically replicate the corpus N times (perturbed seeds, \"@rN\" names) for 10x/100x stress datasets")
		dump      = flag.String("dump-kernels", "", "directory to write kernel sources into (optional)")
		stats     = flag.Bool("stats", false, "print corpus composition statistics and exit")
		ckpt      = flag.String("checkpoint", "", "snapshot labeling progress to this file (atomic writes)")
		resume    = flag.Bool("resume", false, "continue from -checkpoint if it exists; output is bit-identical to an uninterrupted run")
		ckptEvery = flag.Int("checkpoint-every", 8, "benchmarks between checkpoint snapshots")
		manifest  = flag.String("manifest", "", "write a machine-readable run manifest to this file")
		debugAddr = flag.String("debugaddr", "", "serve live /debug/metrics and /debug/pprof on this address while running (\":0\" picks a port)")
		workers   = flag.Int("workers", 0, "parallel labeling workers in this process (0 = GOMAXPROCS); not label-affecting, so checkpoints resume across different values")

		coordAddr = flag.String("coordinator", "", "run as the cluster coordinator, serving the shard protocol on this address")
		workerURL = flag.String("worker", "", "run as a cluster worker against this coordinator URL")
		name      = flag.String("name", "", "worker name; keep it stable across restarts to resume a lease (default host-pid)")
		dir       = flag.String("dir", "", "cluster state directory (coordinator: shards+manifest; worker: local checkpoints)")
		shards    = flag.Int("shards", 16, "coordinator: number of shards to split the corpus into")
		leaseTTL  = flag.Duration("lease-ttl", 10*time.Second, "coordinator: heartbeat-extended lease deadline")
		linger    = flag.Duration("linger", 2*time.Second, "coordinator: keep telling workers to stop for this long after the merge")
		heartbeat = flag.Duration("heartbeat", 2*time.Second, "worker: lease renewal cadence")
	)
	flag.Parse()

	if err := faults.InstallFromEnv(); err != nil {
		fmt.Fprintf(os.Stderr, "labelgen: %v\n", err)
		os.Exit(1)
	}
	if *workers > 0 {
		par.SetLimit(*workers)
	}
	if *resume && *ckpt == "" {
		fmt.Fprintln(os.Stderr, "labelgen: -resume needs -checkpoint")
		os.Exit(1)
	}
	if *coordAddr != "" && *workerURL != "" {
		fmt.Fprintln(os.Stderr, "labelgen: -coordinator and -worker are mutually exclusive")
		os.Exit(1)
	}
	if *debugAddr != "" {
		addr, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "labelgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug endpoint: http://%s/debug/metrics\n", addr)
	}
	if *stats {
		if err := runStats(*scale, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "labelgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *coordAddr != "" {
		rc := dist.RunConfig{Seed: *seed, Scale: *scale, Runs: *runs, SWP: *swp, Replicate: *replicate}
		stateDir := *dir
		if stateDir == "" {
			stateDir = "dist-coordinator"
		}
		if err := runCoordinator(*coordAddr, rc, *shards, stateDir, *out, *format, *leaseTTL, *linger); err != nil {
			fmt.Fprintf(os.Stderr, "labelgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *workerURL != "" {
		stateDir := *dir
		if stateDir == "" {
			stateDir = "dist-worker"
		}
		if err := runWorker(*workerURL, *name, stateDir, *heartbeat, *ckptEvery); err != nil {
			fmt.Fprintf(os.Stderr, "labelgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*scale, *seed, *runs, *swp, *replicate, *out, *format, *dump, *ckpt, *resume, *ckptEvery); err != nil {
		fmt.Fprintf(os.Stderr, "labelgen: %v\n", err)
		os.Exit(1)
	}
	if *manifest != "" {
		type manifestConfig struct {
			Scale  float64 `json:"scale"`
			Runs   int     `json:"runs"`
			SWP    bool    `json:"swp"`
			Format string  `json:"format"`
		}
		m := obs.BuildManifest("labelgen", os.Args[1:], *seed, par.Limit(),
			manifestConfig{Scale: *scale, Runs: *runs, SWP: *swp, Format: *format})
		if err := m.WriteFile(*manifest); err != nil {
			fmt.Fprintf(os.Stderr, "labelgen: manifest: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote manifest to %s\n", *manifest)
	}
}

func run(scale float64, seed int64, runs int, swp bool, replicate int, out, format, dump, ckpt string, resume bool, ckptEvery int) error {
	sp := obs.Begin("corpus.generate")
	corpus, err := unroll.GenerateCorpusReplicated(seed, scale, replicate)
	sp.End()
	if err != nil {
		return err
	}
	total := 0
	for _, b := range corpus.Benchmarks {
		total += len(b.Loops)
	}
	fmt.Fprintf(os.Stderr, "generated %d benchmarks, %d loops\n", len(corpus.Benchmarks), total)

	if dump != "" {
		if err := dumpKernels(corpus, dump); err != nil {
			return err
		}
	}

	opt := unroll.CollectOptions{Seed: seed, Runs: runs, SWP: swp}
	var ds *unroll.Dataset
	if ckpt != "" {
		if resume {
			fmt.Fprintf(os.Stderr, "resuming from %s if present\n", ckpt)
		}
		ds, err = unroll.CollectDatasetCheckpointed(corpus, opt,
			unroll.CheckpointOptions{Path: ckpt, Resume: resume, Every: ckptEvery})
	} else {
		ds, err = unroll.CollectDataset(corpus, opt)
	}
	if err != nil {
		if ckpt != "" {
			fmt.Fprintf(os.Stderr, "labeling interrupted; progress is checkpointed in %s (rerun with -resume)\n", ckpt)
		}
		return err
	}
	fmt.Fprintf(os.Stderr, "labeled %d training examples (after the 50k-cycle floor and 1.05x filter)\n", ds.Len())

	switch format {
	case "json":
		err = atomicio.WriteFile(out, ds.Save)
	case "csv":
		err = atomicio.WriteFile(out, ds.SaveCSV)
	case "colstore":
		rc := dist.RunConfig{Seed: seed, Scale: scale, Runs: runs, SWP: swp, Replicate: replicate}
		err = ds.SaveColumnar(out, rc.Fingerprint())
	default:
		err = fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	return nil
}

func runStats(scale float64, seed int64) error {
	corpus, err := unroll.GenerateCorpus(seed, scale)
	if err != nil {
		return err
	}
	fmt.Print(corpus.ComputeStats().Render())
	return nil
}

func dumpKernels(corpus *unroll.Corpus, dir string) error {
	for _, b := range corpus.Benchmarks {
		bdir := filepath.Join(dir, string(b.Suite), b.Name)
		if err := os.MkdirAll(bdir, 0o755); err != nil {
			return err
		}
		for i, src := range b.Sources {
			path := filepath.Join(bdir, fmt.Sprintf("%s.loop", b.Loops[i].Name))
			if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(os.Stderr, "dumped kernel sources under %s\n", dir)
	return nil
}
