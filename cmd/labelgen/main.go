// Command labelgen reproduces the paper's fully automated label
// collection: it generates the 72-benchmark corpus, times every loop at
// every unroll factor (median of repeated noisy runs), applies the
// instrumentation floor and the 1.05x filter, and writes the labeled
// dataset as JSON — the equivalent of the raw loop data the authors
// released. Optionally it also dumps every kernel's LoopLang source.
//
// Long runs survive interruption: -checkpoint snapshots progress
// atomically every few benchmarks, and -resume continues from the snapshot
// with output bit-identical to an uninterrupted run.
//
// Usage:
//
//	labelgen [-scale 1.0] [-seed 2005] [-runs 30] [-swp] \
//	         [-out dataset.json] [-dump-kernels dir] \
//	         [-checkpoint labels.ckpt] [-resume] [-checkpoint-every 8] \
//	         [-manifest out.json] [-debugaddr :0]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"metaopt/internal/atomicio"
	"metaopt/internal/faults"
	"metaopt/internal/obs"
	"metaopt/internal/par"
	"metaopt/unroll"
)

func main() {
	var (
		scale     = flag.Float64("scale", 1.0, "corpus scale (1.0 = full ~3500 loops)")
		seed      = flag.Int64("seed", 2005, "generation and measurement seed")
		runs      = flag.Int("runs", 30, "measurement repetitions per timing")
		swp       = flag.Bool("swp", false, "label with software pipelining enabled")
		out       = flag.String("out", "dataset.json", "output dataset path")
		format    = flag.String("format", "json", "output format: json or csv")
		dump      = flag.String("dump-kernels", "", "directory to write kernel sources into (optional)")
		stats     = flag.Bool("stats", false, "print corpus composition statistics and exit")
		ckpt      = flag.String("checkpoint", "", "snapshot labeling progress to this file (atomic writes)")
		resume    = flag.Bool("resume", false, "continue from -checkpoint if it exists; output is bit-identical to an uninterrupted run")
		ckptEvery = flag.Int("checkpoint-every", 8, "benchmarks between checkpoint snapshots")
		manifest  = flag.String("manifest", "", "write a machine-readable run manifest to this file")
		debugAddr = flag.String("debugaddr", "", "serve live /debug/metrics and /debug/pprof on this address while running (\":0\" picks a port)")
	)
	flag.Parse()

	if err := faults.InstallFromEnv(); err != nil {
		fmt.Fprintf(os.Stderr, "labelgen: %v\n", err)
		os.Exit(1)
	}
	if *resume && *ckpt == "" {
		fmt.Fprintln(os.Stderr, "labelgen: -resume needs -checkpoint")
		os.Exit(1)
	}
	if *debugAddr != "" {
		addr, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "labelgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug endpoint: http://%s/debug/metrics\n", addr)
	}
	if *stats {
		if err := runStats(*scale, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "labelgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*scale, *seed, *runs, *swp, *out, *format, *dump, *ckpt, *resume, *ckptEvery); err != nil {
		fmt.Fprintf(os.Stderr, "labelgen: %v\n", err)
		os.Exit(1)
	}
	if *manifest != "" {
		type manifestConfig struct {
			Scale  float64 `json:"scale"`
			Runs   int     `json:"runs"`
			SWP    bool    `json:"swp"`
			Format string  `json:"format"`
		}
		m := obs.BuildManifest("labelgen", os.Args[1:], *seed, par.Limit(),
			manifestConfig{Scale: *scale, Runs: *runs, SWP: *swp, Format: *format})
		if err := m.WriteFile(*manifest); err != nil {
			fmt.Fprintf(os.Stderr, "labelgen: manifest: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote manifest to %s\n", *manifest)
	}
}

func run(scale float64, seed int64, runs int, swp bool, out, format, dump, ckpt string, resume bool, ckptEvery int) error {
	sp := obs.Begin("corpus.generate")
	corpus, err := unroll.GenerateCorpus(seed, scale)
	sp.End()
	if err != nil {
		return err
	}
	total := 0
	for _, b := range corpus.Benchmarks {
		total += len(b.Loops)
	}
	fmt.Fprintf(os.Stderr, "generated %d benchmarks, %d loops\n", len(corpus.Benchmarks), total)

	if dump != "" {
		if err := dumpKernels(corpus, dump); err != nil {
			return err
		}
	}

	opt := unroll.CollectOptions{Seed: seed, Runs: runs, SWP: swp}
	var ds *unroll.Dataset
	if ckpt != "" {
		if resume {
			fmt.Fprintf(os.Stderr, "resuming from %s if present\n", ckpt)
		}
		ds, err = unroll.CollectDatasetCheckpointed(corpus, opt,
			unroll.CheckpointOptions{Path: ckpt, Resume: resume, Every: ckptEvery})
	} else {
		ds, err = unroll.CollectDataset(corpus, opt)
	}
	if err != nil {
		if ckpt != "" {
			fmt.Fprintf(os.Stderr, "labeling interrupted; progress is checkpointed in %s (rerun with -resume)\n", ckpt)
		}
		return err
	}
	fmt.Fprintf(os.Stderr, "labeled %d training examples (after the 50k-cycle floor and 1.05x filter)\n", ds.Len())

	switch format {
	case "json":
		err = atomicio.WriteFile(out, ds.Save)
	case "csv":
		err = atomicio.WriteFile(out, ds.SaveCSV)
	default:
		err = fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	return nil
}

func runStats(scale float64, seed int64) error {
	corpus, err := unroll.GenerateCorpus(seed, scale)
	if err != nil {
		return err
	}
	fmt.Print(corpus.ComputeStats().Render())
	return nil
}

func dumpKernels(corpus *unroll.Corpus, dir string) error {
	for _, b := range corpus.Benchmarks {
		bdir := filepath.Join(dir, string(b.Suite), b.Name)
		if err := os.MkdirAll(bdir, 0o755); err != nil {
			return err
		}
		for i, src := range b.Sources {
			path := filepath.Join(bdir, fmt.Sprintf("%s.loop", b.Loops[i].Name))
			if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(os.Stderr, "dumped kernel sources under %s\n", dir)
	return nil
}
