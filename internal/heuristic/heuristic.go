// Package heuristic provides the hand-written unroll-factor heuristics the
// learned classifiers are measured against. They stand in for ORC's two
// production heuristics: the simple size/trip-count rule used when software
// pipelining is off, and the carefully tuned model-based rule (205 lines of
// C++ in ORC 2.1) used when the software pipeliner is on.
package heuristic

import (
	"metaopt/internal/analysis"
	"metaopt/internal/ir"
	"metaopt/internal/machine"
	"metaopt/internal/transform"
)

// NoSWP is the baseline unrolling rule with software pipelining disabled.
// Like most production compilers, it keys primarily on the number of
// instructions in the loop body — the "de facto standard" feature the paper
// calls out — plus basic trip-count sanity.
func NoSWP(l *ir.Loop, m *machine.Desc) int {
	if hasCall(l) {
		return 1
	}
	if l.EarlyExit {
		// Replicated side exits eat into the benefit; hedge with a small
		// factor for compact bodies rather than refusing outright.
		if l.NumOps() <= 12 {
			return 2
		}
		return 1
	}
	if t := l.TripCount; t > 0 && t <= transform.MaxFactor {
		// Short known trip: unroll fully (the loop disappears).
		return t
	}
	// Size-based: grow the body toward a target window, in powers of two.
	const targetOps = 48
	u := 1
	for u*2 <= transform.MaxFactor && (u*2)*l.NumOps() <= targetOps {
		u *= 2
	}
	// Prefer dividing a known trip count to avoid remainder loops.
	if t := l.TripCount; t > 0 {
		for u > 1 && t%u != 0 {
			u /= 2
		}
	}
	return u
}

// SWP is the baseline rule with software pipelining enabled. It models the
// fractional-II reasoning of ORC's tuned heuristic: pick the factor whose
// per-iteration initiation interval estimate is lowest, discounting factors
// that blow up register pressure or code size.
func SWP(l *ir.Loop, m *machine.Desc) int {
	if hasCall(l) || l.EarlyExit {
		// The pipeliner refuses these loops; fall back to the plain rule.
		return NoSWP(l, m)
	}
	rolled := analysis.Build(l, m)
	recN, recD := rolled.RecurrenceRatioExcluding(isIVUpdate)
	_, liveSum := rolled.LiveStats()

	// Per-source-iteration II estimate at each unroll factor. The resource
	// bound comes from the *actual* unrolled-and-cleaned body, so the rule
	// sees load coalescing and folded overhead — the reasoning ORC's tuned
	// heuristic encoded by hand. Recurrences scale with the factor.
	score := func(u int) float64 {
		body, _, err := transform.Unroll(l, u)
		if err != nil {
			return 1e18
		}
		g := analysis.Build(body, m)
		resN, resD := g.ResMII()
		ii := ceilDiv(resN, resD)
		if recD > 0 {
			if r := ceilDiv(u*recN, recD); r > ii {
				ii = r
			}
		}
		s := float64(ii) / float64(u)
		est := liveSum * u / maxInt(1, rolled.CriticalPath())
		if est > m.RotatingRegs && m.RotatingRegs > 0 {
			s += float64(est-m.RotatingRegs) * 0.05
		}
		if bytes := m.CodeBytes(len(body.Body)); bytes > m.L1IBytes/4 {
			s += float64(bytes) / float64(m.L1IBytes)
		}
		// Per-entry fixed costs amortize over the trip count: pipeline
		// fill/drain, cold code, and the rolled tail loop. Short loops
		// cannot afford big factors.
		trip := l.TripCount
		rem := 0
		if trip > 0 {
			rem = trip % u
		} else {
			trip = 100 // conservative assumption for unknown bounds
		}
		fixed := float64(4*ii) + float64(m.CodeBytes(len(body.Body)))/64*float64(m.L1IMissCycles)/2
		fixed += float64(rem * rolled.EstimatedCycleLength())
		s += fixed / float64(trip)
		return s
	}
	best := score(1)
	for u := 2; u <= transform.MaxFactor; u++ {
		if s := score(u); s < best {
			best = s
		}
	}
	// Years of tuning taught ORC that unrolling a pipelined loop pays only
	// when the initiation-interval ratio genuinely improves: take the
	// SMALLEST factor within a whisker of the best achievable ratio.
	for u := 1; u <= transform.MaxFactor; u++ {
		if score(u) <= best*1.04+1e-9 {
			return u
		}
	}
	return 1
}

// Fixed returns a heuristic that always answers the same factor (ablation
// baselines: "never unroll", "always unroll by 8").
func Fixed(u int) func(*ir.Loop, *machine.Desc) int {
	return func(*ir.Loop, *machine.Desc) int { return u }
}

func hasCall(l *ir.Loop) bool {
	return l.Count(func(o *ir.Op) bool { return o.Code == ir.OpCall }) > 0
}

func isIVUpdate(op *ir.Op) bool {
	if op.Code != ir.OpAdd {
		return false
	}
	for _, a := range op.Args {
		if a.Op == op && a.Dist == 1 {
			return true
		}
	}
	return false
}

func ceilDiv(a, b int) int {
	if b == 0 {
		return 0
	}
	return (a + b - 1) / b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
