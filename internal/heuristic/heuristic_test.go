package heuristic

import (
	"testing"

	"metaopt/internal/ir"
	"metaopt/internal/lang"
	"metaopt/internal/machine"
)

func lower(t *testing.T, src string) *ir.Loop {
	t.Helper()
	k, err := lang.ParseKernel(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	l, err := lang.Lower(k)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return l
}

func TestNoSWPSmallLoopUnrollsHard(t *testing.T) {
	l := lower(t, `
kernel small lang=c {
	double x[], y[];
	noalias;
	for i = 0 .. 4096 { y[i] = y[i] + x[i]; }
}`)
	m := machine.Itanium2()
	if u := NoSWP(l, m); u < 4 {
		t.Errorf("small loop unroll = %d, want >= 4", u)
	}
}

func TestNoSWPBigLoopStaysRolled(t *testing.T) {
	l := lower(t, `
kernel big lang=fortran {
	double a[], b[], c[], d[], e[], f[], g[], h[], o[];
	for i = 0 .. 4096 {
		o[i] = a[i]*b[i] + c[i]*d[i] + e[i]*f[i] + g[i]*h[i]
		     + a[i+1]*b[i+1] + c[i+1]*d[i+1] + e[i+1]*f[i+1] + g[i+1]*h[i+1]
		     + a[i+2]*b[i+2] + c[i+2]*d[i+2] + e[i+2]*f[i+2] + g[i+2]*h[i+2];
	}
}`)
	if u := NoSWP(l, machine.Itanium2()); u > 2 {
		t.Errorf("large-body unroll = %d, want <= 2", u)
	}
}

func TestNoSWPAvoidsEarlyExitAndCalls(t *testing.T) {
	exit := lower(t, `
kernel ex lang=c { double a[]; for i = 0 .. n { if (a[i] == 0.0) break; } }`)
	if u := NoSWP(exit, machine.Itanium2()); u > 2 {
		t.Errorf("early-exit unroll = %d, want <= 2", u)
	}
	bigExit := lower(t, `
kernel bx lang=c { double a[], b[], c[], d[]; for i = 0 .. n {
	d[i] = a[i]*b[i] + c[i]*a[i] + b[i]*c[i] + a[i+1]*b[i+1];
	if (d[i] == 0.0) break; } }`)
	if u := NoSWP(bigExit, machine.Itanium2()); u != 1 {
		t.Errorf("large early-exit unroll = %d, want 1", u)
	}
	call := lower(t, `
kernel ca lang=c { double a[]; for i = 0 .. n { a[i] = a[i] + 1.0; call f(); } }`)
	if u := NoSWP(call, machine.Itanium2()); u != 1 {
		t.Errorf("call-loop unroll = %d", u)
	}
}

func TestNoSWPFullUnrollShortTrip(t *testing.T) {
	l := lower(t, `
kernel six lang=c { double a[]; for i = 0 .. 6 { a[i] = a[i] + 1.0; } }`)
	if u := NoSWP(l, machine.Itanium2()); u != 6 {
		t.Errorf("trip-6 unroll = %d, want 6", u)
	}
}

func TestNoSWPPrefersTripDivisor(t *testing.T) {
	l := lower(t, `
kernel twelve lang=c { double a[]; for i = 0 .. 12 { a[i] = a[i]+1.0; } }`)
	l.TripCount = 12
	u := NoSWP(l, machine.Itanium2())
	if 12%u != 0 {
		t.Errorf("unroll %d does not divide trip 12", u)
	}
}

func TestSWPPicksFractionalFactor(t *testing.T) {
	// 3 FP ops on 2 F units: unrolling by 2 gives II 3 per 2 iterations.
	l := lower(t, `
kernel f3 lang=fortran {
	double a[], b[], c[], d[];
	for i = 0 .. 4096 { d[i] = a[i]*b[i] + a[i]*c[i] + b[i]*c[i]; }
}`)
	u := SWP(l, machine.Itanium2())
	if u < 2 {
		t.Errorf("fractional-II loop unroll = %d, want >= 2", u)
	}
}

func TestSWPSerialRecurrenceStaysRolled(t *testing.T) {
	l := lower(t, `
kernel ser lang=fortran {
	double a[];
	double s;
	for i = 0 .. 4096 { s = s*0.5 + a[i]; }
}`)
	// RecMII scales exactly with u: no fractional gain, so stay at 1.
	if u := SWP(l, machine.Itanium2()); u != 1 {
		t.Errorf("serial loop unroll = %d, want 1", u)
	}
}

func TestSWPFallsBackForExits(t *testing.T) {
	l := lower(t, `
kernel ex lang=c { double a[]; for i = 0 .. n { if (a[i] == 0.0) break; } }`)
	// The pipeliner refuses early-exit loops, so the SWP rule must answer
	// exactly what the plain rule answers.
	if got, want := SWP(l, machine.Itanium2()), NoSWP(l, machine.Itanium2()); got != want {
		t.Errorf("early-exit SWP unroll = %d, want fallback %d", got, want)
	}
}

func TestFixed(t *testing.T) {
	f := Fixed(8)
	if f(nil, nil) != 8 {
		t.Error("Fixed(8) wrong")
	}
}

func TestAllInRange(t *testing.T) {
	srcs := []string{
		`kernel a lang=c { double x[]; for i = 0 .. 100 { x[i] = x[i]+1.0; } }`,
		`kernel b lang=fortran { double x[], y[]; double s; for i = 0 .. n { s = s + x[i]*y[i]; } }`,
		`kernel c lang=c { int p[]; for i = 0 .. 31 { p[i] = i; } }`,
	}
	m := machine.Itanium2()
	for _, src := range srcs {
		l := lower(t, src)
		for _, f := range []func(*ir.Loop, *machine.Desc) int{NoSWP, SWP} {
			u := f(l, m)
			if u < 1 || u > 8 {
				t.Errorf("%s: factor %d out of range", l.Name, u)
			}
		}
	}
}
