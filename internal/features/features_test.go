package features

import (
	"testing"

	"metaopt/internal/lang"
	"metaopt/internal/machine"
)

func vec(t *testing.T, src string) []float64 {
	t.Helper()
	k, err := lang.ParseKernel(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	l, err := lang.Lower(k)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return Extract(l, machine.Itanium2())
}

func TestNamesComplete(t *testing.T) {
	if len(Names) != NumFeatures {
		t.Fatalf("Names has %d entries", len(Names))
	}
	seen := map[string]bool{}
	for i, n := range Names {
		if n == "" {
			t.Errorf("feature %d has no name", i)
		}
		if seen[n] {
			t.Errorf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
	if FKnownTrip != NumFeatures-1 {
		t.Errorf("index constants out of sync: FKnownTrip = %d", FKnownTrip)
	}
}

func TestIndexLookup(t *testing.T) {
	if Index("num_fp_ops") != FNumFloatOps {
		t.Error("Index(num_fp_ops) wrong")
	}
	if Index("nope") != -1 {
		t.Error("Index(nope) should be -1")
	}
}

func TestDaxpyFeatures(t *testing.T) {
	v := vec(t, `
kernel daxpy lang=c {
	param double a;
	double x[], y[];
	noalias;
	for i = 0 .. 4096 { y[i] = y[i] + a * x[i]; }
}`)
	checks := []struct {
		idx  int
		want float64
	}{
		{FNestLevel, 1},
		{FNumOps, 7},
		{FNumFloatOps, 1}, // the fused FMA
		{FNumBranches, 1},
		{FNumMemOps, 3},
		{FNumLoads, 2},
		{FNumStores, 1},
		{FStride1Refs, 3},
		{FTripCount, 4096},
		{FKnownTrip, 1},
		{FLangFortran, 0},
		{FEarlyExit, 0},
		{FIndirectRefs, 0},
		{FNumCalls, 0},
		{FNumDivides, 0},
		{FNumPredicates, 0},
	}
	for _, c := range checks {
		if v[c.idx] != c.want {
			t.Errorf("%s = %v, want %v", Names[c.idx], v[c.idx], c.want)
		}
	}
	if v[FCriticalPath] < 10 {
		t.Errorf("critical path = %v", v[FCriticalPath])
	}
	if v[FRecMII] != 1 { // induction-variable recurrence
		t.Errorf("rec mii = %v", v[FRecMII])
	}
}

func TestFortranAndUnknownTrip(t *testing.T) {
	v := vec(t, `
kernel f lang=fortran nest=3 {
	double a[];
	for i = 0 .. n { a[i] = a[i] * 2.0; }
}`)
	if v[FLangFortran] != 1 || v[FNestLevel] != 3 {
		t.Errorf("lang/nest = %v/%v", v[FLangFortran], v[FNestLevel])
	}
	if v[FTripCount] != -1 || v[FKnownTrip] != 0 {
		t.Errorf("trip = %v known = %v", v[FTripCount], v[FKnownTrip])
	}
}

func TestControlFeatures(t *testing.T) {
	v := vec(t, `
kernel ctl lang=c {
	double a[], b[];
	double m;
	for i = 0 .. n {
		if (a[i] > m) { m = a[i]; }
		if (b[i] == 0.0) break;
		call f();
	}
}`)
	if v[FNumPredicates] != 1 {
		t.Errorf("predicates = %v, want 1", v[FNumPredicates])
	}
	if v[FEarlyExit] != 1 {
		t.Error("early exit not detected")
	}
	if v[FNumCalls] != 1 {
		t.Errorf("calls = %v", v[FNumCalls])
	}
	if v[FNumBranches] != 2 { // side exit + back edge
		t.Errorf("branches = %v", v[FNumBranches])
	}
	if v[FNumImplicit] < 2 { // sel + iv
		t.Errorf("implicit = %v", v[FNumImplicit])
	}
}

func TestMemoryFeatures(t *testing.T) {
	v := vec(t, `
kernel mem lang=fortran {
	double a[], b[], c[];
	int idx[];
	for i = 0 .. 512 {
		a[i] = a[i-4] + b[8*i] + c[idx[i]] + b[0];
	}
}`)
	if v[FIndirectRefs] != 1 {
		t.Errorf("indirect = %v", v[FIndirectRefs])
	}
	if v[FWideStrideRefs] != 1 {
		t.Errorf("wide stride = %v", v[FWideStrideRefs])
	}
	if v[FStride0Refs] != 1 {
		t.Errorf("stride0 = %v", v[FStride0Refs])
	}
	if v[FMinMemDist] != 4 {
		t.Errorf("min mem dist = %v, want 4", v[FMinMemDist])
	}
	if v[FNumMemDeps] < 1 {
		t.Errorf("mem deps = %v", v[FNumMemDeps])
	}
}

func TestRecurrenceFeature(t *testing.T) {
	v := vec(t, `
kernel dot lang=fortran {
	double a[], b[];
	double s;
	for i = 0 .. 512 { s = s + a[i]*b[i]; }
}`)
	if v[FRecMII] != float64(machine.Itanium2().FPLat) {
		t.Errorf("rec mii = %v", v[FRecMII])
	}
	if v[FResMII] <= 0 {
		t.Errorf("res mii = %v", v[FResMII])
	}
}

func TestVectorsDiffer(t *testing.T) {
	a := vec(t, `
kernel a lang=c { double x[]; for i = 0 .. 64 { x[i] = x[i] + 1.0; } }`)
	b := vec(t, `
kernel b lang=fortran { double x[], y[]; double s; for i = 0 .. n { s = s + x[i]*y[2*i]; } }`)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("distinct loops produced identical feature vectors")
	}
}

func TestDescribe(t *testing.T) {
	v := make([]float64, NumFeatures)
	s := Describe(v)
	if len(s) == 0 {
		t.Error("empty description")
	}
}

func TestExtractDeterministic(t *testing.T) {
	src := `
kernel det lang=c { double x[], y[]; noalias; for i = 0 .. 100 { y[i] = x[i] * 3.0; } }`
	a := vec(t, src)
	b := vec(t, src)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("feature %s differs across runs", Names[i])
		}
	}
}

func TestDescriptionsComplete(t *testing.T) {
	if len(Descriptions) != NumFeatures {
		t.Fatalf("Descriptions has %d entries", len(Descriptions))
	}
	for i, d := range Descriptions {
		if d == "" {
			t.Errorf("feature %s lacks a description", Names[i])
		}
	}
}
