// Package features extracts the 38-element loop feature vector the paper's
// classifiers are trained on (Table 1 lists a subset). All features are
// static compiler estimates computed on the rolled loop: they describe the
// loop a heuristic would see at decision time, never runtime measurements.
package features

import (
	"fmt"

	"metaopt/internal/analysis"
	"metaopt/internal/ir"
	"metaopt/internal/machine"
)

// NumFeatures is the length of a feature vector.
const NumFeatures = 38

// Feature indices. The names mirror the paper's Table 1 descriptions plus
// the additional characteristics its experiments mention (fan-in, live
// range size, known tripcount, ...).
const (
	FNestLevel      = iota // loop nest level
	FNumOps                // operations in loop body
	FNumFloatOps           // floating point operations
	FNumBranches           // branches in loop body
	FNumMemOps             // memory operations
	FNumOperands           // operands in loop body
	FNumImplicit           // implicit (compiler-inserted) instructions
	FNumPredicates         // unique predicates
	FCriticalPath          // estimated latency of the critical path
	FCycleLength           // estimated cycle length of loop body
	FLangFortran           // language: 1 for Fortran/Fortran90, 0 for C
	FParallelComps         // number of parallel "computations"
	FMaxDepHeight          // max dependence height of computations
	FMemDepHeight          // max height of memory dependencies
	FCtrlDepHeight         // max height of control dependencies
	FAvgDepHeight          // average dependence height
	FIndirectRefs          // indirect references in loop body
	FMinMemDist            // min memory-to-memory loop-carried dependence
	FNumMemDeps            // number of memory-to-memory dependencies
	FTripCount             // tripcount (-1 if unknown)
	FNumUses               // uses in the loop
	FNumDefs               // defs in the loop
	FMaxFanIn              // max instruction fan-in in DAG
	FMeanFanIn             // mean instruction fan-in in DAG
	FLivePeak              // live range size (peak simultaneous values)
	FLiveSum               // live range size (total live cycles)
	FNumIntOps             // integer ALU operations
	FNumDivides            // divide operations (int and float)
	FNumCalls              // calls in loop body
	FNumLoads              // loads
	FNumStores             // stores
	FStride1Refs           // unit-stride references
	FStride0Refs           // loop-invariant references
	FWideStrideRefs        // references with stride beyond the cache-friendly limit
	FResMII                // resource-bound minimum initiation interval
	FRecMII                // recurrence-bound minimum initiation interval
	FEarlyExit             // 1 if the loop has a data-dependent exit
	FKnownTrip             // 1 if the tripcount is a compile-time constant
)

// Names holds a short name per feature, indexed by the constants above.
var Names = [NumFeatures]string{
	"nest_level",
	"num_ops",
	"num_fp_ops",
	"num_branches",
	"num_mem_ops",
	"num_operands",
	"num_implicit",
	"num_predicates",
	"critical_path",
	"cycle_length",
	"lang_fortran",
	"parallel_comps",
	"max_dep_height",
	"mem_dep_height",
	"ctrl_dep_height",
	"avg_dep_height",
	"indirect_refs",
	"min_mem_dist",
	"num_mem_deps",
	"tripcount",
	"num_uses",
	"num_defs",
	"max_fan_in",
	"mean_fan_in",
	"live_peak",
	"live_sum",
	"num_int_ops",
	"num_divides",
	"num_calls",
	"num_loads",
	"num_stores",
	"stride1_refs",
	"stride0_refs",
	"wide_stride_refs",
	"res_mii",
	"rec_mii",
	"early_exit",
	"known_trip",
}

// Index returns the feature index for a name, or -1.
func Index(name string) int {
	for i, n := range Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Extract computes the feature vector of a loop for a machine.
func Extract(l *ir.Loop, m *machine.Desc) []float64 {
	g := analysis.Build(l, m)
	v := make([]float64, NumFeatures)

	v[FNestLevel] = float64(l.NestLevel)
	v[FNumOps] = float64(l.NumOps())
	v[FTripCount] = float64(l.TripCount)
	if l.TripCount > 0 {
		v[FKnownTrip] = 1
	}
	if l.Lang != ir.LangC {
		v[FLangFortran] = 1
	}
	if l.EarlyExit {
		v[FEarlyExit] = 1
	}

	preds := map[int]bool{}
	for _, op := range l.Body {
		v[FNumOperands] += float64(len(op.Args))
		if op.Code.HasResult() {
			v[FNumDefs]++
		}
		for _, a := range op.Args {
			if !a.Op.Code.IsPseudo() {
				v[FNumUses]++
			}
		}
		if op.PredID != 0 {
			preds[op.PredID] = true
		}
		switch op.Code {
		case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFMA, ir.OpFDiv, ir.OpFCmp:
			v[FNumFloatOps]++
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpShl, ir.OpShr, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpCmp:
			v[FNumIntOps]++
		}
		switch op.Code {
		case ir.OpDiv, ir.OpFDiv:
			v[FNumDivides]++
		case ir.OpBr, ir.OpCondBr:
			v[FNumBranches]++
		case ir.OpCall:
			v[FNumCalls]++
		case ir.OpConv, ir.OpSel:
			v[FNumImplicit]++
		case ir.OpLoad:
			v[FNumLoads]++
			v[FNumMemOps]++
			classifyRef(op.Mem, m, v)
		case ir.OpStore:
			v[FNumStores]++
			v[FNumMemOps]++
			classifyRef(op.Mem, m, v)
		}
	}
	// The folded loop overhead (induction update) counts as one implicit
	// instruction, as ORC's would.
	v[FNumImplicit]++
	v[FNumPredicates] = float64(len(preds))

	v[FCriticalPath] = float64(g.CriticalPath())
	v[FCycleLength] = float64(g.EstimatedCycleLength())
	v[FParallelComps] = float64(len(g.Components()))
	maxH, avgH := g.DepHeights()
	v[FMaxDepHeight] = float64(maxH)
	v[FAvgDepHeight] = avgH
	v[FMemDepHeight] = float64(g.MemDepHeight())
	v[FCtrlDepHeight] = float64(g.CtrlDepHeight())
	nDeps, minDist := g.MemDeps()
	v[FNumMemDeps] = float64(nDeps)
	v[FMinMemDist] = float64(minDist)
	fanMax, fanMean := g.FanIn()
	v[FMaxFanIn] = float64(fanMax)
	v[FMeanFanIn] = fanMean
	peak, sum := g.LiveStats()
	v[FLivePeak] = float64(peak)
	v[FLiveSum] = float64(sum)

	rn, rd := g.ResMII()
	v[FResMII] = float64(rn) / float64(rd)
	cn, cd := g.RecurrenceRatio()
	if cd > 0 {
		v[FRecMII] = float64(cn) / float64(cd)
	}
	return v
}

func classifyRef(mem *ir.MemRef, m *machine.Desc, v []float64) {
	switch {
	case mem.Indirect:
		v[FIndirectRefs]++
	case mem.Stride == 1 || mem.Stride == -1:
		v[FStride1Refs]++
	case mem.Stride == 0:
		v[FStride0Refs]++
	default:
		if abs(mem.Stride) > m.StrideHitLimit {
			v[FWideStrideRefs]++
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Describe renders a feature vector with names, for debugging and the CLI.
func Describe(v []float64) string {
	out := ""
	for i, x := range v {
		out += fmt.Sprintf("%-18s %8.2f\n", Names[i], x)
	}
	return out
}

// Descriptions holds a one-line description per feature, index-aligned
// with Names — the paper's Table 1 wording where a feature appears there.
var Descriptions = [NumFeatures]string{
	"The loop nest level",
	"The number of ops. in loop body",
	"The number of floating point ops. in loop body",
	"The number of branches in loop body",
	"The number of memory ops. in loop body",
	"The number of operands in loop body",
	"The number of implicit instructions in loop body",
	"The number of unique predicates in loop body",
	"The estimated latency of the critical path of loop",
	"The estimated cycle length of loop body",
	"The language (C or Fortran)",
	"The number of parallel \"computations\" in loop",
	"The max. dependence height of computations",
	"The max. height of memory dependencies of computations",
	"The max. height of control dependencies of computations",
	"The average dependence height of computations",
	"The number of indirect references in loop body",
	"The min. memory-to-memory loop-carried dependence",
	"The number of memory-to-memory dependencies",
	"The tripcount of the loop (-1 if unknown)",
	"The number of uses in the loop",
	"The number of defs. in the loop",
	"The max. instruction fan-in in DAG",
	"The mean instruction fan-in in DAG",
	"The live range size (peak simultaneous values)",
	"The live range size (total live cycles)",
	"The number of integer ALU ops. in loop body",
	"The number of divides in loop body",
	"The number of calls in loop body",
	"The number of loads in loop body",
	"The number of stores in loop body",
	"The number of unit-stride references",
	"The number of loop-invariant references",
	"The number of large-stride references",
	"The resource-bound minimum initiation interval",
	"The recurrence-bound minimum initiation interval",
	"Whether the loop has a data-dependent early exit",
	"Whether the tripcount is a compile-time constant",
}
