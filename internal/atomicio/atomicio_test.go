package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"metaopt/internal/faults"
)

func write(s string) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := io.WriteString(w, s)
		return err
	}
}

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifact.json")
	if err := WriteFile(path, write("old content")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, write("new content")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new content" {
		t.Errorf("read back %q", got)
	}
}

func TestWriteFileTornWriteLeavesOldContent(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := WriteFile(path, write("precious original")); err != nil {
		t.Fatal(err)
	}

	faults.MustInstall(faults.Spec{Site: WriteSite, Kind: faults.KindTorn, Bytes: 4, Count: 1})
	err := WriteFile(path, write("replacement that tears mid-write"))
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("torn write: %v, want ErrInjected", err)
	}

	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "precious original" {
		t.Errorf("torn write corrupted the target: %q", got)
	}
	// No stray temp file left behind.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s leaked after failed write", e.Name())
		}
	}
}

func TestWriteFileWriterErrorPropagates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x")
	boom := errors.New("boom")
	if err := WriteFile(path, func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("failed write created the target")
	}
}
