// Package atomicio writes files crash-safely: content goes to a temp file
// in the destination directory, is fsynced, and is renamed over the target
// in one atomic step. A reader never observes a half-written file — it sees
// either the old content or the new, which is what lets model artifacts and
// labeling checkpoints survive a kill at any instant.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"metaopt/internal/faults"
)

// WriteSite is the fault-injection site armed inside every atomic write.
// A KindTorn spec here simulates a crash mid-write: the temp file gets a
// prefix of the content and the rename never happens.
const WriteSite = "persist.write"

// WriteFile writes the output of write to path atomically. On any error —
// including a torn write injected at WriteSite — the temp file is removed
// and a previous file at path is left untouched.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(faults.WrapWriter(WriteSite, tmp)); err != nil {
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	// Data must be durable before the rename makes it visible; otherwise a
	// crash can leave a correctly-named file with missing tail blocks.
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", tmp.Name(), err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", tmp.Name(), err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	// Persist the directory entry too, so the rename itself survives a
	// crash. Some filesystems reject fsync on directories; that is fine —
	// the write is already atomic, just not yet durable.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
