package atomicio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"metaopt/internal/faults"
)

// TestWriteFileTornAtEveryOffset proves the all-or-nothing contract
// exhaustively: for every byte offset a crash-torn write can stop at, the
// reader afterwards sees either the complete old content or the complete
// new content — never a prefix, and never a missing file.
func TestWriteFileTornAtEveryOffset(t *testing.T) {
	defer faults.Reset()
	const oldContent = "v1: the original artifact, intact"
	const newContent = "v2: replacement payload that a crash may tear anywhere"

	for off := 0; off <= len(newContent); off++ {
		t.Run(fmt.Sprintf("offset=%d", off), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "artifact.json")
			if err := WriteFile(path, write(oldContent)); err != nil {
				t.Fatal(err)
			}

			faults.Reset()
			faults.MustInstall(faults.Spec{
				Site: WriteSite, Kind: faults.KindTorn, Bytes: int64(off), Count: 1,
			})
			err := WriteFile(path, write(newContent))
			faults.Reset()

			// The payload lands in one Write call, so the torn budget only
			// suffices when it covers the whole payload.
			wantTorn := off < len(newContent)
			if wantTorn && !errors.Is(err, faults.ErrInjected) {
				t.Fatalf("offset %d: %v, want ErrInjected", off, err)
			}
			if !wantTorn && err != nil {
				t.Fatalf("offset %d: %v, want success", off, err)
			}

			got, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatalf("offset %d: target unreadable after torn write: %v", off, rerr)
			}
			want := newContent
			if wantTorn {
				want = oldContent
			}
			if string(got) != want {
				t.Fatalf("offset %d: read back %q, want %q — torn write was observable", off, got, want)
			}

			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if strings.Contains(e.Name(), ".tmp-") {
					t.Fatalf("offset %d: temp file %s leaked", off, e.Name())
				}
			}
		})
	}
}
