// Package serve is the online prediction service behind cmd/unrolld: an
// HTTP/JSON server that loads a versioned predictor artifact once and
// answers unroll-factor queries for sustained concurrent traffic.
//
// The data path is engineered for load rather than convenience:
//
//   - a bounded admission queue applies backpressure — when it is full the
//     server answers 503 with a Retry-After hint instead of queueing
//     unboundedly;
//   - per-request deadlines propagate through context.Context from the
//     HTTP handler into the predictor;
//   - queued requests are micro-batched through Predictor.PredictBatch, so
//     a worker drains several waiting requests per model dispatch;
//   - an LRU cache keyed by the canonicalized loop hash (which embeds the
//     model fingerprint) short-circuits repeated queries;
//   - POST /v1/admin/reload swaps the model atomically with zero dropped
//     requests — in-flight batches finish on the snapshot they started
//     with;
//   - Shutdown drains: new work is refused with 503, everything already
//     admitted completes, then the HTTP server closes.
//
// Every stage is wired into internal/obs: request/item counters, a latency
// histogram, a queue-depth gauge, cache hit/miss counters, and micro-batch
// spans, all visible on the -debugaddr endpoint alongside pprof.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"metaopt/internal/faults"
	"metaopt/internal/obs"
	"metaopt/internal/registry"
	"metaopt/unroll"
	"metaopt/unroll/client"
)

// Config sizes the service.
type Config struct {
	Model     *unroll.Predictor // initial model (required)
	ModelPath string            // artifact path, for reloads with no explicit path

	QueueDepth     int           // admission queue capacity (default 256)
	Workers        int           // micro-batching workers (default GOMAXPROCS)
	MaxBatch       int           // max items per model dispatch (default 32)
	CacheSize      int           // LRU entries; 0 = default 4096, negative disables
	RequestTimeout time.Duration // per-request deadline (default 5s)

	// PanicThreshold flips readiness to 503 after this many consecutive
	// worker panics (default 8): a model that panics on every request —
	// e.g. a corrupt reload candidate — takes the instance out of rotation
	// instead of crash-flapping. Any successful prediction or reload
	// resets the streak.
	PanicThreshold int

	// SLO objectives tracked over a rolling window and reported on
	// /readyz and /metrics. Availability is the success-rate objective
	// (default 0.999); SLOLatencyP99 the p99 latency objective (default
	// 250ms); SLOWindow the rolling window (default 60s).
	SLOAvailability float64
	SLOLatencyP99   time.Duration
	SLOWindow       time.Duration

	// SlowTrace keeps only request traces at least this slow in the
	// /debug/traces ring; 0 keeps the most recent requests outright.
	SlowTrace time.Duration

	// MaxModels bounds the model registry's resident versions (default 8,
	// see registry.Config); RegistryState optionally persists registry
	// residency across restarts.
	MaxModels     int
	RegistryState string
}

func (c *Config) fill() error {
	if c.Model == nil {
		return errors.New("serve: Config.Model is required")
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.PanicThreshold <= 0 {
		c.PanicThreshold = 8
	}
	if c.SLOAvailability <= 0 || c.SLOAvailability >= 1 {
		c.SLOAvailability = 0.999
	}
	if c.SLOLatencyP99 <= 0 {
		c.SLOLatencyP99 = 250 * time.Millisecond
	}
	if c.SLOWindow <= 0 {
		c.SLOWindow = 60 * time.Second
	}
	return nil
}

// Telemetry. Resolved once; the hot path is atomic adds.
var (
	mReqs       = obs.C("serve.requests")
	mBatchReqs  = obs.C("serve.requests.batch")
	mItems      = obs.C("serve.predict.items")
	mErrors     = obs.C("serve.errors")
	mRejects    = obs.C("serve.queue.rejects")
	mDeadlines  = obs.C("serve.deadline_exceeded")
	mCacheHits  = obs.C("serve.cache.hits")
	mCacheMiss  = obs.C("serve.cache.misses")
	mReloads    = obs.C("serve.model.reloads")
	mPanics     = obs.C("serve.worker_panics")
	mNonFinite  = obs.C("serve.nonfinite_features")
	mCompileErr = obs.C("serve.compile_errors")
	mQueueDepth = obs.G("serve.queue.depth")
	mCompiled   = obs.G("serve.compiled")
	mUnready    = obs.G("serve.unready_panic_streak")
	hLatencyUS  = obs.H("serve.latency_us", obs.ExpBounds(50, 2, 16))
	hBatchItems = obs.H("serve.batch.items", obs.ExpBounds(1, 2, 8))
	hQueueWait  = obs.H("serve.queue_wait_us", obs.ExpBounds(10, 2, 16))

	mShadowMirrored = obs.C("serve.shadow.mirrored")
	mShadowAgree    = obs.C("serve.shadow.agree")
	mShadowDisagree = obs.C("serve.shadow.disagree")
	mShadowErrors   = obs.C("serve.shadow.errors")
	mShadowDropped  = obs.C("serve.shadow.dropped")
	mShadowActive   = obs.G("serve.shadow.active")
)

// Request IDs tie a 500 answer to the server-side log line carrying the
// recovered panic's stack. The prefix pins the process, the counter the
// request.
var (
	reqIDPrefix = fmt.Sprintf("%08x", time.Now().UnixNano()&0xffffffff)
	reqIDSeq    atomic.Int64
)

func nextRequestID() string {
	return fmt.Sprintf("%s-%06d", reqIDPrefix, reqIDSeq.Add(1))
}

// requestID returns the caller's X-Request-Id (or X-Trace-Id) when it is
// safe to propagate, else a fresh server-side ID. Honoring the caller's ID
// lets a build farm correlate its own logs with the server's trace ring
// and panic log lines across retries.
func requestID(r *http.Request) string {
	id := r.Header.Get("X-Request-Id")
	if id == "" {
		id = r.Header.Get("X-Trace-Id")
	}
	if validRequestID(id) {
		return id
	}
	return nextRequestID()
}

// validRequestID bounds a caller-supplied ID: 1..64 bytes of
// [A-Za-z0-9._-], so log lines and trace exports can embed it verbatim.
func validRequestID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// modelInfo renders one registry version in the common admin envelope.
func modelInfo(m *registry.Model) client.ModelInfo {
	return client.ModelInfo{
		Algorithm:    string(m.Pred.Algorithm()),
		ModelVersion: m.Pred.Version(),
		Fingerprint:  m.Fingerprint(),
		Path:         m.Path,
		Compiled:     m.Compiled(),
		LoadedAt:     m.LoadedAt,
	}
}

// snapInfo is modelInfo plus the version's registry placement.
func snapInfo(snap registry.Snapshot) client.ModelInfo {
	mi := modelInfo(snap.Model)
	mi.Default = snap.Default
	mi.Pinned = snap.Pinned
	mi.Aliases = snap.Aliases
	return mi
}

// item is one loop awaiting prediction.
type item struct {
	loop  *unroll.Loop
	feats []float64
	key   string // cache key; "" = uncacheable
	reqID string // request ID, for panic-isolation log lines

	factor int
	err    error
}

// job is one admitted request: a slot in the admission queue carrying one
// item (single predict) or many (batch endpoint). The worker fills the
// items and the model snapshot, then closes done.
type job struct {
	ctx      context.Context
	items    []*item
	st       *registry.Model
	trace    *obs.RequestTrace // nil-safe; shared with the waiting handler
	enqueued time.Time
	done     chan struct{}
	once     sync.Once
}

// finish releases the waiting handler. Idempotent, so the panic-recovery
// sweep can finish a batch some of whose jobs already completed. Closing
// done happens-after the predict-stage mark, so the handler reads a
// finished trace.
func (j *job) finish() {
	j.once.Do(func() {
		j.trace.EndStage(obs.StagePredict)
		close(j.done)
	})
}

// pickup marks a job's transition from the admission queue into a worker:
// the queue-wait span ends (feeding serve.queue_wait_us) and batch
// assembly begins.
func (j *job) pickup() {
	if !j.enqueued.IsZero() {
		hQueueWait.Observe(time.Since(j.enqueued).Microseconds())
	}
	j.trace.EndStage(obs.StageQueueWait)
	j.trace.BeginStage(obs.StageBatchAssembly)
}

// Server is the prediction service. Create with New, expose with Start or
// Handler, stop with Shutdown.
type Server struct {
	cfg   Config
	reg   *registry.Registry
	cache *lru

	qmu      sync.RWMutex // guards queue against close-during-enqueue
	queue    chan *job
	draining atomic.Bool
	workers  sync.WaitGroup

	// panicStreak counts consecutive worker panics; any successful
	// prediction or a reload resets it. At cfg.PanicThreshold the server
	// reports itself unready.
	panicStreak atomic.Int64

	// slo tracks availability and p99 latency over a rolling window;
	// every request outcome feeds it with two atomic adds.
	slo *obs.SLO

	// completed counts drained jobs; drain samples it into a recent
	// jobs-per-second rate that Retry-After hints derive from.
	completed atomic.Int64
	drain     drainRate

	// shadow mirrors a fraction of live predict traffic to a candidate
	// model off the critical path; nil when no shadow is loaded.
	shadow     atomic.Pointer[shadowState]
	shadowq    chan shadowTask
	shadowWG   sync.WaitGroup
	shadowOnce sync.Once

	// tenants holds bounded per-tenant accounting for v2 traffic: a
	// request counter and an SLO slice per label, overflowing into
	// "other" past maxTenants so a label-spraying client cannot mint
	// unbounded metric names.
	tmu     sync.Mutex
	tenants map[string]*tenantStats

	// modelReqs caches per-model request counters keyed by fingerprint.
	modelReqs sync.Map // fingerprint → *obs.Counter

	reloadMu sync.Mutex
	httpSrv  *http.Server

	// preBatch, when non-nil, runs before every micro-batch dispatch.
	// Tests use it to hold the workers and saturate the queue.
	preBatch func()
}

// New builds a server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		cache:   newLRU(cfg.CacheSize),
		queue:   make(chan *job, cfg.QueueDepth),
		shadowq: make(chan shadowTask, 256),
		tenants: make(map[string]*tenantStats),
	}
	s.slo = obs.NewSLO(obs.SLOConfig{
		Name:         "serve.slo",
		Window:       cfg.SLOWindow,
		Availability: cfg.SLOAvailability,
		LatencyP99US: cfg.SLOLatencyP99.Microseconds(),
	})
	obs.DefaultRequests.SetSlowThreshold(cfg.SlowTrace)
	s.reg = registry.New(registry.Config{MaxModels: cfg.MaxModels, StatePath: cfg.RegistryState})
	if n, err := s.reg.Restore(); err != nil {
		log.Printf("serve: registry restore: %v; continuing with the boot model only", err)
	} else if n > 0 {
		log.Printf("serve: registry restored %d model version(s) from %s", n, cfg.RegistryState)
	}
	boot, err := s.reg.Insert(cfg.Model, cfg.ModelPath, "", false)
	if err != nil {
		return nil, err
	}
	// The boot artifact serves, whatever a restored manifest recorded.
	if _, err := s.reg.Promote(boot.Fingerprint()); err != nil {
		return nil, err
	}
	s.noteDefault()
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	s.shadowWG.Add(1)
	go s.shadowWorker()
	return s, nil
}

// Start listens on addr (":0" picks a free port), serves in the
// background, and returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listen: %w", err)
	}
	s.httpSrv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go s.httpSrv.Serve(ln)
	return ln.Addr().String(), nil
}

// Handler returns the service's HTTP mux, for embedding and tests.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/predict/batch", s.handleBatch)
	mux.HandleFunc("POST /v2/predict", s.handlePredictV2)
	mux.HandleFunc("POST /v2/predict/batch", s.handleBatchV2)
	mux.HandleFunc("POST /v1/admin/reload", s.handleReload)
	mux.HandleFunc("GET /v1/admin/models", s.handleModels)
	mux.HandleFunc("POST /v1/admin/models/load", s.handleModelLoad)
	mux.HandleFunc("POST /v1/admin/models/promote", s.handleModelPromote)
	mux.HandleFunc("POST /v1/admin/models/evict", s.handleModelEvict)
	mux.HandleFunc("POST /v1/admin/shadow", s.handleShadow)
	mux.HandleFunc("GET /v1/shadow/report", s.handleShadowReport)
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/traces", obs.HandleRequestTraces)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// handleMetrics publishes the SLO gauges, then renders every registry
// metric in the Prometheus text format — the scrape target a fleet
// monitor points at.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.slo.Publish()
	obs.HandleMetrics(w, r)
}

// Shutdown drains the service: new requests are refused with 503, every
// admitted request completes, then the HTTP server (if Start was used)
// closes. It returns nil only after a complete drain.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		// No enqueuer can be mid-send: enqueue holds qmu.RLock and
		// rechecks draining; taking the write lock fences them out.
		s.qmu.Lock()
		close(s.queue)
		s.qmu.Unlock()
	}
	drained := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		// Workers are the only shadow enqueuers, so once they exit the
		// shadow queue can close and its worker drain what was mirrored.
		s.shadowOnce.Do(func() { close(s.shadowq) })
		s.shadowWG.Wait()
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
	if s.httpSrv != nil {
		return s.httpSrv.Shutdown(ctx)
	}
	return nil
}

// Reload loads the artifact at path (or the startup path when empty) into
// the registry and atomically promotes it. In-flight batches finish on the
// version they resolved; no request is dropped, and the displaced default
// stays resident for rollback until the LRU bound claims it.
func (s *Server) Reload(path string) (previous, current *registry.Model, err error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	old := s.reg.Default()
	if path == "" {
		path = old.Path
	}
	if path == "" {
		return nil, nil, errors.New("serve: no artifact path: server was started from an in-memory model and the reload request named no path")
	}
	m, err := s.reg.Load(path, "", false)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: reload: %w", err)
	}
	if _, err := s.reg.Promote(m.Fingerprint()); err != nil {
		return nil, nil, fmt.Errorf("serve: reload promote: %w", err)
	}
	mReloads.Inc()
	s.modelPromoted()
	return old, m, nil
}

// modelPromoted runs after every default swap: a fresh model gets a fresh
// chance — the panic streak belongs to the model that earned it, so
// promotion clears the unready latch — and the serve.compiled gauge tracks
// which prediction path the new default answers on.
func (s *Server) modelPromoted() {
	s.panicStreak.Store(0)
	mUnready.Set(0)
	s.noteDefault()
}

// noteDefault refreshes the serve.compiled gauge from the default version.
func (s *Server) noteDefault() {
	if m := s.reg.Default(); m != nil && m.Comp != nil {
		mCompiled.Set(1)
	} else {
		mCompiled.Set(0)
	}
}

// Registry exposes the server's model registry (CLI wiring and tests).
func (s *Server) Registry() *registry.Registry { return s.reg }

// CompiledFingerprint reports the versioned fingerprint of the compiled
// lowering currently serving, or "" when the interpreted model answers.
func (s *Server) CompiledFingerprint() string {
	if m := s.reg.Default(); m != nil {
		return m.Compiled()
	}
	return ""
}

// enqueue admits a job, or reports failure when the queue is full or the
// server is draining.
func (s *Server) enqueue(j *job) bool {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.draining.Load() {
		return false
	}
	select {
	case s.queue <- j:
		mQueueDepth.Set(int64(len(s.queue)))
		return true
	default:
		return false
	}
}

// batchArena is one worker's reusable dispatch storage. Every micro-batch
// runs entirely within the worker's goroutine and every handler it touches
// is released before the next iteration, so the gathered-job list and the
// per-model groups can all be recycled without synchronization.
type batchArena struct {
	jobs   []*job
	groups []modelGroup
}

// modelGroup collects one model version's share of a merged dispatch: jobs
// that resolved to the same version, their un-cached loops, and the factor
// output. A gather that spans versions (v2 pins mid-stream, a promotion
// between admissions) dispatches once per version instead of forcing the
// whole batch onto one snapshot.
type modelGroup struct {
	st        *registry.Model
	jobs      []*job
	loops     []*unroll.Loop
	loopItems []*item
	factors   []int
}

func (ar *batchArena) reset() {
	clearPtrs(ar.jobs)
	ar.jobs = ar.jobs[:0]
	for i := range ar.groups {
		g := &ar.groups[i]
		g.st = nil
		clearPtrs(g.jobs)
		clearPtrs(g.loops)
		clearPtrs(g.loopItems)
		g.jobs, g.loops, g.loopItems = g.jobs[:0], g.loops[:0], g.loopItems[:0]
	}
	ar.groups = ar.groups[:0]
}

// group finds or opens the arena slot for one model version. The linear
// scan is exact-fit for MaxBatch-sized gathers (a handful of versions at
// most); re-extending into the truncated tail keeps each slot's slice
// capacity across dispatches.
func (ar *batchArena) group(st *registry.Model) *modelGroup {
	for i := range ar.groups {
		if ar.groups[i].st == st {
			return &ar.groups[i]
		}
	}
	if len(ar.groups) < cap(ar.groups) {
		ar.groups = ar.groups[:len(ar.groups)+1]
	} else {
		ar.groups = append(ar.groups, modelGroup{})
	}
	g := &ar.groups[len(ar.groups)-1]
	g.st = st
	return g
}

// clearPtrs nils a pointer slice so recycled arena storage doesn't pin
// dead requests (and their loops) past the dispatch that owned them.
func clearPtrs[T any](s []*T) {
	for i := range s {
		s[i] = nil
	}
}

// worker drains the admission queue, gathering up to MaxBatch items per
// model dispatch into its private arena. A panic anywhere in a dispatch is
// contained by safeRunBatch, so the worker — and with it the pool — never
// dies.
func (s *Server) worker() {
	defer s.workers.Done()
	ar := &batchArena{}
	for j := range s.queue {
		ar.reset()
		j.pickup()
		ar.jobs = append(ar.jobs, j)
		n := len(j.items)
		for n < s.cfg.MaxBatch {
			var extra *job
			select {
			case extra = <-s.queue:
			default:
			}
			if extra == nil {
				break
			}
			extra.pickup()
			ar.jobs = append(ar.jobs, extra)
			n += len(extra.items)
		}
		for _, jb := range ar.jobs {
			jb.trace.EndStage(obs.StageBatchAssembly)
			jb.trace.BeginStage(obs.StagePredict)
		}
		mQueueDepth.Set(int64(len(s.queue)))
		s.safeRunBatch(ar)
		s.completed.Add(int64(len(ar.jobs)))
	}
}

// recordPanic converts a recovered panic into the error a request reports:
// the worker_panics counter moves, the consecutive-panic streak grows (at
// cfg.PanicThreshold readiness flips), and the full stack goes to the
// server log keyed by the items' request IDs — the HTTP answer carries only
// the ID.
func (s *Server) recordPanic(reqID string, r any) *faults.PanicError {
	pe := faults.NewPanicError(r)
	mPanics.Inc()
	mUnready.Set(s.panicStreak.Add(1))
	if reqID == "" {
		reqID = "unknown"
	}
	log.Printf("serve: worker panic (request %s, streak %d/%d): %v\n%s",
		reqID, s.panicStreak.Load(), s.cfg.PanicThreshold, pe.Value, pe.Stack)
	return pe
}

// recordSuccess resets the consecutive-panic streak.
func (s *Server) recordSuccess() {
	if s.panicStreak.Load() != 0 {
		s.panicStreak.Store(0)
		mUnready.Set(0)
	}
}

// safeRunBatch is runBatch behind a last-resort panic barrier: if dispatch
// machinery itself panics (not just one item's prediction), every
// unfinished item in the gathered jobs fails with the panic error and every
// waiting handler is released. Nothing hangs, nothing crashes.
func (s *Server) safeRunBatch(ar *batchArena) {
	defer func() {
		if r := recover(); r != nil {
			pe := s.recordPanic(batchReqID(ar.jobs), r)
			for _, j := range ar.jobs {
				for _, it := range j.items {
					if it.err == nil && it.factor == 0 {
						it.err = pe
					}
				}
				j.finish()
			}
		}
	}()
	s.runBatch(ar)
}

// batchReqID names a merged dispatch in a panic log line: the first
// member request's ID (the whole gather shares one log line).
func batchReqID(jobs []*job) string {
	for _, j := range jobs {
		for _, it := range j.items {
			if it.reqID != "" {
				return it.reqID
			}
		}
	}
	return ""
}

// safePredictFeatures runs one feature-vector prediction with per-item
// panic containment, through the compiled exact path (bit-identical to the
// interpreted answer, zero-allocation) when the model has one.
func (s *Server) safePredictFeatures(st *registry.Model, it *item) (factor int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = s.recordPanic(it.reqID, r)
		}
	}()
	if err := faults.Check("serve.predict"); err != nil {
		return 0, err
	}
	if st.Comp != nil {
		return st.Comp.PredictFeatures(it.feats)
	}
	return st.Pred.PredictFeatures(it.feats)
}

// safePredictLoop runs one loop prediction with per-item panic containment.
func (s *Server) safePredictLoop(ctx context.Context, st *registry.Model, it *item) (factor int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = s.recordPanic(it.reqID, r)
		}
	}()
	if err := faults.Check("serve.predict"); err != nil {
		return 0, err
	}
	if st.Comp != nil {
		return st.Comp.PredictCtx(ctx, it.loop)
	}
	return st.Pred.PredictCtx(ctx, it.loop)
}

// safePredictBatch runs the merged model dispatch with panic containment;
// a panic reports as an error so runBatch falls back to per-item
// prediction, isolating the offending loop. A compiled model answers the
// whole batch through the float32 distance path into the arena's recycled
// factor slice; otherwise the interpreted PredictBatch allocates one.
func (s *Server) safePredictBatch(ctx context.Context, st *registry.Model, reqID string, loops []*unroll.Loop, out []int) (factors []int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = s.recordPanic(reqID, r)
		}
	}()
	if err := faults.Check("serve.batch"); err != nil {
		return nil, err
	}
	if st.Comp != nil {
		if cap(out) < len(loops) {
			out = make([]int, len(loops))
		} else {
			out = out[:len(loops)]
		}
		if err := st.Comp.PredictBatchInto(ctx, loops, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	return st.Pred.PredictBatch(ctx, loops)
}

// batchContext builds the context a merged micro-batch computes under: the
// latest deadline across the member requests, so the batch call is bounded
// but no member is cut short by a neighbor's tighter deadline. (Members
// whose own deadline passes are answered 504 by their handler regardless.)
func batchContext(jobs []*job) (context.Context, context.CancelFunc) {
	var latest time.Time
	for _, j := range jobs {
		d, ok := j.ctx.Deadline()
		if !ok {
			return context.Background(), func() {}
		}
		if d.After(latest) {
			latest = d
		}
	}
	return context.WithDeadline(context.Background(), latest)
}

// runBatch predicts every live item across the gathered jobs in one
// PredictBatch dispatch per model version, falling back to per-item
// prediction if a batch call fails so one bad loop cannot poison its
// neighbors. Each job computes on the version it resolved at admission —
// a promotion mid-flight never reroutes admitted work. All intermediate
// storage lives in the worker's arena and is recycled across dispatches.
func (s *Server) runBatch(ar *batchArena) {
	if s.preBatch != nil {
		s.preBatch()
	}
	sp := obs.Begin("serve.microbatch")
	defer sp.End()

	live := ar.jobs[:0]
	for _, j := range ar.jobs {
		if err := j.ctx.Err(); err != nil {
			for _, it := range j.items {
				it.err = err
			}
			j.finish()
			continue
		}
		live = append(live, j)
		g := ar.group(j.st)
		g.jobs = append(g.jobs, j)
		for _, it := range j.items {
			if it.feats != nil {
				it.factor, it.err = s.safePredictFeatures(j.st, it)
			} else {
				g.loops = append(g.loops, it.loop)
				g.loopItems = append(g.loopItems, it)
			}
		}
	}
	for gi := range ar.groups {
		g := &ar.groups[gi]
		if len(g.loops) == 0 {
			continue
		}
		hBatchItems.Observe(int64(len(g.loops)))
		ctx, cancel := batchContext(g.jobs)
		factors, err := s.safePredictBatch(ctx, g.st, batchReqID(g.jobs), g.loops, g.factors)
		if err == nil {
			g.factors = factors
			for i, it := range g.loopItems {
				it.factor = factors[i]
			}
		} else {
			// The merged dispatch failed or panicked: isolate the offender
			// by predicting each member individually, each behind its own
			// panic barrier.
			for _, it := range g.loopItems {
				it.factor, it.err = s.safePredictLoop(ctx, g.st, it)
			}
		}
		cancel()
	}
	for _, j := range live {
		for _, it := range j.items {
			if it.err == nil {
				mItems.Inc()
				s.recordSuccess()
				if it.key != "" {
					s.cache.put(it.key, it.factor)
				}
				s.maybeShadow(it)
			}
		}
		j.finish()
	}
}

// cacheKey canonicalizes a query for the LRU: the model fingerprint plus
// either the parsed loop's IR rendering (so formatting differences in the
// source don't split cache lines) or the raw feature vector.
func cacheKey(fingerprint, kind string, payload []byte) string {
	h := sha256.New()
	h.Write([]byte(fingerprint))
	h.Write([]byte{0})
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(payload)
	return hex.EncodeToString(h.Sum(nil))
}

// featBytesPool recycles the float64 little-endian scratch that feature
// cache keys hash through — the bytes live only for the sha256 write, so a
// per-call make was pure allocator churn on the feature-vector hot path.
var featBytesPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 8*unroll.NumFeatures)
		return &b
	},
}

// featureKey hashes a feature vector into its cache key through pooled
// encoding scratch.
func featureKey(fingerprint string, v []float64) string {
	bp := featBytesPool.Get().(*[]byte)
	b := *bp
	if cap(b) < 8*len(v) {
		b = make([]byte, 8*len(v))
	}
	b = b[:8*len(v)]
	for i, f := range v {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(f))
	}
	key := cacheKey(fingerprint, "feat", b)
	*bp = b
	featBytesPool.Put(bp)
	return key
}

// newItem validates one request entry and prepares it for the queue.
// The returned status is the HTTP code to answer when err != nil.
func newItem(st *registry.Model, req client.PredictRequest) (it *item, status int, err error) {
	switch {
	case req.Source == "" && req.Features == nil:
		return nil, http.StatusBadRequest, errors.New("one of source or features is required")
	case req.Source != "" && req.Features != nil:
		return nil, http.StatusBadRequest, errors.New("source and features are mutually exclusive")
	case req.Features != nil:
		for i, v := range req.Features {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				mNonFinite.Inc()
				return nil, http.StatusBadRequest,
					fmt.Errorf("feature %d is not finite (%v); NaN and ±Inf are rejected before they reach distance computations", i, v)
			}
		}
		return &item{
			feats: req.Features,
			key:   featureKey(st.Fingerprint(), req.Features),
		}, 0, nil
	}
	loop, err := unroll.ParseKernel(req.Source)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	return &item{
		loop: loop,
		key:  cacheKey(st.Fingerprint(), "loop", []byte(loop.String())),
	}, 0, nil
}

// tenantStats is one tenant label's accounting: request/error counters and
// an SLO slice carved from the same objectives as the whole-service SLO.
type tenantStats struct {
	reqs *obs.Counter
	errs *obs.Counter
	slo  *obs.SLO
}

// maxTenants bounds distinct tenant labels; excess traffic accounts under
// "other" so a label-spraying client cannot mint unbounded metric names.
const maxTenants = 64

// tenant resolves (or creates) the stats slot for a v2 tenant label. Empty
// labels carry no per-tenant accounting; labels that fail the request-ID
// charset rule or overflow the bound land in "other".
func (s *Server) tenant(name string) *tenantStats {
	if name == "" {
		return nil
	}
	if !validRequestID(name) {
		name = "other"
	}
	s.tmu.Lock()
	defer s.tmu.Unlock()
	t, ok := s.tenants[name]
	if !ok && len(s.tenants) >= maxTenants {
		name = "other"
		t, ok = s.tenants[name]
	}
	if !ok {
		t = &tenantStats{
			reqs: obs.C("serve.tenant." + name + ".requests"),
			errs: obs.C("serve.tenant." + name + ".errors"),
			slo: obs.NewSLO(obs.SLOConfig{
				Name:         "serve.tenant." + name + ".slo",
				Window:       s.cfg.SLOWindow,
				Availability: s.cfg.SLOAvailability,
				LatencyP99US: s.cfg.SLOLatencyP99.Microseconds(),
			}),
		}
		s.tenants[name] = t
	}
	return t
}

// modelCounter resolves the per-model request counter for a version,
// keyed by a 12-character fingerprint prefix. Cardinality is bounded by
// registry residency, so the names stay scrapeable.
func (s *Server) modelCounter(st *registry.Model) *obs.Counter {
	fp := st.Fingerprint()
	if c, ok := s.modelReqs.Load(fp); ok {
		return c.(*obs.Counter)
	}
	short := fp
	if len(short) > 12 {
		short = short[:12]
	}
	c := obs.C("serve.model." + short + ".requests")
	s.modelReqs.Store(fp, c)
	return c
}

// resolveModel maps a v2 model reference (or "" for the default) to the
// serving version, answering the request itself on failure.
func (s *Server) resolveModel(w http.ResponseWriter, ref string) (*registry.Model, bool) {
	st, err := s.reg.Resolve(ref)
	if err != nil {
		writeError(w, registryStatus(err), err.Error())
		return nil, false
	}
	return st, true
}

// registryStatus maps registry errors onto the admin API's statuses:
// unknown references are 404, refusing to evict the default is 409, and
// everything else (ambiguous prefixes, bad artifacts) is a 400.
func registryStatus(err error) int {
	switch {
	case errors.Is(err, registry.ErrNotFound), errors.Is(err, registry.ErrNoDefault):
		return http.StatusNotFound
	case errors.Is(err, registry.ErrDefault):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

// handlePredict serves POST /v1/predict; handlePredictV2 is the same
// path with the v2 routing fields honored. v1 zeroes Model and Tenant
// after the shared decode, so its wire behavior — default model, no
// tenant accounting, byte-identical response encoding — is untouched.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.servePredict(w, r, false)
}

func (s *Server) handlePredictV2(w http.ResponseWriter, r *http.Request) {
	s.servePredict(w, r, true)
}

func (s *Server) servePredict(w http.ResponseWriter, r *http.Request, v2 bool) {
	start := time.Now()
	mReqs.Inc()
	reqID := requestID(r)
	w.Header().Set("X-Request-Id", reqID)
	tr := obs.AcquireRequestTrace(reqID)
	srvOK := true      // no 5xx answered: counts toward availability
	abandoned := false // worker may still be marking the trace
	var ten *tenantStats
	defer func() {
		total := time.Since(start)
		hLatencyUS.Observe(total.Microseconds())
		s.slo.Record(total.Microseconds(), srvOK)
		if ten != nil {
			ten.slo.Record(total.Microseconds(), srvOK)
			if !srvOK {
				ten.errs.Inc()
			}
		}
		if abandoned {
			// A deadline-abandoned request leaves its trace to the garbage
			// collector — the worker may still write stage marks into it —
			// exactly like the batch buffers below.
			return
		}
		obs.DefaultRequests.Add(tr, total)
		obs.ReleaseRequestTrace(tr)
	}()

	var req client.PredictV2Request
	if !decodeBody(w, r, &req) {
		return
	}
	if !v2 {
		req.Model, req.Tenant = "", ""
	}
	st, ok := s.resolveModel(w, req.Model)
	if !ok {
		return
	}
	s.modelCounter(st).Inc()
	if ten = s.tenant(req.Tenant); ten != nil {
		ten.reqs.Inc()
	}
	it, status, err := newItem(st, req.PredictRequest)
	if err != nil {
		writeError(w, status, err.Error())
		return
	}
	it.reqID = reqID
	tr.BeginStage(obs.StageCacheLookup)
	factor, hit := s.cache.get(it.key)
	tr.EndStage(obs.StageCacheLookup)
	if hit {
		mCacheHits.Inc()
		tr.BeginStage(obs.StageEncode)
		writeJSON(w, http.StatusOK, predictResponse(st, it, factor, true))
		tr.EndStage(obs.StageEncode)
		return
	}
	mCacheMiss.Inc()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	j := &job{ctx: ctx, items: []*item{it}, st: st, trace: tr, enqueued: time.Now(), done: make(chan struct{})}
	// Queue wait opens before the enqueue so the worker (which ends it)
	// can never race the begin mark; if admission fails the span simply
	// never closes and is omitted from the record.
	tr.BeginStage(obs.StageQueueWait)
	tr.BeginStage(obs.StageAdmission)
	admitted := s.enqueue(j)
	tr.EndStage(obs.StageAdmission)
	if !admitted {
		srvOK = false
		s.rejectOverloaded(w)
		return
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		mDeadlines.Inc()
		srvOK, abandoned = false, true
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded before the prediction completed")
		return
	}
	if it.err != nil {
		code := statusFor(it.err)
		srvOK = code < 500
		writeError(w, code, publicError(it.err, reqID))
		return
	}
	tr.BeginStage(obs.StageEncode)
	writeJSON(w, http.StatusOK, predictResponse(j.st, it, it.factor, false))
	tr.EndStage(obs.StageEncode)
}

// batchBuffers is one batch request's slice storage — the results, the
// item index, and the pending list — recycled across requests. A buffer
// set returns to the pool only when the worker can no longer touch it: a
// request abandoned at its deadline leaves the set to the garbage
// collector, because the dispatch may still be writing into pending.
type batchBuffers struct {
	results []client.BatchResult
	items   []*item
	pending []*item
}

var batchBufPool = sync.Pool{New: func() any { return new(batchBuffers) }}

// prep sizes the buffer set for n loops, zeroing recycled storage.
func (bb *batchBuffers) prep(n int) {
	if cap(bb.results) < n {
		bb.results = make([]client.BatchResult, n)
		bb.items = make([]*item, n)
	} else {
		bb.results = bb.results[:n]
		bb.items = bb.items[:n]
		for i := range bb.results {
			bb.results[i] = client.BatchResult{}
			bb.items[i] = nil
		}
	}
	clearPtrs(bb.pending)
	bb.pending = bb.pending[:0]
}

// handleBatch serves POST /v1/predict/batch; handleBatchV2 adds the v2
// routing fields (see handlePredict).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.serveBatch(w, r, false)
}

func (s *Server) handleBatchV2(w http.ResponseWriter, r *http.Request) {
	s.serveBatch(w, r, true)
}

func (s *Server) serveBatch(w http.ResponseWriter, r *http.Request, v2 bool) {
	start := time.Now()
	mReqs.Inc()
	mBatchReqs.Inc()
	reqID := requestID(r)
	w.Header().Set("X-Request-Id", reqID)
	tr := obs.AcquireRequestTrace(reqID)
	srvOK := true
	abandoned := false
	var ten *tenantStats
	defer func() {
		total := time.Since(start)
		hLatencyUS.Observe(total.Microseconds())
		s.slo.Record(total.Microseconds(), srvOK)
		if ten != nil {
			ten.slo.Record(total.Microseconds(), srvOK)
			if !srvOK {
				ten.errs.Inc()
			}
		}
		if abandoned {
			return
		}
		obs.DefaultRequests.Add(tr, total)
		obs.ReleaseRequestTrace(tr)
	}()

	var req client.BatchV2Request
	if !decodeBody(w, r, &req) {
		return
	}
	if !v2 {
		req.Model, req.Tenant = "", ""
	}
	if len(req.Loops) == 0 {
		writeError(w, http.StatusBadRequest, "batch request has no loops")
		return
	}
	if len(req.Loops) > 1024 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d loops exceeds the 1024-loop limit", len(req.Loops)))
		return
	}
	st, ok := s.resolveModel(w, req.Model)
	if !ok {
		return
	}
	s.modelCounter(st).Inc()
	if ten = s.tenant(req.Tenant); ten != nil {
		ten.reqs.Inc()
	}
	bb := batchBufPool.Get().(*batchBuffers)
	bb.prep(len(req.Loops))
	recycle := true
	defer func() {
		if recycle {
			batchBufPool.Put(bb)
		}
	}()
	results := bb.results
	items := bb.items // nil where already resolved
	tr.BeginStage(obs.StageCacheLookup)
	for i, lr := range req.Loops {
		it, _, err := newItem(st, lr)
		if err != nil {
			results[i] = client.BatchResult{Error: err.Error()}
			continue
		}
		it.reqID = reqID
		if factor, ok := s.cache.get(it.key); ok {
			mCacheHits.Inc()
			results[i] = batchResult(it, factor, true, nil, reqID)
			continue
		}
		mCacheMiss.Inc()
		items[i] = it
		bb.pending = append(bb.pending, it)
	}
	tr.EndStage(obs.StageCacheLookup)
	if len(bb.pending) > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		j := &job{ctx: ctx, items: bb.pending, st: st, trace: tr, enqueued: time.Now(), done: make(chan struct{})}
		tr.BeginStage(obs.StageQueueWait)
		tr.BeginStage(obs.StageAdmission)
		admitted := s.enqueue(j)
		tr.EndStage(obs.StageAdmission)
		if !admitted {
			srvOK = false
			s.rejectOverloaded(w)
			return
		}
		select {
		case <-j.done:
		case <-ctx.Done():
			mDeadlines.Inc()
			// The worker may still be writing into the pending slice and
			// the trace; abandon both rather than recycling live storage.
			recycle = false
			srvOK, abandoned = false, true
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded before the batch completed")
			return
		}
		for i, it := range items {
			if it != nil {
				results[i] = batchResult(it, it.factor, false, it.err, reqID)
			}
		}
	}
	tr.BeginStage(obs.StageEncode)
	writeJSON(w, http.StatusOK, client.BatchResponse{
		Results:      results,
		ModelVersion: st.Pred.Version(),
		Fingerprint:  st.Fingerprint(),
	})
	tr.EndStage(obs.StageEncode)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req client.ReloadRequest
	if !decodeBody(w, r, &req) {
		return
	}
	old, cur, err := s.Reload(req.Path)
	if err != nil {
		mErrors.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp := client.ReloadResponse{
		ModelInfo: modelInfo(cur),
		Previous:  old.Fingerprint(),
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleModel reports the default (serving) model. The response carries
// the full registry snapshot fields — default flag, pin, aliases — in
// the same ModelInfo envelope the /v1/admin/models endpoints use.
func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	def := s.reg.Default()
	for _, snap := range s.reg.List() {
		if snap.Default {
			writeJSON(w, http.StatusOK, snapInfo(snap))
			return
		}
	}
	writeJSON(w, http.StatusOK, modelInfo(def))
}

// handleModels lists every resident model version.
func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	resp := client.ModelsResponse{}
	if def := s.reg.Default(); def != nil {
		resp.Default = def.Fingerprint()
	}
	for _, snap := range s.reg.List() {
		resp.Models = append(resp.Models, snapInfo(snap))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleModelLoad loads an artifact into the registry without promoting
// it: the new version serves only requests that pin it by fingerprint or
// alias until POST /v1/admin/models/promote makes it the default.
func (s *Server) handleModelLoad(w http.ResponseWriter, r *http.Request) {
	var req client.ModelLoadRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, "model load request names no artifact path")
		return
	}
	m, err := s.reg.Load(req.Path, req.Alias, req.Pin)
	if err != nil {
		mErrors.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.writeModelInfo(w, m)
}

func (s *Server) handleModelPromote(w http.ResponseWriter, r *http.Request) {
	var req client.ModelRefRequest
	if !decodeBody(w, r, &req) {
		return
	}
	m, err := s.reg.Promote(req.Model)
	if err != nil {
		writeError(w, registryStatus(err), err.Error())
		return
	}
	s.modelPromoted()
	s.writeModelInfo(w, m)
}

func (s *Server) handleModelEvict(w http.ResponseWriter, r *http.Request) {
	var req client.ModelRefRequest
	if !decodeBody(w, r, &req) {
		return
	}
	m, err := s.reg.Evict(req.Model)
	if err != nil {
		writeError(w, registryStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, modelInfo(m))
}

// writeModelInfo answers with the registry snapshot for m when it is
// still resident, falling back to the bare model info.
func (s *Server) writeModelInfo(w http.ResponseWriter, m *registry.Model) {
	for _, snap := range s.reg.List() {
		if snap.Model.Fingerprint() == m.Fingerprint() {
			writeJSON(w, http.StatusOK, snapInfo(snap))
			return
		}
	}
	writeJSON(w, http.StatusOK, modelInfo(m))
}

// readyzDetail is the 200 body of GET /readyz: readiness plus the
// rolling-window SLO reading, so a fleet dashboard gets burn-rate context
// from the same probe the load balancer uses. SLO violations do not flip
// readiness — burning error budget is an alert, not a reason to shed the
// instance.
type readyzDetail struct {
	Status string        `json:"status"`
	SLO    obs.SLOStatus `json:"slo"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if n := s.panicStreak.Load(); n >= int64(s.cfg.PanicThreshold) {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("unready: %d consecutive worker panics (threshold %d); reload a healthy model to restore readiness", n, s.cfg.PanicThreshold))
		return
	}
	writeJSON(w, http.StatusOK, readyzDetail{Status: "ok", SLO: s.slo.Status()})
}

func predictResponse(st *registry.Model, it *item, factor int, cached bool) client.PredictResponse {
	resp := client.PredictResponse{
		Factor:       factor,
		Cached:       cached,
		ModelVersion: st.Pred.Version(),
		Fingerprint:  st.Fingerprint(),
	}
	if it.loop != nil {
		resp.Loop = it.loop.Name
	}
	return resp
}

func batchResult(it *item, factor int, cached bool, err error, reqID string) client.BatchResult {
	res := client.BatchResult{Factor: factor, Cached: cached}
	if it.loop != nil {
		res.Loop = it.loop.Name
	}
	if err != nil {
		res = client.BatchResult{Error: publicError(err, reqID)}
		if it.loop != nil {
			res.Loop = it.loop.Name
		}
	}
	return res
}

// publicError renders a prediction error for the wire. A contained panic
// answers with the request ID instead of the panic value and stack — those
// stay in the server log, keyed by the same ID.
func publicError(err error, reqID string) string {
	var pe *faults.PanicError
	if errors.As(err, &pe) {
		return fmt.Sprintf("internal error: prediction worker panicked (request %s; stack in server log)", reqID)
	}
	return err.Error()
}

// statusFor maps a prediction error to an HTTP status.
func statusFor(err error) int {
	var pe *faults.PanicError
	switch {
	case errors.As(err, &pe):
		return http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusUnprocessableEntity
	}
}

// drainRate samples the completed-jobs counter into a recent
// jobs-per-second rate. Sampling is lazy — it happens on the reject path,
// which is not hot in healthy operation — and a sample younger than the
// floor returns the previous rate so a burst of rejects cannot divide by
// a near-zero interval.
type drainRate struct {
	mu     sync.Mutex
	lastNS int64
	lastN  int64
	rate   float64
}

// perSec returns the drain rate given the current completed-total.
func (d *drainRate) perSec(completed int64, now time.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	ns := now.UnixNano()
	if d.lastNS == 0 {
		d.lastNS, d.lastN = ns, completed
		return d.rate
	}
	dt := ns - d.lastNS
	if dt < int64(250*time.Millisecond) {
		return d.rate
	}
	d.rate = float64(completed-d.lastN) * 1e9 / float64(dt)
	d.lastNS, d.lastN = ns, completed
	return d.rate
}

// retryAfterHint derives a Retry-After value from the queue backlog and
// the observed drain rate: roughly how long until the queue has room,
// clamped to [1,30] seconds. An unknown or zero rate hints the maximum —
// a stalled server should not invite an immediate retry storm.
func retryAfterHint(depth int, perSec float64) int {
	if perSec <= 0 {
		return 30
	}
	secs := int(math.Ceil(float64(depth+1) / perSec))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// rejectOverloaded answers a shed request: 503 plus a Retry-After hint
// derived from the current backlog and recent drain rate.
func (s *Server) rejectOverloaded(w http.ResponseWriter) {
	mRejects.Inc()
	hint := retryAfterHint(len(s.queue), s.drain.perSec(s.completed.Load(), time.Now()))
	w.Header().Set("Retry-After", strconv.Itoa(hint))
	msg := "admission queue full; retry with backoff"
	if s.draining.Load() {
		msg = "server is draining for shutdown"
	}
	writeError(w, http.StatusServiceUnavailable, msg)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("malformed request body: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	if status >= 500 {
		mErrors.Inc()
	}
	writeJSON(w, status, client.ErrorResponse{Error: msg})
}
