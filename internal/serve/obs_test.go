package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"metaopt/internal/obs"
	"metaopt/unroll"
	"metaopt/unroll/client"
)

// newGET builds a GET request against the mux, failing the test on error.
func newGET(t *testing.T, target string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// doHandler runs one request straight through the server's mux.
func doHandler(s *Server, req *http.Request) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func TestRetryAfterHint(t *testing.T) {
	cases := []struct {
		depth  int
		perSec float64
		want   int
	}{
		{0, 0, 30},     // unknown rate: maximum backoff
		{100, -1, 30},  // nonsense rate: maximum backoff
		{0, 10, 1},     // near-empty queue, healthy drain
		{9, 10, 1},     // (9+1)/10 = 1s exactly
		{100, 10, 11},  // ceil(101/10)
		{1000, 10, 30}, // 100s backlog clamps to 30
		{5, 1000, 1},   // sub-second backlog floors at 1
	}
	for _, c := range cases {
		if got := retryAfterHint(c.depth, c.perSec); got != c.want {
			t.Errorf("retryAfterHint(%d, %v) = %d, want %d", c.depth, c.perSec, got, c.want)
		}
	}
}

func TestDrainRateSampling(t *testing.T) {
	var d drainRate
	t0 := time.Unix(1000, 0)
	if r := d.perSec(0, t0); r != 0 {
		t.Fatalf("unprimed rate %v", r)
	}
	if r := d.perSec(500, t0.Add(time.Second)); r != 500 {
		t.Fatalf("rate after 500 jobs in 1s: %v", r)
	}
	// A sample younger than the floor returns the previous rate instead of
	// dividing by a near-zero interval.
	if r := d.perSec(600, t0.Add(time.Second+100*time.Millisecond)); r != 500 {
		t.Fatalf("sub-floor resample changed the rate: %v", r)
	}
	if r := d.perSec(1000, t0.Add(2*time.Second)); r != 500 {
		t.Fatalf("second full-interval sample: %v", r)
	}
}

func TestShadowSampledFraction(t *testing.T) {
	for _, mille := range []int64{0, 1, 250, 500, 999, 1000} {
		var picked int64
		for n := int64(1); n <= 1000; n++ {
			if shadowSampled(n, mille) {
				picked++
			}
		}
		if picked != mille {
			t.Errorf("mille=%d picked %d of 1000", mille, picked)
		}
	}
}

// TestServeMetricsEndpoint scrapes GET /metrics after live traffic and
// checks the exposition covers the serve request counters, the latency
// histogram, and the published SLO gauges.
func TestServeMetricsEndpoint(t *testing.T) {
	pred := trainPredictor(t, unroll.NearNeighbor)
	s, c := newTestServer(t, Config{Model: pred, RequestTimeout: 30 * time.Second})
	ctx := context.Background()
	if _, err := c.Predict(ctx, client.PredictRequest{Source: testKernels[0]}); err != nil {
		t.Fatal(err)
	}

	req := newGET(t, "/metrics")
	rec := doHandler(s, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE serve_requests_total counter",
		"serve_requests_total ",
		`serve_latency_us_bucket{le="`,
		"serve_latency_us_sum ",
		"serve_latency_us_count ",
		"serve_queue_wait_us_count ",
		"serve_slo_availability_ppm ",
		"serve_slo_burn_rate_milli ",
		"serve_slo_p99_us ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q\n%.800s", want, body)
		}
	}
}

// TestServeRequestIDEcho checks a well-formed client X-Request-Id is
// honored and echoed, a malformed one is replaced, and X-Trace-Id works
// as the fallback header.
func TestServeRequestIDEcho(t *testing.T) {
	pred := trainPredictor(t, unroll.NearNeighbor)
	s, _ := newTestServer(t, Config{Model: pred, RequestTimeout: 30 * time.Second})

	predictBody := func() io.Reader {
		b, _ := json.Marshal(client.PredictRequest{Source: testKernels[0]})
		return bytes.NewReader(b)
	}
	post := func(hdr, val string) string {
		req, err := http.NewRequest(http.MethodPost, "/v1/predict", predictBody())
		if err != nil {
			t.Fatal(err)
		}
		if hdr != "" {
			req.Header.Set(hdr, val)
		}
		rec := doHandler(s, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("predict: %d %s", rec.Code, rec.Body.String())
		}
		return rec.Header().Get("X-Request-Id")
	}

	if got := post("X-Request-Id", "build-42.attempt-1"); got != "build-42.attempt-1" {
		t.Errorf("valid X-Request-Id not echoed: %q", got)
	}
	if got := post("X-Trace-Id", "trace-abc"); got != "trace-abc" {
		t.Errorf("X-Trace-Id fallback not honored: %q", got)
	}
	if got := post("X-Request-Id", "bad id with spaces"); got == "bad id with spaces" || got == "" {
		t.Errorf("malformed ID propagated: %q", got)
	}
	if got := post("X-Request-Id", strings.Repeat("a", 65)); len(got) > 64 {
		t.Errorf("oversized ID propagated: %q", got)
	}
	if got := post("", ""); got == "" {
		t.Error("no server-generated ID without client header")
	}
}

// TestServeTracedStages drives one uncached predict and checks the
// request lands in the trace ring with its pipeline stages recorded.
func TestServeTracedStages(t *testing.T) {
	obs.DefaultRequests.Reset()
	obs.DefaultRequests.SetSlowThreshold(0)
	pred := trainPredictor(t, unroll.NearNeighbor)
	s, _ := newTestServer(t, Config{Model: pred, CacheSize: -1, RequestTimeout: 30 * time.Second})

	b, _ := json.Marshal(client.PredictRequest{Source: testKernels[0]})
	req, err := http.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "trace-test-1")
	if rec := doHandler(s, req); rec.Code != http.StatusOK {
		t.Fatalf("predict: %d %s", rec.Code, rec.Body.String())
	}

	var found *obs.RequestTraceRecord
	for _, r := range obs.DefaultRequests.Snapshot() {
		if r.ID == "trace-test-1" {
			rr := r
			found = &rr
			break
		}
	}
	if found == nil {
		t.Fatal("request missing from the trace ring")
	}
	if found.TotalNS <= 0 {
		t.Errorf("total %dns", found.TotalNS)
	}
	stages := map[string]bool{}
	for _, st := range found.Stages() {
		stages[st.Name] = true
		if st.DurNS < 0 || st.StartNS < 0 {
			t.Errorf("stage %s has negative span: %+v", st.Name, st)
		}
	}
	for _, want := range []string{"admission", "queue_wait", "batch_assembly", "cache_lookup", "predict", "encode"} {
		if !stages[want] {
			t.Errorf("stage %q missing from trace: %v", want, stages)
		}
	}

	// The Chrome export of the ring must parse and contain the request.
	req = newGET(t, "/debug/traces?format=chrome")
	rec := doHandler(s, req)
	var events []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	var hasReq bool
	for _, ev := range events {
		if ev["name"] == "request trace-test-1" {
			hasReq = true
		}
	}
	if !hasReq {
		t.Error("chrome export missing the request event")
	}
}

// TestServeReadyzSLODetail checks the 200 readyz body carries the SLO
// reading.
func TestServeReadyzSLODetail(t *testing.T) {
	pred := trainPredictor(t, unroll.NearNeighbor)
	s, c := newTestServer(t, Config{Model: pred, RequestTimeout: 30 * time.Second})
	if _, err := c.Predict(context.Background(), client.PredictRequest{Source: testKernels[1]}); err != nil {
		t.Fatal(err)
	}
	rec := doHandler(s, newGET(t, "/readyz"))
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz: %d", rec.Code)
	}
	var detail struct {
		Status string        `json:"status"`
		SLO    obs.SLOStatus `json:"slo"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &detail); err != nil {
		t.Fatalf("readyz body: %v\n%s", err, rec.Body.String())
	}
	if detail.Status != "ok" {
		t.Errorf("status %q", detail.Status)
	}
	if detail.SLO.Total < 1 {
		t.Errorf("SLO window saw no requests: %+v", detail.SLO)
	}
	if !detail.SLO.AvailabilityOK {
		t.Errorf("healthy traffic reads unavailable: %+v", detail.SLO)
	}
}

// TestServeShadowIdenticalModel mirrors 100% of traffic to a shadow
// loaded from the very same artifact: agreement must be total, the
// confusion matrix diagonal, and — the core safety property — every
// primary response identical to a direct library call.
func TestServeShadowIdenticalModel(t *testing.T) {
	pred := trainPredictor(t, unroll.NearNeighbor)
	path := filepath.Join(t.TempDir(), "same.json")
	if err := pred.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	_, c := newTestServer(t, Config{
		Model:          pred,
		CacheSize:      -1, // cache hits are not mirrored; force every request through the model
		RequestTimeout: 30 * time.Second,
	})
	ctx := context.Background()

	sh, err := c.Shadow(ctx, path, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !sh.Enabled || sh.Fingerprint != pred.Fingerprint() || sh.Fraction != 1.0 {
		t.Fatalf("shadow response: %+v", sh)
	}

	const rounds = 4
	total := 0
	for r := 0; r < rounds; r++ {
		for i, src := range testKernels {
			want, err := pred.PredictCtx(ctx, parseKernel(t, src))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := c.Predict(ctx, client.PredictRequest{Source: src})
			if err != nil {
				t.Fatalf("round %d kernel %d: %v", r, i, err)
			}
			if resp.Factor != want {
				t.Fatalf("shadowing changed a primary answer: kernel %d factor %d, library says %d", i, resp.Factor, want)
			}
			total++
		}
	}

	// The mirror queue drains asynchronously; wait for every sample.
	var rep *client.ShadowReport
	waitFor(t, "shadow mirror to drain", func() bool {
		rep, err = c.ShadowReport(ctx)
		return err == nil && rep.Mirrored+rep.Dropped+rep.Errors >= int64(total)
	})
	if rep.Sampled != int64(total) {
		t.Errorf("sampled %d of %d eligible requests at fraction 1.0", rep.Sampled, total)
	}
	if rep.Errors != 0 || rep.Dropped != 0 {
		t.Errorf("shadow errors=%d dropped=%d", rep.Errors, rep.Dropped)
	}
	if rep.Disagree != 0 || rep.Agree != rep.Mirrored || rep.AgreementRate != 1.0 {
		t.Errorf("identical model must agree 100%%: %+v", rep)
	}
	for _, cell := range rep.Confusion {
		if cell.Primary != cell.Shadow {
			t.Errorf("off-diagonal confusion cell for identical models: %+v", cell)
		}
	}

	// Disabling returns an empty report.
	if _, err := c.Shadow(ctx, "", 0); err != nil {
		t.Fatal(err)
	}
	rep, err = c.ShadowReport(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Enabled {
		t.Errorf("shadow still enabled after disable: %+v", rep)
	}
}

// TestServeShadowFraction checks sub-unity mirroring samples the exact
// deterministic count.
func TestServeShadowFraction(t *testing.T) {
	pred := trainPredictor(t, unroll.NearNeighbor)
	path := filepath.Join(t.TempDir(), "same.json")
	if err := pred.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	_, c := newTestServer(t, Config{Model: pred, CacheSize: -1, RequestTimeout: 30 * time.Second})
	ctx := context.Background()
	if _, err := c.Shadow(ctx, path, 0.5); err != nil {
		t.Fatal(err)
	}
	const total = 40
	for i := 0; i < total; i++ {
		if _, err := c.Predict(ctx, client.PredictRequest{Source: testKernels[i%len(testKernels)]}); err != nil {
			t.Fatal(err)
		}
	}
	var rep *client.ShadowReport
	var err error
	waitFor(t, "half mirror to drain", func() bool {
		rep, err = c.ShadowReport(ctx)
		return err == nil && rep.Mirrored >= total/2
	})
	if rep.Sampled != total {
		t.Errorf("sampled %d of %d eligible", rep.Sampled, total)
	}
	if rep.Mirrored != total/2 {
		t.Errorf("mirrored %d of %d at fraction 0.5", rep.Mirrored, total)
	}
}
