package serve

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metaopt/unroll"
	"metaopt/unroll/client"
)

// testKernels are the query loops every test predicts; varied enough that
// different models disagree on some of them.
var testKernels = []string{
	`kernel daxpy lang=c { param double a; double x[], y[]; noalias; for i = 0 .. 4096 { y[i] = y[i] + a * x[i]; } }`,
	`kernel dot lang=fortran { double a[], b[]; double s; for i = 0 .. 1024 { s = s + a[i]*b[i]; } }`,
	`kernel scale lang=c { double x[]; noalias; for i = 0 .. 256 { x[i] = x[i] * 2.0; } }`,
	`kernel copy lang=c { double a[], b[]; noalias; for i = 0 .. 512 { a[i] = b[i]; } }`,
	`kernel saxpy2 lang=fortran { param double a; double x[], y[], z[]; for i = 0 .. 2048 { z[i] = y[i] + a * x[i]; } }`,
	`kernel gather lang=c { double a[]; int k[]; for i = 0 .. 64 { a[k[i]] = a[k[i]] + 1.0; } }`,
	`kernel stencil lang=c { double a[], b[]; noalias; for i = 1 .. 511 { b[i] = a[i-1] + a[i] + a[i+1]; } }`,
	`kernel square lang=c { double x[], y[]; noalias; for i = 0 .. 128 { y[i] = x[i] * x[i]; } }`,
}

var (
	datasetOnce sync.Once
	dataset     *unroll.Dataset
	datasetErr  error
)

// testDataset collects one small labeled corpus shared by every test.
func testDataset(t *testing.T) *unroll.Dataset {
	t.Helper()
	datasetOnce.Do(func() {
		c, err := unroll.GenerateCorpus(7, 0.05)
		if err != nil {
			datasetErr = err
			return
		}
		dataset, datasetErr = unroll.CollectDataset(c, unroll.CollectOptions{Seed: 1, Runs: 3})
	})
	if datasetErr != nil {
		t.Fatal(datasetErr)
	}
	return dataset
}

func trainPredictor(t *testing.T, alg unroll.Algorithm) *unroll.Predictor {
	t.Helper()
	p, err := unroll.Train(testDataset(t), unroll.TrainOptions{Algorithm: alg, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func parseKernel(t *testing.T, src string) *unroll.Loop {
	t.Helper()
	l, err := unroll.ParseKernel(src)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// newTestServer boots a server on an ephemeral port and returns it with a
// client pointed at it. The server is drained at test end.
func newTestServer(t *testing.T, cfg Config) (*Server, *client.Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, client.New("http://" + addr)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServeConcurrentBitIdentical holds the worker pool until 96 requests
// (64 singles + 32 full batches) are simultaneously in flight, then
// releases them and checks every response against a direct library call.
func TestServeConcurrentBitIdentical(t *testing.T) {
	pred := trainPredictor(t, unroll.NearNeighbor)
	expected := make([]int, len(testKernels))
	for i, src := range testKernels {
		u, err := pred.PredictCtx(context.Background(), parseKernel(t, src))
		if err != nil {
			t.Fatal(err)
		}
		expected[i] = u
	}

	s, c := newTestServer(t, Config{
		Model:          pred,
		QueueDepth:     256,
		Workers:        1,
		MaxBatch:       8,
		CacheSize:      -1, // every request must compute
		RequestTimeout: 30 * time.Second,
	})
	gate := make(chan struct{})
	s.preBatch = func() { <-gate }

	const singles, batches = 64, 32
	reqsBefore := mReqs.Value()
	var wg sync.WaitGroup
	var mismatches, failures atomic.Int64
	for g := 0; g < singles; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := g % len(testKernels)
			resp, err := c.Predict(context.Background(), client.PredictRequest{Source: testKernels[k]})
			if err != nil {
				t.Errorf("single %d: %v", g, err)
				failures.Add(1)
				return
			}
			if resp.Factor != expected[k] {
				t.Errorf("single %d: factor %d, library says %d", g, resp.Factor, expected[k])
				mismatches.Add(1)
			}
			if resp.Fingerprint != pred.Fingerprint() {
				t.Errorf("single %d: fingerprint %q", g, resp.Fingerprint)
			}
		}(g)
	}
	for g := 0; g < batches; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			reqs := make([]client.PredictRequest, len(testKernels))
			for i, src := range testKernels {
				reqs[i] = client.PredictRequest{Source: src}
			}
			resp, err := c.PredictBatch(context.Background(), reqs)
			if err != nil {
				t.Errorf("batch %d: %v", g, err)
				failures.Add(1)
				return
			}
			for i, res := range resp.Results {
				if res.Error != "" {
					t.Errorf("batch %d loop %d: %s", g, i, res.Error)
					failures.Add(1)
				} else if res.Factor != expected[i] {
					t.Errorf("batch %d loop %d: factor %d, library says %d", g, i, res.Factor, expected[i])
					mismatches.Add(1)
				}
			}
		}(g)
	}

	// With the worker gated, every accepted request stays in flight: once
	// the counter shows all 96 arrived, they are concurrently open.
	waitFor(t, "96 in-flight requests", func() bool {
		return mReqs.Value()-reqsBefore >= singles+batches
	})
	close(gate)
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d requests failed", n)
	}
	if n := mismatches.Load(); n > 0 {
		t.Fatalf("%d predictions differ from direct library calls", n)
	}
}

// TestServeBackpressureConcurrent saturates a queue of depth 1 behind one
// held worker and checks the third request is shed with 503 + Retry-After.
func TestServeBackpressureConcurrent(t *testing.T) {
	pred := trainPredictor(t, unroll.NearNeighbor)
	s, c := newTestServer(t, Config{
		Model:          pred,
		QueueDepth:     1,
		Workers:        1,
		MaxBatch:       1,
		CacheSize:      -1,
		RequestTimeout: 30 * time.Second,
	})
	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	s.preBatch = func() {
		entered <- struct{}{}
		<-gate
	}

	results := make(chan error, 2)
	send := func() {
		_, err := c.Predict(context.Background(), client.PredictRequest{Source: testKernels[0]})
		results <- err
	}
	go send() // A: picked up by the worker, which blocks
	<-entered
	go send() // B: sits in the queue
	waitFor(t, "queue to fill", func() bool { return len(s.queue) == 1 })

	// C: queue full — must be shed, not queued.
	_, err := c.Predict(context.Background(), client.PredictRequest{Source: testKernels[1]})
	if !client.IsOverloaded(err) {
		t.Fatalf("expected 503 under saturation, got %v", err)
	}
	if ae := err.(*client.APIError); ae.RetryAfter <= 0 {
		t.Errorf("503 without Retry-After hint: %+v", ae)
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("admitted request failed: %v", err)
		}
	}
}

// TestServeDrainConcurrent starts a drain with one request held and 15
// queued: all 16 must complete, later requests must be refused, and
// Shutdown must return only after the queue is empty.
func TestServeDrainConcurrent(t *testing.T) {
	pred := trainPredictor(t, unroll.NearNeighbor)
	s, c := newTestServer(t, Config{
		Model:          pred,
		QueueDepth:     64,
		Workers:        1,
		MaxBatch:       4,
		CacheSize:      -1,
		RequestTimeout: 30 * time.Second,
	})
	gate := make(chan struct{})
	entered := make(chan struct{}, 64)
	s.preBatch = func() {
		entered <- struct{}{}
		<-gate
	}

	const n = 16
	reqsBefore := mReqs.Value()
	results := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			_, err := c.Predict(context.Background(),
				client.PredictRequest{Source: testKernels[i%len(testKernels)]})
			results <- err
		}(i)
	}
	<-entered
	waitFor(t, "all requests admitted", func() bool { return mReqs.Value()-reqsBefore >= n })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	waitFor(t, "drain to start", s.draining.Load)

	// Readiness flips and new work is refused while draining.
	if err := c.Readyz(context.Background()); !client.IsOverloaded(err) {
		t.Errorf("readyz during drain: %v", err)
	}
	if _, err := c.Predict(context.Background(), client.PredictRequest{Source: testKernels[0]}); !client.IsOverloaded(err) {
		t.Errorf("predict during drain: %v", err)
	}

	close(gate)
	for i := 0; i < n; i++ {
		if err := <-results; err != nil {
			t.Errorf("request failed during graceful drain: %v", err)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if len(s.queue) != 0 {
		t.Errorf("queue not drained: %d jobs left", len(s.queue))
	}
}

// TestServeReloadConcurrent swaps the model under concurrent traffic: no
// request may fail, and once the swap lands fresh predictions must come
// from the new model (including past the cache, which keys on the
// fingerprint).
func TestServeReloadConcurrent(t *testing.T) {
	nnPred := trainPredictor(t, unroll.NearNeighbor)
	treePred := trainPredictor(t, unroll.DecisionTree)
	if nnPred.Fingerprint() == treePred.Fingerprint() {
		t.Fatal("test models share a fingerprint")
	}
	path := filepath.Join(t.TempDir(), "tree.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := treePred.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, c := newTestServer(t, Config{Model: nnPred, RequestTimeout: 30 * time.Second})
	ctx := context.Background()

	// Prime the cache under the old model.
	first, err := c.Predict(ctx, client.PredictRequest{Source: testKernels[0]})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := c.Predict(ctx, client.PredictRequest{Source: testKernels[(g+i)%len(testKernels)]})
				if err != nil {
					t.Errorf("traffic during reload failed: %v", err)
					failures.Add(1)
					return
				}
				if resp.Factor < 1 || resp.Factor > unroll.MaxFactor {
					t.Errorf("factor %d out of range", resp.Factor)
					failures.Add(1)
					return
				}
			}
		}(g)
	}

	rl, err := c.Reload(ctx, path)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if rl.Previous != nnPred.Fingerprint() || rl.Fingerprint != treePred.Fingerprint() {
		t.Errorf("reload fingerprints: %+v", rl)
	}
	close(stop)
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatal("requests failed across the swap")
	}

	info, err := c.Model(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Fingerprint != treePred.Fingerprint() {
		t.Errorf("served model after reload: %+v", info)
	}
	// The old model's cache entry must not answer for the new model.
	want, err := treePred.PredictCtx(ctx, parseKernel(t, testKernels[0]))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Predict(ctx, client.PredictRequest{Source: testKernels[0]})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Factor != want {
		t.Errorf("post-reload factor %d, new model says %d (old model said %d)", resp.Factor, want, first.Factor)
	}
	if resp.Fingerprint != treePred.Fingerprint() {
		t.Errorf("post-reload fingerprint %q", resp.Fingerprint)
	}

	// A missing artifact must fail the reload and keep the current model.
	if _, err := c.Reload(ctx, filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("expected reload error for missing artifact")
	}
	if info, err := c.Model(ctx); err != nil || info.Fingerprint != treePred.Fingerprint() {
		t.Errorf("model changed after failed reload: %+v, %v", info, err)
	}
}

func TestServeCacheHits(t *testing.T) {
	pred := trainPredictor(t, unroll.NearNeighbor)
	_, c := newTestServer(t, Config{Model: pred, RequestTimeout: 30 * time.Second})
	ctx := context.Background()

	first, err := c.Predict(ctx, client.PredictRequest{Source: testKernels[2]})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first query claims a cache hit")
	}
	second, err := c.Predict(ctx, client.PredictRequest{Source: testKernels[2]})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Factor != first.Factor {
		t.Errorf("second query: cached=%v factor=%d vs %d", second.Cached, second.Factor, first.Factor)
	}
	// Whitespace-only source changes hash to the same canonical loop.
	reformatted := "\n" + testKernels[2] + "\n"
	third, err := c.Predict(ctx, client.PredictRequest{Source: reformatted})
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached {
		t.Error("canonicalization missed: reformatted source was a cache miss")
	}
}

func TestServeFeatureVectorParity(t *testing.T) {
	pred := trainPredictor(t, unroll.NearNeighbor)
	_, c := newTestServer(t, Config{Model: pred, RequestTimeout: 30 * time.Second})
	ctx := context.Background()
	for _, src := range testKernels[:3] {
		l := parseKernel(t, src)
		want, err := pred.PredictFeatures(unroll.Features(l, unroll.Itanium2()))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := c.Predict(ctx, client.PredictRequest{Features: unroll.Features(l, unroll.Itanium2())})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Factor != want {
			t.Errorf("%s: feature-vector factor %d, library says %d", l.Name, resp.Factor, want)
		}
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	pred := trainPredictor(t, unroll.NearNeighbor)
	_, c := newTestServer(t, Config{Model: pred})
	ctx := context.Background()

	cases := []client.PredictRequest{
		{}, // neither source nor features
		{Source: testKernels[0], Features: []float64{1}}, // both
		{Source: "kernel {"},                             // parse error
	}
	for i, req := range cases {
		_, err := c.Predict(ctx, req)
		ae, ok := err.(*client.APIError)
		if !ok || ae.Status != http.StatusBadRequest {
			t.Errorf("case %d: want 400, got %v", i, err)
		}
	}
	// A wrong-length feature vector is a prediction-layer failure.
	if _, err := c.Predict(ctx, client.PredictRequest{Features: []float64{1, 2, 3}}); err == nil {
		t.Error("expected error for short feature vector")
	}
	// Batch: per-item errors don't fail the healthy items.
	resp, err := c.PredictBatch(ctx, []client.PredictRequest{
		{Source: testKernels[0]},
		{Source: "kernel {"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Error != "" || resp.Results[0].Factor < 1 {
		t.Errorf("healthy batch item: %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" {
		t.Error("broken batch item reported no error")
	}
}

func TestServeHealthReady(t *testing.T) {
	pred := trainPredictor(t, unroll.NearNeighbor)
	_, c := newTestServer(t, Config{Model: pred})
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		t.Errorf("healthz: %v", err)
	}
	if err := c.Readyz(ctx); err != nil {
		t.Errorf("readyz: %v", err)
	}
	info, err := c.Model(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Fingerprint != pred.Fingerprint() || info.ModelVersion != unroll.PersistVersion {
		t.Errorf("model info: %+v", info)
	}
}
