// Shadow-traffic decision diffing: a candidate model artifact is loaded
// beside the live one and a configurable fraction of predict traffic is
// mirrored to it off the critical path. The shadow never touches the bits
// a client receives — mirroring is a non-blocking enqueue onto a bounded
// queue drained by a dedicated worker — but every mirrored decision is
// compared against the answer actually served, building the agreement
// rate, per-factor confusion counts, and latency deltas an operator reads
// at /v1/shadow/report before promoting the candidate.
package serve

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"metaopt/unroll"
	"metaopt/unroll/client"
)

// shadowState is one loaded shadow candidate plus its accumulated
// comparison counters. A new POST /v1/admin/shadow swaps the whole state
// atomically; in-flight mirrored tasks keep scoring against the state
// they were sampled under.
type shadowState struct {
	pred      *unroll.Predictor
	comp      *unroll.CompiledPredictor // nil: interpreted fallback
	path      string
	mille     int64 // mirrored fraction in thousandths [0,1000]
	startedAt time.Time

	seq      atomic.Int64 // sampling sequence over eligible requests
	mirrored atomic.Int64
	agree    atomic.Int64
	disagree atomic.Int64
	errs     atomic.Int64
	dropped  atomic.Int64

	latPrimNS   atomic.Int64
	latShadowNS atomic.Int64

	// confusion[primary*(MaxFactor+1)+shadow] counts decision pairs,
	// factors clamped into [0,MaxFactor].
	confusion [(unroll.MaxFactor + 1) * (unroll.MaxFactor + 1)]atomic.Int64
}

// shadowTask is one mirrored decision: the request inputs plus the factor
// the live model answered. Inputs are per-request allocations (never
// recycled arena storage), so holding them past the response is safe.
type shadowTask struct {
	st     *shadowState
	feats  []float64
	loop   *unroll.Loop
	factor int // the answer the client actually received
}

// shadowSampled reports whether mirrored-traffic sampling selects the
// n-th eligible request at the given per-mille fraction. The lattice test
// is deterministic and drift-free: over any 1000 consecutive requests
// exactly mille are selected, with no RNG on the hot path.
func shadowSampled(n, mille int64) bool {
	return (n*mille)/1000 != ((n-1)*mille)/1000
}

// maybeShadow mirrors one successfully answered item to the shadow model.
// Called by the batch worker after the primary answer is final; the only
// cost on the serving path is an atomic increment and a non-blocking
// channel send. A full shadow queue drops the sample and counts the drop.
func (s *Server) maybeShadow(it *item) {
	sh := s.shadow.Load()
	if sh == nil {
		return
	}
	if !shadowSampled(sh.seq.Add(1), sh.mille) {
		return
	}
	select {
	case s.shadowq <- shadowTask{st: sh, feats: it.feats, loop: it.loop, factor: it.factor}:
	default:
		sh.dropped.Add(1)
		mShadowDropped.Inc()
	}
}

// shadowWorker drains the mirror queue until Shutdown closes it.
func (s *Server) shadowWorker() {
	defer s.shadowWG.Done()
	for t := range s.shadowq {
		s.runShadow(t)
	}
}

// runShadow scores one mirrored decision: the shadow model predicts the
// same input, agreement and the confusion cell are recorded, and both
// models are timed back-to-back so the latency delta compares like with
// like. A panicking shadow model counts an error and never disturbs
// serving.
func (s *Server) runShadow(t shadowTask) {
	defer func() {
		if r := recover(); r != nil {
			t.st.errs.Add(1)
			mShadowErrors.Inc()
			log.Printf("serve: shadow panic: %v", r)
		}
	}()
	prim := s.reg.Default()

	start := time.Now()
	_, primErr := predictOn(prim.Comp, prim.Pred, t)
	primNS := time.Since(start).Nanoseconds()

	start = time.Now()
	shadowFactor, shadowErr := predictOn(t.st.comp, t.st.pred, t)
	shadowNS := time.Since(start).Nanoseconds()

	if primErr != nil || shadowErr != nil {
		t.st.errs.Add(1)
		mShadowErrors.Inc()
		return
	}
	t.st.mirrored.Add(1)
	mShadowMirrored.Inc()
	t.st.latPrimNS.Add(primNS)
	t.st.latShadowNS.Add(shadowNS)
	if shadowFactor == t.factor {
		t.st.agree.Add(1)
		mShadowAgree.Inc()
	} else {
		t.st.disagree.Add(1)
		mShadowDisagree.Inc()
	}
	t.st.confusion[confusionIdx(t.factor, shadowFactor)].Add(1)
}

// predictOn answers a mirrored task on the given model, compiled when
// available.
func predictOn(comp *unroll.CompiledPredictor, pred *unroll.Predictor, t shadowTask) (int, error) {
	if t.feats != nil {
		if comp != nil {
			return comp.PredictFeatures(t.feats)
		}
		return pred.PredictFeatures(t.feats)
	}
	if comp != nil {
		return comp.PredictCtx(context.Background(), t.loop)
	}
	return pred.PredictCtx(context.Background(), t.loop)
}

// confusionIdx flattens a (primary, shadow) factor pair into the
// confusion array, clamping out-of-range factors to 0.
func confusionIdx(primary, shadow int) int {
	if primary < 0 || primary > unroll.MaxFactor {
		primary = 0
	}
	if shadow < 0 || shadow > unroll.MaxFactor {
		shadow = 0
	}
	return primary*(unroll.MaxFactor+1) + shadow
}

// handleShadow loads (or clears) the shadow candidate. Fraction must be
// in (0,1] to enable; 0 disables shadowing. The candidate is compiled
// through the same lowering as the live model; a compile failure falls
// back to interpreted shadow prediction and is reported, never fatal.
func (s *Server) handleShadow(w http.ResponseWriter, r *http.Request) {
	var req client.ShadowRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Fraction < 0 || req.Fraction > 1 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("fraction %v outside [0,1]", req.Fraction))
		return
	}
	if req.Fraction == 0 {
		s.shadow.Store(nil)
		mShadowActive.Set(0)
		writeJSON(w, http.StatusOK, client.ShadowResponse{Enabled: false})
		return
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, "shadow request names no artifact path")
		return
	}
	pred, err := unroll.LoadPredictorFile(req.Path)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("shadow load: %v", err))
		return
	}
	st := &shadowState{
		pred:      pred,
		path:      req.Path,
		mille:     int64(req.Fraction*1000 + 0.5),
		startedAt: time.Now(),
	}
	if st.mille == 0 {
		st.mille = 1 // a nonzero fraction mirrors at least 1 in 1000
	}
	comp, err := unroll.Compile(pred)
	if err != nil {
		mCompileErr.Inc()
		log.Printf("serve: shadow compile: %v; shadowing with interpreted model", err)
	} else {
		st.comp = comp
	}
	s.shadow.Store(st)
	mShadowActive.Set(1)
	resp := client.ShadowResponse{
		Enabled:  true,
		Fraction: float64(st.mille) / 1000,
		ModelInfo: client.ModelInfo{
			Algorithm:    string(pred.Algorithm()),
			ModelVersion: pred.Version(),
			Fingerprint:  pred.Fingerprint(),
			Path:         req.Path,
			LoadedAt:     st.startedAt,
		},
	}
	if st.comp != nil {
		resp.Compiled = st.comp.Fingerprint()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleShadowReport renders the accumulated comparison between the live
// model and the shadow candidate.
func (s *Server) handleShadowReport(w http.ResponseWriter, _ *http.Request) {
	sh := s.shadow.Load()
	if sh == nil {
		writeJSON(w, http.StatusOK, client.ShadowReport{Enabled: false})
		return
	}
	rep := client.ShadowReport{
		Enabled:      true,
		Path:         sh.path,
		Fingerprint:  sh.pred.Fingerprint(),
		ModelVersion: sh.pred.Version(),
		Fraction:     float64(sh.mille) / 1000,
		StartedAt:    sh.startedAt,
		Sampled:      sh.seq.Load(),
		Mirrored:     sh.mirrored.Load(),
		Agree:        sh.agree.Load(),
		Disagree:     sh.disagree.Load(),
		Errors:       sh.errs.Load(),
		Dropped:      sh.dropped.Load(),
	}
	if rep.Mirrored > 0 {
		rep.AgreementRate = float64(rep.Agree) / float64(rep.Mirrored)
		rep.MeanPrimaryUS = float64(sh.latPrimNS.Load()) / float64(rep.Mirrored) / 1e3
		rep.MeanShadowUS = float64(sh.latShadowNS.Load()) / float64(rep.Mirrored) / 1e3
		rep.MeanDeltaUS = rep.MeanShadowUS - rep.MeanPrimaryUS
	}
	for p := 0; p <= unroll.MaxFactor; p++ {
		for q := 0; q <= unroll.MaxFactor; q++ {
			if n := sh.confusion[p*(unroll.MaxFactor+1)+q].Load(); n > 0 {
				rep.Confusion = append(rep.Confusion, client.ShadowConfusionCell{
					Primary: p, Shadow: q, Count: n,
				})
			}
		}
	}
	writeJSON(w, http.StatusOK, rep)
}
