package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"metaopt/unroll"
	"metaopt/unroll/client"
)

// The wire-protocol fuzzers throw arbitrary bytes at the JSON boundary of
// the real handler stack (decode → validate → enqueue → worker → respond)
// and assert the protocol invariants: every answer is well-formed JSON of
// the declared shape, carries a sane status, and nothing panics the server.

var (
	fuzzOnce    sync.Once
	fuzzHandler http.Handler
	fuzzErr     error
)

// fuzzServe builds one shared in-process server for all fuzz iterations;
// per-iteration servers would leak a worker pool each.
func fuzzServe(t *testing.T) http.Handler {
	fuzzOnce.Do(func() {
		c, err := unroll.GenerateCorpus(7, 0.05)
		if err != nil {
			fuzzErr = err
			return
		}
		d, err := unroll.CollectDataset(c, unroll.CollectOptions{Seed: 1, Runs: 3})
		if err != nil {
			fuzzErr = err
			return
		}
		pred, err := unroll.Train(d, unroll.TrainOptions{Algorithm: unroll.NearNeighbor, Seed: 3})
		if err != nil {
			fuzzErr = err
			return
		}
		s, err := New(Config{Model: pred, RequestTimeout: 10 * time.Second})
		if err != nil {
			fuzzErr = err
			return
		}
		fuzzHandler = s.Handler()
	})
	if fuzzErr != nil {
		t.Fatalf("fuzz server setup: %v", fuzzErr)
	}
	return fuzzHandler
}

// checkWireResponse asserts the invariants every answer must hold, whatever
// the input was.
func checkWireResponse(t *testing.T, rec *httptest.ResponseRecorder) {
	t.Helper()
	code := rec.Code
	if code < 200 || code > 599 {
		t.Fatalf("status %d out of range", code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q, want application/json", ct)
	}
	if code != http.StatusOK {
		var er client.ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
			t.Fatalf("status %d with non-JSON error body %q: %v", code, rec.Body.Bytes(), err)
		}
		if er.Error == "" {
			t.Fatalf("status %d with empty error message", code)
		}
	}
}

func wireSeeds() [][]byte {
	seeds := [][]byte{
		[]byte(`{}`),
		[]byte(`{"source": ""}`),
		[]byte(`{"source": "kernel k lang=c { double x[]; for i = 0 .. 8 { x[i] = x[i]; } }"}`),
		[]byte(`{"features": [1, 2, 3]}`),
		[]byte(`{"features": null, "source": null}`),
		[]byte(`{"source": "kernel`),
		[]byte(`not json at all`),
		[]byte(`[{"source": "x"}]`),
		[]byte(`{"features": [1e308, -1e308, 0.0]}`),
		[]byte(``),
	}
	for _, k := range testKernels {
		raw, _ := json.Marshal(client.PredictRequest{Source: k})
		seeds = append(seeds, raw)
	}
	full := make([]float64, unroll.NumFeatures)
	raw, _ := json.Marshal(client.PredictRequest{Features: full})
	return append(seeds, raw)
}

func FuzzPredictWire(f *testing.F) {
	for _, s := range wireSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		h := fuzzServe(t)
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		checkWireResponse(t, rec)
		if rec.Code == http.StatusOK {
			var pr client.PredictResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
				t.Fatalf("200 with undecodable body %q: %v", rec.Body.Bytes(), err)
			}
			if pr.Factor < 1 || pr.Factor > unroll.MaxFactor {
				t.Fatalf("200 with factor %d outside [1,%d]", pr.Factor, unroll.MaxFactor)
			}
		}
	})
}

func FuzzBatchWire(f *testing.F) {
	f.Add([]byte(`{"loops": []}`))
	f.Add([]byte(`{"loops": null}`))
	f.Add([]byte(`{"loops": [{}]}`))
	for _, s := range wireSeeds() {
		f.Add([]byte(`{"loops": [` + string(s) + `]}`))
	}
	two, _ := json.Marshal(client.BatchRequest{Loops: []client.PredictRequest{
		{Source: testKernels[0]}, {Features: make([]float64, unroll.NumFeatures)},
	}})
	f.Add(two)
	f.Fuzz(func(t *testing.T, body []byte) {
		h := fuzzServe(t)
		req := httptest.NewRequest(http.MethodPost, "/v1/predict/batch", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		checkWireResponse(t, rec)
		if rec.Code != http.StatusOK {
			return
		}
		var br client.BatchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &br); err != nil {
			t.Fatalf("200 with undecodable batch body: %v", err)
		}
		// Count the request's loops: the response must be index-aligned.
		var in client.BatchRequest
		if err := json.Unmarshal(body, &in); err == nil && len(br.Results) != len(in.Loops) {
			t.Fatalf("batch answered %d results for %d loops", len(br.Results), len(in.Loops))
		}
		for i, res := range br.Results {
			if res.Error == "" && (res.Factor < 1 || res.Factor > unroll.MaxFactor) {
				t.Fatalf("result %d: factor %d outside [1,%d]", i, res.Factor, unroll.MaxFactor)
			}
		}
	})
}
