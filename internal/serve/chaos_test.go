package serve

import (
	"context"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"metaopt/internal/faults"
	"metaopt/unroll"
	"metaopt/unroll/client"
)

// TestChaosPanicIsolation injects a panic into one prediction: that request
// must answer 500 with a request ID, every other request must succeed, and
// the server (including its worker pool) must stay alive.
func TestChaosPanicIsolation(t *testing.T) {
	defer faults.Reset()
	pred := trainPredictor(t, unroll.NearNeighbor)
	_, c := newTestServer(t, Config{
		Model:          pred,
		CacheSize:      -1, // every request must reach the workers
		RequestTimeout: 30 * time.Second,
	})
	ctx := context.Background()

	// Warm check, then arm: the very next prediction panics inside the
	// worker.
	if _, err := c.Predict(ctx, client.PredictRequest{Source: testKernels[0]}); err != nil {
		t.Fatal(err)
	}
	panicsBefore := mPanics.Value()
	faults.MustInstall(faults.Spec{Site: "serve.batch", Kind: faults.KindPanic, Nth: 1})
	// The batch dispatch panics, and the per-item fallback hits the
	// "serve.predict" site too: the request must still fail cleanly.
	faults.MustInstall(faults.Spec{Site: "serve.predict", Kind: faults.KindPanic, Nth: 1, Count: 1})

	_, err := c.Predict(ctx, client.PredictRequest{Source: testKernels[1]})
	ae, ok := err.(*client.APIError)
	if !ok || ae.Status != http.StatusInternalServerError {
		t.Fatalf("panicking prediction answered %v, want HTTP 500", err)
	}
	if !strings.Contains(ae.Message, "request ") || !strings.Contains(ae.Message, "panicked") {
		t.Errorf("500 message carries no request ID: %q", ae.Message)
	}
	if strings.Contains(ae.Message, "goroutine") {
		t.Errorf("500 message leaks a stack trace: %q", ae.Message)
	}
	if mPanics.Value() <= panicsBefore {
		t.Error("serve.worker_panics did not move")
	}

	// The pool survives: subsequent requests on every kernel succeed.
	faults.Reset()
	for _, src := range testKernels {
		if _, err := c.Predict(ctx, client.PredictRequest{Source: src}); err != nil {
			t.Fatalf("request after contained panic failed: %v", err)
		}
	}
}

// TestChaosBatchPanicIsolatesItem: a panic during the merged dispatch falls
// back to per-item prediction, so healthy loops in the same batch still get
// answers.
func TestChaosBatchPanicIsolatesItem(t *testing.T) {
	defer faults.Reset()
	pred := trainPredictor(t, unroll.NearNeighbor)
	_, c := newTestServer(t, Config{
		Model:          pred,
		CacheSize:      -1,
		RequestTimeout: 30 * time.Second,
	})
	ctx := context.Background()

	// The merged dispatch panics once; the per-item fallback then panics
	// on exactly one member.
	faults.MustInstall(faults.Spec{Site: "serve.batch", Kind: faults.KindPanic, Nth: 1})
	faults.MustInstall(faults.Spec{Site: "serve.predict", Kind: faults.KindPanic, Nth: 2, Count: 1})

	reqs := make([]client.PredictRequest, 4)
	for i := range reqs {
		reqs[i] = client.PredictRequest{Source: testKernels[i]}
	}
	resp, err := c.PredictBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("batch with one panicking item failed wholesale: %v", err)
	}
	var failed, succeeded int
	for i, res := range resp.Results {
		if res.Error != "" {
			failed++
			if !strings.Contains(res.Error, "panicked") {
				t.Errorf("item %d error: %q", i, res.Error)
			}
		} else {
			succeeded++
			if res.Factor < 1 || res.Factor > unroll.MaxFactor {
				t.Errorf("item %d factor %d out of range", i, res.Factor)
			}
		}
	}
	if failed != 1 || succeeded != 3 {
		t.Fatalf("batch outcome: %d failed, %d succeeded; want exactly 1 failed", failed, succeeded)
	}
}

// TestChaosPanicStreakFlipsReadiness: K consecutive panics mark the server
// unready (so an orchestrator pulls it from rotation instead of letting it
// flap), and a successful prediction — or a model reload — restores it.
func TestChaosPanicStreakFlipsReadiness(t *testing.T) {
	defer faults.Reset()
	pred := trainPredictor(t, unroll.NearNeighbor)
	_, c := newTestServer(t, Config{
		Model:          pred,
		CacheSize:      -1,
		PanicThreshold: 2,
		RequestTimeout: 30 * time.Second,
	})
	ctx := context.Background()

	faults.MustInstall(faults.Spec{Site: "serve.predict", Kind: faults.KindPanic, Count: 3})
	// Two consecutive single-feature predictions panic (each request hits
	// the serve.predict site once on the feats path).
	l := parseKernel(t, testKernels[0])
	feats := unroll.Features(l, unroll.Itanium2())
	for i := 0; i < 2; i++ {
		_, err := c.Predict(ctx, client.PredictRequest{Features: feats})
		if ae, ok := err.(*client.APIError); !ok || ae.Status != http.StatusInternalServerError {
			t.Fatalf("panic %d answered %v, want 500", i, err)
		}
	}
	if err := c.Readyz(ctx); !client.IsOverloaded(err) {
		t.Fatalf("readyz after panic streak: %v, want 503", err)
	}
	// Liveness is unaffected: the process is healthy, just unready.
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz during unready: %v", err)
	}

	// The spec has one fire left; it panics, then the next succeeds and
	// clears the streak.
	_, _ = c.Predict(ctx, client.PredictRequest{Features: feats})
	if _, err := c.Predict(ctx, client.PredictRequest{Features: feats}); err != nil {
		t.Fatalf("recovery prediction failed: %v", err)
	}
	if err := c.Readyz(ctx); err != nil {
		t.Fatalf("readyz after successful prediction: %v, want ready", err)
	}
}

// TestChaosNonFiniteFeaturesRejected: NaN/Inf vectors answer 400 at the
// boundary, count on the obs counter, and never reach the model.
func TestChaosNonFiniteFeaturesRejected(t *testing.T) {
	pred := trainPredictor(t, unroll.NearNeighbor)
	s, _ := newTestServer(t, Config{Model: pred, RequestTimeout: 30 * time.Second})
	before := mNonFinite.Value()
	for _, bad := range [][]float64{
		append(make([]float64, unroll.NumFeatures-1), math.NaN()),
		append(make([]float64, unroll.NumFeatures-1), math.Inf(1)),
		append(make([]float64, unroll.NumFeatures-1), math.Inf(-1)),
	} {
		// JSON cannot carry NaN/Inf, so exercise the boundary the way an
		// embedded Handler user would: through newItem directly.
		it, status, err := newItem(s.reg.Default(), client.PredictRequest{Features: bad})
		if err == nil || status != http.StatusBadRequest {
			t.Fatalf("non-finite vector passed validation: it=%v status=%d err=%v", it, status, err)
		}
	}
	if mNonFinite.Value() != before+3 {
		t.Errorf("serve.nonfinite_features moved %d, want 3", mNonFinite.Value()-before)
	}
	// The library boundary rejects them too.
	bad := make([]float64, unroll.NumFeatures)
	bad[3] = math.NaN()
	if _, err := pred.PredictFeatures(bad); err == nil {
		t.Error("PredictFeatures accepted NaN")
	}
}

// TestChaosInjectedLatencyHitsDeadline: a latency fault longer than the
// request timeout must answer 504, not hang the worker.
func TestChaosInjectedLatencyHitsDeadline(t *testing.T) {
	defer faults.Reset()
	pred := trainPredictor(t, unroll.NearNeighbor)
	_, c := newTestServer(t, Config{
		Model:          pred,
		CacheSize:      -1,
		RequestTimeout: 50 * time.Millisecond,
	})
	faults.MustInstall(faults.Spec{Site: "serve.batch", Kind: faults.KindLatency, Nth: 1, Latency: 300 * time.Millisecond})
	_, err := c.Predict(context.Background(), client.PredictRequest{Source: testKernels[0]})
	ae, ok := err.(*client.APIError)
	if !ok || ae.Status != http.StatusGatewayTimeout {
		t.Fatalf("slow prediction answered %v, want 504", err)
	}
	// And the worker comes back once the injected sleep ends.
	faults.Reset()
	waitFor(t, "worker to recover from latency fault", func() bool {
		_, err := c.Predict(context.Background(), client.PredictRequest{Source: testKernels[1]})
		return err == nil
	})
}
