package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metaopt/internal/obs"
	"metaopt/unroll"
	"metaopt/unroll/client"
)

// fleetConfig is one replica's config; every replica serves the same
// model so answers are interchangeable across the fleet.
func fleetConfig(pred *unroll.Predictor) Config {
	return Config{
		Model:          pred,
		QueueDepth:     256,
		Workers:        2,
		MaxBatch:       8,
		RequestTimeout: 30 * time.Second,
	}
}

// TestServeFleetFailover is the fleet e2e: three replicas behind one
// client, one replica killed mid-stream. Idempotent calls must not fail —
// transport errors and drain 503s fail over to survivors — every response
// must carry the serving fingerprint, and post-mortem the load must be
// spread within 2x across the survivors. Run under -race.
func TestServeFleetFailover(t *testing.T) {
	pred := trainPredictor(t, unroll.NearNeighbor)
	var servers []*Server
	var urls []string
	for i := 0; i < 3; i++ {
		s, err := New(fleetConfig(pred))
		if err != nil {
			t.Fatal(err)
		}
		addr, err := s.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
		urls = append(urls, "http://"+addr)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, s := range servers {
			s.Shutdown(ctx)
		}
	})

	c, err := client.NewClient(client.Config{
		Endpoints: urls,
		Retry:     &client.RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Seed: 11},
		Breaker:   &client.BreakerPolicy{Threshold: 3, Cooldown: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}

	var before [3]int64
	for i := range before {
		before[i] = obs.C(fmt.Sprintf("client.endpoint.%d.requests", i)).Value()
	}

	const total, workers = 400, 8
	killTrigger := make(chan struct{})
	killDone := make(chan struct{})
	var completed atomic.Int64
	go func() {
		defer close(killDone)
		<-killTrigger
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		servers[0].Shutdown(ctx)
	}()

	var wg sync.WaitGroup
	ctx := context.Background()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < total; i += workers {
				resp, err := c.Predict(ctx, client.PredictRequest{Source: testKernels[i%len(testKernels)]})
				if n := completed.Add(1); n == total/4 {
					close(killTrigger)
				}
				if err != nil {
					t.Errorf("idempotent call %d failed across a 3-replica fleet: %v", i, err)
					continue
				}
				if resp.Fingerprint != pred.Fingerprint() {
					t.Errorf("call %d: response fingerprint %q, want the serving model's %q", i, resp.Fingerprint, pred.Fingerprint())
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case <-killDone:
	case <-time.After(15 * time.Second):
		t.Fatal("replica shutdown never completed")
	}

	// Survivors (endpoints 1 and 2) must have shared the load within 2x.
	d1 := obs.C("client.endpoint.1.requests").Value() - before[1]
	d2 := obs.C("client.endpoint.2.requests").Value() - before[2]
	lo, hi := d1, d2
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo == 0 {
		t.Fatalf("a survivor saw no traffic: %d vs %d", d1, d2)
	}
	if hi > 2*lo {
		t.Errorf("survivor spread %d vs %d exceeds 2x", d1, d2)
	}
}

// rawPost sends body to path and returns the raw response bytes.
func rawPost(t *testing.T, base, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestServeFleetV1BitCompat pins the v1 wire format two ways: /v1 and /v2
// must answer byte-identical bodies for the same request on the default
// model, and the v1 single-predict body must match a reconstructed golden
// encoding — field order, names, and trailing newline included.
func TestServeFleetV1BitCompat(t *testing.T) {
	pred := trainPredictor(t, unroll.NearNeighbor)
	cfg := fleetConfig(pred)
	cfg.CacheSize = -1 // cached flags would differ between the two calls
	_, c := newTestServer(t, cfg)
	base := c.Endpoints()[0]

	reqBody := fmt.Sprintf(`{"source":%q}`, testKernels[0])
	v1Status, v1 := rawPost(t, base, "/v1/predict", reqBody)
	v2Status, v2 := rawPost(t, base, "/v2/predict", reqBody)
	if v1Status != http.StatusOK || v2Status != http.StatusOK {
		t.Fatalf("status %d / %d", v1Status, v2Status)
	}
	if !bytes.Equal(v1, v2) {
		t.Fatalf("/v1/predict and /v2/predict disagree on the default model:\nv1: %s\nv2: %s", v1, v2)
	}

	// Golden v1 body, reconstructed from direct library calls.
	loop := parseKernel(t, testKernels[0])
	factor, err := pred.PredictCtx(context.Background(), loop)
	if err != nil {
		t.Fatal(err)
	}
	golden := fmt.Sprintf(`{"factor":%d,"loop":%q,"model_version":%d,"fingerprint":%q}`+"\n",
		factor, loop.Name, pred.Version(), pred.Fingerprint())
	if string(v1) != golden {
		t.Fatalf("/v1/predict body drifted from the recorded v1 encoding:\ngot:  %s\nwant: %s", v1, golden)
	}

	// Batch: same equivalence on a 3-loop request.
	batchBody := fmt.Sprintf(`{"loops":[{"source":%q},{"source":%q},{"source":%q}]}`,
		testKernels[1], testKernels[2], testKernels[3])
	b1Status, b1 := rawPost(t, base, "/v1/predict/batch", batchBody)
	b2Status, b2 := rawPost(t, base, "/v2/predict/batch", batchBody)
	if b1Status != http.StatusOK || b2Status != http.StatusOK {
		t.Fatalf("batch status %d / %d", b1Status, b2Status)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("/v1 and /v2 batch disagree:\nv1: %s\nv2: %s", b1, b2)
	}

	// v1 must ignore the v2 routing fields rather than honor them: an
	// unknown model pin is an error on /v2 and a no-op on /v1.
	pinned := fmt.Sprintf(`{"source":%q,"model":"nonesuch"}`, testKernels[0])
	if status, _ := rawPost(t, base, "/v1/predict", pinned); status != http.StatusOK {
		t.Errorf("/v1/predict rejected a body with v2 fields: %d", status)
	}
	if status, _ := rawPost(t, base, "/v2/predict", pinned); status != http.StatusNotFound {
		t.Errorf("/v2/predict with unknown model = %d, want 404", status)
	}
}

// TestServeFleetV2ModelRouting drives the registry through the wire: load
// a second version, pin requests to it by alias and fingerprint, check
// per-model and per-tenant accounting, then promote and evict.
func TestServeFleetV2ModelRouting(t *testing.T) {
	prim := trainPredictor(t, unroll.NearNeighbor)
	canary := trainPredictor(t, unroll.DecisionTree)
	if prim.Fingerprint() == canary.Fingerprint() {
		t.Fatal("test needs two distinct models")
	}
	canaryPath := filepath.Join(t.TempDir(), "canary.model")
	if err := canary.SaveFile(canaryPath); err != nil {
		t.Fatal(err)
	}

	cfg := fleetConfig(prim)
	cfg.CacheSize = -1 // pinned requests must reach the pinned model, not the cache
	_, c := newTestServer(t, cfg)
	ctx := context.Background()

	info, err := c.ModelLoad(ctx, client.ModelLoadRequest{Path: canaryPath, Alias: "canary", Pin: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.Fingerprint != canary.Fingerprint() || !info.Pinned || len(info.Aliases) != 1 {
		t.Fatalf("load answered %+v", info)
	}

	// Pinned requests route to the canary; unpinned stay on the default.
	tenantReqs := obs.C("serve.tenant.acme.requests").Value()
	for _, pin := range []string{"canary", canary.Fingerprint(), canary.Fingerprint()[:12]} {
		resp, err := c.PredictV2(ctx, client.PredictV2Request{
			PredictRequest: client.PredictRequest{Source: testKernels[0]},
			Model:          pin,
			Tenant:         "acme",
		})
		if err != nil {
			t.Fatalf("pin %q: %v", pin, err)
		}
		if resp.Fingerprint != canary.Fingerprint() {
			t.Fatalf("pin %q served by %q, want canary %q", pin, resp.Fingerprint, canary.Fingerprint())
		}
	}
	if resp, err := c.PredictV2(ctx, client.PredictV2Request{PredictRequest: client.PredictRequest{Source: testKernels[0]}}); err != nil || resp.Fingerprint != prim.Fingerprint() {
		t.Fatalf("unpinned v2 request: %v (fingerprint %q)", err, resp.Fingerprint)
	}
	if got := obs.C("serve.tenant.acme.requests").Value() - tenantReqs; got != 3 {
		t.Errorf("serve.tenant.acme.requests moved %d, want 3", got)
	}
	fp12 := canary.Fingerprint()[:12]
	if obs.C("serve.model."+fp12+".requests").Value() == 0 {
		t.Error("per-model request counter never moved")
	}

	// Batch pinning routes the whole batch.
	bresp, err := c.PredictBatchV2(ctx, client.BatchV2Request{
		Loops: []client.PredictRequest{{Source: testKernels[1]}, {Source: testKernels[2]}},
		Model: "canary",
	})
	if err != nil || bresp.Fingerprint != canary.Fingerprint() {
		t.Fatalf("batch pin: %v (fingerprint %q)", err, bresp.Fingerprint)
	}

	// The registry listing shows both versions with the default marked.
	models, err := c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if models.Default != prim.Fingerprint() || len(models.Models) != 2 {
		t.Fatalf("listing %+v", models)
	}

	// Promote the canary; the default route follows; the old default can
	// then be evicted while the new one cannot.
	if _, err := c.ModelPromote(ctx, "canary"); err != nil {
		t.Fatal(err)
	}
	if resp, err := c.PredictV2(ctx, client.PredictV2Request{PredictRequest: client.PredictRequest{Source: testKernels[3]}}); err != nil || resp.Fingerprint != canary.Fingerprint() {
		t.Fatalf("post-promote default: %v (fingerprint %q)", err, resp.Fingerprint)
	}
	if mi, err := c.Model(ctx); err != nil || mi.Fingerprint != canary.Fingerprint() || !mi.Default {
		t.Fatalf("GET /v1/model after promote: %+v, %v", mi, err)
	}
	if _, err := c.ModelEvict(ctx, "canary"); !errors.Is(err, &client.APIError{Code: client.CodeConflict}) {
		t.Fatalf("evicting the default = %v, want conflict", err)
	}
	if _, err := c.ModelEvict(ctx, prim.Fingerprint()); err != nil {
		t.Fatal(err)
	}
	if models, err := c.Models(ctx); err != nil || len(models.Models) != 1 {
		t.Fatalf("post-evict listing: %+v, %v", models, err)
	}
	if _, err := c.ModelPromote(ctx, "nonesuch"); !errors.Is(err, &client.APIError{Code: client.CodeNotFound}) {
		t.Fatalf("promoting an unknown ref = %v, want not_found", err)
	}
}
