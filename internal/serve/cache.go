package serve

import (
	"container/list"
	"sync"
)

// lru is a fixed-capacity least-recently-used prediction cache. Keys are
// canonical loop hashes (which embed the model fingerprint, so a reload
// naturally misses) and values are predicted factors.
type lru struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recent
	m   map[string]*list.Element
}

type lruEntry struct {
	key    string
	factor int
}

// newLRU returns a cache holding up to max entries; max <= 0 disables
// caching (every get misses, every put is dropped).
func newLRU(max int) *lru {
	return &lru{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *lru) get(key string) (int, bool) {
	if c.max <= 0 {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return 0, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).factor, true
}

func (c *lru) put(key string, factor int) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry).factor = factor
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, factor: factor})
	if c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*lruEntry).key)
	}
}

func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
