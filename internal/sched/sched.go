// Package sched implements the operation list scheduler used when software
// pipelining is disabled: a cycle-driven, critical-path-priority scheduler
// with functional-unit reservation, producing the issue cycle of every
// operation plus the steady-state period of the loop body (including stalls
// imposed across the back edge by loop-carried dependences).
package sched

import (
	"fmt"
	"sort"

	"metaopt/internal/analysis"
	"metaopt/internal/machine"
)

// Schedule is the result of list-scheduling one loop body.
type Schedule struct {
	Graph *analysis.Graph

	// Cycle is the issue cycle of each op (indexed like Graph.Ops).
	Cycle []int

	// Length is the number of issue cycles in the body schedule
	// (last issue cycle + 1).
	Length int

	// Period is the steady-state cycle count per body execution: schedule
	// length, back-edge redirect cost, and any extra stall needed to honor
	// loop-carried dependences between consecutive bodies.
	Period int
}

// List schedules the body of g's loop. It always succeeds: the dependence
// graph restricted to same-iteration edges is acyclic by IR construction.
func List(g *analysis.Graph) *Schedule {
	n := len(g.Ops)
	s := &Schedule{Graph: g, Cycle: make([]int, n)}
	if n == 0 {
		s.Period = 1
		return s
	}
	m := g.Mach

	// Priority: height — longest dist-0 path from the op to any sink,
	// including latencies.
	height := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		height[i] = m.Latency(g.Ops[i])
		for _, e := range g.Out[i] {
			if e.Dist != 0 {
				continue
			}
			if h := e.Lat + height[e.To]; h > height[i] {
				height[i] = h
			}
		}
	}

	// Earliest start constrained by scheduled dist-0 predecessors.
	preds := make([]int, n) // unscheduled dist-0 predecessor count
	earliest := make([]int, n)
	for i := range g.Ops {
		for _, e := range g.In[i] {
			if e.Dist == 0 {
				preds[i]++
			}
		}
	}
	var ready []int
	for i := range g.Ops {
		if preds[i] == 0 {
			ready = append(ready, i)
		}
	}

	// Resource state, grown on demand: per-kind usage and issue count per
	// cycle.
	var unitUse [machine.NumUnitKinds][]int
	var issueUse []int
	ensure := func(c int) {
		for len(issueUse) <= c {
			issueUse = append(issueUse, 0)
			for k := range unitUse {
				unitUse[k] = append(unitUse[k], 0)
			}
		}
	}
	fits := func(op int, c int) bool {
		kind := m.UnitFor(g.Ops[op].Code)
		block := m.BlockCycles(g.Ops[op].Code)
		ensure(c + block)
		if issueUse[c] >= m.IssueWidth {
			return false
		}
		for j := 0; j < block; j++ {
			if unitUse[kind][c+j] >= m.Units[kind] {
				return false
			}
		}
		return true
	}
	place := func(op, c int) {
		kind := m.UnitFor(g.Ops[op].Code)
		block := m.BlockCycles(g.Ops[op].Code)
		ensure(c + block)
		issueUse[c]++
		for j := 0; j < block; j++ {
			unitUse[kind][c+j]++
		}
		s.Cycle[op] = c
	}

	remaining := n
	cycle := 0
	for remaining > 0 {
		// Keep filling the current cycle until nothing more fits: an op
		// whose predecessors all issue this cycle with zero latency may
		// still co-issue (e.g. the back-edge branch beside the last store).
		for {
			// Highest first; stable tiebreak on program order.
			sort.SliceStable(ready, func(a, b int) bool { return height[ready[a]] > height[ready[b]] })
			var deferred []int
			placedAny := false
			for _, op := range ready {
				if earliest[op] > cycle || !fits(op, cycle) {
					deferred = append(deferred, op)
					continue
				}
				place(op, cycle)
				placedAny = true
				remaining--
				if s.Cycle[op]+1 > s.Length {
					s.Length = s.Cycle[op] + 1
				}
				for _, e := range g.Out[op] {
					if e.Dist != 0 {
						continue
					}
					if t := cycle + e.Lat; t > earliest[e.To] {
						earliest[e.To] = t
					}
					preds[e.To]--
					if preds[e.To] == 0 {
						deferred = append(deferred, e.To)
					}
				}
			}
			ready = deferred
			if !placedAny {
				break
			}
		}
		cycle++
		if cycle > 4*n*16+64 {
			panic(fmt.Sprintf("sched: no progress scheduling %s", g.Loop.Name))
		}
	}

	s.Period = s.Length + m.BranchCycles - 1
	// Loop-carried dependences may stretch the inter-body period: op v of
	// body k+d must start at least lat cycles after op u of body k.
	for _, e := range g.Edges {
		if e.Dist == 0 {
			continue
		}
		need := s.Cycle[e.From] + e.Lat - s.Cycle[e.To]
		if need <= 0 {
			continue
		}
		p := (need + e.Dist - 1) / e.Dist
		if p > s.Period {
			s.Period = p
		}
	}
	return s
}

// Verify checks that the schedule respects dependences and resources.
// It is used by tests and as an internal consistency check.
func (s *Schedule) Verify() error {
	g := s.Graph
	m := g.Mach
	for _, e := range g.Edges {
		if e.Dist != 0 {
			continue
		}
		if s.Cycle[e.From]+e.Lat > s.Cycle[e.To] {
			return fmt.Errorf("sched: %s: edge v%d→v%d (%s lat %d) violated: %d → %d",
				g.Loop.Name, g.Ops[e.From].ID, g.Ops[e.To].ID, e.Kind, e.Lat, s.Cycle[e.From], s.Cycle[e.To])
		}
	}
	var unitUse [machine.NumUnitKinds]map[int]int
	for k := range unitUse {
		unitUse[k] = map[int]int{}
	}
	issue := map[int]int{}
	for i, op := range g.Ops {
		c := s.Cycle[i]
		issue[c]++
		if issue[c] > m.IssueWidth {
			return fmt.Errorf("sched: %s: issue width exceeded at cycle %d", g.Loop.Name, c)
		}
		kind := m.UnitFor(op.Code)
		for j := 0; j < m.BlockCycles(op.Code); j++ {
			unitUse[kind][c+j]++
			if unitUse[kind][c+j] > m.Units[kind] {
				return fmt.Errorf("sched: %s: unit %s oversubscribed at cycle %d", g.Loop.Name, kind, c+j)
			}
		}
	}
	return nil
}
