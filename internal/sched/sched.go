// Package sched implements the operation list scheduler used when software
// pipelining is disabled: a cycle-driven, critical-path-priority scheduler
// with functional-unit reservation, producing the issue cycle of every
// operation plus the steady-state period of the loop body (including stalls
// imposed across the back edge by loop-carried dependences).
package sched

import (
	"fmt"
	"sync"

	"metaopt/internal/analysis"
	"metaopt/internal/machine"
	"metaopt/internal/obs"
)

// Scheduler pool telemetry: the labeler schedules every candidate body
// through the shared pool, so hits vs. misses is the steady-state
// allocation story.
var (
	mPoolHits   = obs.C("sched.pool_hits")
	mPoolMisses = obs.C("sched.pool_misses")
)

// Schedule is the result of list-scheduling one loop body.
type Schedule struct {
	Graph *analysis.Graph

	// Cycle is the issue cycle of each op (indexed like Graph.Ops).
	Cycle []int

	// Length is the number of issue cycles in the body schedule
	// (last issue cycle + 1).
	Length int

	// Period is the steady-state cycle count per body execution: schedule
	// length, back-edge redirect cost, and any extra stall needed to honor
	// loop-carried dependences between consecutive bodies.
	Period int
}

// readyEnt is one entry of the ready queue: an op with its priority key.
type readyEnt struct {
	h   int // height: longest latency path to a sink (higher first)
	seq int // arrival order (earlier first) — makes the queue stable
	op  int
}

// readyHeap is a binary heap ordered by (height desc, seq asc): popping
// yields exactly the sequence a stable sort of the arrival order by
// descending height would, without re-sorting the whole queue every pass.
type readyHeap []readyEnt

func (h readyHeap) before(a, b int) bool {
	if h[a].h != h[b].h {
		return h[a].h > h[b].h
	}
	return h[a].seq < h[b].seq
}

func (h *readyHeap) push(e readyEnt) {
	*h = append(*h, e)
	q := *h
	for i := len(q) - 1; i > 0; {
		p := (i - 1) / 2
		if !q.before(i, p) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *readyHeap) pop() readyEnt {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	*h = q
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		next := i
		if l < last && q.before(l, next) {
			next = l
		}
		if r < last && q.before(r, next) {
			next = r
		}
		if next == i {
			break
		}
		q[i], q[next] = q[next], q[i]
		i = next
	}
	return top
}

// Scheduler is reusable scratch state for List. A zero Scheduler is ready
// to use; after the first few calls it reaches steady state and ListInto
// performs no heap allocations. A Scheduler must not be used concurrently.
type Scheduler struct {
	height   []int
	preds    []int
	earliest []int
	cur      readyHeap // ready queue drained this pass
	next     readyHeap // deferred + newly enabled ops for the next pass
	unitUse  [machine.NumUnitKinds][]int
	issueUse []int
	warm     bool // has been through the pool at least once (telemetry)
}

// pool is the shared scratch-state pool behind the package-level List;
// internal/sim and internal/swp schedule every candidate body through it.
var pool = sync.Pool{New: func() any { return new(Scheduler) }}

// Get returns a pooled Scheduler; pair with Put.
func Get() *Scheduler {
	sc := pool.Get().(*Scheduler)
	if sc.warm {
		mPoolHits.Inc()
	} else {
		mPoolMisses.Inc()
		sc.warm = true
	}
	return sc
}

// Put returns a Scheduler to the pool.
func Put(sc *Scheduler) { pool.Put(sc) }

// List schedules the body of g's loop using pooled scratch state. It
// always succeeds: the dependence graph restricted to same-iteration edges
// is acyclic by IR construction.
func List(g *analysis.Graph) *Schedule {
	sc := Get()
	s := sc.ListInto(g, &Schedule{})
	Put(sc)
	return s
}

// grow returns sl resliced to length n within capacity, zeroed, allocating
// only when capacity is insufficient.
func grow(sl []int, n int) []int {
	if cap(sl) < n {
		return make([]int, n)
	}
	sl = sl[:n]
	clear(sl)
	return sl
}

// ListInto is List with caller-owned result storage: s is reset, filled,
// and returned, reusing s.Cycle's capacity. In steady state (warm scratch,
// warm s.Cycle) it does not allocate.
func (sc *Scheduler) ListInto(g *analysis.Graph, s *Schedule) *Schedule {
	n := len(g.Ops)
	*s = Schedule{Graph: g, Cycle: grow(s.Cycle, n)}
	if n == 0 {
		s.Period = 1
		return s
	}
	m := g.Mach

	// Priority: height — longest dist-0 path from the op to any sink,
	// including latencies.
	height := grow(sc.height, n)
	sc.height = height
	for i := n - 1; i >= 0; i-- {
		height[i] = m.Latency(g.Ops[i])
		for _, e := range g.Out[i] {
			if e.Dist != 0 {
				continue
			}
			if h := e.Lat + height[e.To]; h > height[i] {
				height[i] = h
			}
		}
	}

	// Earliest start constrained by scheduled dist-0 predecessors.
	preds := grow(sc.preds, n) // unscheduled dist-0 predecessor count
	earliest := grow(sc.earliest, n)
	sc.preds, sc.earliest = preds, earliest
	for i := range g.Ops {
		for _, e := range g.In[i] {
			if e.Dist == 0 {
				preds[i]++
			}
		}
	}
	// The ready queue pops by (height desc, arrival seq asc), which
	// reproduces a stable descending-height sort of the arrival order.
	cur, next := sc.cur[:0], sc.next[:0]
	seq := 0
	for i := range g.Ops {
		if preds[i] == 0 {
			cur.push(readyEnt{h: height[i], seq: seq, op: i})
			seq++
		}
	}

	// Resource state, grown on demand: per-kind usage and issue count per
	// cycle. Lengths reset to zero each call; appends reuse capacity.
	issueUse := sc.issueUse[:0]
	unitUse := sc.unitUse
	for k := range unitUse {
		unitUse[k] = unitUse[k][:0]
	}
	ensure := func(c int) {
		for len(issueUse) <= c {
			issueUse = append(issueUse, 0)
			for k := range unitUse {
				unitUse[k] = append(unitUse[k], 0)
			}
		}
	}
	fits := func(op int, c int) bool {
		kind := m.UnitFor(g.Ops[op].Code)
		block := m.BlockCycles(g.Ops[op].Code)
		ensure(c + block)
		if issueUse[c] >= m.IssueWidth {
			return false
		}
		for j := 0; j < block; j++ {
			if unitUse[kind][c+j] >= m.Units[kind] {
				return false
			}
		}
		return true
	}
	place := func(op, c int) {
		kind := m.UnitFor(g.Ops[op].Code)
		block := m.BlockCycles(g.Ops[op].Code)
		ensure(c + block)
		issueUse[c]++
		for j := 0; j < block; j++ {
			unitUse[kind][c+j]++
		}
		s.Cycle[op] = c
	}

	remaining := n
	cycle := 0
	for remaining > 0 {
		// Keep filling the current cycle until nothing more fits: an op
		// whose predecessors all issue this cycle with zero latency may
		// still co-issue (e.g. the back-edge branch beside the last store).
		for {
			placedAny := false
			for len(cur) > 0 {
				op := cur.pop().op
				if earliest[op] > cycle || !fits(op, cycle) {
					next.push(readyEnt{h: height[op], seq: seq, op: op})
					seq++
					continue
				}
				place(op, cycle)
				placedAny = true
				remaining--
				if s.Cycle[op]+1 > s.Length {
					s.Length = s.Cycle[op] + 1
				}
				for _, e := range g.Out[op] {
					if e.Dist != 0 {
						continue
					}
					if t := cycle + e.Lat; t > earliest[e.To] {
						earliest[e.To] = t
					}
					preds[e.To]--
					if preds[e.To] == 0 {
						next.push(readyEnt{h: height[e.To], seq: seq, op: e.To})
						seq++
					}
				}
			}
			cur, next = next, cur[:0]
			if !placedAny {
				break
			}
		}
		cycle++
		if cycle > 4*n*16+64 {
			panic(fmt.Sprintf("sched: no progress scheduling %s", g.Loop.Name))
		}
	}
	sc.cur, sc.next = cur, next
	sc.issueUse = issueUse
	sc.unitUse = unitUse

	s.Period = s.Length + m.BranchCycles - 1
	// Loop-carried dependences may stretch the inter-body period: op v of
	// body k+d must start at least lat cycles after op u of body k.
	for _, e := range g.Edges {
		if e.Dist == 0 {
			continue
		}
		need := s.Cycle[e.From] + e.Lat - s.Cycle[e.To]
		if need <= 0 {
			continue
		}
		p := (need + e.Dist - 1) / e.Dist
		if p > s.Period {
			s.Period = p
		}
	}
	return s
}

// Verify checks that the schedule respects dependences and resources.
// It is used by tests and as an internal consistency check.
func (s *Schedule) Verify() error {
	g := s.Graph
	m := g.Mach
	for _, e := range g.Edges {
		if e.Dist != 0 {
			continue
		}
		if s.Cycle[e.From]+e.Lat > s.Cycle[e.To] {
			return fmt.Errorf("sched: %s: edge v%d→v%d (%s lat %d) violated: %d → %d",
				g.Loop.Name, g.Ops[e.From].ID, g.Ops[e.To].ID, e.Kind, e.Lat, s.Cycle[e.From], s.Cycle[e.To])
		}
	}
	// Resource tables indexed by cycle, grown on demand.
	var unitUse [machine.NumUnitKinds][]int
	var issue []int
	ensure := func(c int) {
		for len(issue) <= c {
			issue = append(issue, 0)
			for k := range unitUse {
				unitUse[k] = append(unitUse[k], 0)
			}
		}
	}
	for i, op := range g.Ops {
		c := s.Cycle[i]
		block := m.BlockCycles(op.Code)
		ensure(c + block)
		issue[c]++
		if issue[c] > m.IssueWidth {
			return fmt.Errorf("sched: %s: issue width exceeded at cycle %d", g.Loop.Name, c)
		}
		kind := m.UnitFor(op.Code)
		for j := 0; j < block; j++ {
			unitUse[kind][c+j]++
			if unitUse[kind][c+j] > m.Units[kind] {
				return fmt.Errorf("sched: %s: unit %s oversubscribed at cycle %d", g.Loop.Name, kind, c+j)
			}
		}
	}
	return nil
}
