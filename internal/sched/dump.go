package sched

import (
	"fmt"
	"sort"
	"strings"

	"metaopt/internal/machine"
)

// Dump renders the schedule as a cycle-by-cycle issue table, one column
// per functional-unit class, the way VLIW compiler listings present
// bundles. Long-latency results are annotated with their ready cycle.
func (s *Schedule) Dump() string {
	g := s.Graph
	m := g.Mach
	byCycle := map[int][]int{}
	for i := range g.Ops {
		byCycle[s.Cycle[i]] = append(byCycle[s.Cycle[i]], i)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "list schedule of %s: %d ops, length %d, period %d\n",
		g.Loop.Name, len(g.Ops), s.Length, s.Period)
	for c := 0; c < s.Length; c++ {
		ops := byCycle[c]
		if len(ops) == 0 {
			fmt.Fprintf(&sb, "%4d | (stall)\n", c)
			continue
		}
		sort.Slice(ops, func(a, b int) bool {
			ka := m.UnitFor(g.Ops[ops[a]].Code)
			kb := m.UnitFor(g.Ops[ops[b]].Code)
			if ka != kb {
				return ka < kb
			}
			return ops[a] < ops[b]
		})
		cells := make([]string, 0, len(ops))
		for _, i := range ops {
			op := g.Ops[i]
			cell := fmt.Sprintf("%s:%s", m.UnitFor(op.Code), opLabel(s, i))
			if lat := m.Latency(op); lat > 1 && op.Code.HasResult() {
				cell += fmt.Sprintf("(->%d)", c+lat)
			}
			cells = append(cells, cell)
		}
		fmt.Fprintf(&sb, "%4d | %s\n", c, strings.Join(cells, "  "))
	}
	return sb.String()
}

func opLabel(s *Schedule, i int) string {
	op := s.Graph.Ops[i]
	if op.Mem != nil {
		return fmt.Sprintf("%s %s", op.Code, op.Mem)
	}
	if op.Name != "" {
		return fmt.Sprintf("%s %s", op.Code, op.Name)
	}
	return fmt.Sprintf("%s v%d", op.Code, op.ID)
}

// Utilization returns, per functional-unit class, the fraction of issue
// slots the schedule fills over its length.
func (s *Schedule) Utilization() map[string]float64 {
	g := s.Graph
	m := g.Mach
	if s.Length == 0 {
		return nil
	}
	var used [machine.NumUnitKinds]int
	for _, op := range g.Ops {
		used[m.UnitFor(op.Code)] += m.BlockCycles(op.Code)
	}
	out := map[string]float64{}
	for k := 0; k < machine.NumUnitKinds; k++ {
		kind := machine.UnitKind(k)
		if m.Units[k] == 0 {
			continue
		}
		out[kind.String()] = float64(used[k]) / float64(m.Units[k]*s.Length)
	}
	return out
}
