package sched

import (
	"strings"
	"testing"

	"metaopt/internal/analysis"
	"metaopt/internal/lang"
	"metaopt/internal/machine"
)

func TestDumpRendersEveryOp(t *testing.T) {
	s := mustSched(t, daxpy)
	out := s.Dump()
	for _, want := range []string{"list schedule of daxpy", "load x[i]", "fma", "store y[i]", "br"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	// Long-latency ops are annotated with their ready cycle.
	if !strings.Contains(out, "(->") {
		t.Errorf("dump missing latency annotations:\n%s", out)
	}
}

func TestDumpShowsStalls(t *testing.T) {
	// A serial chain forces empty issue cycles.
	s := mustSched(t, `
kernel chain lang=fortran {
	double a[], o[];
	for i = 0 .. 64 { o[i] = ((a[i] * 2.0) * 3.0) * 4.0; }
}`)
	if !strings.Contains(s.Dump(), "(stall)") {
		t.Errorf("expected stalls in serial chain:\n%s", s.Dump())
	}
}

func TestUtilization(t *testing.T) {
	s := mustSched(t, daxpy)
	util := s.Utilization()
	for kind, v := range util {
		if v < 0 || v > 1 {
			t.Errorf("utilization[%s] = %v", kind, v)
		}
	}
	if util["M"] <= 0 {
		t.Errorf("M utilization = %v, daxpy has 3 memory ops", util["M"])
	}
}

func TestUtilizationEmpty(t *testing.T) {
	k, err := lang.ParseKernel(daxpy)
	if err != nil {
		t.Fatal(err)
	}
	l, err := lang.Lower(k)
	if err != nil {
		t.Fatal(err)
	}
	s := List(analysis.Build(l, machine.Itanium2()))
	s.Length = 0
	if s.Utilization() != nil {
		t.Error("zero-length schedule should have nil utilization")
	}
}
