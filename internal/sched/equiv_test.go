package sched

import (
	"sort"
	"testing"

	"metaopt/internal/analysis"
	"metaopt/internal/lang"
	"metaopt/internal/machine"
	"metaopt/internal/transform"
)

// referenceList is the pre-heap list scheduler kept verbatim as a test
// oracle: each pass stable-sorts the ready list by descending height. The
// production scheduler's (height desc, arrival seq asc) heap must place
// every op at exactly the same cycle.
func referenceList(g *analysis.Graph) *Schedule {
	n := len(g.Ops)
	s := &Schedule{Graph: g, Cycle: make([]int, n)}
	if n == 0 {
		s.Period = 1
		return s
	}
	m := g.Mach
	height := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		height[i] = m.Latency(g.Ops[i])
		for _, e := range g.Out[i] {
			if e.Dist != 0 {
				continue
			}
			if h := e.Lat + height[e.To]; h > height[i] {
				height[i] = h
			}
		}
	}
	preds := make([]int, n)
	earliest := make([]int, n)
	for i := range g.Ops {
		for _, e := range g.In[i] {
			if e.Dist == 0 {
				preds[i]++
			}
		}
	}
	var ready []int
	for i := range g.Ops {
		if preds[i] == 0 {
			ready = append(ready, i)
		}
	}
	var unitUse [machine.NumUnitKinds][]int
	var issueUse []int
	ensure := func(c int) {
		for len(issueUse) <= c {
			issueUse = append(issueUse, 0)
			for k := range unitUse {
				unitUse[k] = append(unitUse[k], 0)
			}
		}
	}
	fits := func(op int, c int) bool {
		kind := m.UnitFor(g.Ops[op].Code)
		block := m.BlockCycles(g.Ops[op].Code)
		ensure(c + block)
		if issueUse[c] >= m.IssueWidth {
			return false
		}
		for j := 0; j < block; j++ {
			if unitUse[kind][c+j] >= m.Units[kind] {
				return false
			}
		}
		return true
	}
	place := func(op, c int) {
		kind := m.UnitFor(g.Ops[op].Code)
		block := m.BlockCycles(g.Ops[op].Code)
		ensure(c + block)
		issueUse[c]++
		for j := 0; j < block; j++ {
			unitUse[kind][c+j]++
		}
		s.Cycle[op] = c
	}
	remaining := n
	cycle := 0
	for remaining > 0 {
		for {
			sort.SliceStable(ready, func(a, b int) bool { return height[ready[a]] > height[ready[b]] })
			var deferred []int
			placedAny := false
			for _, op := range ready {
				if earliest[op] > cycle || !fits(op, cycle) {
					deferred = append(deferred, op)
					continue
				}
				place(op, cycle)
				placedAny = true
				remaining--
				if s.Cycle[op]+1 > s.Length {
					s.Length = s.Cycle[op] + 1
				}
				for _, e := range g.Out[op] {
					if e.Dist != 0 {
						continue
					}
					if t := cycle + e.Lat; t > earliest[e.To] {
						earliest[e.To] = t
					}
					preds[e.To]--
					if preds[e.To] == 0 {
						deferred = append(deferred, e.To)
					}
				}
			}
			ready = deferred
			if !placedAny {
				break
			}
		}
		cycle++
	}
	s.Period = s.Length + m.BranchCycles - 1
	for _, e := range g.Edges {
		if e.Dist == 0 {
			continue
		}
		need := s.Cycle[e.From] + e.Lat - s.Cycle[e.To]
		if need <= 0 {
			continue
		}
		p := (need + e.Dist - 1) / e.Dist
		if p > s.Period {
			s.Period = p
		}
	}
	return s
}

var equivKernels = []string{
	daxpy,
	`
kernel mixed lang=c {
	double a[], b[], c[];
	int k[];
	for i = 0 .. 512 {
		c[i] = a[i]*b[i] + a[i]/b[i];
		k[i] = k[i] + 3;
	}
}`,
	`
kernel reduce lang=fortran {
	double a[];
	double s;
	for i = 0 .. 256 { s = s + a[i]*a[i]; }
}`,
	`
kernel stencil lang=c {
	double a[], b[];
	for i = 1 .. 1000 { b[i] = a[i-1] + a[i] + a[i+1]; }
}`,
}

// TestHeapMatchesStableSort places every kernel at every unroll factor with
// both the heap scheduler and the stable-sort oracle and requires
// cycle-exact agreement.
func TestHeapMatchesStableSort(t *testing.T) {
	m := machine.Itanium2()
	sc := Get()
	defer Put(sc)
	var s Schedule
	for _, src := range equivKernels {
		k, err := lang.ParseKernel(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		l, err := lang.Lower(k)
		if err != nil {
			t.Fatalf("lower: %v", err)
		}
		for u := 1; u <= transform.MaxFactor; u++ {
			ul, _, err := transform.Unroll(l, u)
			if err != nil {
				t.Fatalf("%s u=%d: unroll: %v", l.Name, u, err)
			}
			g := analysis.Build(ul, m)
			got := sc.ListInto(g, &s)
			want := referenceList(g)
			if got.Length != want.Length || got.Period != want.Period {
				t.Fatalf("%s u=%d: length/period = %d/%d, want %d/%d",
					l.Name, u, got.Length, got.Period, want.Length, want.Period)
			}
			for i := range want.Cycle {
				if got.Cycle[i] != want.Cycle[i] {
					t.Fatalf("%s u=%d: op %d at cycle %d, oracle says %d",
						l.Name, u, i, got.Cycle[i], want.Cycle[i])
				}
			}
			if err := got.Verify(); err != nil {
				t.Fatalf("%s u=%d: %v", l.Name, u, err)
			}
		}
	}
}

// TestListIntoZeroAllocs pins the pooled scheduling path at zero heap
// allocations per call in steady state.
func TestListIntoZeroAllocs(t *testing.T) {
	k, err := lang.ParseKernel(daxpy)
	if err != nil {
		t.Fatal(err)
	}
	l, err := lang.Lower(k)
	if err != nil {
		t.Fatal(err)
	}
	ul, _, err := transform.Unroll(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := analysis.Build(ul, machine.Itanium2())
	sc := Get()
	defer Put(sc)
	var s Schedule
	sc.ListInto(g, &s) // warm the scratch state
	allocs := testing.AllocsPerRun(100, func() {
		sc.ListInto(g, &s)
	})
	if allocs != 0 {
		t.Errorf("ListInto allocates %v per run, want 0", allocs)
	}
}
