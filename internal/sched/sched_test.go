package sched

import (
	"testing"

	"metaopt/internal/analysis"
	"metaopt/internal/lang"
	"metaopt/internal/machine"
)

func mustSched(t *testing.T, src string) *Schedule {
	t.Helper()
	k, err := lang.ParseKernel(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	l, err := lang.Lower(k)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	s := List(analysis.Build(l, machine.Itanium2()))
	if err := s.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return s
}

const daxpy = `
kernel daxpy lang=c {
	param double a;
	double x[], y[];
	noalias;
	for i = 0 .. 4096 { y[i] = y[i] + a * x[i]; }
}`

func TestListDaxpy(t *testing.T) {
	s := mustSched(t, daxpy)
	m := machine.Itanium2()
	// Critical chain: fp load (6) → fma (4) → store; the store issues at
	// cycle 10, so the length is 11 and the period ≥ 11.
	want := m.FPLoadLat + m.FPLat + 1
	if s.Length != want {
		t.Errorf("length = %d, want %d", s.Length, want)
	}
	if s.Period < s.Length {
		t.Errorf("period %d < length %d", s.Period, s.Length)
	}
}

func TestListRespectsResources(t *testing.T) {
	// 12 independent loads, 4 M units: at least 3 issue cycles of loads.
	s := mustSched(t, `
kernel manyloads lang=fortran {
	double a[], b[], c[], d[], e[], f[], g[], h[], p[], q[], r[], s[], o[];
	for i = 0 .. 100 {
		o[i] = a[i]+b[i]+c[i]+d[i]+e[i]+f[i]+g[i]+h[i]+p[i]+q[i]+r[i]+s[i];
	}
}`)
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPeriodIncludesCarriedStall(t *testing.T) {
	// A serial floating-point recurrence: s = s*0.5 + a[i]. The next body
	// cannot start its fma before the previous fma finishes, so the period
	// is pinned at ≥ FPLat even though the schedule itself is short.
	s := mustSched(t, `
kernel serial lang=fortran {
	double a[];
	double s;
	for i = 0 .. 100 { s = s*0.5 + a[i]; }
}`)
	m := machine.Itanium2()
	if s.Period < m.FPLat {
		t.Errorf("period = %d, want >= %d", s.Period, m.FPLat)
	}
}

func TestDivBlocksUnit(t *testing.T) {
	// Two independent fdivs share one schedule: unpipelined divides force
	// them at least DivBlock cycles apart on the 2 F units... with 2 units
	// they can go in parallel, but 3 divides cannot.
	s := mustSched(t, `
kernel divs lang=fortran {
	double a[], b[], c[], o[];
	for i = 0 .. 100 {
		o[i] = a[i]/b[i] + b[i]/c[i] + a[i]/c[i];
	}
}`)
	m := machine.Itanium2()
	if s.Length < m.DivBlock {
		t.Errorf("length = %d, want >= %d (third divide must wait)", s.Length, m.DivBlock)
	}
}

func TestVerifyCatchesViolation(t *testing.T) {
	s := mustSched(t, daxpy)
	// Corrupt the schedule: put everything at cycle 0.
	for i := range s.Cycle {
		s.Cycle[i] = 0
	}
	if err := s.Verify(); err == nil {
		t.Error("expected verification failure")
	}
}

func TestScheduleDeterministic(t *testing.T) {
	a := mustSched(t, daxpy)
	b := mustSched(t, daxpy)
	if a.Length != b.Length || a.Period != b.Period {
		t.Error("schedule not deterministic")
	}
	for i := range a.Cycle {
		if a.Cycle[i] != b.Cycle[i] {
			t.Fatalf("cycle %d differs", i)
		}
	}
}

func TestEmptyBody(t *testing.T) {
	g := &analysis.Graph{Mach: machine.Itanium2()}
	s := List(g)
	if s.Period != 1 {
		t.Errorf("empty period = %d", s.Period)
	}
}
