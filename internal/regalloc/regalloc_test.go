package regalloc

import (
	"testing"

	"metaopt/internal/analysis"
	"metaopt/internal/lang"
	"metaopt/internal/loopgen"
	"metaopt/internal/machine"
	"metaopt/internal/regpress"
	"metaopt/internal/sched"
	"metaopt/internal/transform"
)

func schedOf(t *testing.T, src string, u int, m *machine.Desc) *sched.Schedule {
	t.Helper()
	k, err := lang.ParseKernel(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	l, err := lang.Lower(k)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if u > 1 {
		l, _, err = transform.Unroll(l, u)
		if err != nil {
			t.Fatal(err)
		}
	}
	return sched.List(analysis.Build(l, m))
}

const daxpy = `
kernel daxpy lang=c {
	param double a;
	double x[], y[];
	noalias;
	for i = 0 .. 4096 { y[i] = y[i] + a * x[i]; }
}`

func TestDaxpyAllocatesWithoutSpills(t *testing.T) {
	s := schedOf(t, daxpy, 8, machine.Itanium2())
	r := Run(s)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	if r.SpilledInt+r.SpilledFP != 0 {
		t.Errorf("daxpy u8 spilled %d/%d values on Itanium 2", r.SpilledInt, r.SpilledFP)
	}
	if r.SpillCycles != 0 {
		t.Errorf("spill cycles = %d", r.SpillCycles)
	}
	// Every defined value got a register.
	for _, iv := range r.Intervals {
		if reg := r.Reg[iv.Op]; reg == NoReg || reg == Unallocated {
			t.Fatalf("value v%d unallocated", iv.Op)
		}
	}
}

func TestTinyRegisterFileSpills(t *testing.T) {
	m := machine.Itanium2()
	tiny := *m
	tiny.FPRegs = 4
	s := schedOf(t, `
kernel wide lang=fortran {
	double a[], b[], c[], d[], e[], f[], g[], h[], o[];
	for i = 0 .. 100 {
		o[i] = a[i]*b[i] + c[i]*d[i] + e[i]*f[i] + g[i]*h[i];
	}
}`, 4, &tiny)
	r := Run(s)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	if r.SpilledFP == 0 {
		t.Error("expected FP spills with 4 registers")
	}
	if r.SpillCycles <= 0 {
		t.Errorf("spill cycles = %d", r.SpillCycles)
	}
	if r.StoreOps != r.SpilledInt+r.SpilledFP {
		t.Errorf("stores %d != spilled values %d", r.StoreOps, r.SpilledInt+r.SpilledFP)
	}
	if r.ReloadOps < r.StoreOps {
		t.Errorf("reloads %d < stores %d: spilled values have uses", r.ReloadOps, r.StoreOps)
	}
}

func TestRegisterCountBoundedByFile(t *testing.T) {
	m := machine.Itanium2()
	s := schedOf(t, daxpy, 8, m)
	r := Run(s)
	if got := r.MaxReg(true); got >= m.FPRegs {
		t.Errorf("fp register %d out of file of %d", got, m.FPRegs)
	}
	if got := r.MaxReg(false); got >= m.IntRegs {
		t.Errorf("int register %d out of file of %d", got, m.IntRegs)
	}
}

// TestAgreesWithPressureEstimate: linear scan spills roughly when the
// sweep-based MaxLive estimate exceeds the file, never wildly differently.
func TestAgreesWithPressureEstimate(t *testing.T) {
	c, err := loopgen.Generate(loopgen.Options{Seed: 5, LoopsScale: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	m := machine.Itanium2()
	small := *m
	small.FPRegs = 6
	small.IntRegs = 6
	for _, b := range c.Benchmarks[:24] {
		for _, l := range b.Loops {
			u8, _, err := transform.Unroll(l, 8)
			if err != nil {
				t.Fatal(err)
			}
			s := sched.List(analysis.Build(u8, &small))
			ra := Run(s)
			if err := ra.Verify(); err != nil {
				t.Fatalf("%s/%s: %v", b.Name, l.Name, err)
			}
			p := regpress.Analyze(s)
			estimate := p.SpillsInt + p.SpillsFP
			actual := ra.SpilledInt + ra.SpilledFP
			if estimate == 0 && actual > 3 {
				t.Errorf("%s/%s: allocator spilled %d where estimate saw headroom", b.Name, l.Name, actual)
			}
			if estimate > 4 && actual == 0 {
				t.Errorf("%s/%s: estimate expected %d spills, allocator found none", b.Name, l.Name, estimate)
			}
		}
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	s := schedOf(t, daxpy, 4, machine.Itanium2())
	r := Run(s)
	// Force two overlapping same-class values into one register.
	var seen = -1
	for _, iv := range r.Intervals {
		if !iv.FP {
			continue
		}
		if seen < 0 {
			seen = iv.Op
			continue
		}
		r.Reg[iv.Op] = r.Reg[seen]
	}
	if err := r.Verify(); err == nil {
		t.Skip("no overlapping fp pair to corrupt in this schedule")
	}
}

func TestParamsReserveRegisters(t *testing.T) {
	m := machine.Itanium2()
	withParam := schedOf(t, daxpy, 1, m)
	r := Run(withParam)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	// A machine with a single FP register and an FP param forces every FP
	// value to fight over the one remaining slot (the floor of one).
	one := *m
	one.FPRegs = 1
	s := schedOf(t, daxpy, 2, &one)
	r2 := Run(s)
	if err := r2.Verify(); err != nil {
		t.Fatal(err)
	}
	if r2.SpilledFP == 0 {
		t.Error("expected spills with a single FP register and an FP parameter")
	}
}
