// Package regalloc implements linear-scan register allocation over a
// scheduled loop body (Poletto & Sarkar). It assigns every value a
// physical register in its class (integer or floating point) or spills it,
// providing the simulator with an actual allocation rather than a pressure
// estimate — the register-file interaction the paper names as one of the
// systems unrolling perturbs.
package regalloc

import (
	"fmt"
	"slices"

	"metaopt/internal/analysis"
	"metaopt/internal/ir"
	"metaopt/internal/sched"
)

// NoReg marks a spilled value.
const NoReg = -1

// Unallocated marks an op that produces no register value (stores,
// branches) in Result.Reg.
const Unallocated = -2

// Interval is the live range of one value in the schedule.
type Interval struct {
	Op    int // producing op index (or -1 for a loop parameter)
	Start int
	End   int
	FP    bool
	Uses  int // number of uses (reload count if spilled)
}

// Result is a completed allocation.
type Result struct {
	// Reg maps producing-op index to its register number: NoReg if the
	// value is spilled, Unallocated if the op produces no value.
	// Parameters are not included (they pre-color the bottom of each
	// file). Indexed like Graph.Ops.
	Reg []int

	Intervals []Interval

	SpilledInt, SpilledFP int
	ReloadOps             int // loads inserted for spilled-value uses
	StoreOps              int // stores inserted at spilled-value defs

	// SpillCycles is the modeled per-body cost of the spill code.
	SpillCycles int
}

// Run allocates registers for a list-scheduled body.
func Run(s *sched.Schedule) *Result {
	g := s.Graph
	m := g.Mach
	length := s.Length
	if length < 1 {
		length = 1
	}

	// Parameters pre-color registers for the whole body.
	availInt, availFP := m.IntRegs, m.FPRegs
	for _, p := range g.Loop.Params {
		if p.Code != ir.OpParam {
			continue
		}
		if p.FP {
			availFP--
		} else {
			availInt--
		}
	}
	if availInt < 1 {
		availInt = 1
	}
	if availFP < 1 {
		availFP = 1
	}

	intervals := buildIntervals(s, length)
	res := &Result{Reg: make([]int, len(g.Ops)), Intervals: intervals}
	for i := range res.Reg {
		res.Reg[i] = Unallocated
	}

	res.allocateClass(intervals, false, availInt)
	res.allocateClass(intervals, true, availFP)

	res.SpillCycles = res.StoreOps*m.StoreLat + res.ReloadOps*m.IntLoadLat
	return res
}

// buildIntervals derives live intervals from the schedule: definition to
// last same-iteration use; loop-carried values stay live to the body end.
func buildIntervals(s *sched.Schedule, length int) []Interval {
	g := s.Graph
	var out []Interval
	for i, op := range g.Ops {
		if !op.Code.HasResult() {
			continue
		}
		iv := Interval{Op: i, Start: s.Cycle[i], End: s.Cycle[i], FP: op.FP}
		for _, e := range g.Out[i] {
			if e.Kind != analysis.EdgeData {
				continue
			}
			iv.Uses++
			if e.Dist > 0 {
				iv.End = length
				continue
			}
			if c := s.Cycle[e.To]; c > iv.End {
				iv.End = c
			}
		}
		out = append(out, iv)
	}
	// Stable sort by start cycle, tiebreak on op index (out is built in
	// ascending op order, so this matches the former reflection-based
	// stable sort without its closure allocations).
	slices.SortFunc(out, func(a, b Interval) int {
		if a.Start != b.Start {
			return a.Start - b.Start
		}
		return a.Op - b.Op
	})
	return out
}

// allocateClass runs linear scan over one register class.
func (r *Result) allocateClass(intervals []Interval, fp bool, regs int) {
	type activeIv struct {
		idx int // index into intervals
		reg int
	}
	var active []activeIv
	free := make([]int, 0, regs)
	for k := regs - 1; k >= 0; k-- {
		free = append(free, k)
	}

	expire := func(start int) {
		keep := active[:0]
		for _, a := range active {
			if intervals[a.idx].End >= start {
				keep = append(keep, a)
				continue
			}
			free = append(free, a.reg)
		}
		active = keep
	}

	for i := range intervals {
		iv := &intervals[i]
		if iv.FP != fp {
			continue
		}
		expire(iv.Start)
		if len(free) > 0 {
			reg := free[len(free)-1]
			free = free[:len(free)-1]
			r.Reg[iv.Op] = reg
			active = append(active, activeIv{idx: i, reg: reg})
			continue
		}
		// Spill the interval that ends furthest in the future.
		victim := -1
		for k, a := range active {
			if victim < 0 || intervals[a.idx].End > intervals[active[victim].idx].End {
				victim = k
			}
		}
		if victim >= 0 && intervals[active[victim].idx].End > iv.End {
			// Steal the victim's register; the victim spills.
			v := active[victim]
			r.spill(&intervals[v.idx], fp)
			r.Reg[iv.Op] = v.reg
			active[victim] = activeIv{idx: i, reg: v.reg}
		} else {
			r.spill(iv, fp)
		}
	}
}

func (r *Result) spill(iv *Interval, fp bool) {
	r.Reg[iv.Op] = NoReg
	if fp {
		r.SpilledFP++
	} else {
		r.SpilledInt++
	}
	r.StoreOps++
	r.ReloadOps += iv.Uses
}

// Verify checks the fundamental allocation invariant: two values of the
// same class with overlapping live intervals never share a register.
func (r *Result) Verify() error {
	for a := 0; a < len(r.Intervals); a++ {
		ia := r.Intervals[a]
		ra := r.Reg[ia.Op]
		if ra == NoReg || ra == Unallocated {
			continue
		}
		for b := a + 1; b < len(r.Intervals); b++ {
			ib := r.Intervals[b]
			rb := r.Reg[ib.Op]
			if rb == NoReg || rb == Unallocated || ia.FP != ib.FP || ra != rb {
				continue
			}
			if ia.Start <= ib.End && ib.Start <= ia.End {
				return fmt.Errorf("regalloc: values v%d and v%d share %s register r%d over [%d,%d]∩[%d,%d]",
					ia.Op, ib.Op, className(ia.FP), ra, ia.Start, ia.End, ib.Start, ib.End)
			}
		}
	}
	return nil
}

func className(fp bool) string {
	if fp {
		return "fp"
	}
	return "int"
}

// MaxReg returns the highest register number used in the class, or -1.
func (r *Result) MaxReg(fp bool) int {
	best := -1
	for _, iv := range r.Intervals {
		if iv.FP != fp {
			continue
		}
		if reg := r.Reg[iv.Op]; reg > best {
			best = reg
		}
	}
	return best
}
