package experiments

import (
	"fmt"
	"strings"

	"metaopt/internal/core"
	"metaopt/internal/features"
	"metaopt/internal/lang"
)

// Table2Result reproduces "Accuracy of predictions for the nearest
// neighbors algorithm, an SVM, and ORC's heuristic".
type Table2Result struct {
	Table *core.Table2
}

// Table2 runs LOOCV classification on the SWP-off dataset.
func Table2(e *Env) (*Table2Result, error) {
	lb, err := e.Labels(false)
	if err != nil {
		return nil, err
	}
	d, err := e.Dataset(false)
	if err != nil {
		return nil, err
	}
	fs, err := e.Features()
	if err != nil {
		return nil, err
	}
	tab, err := core.EvaluateTable2(lb, d, fs.Union, e.Timer(false),
		core.EvalOptions{SVMCap: e.Cfg.SVMCap, Seed: e.Cfg.Seed})
	if err != nil {
		return nil, err
	}
	return &Table2Result{Table: tab}, nil
}

// Render formats the table like the paper's Table 2.
func (r *Table2Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 2: prediction correctness (SWP disabled)\n")
	fmt.Fprintf(&sb, "%-28s %6s %6s %6s %8s\n", "Prediction Correctness", "NN", "SVM", "ORC", "Cost")
	names := []string{
		"Optimal unroll factor", "Second-best unroll factor", "Third-best unroll factor",
		"Fourth-best unroll factor", "Fifth-best unroll factor", "Sixth-best unroll factor",
		"Seventh-best unroll factor", "Worst unroll factor",
	}
	t := r.Table
	for i, n := range names {
		fmt.Fprintf(&sb, "%-28s %6.2f %6.2f %6.2f %7.2fx\n",
			n, t.NNFrac[i], t.SVMFrac[i], t.HeurFrac[i], t.Cost[i])
	}
	opt2NN := t.NNFrac[0] + t.NNFrac[1]
	opt2SVM := t.SVMFrac[0] + t.SVMFrac[1]
	fmt.Fprintf(&sb, "(%d loops; optimal-or-second: NN %.2f, SVM %.2f)\n", t.Examples, opt2NN, opt2SVM)
	return sb.String()
}

// Table3Result reproduces "The best five features according to MIS".
type Table3Result struct {
	Rows []struct {
		Name  string
		Score float64
	}
}

// Table3 ranks features by mutual information score.
func Table3(e *Env) (*Table3Result, error) {
	fs, err := e.Features()
	if err != nil {
		return nil, err
	}
	r := &Table3Result{}
	for i := 0; i < 5 && i < len(fs.MIS); i++ {
		r.Rows = append(r.Rows, struct {
			Name  string
			Score float64
		}{features.Names[fs.MIS[i].Feature], fs.MIS[i].Score})
	}
	return r, nil
}

// Render formats the MIS ranking.
func (r *Table3Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 3: best five features by mutual information score\n")
	fmt.Fprintf(&sb, "%-4s %-20s %6s\n", "Rank", "Feature", "MIS")
	for i, row := range r.Rows {
		fmt.Fprintf(&sb, "%-4d %-20s %6.3f\n", i+1, row.Name, row.Score)
	}
	return sb.String()
}

// Table4Result reproduces the greedy-selection table: top-5 features per
// classifier with the (cross-validated) error after each addition.
type Table4Result struct {
	NN []struct {
		Name  string
		Error float64
	}
	SVM []struct {
		Name  string
		Error float64
	}
}

// Table4 reports greedy forward selection under both classifiers.
func Table4(e *Env) (*Table4Result, error) {
	fs, err := e.Features()
	if err != nil {
		return nil, err
	}
	r := &Table4Result{}
	for _, g := range fs.GreedyNN {
		r.NN = append(r.NN, struct {
			Name  string
			Error float64
		}{features.Names[g.Feature], g.Error})
	}
	for _, g := range fs.GreedySVM {
		r.SVM = append(r.SVM, struct {
			Name  string
			Error float64
		}{features.Names[g.Feature], g.Error})
	}
	return r, nil
}

// Render formats the two greedy columns side by side.
func (r *Table4Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 4: top five features by greedy selection\n")
	fmt.Fprintf(&sb, "%-4s %-20s %6s   %-20s %6s\n", "Rank", "NN", "Error", "SVM", "Error")
	n := len(r.NN)
	if len(r.SVM) > n {
		n = len(r.SVM)
	}
	for i := 0; i < n; i++ {
		nnName, svmName := "", ""
		nnErr, svmErr := 0.0, 0.0
		if i < len(r.NN) {
			nnName, nnErr = r.NN[i].Name, r.NN[i].Error
		}
		if i < len(r.SVM) {
			svmName, svmErr = r.SVM[i].Name, r.SVM[i].Error
		}
		fmt.Fprintf(&sb, "%-4d %-20s %6.2f   %-20s %6.2f\n", i+1, nnName, nnErr, svmName, svmErr)
	}
	return sb.String()
}

// UnionNames lists the classification feature set by name.
func UnionNames(fs *core.FeatureSelection) []string {
	names := make([]string, len(fs.Union))
	for i, f := range fs.Union {
		names[i] = features.Names[f]
	}
	return names
}

// Table1Result reproduces the feature catalog: every characteristic the
// classifiers see, with its value on a reference loop.
type Table1Result struct {
	Names        []string
	Descriptions []string
	Example      []float64 // values on the reference daxpy loop
}

// Table1 lists all 38 features with their values on a daxpy kernel.
func Table1(e *Env) (*Table1Result, error) {
	k, err := lang.ParseKernel(`
kernel daxpy lang=c {
	param double a;
	double x[], y[];
	noalias;
	for i = 0 .. 4096 { y[i] = y[i] + a * x[i]; }
}`)
	if err != nil {
		return nil, err
	}
	l, err := lang.Lower(k)
	if err != nil {
		return nil, err
	}
	r := &Table1Result{
		Names:        features.Names[:],
		Descriptions: features.Descriptions[:],
		Example:      features.Extract(l, e.Timer(false).Cfg.Mach),
	}
	return r, nil
}

// Render formats the catalog like the paper's Table 1.
func (r *Table1Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 1: features used for loop classification (all 38; value on daxpy)\n")
	for i, name := range r.Names {
		fmt.Fprintf(&sb, "%-18s %8.2f  %s\n", name, r.Example[i], r.Descriptions[i])
	}
	return sb.String()
}
