package experiments

import (
	"fmt"
	"math"
	"strings"

	"metaopt/internal/core"
	"metaopt/internal/ml"
	"metaopt/internal/ml/lda"
	"metaopt/internal/ml/nn"
	"metaopt/internal/ml/svm"
	"metaopt/internal/transform"
)

// Figure3Result is the histogram of optimal unroll factors.
type Figure3Result struct {
	Hist  [transform.MaxFactor + 1]float64
	Loops int
}

// Figure3 computes the distribution of optimal factors over the kept
// corpus (SWP disabled).
func Figure3(e *Env) (*Figure3Result, error) {
	lb, err := e.Labels(false)
	if err != nil {
		return nil, err
	}
	return &Figure3Result{Hist: lb.Histogram(), Loops: lb.KeptCount()}, nil
}

// Render draws the histogram as an ASCII bar chart.
func (r *Figure3Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3: histogram of optimal unroll factors (%d loops, SWP disabled)\n", r.Loops)
	for u := 1; u <= transform.MaxFactor; u++ {
		bar := strings.Repeat("#", int(r.Hist[u]*120+0.5))
		fmt.Fprintf(&sb, "  u=%d %5.1f%% %s\n", u, 100*r.Hist[u], bar)
	}
	return sb.String()
}

// margin30 filters the dataset as the figures do: keep examples whose
// chosen factor set contains a clear (≥30%) winner among the given
// classes, relabeled into those classes.
func margin30(d *ml.Dataset, classes []int) *ml.Dataset {
	out := &ml.Dataset{FeatureNames: d.FeatureNames}
	for _, e := range d.Examples {
		best, second := 0, 0
		var bestCyc, secondCyc int64 = math.MaxInt64, math.MaxInt64
		for _, u := range classes {
			c := e.Cycles[u]
			switch {
			case c < bestCyc:
				second, secondCyc = best, bestCyc
				best, bestCyc = u, c
			case c < secondCyc:
				second, secondCyc = u, c
			}
		}
		_ = second
		if bestCyc <= 0 || secondCyc == math.MaxInt64 {
			continue
		}
		if float64(secondCyc)/float64(bestCyc) < 1.30 {
			continue
		}
		ne := e
		ne.Label = best
		out.Examples = append(out.Examples, ne)
	}
	return out
}

// Figure1Result is the near-neighbor illustration: the filtered loops
// projected to the LDA plane, with per-class centroids and the radius-vote
// accuracy in the projected space.
type Figure1Result struct {
	Points    [][2]float64
	Labels    []int
	Centroids map[int][2]float64
	NNAcc     float64 // LOO radius-NN accuracy in the 2-D space
}

// Figure1 projects the four-class (1, 2, 4, 8) ≥30%-margin subset onto the
// LDA plane and runs the near-neighbor classifier there.
func Figure1(e *Env) (*Figure1Result, error) {
	d, err := e.Dataset(false)
	if err != nil {
		return nil, err
	}
	fs, err := e.Features()
	if err != nil {
		return nil, err
	}
	sub := margin30(d.Select(fs.Union), []int{1, 2, 4, 8})
	if sub.Len() < 8 {
		return nil, fmt.Errorf("experiments: figure 1: only %d loops pass the 30%% margin", sub.Len())
	}
	proj, err := lda.Project(sub, 2)
	if err != nil {
		return nil, err
	}
	pts := proj.ApplyAll(sub)

	r := &Figure1Result{Centroids: map[int][2]float64{}}
	counts := map[int]int{}
	for i, e2 := range sub.Examples {
		p := [2]float64{pts[i][0], pts[i][1]}
		r.Points = append(r.Points, p)
		r.Labels = append(r.Labels, e2.Label)
		c := r.Centroids[e2.Label]
		c[0] += p[0]
		c[1] += p[1]
		r.Centroids[e2.Label] = c
		counts[e2.Label]++
	}
	for label, c := range r.Centroids {
		n := float64(counts[label])
		r.Centroids[label] = [2]float64{c[0] / n, c[1] / n}
	}

	// Near-neighbor accuracy on the projected data.
	proj2 := &ml.Dataset{FeatureNames: []string{"lda1", "lda2"}}
	for i := range sub.Examples {
		ne := sub.Examples[i]
		ne.Features = []float64{pts[i][0], pts[i][1]}
		proj2.Examples = append(proj2.Examples, ne)
	}
	preds, err := (&nn.Trainer{}).LOOCV(proj2)
	if err != nil {
		return nil, err
	}
	r.NNAcc = ml.Accuracy(proj2, preds)
	return r, nil
}

// Render draws the projected classes as an ASCII scatter plot.
func (r *Figure1Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 1: near neighbors on LDA-projected loops (%d points, classes 1/2/4/8)\n", len(r.Points))
	sb.WriteString(scatter(r.Points, r.Labels, 64, 20))
	for _, u := range []int{1, 2, 4, 8} {
		if c, ok := r.Centroids[u]; ok {
			fmt.Fprintf(&sb, "  class %d centroid: (%+.2f, %+.2f)\n", u, c[0], c[1])
		}
	}
	fmt.Fprintf(&sb, "  radius-NN LOOCV accuracy in the projected plane: %.2f\n", r.NNAcc)
	return sb.String()
}

// Figure2Result is the SVM illustration: a binary (don't unroll vs unroll)
// LS-SVM trained on the 2-D cast of the data, with its decision regions.
type Figure2Result struct {
	Points   [][2]float64
	Unroll   []bool
	Grid     []string // ASCII decision regions ('.' = don't unroll, '#' = unroll)
	Accuracy float64  // training accuracy of the 2-D binary SVM
}

// Figure2 trains a binary RBF LS-SVM on the projected ≥30%-margin data.
func Figure2(e *Env) (*Figure2Result, error) {
	d, err := e.Dataset(false)
	if err != nil {
		return nil, err
	}
	fs, err := e.Features()
	if err != nil {
		return nil, err
	}
	// Binary split: rolled (1) vs unrolled (8 as representative), with a
	// clear margin, as in the paper's illustration.
	sub := margin30(d.Select(fs.Union), []int{1, 8})
	if sub.Len() < 8 {
		return nil, fmt.Errorf("experiments: figure 2: only %d loops pass the 30%% margin", sub.Len())
	}
	proj, err := lda.Project(sub, 2)
	if err != nil {
		return nil, err
	}
	pts := proj.ApplyAll(sub)

	flat := &ml.Dataset{FeatureNames: []string{"lda1", "lda2"}}
	for i := range sub.Examples {
		ne := sub.Examples[i]
		ne.Features = []float64{pts[i][0], pts[i][1]}
		flat.Examples = append(flat.Examples, ne)
	}
	tr := &svm.LSSVM{Codes: svm.OneVsRest(ml.NumClasses)}
	c, err := tr.Train(flat)
	if err != nil {
		return nil, err
	}

	r := &Figure2Result{}
	hits := 0
	for i, e2 := range flat.Examples {
		r.Points = append(r.Points, [2]float64{pts[i][0], pts[i][1]})
		r.Unroll = append(r.Unroll, e2.Label != 1)
		if c.Predict(e2.Features) == e2.Label {
			hits++
		}
	}
	r.Accuracy = float64(hits) / float64(flat.Len())

	// Decision-region grid over the bounding box.
	minX, maxX, minY, maxY := bounds(r.Points)
	const w, h = 64, 20
	for row := 0; row < h; row++ {
		line := make([]byte, w)
		y := maxY - (maxY-minY)*float64(row)/float64(h-1)
		for col := 0; col < w; col++ {
			x := minX + (maxX-minX)*float64(col)/float64(w-1)
			if c.Predict([]float64{x, y}) != 1 {
				line[col] = '#'
			} else {
				line[col] = '.'
			}
		}
		r.Grid = append(r.Grid, string(line))
	}
	return r, nil
}

// Render draws the decision regions with the training points overlaid.
func (r *Figure2Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 2: SVM decision regions on 2-D cast (%d points; '#'=unroll, '.'=don't)\n", len(r.Points))
	minX, maxX, minY, maxY := bounds(r.Points)
	h := len(r.Grid)
	w := 0
	if h > 0 {
		w = len(r.Grid[0])
	}
	grid := make([][]byte, h)
	for i, row := range r.Grid {
		grid[i] = []byte(row)
	}
	for i, p := range r.Points {
		col := int((p[0] - minX) / (maxX - minX + 1e-12) * float64(w-1))
		row := int((maxY - p[1]) / (maxY - minY + 1e-12) * float64(h-1))
		if row >= 0 && row < h && col >= 0 && col < w {
			if r.Unroll[i] {
				grid[row][col] = 'U'
			} else {
				grid[row][col] = 'o'
			}
		}
	}
	for _, row := range grid {
		sb.WriteString("  ")
		sb.Write(row)
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "  ('U' = loop whose best factor is 8, 'o' = best rolled; SVM training accuracy %.2f)\n", r.Accuracy)
	return sb.String()
}

// FigureSpeedupResult covers Figures 4 and 5.
type FigureSpeedupResult struct {
	SWP     bool
	Summary *core.SpeedupSummary
}

// Figure4 measures realized SPEC 2000 speedups with SWP disabled.
func Figure4(e *Env) (*FigureSpeedupResult, error) { return speedupFigure(e, false) }

// Figure5 measures realized SPEC 2000 speedups with SWP enabled.
func Figure5(e *Env) (*FigureSpeedupResult, error) { return speedupFigure(e, true) }

func speedupFigure(e *Env, swpOn bool) (*FigureSpeedupResult, error) {
	c, err := e.Corpus()
	if err != nil {
		return nil, err
	}
	lb, err := e.Labels(swpOn)
	if err != nil {
		return nil, err
	}
	d, err := e.Dataset(swpOn)
	if err != nil {
		return nil, err
	}
	fs, err := e.Features()
	if err != nil {
		return nil, err
	}
	opt := core.DefaultSpeedupOptions()
	opt.Seed = e.Cfg.Seed + 31
	if e.Cfg.TrainCap > 0 {
		opt.TrainCap = e.Cfg.TrainCap
	}
	sum, err := core.Speedups(c, lb, d, fs.Union, e.Timer(swpOn), opt)
	if err != nil {
		return nil, err
	}
	return &FigureSpeedupResult{SWP: swpOn, Summary: sum}, nil
}

// Render prints one row per benchmark plus the aggregates.
func (r *FigureSpeedupResult) Render() string {
	var sb strings.Builder
	mode := "disabled"
	figure := 4
	if r.SWP {
		mode = "enabled"
		figure = 5
	}
	fmt.Fprintf(&sb, "Figure %d: SPEC 2000 improvement over the baseline heuristic (SWP %s)\n", figure, mode)
	fmt.Fprintf(&sb, "%-14s %4s %8s %8s %8s\n", "Benchmark", "FP", "NN", "SVM", "Oracle")
	for _, row := range r.Summary.Rows {
		fp := ""
		if row.FP {
			fp = "fp"
		}
		fmt.Fprintf(&sb, "%-14s %4s %+7.1f%% %+7.1f%% %+7.1f%%\n",
			row.Benchmark, fp, 100*row.NN, 100*row.SVM, 100*row.Oracle)
	}
	s := r.Summary
	fmt.Fprintf(&sb, "%-14s %4s %+7.1f%% %+7.1f%% %+7.1f%%\n", "overall", "", 100*s.NNAll, 100*s.SVMAll, 100*s.OracleAll)
	fmt.Fprintf(&sb, "%-14s %4s %+7.1f%% %+7.1f%% %+7.1f%%\n", "SPECfp", "", 100*s.NNFP, 100*s.SVMFP, 100*s.OracleFP)
	fmt.Fprintf(&sb, "wins vs baseline: NN %d/24, SVM %d/24\n", s.NNWins, s.SVMWins)
	return sb.String()
}

// scatter renders labeled 2-D points as an ASCII plot.
func scatter(pts [][2]float64, labels []int, w, h int) string {
	if len(pts) == 0 {
		return ""
	}
	minX, maxX, minY, maxY := bounds(pts)
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	glyph := map[int]byte{1: '+', 2: 'o', 4: '*', 8: '@'}
	for i, p := range pts {
		col := int((p[0] - minX) / (maxX - minX + 1e-12) * float64(w-1))
		row := int((maxY - p[1]) / (maxY - minY + 1e-12) * float64(h-1))
		g, ok := glyph[labels[i]]
		if !ok {
			g = '?'
		}
		grid[row][col] = g
	}
	var sb strings.Builder
	for _, row := range grid {
		sb.WriteString("  ")
		sb.Write(row)
		sb.WriteByte('\n')
	}
	sb.WriteString("  ('+'=1, 'o'=2, '*'=4, '@'=8)\n")
	return sb.String()
}

func bounds(pts [][2]float64) (minX, maxX, minY, maxY float64) {
	minX, maxX = math.Inf(1), math.Inf(-1)
	minY, maxY = math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p[0])
		maxX = math.Max(maxX, p[0])
		minY = math.Min(minY, p[1])
		maxY = math.Max(maxY, p[1])
	}
	return minX, maxX, minY, maxY
}
