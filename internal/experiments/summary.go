package experiments

import (
	"fmt"
	"strings"
)

// SummaryResult is the run overview: corpus composition, filter outcome,
// and the selected feature union. Like every other experiment result it
// renders as text and marshals cleanly to JSON.
type SummaryResult struct {
	Benchmarks int      `json:"benchmarks"`
	Loops      int      `json:"loops"`
	Examples   int      `json:"examples"` // usable and label-filtered training examples
	Kept       int      `json:"kept"`     // loops surviving the floor + 1.05x filter
	Labeled    int      `json:"labeled"`  // loops measured in total
	Union      []string `json:"feature_union"`
}

// Summary assembles the run overview from the shared environment.
func Summary(e *Env) (*SummaryResult, error) {
	c, err := e.Corpus()
	if err != nil {
		return nil, err
	}
	lb, err := e.Labels(false)
	if err != nil {
		return nil, err
	}
	d, err := e.Dataset(false)
	if err != nil {
		return nil, err
	}
	fs, err := e.Features()
	if err != nil {
		return nil, err
	}
	return &SummaryResult{
		Benchmarks: len(c.Benchmarks),
		Loops:      c.TotalLoops(),
		Examples:   d.Len(),
		Kept:       lb.KeptCount(),
		Labeled:    len(lb.Order),
		Union:      UnionNames(fs),
	}, nil
}

// Render formats the overview as the historical three-line summary.
func (r *SummaryResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Corpus: %d benchmarks, %d loops; %d usable and label-filtered training examples\n",
		r.Benchmarks, r.Loops, r.Examples)
	fmt.Fprintf(&sb, "Kept/total after the 50k-cycle floor and 1.05x filter: %d/%d\n",
		r.Kept, r.Labeled)
	fmt.Fprintf(&sb, "Selected feature union (%d): %s\n",
		len(r.Union), strings.Join(r.Union, ", "))
	return sb.String()
}
