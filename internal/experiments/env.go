// Package experiments reproduces every table and figure of the paper's
// evaluation: Table 2 (prediction correctness), Tables 3/4 (feature
// selection), Figure 1 (near neighbors on LDA-projected loops), Figure 2
// (SVM classification of projected loops), Figure 3 (optimal-factor
// histogram), Figure 4 (SPEC 2000 speedups, software pipelining disabled)
// and Figure 5 (speedups with software pipelining enabled).
package experiments

import (
	"fmt"

	"metaopt/internal/core"
	"metaopt/internal/loopgen"
	"metaopt/internal/ml"
	"metaopt/internal/obs"
	"metaopt/internal/sim"
)

// Config sizes an experiment run. The default reproduces the full paper
// protocol; tests shrink the corpus and caps.
type Config struct {
	Seed      int64
	Scale     float64 // corpus scale (1.0 = full ~3500-loop corpus)
	Runs      int     // measurement repetitions per timing (paper: 30)
	SVMCap    int     // LOOCV set cap for Table 2's SVM (0 = full corpus)
	TrainCap  int     // SVM training cap per Figure 4/5 fold
	SVMSample int     // subsample for greedy-SVM feature selection
}

// DefaultConfig is the full-scale reproduction.
func DefaultConfig() Config {
	return Config{Seed: 2005, Scale: 1, Runs: 30, SVMCap: 0, TrainCap: 1500, SVMSample: 350}
}

// Env lazily builds and caches the shared state the experiments need:
// corpus, per-mode timers and labels, the training dataset and the selected
// feature set.
type Env struct {
	Cfg Config

	corpus    *loopgen.Corpus
	timerOff  *sim.Timer
	timerOn   *sim.Timer
	labelsOff *core.Labels
	labelsOn  *core.Labels
	dataset   *ml.Dataset // SWP-off training set (the primary experiment)
	datasetOn *ml.Dataset
	fsel      *core.FeatureSelection
}

// NewEnv returns an empty environment for the configuration.
func NewEnv(cfg Config) *Env {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 30
	}
	return &Env{Cfg: cfg}
}

// Corpus generates (once) the 72-benchmark corpus.
func (e *Env) Corpus() (*loopgen.Corpus, error) {
	if e.corpus == nil {
		sp := obs.Begin("env.corpus")
		c, err := loopgen.Generate(loopgen.Options{Seed: e.Cfg.Seed, LoopsScale: e.Cfg.Scale})
		sp.End()
		if err != nil {
			return nil, err
		}
		e.corpus = c
	}
	return e.corpus, nil
}

// Timer returns the cached timer for the pipelining mode.
func (e *Env) Timer(swpOn bool) *sim.Timer {
	if swpOn {
		if e.timerOn == nil {
			cfg := sim.DefaultConfig()
			cfg.SWP = true
			cfg.Runs = e.Cfg.Runs
			e.timerOn = sim.NewTimer(cfg)
		}
		return e.timerOn
	}
	if e.timerOff == nil {
		cfg := sim.DefaultConfig()
		cfg.Runs = e.Cfg.Runs
		e.timerOff = sim.NewTimer(cfg)
	}
	return e.timerOff
}

// Labels collects (once per mode) the measured labels.
func (e *Env) Labels(swpOn bool) (*core.Labels, error) {
	cached := &e.labelsOff
	if swpOn {
		cached = &e.labelsOn
	}
	if *cached == nil {
		c, err := e.Corpus()
		if err != nil {
			return nil, err
		}
		lb, err := core.CollectLabels(c, e.Timer(swpOn), e.Cfg.Seed+100)
		if err != nil {
			return nil, err
		}
		*cached = lb
	}
	return *cached, nil
}

// Dataset builds (once per mode) the feature-labeled training set.
func (e *Env) Dataset(swpOn bool) (*ml.Dataset, error) {
	cached := &e.dataset
	if swpOn {
		cached = &e.datasetOn
	}
	if *cached == nil {
		lb, err := e.Labels(swpOn)
		if err != nil {
			return nil, err
		}
		sp := obs.Begin("env.dataset")
		d := lb.Dataset(e.Timer(swpOn))
		if err := d.Validate(); err != nil {
			sp.End()
			return nil, fmt.Errorf("experiments: dataset: %w", err)
		}
		// Attach the column-major view so every LOOCV and greedy-selection
		// pass in the experiment suite runs the columnar fast path.
		d.BuildColumns()
		sp.End()
		*cached = d
	}
	return *cached, nil
}

// Features runs (once) the Section 7 feature selection on the SWP-off
// dataset; its union feeds every classification experiment, as in the
// paper.
func (e *Env) Features() (*core.FeatureSelection, error) {
	if e.fsel == nil {
		d, err := e.Dataset(false)
		if err != nil {
			return nil, err
		}
		sp := obs.Begin("env.features")
		defer sp.End()
		opt := core.DefaultSelectOptions()
		opt.Seed = e.Cfg.Seed
		if e.Cfg.SVMSample > 0 {
			opt.SVMSample = e.Cfg.SVMSample
		}
		fs, err := core.SelectFeatures(d, opt)
		if err != nil {
			return nil, err
		}
		e.fsel = fs
	}
	return e.fsel, nil
}
