package experiments

import (
	"strings"
	"testing"
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	cfg := Config{
		Seed:      9,
		Scale:     0.12,
		Runs:      5,
		SVMCap:    250,
		TrainCap:  250,
		SVMSample: 120,
	}
	return NewEnv(cfg)
}

func TestAllExperimentsRun(t *testing.T) {
	e := testEnv(t)

	t3, err := Table3(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 5 {
		t.Errorf("table 3 rows = %d", len(t3.Rows))
	}
	if !strings.Contains(t3.Render(), "Table 3") {
		t.Error("table 3 render")
	}

	t4, err := Table4(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.NN) != 5 || len(t4.SVM) != 5 {
		t.Errorf("table 4 = %d/%d", len(t4.NN), len(t4.SVM))
	}
	if !strings.Contains(t4.Render(), "greedy") {
		t.Error("table 4 render")
	}

	t2, err := Table2(e)
	if err != nil {
		t.Fatal(err)
	}
	if t2.Table.SVMAccuracy <= t2.Table.HeurAccuracy {
		t.Errorf("SVM %.2f <= heuristic %.2f", t2.Table.SVMAccuracy, t2.Table.HeurAccuracy)
	}
	out := t2.Render()
	if !strings.Contains(out, "Optimal unroll factor") || !strings.Contains(out, "Worst unroll factor") {
		t.Errorf("table 2 render:\n%s", out)
	}

	f3, err := Figure3(e)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range f3.Hist {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("figure 3 histogram sums to %v", sum)
	}
	if !strings.Contains(f3.Render(), "u=8") {
		t.Error("figure 3 render")
	}

	f1, err := Figure1(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Points) != len(f1.Labels) || len(f1.Points) == 0 {
		t.Errorf("figure 1 points = %d", len(f1.Points))
	}
	if f1.NNAcc <= 0.3 {
		t.Errorf("figure 1 projected NN accuracy = %.2f", f1.NNAcc)
	}
	if !strings.Contains(f1.Render(), "centroid") {
		t.Error("figure 1 render")
	}

	f2, err := Figure2(e)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Accuracy < 0.7 {
		t.Errorf("figure 2 training accuracy = %.2f", f2.Accuracy)
	}
	if len(f2.Grid) == 0 {
		t.Error("figure 2 grid empty")
	}
	if !strings.Contains(f2.Render(), "decision regions") {
		t.Error("figure 2 render")
	}

	f4, err := Figure4(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Summary.Rows) != 24 {
		t.Errorf("figure 4 rows = %d", len(f4.Summary.Rows))
	}
	if f4.Summary.OracleAll <= 0 {
		t.Errorf("figure 4 oracle = %v", f4.Summary.OracleAll)
	}
	if !strings.Contains(f4.Render(), "171.swim") {
		t.Error("figure 4 render")
	}
}

func TestFigure5SWP(t *testing.T) {
	e := testEnv(t)
	f5, err := Figure5(e)
	if err != nil {
		t.Fatal(err)
	}
	if !f5.SWP || len(f5.Summary.Rows) != 24 {
		t.Fatalf("figure 5 shape wrong")
	}
	if !strings.Contains(f5.Render(), "Figure 5") {
		t.Error("figure 5 render")
	}
	// The central claim: gains with SWP on are smaller than with SWP off.
	f4, err := Figure4(e)
	if err != nil {
		t.Fatal(err)
	}
	if f5.Summary.OracleAll >= f4.Summary.OracleAll {
		t.Errorf("SWP-on oracle %.3f should trail SWP-off oracle %.3f",
			f5.Summary.OracleAll, f4.Summary.OracleAll)
	}
}

func TestUnionNames(t *testing.T) {
	e := testEnv(t)
	fs, err := e.Features()
	if err != nil {
		t.Fatal(err)
	}
	names := UnionNames(fs)
	if len(names) != len(fs.Union) || len(names) == 0 {
		t.Errorf("union names = %v", names)
	}
}

func TestTable1(t *testing.T) {
	e := testEnv(t)
	r, err := Table1(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Names) != 38 || len(r.Descriptions) != 38 || len(r.Example) != 38 {
		t.Fatalf("table 1 lengths: %d/%d/%d", len(r.Names), len(r.Descriptions), len(r.Example))
	}
	for i, d := range r.Descriptions {
		if d == "" {
			t.Errorf("feature %d has no description", i)
		}
	}
	out := r.Render()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "tripcount") {
		t.Errorf("table 1 render:\n%s", out)
	}
}
