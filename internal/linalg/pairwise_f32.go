package linalg

// Float32 batch kernels for compiled serve-time inference. The single-query
// compiled path reuses the float64 SqDist/Dot routines bit-for-bit; these
// float32 variants exist only for the batched distance path, where halving
// the memory traffic of the exemplar table is the win and the rounding
// divergence is versioned into the compiled fingerprint.

// SqNormsF32 fills out[i] with the squared Euclidean norm of row i of the
// n×d row-major matrix t and returns it (out is grown when too small).
// Compiled predictors precompute these once per table so every batched
// query costs one dot product per row instead of a full distance loop.
func SqNormsF32(t []float32, n, d int, out []float32) []float32 {
	if cap(out) < n {
		out = make([]float32, n)
	} else {
		out = out[:n]
	}
	for i := 0; i < n; i++ {
		row := t[i*d : (i+1)*d]
		var s float32
		for _, v := range row {
			s += v * v
		}
		out[i] = s
	}
	return out
}

// PairwiseSqDistF32Into fills out with the m×n matrix of squared distances
// between the m query rows q (m×d, row-major) and the n table rows t (n×d),
// using the norms identity ‖q−t‖² = ‖q‖² − 2·q·t + ‖t‖² with the table
// norms precomputed by SqNormsF32. Rounding can drive an entry slightly
// negative; entries are clamped at zero so downstream radius comparisons
// never see a negative distance. out is grown when too small and returned.
//
// Queries are processed four at a time: each table row is loaded once and
// multiplied into four independent accumulator chains (the dot4 kernel),
// which keeps the FPU pipelined instead of latency-bound on one running
// sum and quarters the per-row loop overhead.
func PairwiseSqDistF32Into(q []float32, m int, t []float32, n, d int, tnorm, out []float32) []float32 {
	if cap(out) < m*n {
		out = make([]float32, m*n)
	} else {
		out = out[:m*n]
	}
	i := 0
	for ; i+4 <= m; i += 4 {
		q0 := q[i*d : (i+1)*d]
		q1 := q[(i+1)*d : (i+2)*d]
		q2 := q[(i+2)*d : (i+3)*d]
		q3 := q[(i+3)*d : (i+4)*d]
		n0 := sqNormF32(q0)
		n1 := sqNormF32(q1)
		n2 := sqNormF32(q2)
		n3 := sqNormF32(q3)
		o0 := out[i*n : (i+1)*n]
		o1 := out[(i+1)*n : (i+2)*n]
		o2 := out[(i+2)*n : (i+3)*n]
		o3 := out[(i+3)*n : (i+4)*n]
		for j := 0; j < n; j++ {
			row := t[j*d : (j+1)*d]
			var s0, s1, s2, s3 float32
			for k, v := range row {
				s0 += q0[k] * v
				s1 += q1[k] * v
				s2 += q2[k] * v
				s3 += q3[k] * v
			}
			tn := tnorm[j]
			o0[j] = clampNonNeg(n0 - 2*s0 + tn)
			o1[j] = clampNonNeg(n1 - 2*s1 + tn)
			o2[j] = clampNonNeg(n2 - 2*s2 + tn)
			o3[j] = clampNonNeg(n3 - 2*s3 + tn)
		}
	}
	for ; i < m; i++ {
		qi := q[i*d : (i+1)*d]
		qn := sqNormF32(qi)
		orow := out[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			// dotSeqF32 matches the dot4 kernel's per-query accumulation
			// order, so a query's distances do not depend on its position
			// within the batch.
			orow[j] = clampNonNeg(qn - 2*dotSeqF32(qi, t[j*d:(j+1)*d]) + tnorm[j])
		}
	}
	return out
}

// dotSeqF32 is the sequential-order inner product the pairwise kernels
// accumulate in.
func dotSeqF32(a, b []float32) float32 {
	b = b[:len(a)]
	var s float32
	for k, v := range a {
		s += v * b[k]
	}
	return s
}

func sqNormF32(v []float32) float32 {
	var s float32
	for _, x := range v {
		s += x * x
	}
	return s
}

func clampNonNeg(v float32) float32 {
	if v < 0 {
		return 0
	}
	return v
}

// DotF32 returns the inner product of two equal-length float32 vectors,
// accumulated across four independent lanes so the multiplies pipeline.
func DotF32(a, b []float32) float32 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return ((s0 + s1) + s2) + s3
}

// MulVecF32 computes the matrix-vector product out[r] = Σ_c a[r·cols+c]·x[c]
// for the rows×cols row-major matrix a. out must have rows capacity.
func MulVecF32(a []float32, rows, cols int, x, out []float32) {
	for r := 0; r < rows; r++ {
		out[r] = DotF32(a[r*cols:(r+1)*cols], x)
	}
}
