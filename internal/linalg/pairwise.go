package linalg

// pairTile is the blocking factor for the pairwise kernels: a tile of rows
// (tile × dim floats) stays resident in L1 while it is paired against each
// row of the opposite tile.
const pairTile = 32

// PairwiseSqDistInto fills out with the n×n matrix of squared Euclidean
// distances between all row pairs, computed in cache-friendly tiles, and
// returns it (out is grown when too small). Each entry is accumulated
// exactly like SqDist — same feature order, one running sum — so callers
// replacing per-pair SqDist calls with matrix lookups see identical bits;
// the mirrored lower triangle is exact because (a−b)² and (b−a)² are the
// same float.
func PairwiseSqDistInto(rows [][]float64, out []float64) []float64 {
	n := len(rows)
	if cap(out) < n*n {
		out = make([]float64, n*n)
	} else {
		out = out[:n*n]
	}
	for ib := 0; ib < n; ib += pairTile {
		ie := min(ib+pairTile, n)
		for jb := ib; jb < n; jb += pairTile {
			je := min(jb+pairTile, n)
			for i := ib; i < ie; i++ {
				ri := rows[i]
				js := jb
				if i >= js {
					out[i*n+i] = 0
					js = i + 1
				}
				for j := js; j < je; j++ {
					d := SqDist(ri, rows[j])
					out[i*n+j] = d
					out[j*n+i] = d
				}
			}
		}
	}
	return out
}

// PairwiseSqDistColsInto fills out with the n×n squared-distance matrix of
// the dataset whose features are the given columns (cols[j][i] = feature j of
// example i), and returns it (out is grown when too small). The matrix is
// zeroed and then built one AddSqColumn per feature, in column order — the
// identical left-to-right float addition sequence SqDist performs over a
// concatenated row, so the result is bit-identical to PairwiseSqDistInto on
// the equivalent rows while reading memory as dim sequential column scans.
func PairwiseSqDistColsInto(cols [][]float64, n int, out []float64) []float64 {
	if cap(out) < n*n {
		out = make([]float64, n*n)
	} else {
		out = out[:n*n]
	}
	clear(out)
	for _, col := range cols {
		AddSqColumn(out, col)
	}
	return out
}

// AddSqColumn adds the single-feature squared-distance contribution of col
// into the n×n matrix dst: dst[i,j] += (col[i]−col[j])². With squared
// Euclidean distance additive across features, repeated calls build the
// distance matrix of a growing feature set in the order the features were
// added — the same left-to-right accumulation SqDist performs over the
// concatenated vector.
func AddSqColumn(dst []float64, col []float64) {
	n := len(col)
	for ib := 0; ib < n; ib += pairTile {
		ie := min(ib+pairTile, n)
		for jb := ib; jb < n; jb += pairTile {
			je := min(jb+pairTile, n)
			for i := ib; i < ie; i++ {
				ci := col[i]
				js := jb
				if i >= js {
					js = i + 1
				}
				for j := js; j < je; j++ {
					d := ci - col[j]
					sq := d * d
					dst[i*n+j] += sq
					dst[j*n+i] += sq
				}
			}
		}
	}
}
