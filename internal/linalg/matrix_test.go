package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrixFromRows([][]float64{
		{1, 2, 3},
		{4, 5, 6},
	})
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v, want 6", m.At(1, 2))
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Errorf("Set failed: %v", m.At(0, 0))
	}
	m.Add(0, 0, 1)
	if m.At(0, 0) != 10 {
		t.Errorf("Add failed: %v", m.At(0, 0))
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 10 {
		t.Error("Clone shares storage with original")
	}
}

func TestMatrixTranspose(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose dims = %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Errorf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMatrixMul(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Errorf("MulVec = %v, want [-2 -2]", got)
	}
}

func TestIdentityMulProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		p := a.Mul(Identity(n))
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEq(p.At(i, j), a.At(i, j), 1e-12) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDotNormSqDist(t *testing.T) {
	a := []float64{3, 4}
	if Dot(a, a) != 25 {
		t.Errorf("Dot = %v", Dot(a, a))
	}
	if Norm(a) != 5 {
		t.Errorf("Norm = %v", Norm(a))
	}
	if SqDist(a, []float64{0, 0}) != 25 {
		t.Errorf("SqDist = %v", SqDist(a, []float64{0, 0}))
	}
}

func TestAXPY(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, -1}, y)
	if y[0] != 7 || y[1] != -1 {
		t.Errorf("AXPY = %v", y)
	}
}

func TestDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatched Mul")
		}
	}()
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	a.Mul(b)
}

func TestCholeskySolve(t *testing.T) {
	// A known SPD matrix.
	a := NewMatrixFromRows([][]float64{
		{4, 2, 0.6},
		{2, 5, 1.5},
		{0.6, 1.5, 3.8},
	})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3}
	x := ch.Solve(b)
	got := a.MulVec(x)
	for i := range b {
		if !almostEq(got[i], b[i], 1e-10) {
			t.Errorf("A·x[%d] = %v, want %v", i, got[i], b[i])
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{0, 0}, {0, -1}})
	if _, err := NewCholesky(a); err == nil {
		t.Error("expected error for non-PD matrix")
	}
}

func TestCholeskyInverse(t *testing.T) {
	a := NewMatrixFromRows([][]float64{
		{6, 2, 1},
		{2, 5, 2},
		{1, 2, 4},
	})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := ch.Inverse()
	p := a.Mul(inv)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(p.At(i, j), want, 1e-10) {
				t.Errorf("A·A⁻¹[%d][%d] = %v, want %v", i, j, p.At(i, j), want)
			}
		}
	}
	diag := ch.InverseDiagonal()
	for i := 0; i < 3; i++ {
		if !almostEq(diag[i], inv.At(i, i), 1e-12) {
			t.Errorf("InverseDiagonal[%d] = %v, want %v", i, diag[i], inv.At(i, i))
		}
	}
}

// Property: for random SPD matrices A = MᵀM + I, Cholesky solve inverts MulVec.
func TestCholeskySolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		m := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		a := m.T().Mul(m).AddMatrix(Identity(n))
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		got := ch.Solve(b)
		for i := range x {
			if !almostEq(got[i], x[i], 1e-6*(1+math.Abs(x[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEigenSymKnown(t *testing.T) {
	// Eigenvalues of [[2,1],[1,2]] are 3 and 1.
	a := NewMatrixFromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 3, 1e-9) || !almostEq(vals[1], 1, 1e-9) {
		t.Errorf("eigenvalues = %v, want [3 1]", vals)
	}
	// Check A·v = λ·v for each pair.
	for c := 0; c < 2; c++ {
		v := []float64{vecs.At(0, c), vecs.At(1, c)}
		av := a.MulVec(v)
		for i := range v {
			if !almostEq(av[i], vals[c]*v[i], 1e-9) {
				t.Errorf("A·v != λv for column %d", c)
			}
		}
	}
}

// Property: eigenvalues of random symmetric matrices satisfy A·v = λ·v and
// the eigenvector matrix is orthonormal.
func TestEigenSymProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := EigenSym(a)
		if err != nil {
			return false
		}
		for c := 0; c < n; c++ {
			v := make([]float64, n)
			for r := 0; r < n; r++ {
				v[r] = vecs.At(r, c)
			}
			av := a.MulVec(v)
			for i := range v {
				if !almostEq(av[i], vals[c]*v[i], 1e-7) {
					return false
				}
			}
		}
		// Orthonormality: VᵀV = I.
		vtv := vecs.T().Mul(vecs)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEq(vtv.At(i, j), want, 1e-8) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSolvePD(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{2, 0}, {0, 4}})
	x, err := SolvePD(a, []float64{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 2, 1e-12) {
		t.Errorf("SolvePD = %v", x)
	}
}
