package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite reports that a Cholesky factorization failed because
// the input matrix is not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ.
type Cholesky struct {
	l *Matrix
}

// NewCholesky factors the symmetric positive definite matrix a. Only the
// lower triangle of a is read. It returns ErrNotPositiveDefinite when a
// non-positive pivot is encountered.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", a.Rows(), a.Cols())
	}
	n := a.Rows()
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		lrowj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lrowj[k] * lrowj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			lrowi := l.Row(i)
			for k := 0; k < j; k++ {
				s -= lrowi[k] * lrowj[k]
			}
			l.Set(i, j, s/d)
		}
	}
	return &Cholesky{l: l}, nil
}

// L returns the lower-triangular factor (shared storage; do not modify).
func (c *Cholesky) L() *Matrix { return c.l }

// Solve solves A·x = b given the factorization of A, returning x.
func (c *Cholesky) Solve(b []float64) []float64 {
	y := c.SolveLower(b)
	return c.SolveUpper(y)
}

// SolveLower solves L·y = b by forward substitution.
func (c *Cholesky) SolveLower(b []float64) []float64 {
	n := c.l.Rows()
	if len(b) != n {
		panic(fmt.Sprintf("linalg: SolveLower length mismatch %d vs %d", len(b), n))
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := c.l.Row(i)
		s := b[i]
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	return y
}

// SolveUpper solves Lᵀ·x = y by back substitution.
func (c *Cholesky) SolveUpper(y []float64) []float64 {
	n := c.l.Rows()
	if len(y) != n {
		panic(fmt.Sprintf("linalg: SolveUpper length mismatch %d vs %d", len(y), n))
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x
}

// Inverse returns A⁻¹ computed column by column from the factorization.
func (c *Cholesky) Inverse() *Matrix {
	n := c.l.Rows()
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		x := c.Solve(e)
		e[j] = 0
		for i := 0; i < n; i++ {
			inv.Set(i, j, x[i])
		}
	}
	return inv
}

// InverseDiagonal returns just the diagonal of A⁻¹. This is what the exact
// LS-SVM leave-one-out formula needs; it avoids storing the full inverse when
// the caller only wants the diagonal. It still costs one solve per column.
func (c *Cholesky) InverseDiagonal() []float64 {
	n := c.l.Rows()
	diag := make([]float64, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		x := c.Solve(e)
		e[j] = 0
		diag[j] = x[j]
	}
	return diag
}

// InverseDiagonalFast returns the diagonal of A⁻¹ in O(n³/6) by inverting
// the triangular factor: (A⁻¹)ⱼⱼ = Σᵢ (L⁻¹)ᵢⱼ². It is the workhorse of the
// exact LS-SVM leave-one-out computation.
func (c *Cholesky) InverseDiagonalFast() []float64 {
	n := c.l.Rows()
	// M = L⁻¹, computed column by column; only the lower triangle is
	// nonzero.
	m := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		m.Set(j, j, 1/c.l.At(j, j))
		for i := j + 1; i < n; i++ {
			var s float64
			lrow := c.l.Row(i)
			for k := j; k < i; k++ {
				s += lrow[k] * m.At(k, j)
			}
			m.Set(i, j, -s/lrow[i])
		}
	}
	diag := make([]float64, n)
	for j := 0; j < n; j++ {
		var s float64
		for i := j; i < n; i++ {
			v := m.At(i, j)
			s += v * v
		}
		diag[j] = s
	}
	return diag
}

// SolvePD factors a and solves a·x = b in one call. The matrix a must be
// symmetric positive definite.
func SolvePD(a *Matrix, b []float64) ([]float64, error) {
	ch, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	return ch.Solve(b), nil
}
