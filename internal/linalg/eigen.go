package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns the eigenvalues in descending order and a
// matrix whose columns are the corresponding orthonormal eigenvectors.
// Only the lower triangle of a is trusted; the matrix is symmetrized first.
func EigenSym(a *Matrix) (values []float64, vectors *Matrix, err error) {
	if a.Rows() != a.Cols() {
		return nil, nil, fmt.Errorf("linalg: EigenSym of non-square %dx%d matrix", a.Rows(), a.Cols())
	}
	n := a.Rows()
	// Work on a symmetrized copy.
	w := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := a.At(i, j)
			w.Set(i, j, v)
			w.Set(j, i, v)
		}
	}
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off < 1e-12 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Compute the Jacobi rotation that zeroes w[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				applyJacobi(w, v, p, q, c, s)
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] > values[idx[j]] })
	sorted := make([]float64, n)
	vectors = NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sorted[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			vectors.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sorted, vectors, nil
}

// applyJacobi applies a Givens rotation in the (p,q) plane to w (two-sided)
// and accumulates it into the eigenvector matrix v (one-sided).
func applyJacobi(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows()
	for k := 0; k < n; k++ {
		wkp := w.At(k, p)
		wkq := w.At(k, q)
		w.Set(k, p, c*wkp-s*wkq)
		w.Set(k, q, s*wkp+c*wkq)
	}
	for k := 0; k < n; k++ {
		wpk := w.At(p, k)
		wqk := w.At(q, k)
		w.Set(p, k, c*wpk-s*wqk)
		w.Set(q, k, s*wpk+c*wqk)
	}
	for k := 0; k < n; k++ {
		vkp := v.At(k, p)
		vkq := v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

func offDiagNorm(w *Matrix) float64 {
	var s float64
	n := w.Rows()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				s += w.At(i, j) * w.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}
