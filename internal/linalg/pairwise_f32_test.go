package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func randMatrixF32(rng *rand.Rand, n, d int) ([]float32, [][]float64) {
	flat := make([]float32, n*d)
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = make([]float64, d)
		for j := 0; j < d; j++ {
			v := rng.Float64()*4 - 2
			rows[i][j] = float64(float32(v))
			flat[i*d+j] = float32(v)
		}
	}
	return flat, rows
}

// The f32 pairwise kernel must agree with the float64 reference within
// float32 rounding across shapes that hit the tile edges.
func TestPairwiseSqDistF32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, shape := range []struct{ m, n, d int }{
		{1, 1, 1}, {3, 7, 5}, {8, 33, 38}, {17, 64, 13}, {2, 100, 21},
	} {
		q32, q64 := randMatrixF32(rng, shape.m, shape.d)
		t32, t64 := randMatrixF32(rng, shape.n, shape.d)
		tnorm := SqNormsF32(t32, shape.n, shape.d, nil)
		out := PairwiseSqDistF32Into(q32, shape.m, t32, shape.n, shape.d, tnorm, nil)
		if len(out) != shape.m*shape.n {
			t.Fatalf("shape %+v: got %d entries, want %d", shape, len(out), shape.m*shape.n)
		}
		for i := 0; i < shape.m; i++ {
			for j := 0; j < shape.n; j++ {
				want := SqDist(q64[i], t64[j])
				got := float64(out[i*shape.n+j])
				// The norms identity loses low bits relative to the direct
				// subtract-square accumulation; allow relative 1e-4.
				tol := 1e-4 * (1 + math.Abs(want))
				if math.Abs(got-want) > tol {
					t.Errorf("shape %+v (%d,%d): got %g, want %g", shape, i, j, got, want)
				}
				if got < 0 {
					t.Errorf("shape %+v (%d,%d): negative distance %g", shape, i, j, got)
				}
			}
		}
	}
}

func TestSqNormsF32(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	flat, rows := randMatrixF32(rng, 9, 11)
	norms := SqNormsF32(flat, 9, 11, nil)
	for i, row := range rows {
		want := Dot(row, row)
		if math.Abs(float64(norms[i])-want) > 1e-4*(1+want) {
			t.Errorf("row %d: got %g, want %g", i, norms[i], want)
		}
	}
}

func TestDotAndMulVecF32(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a32, a64 := randMatrixF32(rng, 6, 17)
	x32, x64 := randMatrixF32(rng, 1, 17)
	out := make([]float32, 6)
	MulVecF32(a32, 6, 17, x32[:17], out)
	for r := 0; r < 6; r++ {
		want := Dot(a64[r], x64[0])
		if math.Abs(float64(out[r])-want) > 1e-4*(1+math.Abs(want)) {
			t.Errorf("row %d: got %g, want %g", r, out[r], want)
		}
	}
	// Odd tail lengths exercise the 4-lane remainder loop.
	for _, n := range []int{1, 2, 3, 5, 6, 7} {
		got := float64(DotF32(a32[:n], x32[:n]))
		want := Dot(a64[0][:n], x64[0][:n])
		if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
			t.Errorf("dot len %d: got %g, want %g", n, got, want)
		}
	}
}

// Buffer reuse must not reallocate when capacity suffices.
func TestPairwiseSqDistF32Reuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q32, _ := randMatrixF32(rng, 4, 8)
	t32, _ := randMatrixF32(rng, 10, 8)
	tnorm := SqNormsF32(t32, 10, 8, nil)
	buf := make([]float32, 64)
	out := PairwiseSqDistF32Into(q32, 4, t32, 10, 8, tnorm, buf)
	if &out[0] != &buf[0] {
		t.Error("PairwiseSqDistF32Into reallocated despite sufficient capacity")
	}
	norms := SqNormsF32(t32, 10, 8, buf)
	if &norms[0] != &buf[0] {
		t.Error("SqNormsF32 reallocated despite sufficient capacity")
	}
}
