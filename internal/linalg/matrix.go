// Package linalg provides the small dense linear-algebra kernel used by the
// learning algorithms in this repository (least-squares SVMs and linear
// discriminant analysis). It implements exactly what those algorithms need —
// dense matrices, Cholesky factorization, triangular solves, symmetric
// inversion and a Jacobi eigensolver — with no external dependencies.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from row slices. All rows must have the
// same length.
func NewMatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add adds v to the element at row i, column j.
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		arow := m.Row(i)
		orow := out.Row(i)
		for k, a := range arow {
			if a == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d · %d", m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out
}

// Scale multiplies every element by s, in place, and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddMatrix adds b into m element-wise, in place, and returns m.
func (m *Matrix) AddMatrix(b *Matrix) *Matrix {
	if m.rows != b.rows || m.cols != b.cols {
		panic("linalg: AddMatrix dimension mismatch")
	}
	for i := range m.data {
		m.data[i] += b.data[i]
	}
	return m
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%9.4f", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: SqDist length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}
