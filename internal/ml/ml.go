// Package ml defines the supervised-learning core the paper's experiments
// are built from: labeled datasets of loop feature vectors, feature
// normalization and projection, classifier interfaces, leave-one-out
// cross-validation, and the rank/cost metrics of Table 2.
package ml

import (
	"fmt"
	"math"
	"strings"

	"metaopt/internal/obs"
	"metaopt/internal/par"
)

var mLOOCVFolds = obs.C("ml.loocv_folds")

// NumClasses is the number of labels: unroll factors 1..8.
const NumClasses = 8

// Example is one labeled loop.
type Example struct {
	Name      string // loop name, unique within a benchmark
	Benchmark string // owning benchmark
	Features  []float64
	Label     int // best unroll factor, 1..NumClasses

	// Cycles holds the measured runtime for each unroll factor (index
	// 1..8; index 0 unused). It backs the rank and cost columns of
	// Table 2 and the oracle of Figures 4/5.
	Cycles [NumClasses + 1]int64
}

// Dataset is a labeled training set.
type Dataset struct {
	Examples     []Example
	FeatureNames []string

	// Cols is an optional column-major backing (possibly aliasing a
	// memory-mapped columnar store). When present and consistent with the
	// examples, normalization fitting, pairwise-distance construction, and
	// the NN/LS-SVM LOOCV paths read features as sequential column scans
	// instead of per-row slice loads — with bit-identical results. In
	// out-of-core datasets the examples carry only metadata (name, label,
	// cycles) and Cols is the sole feature storage.
	Cols *Columns

	// slab is the flat backing array behind projected feature rows
	// (SelectInto); keeping it lets a reused buffer dataset recycle one
	// allocation instead of one per example.
	slab []float64
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Examples) }

// Validate checks labels and dimensions. Column-only datasets (feature rows
// not materialized, Cols carrying the values) validate labels against the
// backing's shape instead of per-row widths.
func (d *Dataset) Validate() error {
	if d.Len() == 0 {
		return fmt.Errorf("ml: empty dataset")
	}
	if !d.HasRows() {
		if d.Cols == nil {
			return fmt.Errorf("ml: dataset has neither feature rows nor a column backing")
		}
		if d.Cols.N != d.Len() {
			return fmt.Errorf("ml: column backing has %d rows for %d examples", d.Cols.N, d.Len())
		}
		if len(d.FeatureNames) != 0 && len(d.FeatureNames) != d.Cols.Dim {
			return fmt.Errorf("ml: %d feature names for %d feature columns", len(d.FeatureNames), d.Cols.Dim)
		}
		for i, e := range d.Examples {
			if e.Label < 1 || e.Label > NumClasses {
				return fmt.Errorf("ml: example %d (%s) has label %d", i, e.Name, e.Label)
			}
		}
		return nil
	}
	dim := len(d.Examples[0].Features)
	if len(d.FeatureNames) != 0 && len(d.FeatureNames) != dim {
		return fmt.Errorf("ml: %d feature names for %d features", len(d.FeatureNames), dim)
	}
	for i, e := range d.Examples {
		if e.Label < 1 || e.Label > NumClasses {
			return fmt.Errorf("ml: example %d (%s) has label %d", i, e.Name, e.Label)
		}
		if len(e.Features) != dim {
			return fmt.Errorf("ml: example %d (%s) has %d features, want %d", i, e.Name, len(e.Features), dim)
		}
	}
	return nil
}

// Select returns a dataset projected onto the given feature indices. All
// projected rows share one flat column slab — a single allocation instead
// of one per example.
func (d *Dataset) Select(idx []int) *Dataset {
	return d.SelectInto(idx, &Dataset{})
}

// SelectInto projects the dataset onto idx, reusing buf's example slice
// and feature slab when large enough. Greedy forward selection scores 38
// candidate features per round against projections of the same dataset;
// reusing one buffer per worker turns that into a zero-allocation loop.
// The returned dataset aliases buf — it is only valid until buf's next
// reuse, and callers must not retain classifiers trained on it past that
// point.
func (d *Dataset) SelectInto(idx []int, buf *Dataset) *Dataset {
	n, k := d.Len(), len(idx)
	buf.FeatureNames = buf.FeatureNames[:0]
	for _, j := range idx {
		name := fmt.Sprintf("f%d", j)
		if j < len(d.FeatureNames) {
			name = d.FeatureNames[j]
		}
		buf.FeatureNames = append(buf.FeatureNames, name)
	}
	if cap(buf.Examples) < n {
		buf.Examples = make([]Example, n)
	} else {
		buf.Examples = buf.Examples[:n]
	}
	if cap(buf.slab) < n*k {
		buf.slab = make([]float64, n*k)
	} else {
		buf.slab = buf.slab[:n*k]
	}
	if cols := d.UsableCols(); cols != nil {
		// Column-backed source: fill the projected slab one source column
		// at a time — every read is a sequential scan of a contiguous
		// (possibly memory-mapped) slab, and out-of-core datasets project
		// without ever materializing full-width rows. Values land in the
		// same slots the row loop writes, so the result is bit-identical.
		for c, j := range idx {
			for ci := 0; ci < cols.NumChunks(); ci++ {
				ch := cols.Chunk(ci)
				base := ch.Start
				for r, v := range ch.Feats[j] {
					buf.slab[(base+r)*k+c] = v
				}
			}
		}
		for i := range d.Examples {
			e := d.Examples[i]
			e.Features = buf.slab[i*k : (i+1)*k : (i+1)*k]
			buf.Examples[i] = e
		}
		// The projection shares the parent's column slabs, so downstream
		// columnar kernels keep their sequential access on the subset.
		buf.Cols = cols.Project(idx)
		return buf
	}
	buf.Cols = nil
	for i, e := range d.Examples {
		row := buf.slab[i*k : (i+1)*k : (i+1)*k]
		for c, j := range idx {
			row[c] = e.Features[j]
		}
		e.Features = row
		buf.Examples[i] = e
	}
	return buf
}

// WithoutBenchmark splits off every example belonging to the named
// benchmark: train gets the rest, test gets the benchmark's loops. This is
// the evaluation protocol of Figures 4 and 5.
func (d *Dataset) WithoutBenchmark(name string) (train, test *Dataset) {
	train = &Dataset{FeatureNames: d.FeatureNames}
	test = &Dataset{FeatureNames: d.FeatureNames}
	for _, e := range d.Examples {
		if e.Benchmark == name {
			test.Examples = append(test.Examples, e)
		} else {
			train.Examples = append(train.Examples, e)
		}
	}
	return train, test
}

// Without returns the dataset minus example i (for leave-one-out).
func (d *Dataset) Without(i int) *Dataset {
	return d.WithoutInto(i, &Dataset{})
}

// WithoutInto writes the dataset minus example i into buf, reusing buf's
// example slice across folds. LOOCV runs one fold per example; a reused
// per-worker buffer replaces n fold-sized allocations with one.
func (d *Dataset) WithoutInto(i int, buf *Dataset) *Dataset {
	buf.FeatureNames = d.FeatureNames
	buf.Cols = nil // fold subsets do not align with the column backing
	buf.Examples = buf.Examples[:0]
	buf.Examples = append(buf.Examples, d.Examples[:i]...)
	buf.Examples = append(buf.Examples, d.Examples[i+1:]...)
	return buf
}

// Norm is a per-feature normalizer mapping training values into [0, 1].
// Counts and cycle estimates are heavy-tailed (a trip count spans 4 to
// 8192), so values first pass through a signed log transform before min-max
// scaling; this "weighs all features equally" (the paper's requirement) in
// a way that keeps resolution where most loops live.
type Norm struct {
	Min, Scale []float64
}

// squash is the monotone transform applied before scaling.
func squash(v float64) float64 {
	if v < 0 {
		return -math.Log1p(-v)
	}
	return math.Log1p(v)
}

// FitNorm computes normalization statistics over a dataset. With a column
// backing attached the per-feature sweeps read contiguous slabs; the scan
// visits examples in the same order as the row loop and applies the same
// squash/min/max operations, so the statistics are bit-identical.
func FitNorm(d *Dataset) *Norm {
	if d.Len() == 0 {
		return &Norm{}
	}
	if cols := d.UsableCols(); cols != nil {
		return fitNormColumns(cols)
	}
	dim := len(d.Examples[0].Features)
	n := &Norm{Min: make([]float64, dim), Scale: make([]float64, dim)}
	for j := 0; j < dim; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, e := range d.Examples {
			v := squash(e.Features[j])
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		n.Min[j] = lo
		if hi > lo {
			n.Scale[j] = 1 / (hi - lo)
		}
	}
	return n
}

// fitNormColumns is FitNorm over a column backing: one contiguous sweep per
// feature, chunks in row order.
func fitNormColumns(cols *Columns) *Norm {
	n := &Norm{Min: make([]float64, cols.Dim), Scale: make([]float64, cols.Dim)}
	for j := 0; j < cols.Dim; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for ci := 0; ci < cols.NumChunks(); ci++ {
			for _, raw := range cols.Chunk(ci).Feats[j] {
				v := squash(raw)
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		n.Min[j] = lo
		if hi > lo {
			n.Scale[j] = 1 / (hi - lo)
		}
	}
	return n
}

// ApplyColumns normalizes a column backing into dim full-length columns
// sharing one flat slab. Each output element is computed by exactly the
// expression ApplyInto uses, so a row assembled from the returned columns
// carries the same bits as a normalized row vector.
func (n *Norm) ApplyColumns(cols *Columns) [][]float64 {
	slab := make([]float64, cols.Dim*cols.N)
	out := make([][]float64, cols.Dim)
	for j := 0; j < cols.Dim; j++ {
		col := slab[j*cols.N : (j+1)*cols.N]
		out[j] = col
		if j >= len(n.Min) {
			continue // ApplyInto zero-fills features past the fitted width
		}
		min, scale := n.Min[j], n.Scale[j]
		for ci := 0; ci < cols.NumChunks(); ci++ {
			ch := cols.Chunk(ci)
			for r, raw := range ch.Feats[j] {
				col[ch.Start+r] = (squash(raw) - min) * scale
			}
		}
	}
	return out
}

// Apply maps a raw feature vector into normalized space.
func (n *Norm) Apply(v []float64) []float64 {
	return n.ApplyInto(v, make([]float64, len(v)))
}

// ApplyInto normalizes v into out (which must have len(v) capacity) and
// returns it — the allocation-free form for pooled query buffers.
func (n *Norm) ApplyInto(v, out []float64) []float64 {
	out = out[:len(v)]
	for j := range v {
		if j < len(n.Min) {
			out[j] = (squash(v[j]) - n.Min[j]) * n.Scale[j]
		} else {
			out[j] = 0
		}
	}
	return out
}

// ApplyAll normalizes every example, returning the matrix of rows.
func (n *Norm) ApplyAll(d *Dataset) [][]float64 {
	rows := make([][]float64, d.Len())
	for i, e := range d.Examples {
		rows[i] = n.Apply(e.Features)
	}
	return rows
}

// Classifier predicts an unroll factor from a raw (unnormalized) feature
// vector.
type Classifier interface {
	Predict(features []float64) int
}

// Trainer builds a classifier from a dataset.
type Trainer interface {
	Train(d *Dataset) (Classifier, error)
}

// LOOCVer is implemented by trainers with a fast exact leave-one-out
// shortcut (the LS-SVM); LOOCV uses it when available.
type LOOCVer interface {
	LOOCV(d *Dataset) ([]int, error)
}

// FoldTrainer is implemented by trainers that can amortize shared work
// (presorted feature orders, cached distances) across leave-one-out folds
// over the same dataset. Unlike LOOCVer it does not replace the fold loop:
// LOOCV still trains every fold individually across the worker pool, it
// just trains each via the session. The session must return classifiers
// identical to Train on the fold's own dataset.
type FoldTrainer interface {
	// BeginFolds prepares shared state for leave-one-out folds over d with
	// up to workers concurrent callers.
	BeginFolds(d *Dataset, workers int) (FoldSession, error)
}

// FoldSession trains per-fold classifiers for one BeginFolds dataset.
// Calls with distinct worker ids may run concurrently.
type FoldSession interface {
	// TrainWithout trains on the session dataset minus example i.
	TrainWithout(worker, i int) (Classifier, error)
}

// SelectScorer is implemented by trainers that can score greedy forward
// feature selection incrementally: the session carries state shared across
// a whole selection run (e.g. an additive distance matrix over the chosen
// features), so scoring a candidate costs one feature's worth of work
// instead of re-deriving the entire subset. Scores must be exactly the
// error errorOf(tr, d.Select(chosen ∪ {cand})) would produce.
type SelectScorer interface {
	// BeginSelect prepares shared state for selection over d with up to
	// workers concurrent Score callers.
	BeginSelect(d *Dataset, workers int) (SelectSession, error)
}

// SelectSession scores candidate features for one BeginSelect dataset.
// Score calls with distinct worker ids may run concurrently; Commit is
// called serially between rounds with that round's winner.
type SelectSession interface {
	// Score returns the selection error of chosen ∪ {cand}. chosen must be
	// exactly the features committed so far, in commit order.
	Score(worker int, chosen []int, cand int) (float64, error)
	// Commit folds the round winner into the shared state.
	Commit(f int) error
}

// LOOCV runs leave-one-out cross-validation and returns the held-out
// prediction for every example. Slow-path folds (trainers without an exact
// shortcut) are independent, so they run across the shared worker pool;
// predictions are written by fold index, making the output bit-identical
// to a serial pass.
func LOOCV(tr Trainer, d *Dataset) ([]int, error) {
	sp := obs.Begin("loocv")
	defer sp.End()
	mLOOCVFolds.Add(int64(d.Len()))
	if fast, ok := tr.(LOOCVer); ok {
		return fast.LOOCV(d)
	}
	n := d.Len()
	preds := make([]int, n)
	if ft, ok := tr.(FoldTrainer); ok {
		sess, err := ft.BeginFolds(d, par.Workers(n))
		if err != nil {
			return nil, fmt.Errorf("ml: LOOCV begin folds: %w", err)
		}
		err = par.ForEachWorker(n, func(w, i int) error {
			c, err := sess.TrainWithout(w, i)
			if err != nil {
				return fmt.Errorf("ml: LOOCV fold %d: %w", i, err)
			}
			preds[i] = c.Predict(d.Examples[i].Features)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return preds, nil
	}
	folds := make([]Dataset, par.Workers(n))
	err := par.ForEachWorker(n, func(w, i int) error {
		c, err := tr.Train(d.WithoutInto(i, &folds[w]))
		if err != nil {
			return fmt.Errorf("ml: LOOCV fold %d: %w", i, err)
		}
		preds[i] = c.Predict(d.Examples[i].Features)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return preds, nil
}

// Accuracy is the fraction of predictions matching the label.
func Accuracy(d *Dataset, preds []int) float64 {
	if len(preds) == 0 {
		return 0
	}
	hit := 0
	for i, p := range preds {
		if p == d.Examples[i].Label {
			hit++
		}
	}
	return float64(hit) / float64(len(preds))
}

// Rank returns which place (1 = optimal .. NumClasses = worst) the
// predicted unroll factor takes in the example's measured cycle ordering.
// Ties in measured cycles share the better rank.
func Rank(e *Example, pred int) int {
	if pred < 1 || pred > NumClasses {
		return NumClasses
	}
	rank := 1
	for u := 1; u <= NumClasses; u++ {
		if e.Cycles[u] < e.Cycles[pred] {
			rank++
		}
	}
	return rank
}

// Cost is the runtime penalty of the prediction relative to the measured
// optimum (1.0 = optimal).
func Cost(e *Example, pred int) float64 {
	if pred < 1 || pred > NumClasses {
		pred = 1
	}
	best := e.Cycles[1]
	for u := 2; u <= NumClasses; u++ {
		if e.Cycles[u] < best {
			best = e.Cycles[u]
		}
	}
	if best <= 0 {
		return 1
	}
	return float64(e.Cycles[pred]) / float64(best)
}

// RankTable aggregates predictions into the Table 2 rows: the fraction of
// predictions at each rank (index 0 = optimal) and the mean cost at each
// rank over the dataset's measured runtimes.
func RankTable(d *Dataset, preds []int) (frac [NumClasses]float64, cost [NumClasses]float64) {
	var count [NumClasses]int
	var costSum [NumClasses]float64
	var costN [NumClasses]int
	for i, p := range preds {
		r := Rank(&d.Examples[i], p) - 1
		if r >= NumClasses {
			r = NumClasses - 1
		}
		count[r]++
		costSum[r] += Cost(&d.Examples[i], p)
		costN[r]++
	}
	for r := 0; r < NumClasses; r++ {
		if len(preds) > 0 {
			frac[r] = float64(count[r]) / float64(len(preds))
		}
		if costN[r] > 0 {
			cost[r] = costSum[r] / float64(costN[r])
		}
	}
	return frac, cost
}

// CostByRank computes, for every rank r (0-based), the mean penalty of
// choosing the rank-r factor across all examples — the paper's Cost column
// (how expensive the Nth-best choice is on average).
func CostByRank(d *Dataset) [NumClasses]float64 {
	var sum [NumClasses]float64
	for i := range d.Examples {
		e := &d.Examples[i]
		// Order the factors by measured cycles.
		order := make([]int, 0, NumClasses)
		for u := 1; u <= NumClasses; u++ {
			order = append(order, u)
		}
		for a := 1; a < len(order); a++ {
			for b := a; b > 0 && e.Cycles[order[b]] < e.Cycles[order[b-1]]; b-- {
				order[b], order[b-1] = order[b-1], order[b]
			}
		}
		best := e.Cycles[order[0]]
		for r, u := range order {
			if best > 0 {
				sum[r] += float64(e.Cycles[u]) / float64(best)
			} else {
				sum[r]++
			}
		}
	}
	n := float64(d.Len())
	if n == 0 {
		return sum
	}
	for r := range sum {
		sum[r] /= n
	}
	return sum
}

// Confusion is a multi-class confusion matrix: Counts[a][p] is how often an
// example with true label a was predicted as p (1-based labels; index 0
// unused).
type Confusion struct {
	Counts [NumClasses + 1][NumClasses + 1]int
	Total  int
}

// NewConfusion tallies predictions against a dataset's labels.
func NewConfusion(d *Dataset, preds []int) *Confusion {
	c := &Confusion{}
	for i, p := range preds {
		if p < 1 || p > NumClasses {
			p = 1
		}
		c.Counts[d.Examples[i].Label][p]++
		c.Total++
	}
	return c
}

// Accuracy is the diagonal mass.
func (c *Confusion) Accuracy() float64 {
	if c.Total == 0 {
		return 0
	}
	hit := 0
	for lab := 1; lab <= NumClasses; lab++ {
		hit += c.Counts[lab][lab]
	}
	return float64(hit) / float64(c.Total)
}

// Recall returns the per-class recall (0 when the class never occurs).
func (c *Confusion) Recall(label int) float64 {
	total := 0
	for p := 1; p <= NumClasses; p++ {
		total += c.Counts[label][p]
	}
	if total == 0 {
		return 0
	}
	return float64(c.Counts[label][label]) / float64(total)
}

// String renders the matrix with actual labels as rows.
func (c *Confusion) String() string {
	var sb strings.Builder
	sb.WriteString("actual\\pred")
	for p := 1; p <= NumClasses; p++ {
		fmt.Fprintf(&sb, "%6d", p)
	}
	sb.WriteString("  recall\n")
	for a := 1; a <= NumClasses; a++ {
		fmt.Fprintf(&sb, "%10d ", a)
		for p := 1; p <= NumClasses; p++ {
			fmt.Fprintf(&sb, "%6d", c.Counts[a][p])
		}
		fmt.Fprintf(&sb, "  %5.2f\n", c.Recall(a))
	}
	fmt.Fprintf(&sb, "overall accuracy: %.3f over %d examples\n", c.Accuracy(), c.Total)
	return sb.String()
}
