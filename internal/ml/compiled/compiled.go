// Package compiled lowers trained classifiers into flat, serve-optimized
// programs. The interpreted classifiers in nn, svm and tree are built for
// training-time ergonomics — pointer-chasing tree nodes, [][]float64 row
// slices, per-query kernel closures. A compiled Program holds the same
// decision function in contiguous arrays:
//
//   - decision trees and boosted ensembles flatten into one node slab
//     walked iteratively (no recursion, no pointer chasing);
//   - the near-neighbor database becomes a flat exemplar table with a
//     float32 mirror and precomputed squared norms;
//   - kernel machines (LS-SVM, SMO, ridge regression) bake their support
//     coefficients into dense matrices so a batched query is one distance
//     sweep plus one GEMV.
//
// Two evaluation paths exist. Predict is the exact path: float64
// arithmetic in the same operation order as the interpreted classifier,
// so single-query answers are bit-identical, with zero steady-state heap
// allocations (scratch comes from a sync.Pool). PredictBatch is the
// throughput path: the whole batch runs through the float32 blocked
// distance kernel, which rounds differently than float64 — the divergence
// is declared in Version, which callers fold into their fingerprints.
package compiled

import (
	"fmt"
	"math"
	"sync"

	"metaopt/internal/linalg"
	"metaopt/internal/ml"
)

// Compiler is implemented by classifiers that can lower themselves into a
// compiled Program.
type Compiler interface {
	Compile() (*Program, error)
}

// Lower compiles a classifier, or reports that it has no compiled form.
func Lower(c ml.Classifier) (*Program, error) {
	cc, ok := c.(Compiler)
	if !ok {
		return nil, fmt.Errorf("compiled: classifier %T has no compiled lowering", c)
	}
	return cc.Compile()
}

type kind uint8

const (
	kindForest kind = iota + 1
	kindNN
	kindKernel
	kindRegress
)

// Node is one flattened tree node. Left < 0 marks a leaf carrying Label;
// otherwise the walk continues left when features[Feature] <= Threshold.
type Node struct {
	Feature     int32
	Left, Right int32
	Label       int32
	Threshold   float64
}

// Program is a lowered classifier. Programs are immutable after
// construction and safe for concurrent use; share them by pointer (the
// scratch pool must not be copied).
type Program struct {
	kind    kind
	version string

	norm *ml.Norm // nil for forests, which read raw features

	// Forest: one slab of nodes, a root per tree, a vote weight per tree.
	nodes  []Node
	roots  []int32
	weight []float64
	single bool // single plain tree: return the leaf label directly

	// Exemplar/support table, n rows × dim, flat row-major, with the
	// float32 mirror and precomputed squared norms for the batch path.
	n, dim  int
	table   []float64
	table32 []float32
	norms32 []float32

	// Near-neighbor.
	labels []int32
	radius float64
	oneNN  bool

	// Kernel machines. alpha is bits×n row-major (premultiplied by y for
	// SMO); sigma > 0 selects the RBF kernel, otherwise the linear kernel.
	bits     int
	alpha    []float64
	alpha32  []float32
	bias     []float64
	codes    [][]int8
	sigma    float64
	skipZero bool // preserve the interpreted SMO path's a == 0 skip

	scratch sync.Pool
}

// scratchBuf is the per-goroutine working set; pooled so the steady-state
// Predict path performs zero heap allocations.
type scratchBuf struct {
	q   []float64 // normalized query
	k   []float64 // kernel vector
	s   []float64 // per-bit scores
	q32 []float32 // normalized batch queries, flat m×dim
	d2  []float32 // batch squared distances, flat m×n
	k32 []float32 // kernel vector (batch path)
	s32 []float32 // per-bit scores (batch path)
}

func (p *Program) initPool() {
	p.scratch.New = func() any {
		return &scratchBuf{
			q: make([]float64, p.dim),
			k: make([]float64, p.n),
			s: make([]float64, maxInt(p.bits, 1)),
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Version names the lowering and its rounding policy. Exact lowerings
// (forests) carry a bare tag; table lowerings append "+f32b" because their
// batch path rounds in float32. Callers version fingerprints with it.
func (p *Program) Version() string { return p.version }

// Kind names the lowered family, for logs and metrics.
func (p *Program) Kind() string {
	switch p.kind {
	case kindForest:
		return "forest"
	case kindNN:
		return "nn"
	case kindKernel:
		return "kernel"
	case kindRegress:
		return "regress"
	}
	return "unknown"
}

// TableRows reports the exemplar/support table size (0 for forests).
func (p *Program) TableRows() int { return p.n }

// Predict evaluates the exact float64 path: the same arithmetic in the
// same order as the interpreted classifier, so the answer is bit-identical
// to it, with zero steady-state allocations. The feature vector must have
// the lowered model's dimensionality (forests tolerate any vector their
// splits can index, exactly like the interpreted tree walk).
func (p *Program) Predict(features []float64) int {
	if p.kind == kindForest {
		return p.forestPredict(features)
	}
	sc := p.scratch.Get().(*scratchBuf)
	q := p.norm.ApplyInto(features, sc.q[:cap(sc.q)])
	var out int
	switch p.kind {
	case kindNN:
		out = p.nnPredict(q)
	case kindKernel:
		out = p.kernelPredict(q, sc)
	case kindRegress:
		out = p.regressPredict(q, sc)
	}
	p.scratch.Put(sc)
	return out
}

// PredictBatch evaluates every query and writes the decisions into out
// (grown when too small) and returns it. Forests run the exact walk per
// query; table programs run the float32 blocked distance path across the
// whole batch at once, which is the throughput mode Version declares.
func (p *Program) PredictBatch(qs [][]float64, out []int) []int {
	if cap(out) < len(qs) {
		out = make([]int, len(qs))
	} else {
		out = out[:len(qs)]
	}
	m := len(qs)
	if m == 0 {
		return out
	}
	if p.kind == kindForest {
		for i, q := range qs {
			out[i] = p.forestPredict(q)
		}
		return out
	}

	sc := p.scratch.Get().(*scratchBuf)
	sc.q32 = growF32(sc.q32, m*p.dim)
	qbuf := sc.q[:cap(sc.q)]
	for i, v := range qs {
		nq := p.norm.ApplyInto(v, qbuf)
		dst := sc.q32[i*p.dim : (i+1)*p.dim]
		for j, x := range nq {
			dst[j] = float32(x)
		}
	}
	if p.kind == kindNN || p.sigma > 0 {
		sc.d2 = linalg.PairwiseSqDistF32Into(sc.q32, m, p.table32, p.n, p.dim, p.norms32, sc.d2)
	}

	switch p.kind {
	case kindNN:
		for i := 0; i < m; i++ {
			out[i] = p.nnPredictRow32(sc.d2[i*p.n : (i+1)*p.n])
		}
	case kindKernel:
		sc.k32 = growF32(sc.k32, p.n)
		sc.s32 = growF32(sc.s32, p.bits)
		scores := sc.s[:p.bits]
		for i := 0; i < m; i++ {
			p.kernelRow32(sc.q32[i*p.dim:(i+1)*p.dim], sc.d2, i, sc.k32[:p.n])
			linalg.MulVecF32(p.alpha32, p.bits, p.n, sc.k32[:p.n], sc.s32[:p.bits])
			for b := 0; b < p.bits; b++ {
				scores[b] = float64(sc.s32[b]) + p.bias[b]
			}
			out[i] = decode(p.codes, scores)
		}
	case kindRegress:
		sc.k32 = growF32(sc.k32, p.n)
		for i := 0; i < m; i++ {
			p.kernelRow32(sc.q32[i*p.dim:(i+1)*p.dim], sc.d2, i, sc.k32[:p.n])
			s := float64(linalg.DotF32(p.alpha32, sc.k32[:p.n])) + p.bias[0]
			out[i] = clampRound(s)
		}
	}
	p.scratch.Put(sc)
	return out
}

func growF32(b []float32, n int) []float32 {
	if cap(b) < n {
		return make([]float32, n)
	}
	return b[:n]
}

// --- Forest --------------------------------------------------------------

func (p *Program) forestPredict(features []float64) int {
	if p.single {
		return int(p.walk(p.roots[0], features))
	}
	var votes [ml.NumClasses + 1]float64
	for t, root := range p.roots {
		votes[p.walk(root, features)] += p.weight[t]
	}
	best := 1
	for lab := 2; lab <= ml.NumClasses; lab++ {
		if votes[lab] > votes[best] {
			best = lab
		}
	}
	return best
}

// walk descends one flattened tree iteratively.
func (p *Program) walk(root int32, features []float64) int32 {
	n := &p.nodes[root]
	for n.Left >= 0 {
		if features[n.Feature] <= n.Threshold {
			n = &p.nodes[n.Left]
		} else {
			n = &p.nodes[n.Right]
		}
	}
	return n.Label
}

// --- Near-neighbor -------------------------------------------------------

// nnPredict mirrors nn.Classifier's radius vote exactly: same SqDist
// accumulation, same tie-break on the closer exemplar, same single-nearest
// fallback when the neighborhood is empty.
func (p *Program) nnPredict(q []float64) int {
	if p.oneNN {
		return int(p.labels[p.nearest(q)])
	}
	r2 := p.radius * p.radius
	var votes [ml.NumClasses + 1]int
	var bestInClass [ml.NumClasses + 1]float64
	for i := range bestInClass {
		bestInClass[i] = math.Inf(1)
	}
	found := 0
	for i := 0; i < p.n; i++ {
		d2 := linalg.SqDist(q, p.table[i*p.dim:(i+1)*p.dim])
		if d2 > r2 {
			continue
		}
		found++
		lab := p.labels[i]
		votes[lab]++
		if d2 < bestInClass[lab] {
			bestInClass[lab] = d2
		}
	}
	if found == 0 {
		return int(p.labels[p.nearest(q)])
	}
	return voteArgmax(&votes, &bestInClass)
}

func (p *Program) nearest(q []float64) int {
	best, bestD := -1, math.Inf(1)
	for i := 0; i < p.n; i++ {
		if d := linalg.SqDist(q, p.table[i*p.dim:(i+1)*p.dim]); d < bestD {
			best, bestD = i, d
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// nnPredictRow32 is the float32 batch counterpart reading a precomputed
// distance row.
func (p *Program) nnPredictRow32(d2s []float32) int {
	if p.oneNN {
		return int(p.labels[nearestRow32(d2s)])
	}
	r2 := float32(p.radius * p.radius)
	var votes [ml.NumClasses + 1]int
	var bestInClass [ml.NumClasses + 1]float32
	inf := float32(math.Inf(1))
	for i := range bestInClass {
		bestInClass[i] = inf
	}
	found := 0
	for i, d2 := range d2s {
		if d2 > r2 {
			continue
		}
		found++
		lab := p.labels[i]
		votes[lab]++
		if d2 < bestInClass[lab] {
			bestInClass[lab] = d2
		}
	}
	if found == 0 {
		return int(p.labels[nearestRow32(d2s)])
	}
	return voteArgmax(&votes, &bestInClass)
}

func nearestRow32(d2s []float32) int {
	best, bestD := -1, float32(math.Inf(1))
	for i, d := range d2s {
		if d < bestD {
			best, bestD = i, d
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// voteArgmax picks the most-voted label with the interpreted classifiers'
// exact rule: strictly more votes wins, equal votes go to the class whose
// best exemplar is nearer.
func voteArgmax[F float32 | float64](votes *[ml.NumClasses + 1]int, bestInClass *[ml.NumClasses + 1]F) int {
	best := 0
	for label := 1; label <= ml.NumClasses; label++ {
		if votes[label] == 0 {
			continue
		}
		switch {
		case best == 0, votes[label] > votes[best]:
			best = label
		case votes[label] == votes[best] && bestInClass[label] < bestInClass[best]:
			best = label
		}
	}
	return best
}

// --- Kernel machines -----------------------------------------------------

// kernelVec64 fills k with the exact kernel evaluations against every
// table row: the RBF expression matches svm.RBF.Eval term for term.
func (p *Program) kernelVec64(q, k []float64) {
	if p.sigma > 0 {
		denom := 2 * p.sigma * p.sigma
		for i := range k {
			k[i] = math.Exp(-linalg.SqDist(q, p.table[i*p.dim:(i+1)*p.dim]) / denom)
		}
		return
	}
	for i := range k {
		k[i] = linalg.Dot(q, p.table[i*p.dim:(i+1)*p.dim])
	}
}

// kernelRow32 fills k with float32 kernel evaluations for batch query i:
// RBF reads the precomputed distance row, the linear kernel dots the query
// against the float32 table.
func (p *Program) kernelRow32(qi []float32, d2 []float32, i int, k []float32) {
	if p.sigma > 0 {
		denom := 2 * p.sigma * p.sigma
		row := d2[i*p.n : (i+1)*p.n]
		for j := range k {
			k[j] = float32(math.Exp(float64(-row[j]) / denom))
		}
		return
	}
	for j := range k {
		k[j] = linalg.DotF32(qi, p.table32[j*p.dim:(j+1)*p.dim])
	}
}

func (p *Program) kernelPredict(q []float64, sc *scratchBuf) int {
	k := sc.k[:p.n]
	p.kernelVec64(q, k)
	scores := sc.s[:p.bits]
	for bit := 0; bit < p.bits; bit++ {
		s := p.bias[bit]
		off := bit * p.n
		if p.skipZero {
			for i := 0; i < p.n; i++ {
				if a := p.alpha[off+i]; a != 0 {
					s += a * k[i]
				}
			}
		} else {
			for i := 0; i < p.n; i++ {
				s += p.alpha[off+i] * k[i]
			}
		}
		scores[bit] = s
	}
	return decode(p.codes, scores)
}

func (p *Program) regressPredict(q []float64, sc *scratchBuf) int {
	k := sc.k[:p.n]
	p.kernelVec64(q, k)
	s := p.bias[0]
	for i := 0; i < p.n; i++ {
		s += p.alpha[i] * k[i]
	}
	return clampRound(s)
}

// decode replicates svm.Codes.Decode: nearest codeword by Hamming distance
// over the score signs, ties broken by total hinge loss.
func decode(codes [][]int8, scores []float64) int {
	best := 1
	bestHam := math.MaxInt32
	bestLoss := math.Inf(1)
	for class := 1; class <= len(codes); class++ {
		ham := 0
		loss := 0.0
		for b, want := range codes[class-1] {
			s := scores[b]
			if (s >= 0) != (want > 0) {
				ham++
			}
			if m := 1 - float64(want)*s; m > 0 {
				loss += m
			}
		}
		if ham < bestHam || (ham == bestHam && loss < bestLoss) {
			best, bestHam, bestLoss = class, ham, loss
		}
	}
	return best
}

// clampRound replicates the regression rounding into the label range.
func clampRound(v float64) int {
	u := int(math.Round(v))
	if u < 1 {
		u = 1
	}
	if u > ml.NumClasses {
		u = ml.NumClasses
	}
	return u
}

// --- Constructors --------------------------------------------------------

// flattenRows packs row slices into the flat table plus its float32 mirror
// and precomputed squared norms.
func flattenRows(rows [][]float64) (table []float64, table32, norms32 []float32, dim int, err error) {
	n := len(rows)
	if n == 0 {
		return nil, nil, nil, 0, fmt.Errorf("compiled: empty exemplar table")
	}
	dim = len(rows[0])
	if dim == 0 {
		return nil, nil, nil, 0, fmt.Errorf("compiled: zero-dimensional exemplars")
	}
	table = make([]float64, n*dim)
	table32 = make([]float32, n*dim)
	for i, r := range rows {
		if len(r) != dim {
			return nil, nil, nil, 0, fmt.Errorf("compiled: ragged exemplar table: row %d has %d features, want %d", i, len(r), dim)
		}
		copy(table[i*dim:(i+1)*dim], r)
		for j, v := range r {
			table32[i*dim+j] = float32(v)
		}
	}
	norms32 = linalg.SqNormsF32(table32, n, dim, nil)
	return table, table32, norms32, dim, nil
}

// NewNN lowers a near-neighbor database: normalized rows, their labels,
// and the voting radius (oneNN selects the pure 1-NN mode).
func NewNN(norm *ml.Norm, rows [][]float64, labels []int, radius float64, oneNN bool) (*Program, error) {
	if norm == nil {
		return nil, fmt.Errorf("compiled: nn lowering needs a normalizer")
	}
	if len(labels) != len(rows) {
		return nil, fmt.Errorf("compiled: %d labels for %d rows", len(labels), len(rows))
	}
	if !oneNN && radius <= 0 {
		return nil, fmt.Errorf("compiled: non-positive voting radius %v", radius)
	}
	table, table32, norms32, dim, err := flattenRows(rows)
	if err != nil {
		return nil, err
	}
	p := &Program{
		kind: kindNN, version: "nn/v1+f32b", norm: norm,
		n: len(rows), dim: dim, table: table, table32: table32, norms32: norms32,
		radius: radius, oneNN: oneNN,
		labels: make([]int32, len(labels)),
	}
	for i, l := range labels {
		if l < 1 || l > ml.NumClasses {
			return nil, fmt.Errorf("compiled: exemplar %d has label %d outside [1,%d]", i, l, ml.NumClasses)
		}
		p.labels[i] = int32(l)
	}
	p.initPool()
	return p, nil
}

// KernelMachine describes a multi-class kernel classifier to lower:
// one score per output-code bit, decoded to the nearest codeword.
type KernelMachine struct {
	Norm  *ml.Norm
	Rows  [][]float64
	Sigma float64 // RBF bandwidth; <= 0 selects the linear kernel
	Alpha [][]float64
	Bias  []float64
	Codes [][]int8
	// SkipZero preserves the interpreted path's alpha == 0 skip (SMO),
	// keeping the score accumulation bit-identical.
	SkipZero bool
}

// NewKernelMachine lowers a multi-class kernel classifier.
func NewKernelMachine(km KernelMachine) (*Program, error) {
	if km.Norm == nil {
		return nil, fmt.Errorf("compiled: kernel lowering needs a normalizer")
	}
	bits := len(km.Alpha)
	if bits == 0 || len(km.Bias) != bits {
		return nil, fmt.Errorf("compiled: %d alpha rows for %d biases", bits, len(km.Bias))
	}
	if len(km.Codes) == 0 || len(km.Codes) > ml.NumClasses {
		return nil, fmt.Errorf("compiled: output code has %d classes, want 1..%d", len(km.Codes), ml.NumClasses)
	}
	for _, cw := range km.Codes {
		if len(cw) != bits {
			return nil, fmt.Errorf("compiled: codeword has %d bits, want %d", len(cw), bits)
		}
	}
	table, table32, norms32, dim, err := flattenRows(km.Rows)
	if err != nil {
		return nil, err
	}
	n := len(km.Rows)
	p := &Program{
		kind: kindKernel, version: "kern/v1+f32b", norm: km.Norm,
		n: n, dim: dim, table: table, table32: table32, norms32: norms32,
		bits: bits, bias: km.Bias, codes: km.Codes,
		sigma: km.Sigma, skipZero: km.SkipZero,
		alpha: make([]float64, bits*n), alpha32: make([]float32, bits*n),
	}
	for bit, a := range km.Alpha {
		if len(a) != n {
			return nil, fmt.Errorf("compiled: bit %d has %d coefficients for %d rows", bit, len(a), n)
		}
		for i, v := range a {
			p.alpha[bit*n+i] = v
			p.alpha32[bit*n+i] = float32(v)
		}
	}
	p.initPool()
	return p, nil
}

// Regressor describes a kernel ridge regressor to lower: one real-valued
// score rounded into the label range.
type Regressor struct {
	Norm  *ml.Norm
	Rows  [][]float64
	Sigma float64 // RBF bandwidth; <= 0 selects the linear kernel
	Alpha []float64
	Bias  float64
}

// NewRegressor lowers a kernel ridge regressor.
func NewRegressor(r Regressor) (*Program, error) {
	if r.Norm == nil {
		return nil, fmt.Errorf("compiled: regress lowering needs a normalizer")
	}
	table, table32, norms32, dim, err := flattenRows(r.Rows)
	if err != nil {
		return nil, err
	}
	n := len(r.Rows)
	if len(r.Alpha) != n {
		return nil, fmt.Errorf("compiled: %d coefficients for %d rows", len(r.Alpha), n)
	}
	p := &Program{
		kind: kindRegress, version: "reg/v1+f32b", norm: r.Norm,
		n: n, dim: dim, table: table, table32: table32, norms32: norms32,
		bias:  []float64{r.Bias},
		sigma: r.Sigma,
		alpha: make([]float64, n), alpha32: make([]float32, n),
	}
	copy(p.alpha, r.Alpha)
	for i, v := range r.Alpha {
		p.alpha32[i] = float32(v)
	}
	p.initPool()
	return p, nil
}

// ForestBuilder assembles flattened decision trees into one Program.
// Build each tree bottom-up with Leaf and Split, seal it with EndTree,
// then Finish.
type ForestBuilder struct {
	nodes  []Node
	roots  []int32
	weight []float64
}

// NewForestBuilder returns an empty builder.
func NewForestBuilder() *ForestBuilder { return &ForestBuilder{} }

// Leaf appends a leaf node and returns its index.
func (b *ForestBuilder) Leaf(label int) (int32, error) {
	if label < 0 || label > ml.NumClasses {
		return 0, fmt.Errorf("compiled: leaf label %d outside [0,%d]", label, ml.NumClasses)
	}
	b.nodes = append(b.nodes, Node{Left: -1, Right: -1, Label: int32(label)})
	return int32(len(b.nodes) - 1), nil
}

// Split appends an internal node over two already-built children and
// returns its index.
func (b *ForestBuilder) Split(feature int, threshold float64, left, right int32) (int32, error) {
	if feature < 0 {
		return 0, fmt.Errorf("compiled: negative split feature %d", feature)
	}
	n := int32(len(b.nodes))
	if left < 0 || left >= n || right < 0 || right >= n {
		return 0, fmt.Errorf("compiled: split children (%d, %d) outside built range [0,%d)", left, right, n)
	}
	b.nodes = append(b.nodes, Node{Feature: int32(feature), Left: left, Right: right, Threshold: threshold})
	return n, nil
}

// EndTree seals the current tree at the given root with its vote weight.
func (b *ForestBuilder) EndTree(root int32, weight float64) error {
	if root < 0 || root >= int32(len(b.nodes)) {
		return fmt.Errorf("compiled: tree root %d outside built range [0,%d)", root, len(b.nodes))
	}
	b.roots = append(b.roots, root)
	b.weight = append(b.weight, weight)
	return nil
}

// Finish returns the forest Program. single marks a lone plain tree whose
// leaf label is returned directly (the interpreted Tree.Predict contract)
// instead of through the weighted vote.
func (b *ForestBuilder) Finish(single bool) (*Program, error) {
	if len(b.roots) == 0 {
		return nil, fmt.Errorf("compiled: forest has no trees")
	}
	if single && len(b.roots) != 1 {
		return nil, fmt.Errorf("compiled: single-tree forest has %d trees", len(b.roots))
	}
	p := &Program{
		kind: kindForest, version: "forest/v1",
		nodes: b.nodes, roots: b.roots, weight: b.weight, single: single,
	}
	p.initPool()
	return p, nil
}
