package ml

import "fmt"

// Columns is an optional column-major backing for a Dataset: every feature
// is a set of contiguous float64 slabs (one per chunk), so per-feature scans
// — normalization fitting, additive distance construction, greedy feature
// projection — run as sequential loads instead of chasing one slice header
// per example. The slabs may alias a memory-mapped dataset file
// (internal/colstore), in which case they are read-only and valid only
// until the mapping is closed.
//
// Chunking mirrors the on-disk layout of the columnar store: an append-only
// writer seals a chunk every few thousand rows, so a column is contiguous
// within a chunk but not across chunks. Blocked kernels iterate chunks in
// order, which visits examples in exactly the order a row-major
// `for _, e := range d.Examples` loop does — the property every
// bit-identity argument below rests on.
type Columns struct {
	N   int // total rows across chunks
	Dim int // features per row

	// Labels holds every example's label in row order. Unlike the feature
	// slabs it is always materialized on the heap (it is n ints, tiny next
	// to n×dim floats), so label scans never fault mapped pages.
	Labels []int

	chunks []ColChunk
}

// ColChunk is one contiguous run of rows.
type ColChunk struct {
	Start int           // global row index of the chunk's first row
	Rows  int           // rows in this chunk
	Feats [][]float64   // Feats[j] is feature j's column, len Rows
}

// NewColumns assembles a backing from sealed chunks. Labels must have
// exactly as many entries as the chunks have rows.
func NewColumns(dim int, labels []int, chunks []ColChunk) (*Columns, error) {
	n := 0
	for i := range chunks {
		ch := &chunks[i]
		if ch.Start != n {
			return nil, fmt.Errorf("ml: chunk %d starts at row %d, want %d", i, ch.Start, n)
		}
		if len(ch.Feats) != dim {
			return nil, fmt.Errorf("ml: chunk %d has %d feature columns, want %d", i, len(ch.Feats), dim)
		}
		for j, col := range ch.Feats {
			if len(col) != ch.Rows {
				return nil, fmt.Errorf("ml: chunk %d feature %d has %d rows, want %d", i, j, len(col), ch.Rows)
			}
		}
		n += ch.Rows
	}
	if len(labels) != n {
		return nil, fmt.Errorf("ml: %d labels for %d rows", len(labels), n)
	}
	return &Columns{N: n, Dim: dim, Labels: labels, chunks: chunks}, nil
}

// NumChunks returns how many contiguous runs back the columns.
func (c *Columns) NumChunks() int { return len(c.chunks) }

// Chunk returns the i-th run.
func (c *Columns) Chunk(i int) *ColChunk { return &c.chunks[i] }

// Feature gathers feature j's full column into dst (grown when too small)
// and returns it. The copy is one sequential pass per chunk.
func (c *Columns) Feature(j int, dst []float64) []float64 {
	if cap(dst) < c.N {
		dst = make([]float64, c.N)
	} else {
		dst = dst[:c.N]
	}
	for i := range c.chunks {
		ch := &c.chunks[i]
		copy(dst[ch.Start:ch.Start+ch.Rows], ch.Feats[j])
	}
	return dst
}

// At returns the value of feature j at global row i. It is O(#chunks) and
// meant for spot checks, not hot loops — blocked kernels iterate chunks.
func (c *Columns) At(i, j int) float64 {
	for k := range c.chunks {
		ch := &c.chunks[k]
		if i < ch.Start+ch.Rows {
			return ch.Feats[j][i-ch.Start]
		}
	}
	panic(fmt.Sprintf("ml: row %d out of %d", i, c.N))
}

// Project returns a backing over the feature subset idx, in idx order. The
// projected chunks share the parent's column slabs — no floats move.
func (c *Columns) Project(idx []int) *Columns {
	chunks := make([]ColChunk, len(c.chunks))
	for i := range c.chunks {
		ch := &c.chunks[i]
		feats := make([][]float64, len(idx))
		for k, j := range idx {
			feats[k] = ch.Feats[j]
		}
		chunks[i] = ColChunk{Start: ch.Start, Rows: ch.Rows, Feats: feats}
	}
	return &Columns{N: c.N, Dim: len(idx), Labels: c.Labels, chunks: chunks}
}

// BuildColumns materializes a single-chunk column backing from the dataset's
// rows and attaches it, so the columnar kernels (normalization fitting,
// pairwise distance construction, blocked LOOCV) apply to row-collected
// datasets too. It is a no-op when a backing of the right shape is already
// attached. The values are exact copies, so every downstream computation is
// bit-identical to the row path.
func (d *Dataset) BuildColumns() *Columns {
	n := d.Len()
	if d.Cols != nil && d.Cols.N == n {
		return d.Cols
	}
	if n == 0 {
		return nil
	}
	dim := len(d.Examples[0].Features)
	slab := make([]float64, n*dim)
	feats := make([][]float64, dim)
	for j := range feats {
		feats[j] = slab[j*n : (j+1)*n]
	}
	labels := make([]int, n)
	for i := range d.Examples {
		e := &d.Examples[i]
		labels[i] = e.Label
		for j, v := range e.Features {
			feats[j][i] = v
		}
	}
	d.Cols = &Columns{
		N: n, Dim: dim, Labels: labels,
		chunks: []ColChunk{{Start: 0, Rows: n, Feats: feats}},
	}
	return d.Cols
}

// ApplyColumnRange normalizes feature j of rows [lo, hi) into dst, which
// must have hi−lo capacity, and returns it. Each element is computed by
// exactly the expression ApplyInto uses — including the zero fill for
// features past the fitted width — so blocked kernels that normalize one
// block at a time see the same bits as a whole-dataset normalization.
func (n *Norm) ApplyColumnRange(cols *Columns, j, lo, hi int, dst []float64) []float64 {
	dst = dst[:hi-lo]
	if j >= len(n.Min) {
		clear(dst)
		return dst
	}
	mn, sc := n.Min[j], n.Scale[j]
	for ci := range cols.chunks {
		ch := &cols.chunks[ci]
		s, e := max(lo, ch.Start), min(hi, ch.Start+ch.Rows)
		if s >= e {
			continue
		}
		col := ch.Feats[j]
		for r := s; r < e; r++ {
			dst[r-lo] = (squash(col[r-ch.Start]) - mn) * sc
		}
	}
	return dst
}

// UsableCols returns the dataset's column backing when it is consistent
// with the dataset's row count, nil otherwise. Call sites that take the
// columnar fast path must gate on this, never on Cols directly: a stale
// backing left by buffer reuse would silently serve wrong values.
func (d *Dataset) UsableCols() *Columns {
	if d.Cols != nil && d.Cols.N == d.Len() && d.Cols.Dim == d.Dim() {
		return d.Cols
	}
	return nil
}

// Dim returns the feature dimensionality: the row width when rows are
// materialized, the column count in column-only (out-of-core) datasets.
func (d *Dataset) Dim() int {
	if len(d.Examples) > 0 && d.Examples[0].Features != nil {
		return len(d.Examples[0].Features)
	}
	if d.Cols != nil {
		return d.Cols.Dim
	}
	return 0
}

// HasRows reports whether per-example feature rows are materialized.
// Column-only datasets (opened for out-of-core work) answer false; paths
// that need row vectors — Train, the fold-based LOOCV fallback — must
// refuse them with a clear error instead of indexing nil slices.
func (d *Dataset) HasRows() bool {
	return d.Len() > 0 && d.Examples[0].Features != nil
}
