// Package mltest provides synthetic datasets for testing the learning
// algorithms: Gaussian class clusters with controllable separation, plus
// consistent cycle vectors so rank/cost metrics are exercised.
package mltest

import (
	"fmt"
	"math/rand"

	"metaopt/internal/ml"
)

// Clusters generates n examples over the given number of classes: class c
// is a Gaussian blob centered at a distinct corner pattern, with the given
// noise level. Cycle vectors are synthesized so that the label is the
// cheapest unroll factor.
func Clusters(n, dim, classes int, noise float64, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &ml.Dataset{}
	for j := 0; j < dim; j++ {
		d.FeatureNames = append(d.FeatureNames, fmt.Sprintf("f%d", j))
	}
	for i := 0; i < n; i++ {
		label := 1 + i%classes
		f := make([]float64, dim)
		for j := range f {
			center := float64((label * (j + 1)) % classes)
			f[j] = center + noise*rng.NormFloat64()
		}
		e := ml.Example{
			Name:      fmt.Sprintf("loop%d", i),
			Benchmark: fmt.Sprintf("bench%d", i%6),
			Features:  f,
			Label:     label,
		}
		for u := 1; u <= ml.NumClasses; u++ {
			gap := u - label
			if gap < 0 {
				gap = -gap
			}
			e.Cycles[u] = int64(100_000 + 8_000*gap + rng.Intn(500))
		}
		d.Examples = append(d.Examples, e)
	}
	return d
}

// NoisyLabels flips a fraction of the labels to a random other class.
func NoisyLabels(d *ml.Dataset, frac float64, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	out := &ml.Dataset{FeatureNames: d.FeatureNames}
	out.Examples = append([]ml.Example(nil), d.Examples...)
	for i := range out.Examples {
		if rng.Float64() < frac {
			out.Examples[i].Label = 1 + rng.Intn(ml.NumClasses)
		}
	}
	return out
}
