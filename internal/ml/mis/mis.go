// Package mis scores features by mutual information with the label — the
// paper's Section 7.1: I(f;u) = Σ P(φ,y)·log₂(P(φ,y)/(P(φ)·P(y))), with
// continuous features binned before the probability mass functions are
// estimated.
package mis

import (
	"math"
	"sort"

	"metaopt/internal/ml"
)

// DefaultBins is the number of equal-frequency bins for continuous
// features.
const DefaultBins = 10

// Scores returns the mutual information score of every feature, using
// equal-frequency binning with the given bin count (0 = DefaultBins).
func Scores(d *ml.Dataset, bins int) []float64 {
	if bins <= 0 {
		bins = DefaultBins
	}
	if d.Len() == 0 {
		return nil
	}
	dim := len(d.Examples[0].Features)
	out := make([]float64, dim)
	for f := 0; f < dim; f++ {
		out[f] = featureScore(d, f, bins)
	}
	return out
}

func featureScore(d *ml.Dataset, f, bins int) float64 {
	n := d.Len()
	// Equal-frequency bin edges.
	vals := make([]float64, n)
	for i, e := range d.Examples {
		vals[i] = e.Features[f]
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	edges := make([]float64, 0, bins-1)
	for b := 1; b < bins; b++ {
		edges = append(edges, sorted[b*n/bins])
	}
	binOf := func(v float64) int {
		// First edge greater than v.
		lo, hi := 0, len(edges)
		for lo < hi {
			mid := (lo + hi) / 2
			if v < edges[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}

	joint := make(map[[2]int]int)
	binCount := make(map[int]int)
	labelCount := make(map[int]int)
	for i, e := range d.Examples {
		b := binOf(vals[i])
		joint[[2]int{b, e.Label}]++
		binCount[b]++
		labelCount[e.Label]++
	}
	var info float64
	for key, c := range joint {
		pxy := float64(c) / float64(n)
		px := float64(binCount[key[0]]) / float64(n)
		py := float64(labelCount[key[1]]) / float64(n)
		info += pxy * math.Log2(pxy/(px*py))
	}
	if info < 0 {
		info = 0 // guard against negative rounding noise
	}
	return info
}

// Ranked is a feature index with its score.
type Ranked struct {
	Feature int
	Score   float64
}

// Rank returns all features sorted by descending mutual information.
func Rank(d *ml.Dataset, bins int) []Ranked {
	scores := Scores(d, bins)
	out := make([]Ranked, len(scores))
	for i, s := range scores {
		out[i] = Ranked{Feature: i, Score: s}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out
}

// Top returns the k highest-scoring feature indices.
func Top(d *ml.Dataset, bins, k int) []int {
	ranked := Rank(d, bins)
	if k > len(ranked) {
		k = len(ranked)
	}
	idx := make([]int, k)
	for i := 0; i < k; i++ {
		idx[i] = ranked[i].Feature
	}
	return idx
}
