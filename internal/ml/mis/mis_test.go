package mis

import (
	"math/rand"
	"testing"

	"metaopt/internal/ml"
	"metaopt/internal/ml/mltest"
)

// buildMixed creates a dataset where feature 0 fully determines the label,
// feature 1 is correlated, and feature 2 is pure noise.
func buildMixed(n int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &ml.Dataset{FeatureNames: []string{"exact", "correlated", "noise"}}
	for i := 0; i < n; i++ {
		label := 1 + rng.Intn(4)
		f := []float64{
			float64(label),
			float64(label) + 2*rng.NormFloat64(),
			rng.NormFloat64(),
		}
		e := ml.Example{Name: "e", Benchmark: "b", Features: f, Label: label}
		for u := 1; u <= ml.NumClasses; u++ {
			e.Cycles[u] = 100000
		}
		d.Examples = append(d.Examples, e)
	}
	return d
}

func TestScoresOrderInformativeness(t *testing.T) {
	d := buildMixed(400, 1)
	s := Scores(d, 8)
	if len(s) != 3 {
		t.Fatalf("scores = %v", s)
	}
	if !(s[0] > s[1] && s[1] > s[2]) {
		t.Errorf("MIS ordering wrong: exact=%.3f corr=%.3f noise=%.3f", s[0], s[1], s[2])
	}
	// A perfectly informative feature of a uniform 4-class label carries
	// about 2 bits.
	if s[0] < 1.5 {
		t.Errorf("exact feature score = %.3f, want near 2 bits", s[0])
	}
	if s[2] > 0.2 {
		t.Errorf("noise feature score = %.3f, want near 0", s[2])
	}
}

func TestRankAndTop(t *testing.T) {
	d := buildMixed(300, 2)
	ranked := Rank(d, 0)
	if ranked[0].Feature != 0 {
		t.Errorf("top feature = %d", ranked[0].Feature)
	}
	top2 := Top(d, 0, 2)
	if len(top2) != 2 || top2[0] != 0 || top2[1] != 1 {
		t.Errorf("top2 = %v", top2)
	}
	if got := Top(d, 0, 99); len(got) != 3 {
		t.Errorf("Top clamps to %d", len(got))
	}
}

func TestScoresNonNegative(t *testing.T) {
	d := mltest.Clusters(100, 6, 4, 0.5, 3)
	for _, s := range Scores(d, 0) {
		if s < 0 {
			t.Errorf("negative MIS %v", s)
		}
	}
}

func TestEmptyDataset(t *testing.T) {
	if s := Scores(&ml.Dataset{}, 0); s != nil {
		t.Errorf("scores of empty = %v", s)
	}
}
