package svm

import (
	"fmt"
	"math"

	"metaopt/internal/linalg"
	"metaopt/internal/ml"
)

// LSSVM trains least-squares support vector machines — the formulation of
// the LS-SVMlab toolkit the paper used. Binary machines solve
//
//	(K + I/γ)·a + b·1 = y,   1ᵀa = 0
//
// and classify by sign(Σᵢ aᵢ·K(xᵢ,x) + b). Multi-class problems use output
// codes; because the system matrix is label-independent, all bits share one
// Cholesky factorization, and the exact leave-one-out shortcut
// ŷᵢ = yᵢ − aᵢ/(C⁻¹)ᵢᵢ makes full LOOCV over thousands of loops cheap.
type LSSVM struct {
	// Gamma is the regularization weight γ (larger = tighter fit).
	// Zero selects the default.
	Gamma float64

	// Kernel defaults to an RBF with a median-distance bandwidth.
	Kernel Kernel

	// Codes defaults to one-vs-rest over ml.NumClasses.
	Codes Codes
}

// DefaultGamma is the regularization used when none is configured.
const DefaultGamma = 50

var _ ml.Trainer = (*LSSVM)(nil)
var _ ml.LOOCVer = (*LSSVM)(nil)

// Model is a trained multi-class LS-SVM.
type Model struct {
	norm   *ml.Norm
	rows   [][]float64
	kernel Kernel
	codes  Codes
	alpha  [][]float64 // [bit][example]
	bias   []float64   // [bit]
}

var _ ml.Classifier = (*Model)(nil)

func (t *LSSVM) config(rows [][]float64) (float64, Kernel, Codes, []float64) {
	gamma := t.Gamma
	if gamma <= 0 {
		gamma = DefaultGamma
	}
	kernel, dist := kernelAndDist(t.Kernel, rows)
	codes := t.Codes
	if codes.NumClasses() == 0 {
		codes = OneVsRest(ml.NumClasses)
	}
	return gamma, kernel, codes, dist
}

// kernelAndDist resolves the kernel, computing the blocked pairwise
// squared-distance matrix when an RBF Gram matrix will need it (it also
// backs the median-σ bandwidth estimate, so the sampled pairs are not
// recomputed). Non-RBF kernels get no matrix.
func kernelAndDist(kernel Kernel, rows [][]float64) (Kernel, []float64) {
	_, isRBF := kernel.(RBF)
	if kernel != nil && !isRBF {
		return kernel, nil
	}
	dist := linalg.PairwiseSqDistInto(rows, nil)
	if kernel == nil {
		kernel = RBF{Sigma: medianSigmaDist(dist, len(rows))}
	}
	return kernel, dist
}

// configCols resolves the configuration from a column backing: the pairwise
// squared-distance matrix is accumulated per feature from normalized columns
// — the identical float addition sequence as the row build, see
// linalg.PairwiseSqDistColsInto — so the RBF solver never needs materialized
// rows. Reports false for custom non-RBF kernels, whose Eval signature
// requires row vectors.
func (t *LSSVM) configCols(norm *ml.Norm, cols *ml.Columns) (float64, Kernel, Codes, []float64, bool) {
	if t.Kernel != nil {
		if _, isRBF := t.Kernel.(RBF); !isRBF {
			return 0, nil, Codes{}, nil, false
		}
	}
	gamma := t.Gamma
	if gamma <= 0 {
		gamma = DefaultGamma
	}
	dist := linalg.PairwiseSqDistColsInto(norm.ApplyColumns(cols), cols.N, nil)
	kernel := t.Kernel
	if kernel == nil {
		kernel = RBF{Sigma: medianSigmaDist(dist, cols.N)}
	}
	codes := t.Codes
	if codes.NumClasses() == 0 {
		codes = OneVsRest(ml.NumClasses)
	}
	return gamma, kernel, codes, dist, true
}

// columnarConfig is configCols gated on the dataset carrying a usable
// column backing.
func (t *LSSVM) columnarConfig(d *ml.Dataset, norm *ml.Norm) (float64, Kernel, Codes, []float64, bool) {
	cols := d.UsableCols()
	if cols == nil {
		return 0, nil, Codes{}, nil, false
	}
	return t.configCols(norm, cols)
}

// system builds and factors the shared matrix A = K + I/γ. For RBF kernels
// dist carries the cached pairwise squared distances, so the Gram matrix is
// an element-wise exp over the cache — the values match per-pair Eval calls
// exactly (same SqDist accumulation, same divisor expression) and rows may
// be nil (the column-backed LOOCV path never materializes them).
func system(n int, rows [][]float64, kernel Kernel, gamma float64, dist []float64) (*linalg.Cholesky, error) {
	a := linalg.NewMatrix(n, n)
	if rbf, ok := kernel.(RBF); ok && dist != nil {
		denom := 2 * rbf.Sigma * rbf.Sigma
		for i := 0; i < n; i++ {
			arow := a.Row(i)
			drow := dist[i*n : (i+1)*n]
			for j := range arow {
				arow[j] = math.Exp(-drow[j] / denom)
			}
			arow[i] += 1 / gamma
		}
	} else {
		for i := 0; i < n; i++ {
			a.Set(i, i, kernel.Eval(rows[i], rows[i])+1/gamma)
			for j := 0; j < i; j++ {
				v := kernel.Eval(rows[i], rows[j])
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
	}
	ch, err := linalg.NewCholesky(a)
	if err != nil {
		return nil, fmt.Errorf("svm: kernel system not positive definite: %w", err)
	}
	return ch, nil
}

// solveBit computes (a, b) for one binary subproblem given the shared
// factorization and u = A⁻¹·1, s = 1ᵀu.
func solveBit(ch *linalg.Cholesky, u []float64, s float64, y []float64) (alpha []float64, bias float64) {
	v := ch.Solve(y)
	var sv float64
	for _, x := range v {
		sv += x
	}
	bias = sv / s
	alpha = make([]float64, len(y))
	for i := range alpha {
		alpha[i] = v[i] - bias*u[i]
	}
	return alpha, bias
}

// Train fits one binary machine per output-code bit.
func (t *LSSVM) Train(d *ml.Dataset) (ml.Classifier, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if !d.HasRows() {
		return nil, fmt.Errorf("svm: training a serving model needs materialized feature rows; column-only datasets support LOOCV")
	}
	norm := ml.FitNorm(d)
	rows := norm.ApplyAll(d)
	gamma, kernel, codes, dist, ok := t.columnarConfig(d, norm)
	if !ok {
		gamma, kernel, codes, dist = t.config(rows)
	}
	ch, err := system(len(rows), rows, kernel, gamma, dist)
	if err != nil {
		return nil, err
	}
	n := len(rows)
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	u := ch.Solve(ones)
	var s float64
	for _, x := range u {
		s += x
	}

	m := &Model{norm: norm, rows: rows, kernel: kernel, codes: codes}
	y := make([]float64, n)
	for bit := 0; bit < codes.NumBits(); bit++ {
		for i, e := range d.Examples {
			y[i] = codes.Target(e.Label, bit)
		}
		alpha, bias := solveBit(ch, u, s, y)
		m.alpha = append(m.alpha, alpha)
		m.bias = append(m.bias, bias)
	}
	return m, nil
}

// Predict classifies a raw feature vector.
func (m *Model) Predict(features []float64) int {
	q := m.norm.Apply(features)
	scores := make([]float64, len(m.alpha))
	k := make([]float64, len(m.rows))
	for i, row := range m.rows {
		k[i] = m.kernel.Eval(q, row)
	}
	for bit := range m.alpha {
		s := m.bias[bit]
		for i, a := range m.alpha[bit] {
			s += a * k[i]
		}
		scores[bit] = s
	}
	return m.codes.Decode(scores)
}

// Scores returns the per-bit decision values for a raw feature vector
// (used by the Figure 2 visualization).
func (m *Model) Scores(features []float64) []float64 {
	q := m.norm.Apply(features)
	scores := make([]float64, len(m.alpha))
	for bit := range m.alpha {
		s := m.bias[bit]
		for i, a := range m.alpha[bit] {
			s += a * m.kernel.Eval(q, m.rows[i])
		}
		scores[bit] = s
	}
	return scores
}

// LOOCV computes exact leave-one-out predictions: for each bit,
// ŷᵢ = yᵢ − aᵢ/(C⁻¹)ᵢᵢ with (C⁻¹)ᵢᵢ = (A⁻¹)ᵢᵢ − uᵢ²/s, where C is the full
// bordered KKT matrix. One factorization serves every fold and every bit.
func (t *LSSVM) LOOCV(d *ml.Dataset) ([]int, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Len() < 3 {
		return nil, fmt.Errorf("svm: LOOCV needs at least 3 examples")
	}
	norm := ml.FitNorm(d)
	n := d.Len()
	var rows [][]float64
	gamma, kernel, codes, dist, ok := t.columnarConfig(d, norm)
	if !ok {
		if !d.HasRows() {
			return nil, fmt.Errorf("svm: LOOCV with a custom non-RBF kernel needs materialized feature rows")
		}
		rows = norm.ApplyAll(d)
		gamma, kernel, codes, dist = t.config(rows)
	}
	ch, err := system(n, rows, kernel, gamma, dist)
	if err != nil {
		return nil, err
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	u := ch.Solve(ones)
	var s float64
	for _, x := range u {
		s += x
	}
	diagA := ch.InverseDiagonalFast()
	diagC := make([]float64, n)
	for i := range diagC {
		diagC[i] = diagA[i] - u[i]*u[i]/s
	}

	looScores := make([][]float64, n)
	for i := range looScores {
		looScores[i] = make([]float64, codes.NumBits())
	}
	y := make([]float64, n)
	for bit := 0; bit < codes.NumBits(); bit++ {
		for i, e := range d.Examples {
			y[i] = codes.Target(e.Label, bit)
		}
		alpha, _ := solveBit(ch, u, s, y)
		for i := range alpha {
			if diagC[i] <= 0 {
				// Numerically degenerate fold: fall back to the training
				// residual (no correction).
				looScores[i][bit] = y[i]
				continue
			}
			looScores[i][bit] = y[i] - alpha[i]/diagC[i]
		}
	}
	preds := make([]int, n)
	for i := range preds {
		preds[i] = codes.Decode(looScores[i])
	}
	return preds, nil
}
