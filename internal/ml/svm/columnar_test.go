package svm

import (
	"testing"

	"metaopt/internal/ml"
	"metaopt/internal/ml/mltest"
)

// liteCopy strips feature rows and attaches a chunked column backing — the
// shape the mmap'd colstore reader serves for out-of-core LOOCV.
func liteCopy(t *testing.T, d *ml.Dataset, chunkRows int) *ml.Dataset {
	t.Helper()
	n := d.Len()
	dim := len(d.Examples[0].Features)
	var chunks []ml.ColChunk
	labels := make([]int, 0, n)
	for s := 0; s < n; s += chunkRows {
		e := min(s+chunkRows, n)
		feats := make([][]float64, dim)
		for j := range feats {
			feats[j] = make([]float64, e-s)
			for r := s; r < e; r++ {
				feats[j][r-s] = d.Examples[r].Features[j]
			}
		}
		chunks = append(chunks, ml.ColChunk{Start: s, Rows: e - s, Feats: feats})
	}
	for _, ex := range d.Examples {
		labels = append(labels, ex.Label)
	}
	cols, err := ml.NewColumns(dim, labels, chunks)
	if err != nil {
		t.Fatal(err)
	}
	lite := &ml.Dataset{FeatureNames: d.FeatureNames, Cols: cols}
	for _, ex := range d.Examples {
		ex.Features = nil
		lite.Examples = append(lite.Examples, ex)
	}
	return lite
}

// TestLSSVMColumnarLOOCVMatchesRows pins the column-backed exact LOOCV —
// pairwise distances accumulated per feature from normalized columns, no
// materialized rows — to the row path, fold by fold.
func TestLSSVMColumnarLOOCVMatchesRows(t *testing.T) {
	d := mltest.Clusters(80, 5, 4, 0.3, 17)
	tr := &LSSVM{}
	want, err := tr.LOOCV(d)
	if err != nil {
		t.Fatal(err)
	}
	backed := mltest.Clusters(80, 5, 4, 0.3, 17)
	backed.BuildColumns()
	for name, ds := range map[string]*ml.Dataset{
		"attached":         backed,
		"lite one chunk":   liteCopy(t, d, 80),
		"lite multi chunk": liteCopy(t, d, 19),
	} {
		got, err := tr.LOOCV(ds)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s fold %d: columnar %d, rows %d", name, i, got[i], want[i])
			}
		}
	}
}

// TestLSSVMTrainRejectsColumnOnly documents the serving restriction.
func TestLSSVMTrainRejectsColumnOnly(t *testing.T) {
	d := mltest.Clusters(30, 4, 3, 0.2, 3)
	if _, err := (&LSSVM{}).Train(liteCopy(t, d, 30)); err == nil {
		t.Fatal("Train accepted a column-only dataset")
	}
}
