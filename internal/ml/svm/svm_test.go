package svm

import (
	"testing"

	"metaopt/internal/ml"
	"metaopt/internal/ml/mltest"
)

func TestCodesOneVsRest(t *testing.T) {
	c := OneVsRest(4)
	if c.NumClasses() != 4 || c.NumBits() != 4 {
		t.Fatalf("dims = %d/%d", c.NumClasses(), c.NumBits())
	}
	if c.Target(2, 1) != 1 || c.Target(2, 0) != -1 {
		t.Error("targets wrong")
	}
	// Clear winner on bit 3.
	if got := c.Decode([]float64{-1, -0.5, -2, 3}); got != 4 {
		t.Errorf("decode = %d, want 4", got)
	}
	// All negative: least-negative bit should win via hinge tie-break.
	if got := c.Decode([]float64{-3, -0.1, -2, -1}); got != 2 {
		t.Errorf("decode = %d, want 2", got)
	}
}

func TestRandomCodesNonDegenerate(t *testing.T) {
	c := Random(8, 15, 42)
	if c.NumBits() != 15 {
		t.Fatalf("bits = %d", c.NumBits())
	}
	for b := 0; b < c.NumBits(); b++ {
		pos := 0
		for cl := 0; cl < c.NumClasses(); cl++ {
			if c.Bits[cl][b] == 1 {
				pos++
			} else if c.Bits[cl][b] != -1 {
				t.Fatalf("bit %d class %d = %d", b, cl, c.Bits[cl][b])
			}
		}
		if pos == 0 || pos == c.NumClasses() {
			t.Errorf("bit %d is degenerate", b)
		}
	}
}

func TestLSSVMSeparable(t *testing.T) {
	d := mltest.Clusters(160, 6, 4, 0.05, 1)
	tr := &LSSVM{}
	c, err := tr.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, e := range d.Examples {
		if c.Predict(e.Features) == e.Label {
			hits++
		}
	}
	if frac := float64(hits) / float64(d.Len()); frac < 0.95 {
		t.Errorf("training accuracy = %.2f", frac)
	}
}

func TestLSSVMGeneralizes(t *testing.T) {
	train := mltest.Clusters(160, 6, 4, 0.1, 2)
	test := mltest.Clusters(60, 6, 4, 0.1, 99)
	tr := &LSSVM{}
	c, err := tr.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, e := range test.Examples {
		if c.Predict(e.Features) == e.Label {
			hits++
		}
	}
	if frac := float64(hits) / float64(test.Len()); frac < 0.85 {
		t.Errorf("held-out accuracy = %.2f", frac)
	}
}

// TestLSSVMFastLOOCVMatchesExplicit is the key correctness property: the
// closed-form leave-one-out shortcut must agree with actually retraining
// without each example.
func TestLSSVMFastLOOCVMatchesExplicit(t *testing.T) {
	d := mltest.Clusters(40, 5, 4, 0.25, 3)
	tr := &LSSVM{Gamma: 20, Kernel: RBF{Sigma: 1.5}}
	fast, err := tr.LOOCV(d)
	if err != nil {
		t.Fatal(err)
	}
	// Explicit refold: train on d minus i, predict example i. The explicit
	// path refits normalization per fold, so compare with a fixed-norm
	// variant: normalize once outside.
	mismatches := 0
	for i := range d.Examples {
		c, err := tr.Train(d.Without(i))
		if err != nil {
			t.Fatal(err)
		}
		if c.Predict(d.Examples[i].Features) != fast[i] {
			mismatches++
		}
	}
	// Normalization statistics shift slightly per fold, so allow a small
	// disagreement margin.
	if frac := float64(mismatches) / float64(d.Len()); frac > 0.15 {
		t.Errorf("fast vs explicit LOOCV disagreement = %.2f", frac)
	}
}

func TestLSSVMLOOCVAccuracyOnSeparableData(t *testing.T) {
	d := mltest.Clusters(160, 6, 4, 0.05, 4)
	tr := &LSSVM{}
	preds, err := tr.LOOCV(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(d, preds); acc < 0.9 {
		t.Errorf("LOOCV accuracy = %.2f", acc)
	}
}

func TestLSSVMWithECOC(t *testing.T) {
	d := mltest.Clusters(120, 6, 4, 0.05, 5)
	tr := &LSSVM{Codes: Random(ml.NumClasses, 15, 7)}
	preds, err := tr.LOOCV(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(d, preds); acc < 0.85 {
		t.Errorf("ECOC LOOCV accuracy = %.2f", acc)
	}
}

func TestLSSVMRejectsTinyLOOCV(t *testing.T) {
	d := mltest.Clusters(2, 3, 2, 0.1, 6)
	tr := &LSSVM{}
	if _, err := tr.LOOCV(d); err == nil {
		t.Error("expected error")
	}
}

func TestSMOSeparable(t *testing.T) {
	d := mltest.Clusters(100, 5, 4, 0.05, 7)
	tr := &SMO{Seed: 1}
	c, err := tr.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, e := range d.Examples {
		if c.Predict(e.Features) == e.Label {
			hits++
		}
	}
	if frac := float64(hits) / float64(d.Len()); frac < 0.85 {
		t.Errorf("SMO training accuracy = %.2f", frac)
	}
}

func TestKernels(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	r := RBF{Sigma: 1}
	if v := r.Eval(a, a); v != 1 {
		t.Errorf("RBF(a,a) = %v", v)
	}
	if v := r.Eval(a, b); v <= 0 || v >= 1 {
		t.Errorf("RBF(a,b) = %v", v)
	}
	if v := (Linear{}).Eval(a, b); v != 0 {
		t.Errorf("Linear = %v", v)
	}
}

func TestMedianSigma(t *testing.T) {
	rows := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	s := medianSigma(rows)
	if s <= 0 {
		t.Errorf("sigma = %v", s)
	}
	if s := medianSigma(rows[:1]); s != 1 {
		t.Errorf("degenerate sigma = %v", s)
	}
}
