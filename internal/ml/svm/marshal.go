package svm

import (
	"encoding/json"
	"fmt"

	"metaopt/internal/ml"
)

// kernelSpec is the serializable description of a kernel function.
type kernelSpec struct {
	Type  string  `json:"type"` // "rbf" or "linear"
	Sigma float64 `json:"sigma,omitempty"`
}

func specOf(k Kernel) (kernelSpec, error) {
	switch kk := k.(type) {
	case RBF:
		return kernelSpec{Type: "rbf", Sigma: kk.Sigma}, nil
	case Linear:
		return kernelSpec{Type: "linear"}, nil
	}
	return kernelSpec{}, fmt.Errorf("svm: kernel %T is not serializable", k)
}

func (s kernelSpec) kernel() (Kernel, error) {
	switch s.Type {
	case "rbf":
		if s.Sigma <= 0 {
			return nil, fmt.Errorf("svm: rbf kernel with sigma %v", s.Sigma)
		}
		return RBF{Sigma: s.Sigma}, nil
	case "linear":
		return Linear{}, nil
	}
	return nil, fmt.Errorf("svm: unknown kernel type %q", s.Type)
}

// modelJSON is the serialized form of a trained multi-class LS-SVM.
type modelJSON struct {
	Norm   *ml.Norm    `json:"norm"`
	Rows   [][]float64 `json:"rows"`
	Kernel kernelSpec  `json:"kernel"`
	Codes  [][]int8    `json:"codes"`
	Alpha  [][]float64 `json:"alpha"`
	Bias   []float64   `json:"bias"`
}

// MarshalJSON serializes a trained LS-SVM.
func (m *Model) MarshalJSON() ([]byte, error) {
	spec, err := specOf(m.kernel)
	if err != nil {
		return nil, err
	}
	return json.Marshal(modelJSON{
		Norm: m.norm, Rows: m.rows, Kernel: spec,
		Codes: m.codes.Bits, Alpha: m.alpha, Bias: m.bias,
	})
}

// UnmarshalJSON restores a serialized LS-SVM.
func (m *Model) UnmarshalJSON(data []byte) error {
	var in modelJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("svm: unmarshal: %w", err)
	}
	k, err := in.Kernel.kernel()
	if err != nil {
		return err
	}
	if in.Norm == nil || len(in.Rows) == 0 || len(in.Alpha) == 0 ||
		len(in.Alpha) != len(in.Bias) || len(in.Codes) == 0 {
		return fmt.Errorf("svm: unmarshal: malformed model")
	}
	for _, a := range in.Alpha {
		if len(a) != len(in.Rows) {
			return fmt.Errorf("svm: unmarshal: alpha/rows mismatch")
		}
	}
	m.norm = in.Norm
	m.rows = in.Rows
	m.kernel = k
	m.codes = Codes{Bits: in.Codes}
	m.alpha = in.Alpha
	m.bias = in.Bias
	return nil
}

// regJSON is the serialized form of a trained regressor.
type regJSON struct {
	Norm   *ml.Norm    `json:"norm"`
	Rows   [][]float64 `json:"rows"`
	Kernel kernelSpec  `json:"kernel"`
	Alpha  []float64   `json:"alpha"`
	Bias   float64     `json:"bias"`
}

// MarshalJSON serializes a trained regression model.
func (m *RegModel) MarshalJSON() ([]byte, error) {
	spec, err := specOf(m.kernel)
	if err != nil {
		return nil, err
	}
	return json.Marshal(regJSON{Norm: m.norm, Rows: m.rows, Kernel: spec, Alpha: m.alpha, Bias: m.bias})
}

// UnmarshalJSON restores a serialized regression model.
func (m *RegModel) UnmarshalJSON(data []byte) error {
	var in regJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("svm: unmarshal: %w", err)
	}
	k, err := in.Kernel.kernel()
	if err != nil {
		return err
	}
	if in.Norm == nil || len(in.Rows) == 0 || len(in.Alpha) != len(in.Rows) {
		return fmt.Errorf("svm: unmarshal: malformed regression model")
	}
	m.norm = in.Norm
	m.rows = in.Rows
	m.kernel = k
	m.alpha = in.Alpha
	m.bias = in.Bias
	return nil
}

// smoBinaryJSON mirrors smoBinary.
type smoBinaryJSON struct {
	Alpha []float64 `json:"alpha"`
	Bias  float64   `json:"bias"`
	Y     []float64 `json:"y"`
}

// smoJSON is the serialized form of a trained SMO model.
type smoJSON struct {
	Norm   *ml.Norm        `json:"norm"`
	Rows   [][]float64     `json:"rows"`
	Kernel kernelSpec      `json:"kernel"`
	Codes  [][]int8        `json:"codes"`
	Bits   []smoBinaryJSON `json:"bits"`
}

// MarshalJSON serializes a trained SMO SVM.
func (m *smoModel) MarshalJSON() ([]byte, error) {
	spec, err := specOf(m.kernel)
	if err != nil {
		return nil, err
	}
	out := smoJSON{Norm: m.norm, Rows: m.rows, Kernel: spec, Codes: m.codes.Bits}
	for _, b := range m.bits {
		out.Bits = append(out.Bits, smoBinaryJSON{Alpha: b.alpha, Bias: b.bias, Y: b.y})
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a serialized SMO SVM.
func (m *smoModel) UnmarshalJSON(data []byte) error {
	var in smoJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("svm: unmarshal: %w", err)
	}
	k, err := in.Kernel.kernel()
	if err != nil {
		return err
	}
	if in.Norm == nil || len(in.Rows) == 0 || len(in.Bits) == 0 || len(in.Codes) == 0 {
		return fmt.Errorf("svm: unmarshal: malformed SMO model")
	}
	m.norm = in.Norm
	m.rows = in.Rows
	m.kernel = k
	m.codes = Codes{Bits: in.Codes}
	m.bits = nil
	for _, b := range in.Bits {
		if len(b.Alpha) != len(in.Rows) || len(b.Y) != len(in.Rows) {
			return fmt.Errorf("svm: unmarshal: SMO bit size mismatch")
		}
		m.bits = append(m.bits, smoBinary{alpha: b.Alpha, bias: b.Bias, y: b.Y})
	}
	return nil
}

// NewSMOModel returns an empty SMO model for deserialization.
func NewSMOModel() ml.Classifier { return &smoModel{} }
