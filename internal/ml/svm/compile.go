package svm

import (
	"fmt"

	"metaopt/internal/ml/compiled"
)

var _ compiled.Compiler = (*Model)(nil)
var _ compiled.Compiler = (*RegModel)(nil)
var _ compiled.Compiler = (*smoModel)(nil)

// kernelSigma maps a kernel to the compiled representation: the RBF
// bandwidth, or 0 for the linear kernel.
func kernelSigma(k Kernel) (float64, error) {
	switch kk := k.(type) {
	case RBF:
		if kk.Sigma <= 0 {
			return 0, fmt.Errorf("svm: compile: rbf kernel with sigma %v", kk.Sigma)
		}
		return kk.Sigma, nil
	case Linear:
		return 0, nil
	}
	return 0, fmt.Errorf("svm: compile: kernel %T has no compiled form", k)
}

// Compile bakes the support coefficients into a dense matrix over the
// flattened support table, so a serve-time query is one distance sweep
// plus one matrix-vector product.
func (m *Model) Compile() (*compiled.Program, error) {
	sigma, err := kernelSigma(m.kernel)
	if err != nil {
		return nil, err
	}
	return compiled.NewKernelMachine(compiled.KernelMachine{
		Norm: m.norm, Rows: m.rows, Sigma: sigma,
		Alpha: m.alpha, Bias: m.bias, Codes: m.codes.Bits,
	})
}

// Compile lowers the regressor onto the same dense kernel-machine form
// with a single output scored and rounded into the label range.
func (m *RegModel) Compile() (*compiled.Program, error) {
	sigma, err := kernelSigma(m.kernel)
	if err != nil {
		return nil, err
	}
	return compiled.NewRegressor(compiled.Regressor{
		Norm: m.norm, Rows: m.rows, Sigma: sigma,
		Alpha: m.alpha, Bias: m.bias,
	})
}

// Compile premultiplies each bit's coefficients by its binary targets
// (the interpreted path computes (a·y)·k left to right, so baking a·y in
// is bit-identical) and keeps the a == 0 skip via SkipZero.
func (m *smoModel) Compile() (*compiled.Program, error) {
	sigma, err := kernelSigma(m.kernel)
	if err != nil {
		return nil, err
	}
	alpha := make([][]float64, len(m.bits))
	bias := make([]float64, len(m.bits))
	for bi, bin := range m.bits {
		if len(bin.alpha) != len(m.rows) || len(bin.y) != len(m.rows) {
			return nil, fmt.Errorf("svm: compile: SMO bit %d sized %d/%d for %d rows", bi, len(bin.alpha), len(bin.y), len(m.rows))
		}
		ay := make([]float64, len(bin.alpha))
		for i, a := range bin.alpha {
			ay[i] = a * bin.y[i]
		}
		alpha[bi] = ay
		bias[bi] = bin.bias
	}
	return compiled.NewKernelMachine(compiled.KernelMachine{
		Norm: m.norm, Rows: m.rows, Sigma: sigma,
		Alpha: alpha, Bias: bias, Codes: m.codes.Bits,
		SkipZero: true,
	})
}
