package svm

import (
	"testing"

	"metaopt/internal/ml/mltest"
)

// evalOnly wraps an RBF behind a different type, forcing system() onto the
// per-pair Eval path instead of the cached blocked distance matrix.
type evalOnly struct{ r RBF }

func (k evalOnly) Eval(a, b []float64) float64 { return k.r.Eval(a, b) }

// TestBlockedGramMatchesEval trains and cross-validates the same LS-SVM
// through the blocked Gram path and the per-pair Eval path: the Gram
// matrices are bit-identical by construction, so every prediction must
// agree exactly.
func TestBlockedGramMatchesEval(t *testing.T) {
	d := mltest.Clusters(100, 5, 4, 0.2, 13)
	const sigma = 1.7
	fast := &LSSVM{Kernel: RBF{Sigma: sigma}}
	slow := &LSSVM{Kernel: evalOnly{RBF{Sigma: sigma}}}

	cf, err := fast.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := slow.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range d.Examples {
		if pf, ps := cf.Predict(e.Features), cs.Predict(e.Features); pf != ps {
			t.Fatalf("example %d: blocked pred %d, eval pred %d", i, pf, ps)
		}
	}

	lf, err := fast.LOOCV(d)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := slow.LOOCV(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lf {
		if lf[i] != ls[i] {
			t.Fatalf("LOOCV fold %d: blocked %d, eval %d", i, lf[i], ls[i])
		}
	}
}
