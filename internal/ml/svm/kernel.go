// Package svm implements the paper's support vector machinery: a
// least-squares SVM with a radial-basis kernel (the LS-SVMlab toolkit the
// authors used), multi-class classification through output codes, an exact
// leave-one-out shortcut that makes full LOOCV on thousands of loops
// tractable, and an SMO-trained soft-margin C-SVM as an ablation
// alternative.
package svm

import (
	"math"
	"sort"

	"metaopt/internal/linalg"
)

// Kernel is a positive-definite similarity function.
type Kernel interface {
	Eval(a, b []float64) float64
}

// RBF is the radial basis kernel exp(−‖a−b‖² / (2σ²)).
type RBF struct {
	Sigma float64
}

// Eval implements Kernel.
func (k RBF) Eval(a, b []float64) float64 {
	return math.Exp(-linalg.SqDist(a, b) / (2 * k.Sigma * k.Sigma))
}

// Linear is the inner-product kernel.
type Linear struct{}

// Eval implements Kernel.
func (Linear) Eval(a, b []float64) float64 { return linalg.Dot(a, b) }

// medianSigma estimates an RBF bandwidth as the median pairwise distance
// over (a sample of) the rows — a standard heuristic when no bandwidth is
// given.
func medianSigma(rows [][]float64) float64 {
	n := len(rows)
	if n < 2 {
		return 1
	}
	step := 1
	const sampleRows = 150
	if n > sampleRows {
		step = n / sampleRows
	}
	var dists []float64
	for i := 0; i < n; i += step {
		for j := i + step; j < n; j += step {
			dists = append(dists, math.Sqrt(linalg.SqDist(rows[i], rows[j])))
		}
	}
	if len(dists) == 0 {
		return 1
	}
	sort.Float64s(dists)
	med := dists[len(dists)/2]
	if med <= 0 {
		return 1
	}
	return med
}

// medianSigmaDist is medianSigma reading a precomputed n×n squared-distance
// matrix instead of re-deriving the sampled pairs — same sample indices,
// same values, same result.
func medianSigmaDist(dist []float64, n int) float64 {
	if n < 2 {
		return 1
	}
	step := 1
	const sampleRows = 150
	if n > sampleRows {
		step = n / sampleRows
	}
	var dists []float64
	for i := 0; i < n; i += step {
		for j := i + step; j < n; j += step {
			dists = append(dists, math.Sqrt(dist[i*n+j]))
		}
	}
	if len(dists) == 0 {
		return 1
	}
	sort.Float64s(dists)
	med := dists[len(dists)/2]
	if med <= 0 {
		return 1
	}
	return med
}
