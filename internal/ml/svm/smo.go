package svm

import (
	"fmt"
	"math"
	"math/rand"

	"metaopt/internal/ml"
)

// SMO trains soft-margin C-SVMs with Platt's sequential minimal
// optimization, combined into a multi-class classifier through output
// codes. It exists as an ablation counterpart to the LS-SVM: the paper's
// toolkit was least-squares, but classical C-SVMs are the textbook variant.
type SMO struct {
	// C is the soft-margin penalty. Zero selects the default.
	C float64

	// Kernel defaults to an RBF with a median-distance bandwidth.
	Kernel Kernel

	// Codes defaults to one-vs-rest over ml.NumClasses.
	Codes Codes

	// Tol and MaxPasses bound the optimization. Zero selects defaults.
	Tol       float64
	MaxPasses int

	// Seed drives SMO's randomized second-choice heuristic.
	Seed int64
}

var _ ml.Trainer = (*SMO)(nil)

type smoBinary struct {
	alpha []float64
	bias  float64
	y     []float64
}

// smoModel is a trained multi-class SMO SVM.
type smoModel struct {
	norm   *ml.Norm
	rows   [][]float64
	kernel Kernel
	codes  Codes
	bits   []smoBinary
}

var _ ml.Classifier = (*smoModel)(nil)

// Train fits one binary C-SVM per output-code bit.
func (t *SMO) Train(d *ml.Dataset) (ml.Classifier, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	norm := ml.FitNorm(d)
	rows := norm.ApplyAll(d)
	c := t.C
	if c <= 0 {
		c = 10
	}
	kernel := t.Kernel
	if kernel == nil {
		kernel = RBF{Sigma: medianSigma(rows)}
	}
	codes := t.Codes
	if codes.NumClasses() == 0 {
		codes = OneVsRest(ml.NumClasses)
	}
	tol := t.Tol
	if tol <= 0 {
		tol = 1e-3
	}
	maxPasses := t.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 5
	}

	n := len(rows)
	// Precompute the kernel matrix once; all bits share it.
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := kernel.Eval(rows[i], rows[j])
			k[i][j] = v
			k[j][i] = v
		}
	}

	m := &smoModel{norm: norm, rows: rows, kernel: kernel, codes: codes}
	rng := rand.New(rand.NewSource(t.Seed + 1))
	for bit := 0; bit < codes.NumBits(); bit++ {
		y := make([]float64, n)
		for i, e := range d.Examples {
			y[i] = codes.Target(e.Label, bit)
		}
		bin, err := smoTrain(k, y, c, tol, maxPasses, rng)
		if err != nil {
			return nil, fmt.Errorf("svm: bit %d: %w", bit, err)
		}
		m.bits = append(m.bits, bin)
	}
	return m, nil
}

// smoTrain is simplified SMO (Platt / Ng's CS229 variant) on a precomputed
// kernel matrix.
func smoTrain(k [][]float64, y []float64, c, tol float64, maxPasses int, rng *rand.Rand) (smoBinary, error) {
	n := len(y)
	alpha := make([]float64, n)
	b := 0.0
	f := func(i int) float64 {
		s := b
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				s += alpha[j] * y[j] * k[i][j]
			}
		}
		return s
	}
	passes := 0
	iters := 0
	for passes < maxPasses {
		if iters++; iters > 200 {
			break // converged enough for a heuristic model
		}
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - y[i]
			if !((y[i]*ei < -tol && alpha[i] < c) || (y[i]*ei > tol && alpha[i] > 0)) {
				continue
			}
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := f(j) - y[j]
			ai, aj := alpha[i], alpha[j]
			var lo, hi float64
			if y[i] != y[j] {
				lo = math.Max(0, aj-ai)
				hi = math.Min(c, c+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-c)
				hi = math.Min(c, ai+aj)
			}
			if lo == hi {
				continue
			}
			eta := 2*k[i][j] - k[i][i] - k[j][j]
			if eta >= 0 {
				continue
			}
			ajNew := aj - y[j]*(ei-ej)/eta
			if ajNew > hi {
				ajNew = hi
			} else if ajNew < lo {
				ajNew = lo
			}
			if math.Abs(ajNew-aj) < 1e-5 {
				continue
			}
			aiNew := ai + y[i]*y[j]*(aj-ajNew)
			b1 := b - ei - y[i]*(aiNew-ai)*k[i][i] - y[j]*(ajNew-aj)*k[i][j]
			b2 := b - ej - y[i]*(aiNew-ai)*k[i][j] - y[j]*(ajNew-aj)*k[j][j]
			switch {
			case aiNew > 0 && aiNew < c:
				b = b1
			case ajNew > 0 && ajNew < c:
				b = b2
			default:
				b = (b1 + b2) / 2
			}
			alpha[i], alpha[j] = aiNew, ajNew
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}
	return smoBinary{alpha: alpha, bias: b, y: y}, nil
}

// Predict classifies a raw feature vector.
func (m *smoModel) Predict(features []float64) int {
	q := m.norm.Apply(features)
	kvec := make([]float64, len(m.rows))
	for i, row := range m.rows {
		kvec[i] = m.kernel.Eval(q, row)
	}
	scores := make([]float64, len(m.bits))
	for bi, bin := range m.bits {
		s := bin.bias
		for i, a := range bin.alpha {
			if a != 0 {
				s += a * bin.y[i] * kvec[i]
			}
		}
		scores[bi] = s
	}
	return m.codes.Decode(scores)
}
