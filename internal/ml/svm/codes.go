package svm

import (
	"math"
	"math/rand"
)

// Codes is an output-code matrix for multi-class classification with binary
// machines (Dietterich & Bakiri): row c is the ±1 codeword of class c+1.
// Every bit induces one binary problem; a query's bit predictions are
// matched to the nearest codeword.
type Codes struct {
	Bits [][]int8 // [class][bit] ∈ {+1, −1}
}

// NumBits returns the number of binary classifiers the code requires.
func (c Codes) NumBits() int {
	if len(c.Bits) == 0 {
		return 0
	}
	return len(c.Bits[0])
}

// NumClasses returns the number of codewords.
func (c Codes) NumClasses() int { return len(c.Bits) }

// Target returns the binary label of class (1-based) under bit b.
func (c Codes) Target(class, bit int) float64 {
	return float64(c.Bits[class-1][bit])
}

// OneVsRest returns the identity code the paper uses: one bit per class,
// positive only for that class.
func OneVsRest(classes int) Codes {
	bits := make([][]int8, classes)
	for c := range bits {
		bits[c] = make([]int8, classes)
		for b := range bits[c] {
			if b == c {
				bits[c][b] = 1
			} else {
				bits[c][b] = -1
			}
		}
	}
	return Codes{Bits: bits}
}

// Random returns a random error-correcting code with the given number of
// bits (the paper mentions error-correcting codewords as a refinement).
// Degenerate bits (all classes equal) are re-drawn.
func Random(classes, bits int, seed int64) Codes {
	rng := rand.New(rand.NewSource(seed))
	code := Codes{Bits: make([][]int8, classes)}
	for c := range code.Bits {
		code.Bits[c] = make([]int8, bits)
	}
	for b := 0; b < bits; b++ {
		for {
			pos := 0
			for c := 0; c < classes; c++ {
				if rng.Intn(2) == 0 {
					code.Bits[c][b] = -1
				} else {
					code.Bits[c][b] = 1
					pos++
				}
			}
			if pos > 0 && pos < classes {
				break
			}
		}
	}
	return code
}

// Decode maps per-bit decision values to the class whose codeword is
// closest in Hamming distance over the signs, breaking ties with the total
// hinge loss (margin-aware), as error-correcting output-code decoders do.
func (c Codes) Decode(scores []float64) int {
	best := 1
	bestHam := math.MaxInt32
	bestLoss := math.Inf(1)
	for class := 1; class <= c.NumClasses(); class++ {
		ham := 0
		loss := 0.0
		for b, want := range c.Bits[class-1] {
			s := scores[b]
			if (s >= 0) != (want > 0) {
				ham++
			}
			if m := 1 - float64(want)*s; m > 0 {
				loss += m
			}
		}
		if ham < bestHam || (ham == bestHam && loss < bestLoss) {
			best, bestHam, bestLoss = class, ham, loss
		}
	}
	return best
}
