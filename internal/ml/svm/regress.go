package svm

import (
	"fmt"
	"math"

	"metaopt/internal/ml"
)

// Regression is kernel ridge regression in LS-SVM form, predicting the
// unroll factor as a real value and rounding to the label range. The paper
// lists regression as future work ("which can predict values outside the
// range of the labels"); this implements it on the same solver as the
// classifier.
type Regression struct {
	// Gamma is the regularization weight γ. Zero selects the default.
	Gamma float64

	// Kernel defaults to an RBF with a median-distance bandwidth.
	Kernel Kernel
}

var _ ml.Trainer = (*Regression)(nil)
var _ ml.LOOCVer = (*Regression)(nil)

// RegModel is a trained regressor.
type RegModel struct {
	norm   *ml.Norm
	rows   [][]float64
	kernel Kernel
	alpha  []float64
	bias   float64
}

var _ ml.Classifier = (*RegModel)(nil)

func (t *Regression) config(rows [][]float64) (float64, Kernel, []float64) {
	gamma := t.Gamma
	if gamma <= 0 {
		gamma = DefaultGamma
	}
	kernel, dist := kernelAndDist(t.Kernel, rows)
	return gamma, kernel, dist
}

// Train fits the regressor to the labels.
func (t *Regression) Train(d *ml.Dataset) (ml.Classifier, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	norm := ml.FitNorm(d)
	rows := norm.ApplyAll(d)
	gamma, kernel, dist := t.config(rows)
	ch, err := system(len(rows), rows, kernel, gamma, dist)
	if err != nil {
		return nil, err
	}
	n := len(rows)
	ones := make([]float64, n)
	y := make([]float64, n)
	for i, e := range d.Examples {
		ones[i] = 1
		y[i] = float64(e.Label)
	}
	u := ch.Solve(ones)
	var s float64
	for _, x := range u {
		s += x
	}
	alpha, bias := solveBit(ch, u, s, y)
	return &RegModel{norm: norm, rows: rows, kernel: kernel, alpha: alpha, bias: bias}, nil
}

// Value returns the raw real-valued prediction.
func (m *RegModel) Value(features []float64) float64 {
	q := m.norm.Apply(features)
	s := m.bias
	for i, a := range m.alpha {
		s += a * m.kernel.Eval(q, m.rows[i])
	}
	return s
}

// Predict rounds the regression value into the label range.
func (m *RegModel) Predict(features []float64) int {
	return clampRound(m.Value(features))
}

func clampRound(v float64) int {
	u := int(math.Round(v))
	if u < 1 {
		u = 1
	}
	if u > ml.NumClasses {
		u = ml.NumClasses
	}
	return u
}

// LOOCV computes exact leave-one-out predictions with the same shortcut as
// the classifier: ŷᵢ = yᵢ − αᵢ/(C⁻¹)ᵢᵢ.
func (t *Regression) LOOCV(d *ml.Dataset) ([]int, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Len() < 3 {
		return nil, fmt.Errorf("svm: regression LOOCV needs at least 3 examples")
	}
	norm := ml.FitNorm(d)
	rows := norm.ApplyAll(d)
	gamma, kernel, dist := t.config(rows)
	ch, err := system(len(rows), rows, kernel, gamma, dist)
	if err != nil {
		return nil, err
	}
	n := len(rows)
	ones := make([]float64, n)
	y := make([]float64, n)
	for i, e := range d.Examples {
		ones[i] = 1
		y[i] = float64(e.Label)
	}
	u := ch.Solve(ones)
	var s float64
	for _, x := range u {
		s += x
	}
	alpha, _ := solveBit(ch, u, s, y)
	diagA := ch.InverseDiagonalFast()
	preds := make([]int, n)
	for i := range preds {
		diagC := diagA[i] - u[i]*u[i]/s
		if diagC <= 0 {
			preds[i] = clampRound(y[i])
			continue
		}
		preds[i] = clampRound(y[i] - alpha[i]/diagC)
	}
	return preds, nil
}
