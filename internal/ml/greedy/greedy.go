// Package greedy implements forward greedy feature selection (the paper's
// Section 7.2): starting from the empty set, each round adds the feature
// that minimizes the given classifier's error on the training set, until k
// features have been chosen.
package greedy

import (
	"fmt"

	"metaopt/internal/ml"
	"metaopt/internal/obs"
	"metaopt/internal/par"
)

var (
	mRounds     = obs.C("greedy.rounds")
	mCandidates = obs.C("greedy.candidates_scored")
)

// Result of one selection round.
type Result struct {
	Feature int     // the feature chosen this round
	Error   float64 // classification error with the set so far
}

// Select runs greedy forward selection for k features using the trainer's
// error on the dataset. Trainers with a fast leave-one-out shortcut are
// scored by LOOCV error (the paper's near-neighbor variant searches for the
// single closest *other* point, which is exactly LOO-1NN); others are
// scored by plain training error.
//
// The candidate features within a round are scored independently across
// the shared worker pool, each worker projecting into its own reused
// buffer; the round's winner is the lowest-index minimum, exactly what the
// serial scan picked.
func Select(tr ml.Trainer, d *ml.Dataset, k int) ([]Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	dim := len(d.Examples[0].Features)
	if k > dim {
		k = dim
	}
	chosen := make([]int, 0, k)
	used := make([]bool, dim)
	var results []Result

	workers := par.Workers(dim)

	// Trainers with an incremental selection session (the near-neighbor
	// classifier's additive distance matrix) score a candidate in one
	// feature's worth of work; others project each subset and retrain.
	var sess ml.SelectSession
	if ss, ok := tr.(ml.SelectScorer); ok {
		var err error
		if sess, err = ss.BeginSelect(d, workers); err != nil {
			return nil, err
		}
	}
	var subs []ml.Dataset
	var idxBufs [][]int
	if sess == nil {
		subs = make([]ml.Dataset, workers)
		idxBufs = make([][]int, workers)
		for w := range idxBufs {
			idxBufs[w] = make([]int, 0, k)
		}
	}
	cand := make([]int, 0, dim)
	scores := make([]float64, dim)

	for round := 0; round < k; round++ {
		sp := obs.Begin("greedy.round")
		cand = cand[:0]
		for f := 0; f < dim; f++ {
			if !used[f] {
				cand = append(cand, f)
			}
		}
		mRounds.Inc()
		mCandidates.Add(int64(len(cand)))
		err := par.ForEachWorker(len(cand), func(w, ci int) error {
			var e float64
			var err error
			if sess != nil {
				e, err = sess.Score(w, chosen, cand[ci])
			} else {
				idx := append(append(idxBufs[w][:0], chosen...), cand[ci])
				e, err = errorOf(tr, d.SelectInto(idx, &subs[w]))
			}
			if err != nil {
				return fmt.Errorf("greedy: feature %d: %w", cand[ci], err)
			}
			scores[ci] = e
			return nil
		})
		sp.End()
		if err != nil {
			return nil, err
		}
		bestF, bestErr := -1, 2.0
		for ci, f := range cand {
			if scores[ci] < bestErr {
				bestF, bestErr = f, scores[ci]
			}
		}
		if bestF < 0 {
			break
		}
		if sess != nil {
			if err := sess.Commit(bestF); err != nil {
				return nil, err
			}
		}
		used[bestF] = true
		chosen = append(chosen, bestF)
		results = append(results, Result{Feature: bestF, Error: bestErr})
	}
	return results, nil
}

// Features extracts just the chosen feature indices from results.
func Features(results []Result) []int {
	out := make([]int, len(results))
	for i, r := range results {
		out[i] = r.Feature
	}
	return out
}

func errorOf(tr ml.Trainer, d *ml.Dataset) (float64, error) {
	if fast, ok := tr.(ml.LOOCVer); ok {
		preds, err := fast.LOOCV(d)
		if err != nil {
			return 0, err
		}
		return 1 - ml.Accuracy(d, preds), nil
	}
	c, err := tr.Train(d)
	if err != nil {
		return 0, err
	}
	miss := 0
	for _, e := range d.Examples {
		if c.Predict(e.Features) != e.Label {
			miss++
		}
	}
	return float64(miss) / float64(d.Len()), nil
}
