// Package greedy implements forward greedy feature selection (the paper's
// Section 7.2): starting from the empty set, each round adds the feature
// that minimizes the given classifier's error on the training set, until k
// features have been chosen.
package greedy

import (
	"fmt"

	"metaopt/internal/ml"
)

// Result of one selection round.
type Result struct {
	Feature int     // the feature chosen this round
	Error   float64 // classification error with the set so far
}

// Select runs greedy forward selection for k features using the trainer's
// error on the dataset. Trainers with a fast leave-one-out shortcut are
// scored by LOOCV error (the paper's near-neighbor variant searches for the
// single closest *other* point, which is exactly LOO-1NN); others are
// scored by plain training error.
func Select(tr ml.Trainer, d *ml.Dataset, k int) ([]Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	dim := len(d.Examples[0].Features)
	if k > dim {
		k = dim
	}
	chosen := make([]int, 0, k)
	used := make([]bool, dim)
	var results []Result
	for round := 0; round < k; round++ {
		bestF, bestErr := -1, 2.0
		for f := 0; f < dim; f++ {
			if used[f] {
				continue
			}
			sub := d.Select(append(chosen[:len(chosen):len(chosen)], f))
			e, err := errorOf(tr, sub)
			if err != nil {
				return nil, fmt.Errorf("greedy: feature %d: %w", f, err)
			}
			if e < bestErr {
				bestF, bestErr = f, e
			}
		}
		if bestF < 0 {
			break
		}
		used[bestF] = true
		chosen = append(chosen, bestF)
		results = append(results, Result{Feature: bestF, Error: bestErr})
	}
	return results, nil
}

// Features extracts just the chosen feature indices from results.
func Features(results []Result) []int {
	out := make([]int, len(results))
	for i, r := range results {
		out[i] = r.Feature
	}
	return out
}

func errorOf(tr ml.Trainer, d *ml.Dataset) (float64, error) {
	if fast, ok := tr.(ml.LOOCVer); ok {
		preds, err := fast.LOOCV(d)
		if err != nil {
			return 0, err
		}
		return 1 - ml.Accuracy(d, preds), nil
	}
	c, err := tr.Train(d)
	if err != nil {
		return 0, err
	}
	miss := 0
	for _, e := range d.Examples {
		if c.Predict(e.Features) != e.Label {
			miss++
		}
	}
	return float64(miss) / float64(d.Len()), nil
}
