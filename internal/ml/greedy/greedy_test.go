package greedy

import (
	"math/rand"
	"testing"

	"metaopt/internal/ml"
	"metaopt/internal/ml/nn"
)

// mixed builds a dataset where features 0 and 1 jointly determine the
// label, and the remaining features are noise.
func mixed(n, noiseFeatures int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &ml.Dataset{}
	for i := 0; i < 2+noiseFeatures; i++ {
		d.FeatureNames = append(d.FeatureNames, "f")
	}
	for i := 0; i < n; i++ {
		a := rng.Intn(2)
		b := rng.Intn(2)
		label := 1 + a*2 + b
		f := []float64{float64(a) + 0.05*rng.NormFloat64(), float64(b) + 0.05*rng.NormFloat64()}
		for j := 0; j < noiseFeatures; j++ {
			f = append(f, rng.NormFloat64())
		}
		e := ml.Example{Name: "e", Benchmark: "b", Features: f, Label: label}
		for u := 1; u <= ml.NumClasses; u++ {
			e.Cycles[u] = 100000
		}
		d.Examples = append(d.Examples, e)
	}
	return d
}

func TestSelectFindsInformativePair(t *testing.T) {
	d := mixed(200, 4, 1)
	res, err := Select(&nn.Trainer{OneNN: true}, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("rounds = %d", len(res))
	}
	got := map[int]bool{res[0].Feature: true, res[1].Feature: true}
	if !got[0] || !got[1] {
		t.Errorf("selected %v, want {0,1}", Features(res))
	}
	// Error must be non-increasing as features accumulate.
	if res[1].Error > res[0].Error+1e-9 {
		t.Errorf("error increased: %v", res)
	}
	// With both informative features, LOO-1NN should be near perfect.
	if res[1].Error > 0.05 {
		t.Errorf("final error = %.3f", res[1].Error)
	}
}

func TestSelectClampsK(t *testing.T) {
	d := mixed(60, 1, 2)
	res, err := Select(&nn.Trainer{OneNN: true}, d, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Errorf("rounds = %d, want 3 (all features)", len(res))
	}
}

func TestFeaturesHelper(t *testing.T) {
	res := []Result{{Feature: 5}, {Feature: 2}}
	f := Features(res)
	if len(f) != 2 || f[0] != 5 || f[1] != 2 {
		t.Errorf("features = %v", f)
	}
}

func TestSelectRejectsBadDataset(t *testing.T) {
	if _, err := Select(&nn.Trainer{}, &ml.Dataset{}, 2); err == nil {
		t.Error("expected error")
	}
}

// noSession delegates to a near-neighbor trainer while hiding its
// SelectScorer interface, forcing Select onto the project-and-retrain path.
type noSession struct{ tr *nn.Trainer }

func (h noSession) Train(d *ml.Dataset) (ml.Classifier, error) { return h.tr.Train(d) }
func (h noSession) LOOCV(d *ml.Dataset) ([]int, error)         { return h.tr.LOOCV(d) }

// TestSessionPathMatchesSubsetPath runs the same selection through the
// incremental session fast path and the per-subset slow path: chosen
// features and reported errors must be exactly equal.
func TestSessionPathMatchesSubsetPath(t *testing.T) {
	d := mixed(160, 6, 5)
	for _, oneNN := range []bool{true, false} {
		tr := &nn.Trainer{OneNN: oneNN}
		fast, err := Select(tr, d, 4)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := Select(noSession{tr}, d, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(fast) != len(slow) {
			t.Fatalf("oneNN=%v: %d rounds vs %d", oneNN, len(fast), len(slow))
		}
		for i := range fast {
			if fast[i] != slow[i] {
				t.Errorf("oneNN=%v round %d: session %+v, subset %+v", oneNN, i, fast[i], slow[i])
			}
		}
	}
}
