// Package lda implements linear discriminant analysis, used to project the
// high-dimensional loop feature space onto the plane for the paper's
// Figures 1 and 2 ("to find a 'good' plane onto which to project the data,
// we use the linear discriminant analysis algorithm described in [8]").
package lda

import (
	"fmt"

	"metaopt/internal/linalg"
	"metaopt/internal/ml"
)

// Projection maps raw feature vectors onto discriminant directions.
type Projection struct {
	Norm *ml.Norm
	W    *linalg.Matrix // dim × out: columns are discriminant directions
}

// Project fits an LDA projection with the given number of output
// dimensions. It maximizes between-class over within-class scatter by
// solving the generalized eigenproblem Sb·w = λ·Sw·w through the Cholesky
// reduction Sw = L·Lᵀ, M = L⁻¹·Sb·L⁻ᵀ.
func Project(d *ml.Dataset, out int) (*Projection, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	dim := len(d.Examples[0].Features)
	if out < 1 || out > dim {
		return nil, fmt.Errorf("lda: %d output dims for %d features", out, dim)
	}
	norm := ml.FitNorm(d)
	rows := norm.ApplyAll(d)
	n := len(rows)

	// Class and global means.
	classRows := map[int][][]float64{}
	for i, e := range d.Examples {
		classRows[e.Label] = append(classRows[e.Label], rows[i])
	}
	if len(classRows) < 2 {
		return nil, fmt.Errorf("lda: need at least 2 classes")
	}
	global := make([]float64, dim)
	for _, r := range rows {
		linalg.AXPY(1, r, global)
	}
	for j := range global {
		global[j] /= float64(n)
	}

	sw := linalg.NewMatrix(dim, dim)
	sb := linalg.NewMatrix(dim, dim)
	diff := make([]float64, dim)
	for _, members := range classRows {
		mean := make([]float64, dim)
		for _, r := range members {
			linalg.AXPY(1, r, mean)
		}
		for j := range mean {
			mean[j] /= float64(len(members))
		}
		for _, r := range members {
			for j := range diff {
				diff[j] = r[j] - mean[j]
			}
			rankOneUpdate(sw, diff, 1)
		}
		for j := range diff {
			diff[j] = mean[j] - global[j]
		}
		rankOneUpdate(sb, diff, float64(len(members)))
	}
	// Regularize the within-class scatter so it is invertible even with
	// constant features.
	for j := 0; j < dim; j++ {
		sw.Add(j, j, 1e-6*float64(n))
	}

	ch, err := linalg.NewCholesky(sw)
	if err != nil {
		return nil, fmt.Errorf("lda: within-class scatter: %w", err)
	}
	// M = L⁻¹ · Sb · L⁻ᵀ, built column by column.
	tmp := linalg.NewMatrix(dim, dim) // L⁻¹·Sb
	col := make([]float64, dim)
	for c := 0; c < dim; c++ {
		for r := 0; r < dim; r++ {
			col[r] = sb.At(r, c)
		}
		x := ch.SolveLower(col)
		for r := 0; r < dim; r++ {
			tmp.Set(r, c, x[r])
		}
	}
	m := linalg.NewMatrix(dim, dim)
	for r := 0; r < dim; r++ {
		copy(col, tmp.Row(r))
		x := ch.SolveLower(col)
		for c := 0; c < dim; c++ {
			m.Set(r, c, x[c])
		}
	}
	// Symmetrize against numerical drift.
	for i := 0; i < dim; i++ {
		for j := 0; j < i; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	_, vecs, err := linalg.EigenSym(m)
	if err != nil {
		return nil, fmt.Errorf("lda: eigen: %w", err)
	}
	// Map eigenvectors u back to discriminants w = L⁻ᵀ·u.
	w := linalg.NewMatrix(dim, out)
	for c := 0; c < out; c++ {
		for r := 0; r < dim; r++ {
			col[r] = vecs.At(r, c)
		}
		x := ch.SolveUpper(col)
		nrm := linalg.Norm(x)
		if nrm == 0 {
			nrm = 1
		}
		for r := 0; r < dim; r++ {
			w.Set(r, c, x[r]/nrm)
		}
	}
	return &Projection{Norm: norm, W: w}, nil
}

// rankOneUpdate adds weight·v·vᵀ into m.
func rankOneUpdate(m *linalg.Matrix, v []float64, weight float64) {
	for i := range v {
		if v[i] == 0 {
			continue
		}
		row := m.Row(i)
		wv := weight * v[i]
		for j := range v {
			row[j] += wv * v[j]
		}
	}
}

// Apply projects a raw feature vector.
func (p *Projection) Apply(features []float64) []float64 {
	q := p.Norm.Apply(features)
	out := make([]float64, p.W.Cols())
	for c := 0; c < p.W.Cols(); c++ {
		var s float64
		for r := 0; r < p.W.Rows(); r++ {
			s += p.W.At(r, c) * q[r]
		}
		out[c] = s
	}
	return out
}

// ApplyAll projects every example, returning one point per example.
func (p *Projection) ApplyAll(d *ml.Dataset) [][]float64 {
	pts := make([][]float64, d.Len())
	for i, e := range d.Examples {
		pts[i] = p.Apply(e.Features)
	}
	return pts
}
