package lda

import (
	"math"
	"math/rand"
	"testing"

	"metaopt/internal/ml"
	"metaopt/internal/ml/mltest"
)

// separated builds two classes separated along a diagonal direction in a
// higher-dimensional space with noise dimensions.
func separated(n int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &ml.Dataset{}
	for i := 0; i < n; i++ {
		label := 1 + i%2
		shift := float64(label-1) * 3
		f := []float64{
			shift + 0.3*rng.NormFloat64(),
			shift + 0.3*rng.NormFloat64(),
			rng.NormFloat64(), // noise
			rng.NormFloat64(), // noise
		}
		e := ml.Example{Name: "e", Benchmark: "b", Features: f, Label: label}
		for u := 1; u <= ml.NumClasses; u++ {
			e.Cycles[u] = 100000
		}
		d.Examples = append(d.Examples, e)
	}
	return d
}

func TestProjectionSeparatesClasses(t *testing.T) {
	d := separated(200, 1)
	p, err := Project(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	pts := p.ApplyAll(d)
	var m1, m2 float64
	var n1, n2 int
	for i, e := range d.Examples {
		if e.Label == 1 {
			m1 += pts[i][0]
			n1++
		} else {
			m2 += pts[i][0]
			n2++
		}
	}
	m1 /= float64(n1)
	m2 /= float64(n2)
	// Within-class spread along the discriminant.
	var s float64
	for i, e := range d.Examples {
		mu := m1
		if e.Label == 2 {
			mu = m2
		}
		s += (pts[i][0] - mu) * (pts[i][0] - mu)
	}
	s = math.Sqrt(s / float64(len(pts)))
	if sep := math.Abs(m1-m2) / (s + 1e-12); sep < 3 {
		t.Errorf("class separation = %.2f sigma, want >= 3", sep)
	}
}

func TestProject2D(t *testing.T) {
	d := mltest.Clusters(160, 6, 4, 0.1, 2)
	p, err := Project(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.W.Cols() != 2 || p.W.Rows() != 6 {
		t.Errorf("W dims = %dx%d", p.W.Rows(), p.W.Cols())
	}
	pts := p.ApplyAll(d)
	if len(pts) != d.Len() || len(pts[0]) != 2 {
		t.Fatalf("points shape wrong")
	}
	// Projected points must not be all identical.
	allSame := true
	for _, pt := range pts[1:] {
		if pt[0] != pts[0][0] || pt[1] != pts[0][1] {
			allSame = false
			break
		}
	}
	if allSame {
		t.Error("projection collapsed all points")
	}
}

func TestProjectErrors(t *testing.T) {
	d := separated(50, 3)
	if _, err := Project(d, 0); err == nil {
		t.Error("expected dims error")
	}
	if _, err := Project(d, 99); err == nil {
		t.Error("expected dims error")
	}
	one := &ml.Dataset{}
	for i := 0; i < 10; i++ {
		e := ml.Example{Features: []float64{float64(i), 1}, Label: 3}
		e.Cycles[1] = 1
		one.Examples = append(one.Examples, e)
	}
	if _, err := Project(one, 1); err == nil {
		t.Error("expected single-class error")
	}
}
