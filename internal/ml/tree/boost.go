package tree

import (
	"fmt"
	"math"

	"metaopt/internal/ml"
)

// Boost trains an AdaBoost.SAMME ensemble of shallow CART trees — the
// multi-class generalization of the "boosted decision tree" learner of
// Monsifrot et al. that the paper's related work discusses.
type Boost struct {
	// Rounds is the number of boosting rounds (0 = default 25).
	Rounds int
	// MaxDepth bounds each weak tree (0 = default 4).
	MaxDepth int
	// MinLeaf is the minimum examples per leaf (0 = default 3).
	MinLeaf int
}

var _ ml.Trainer = (*Boost)(nil)

// Ensemble is a trained boosted-tree classifier.
type Ensemble struct {
	Trees  []*Tree   `json:"trees"`
	Weight []float64 `json:"weights"`
}

var _ ml.Classifier = (*Ensemble)(nil)

// Train runs AdaBoost.SAMME: each round fits a weak tree on reweighted
// examples, upweighting what the ensemble still gets wrong.
func (b *Boost) Train(d *ml.Dataset) (ml.Classifier, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	rounds := b.Rounds
	if rounds <= 0 {
		rounds = 25
	}
	maxDepth := b.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 4
	}
	weak := &Trainer{MaxDepth: maxDepth, MinLeaf: b.MinLeaf}

	n := d.Len()
	w := make([]float64, n)
	for i := range w {
		w[i] = 1.0 / float64(n)
	}
	const k = float64(ml.NumClasses)
	ens := &Ensemble{}
	for round := 0; round < rounds; round++ {
		t, err := weak.trainWeighted(d, w)
		if err != nil {
			return nil, fmt.Errorf("tree: boosting round %d: %w", round, err)
		}
		// Weighted error of this weak learner.
		var errW, total float64
		miss := make([]bool, n)
		for i, e := range d.Examples {
			total += w[i]
			if t.Predict(e.Features) != e.Label {
				errW += w[i]
				miss[i] = true
			}
		}
		if total <= 0 {
			break
		}
		eps := errW / total
		if eps <= 0 {
			// Perfect weak learner: it alone decides.
			ens.Trees = append(ens.Trees, t)
			ens.Weight = append(ens.Weight, 10)
			break
		}
		// SAMME requires better-than-chance for K classes.
		if eps >= 1-1/k {
			break
		}
		alpha := math.Log((1-eps)/eps) + math.Log(k-1)
		ens.Trees = append(ens.Trees, t)
		ens.Weight = append(ens.Weight, alpha)
		// Reweight and renormalize.
		var sum float64
		for i := range w {
			if miss[i] {
				w[i] *= math.Exp(alpha)
			}
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
	}
	if len(ens.Trees) == 0 {
		// Fall back to one full-depth tree.
		t, err := weak.trainWeighted(d, w)
		if err != nil {
			return nil, err
		}
		ens.Trees = append(ens.Trees, t)
		ens.Weight = append(ens.Weight, 1)
	}
	return ens, nil
}

// Predict takes the weighted vote of the ensemble.
func (e *Ensemble) Predict(features []float64) int {
	var votes [ml.NumClasses + 1]float64
	for i, t := range e.Trees {
		votes[t.Predict(features)] += e.Weight[i]
	}
	best := 1
	for lab := 2; lab <= ml.NumClasses; lab++ {
		if votes[lab] > votes[best] {
			best = lab
		}
	}
	return best
}
