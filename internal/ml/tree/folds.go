package tree

import (
	"metaopt/internal/ml"
)

// Leave-one-out folds over one dataset differ only by the excluded row, so
// the expensive part of presorted training — sorting every feature column —
// can be done once on the full dataset. Each fold then derives its sorted
// orders by copying the full order minus the excluded member (O(n·dim)
// instead of O(n·log n·dim)), keeping original row ids so the column and
// label arrays are shared read-only across all folds and workers.
//
// This is wired through ml.FoldTrainer: ml.LOOCV still runs every fold
// through the worker pool (the session only removes redundant per-fold
// setup), and each fold's tree is identical to Train on that fold's own
// dataset — the full order restricted to the fold members is a valid
// sorted order of the fold, and split choice does not depend on tie order.

var _ ml.FoldTrainer = (*Trainer)(nil)

// foldFrame is the shared, read-only per-dataset state: feature columns,
// labels, full-dataset sorted orders, and uniform weights.
type foldFrame struct {
	n, dim int
	cols   [][]float64
	labels []int32
	sorted [][]int32
	ones   []float64
}

// foldSession trains per-fold trees against a shared frame; each worker
// owns one builder.
type foldSession struct {
	fr       *foldFrame
	builders []builder
	maxDepth int
	minLeaf  int
}

// BeginFolds presorts the full dataset once and hands out a session whose
// TrainWithout derives each fold from the shared orders.
func (t *Trainer) BeginFolds(d *ml.Dataset, workers int) (ml.FoldSession, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n, dim := d.Len(), len(d.Examples[0].Features)
	fr := &foldFrame{
		n:      n,
		dim:    dim,
		cols:   make([][]float64, dim),
		labels: make([]int32, n),
		sorted: make([][]int32, dim),
		ones:   make([]float64, n),
	}
	for i, e := range d.Examples {
		fr.labels[i] = int32(e.Label)
		fr.ones[i] = 1
	}
	for f := 0; f < dim; f++ {
		col := make([]float64, n)
		ord := make([]int32, n)
		for i, e := range d.Examples {
			col[i] = e.Features[f]
			ord[i] = int32(i)
		}
		sortOrd(col, ord)
		fr.cols[f] = col
		fr.sorted[f] = ord
	}
	maxDepth := t.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 12
	}
	minLeaf := t.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 3
	}
	if workers < 1 {
		workers = 1
	}
	return &foldSession{
		fr:       fr,
		builders: make([]builder, workers),
		maxDepth: maxDepth,
		minLeaf:  minLeaf,
	}, nil
}

// TrainWithout trains a tree on the frame's dataset minus example i.
func (s *foldSession) TrainWithout(worker, i int) (ml.Classifier, error) {
	b := &s.builders[worker]
	b.initFold(s.fr, int32(i))
	root := b.grow(s.fr.ones, s.maxDepth, s.minLeaf)
	return &Tree{Root: root}, nil
}

// initFold points the builder at the frame's shared columns and labels and
// copies each feature's full sorted order minus the excluded member. Fold
// builders are never pooled: their cols/labels alias the frame.
func (b *builder) initFold(fr *foldFrame, exclude int32) {
	n := fr.n - 1
	b.n, b.dim = n, fr.dim
	b.cols, b.labels = fr.cols, fr.labels
	b.pn, b.pdim = 0, 0 // shared cols: pristine cache no longer valid
	if cap(b.tmp) < n {
		b.tmp = make([]int32, n)
	} else {
		b.tmp = b.tmp[:n]
	}
	if cap(b.ord) < fr.dim {
		b.ord = make([][]int32, fr.dim)
	} else {
		b.ord = b.ord[:fr.dim]
	}
	for f := 0; f < fr.dim; f++ {
		if cap(b.ord[f]) < n {
			b.ord[f] = make([]int32, n)
		} else {
			b.ord[f] = b.ord[f][:n]
		}
		dst := b.ord[f]
		k := 0
		for _, m := range fr.sorted[f] {
			if m != exclude {
				dst[k] = m
				k++
			}
		}
	}
}
