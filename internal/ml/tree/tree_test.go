package tree

import (
	"testing"

	"metaopt/internal/ml"
	"metaopt/internal/ml/mltest"
)

func TestTreeSeparable(t *testing.T) {
	d := mltest.Clusters(200, 6, 4, 0.05, 1)
	tr := &Trainer{}
	c, err := tr.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, e := range d.Examples {
		if c.Predict(e.Features) == e.Label {
			hits++
		}
	}
	if frac := float64(hits) / float64(d.Len()); frac < 0.95 {
		t.Errorf("training accuracy = %.2f", frac)
	}
}

func TestTreeGeneralizes(t *testing.T) {
	train := mltest.Clusters(300, 6, 4, 0.1, 2)
	test := mltest.Clusters(100, 6, 4, 0.1, 77)
	c, err := (&Trainer{}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, e := range test.Examples {
		if c.Predict(e.Features) == e.Label {
			hits++
		}
	}
	if frac := float64(hits) / float64(test.Len()); frac < 0.85 {
		t.Errorf("held-out accuracy = %.2f", frac)
	}
}

func TestTreeDepthRespected(t *testing.T) {
	d := mltest.Clusters(300, 6, 8, 0.4, 3)
	c, err := (&Trainer{MaxDepth: 3}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	tree := c.(*Tree)
	if got := tree.Depth(); got > 3 {
		t.Errorf("depth = %d, want <= 3", got)
	}
	deep, err := (&Trainer{MaxDepth: 10}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	if deep.(*Tree).Depth() <= tree.Depth() {
		t.Error("deeper budget should grow a deeper tree on noisy data")
	}
}

func TestTreePureLeafStops(t *testing.T) {
	// All labels identical: the tree must be a single leaf.
	d := &ml.Dataset{}
	for i := 0; i < 20; i++ {
		e := ml.Example{Features: []float64{float64(i), float64(i % 3)}, Label: 5}
		e.Cycles[1] = 1
		d.Examples = append(d.Examples, e)
	}
	c, err := (&Trainer{}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	tree := c.(*Tree)
	if !tree.Root.leaf() || tree.Root.Label != 5 {
		t.Errorf("expected single leaf with label 5:\n%s", tree)
	}
}

func TestTreeMinLeaf(t *testing.T) {
	d := mltest.Clusters(60, 4, 4, 0.3, 4)
	c, err := (&Trainer{MinLeaf: 25}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	// With min-leaf 25 over 60 examples, at most one split fits.
	if got := c.(*Tree).Depth(); got > 2 {
		t.Errorf("depth = %d with huge min-leaf", got)
	}
}

func TestTreeString(t *testing.T) {
	d := mltest.Clusters(100, 4, 3, 0.1, 5)
	c, err := (&Trainer{MaxDepth: 3}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	s := c.(*Tree).String()
	if len(s) == 0 {
		t.Error("empty tree dump")
	}
}

func TestBoostBeatsWeakTree(t *testing.T) {
	// Noisy data: a depth-2 stump is weak; boosting stumps must beat one.
	train := mltest.NoisyLabels(mltest.Clusters(400, 6, 4, 0.25, 6), 0.15, 6)
	test := mltest.Clusters(150, 6, 4, 0.25, 88)
	weak, err := (&Trainer{MaxDepth: 2}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := (&Boost{Rounds: 30, MaxDepth: 2}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	acc := func(c ml.Classifier) float64 {
		hits := 0
		for _, e := range test.Examples {
			if c.Predict(e.Features) == e.Label {
				hits++
			}
		}
		return float64(hits) / float64(test.Len())
	}
	aw, ab := acc(weak), acc(boosted)
	if ab <= aw {
		t.Errorf("boosted %.2f <= weak %.2f", ab, aw)
	}
}

func TestBoostEnsembleShape(t *testing.T) {
	d := mltest.Clusters(200, 5, 4, 0.2, 7)
	c, err := (&Boost{Rounds: 10}).Train(d)
	if err != nil {
		t.Fatal(err)
	}
	ens := c.(*Ensemble)
	if len(ens.Trees) == 0 || len(ens.Trees) != len(ens.Weight) {
		t.Fatalf("ensemble shape: %d trees, %d weights", len(ens.Trees), len(ens.Weight))
	}
	for _, w := range ens.Weight {
		if w <= 0 {
			t.Errorf("non-positive tree weight %v", w)
		}
	}
}

func TestBoostLOOCVViaGeneric(t *testing.T) {
	d := mltest.Clusters(60, 5, 3, 0.1, 8)
	preds, err := ml.LOOCV(&Boost{Rounds: 5, MaxDepth: 3}, d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(d, preds); acc < 0.7 {
		t.Errorf("boosted LOOCV accuracy = %.2f", acc)
	}
}

func TestTrainRejectsBadDataset(t *testing.T) {
	if _, err := (&Trainer{}).Train(&ml.Dataset{}); err == nil {
		t.Error("expected error for empty dataset")
	}
	if _, err := (&Boost{}).Train(&ml.Dataset{}); err == nil {
		t.Error("expected error for empty dataset")
	}
}

// TestFoldSessionMatchesTrain asserts the shared-presort fold path grows
// exactly the tree that training on each fold's own dataset grows: same
// structure, same features, same thresholds bit for bit.
func TestFoldSessionMatchesTrain(t *testing.T) {
	d := mltest.Clusters(120, 5, 4, 0.3, 11)
	tr := &Trainer{MaxDepth: 5}
	sess, err := tr.BeginFolds(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	var fold ml.Dataset
	for i := 0; i < d.Len(); i++ {
		got, err := sess.TrainWithout(i%3, i)
		if err != nil {
			t.Fatal(err)
		}
		want, err := tr.Train(d.WithoutInto(i, &fold))
		if err != nil {
			t.Fatal(err)
		}
		if !sameTree(got.(*Tree).Root, want.(*Tree).Root) {
			t.Fatalf("fold %d: session tree differs from per-fold training\nsession:\n%swant:\n%s",
				i, got.(*Tree), want.(*Tree))
		}
	}
}

func sameTree(a, b *node) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.Feature == b.Feature && a.Threshold == b.Threshold &&
		a.Label == b.Label && sameTree(a.Left, b.Left) && sameTree(a.Right, b.Right)
}

// TestBuilderPristineReuse trains twice on the same dataset through the
// pooled builder (as boosting does every round) and checks the trees match,
// covering the order-restore path.
func TestBuilderPristineReuse(t *testing.T) {
	d := mltest.Clusters(150, 4, 4, 0.2, 7)
	b := builders.Get().(*builder)
	defer builders.Put(b)
	w := make([]float64, d.Len())
	for i := range w {
		w[i] = 1
	}
	b.init(d)
	first := &Tree{Root: b.grow(w, 6, 3)}
	b.init(d) // same matrix: must hit the pristine cache
	second := &Tree{Root: b.grow(w, 6, 3)}
	if !sameTree(first.Root, second.Root) {
		t.Fatal("pristine-cache retrain differs from fresh train")
	}
}
