// Package tree implements CART decision trees and AdaBoost.SAMME boosting
// over them. The paper's closest prior work (Monsifrot, Bodin & Quiniou)
// used boosted decision trees for a *binary* unroll decision; this package
// provides the multi-class counterpart so the comparison the paper draws
// in Section 9 can be run directly against the same data.
package tree

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"metaopt/internal/ml"
)

// Trainer fits a single CART decision tree by recursive binary splitting
// on Gini impurity.
type Trainer struct {
	// MaxDepth bounds the tree (0 = default 12).
	MaxDepth int
	// MinLeaf is the minimum examples per leaf (0 = default 3).
	MinLeaf int
}

var _ ml.Trainer = (*Trainer)(nil)

// node is one tree node: either a split (Feature/Threshold with children)
// or a leaf (Label).
type node struct {
	Feature   int     `json:"f,omitempty"`
	Threshold float64 `json:"t,omitempty"`
	Left      *node   `json:"l,omitempty"`
	Right     *node   `json:"r,omitempty"`
	Label     int     `json:"y,omitempty"`
}

func (n *node) leaf() bool { return n.Left == nil && n.Right == nil }

// Tree is a trained decision tree.
type Tree struct {
	Root *node `json:"root"`
}

var _ ml.Classifier = (*Tree)(nil)

// Predict walks the tree.
func (t *Tree) Predict(features []float64) int {
	n := t.Root
	for !n.leaf() {
		if features[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Label
}

// Depth returns the maximum depth of the tree (a single leaf has depth 1).
func (t *Tree) Depth() int { return depth(t.Root) }

func depth(n *node) int {
	if n == nil {
		return 0
	}
	if n.leaf() {
		return 1
	}
	l, r := depth(n.Left), depth(n.Right)
	if r > l {
		l = r
	}
	return l + 1
}

// Train fits the tree with uniform example weights.
func (t *Trainer) Train(d *ml.Dataset) (ml.Classifier, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	w := make([]float64, d.Len())
	for i := range w {
		w[i] = 1
	}
	return t.trainWeighted(d, w)
}

func (t *Trainer) trainWeighted(d *ml.Dataset, weights []float64) (*Tree, error) {
	maxDepth := t.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 12
	}
	minLeaf := t.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 3
	}
	b := builders.Get().(*builder)
	b.init(d)
	root := b.grow(weights, maxDepth, minLeaf)
	builders.Put(b)
	return &Tree{Root: root}, nil
}

// builder holds the presorted scratch state for growing one tree. Sorting
// every candidate feature at every node used to dominate training time;
// instead each feature is sorted once over the whole dataset, and a split
// stably partitions each feature's order in place, so the sorted-order
// invariant holds in every node segment without ever sorting again.
//
// Builders are pooled: LOOCV trains one tree per fold and boosting one per
// round, and the column/order arenas are the allocation cost that matters.
// A builder also keeps the pristine (full-dataset) sorted orders from its
// last init: boosting re-trains on the same feature matrix with different
// weights every round, and sort order does not depend on weights, so a
// repeat init only restores the orders instead of re-sorting.
type builder struct {
	n, dim int
	cols   [][]float64 // column-major feature values: cols[f][i]
	labels []int32
	ord    [][]int32 // per-feature member indices, value-sorted per segment
	tmp    []int32   // stable-partition spill buffer
	w      []float64

	// pristine sorted orders for the cols currently loaded; valid when
	// pn/pdim match and the incoming feature matrix compares equal.
	pristine [][]int32
	pn, pdim int
}

var builders = sync.Pool{New: func() any { return new(builder) }}

// init loads a dataset into the builder and presorts every feature,
// reusing the pristine orders when the feature matrix is unchanged since
// the last init (compare-while-copy, so reuse is verified not assumed).
func (b *builder) init(d *ml.Dataset) {
	n, dim := d.Len(), len(d.Examples[0].Features)
	b.n, b.dim = n, dim
	same := b.pn == n && b.pdim == dim
	if cap(b.labels) < n {
		b.labels = make([]int32, n)
		b.tmp = make([]int32, n)
	} else {
		b.labels = b.labels[:n]
		b.tmp = b.tmp[:n]
	}
	for i := range d.Examples {
		b.labels[i] = int32(d.Examples[i].Label)
	}
	if cap(b.cols) < dim {
		b.cols = make([][]float64, dim)
		b.ord = make([][]int32, dim)
		b.pristine = make([][]int32, dim)
		same = false
	} else {
		b.cols = b.cols[:dim]
		b.ord = b.ord[:dim]
		b.pristine = b.pristine[:dim]
	}
	for f := 0; f < dim; f++ {
		if cap(b.cols[f]) < n {
			b.cols[f] = make([]float64, n)
			b.ord[f] = make([]int32, n)
			b.pristine[f] = make([]int32, n)
			same = false
		} else {
			b.cols[f] = b.cols[f][:n]
			b.ord[f] = b.ord[f][:n]
			b.pristine[f] = b.pristine[f][:n]
		}
		col := b.cols[f]
		for i, e := range d.Examples {
			v := e.Features[f]
			if col[i] != v {
				col[i] = v
				same = false
			}
		}
	}
	if !same {
		for f := 0; f < dim; f++ {
			pr := b.pristine[f]
			for i := range pr {
				pr[i] = int32(i)
			}
			sortOrd(b.cols[f], pr)
		}
		b.pn, b.pdim = n, dim
	}
	for f := 0; f < dim; f++ {
		copy(b.ord[f], b.pristine[f])
	}
}

// sortOrd sorts member indices by value, breaking ties by index so the
// order is deterministic.
func sortOrd(col []float64, ord []int32) {
	slices.SortFunc(ord, func(a, c int32) int {
		va, vc := col[a], col[c]
		switch {
		case va < vc:
			return -1
		case va > vc:
			return 1
		}
		return int(a - c)
	})
}

// grow builds the tree over the whole (presorted) dataset with the given
// example weights.
func (b *builder) grow(w []float64, maxDepth, minLeaf int) *node {
	b.w = w
	root := b.build(0, b.n, maxDepth, minLeaf)
	b.w = nil
	return root
}

// build grows one subtree over the members in segment [lo, hi) of every
// feature's order.
func (b *builder) build(lo, hi, depthLeft, minLeaf int) *node {
	label, pure := b.majority(lo, hi)
	if pure || depthLeft <= 1 || hi-lo < 2*minLeaf {
		return &node{Label: label}
	}
	f, thr, ok := b.bestSplit(lo, hi, minLeaf)
	if !ok {
		return &node{Label: label}
	}
	nl := b.partition(lo, hi, f, thr)
	if nl == 0 || nl == hi-lo {
		return &node{Label: label}
	}
	return &node{
		Feature:   f,
		Threshold: thr,
		Left:      b.build(lo, lo+nl, depthLeft-1, minLeaf),
		Right:     b.build(lo+nl, hi, depthLeft-1, minLeaf),
	}
}

// partition stably splits every feature's segment on cols[f] <= thr and
// returns the left-side member count.
func (b *builder) partition(lo, hi, f int, thr float64) int {
	split := b.cols[f]
	for g := 0; g < b.dim; g++ {
		seg := b.ord[g][lo:hi]
		spill := b.tmp[:0]
		k := 0
		for _, i := range seg {
			if split[i] <= thr {
				seg[k] = i
				k++
			} else {
				spill = append(spill, i)
			}
		}
		copy(seg[k:], spill)
		if g == b.dim-1 {
			return k
		}
	}
	return 0
}

// majority returns the weighted majority label of a segment and whether it
// is pure.
func (b *builder) majority(lo, hi int) (label int, pure bool) {
	var counts [ml.NumClasses + 1]float64
	for _, i := range b.ord[0][lo:hi] {
		counts[b.labels[i]] += b.w[i]
	}
	best, classes := 1, 0
	for lab := 1; lab <= ml.NumClasses; lab++ {
		if counts[lab] > 0 {
			classes++
		}
		if counts[lab] > counts[best] {
			best = lab
		}
	}
	return best, classes <= 1
}

// bestSplit finds the (feature, threshold) pair minimizing weighted Gini
// impurity of the induced partition. Each feature's segment is already in
// value order, so the threshold sweep needs no sort.
func (b *builder) bestSplit(lo, hi, minLeaf int) (feature int, threshold float64, ok bool) {
	bestGini := math.Inf(1)
	for f := 0; f < b.dim; f++ {
		seg := b.ord[f][lo:hi]
		col := b.cols[f]

		// Sweep thresholds between distinct values, maintaining class
		// weight tallies on each side.
		var leftC, rightC [ml.NumClasses + 1]float64
		var leftW, rightW float64
		for _, i := range seg {
			rightC[b.labels[i]] += b.w[i]
			rightW += b.w[i]
		}
		leftN := 0
		for k := 0; k < len(seg)-1; k++ {
			i := seg[k]
			lab := b.labels[i]
			leftC[lab] += b.w[i]
			leftW += b.w[i]
			rightC[lab] -= b.w[i]
			rightW -= b.w[i]
			leftN++
			if col[i] == col[seg[k+1]] {
				continue // not a valid cut point
			}
			if leftN < minLeaf || len(seg)-leftN < minLeaf {
				continue
			}
			g := leftW*gini(&leftC, leftW) + rightW*gini(&rightC, rightW)
			if g < bestGini {
				bestGini = g
				feature = f
				threshold = (col[i] + col[seg[k+1]]) / 2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

func gini(counts *[ml.NumClasses + 1]float64, total float64) float64 {
	if total <= 0 {
		return 0
	}
	s := 1.0
	for _, c := range counts {
		p := c / total
		s -= p * p
	}
	return s
}

// String renders the tree structure for debugging.
func (t *Tree) String() string {
	var sb []byte
	var walk func(n *node, indent string)
	walk = func(n *node, indent string) {
		if n.leaf() {
			sb = append(sb, fmt.Sprintf("%s-> %d\n", indent, n.Label)...)
			return
		}
		sb = append(sb, fmt.Sprintf("%sf%d <= %.3f?\n", indent, n.Feature, n.Threshold)...)
		walk(n.Left, indent+"  ")
		walk(n.Right, indent+"  ")
	}
	walk(t.Root, "")
	return string(sb)
}
