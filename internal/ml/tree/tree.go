// Package tree implements CART decision trees and AdaBoost.SAMME boosting
// over them. The paper's closest prior work (Monsifrot, Bodin & Quiniou)
// used boosted decision trees for a *binary* unroll decision; this package
// provides the multi-class counterpart so the comparison the paper draws
// in Section 9 can be run directly against the same data.
package tree

import (
	"fmt"
	"math"
	"sort"

	"metaopt/internal/ml"
)

// Trainer fits a single CART decision tree by recursive binary splitting
// on Gini impurity.
type Trainer struct {
	// MaxDepth bounds the tree (0 = default 12).
	MaxDepth int
	// MinLeaf is the minimum examples per leaf (0 = default 3).
	MinLeaf int
}

var _ ml.Trainer = (*Trainer)(nil)

// node is one tree node: either a split (Feature/Threshold with children)
// or a leaf (Label).
type node struct {
	Feature   int     `json:"f,omitempty"`
	Threshold float64 `json:"t,omitempty"`
	Left      *node   `json:"l,omitempty"`
	Right     *node   `json:"r,omitempty"`
	Label     int     `json:"y,omitempty"`
}

func (n *node) leaf() bool { return n.Left == nil && n.Right == nil }

// Tree is a trained decision tree.
type Tree struct {
	Root *node `json:"root"`
}

var _ ml.Classifier = (*Tree)(nil)

// Predict walks the tree.
func (t *Tree) Predict(features []float64) int {
	n := t.Root
	for !n.leaf() {
		if features[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Label
}

// Depth returns the maximum depth of the tree (a single leaf has depth 1).
func (t *Tree) Depth() int { return depth(t.Root) }

func depth(n *node) int {
	if n == nil {
		return 0
	}
	if n.leaf() {
		return 1
	}
	l, r := depth(n.Left), depth(n.Right)
	if r > l {
		l = r
	}
	return l + 1
}

// Train fits the tree with uniform example weights.
func (t *Trainer) Train(d *ml.Dataset) (ml.Classifier, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	w := make([]float64, d.Len())
	for i := range w {
		w[i] = 1
	}
	return t.trainWeighted(d, w)
}

func (t *Trainer) trainWeighted(d *ml.Dataset, weights []float64) (*Tree, error) {
	maxDepth := t.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 12
	}
	minLeaf := t.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 3
	}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	root := build(d, weights, idx, maxDepth, minLeaf)
	return &Tree{Root: root}, nil
}

// build grows one subtree over the example indices.
func build(d *ml.Dataset, w []float64, idx []int, depthLeft, minLeaf int) *node {
	label, pure := majority(d, w, idx)
	if pure || depthLeft <= 1 || len(idx) < 2*minLeaf {
		return &node{Label: label}
	}
	f, thr, ok := bestSplit(d, w, idx, minLeaf)
	if !ok {
		return &node{Label: label}
	}
	var left, right []int
	for _, i := range idx {
		if d.Examples[i].Features[f] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return &node{Label: label}
	}
	return &node{
		Feature:   f,
		Threshold: thr,
		Left:      build(d, w, left, depthLeft-1, minLeaf),
		Right:     build(d, w, right, depthLeft-1, minLeaf),
	}
}

// majority returns the weighted majority label and whether the set is pure.
func majority(d *ml.Dataset, w []float64, idx []int) (label int, pure bool) {
	var counts [ml.NumClasses + 1]float64
	for _, i := range idx {
		counts[d.Examples[i].Label] += w[i]
	}
	best, classes := 1, 0
	for lab := 1; lab <= ml.NumClasses; lab++ {
		if counts[lab] > 0 {
			classes++
		}
		if counts[lab] > counts[best] {
			best = lab
		}
	}
	return best, classes <= 1
}

// bestSplit finds the (feature, threshold) pair minimizing weighted Gini
// impurity of the induced partition.
func bestSplit(d *ml.Dataset, w []float64, idx []int, minLeaf int) (feature int, threshold float64, ok bool) {
	dim := len(d.Examples[0].Features)
	bestGini := math.Inf(1)
	type fv struct {
		v float64
		i int
	}
	vals := make([]fv, len(idx))
	for f := 0; f < dim; f++ {
		for k, i := range idx {
			vals[k] = fv{d.Examples[i].Features[f], i}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })

		// Sweep thresholds between distinct values, maintaining class
		// weight tallies on each side.
		var leftC, rightC [ml.NumClasses + 1]float64
		var leftW, rightW float64
		for _, x := range vals {
			rightC[d.Examples[x.i].Label] += w[x.i]
			rightW += w[x.i]
		}
		leftN := 0
		for k := 0; k < len(vals)-1; k++ {
			lab := d.Examples[vals[k].i].Label
			leftC[lab] += w[vals[k].i]
			leftW += w[vals[k].i]
			rightC[lab] -= w[vals[k].i]
			rightW -= w[vals[k].i]
			leftN++
			if vals[k].v == vals[k+1].v {
				continue // not a valid cut point
			}
			if leftN < minLeaf || len(vals)-leftN < minLeaf {
				continue
			}
			g := leftW*gini(&leftC, leftW) + rightW*gini(&rightC, rightW)
			if g < bestGini {
				bestGini = g
				feature = f
				threshold = (vals[k].v + vals[k+1].v) / 2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

func gini(counts *[ml.NumClasses + 1]float64, total float64) float64 {
	if total <= 0 {
		return 0
	}
	s := 1.0
	for _, c := range counts {
		p := c / total
		s -= p * p
	}
	return s
}

// String renders the tree structure for debugging.
func (t *Tree) String() string {
	var sb []byte
	var walk func(n *node, indent string)
	walk = func(n *node, indent string) {
		if n.leaf() {
			sb = append(sb, fmt.Sprintf("%s-> %d\n", indent, n.Label)...)
			return
		}
		sb = append(sb, fmt.Sprintf("%sf%d <= %.3f?\n", indent, n.Feature, n.Threshold)...)
		walk(n.Left, indent+"  ")
		walk(n.Right, indent+"  ")
	}
	walk(t.Root, "")
	return string(sb)
}
