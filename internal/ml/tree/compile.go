package tree

import (
	"fmt"

	"metaopt/internal/ml/compiled"
)

var _ compiled.Compiler = (*Tree)(nil)
var _ compiled.Compiler = (*Ensemble)(nil)

// flattenInto lowers one pointer tree into the builder's node slab,
// children before parents, and returns the root index.
func flattenInto(b *compiled.ForestBuilder, n *node) (int32, error) {
	if n == nil {
		return 0, fmt.Errorf("tree: compile: nil node")
	}
	if n.leaf() {
		return b.Leaf(n.Label)
	}
	left, err := flattenInto(b, n.Left)
	if err != nil {
		return 0, err
	}
	right, err := flattenInto(b, n.Right)
	if err != nil {
		return 0, err
	}
	return b.Split(n.Feature, n.Threshold, left, right)
}

// Compile lowers the tree into a flat node array walked iteratively.
func (t *Tree) Compile() (*compiled.Program, error) {
	b := compiled.NewForestBuilder()
	root, err := flattenInto(b, t.Root)
	if err != nil {
		return nil, err
	}
	if err := b.EndTree(root, 1); err != nil {
		return nil, err
	}
	return b.Finish(true)
}

// Compile lowers the ensemble: every tree flattens into one shared node
// slab, and the weighted vote runs over the flat roots.
func (e *Ensemble) Compile() (*compiled.Program, error) {
	if len(e.Trees) != len(e.Weight) {
		return nil, fmt.Errorf("tree: compile: %d trees with %d weights", len(e.Trees), len(e.Weight))
	}
	b := compiled.NewForestBuilder()
	for i, t := range e.Trees {
		root, err := flattenInto(b, t.Root)
		if err != nil {
			return nil, fmt.Errorf("tree: compile: tree %d: %w", i, err)
		}
		if err := b.EndTree(root, e.Weight[i]); err != nil {
			return nil, err
		}
	}
	return b.Finish(false)
}
