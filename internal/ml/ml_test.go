package ml_test

import (
	"math"
	"testing"

	"metaopt/internal/ml"
	"metaopt/internal/ml/mltest"
)

func TestDatasetValidate(t *testing.T) {
	d := mltest.Clusters(40, 5, 4, 0.1, 1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &ml.Dataset{Examples: []ml.Example{{Features: []float64{1}, Label: 9}}}
	if err := bad.Validate(); err == nil {
		t.Error("expected bad-label error")
	}
	empty := &ml.Dataset{}
	if err := empty.Validate(); err == nil {
		t.Error("expected empty error")
	}
	ragged := &ml.Dataset{Examples: []ml.Example{
		{Features: []float64{1, 2}, Label: 1},
		{Features: []float64{1}, Label: 2},
	}}
	if err := ragged.Validate(); err == nil {
		t.Error("expected ragged error")
	}
}

func TestSelectProjectsFeatures(t *testing.T) {
	d := mltest.Clusters(10, 6, 3, 0.1, 2)
	s := d.Select([]int{4, 0})
	if len(s.Examples[0].Features) != 2 {
		t.Fatalf("features = %d", len(s.Examples[0].Features))
	}
	if s.Examples[3].Features[0] != d.Examples[3].Features[4] {
		t.Error("projection order wrong")
	}
	if s.FeatureNames[0] != "f4" || s.FeatureNames[1] != "f0" {
		t.Errorf("names = %v", s.FeatureNames)
	}
	if s.Examples[5].Label != d.Examples[5].Label {
		t.Error("labels lost")
	}
}

func TestWithoutBenchmark(t *testing.T) {
	d := mltest.Clusters(60, 4, 4, 0.1, 3)
	train, test := d.WithoutBenchmark("bench2")
	if test.Len() == 0 || train.Len() == 0 {
		t.Fatal("split degenerate")
	}
	if train.Len()+test.Len() != d.Len() {
		t.Error("split loses examples")
	}
	for _, e := range test.Examples {
		if e.Benchmark != "bench2" {
			t.Error("test split has foreign example")
		}
	}
	for _, e := range train.Examples {
		if e.Benchmark == "bench2" {
			t.Error("train split leaks the held-out benchmark")
		}
	}
}

func TestWithout(t *testing.T) {
	d := mltest.Clusters(5, 3, 2, 0.1, 4)
	w := d.Without(2)
	if w.Len() != 4 {
		t.Fatalf("len = %d", w.Len())
	}
	if w.Examples[2].Name != d.Examples[3].Name {
		t.Error("wrong example removed")
	}
}

func TestNormMapsToUnitRange(t *testing.T) {
	d := mltest.Clusters(50, 4, 4, 0.3, 5)
	n := ml.FitNorm(d)
	rows := n.ApplyAll(d)
	for _, r := range rows {
		for j, v := range r {
			if v < -1e-9 || v > 1+1e-9 {
				t.Fatalf("normalized value %v at feature %d", v, j)
			}
		}
	}
}

func TestNormConstantFeature(t *testing.T) {
	d := &ml.Dataset{Examples: []ml.Example{
		{Features: []float64{7, 1}, Label: 1},
		{Features: []float64{7, 3}, Label: 2},
	}}
	n := ml.FitNorm(d)
	v := n.Apply([]float64{7, 2})
	if v[0] != 0 {
		t.Errorf("constant feature normalized to %v", v[0])
	}
	// Values pass through a signed log before min-max scaling:
	// (ln 3 − ln 2) / (ln 4 − ln 2).
	want := (math.Log(3) - math.Log(2)) / (math.Log(4) - math.Log(2))
	if math.Abs(v[1]-want) > 1e-12 {
		t.Errorf("feature 1 = %v, want %v", v[1], want)
	}
	// Training min and max map to the ends of the unit interval.
	ends := n.Apply([]float64{7, 1})
	if ends[1] != 0 {
		t.Errorf("min maps to %v", ends[1])
	}
	ends = n.Apply([]float64{7, 3})
	if ends[1] != 1 {
		t.Errorf("max maps to %v", ends[1])
	}
}

type constClassifier int

func (c constClassifier) Predict([]float64) int { return int(c) }

type constTrainer int

func (c constTrainer) Train(*ml.Dataset) (ml.Classifier, error) {
	return constClassifier(c), nil
}

func TestGenericLOOCVAndAccuracy(t *testing.T) {
	d := mltest.Clusters(12, 3, 3, 0.1, 6)
	preds, err := ml.LOOCV(constTrainer(2), d)
	if err != nil {
		t.Fatal(err)
	}
	acc := ml.Accuracy(d, preds)
	want := float64(12/3) / 12 // labels cycle 1,2,3: a third are 2
	if acc != want {
		t.Errorf("accuracy = %v, want %v", acc, want)
	}
}

func TestRankAndCost(t *testing.T) {
	e := ml.Example{Label: 2}
	for u := 1; u <= ml.NumClasses; u++ {
		e.Cycles[u] = int64(1000 + 100*absInt(u-2))
	}
	if r := ml.Rank(&e, 2); r != 1 {
		t.Errorf("rank of optimal = %d", r)
	}
	if r := ml.Rank(&e, 8); r != ml.NumClasses {
		t.Errorf("rank of worst = %d", r)
	}
	if c := ml.Cost(&e, 2); c != 1 {
		t.Errorf("cost of optimal = %v", c)
	}
	if c := ml.Cost(&e, 8); c <= 1 {
		t.Errorf("cost of worst = %v", c)
	}
}

func TestRankTableSumsToOne(t *testing.T) {
	d := mltest.Clusters(40, 4, 4, 0.2, 7)
	preds := make([]int, d.Len())
	for i := range preds {
		preds[i] = 1 + i%ml.NumClasses
	}
	frac, _ := ml.RankTable(d, preds)
	var sum float64
	for _, f := range frac {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("rank fractions sum to %v", sum)
	}
}

func TestCostByRankMonotone(t *testing.T) {
	d := mltest.Clusters(60, 4, 4, 0.2, 8)
	cost := ml.CostByRank(d)
	if cost[0] != 1 {
		t.Errorf("optimal cost = %v, want 1", cost[0])
	}
	for r := 1; r < ml.NumClasses; r++ {
		if cost[r] < cost[r-1]-1e-9 {
			t.Errorf("cost not monotone at rank %d: %v", r, cost)
		}
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestConfusionMatrix(t *testing.T) {
	d := mltest.Clusters(40, 4, 4, 0.2, 9)
	preds := make([]int, d.Len())
	for i := range preds {
		preds[i] = d.Examples[i].Label // perfect predictions
	}
	c := ml.NewConfusion(d, preds)
	if c.Accuracy() != 1 {
		t.Errorf("perfect accuracy = %v", c.Accuracy())
	}
	for lab := 1; lab <= 4; lab++ {
		if r := c.Recall(lab); r != 1 {
			t.Errorf("recall[%d] = %v", lab, r)
		}
	}
	// All-wrong predictions.
	for i := range preds {
		preds[i] = 1 + d.Examples[i].Label%ml.NumClasses
	}
	c = ml.NewConfusion(d, preds)
	if c.Accuracy() != 0 {
		t.Errorf("all-wrong accuracy = %v", c.Accuracy())
	}
	// Out-of-range predictions clamp to label 1 rather than panicking.
	preds[0] = 99
	c = ml.NewConfusion(d, preds)
	if c.Total != d.Len() {
		t.Errorf("total = %d", c.Total)
	}
	if s := c.String(); len(s) == 0 {
		t.Error("empty confusion render")
	}
	empty := &ml.Confusion{}
	if empty.Recall(3) != 0 {
		t.Error("recall of empty class should be 0")
	}
}
