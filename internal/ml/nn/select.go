package nn

import (
	"fmt"
	"math"

	"metaopt/internal/linalg"
	"metaopt/internal/ml"
)

// selectSession scores greedy forward selection incrementally. Squared
// Euclidean distance is additive across features, and the per-feature
// normalization statistics do not depend on which other features are
// selected, so the session keeps one n×n distance matrix over the committed
// features and prices a candidate by adding its single-feature contribution
// on the fly: O(n²) per candidate instead of O(n²·|chosen|).
//
// Bit-identity with the per-subset path: greedy projects subsets with the
// candidate appended last, and SqDist accumulates features left to right —
// exactly the order the committed matrix was built in (Commit adds one
// feature's contribution per round). Identical floats in, identical
// neighbor choices and errors out.
type selectSession struct {
	n         int
	cols      [][]float64 // normalized feature columns of the full dataset
	labels    []int
	dist      []float64 // n×n squared distances over committed features
	committed int
	radius    float64
	oneNN     bool
}

// BeginSelect implements ml.SelectScorer.
func (t *Trainer) BeginSelect(d *ml.Dataset, workers int) (ml.SelectSession, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := d.Len()
	if n < 2 {
		return nil, fmt.Errorf("nn: selection needs at least 2 examples")
	}
	if cols := d.UsableCols(); cols != nil {
		// Columnar fast path: normalized columns come straight from the
		// backing (same values ApplyInto would produce row by row). Past
		// the dense cap, score with the blocked kernel instead of the
		// n×n committed matrix.
		norm := ml.FitNorm(d)
		if n <= denseRowsCap {
			return &selectSession{
				n:      n,
				cols:   norm.ApplyColumns(cols),
				labels: cols.Labels,
				dist:   make([]float64, n*n),
				radius: t.radius(),
				oneNN:  t.OneNN,
			}, nil
		}
		if workers < 1 {
			workers = 1
		}
		s := &selectSessionLowMem{cols: cols, norm: norm, radius: t.radius(), oneNN: t.OneNN}
		for w := 0; w < workers; w++ {
			s.scratch = append(s.scratch, newBlockScratch(cols.Dim+1))
			s.preds = append(s.preds, make([]int, n))
		}
		return s, nil
	}
	dim := len(d.Examples[0].Features)
	norm := ml.FitNorm(d)
	slab := make([]float64, dim*n)
	cols := make([][]float64, dim)
	for f := range cols {
		cols[f] = slab[f*n : (f+1)*n]
	}
	row := make([]float64, dim)
	labels := make([]int, n)
	for i, e := range d.Examples {
		norm.ApplyInto(e.Features, row)
		for f, v := range row {
			cols[f][i] = v
		}
		labels[i] = e.Label
	}
	return &selectSession{
		n:      n,
		cols:   cols,
		labels: labels,
		dist:   make([]float64, n*n),
		radius: t.radius(),
		oneNN:  t.OneNN,
	}, nil
}

// Score implements ml.SelectSession. Concurrent calls only read shared
// state.
func (s *selectSession) Score(_ int, chosen []int, cand int) (float64, error) {
	if len(chosen) != s.committed {
		return 0, fmt.Errorf("nn: selection session out of sync: %d chosen, %d committed", len(chosen), s.committed)
	}
	if cand < 0 || cand >= len(s.cols) {
		return 0, fmt.Errorf("nn: candidate feature %d out of range", cand)
	}
	col := s.cols[cand]
	hit := 0
	for i := 0; i < s.n; i++ {
		if s.predictFold(i, col) == s.labels[i] {
			hit++
		}
	}
	// 1 − accuracy, the exact expression the per-subset path reports (the
	// float is not always miss/n).
	return 1 - float64(hit)/float64(s.n), nil
}

// predictFold classifies example i against the rest of the dataset over the
// committed features plus the candidate column, mirroring predict.
func (s *selectSession) predictFold(i int, col []float64) int {
	di := s.dist[i*s.n : (i+1)*s.n]
	ci := col[i]
	// Track the single nearest neighbor in the same scan (strict <, first
	// index wins) — used directly in 1-NN mode and as the radius-voting
	// fallback when the neighborhood is empty.
	nearest, nearestD := -1, math.Inf(1)
	if s.oneNN {
		for j, base := range di {
			if j == i {
				continue
			}
			dc := ci - col[j]
			if d2 := base + dc*dc; d2 < nearestD {
				nearest, nearestD = j, d2
			}
		}
		return s.labels[nearest]
	}
	r2 := s.radius * s.radius
	var votes [ml.NumClasses + 1]int
	var bestInClass [ml.NumClasses + 1]float64
	for k := range bestInClass {
		bestInClass[k] = math.Inf(1)
	}
	found := 0
	for j, base := range di {
		if j == i {
			continue
		}
		dc := ci - col[j]
		d2 := base + dc*dc
		if d2 < nearestD {
			nearest, nearestD = j, d2
		}
		if d2 > r2 {
			continue
		}
		found++
		votes[s.labels[j]]++
		if d2 < bestInClass[s.labels[j]] {
			bestInClass[s.labels[j]] = d2
		}
	}
	if found == 0 {
		return s.labels[nearest]
	}
	best := 0
	for label := 1; label <= ml.NumClasses; label++ {
		if votes[label] == 0 {
			continue
		}
		switch {
		case best == 0, votes[label] > votes[best]:
			best = label
		case votes[label] == votes[best] && bestInClass[label] < bestInClass[best]:
			best = label
		}
	}
	return best
}

// Commit implements ml.SelectSession: folds the round winner's
// single-feature contribution into the committed distance matrix.
func (s *selectSession) Commit(f int) error {
	if f < 0 || f >= len(s.cols) {
		return fmt.Errorf("nn: commit feature %d out of range", f)
	}
	linalg.AddSqColumn(s.dist, s.cols[f])
	s.committed++
	return nil
}
