package nn

import (
	"testing"

	"metaopt/internal/ml"
	"metaopt/internal/ml/mltest"
)

func TestSeparableClustersClassify(t *testing.T) {
	d := mltest.Clusters(120, 6, 4, 0.05, 1)
	tr := &Trainer{}
	c, err := tr.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, e := range d.Examples {
		if c.Predict(e.Features) == e.Label {
			hits++
		}
	}
	if frac := float64(hits) / float64(d.Len()); frac < 0.95 {
		t.Errorf("training-set accuracy %.2f on separable data", frac)
	}
}

func TestLOOCVOnSeparableData(t *testing.T) {
	d := mltest.Clusters(120, 6, 4, 0.05, 2)
	tr := &Trainer{}
	preds, err := ml.LOOCV(tr, d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(d, preds); acc < 0.9 {
		t.Errorf("LOOCV accuracy = %.2f", acc)
	}
}

func TestNoisyDataDegrades(t *testing.T) {
	clean := mltest.Clusters(150, 6, 4, 0.05, 3)
	noisy := mltest.NoisyLabels(clean, 0.4, 3)
	tr := &Trainer{}
	cleanPreds, err := ml.LOOCV(tr, clean)
	if err != nil {
		t.Fatal(err)
	}
	noisyPreds, err := ml.LOOCV(tr, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if ml.Accuracy(noisy, noisyPreds) >= ml.Accuracy(clean, cleanPreds) {
		t.Error("label noise should reduce LOOCV accuracy")
	}
}

func TestOneNNMode(t *testing.T) {
	d := mltest.Clusters(60, 4, 3, 0.05, 4)
	tr := &Trainer{OneNN: true}
	c, err := tr.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	// 1-NN on the training set is trivially perfect (self-match).
	for _, e := range d.Examples {
		if c.Predict(e.Features) != e.Label {
			t.Fatal("1-NN training prediction missed itself")
		}
	}
	// LOOCV excludes self and must still be strong on separable data.
	preds, err := tr.LOOCV(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(d, preds); acc < 0.9 {
		t.Errorf("LOO-1NN accuracy = %.2f", acc)
	}
}

func TestFallbackToNearestWhenNoNeighbors(t *testing.T) {
	// A tiny radius forces the fallback path.
	d := mltest.Clusters(40, 4, 4, 0.05, 5)
	tr := &Trainer{Radius: 1e-9}
	preds, err := tr.LOOCV(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(d, preds); acc < 0.8 {
		t.Errorf("fallback accuracy = %.2f", acc)
	}
}

func TestConfidence(t *testing.T) {
	d := mltest.Clusters(80, 4, 4, 0.05, 6)
	tr := &Trainer{}
	ci, err := tr.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	c := ci.(*Classifier)
	n, agree := c.Confidence(d.Examples[0].Features)
	if n == 0 {
		t.Fatal("no neighbors at a training point")
	}
	if agree <= 0 || agree > 1 {
		t.Errorf("agreement = %v", agree)
	}
}

func TestRejectsTinyDataset(t *testing.T) {
	d := mltest.Clusters(1, 3, 1, 0.1, 7)
	d.Examples[0].Label = 1
	tr := &Trainer{}
	if _, err := tr.LOOCV(d); err == nil {
		t.Error("expected error for 1-example LOOCV")
	}
}

func TestDefaultRadiusUsed(t *testing.T) {
	tr := &Trainer{}
	if tr.radius() != DefaultRadius {
		t.Errorf("radius = %v", tr.radius())
	}
	tr.Radius = 0.5
	if tr.radius() != 0.5 {
		t.Errorf("radius = %v", tr.radius())
	}
}
