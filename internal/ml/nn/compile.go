package nn

import "metaopt/internal/ml/compiled"

var _ compiled.Compiler = (*Classifier)(nil)

// Compile lowers the database into a flat exemplar-table program: the
// normalized rows pack into one contiguous slab with a float32 mirror and
// precomputed squared norms, so a serve-time query streams the table
// instead of chasing row slices.
func (c *Classifier) Compile() (*compiled.Program, error) {
	return compiled.NewNN(c.norm, c.rows, c.labels, c.radius, c.oneNN)
}
