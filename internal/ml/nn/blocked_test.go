package nn

import (
	"testing"

	"metaopt/internal/linalg"
	"metaopt/internal/ml"
	"metaopt/internal/ml/mltest"
)

// TestLOOCVDenseMatchesDirect pins the blocked-distance-matrix LOOCV path
// to the per-fold predict scan, in both voting modes.
func TestLOOCVDenseMatchesDirect(t *testing.T) {
	d := mltest.Clusters(150, 5, 4, 0.25, 7)
	for _, oneNN := range []bool{false, true} {
		tr := &Trainer{OneNN: oneNN}
		got, err := tr.LOOCV(d)
		if err != nil {
			t.Fatal(err)
		}
		ci, err := tr.Train(d)
		if err != nil {
			t.Fatal(err)
		}
		c := ci.(*Classifier)
		for i := range d.Examples {
			if want := c.predict(c.rows[i], i); got[i] != want {
				t.Fatalf("oneNN=%v fold %d: dense pred %d, direct %d", oneNN, i, got[i], want)
			}
		}
	}
}

// TestPairwiseMatchesSqDist checks the blocked kernel entry-by-entry
// against direct SqDist calls.
func TestPairwiseMatchesSqDist(t *testing.T) {
	d := mltest.Clusters(70, 6, 3, 0.3, 9)
	tr := &Trainer{}
	ci, err := tr.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	rows := ci.(*Classifier).rows
	n := len(rows)
	dist := linalg.PairwiseSqDistInto(rows, nil)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if want := linalg.SqDist(rows[i], rows[j]); dist[i*n+j] != want {
				t.Fatalf("dist[%d][%d] = %v, SqDist = %v", i, j, dist[i*n+j], want)
			}
		}
	}
}

// TestSelectSessionMatchesSubsetScoring checks that incremental candidate
// scores equal the error of projecting the subset and running LOOCV on it —
// the exact computation the slow greedy path performs — across several
// rounds and both voting modes.
func TestSelectSessionMatchesSubsetScoring(t *testing.T) {
	d := mltest.Clusters(90, 6, 4, 0.3, 11)
	dim := len(d.Examples[0].Features)
	for _, oneNN := range []bool{false, true} {
		tr := &Trainer{OneNN: oneNN}
		sessI, err := tr.BeginSelect(d, 1)
		if err != nil {
			t.Fatal(err)
		}
		var chosen []int
		for round := 0; round < 3; round++ {
			bestF, bestErr := -1, 2.0
			for f := 0; f < dim; f++ {
				already := false
				for _, c := range chosen {
					already = already || c == f
				}
				if already {
					continue
				}
				got, err := sessI.Score(0, chosen, f)
				if err != nil {
					t.Fatal(err)
				}
				sub := d.Select(append(append([]int{}, chosen...), f))
				preds, err := tr.LOOCV(sub)
				if err != nil {
					t.Fatal(err)
				}
				want := 1 - ml.Accuracy(sub, preds)
				if got != want {
					t.Fatalf("oneNN=%v round %d feature %d: session %v, subset %v", oneNN, round, f, got, want)
				}
				if got < bestErr {
					bestF, bestErr = f, got
				}
			}
			if err := sessI.Commit(bestF); err != nil {
				t.Fatal(err)
			}
			chosen = append(chosen, bestF)
		}
	}
}

// TestPredictZeroAllocs pins the pooled query buffer: a warmed classifier
// answers queries with zero heap allocations.
func TestPredictZeroAllocs(t *testing.T) {
	d := mltest.Clusters(120, 6, 4, 0.05, 5)
	for _, oneNN := range []bool{false, true} {
		c, err := (&Trainer{OneNN: oneNN}).Train(d)
		if err != nil {
			t.Fatal(err)
		}
		q := d.Examples[3].Features
		c.Predict(q) // warm the pool
		if allocs := testing.AllocsPerRun(100, func() { c.Predict(q) }); allocs != 0 {
			t.Errorf("oneNN=%v: Predict allocates %v per run, want 0", oneNN, allocs)
		}
	}
}
