package nn

import (
	"testing"

	"metaopt/internal/ml"
	"metaopt/internal/ml/mltest"
)

// liteCopy strips the feature rows, leaving a column-only dataset of the
// kind the mmap'd colstore reader serves, backed by chunks of the given
// size.
func liteCopy(t *testing.T, d *ml.Dataset, chunkRows int) *ml.Dataset {
	t.Helper()
	n := d.Len()
	dim := len(d.Examples[0].Features)
	var chunks []ml.ColChunk
	labels := make([]int, 0, n)
	for s := 0; s < n; s += chunkRows {
		e := min(s+chunkRows, n)
		feats := make([][]float64, dim)
		for j := range feats {
			feats[j] = make([]float64, e-s)
			for r := s; r < e; r++ {
				feats[j][r-s] = d.Examples[r].Features[j]
			}
		}
		chunks = append(chunks, ml.ColChunk{Start: s, Rows: e - s, Feats: feats})
	}
	for _, ex := range d.Examples {
		labels = append(labels, ex.Label)
	}
	cols, err := ml.NewColumns(dim, labels, chunks)
	if err != nil {
		t.Fatal(err)
	}
	lite := &ml.Dataset{FeatureNames: d.FeatureNames, Cols: cols}
	for _, ex := range d.Examples {
		ex.Features = nil
		lite.Examples = append(lite.Examples, ex)
	}
	return lite
}

// TestColumnarLOOCVMatchesRows pins the columnar LOOCV fast path — both on
// a row dataset with an attached backing and on a column-only (out-of-core
// style) dataset, single- and multi-chunk — to the row path, prediction by
// prediction.
func TestColumnarLOOCVMatchesRows(t *testing.T) {
	d := mltest.Clusters(150, 5, 4, 0.25, 7)
	for _, oneNN := range []bool{false, true} {
		tr := &Trainer{OneNN: oneNN}
		want, err := tr.LOOCV(d)
		if err != nil {
			t.Fatal(err)
		}
		backed := mltest.Clusters(150, 5, 4, 0.25, 7)
		backed.BuildColumns()
		if backed.UsableCols() == nil {
			t.Fatal("BuildColumns did not attach a usable backing")
		}
		for name, ds := range map[string]*ml.Dataset{
			"attached":         backed,
			"lite one chunk":   liteCopy(t, d, 150),
			"lite multi chunk": liteCopy(t, d, 33),
		} {
			got, err := tr.LOOCV(ds)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("oneNN=%v %s fold %d: columnar %d, rows %d", oneNN, name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBlockedLOOCVMatchesDense forces the out-of-core blocked kernel at
// small n and pins it to the dense columnar path and the row path.
func TestBlockedLOOCVMatchesDense(t *testing.T) {
	d := mltest.Clusters(200, 6, 4, 0.3, 13)
	defer func(old int) { denseRowsCap = old }(denseRowsCap)
	for _, oneNN := range []bool{false, true} {
		tr := &Trainer{OneNN: oneNN}
		denseRowsCap = maxDenseRows
		want, err := tr.LOOCV(d)
		if err != nil {
			t.Fatal(err)
		}
		denseRowsCap = 16 // every columnar dataset now takes the blocked path
		for name, ds := range map[string]*ml.Dataset{
			"lite one chunk":   liteCopy(t, d, 200),
			"lite multi chunk": liteCopy(t, d, 47),
		} {
			got, err := tr.LOOCV(ds)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("oneNN=%v %s fold %d: blocked %d, dense %d", oneNN, name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestColumnarSelectMatchesRows drives three greedy rounds on the row
// session, the dense columnar session, and the blocked low-memory session
// in parallel, requiring identical scores (to the bit) and identical picks.
func TestColumnarSelectMatchesRows(t *testing.T) {
	d := mltest.Clusters(90, 6, 4, 0.3, 11)
	dim := len(d.Examples[0].Features)
	defer func(old int) { denseRowsCap = old }(denseRowsCap)
	for _, oneNN := range []bool{false, true} {
		tr := &Trainer{OneNN: oneNN}
		denseRowsCap = maxDenseRows
		rowSess, err := tr.BeginSelect(d, 1)
		if err != nil {
			t.Fatal(err)
		}
		colSess, err := tr.BeginSelect(liteCopy(t, d, 29), 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := colSess.(*selectSession); !ok {
			t.Fatalf("columnar dense session is %T", colSess)
		}
		denseRowsCap = 16
		lowSess, err := tr.BeginSelect(liteCopy(t, d, 29), 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := lowSess.(*selectSessionLowMem); !ok {
			t.Fatalf("low-memory session is %T", lowSess)
		}
		var chosen []int
		for round := 0; round < 3; round++ {
			bestF, bestErr := -1, 2.0
			for f := 0; f < dim; f++ {
				already := false
				for _, c := range chosen {
					already = already || c == f
				}
				if already {
					continue
				}
				want, err := rowSess.Score(0, chosen, f)
				if err != nil {
					t.Fatal(err)
				}
				if got, err := colSess.Score(0, chosen, f); err != nil || got != want {
					t.Fatalf("oneNN=%v round %d feature %d: dense columnar %v (%v), rows %v", oneNN, round, f, got, err, want)
				}
				if got, err := lowSess.Score(f%2, chosen, f); err != nil || got != want {
					t.Fatalf("oneNN=%v round %d feature %d: blocked %v (%v), rows %v", oneNN, round, f, got, err, want)
				}
				if want < bestErr {
					bestF, bestErr = f, want
				}
			}
			for _, s := range []ml.SelectSession{rowSess, colSess, lowSess} {
				if err := s.Commit(bestF); err != nil {
					t.Fatal(err)
				}
			}
			chosen = append(chosen, bestF)
		}
	}
}

// TestTrainRejectsColumnOnly documents the serving restriction: a classifier
// that answers arbitrary queries needs materialized rows.
func TestTrainRejectsColumnOnly(t *testing.T) {
	d := mltest.Clusters(40, 4, 3, 0.2, 3)
	lite := liteCopy(t, d, 40)
	if _, err := (&Trainer{}).Train(lite); err == nil {
		t.Fatal("Train accepted a column-only dataset")
	}
}
