// Package nn implements the paper's near-neighbor classifier: examples are
// normalized so every feature weighs equally, a query is answered by the
// most common label among training examples within a fixed radius (0.3 in
// the paper), and queries with no neighbors fall back to the single nearest
// example. A pure 1-NN mode supports the greedy feature-selection
// experiments, which use the single closest point.
package nn

import (
	"fmt"
	"math"
	"sync"

	"metaopt/internal/linalg"
	"metaopt/internal/ml"
)

// DefaultRadius is the neighborhood radius the paper determined
// experimentally.
const DefaultRadius = 0.3

// Trainer configures near-neighbor classification.
type Trainer struct {
	// Radius of the voting neighborhood in normalized feature space.
	// Zero means DefaultRadius.
	Radius float64

	// OneNN uses the single nearest example instead of radius voting.
	OneNN bool
}

// Classifier is a populated near-neighbor database.
type Classifier struct {
	norm       *ml.Norm
	rows       [][]float64
	labels     []int
	names      []string
	benchmarks []string
	radius     float64
	oneNN      bool

	// qbuf pools normalized-query buffers so Predict performs zero heap
	// allocations in steady state.
	qbuf sync.Pool
}

var _ ml.Classifier = (*Classifier)(nil)
var _ ml.LOOCVer = (*Trainer)(nil)
var _ ml.SelectScorer = (*Trainer)(nil)

func (t *Trainer) radius() float64 {
	if t.Radius > 0 {
		return t.Radius
	}
	return DefaultRadius
}

// Train populates the database. Near-neighbor "training" is just
// normalization plus storage.
func (t *Trainer) Train(d *ml.Dataset) (ml.Classifier, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if !d.HasRows() {
		return nil, fmt.Errorf("nn: training a serving classifier needs materialized feature rows; column-only datasets support LOOCV and selection")
	}
	norm := ml.FitNorm(d)
	c := &Classifier{
		norm:   norm,
		rows:   norm.ApplyAll(d),
		radius: t.radius(),
		oneNN:  t.OneNN,
	}
	for _, e := range d.Examples {
		c.labels = append(c.labels, e.Label)
		c.names = append(c.names, e.Name)
		c.benchmarks = append(c.benchmarks, e.Benchmark)
	}
	return c, nil
}

// Predict classifies a raw feature vector.
func (c *Classifier) Predict(features []float64) int {
	bp, _ := c.qbuf.Get().(*[]float64)
	if bp == nil || cap(*bp) < len(features) {
		bp = new([]float64)
		*bp = make([]float64, len(features))
	}
	pred := c.predict(c.norm.ApplyInto(features, (*bp)[:cap(*bp)]), -1)
	c.qbuf.Put(bp)
	return pred
}

// predict classifies a normalized query, optionally excluding one database
// index (for leave-one-out).
func (c *Classifier) predict(q []float64, exclude int) int {
	if c.oneNN {
		return c.labels[c.nearest(q, exclude)]
	}
	r2 := c.radius * c.radius
	var votes [ml.NumClasses + 1]int
	var bestInClass [ml.NumClasses + 1]float64
	for i := range bestInClass {
		bestInClass[i] = math.Inf(1)
	}
	found := 0
	for i, row := range c.rows {
		if i == exclude {
			continue
		}
		d2 := linalg.SqDist(q, row)
		if d2 > r2 {
			continue
		}
		found++
		votes[c.labels[i]]++
		if d2 < bestInClass[c.labels[i]] {
			bestInClass[c.labels[i]] = d2
		}
	}
	if found == 0 {
		// Low confidence: fall back to the single nearest example.
		return c.labels[c.nearest(q, exclude)]
	}
	best := 0
	for label := 1; label <= ml.NumClasses; label++ {
		if votes[label] == 0 {
			continue
		}
		switch {
		case best == 0, votes[label] > votes[best]:
			best = label
		case votes[label] == votes[best] && bestInClass[label] < bestInClass[best]:
			// Tie: prefer the class with the closer exemplar.
			best = label
		}
	}
	return best
}

// Confidence reports the size of the voting neighborhood and the agreement
// of its majority class for a query — the paper's outlier-detection signal.
func (c *Classifier) Confidence(features []float64) (neighbors int, agreement float64) {
	q := c.norm.Apply(features)
	r2 := c.radius * c.radius
	var votes [ml.NumClasses + 1]int
	for i, row := range c.rows {
		if linalg.SqDist(q, row) <= r2 {
			neighbors++
			votes[c.labels[i]]++
		}
	}
	if neighbors == 0 {
		return 0, 0
	}
	max := 0
	for _, v := range votes {
		if v > max {
			max = v
		}
	}
	return neighbors, float64(max) / float64(neighbors)
}

func (c *Classifier) nearest(q []float64, exclude int) int {
	best, bestD := -1, math.Inf(1)
	for i, row := range c.rows {
		if i == exclude {
			continue
		}
		if d := linalg.SqDist(q, row); d < bestD {
			best, bestD = i, d
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// maxDenseRows bounds the examples for which the LOOCV fast path
// materializes the n×n distance matrix (4096² float64 = 128 MB).
const maxDenseRows = 4096

// predictRow is predict with the distances to the whole database already
// computed (one row of the pairwise matrix). Same neighbor scan, same tie
// handling — the distance values are bit-identical, so so are the answers.
func (c *Classifier) predictRow(d2s []float64, exclude int) int {
	if c.oneNN {
		return c.labels[nearestRow(d2s, exclude)]
	}
	r2 := c.radius * c.radius
	var votes [ml.NumClasses + 1]int
	var bestInClass [ml.NumClasses + 1]float64
	for i := range bestInClass {
		bestInClass[i] = math.Inf(1)
	}
	found := 0
	for i, d2 := range d2s {
		if i == exclude || d2 > r2 {
			continue
		}
		found++
		votes[c.labels[i]]++
		if d2 < bestInClass[c.labels[i]] {
			bestInClass[c.labels[i]] = d2
		}
	}
	if found == 0 {
		return c.labels[nearestRow(d2s, exclude)]
	}
	best := 0
	for label := 1; label <= ml.NumClasses; label++ {
		if votes[label] == 0 {
			continue
		}
		switch {
		case best == 0, votes[label] > votes[best]:
			best = label
		case votes[label] == votes[best] && bestInClass[label] < bestInClass[best]:
			best = label
		}
	}
	return best
}

func nearestRow(d2s []float64, exclude int) int {
	best, bestD := -1, math.Inf(1)
	for i, d := range d2s {
		if i == exclude {
			continue
		}
		if d < bestD {
			best, bestD = i, d
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// LOOCV classifies every example against the rest of the database. The
// normalization statistics come from the full dataset, matching how the
// paper's Matlab prototype normalized once before cross-validating. The
// pairwise distances are materialized once in cache-friendly blocks, so
// each of the n folds scans one precomputed row instead of re-walking the
// n×dim feature matrix.
func (t *Trainer) LOOCV(d *ml.Dataset) ([]int, error) {
	if d.Len() < 2 {
		return nil, fmt.Errorf("nn: LOOCV needs at least 2 examples")
	}
	if cols := d.UsableCols(); cols != nil {
		return t.loocvColumnar(d, cols)
	}
	ci, err := t.Train(d)
	if err != nil {
		return nil, err
	}
	c := ci.(*Classifier)
	n := d.Len()
	preds := make([]int, n)
	if n <= denseRowsCap {
		dist := linalg.PairwiseSqDistInto(c.rows, nil)
		for i := range preds {
			preds[i] = c.predictRow(dist[i*n:(i+1)*n], i)
		}
		return preds, nil
	}
	for i := range d.Examples {
		preds[i] = c.predict(c.rows[i], i)
	}
	return preds, nil
}
