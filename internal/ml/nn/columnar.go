package nn

import (
	"fmt"
	"math"

	"metaopt/internal/linalg"
	"metaopt/internal/ml"
)

// denseRowsCap mirrors maxDenseRows as a variable so tests can force the
// blocked out-of-core paths at small n.
var denseRowsCap = maxDenseRows

// blockRows is the block edge of the out-of-core kernel: queries and
// database rows are processed blockRows at a time, so the working set is one
// blockRows² distance tile plus two normalized feature blocks — a few MB —
// regardless of corpus size.
const blockRows = 512

// foldState accumulates one query's neighborhood across database blocks. It
// carries exactly the state predict builds in its single scan: radius votes,
// the closest exemplar per class, and the global nearest neighbor (strict <,
// first index wins) for the low-confidence fallback and 1-NN mode.
type foldState struct {
	votes    [ml.NumClasses + 1]int
	best     [ml.NumClasses + 1]float64
	found    int
	nearest  int
	nearestD float64
}

func (st *foldState) reset() {
	st.votes = [ml.NumClasses + 1]int{}
	for i := range st.best {
		st.best[i] = math.Inf(1)
	}
	st.found = 0
	st.nearest = -1
	st.nearestD = math.Inf(1)
}

// observe folds in one database row at global index gj with squared distance
// d2 — the same updates predict makes per row, in the same row order.
func (st *foldState) observe(gj int, d2, r2 float64, label int) {
	if d2 < st.nearestD {
		st.nearest, st.nearestD = gj, d2
	}
	if d2 > r2 {
		return
	}
	st.found++
	st.votes[label]++
	if d2 < st.best[label] {
		st.best[label] = d2
	}
}

// finish resolves the prediction with predict's exact tie rules.
func (st *foldState) finish(labels []int, oneNN bool) int {
	if oneNN || st.found == 0 {
		if st.nearest < 0 {
			return labels[0]
		}
		return labels[st.nearest]
	}
	best := 0
	for label := 1; label <= ml.NumClasses; label++ {
		if st.votes[label] == 0 {
			continue
		}
		switch {
		case best == 0, st.votes[label] > st.votes[best]:
			best = label
		case st.votes[label] == st.votes[best] && st.best[label] < st.best[best]:
			best = label
		}
	}
	return best
}

// blockScratch is one worker's reusable buffers for the blocked kernel.
type blockScratch struct {
	qcols  [][]float64 // normalized query block, one column per feature
	dcol   []float64   // normalized database block, one feature at a time
	tile   []float64   // blockRows×blockRows partial squared distances
	states []foldState
}

func newBlockScratch(nfeats int) *blockScratch {
	sc := &blockScratch{
		qcols:  make([][]float64, nfeats),
		dcol:   make([]float64, blockRows),
		tile:   make([]float64, blockRows*blockRows),
		states: make([]foldState, blockRows),
	}
	for i := range sc.qcols {
		sc.qcols[i] = make([]float64, blockRows)
	}
	return sc
}

func (sc *blockScratch) grow(nfeats int) {
	for len(sc.qcols) < nfeats {
		sc.qcols = append(sc.qcols, make([]float64, blockRows))
	}
}

// blockedLOOCV computes leave-one-out predictions for query rows [qlo, qhi)
// against the whole column backing, streaming both sides block by block.
// feats gives the feature columns in accumulation order; the tile starts at
// zero and adds one squared difference per feature, which is the identical
// float addition sequence SqDist performs over a row — so every distance,
// vote, and tie resolution matches the in-memory path bit for bit. Database
// blocks advance in row order, preserving the first-index-wins nearest rule.
func blockedLOOCV(cols *ml.Columns, norm *ml.Norm, feats []int, radius float64, oneNN bool, qlo, qhi int, sc *blockScratch, preds []int) {
	n := cols.N
	labels := cols.Labels
	r2 := radius * radius
	sc.grow(len(feats))
	for qs := qlo; qs < qhi; qs += blockRows {
		qe := min(qs+blockRows, qhi)
		qb := qe - qs
		states := sc.states[:qb]
		for i := range states {
			states[i].reset()
		}
		for fi, f := range feats {
			norm.ApplyColumnRange(cols, f, qs, qe, sc.qcols[fi])
		}
		for ds := 0; ds < n; ds += blockRows {
			de := min(ds+blockRows, n)
			db := de - ds
			tile := sc.tile[:qb*db]
			clear(tile)
			for fi, f := range feats {
				dcol := norm.ApplyColumnRange(cols, f, ds, de, sc.dcol)
				qcol := sc.qcols[fi][:qb]
				for qi, qv := range qcol {
					row := tile[qi*db : qi*db+db]
					for j, dv := range dcol {
						d := qv - dv
						row[j] += d * d
					}
				}
			}
			for qi := range states {
				st := &states[qi]
				gq := qs + qi
				row := tile[qi*db : qi*db+db]
				for j, d2 := range row {
					if gj := ds + j; gj != gq {
						st.observe(gj, d2, r2, labels[gj])
					}
				}
			}
		}
		for qi := range states {
			preds[qs+qi-qlo] = states[qi].finish(labels, oneNN)
		}
	}
}

// loocvColumnar is the LOOCV fast path for datasets with a column backing.
// At dense sizes it materializes the pairwise matrix from normalized columns
// (bit-identical to the row build — see linalg.PairwiseSqDistColsInto);
// beyond denseRowsCap it streams the blocked kernel in bounded memory, which
// is what lets a 10×–100× corpus cross-validate from an mmap'd file without
// the n×n matrix or per-row heap copies.
func (t *Trainer) loocvColumnar(d *ml.Dataset, cols *ml.Columns) ([]int, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	norm := ml.FitNorm(d)
	n := cols.N
	preds := make([]int, n)
	feats := make([]int, cols.Dim)
	for f := range feats {
		feats[f] = f
	}
	if n <= denseRowsCap {
		ncols := norm.ApplyColumns(cols)
		dist := linalg.PairwiseSqDistColsInto(ncols, n, nil)
		c := &Classifier{labels: cols.Labels, radius: t.radius(), oneNN: t.OneNN}
		for i := range preds {
			preds[i] = c.predictRow(dist[i*n:(i+1)*n], i)
		}
		return preds, nil
	}
	blockedLOOCV(cols, norm, feats, t.radius(), t.OneNN, 0, n, newBlockScratch(len(feats)), preds)
	return preds, nil
}

// selectSessionLowMem scores greedy forward selection without the n×n
// committed-distance matrix: each candidate is priced by re-running the
// blocked kernel over committed features plus the candidate. That trades
// O(n²·k) work per candidate for O(blockRows²) memory — the only shape that
// scales greedy selection past the dense cap.
type selectSessionLowMem struct {
	cols      *ml.Columns
	norm      *ml.Norm
	committed []int
	radius    float64
	oneNN     bool
	scratch   []*blockScratch
	preds     [][]int
}

// Score implements ml.SelectSession.
func (s *selectSessionLowMem) Score(worker int, chosen []int, cand int) (float64, error) {
	if len(chosen) != len(s.committed) {
		return 0, fmt.Errorf("nn: selection session out of sync: %d chosen, %d committed", len(chosen), len(s.committed))
	}
	if cand < 0 || cand >= s.cols.Dim {
		return 0, fmt.Errorf("nn: candidate feature %d out of range", cand)
	}
	if worker < 0 || worker >= len(s.scratch) {
		return 0, fmt.Errorf("nn: worker %d out of range", worker)
	}
	feats := append(append(make([]int, 0, len(s.committed)+1), s.committed...), cand)
	n := s.cols.N
	preds := s.preds[worker]
	blockedLOOCV(s.cols, s.norm, feats, s.radius, s.oneNN, 0, n, s.scratch[worker], preds)
	hit := 0
	for i, p := range preds {
		if p == s.cols.Labels[i] {
			hit++
		}
	}
	return 1 - float64(hit)/float64(n), nil
}

// Commit implements ml.SelectSession.
func (s *selectSessionLowMem) Commit(f int) error {
	if f < 0 || f >= s.cols.Dim {
		return fmt.Errorf("nn: commit feature %d out of range", f)
	}
	s.committed = append(s.committed, f)
	return nil
}
