package nn

import (
	"encoding/json"
	"fmt"
	"math"

	"metaopt/internal/linalg"
	"metaopt/internal/ml"
)

// classifierJSON is the serialized form of a trained near-neighbor
// database.
type classifierJSON struct {
	Norm       *ml.Norm    `json:"norm"`
	Rows       [][]float64 `json:"rows"`
	Labels     []int       `json:"labels"`
	Names      []string    `json:"names,omitempty"`
	Benchmarks []string    `json:"benchmarks,omitempty"`
	Radius     float64     `json:"radius"`
	OneNN      bool        `json:"one_nn,omitempty"`
}

// MarshalJSON serializes the database so a trained predictor can ship
// inside a compiler.
func (c *Classifier) MarshalJSON() ([]byte, error) {
	return json.Marshal(classifierJSON{
		Norm:       c.norm,
		Rows:       c.rows,
		Labels:     c.labels,
		Names:      c.names,
		Benchmarks: c.benchmarks,
		Radius:     c.radius,
		OneNN:      c.oneNN,
	})
}

// UnmarshalJSON restores a serialized database.
func (c *Classifier) UnmarshalJSON(data []byte) error {
	var in classifierJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("nn: unmarshal: %w", err)
	}
	if in.Norm == nil || len(in.Rows) == 0 || len(in.Rows) != len(in.Labels) {
		return fmt.Errorf("nn: unmarshal: malformed classifier")
	}
	for _, label := range in.Labels {
		if label < 1 || label > ml.NumClasses {
			return fmt.Errorf("nn: unmarshal: label %d out of range", label)
		}
	}
	c.norm = in.Norm
	c.rows = in.Rows
	c.labels = in.Labels
	c.names = in.Names
	c.benchmarks = in.Benchmarks
	c.radius = in.Radius
	c.oneNN = in.OneNN
	if c.radius <= 0 {
		c.radius = DefaultRadius
	}
	return nil
}

// Neighbor describes one training example near a query.
type Neighbor struct {
	Name      string
	Benchmark string
	Label     int
	Dist      float64
}

// Neighbors returns the k nearest training examples to a raw query, nearest
// first — the paper's proposed outlier-inspection workflow.
func (c *Classifier) Neighbors(features []float64, k int) []Neighbor {
	q := c.norm.Apply(features)
	type cand struct {
		i int
		d float64
	}
	cands := make([]cand, len(c.rows))
	for i, row := range c.rows {
		cands[i] = cand{i, linalg.SqDist(q, row)}
	}
	// Partial selection sort: k is tiny.
	if k > len(cands) {
		k = len(cands)
	}
	for a := 0; a < k; a++ {
		best := a
		for b := a + 1; b < len(cands); b++ {
			if cands[b].d < cands[best].d {
				best = b
			}
		}
		cands[a], cands[best] = cands[best], cands[a]
	}
	out := make([]Neighbor, 0, k)
	for _, cd := range cands[:k] {
		n := Neighbor{Label: c.labels[cd.i], Dist: math.Sqrt(cd.d)}
		if cd.i < len(c.names) {
			n.Name = c.names[cd.i]
		}
		if cd.i < len(c.benchmarks) {
			n.Benchmark = c.benchmarks[cd.i]
		}
		out = append(out, n)
	}
	return out
}
