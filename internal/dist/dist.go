// Package dist is the fault-tolerant distributed labeling cluster: a
// coordinator that splits the loopgen corpus into shards of benchmarks and
// leases them to worker processes over HTTP/JSON, and the worker that labels
// its leased shard with core.CollectLabelsResumable and uploads the shard
// checkpoint back.
//
// The design is lease-based with fencing:
//
//   - every lease grant carries a fencing token from one monotonically
//     increasing counter; heartbeats extend the lease deadline only while
//     the token is current;
//   - a lease whose deadline passes is expired and its shard returned to
//     the pending pool; the next grant mints a larger token, so a zombie
//     worker's late heartbeat or upload (stale token) is rejected — a shard
//     is merged at most once;
//   - workers that keep failing (expired leases, reported errors) exhaust a
//     bounded failure budget and are quarantined: their lease requests are
//     refused instead of feeding a crash loop forever;
//   - uploads land through internal/atomicio and are sealed by an
//     append-only, fsynced manifest of (shard, fence, file, sha256)
//     records. The manifest is the coordinator's only durable state:
//     killing the coordinator at any instant — including mid-merge — and
//     restarting it replays the manifest, re-verifies every shard file
//     against its digest, re-leases whatever is missing, and produces a
//     merged dataset byte-identical to a single-process labelgen run.
//
// Byte-identity with the serial pipeline is structural, not incidental:
// each benchmark's noise stream is seeded by its name, so it does not
// matter which process measures it, and the final merge path is the
// existing checkpoint-resume path (unroll.CollectDatasetCheckpointed over a
// fully populated checkpoint), which recomputes every derived field exactly
// as an uninterrupted run would.
package dist

import (
	"fmt"
	"time"

	"metaopt/internal/obs"
	"metaopt/internal/sim"
	"metaopt/unroll"
)

// Fault-injection sites, armed by chaos tests and the FAULTS env on the
// real binaries (cmd/labelgen installs specs in both modes).
const (
	// SiteUpload fires in the coordinator's upload handler before the shard
	// file is written; an error here answers 500 and the worker retries.
	SiteUpload = "dist.upload"
	// SiteMerge fires when the coordinator enters the final merge; a
	// latency spec parks it there so a chaos harness can SIGKILL it
	// mid-merge deterministically.
	SiteMerge = "dist.merge"
	// SiteManifestAppend wraps the manifest append writer; a torn spec
	// leaves a partial trailing line, which replay must tolerate.
	SiteManifestAppend = "dist.manifest.append"
)

// Coordinator-side telemetry.
var (
	mLeasesGranted  = obs.C("dist.leases.granted")
	mLeasesExpired  = obs.C("dist.leases.expired")
	mLeasesFenced   = obs.C("dist.leases.fenced")
	mUploadsOK      = obs.C("dist.uploads.accepted")
	mUploadsFenced  = obs.C("dist.uploads.fenced")
	mUploadsBad     = obs.C("dist.uploads.rejected")
	mShardRetries   = obs.C("dist.shard_retries")
	mQuarantined    = obs.C("dist.workers.quarantined")
	mManifestReplay = obs.C("dist.manifest.replayed")
	mManifestDrop   = obs.C("dist.manifest.dropped")
	mShardCorrupt   = obs.C("dist.shards.corrupt")
	gShardsPending  = obs.G("dist.shards.pending")
	gShardsLeased   = obs.G("dist.shards.leased")
	gShardsDone     = obs.G("dist.shards.done")
	gShardsMerged   = obs.G("dist.shards.merged")
	gWorkersLive    = obs.G("dist.workers.live")
)

// Worker-side telemetry.
var (
	mWorkerLeases    = obs.C("dist.worker.leases")
	mWorkerShardsOK  = obs.C("dist.worker.shards_done")
	mWorkerFenced    = obs.C("dist.worker.fenced")
	mWorkerRetries   = obs.C("dist.worker.rpc_retries")
	mWorkerHeartbeat = obs.C("dist.worker.heartbeats")
)

// RunConfig is the labeling configuration the coordinator owns and workers
// inherit through their lease responses, so a fleet can never mix
// measurement setups. It mirrors the serial labelgen flags.
type RunConfig struct {
	Seed  int64   `json:"seed"`
	Scale float64 `json:"scale"`
	Runs  int     `json:"runs"`
	SWP   bool    `json:"swp"`

	// Replicate deterministically replicates the corpus (loopgen replica
	// seeds + "@rN" benchmark names); 0 or 1 is a single copy. Part of the
	// wire config so workers label the same 10×/100× corpus the
	// coordinator sharded.
	Replicate int `json:"replicate,omitempty"`
}

// Fingerprint renders the config as its canonical provenance string — the
// value recorded (and hashed) in columnar dataset headers.
func (rc RunConfig) Fingerprint() string {
	return fmt.Sprintf("seed=%d scale=%g runs=%d swp=%t replicate=%d",
		rc.Seed, rc.Scale, rc.Runs, rc.SWP, rc.Replicate)
}

// corpusFor generates the corpus a run configuration describes.
func corpusFor(rc RunConfig) (*unroll.Corpus, error) {
	return unroll.GenerateCorpusReplicated(rc.Seed, rc.Scale, rc.Replicate)
}

// timerFor builds the measurement timer for a run configuration, exactly
// as the serial collection path does (default Itanium-2 machine).
func timerFor(rc RunConfig) *sim.Timer {
	cfg := sim.DefaultConfig()
	cfg.SWP = rc.SWP
	if rc.Runs > 0 {
		cfg.Runs = rc.Runs
	}
	return sim.NewTimer(cfg)
}

// collectOptions is the unroll-level equivalent of a RunConfig.
func collectOptions(rc RunConfig) unroll.CollectOptions {
	return unroll.CollectOptions{Seed: rc.Seed, Runs: rc.Runs, SWP: rc.SWP}
}

// defaultDur returns d, or def when d is zero.
func defaultDur(d, def time.Duration) time.Duration {
	if d <= 0 {
		return def
	}
	return d
}
