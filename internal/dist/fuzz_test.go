package dist

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// roundTrip asserts that an accepted wire message is a decode/encode fixed
// point: decode → marshal → decode → marshal must reproduce the same bytes
// (the first marshal canonicalizes whitespace, e.g. inside RawMessage).
func roundTrip(t *testing.T, decoded any, decode func([]byte) (any, error)) {
	t.Helper()
	first, err := json.Marshal(decoded)
	if err != nil {
		t.Fatalf("re-encode accepted message: %v", err)
	}
	again, err := decode(first)
	if err != nil {
		t.Fatalf("re-decode of accepted message rejected: %v\n%s", err, first)
	}
	second, err := json.Marshal(again)
	if err != nil {
		t.Fatalf("second encode: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("round trip is not a fixed point:\n%s\n%s", first, second)
	}
}

// FuzzShardWire holds every shard/lease wire decoder to the contract:
// never panic on arbitrary bytes, and anything accepted survives an
// encode/decode round trip.
func FuzzShardWire(f *testing.F) {
	f.Add([]byte(`{"worker":"w1"}`))
	f.Add([]byte(`{"status":"lease","shard":3,"fence":7,"benchmarks":["b1","b2"],"ttl_ms":10000,"config":{"seed":7,"scale":0.02,"runs":2}}`))
	f.Add([]byte(`{"status":"wait","ttl_ms":10000}`))
	f.Add([]byte(`{"status":"stop"}`))
	f.Add([]byte(`{"worker":"w1","shard":0,"fence":1}`))
	f.Add([]byte(`{"worker":"w1","shard":0,"fence":1,"checkpoint":{"version":3}}`))
	f.Add([]byte(`{"worker":"w1","shard":0,"fence":1,"error":"boom"}`))
	f.Add([]byte(`{"status":"ok"}`))
	f.Add([]byte(`{"status":"fenced","reason":"lease is not current"}`))
	f.Add([]byte(`{"worker":"../etc"}`))
	f.Add([]byte(`{"worker":"w1"}{"worker":"w2"}`))
	f.Add([]byte(`null`))
	f.Add([]byte(strings.Repeat("[", 1000)))

	f.Fuzz(func(t *testing.T, data []byte) {
		if lr, err := DecodeLeaseRequest(bytes.NewReader(data)); err == nil {
			roundTrip(t, lr, func(b []byte) (any, error) { return DecodeLeaseRequest(bytes.NewReader(b)) })
		}
		if lr, err := DecodeLeaseResponse(bytes.NewReader(data)); err == nil {
			roundTrip(t, lr, func(b []byte) (any, error) { return DecodeLeaseResponse(bytes.NewReader(b)) })
		}
		if hb, err := DecodeHeartbeatRequest(bytes.NewReader(data)); err == nil {
			roundTrip(t, hb, func(b []byte) (any, error) { return DecodeHeartbeatRequest(bytes.NewReader(b)) })
		}
		if up, err := DecodeUploadRequest(bytes.NewReader(data)); err == nil {
			roundTrip(t, up, func(b []byte) (any, error) { return DecodeUploadRequest(bytes.NewReader(b)) })
		}
		if fr, err := DecodeFailRequest(bytes.NewReader(data)); err == nil {
			roundTrip(t, fr, func(b []byte) (any, error) { return DecodeFailRequest(bytes.NewReader(b)) })
		}
		if a, err := DecodeAck(bytes.NewReader(data)); err == nil {
			roundTrip(t, a, func(b []byte) (any, error) { return DecodeAck(bytes.NewReader(b)) })
		}
	})
}

// FuzzMergeManifest holds the merge-manifest decoder to: never panic,
// every replayed record is valid, shard ids are unique, and the replayed
// set re-encodes and re-decodes to itself.
func FuzzMergeManifest(f *testing.F) {
	rec := testRecordJSON(0, 1)
	f.Add([]byte(rec + "\n" + testRecordJSON(1, 2) + "\n"))
	f.Add([]byte(rec + "\n" + rec[:len(rec)/2]))          // torn tail
	f.Add([]byte(rec + "\n" + rec + "\n"))                // duplicate shard
	f.Add([]byte("\n\n" + rec + "\n"))                    // blank lines
	f.Add([]byte(`{"shard":-1,"fence":1}` + "\n"))        // invalid record
	f.Add([]byte(`{"shard":0,"fence":0,"file":"x"}` + "\n"))
	f.Add([]byte(strings.Repeat("x", 4096)))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := decodeManifest(bytes.NewReader(data))
		if err != nil {
			return
		}
		seen := map[int]bool{}
		for i := range recs {
			if err := recs[i].validate(); err != nil {
				t.Fatalf("replayed record %d is invalid: %v", i, err)
			}
			if seen[recs[i].Shard] {
				t.Fatalf("replayed duplicate shard %d", recs[i].Shard)
			}
			seen[recs[i].Shard] = true
		}
		// Re-encode and replay: a clean log must be a fixed point.
		var sb strings.Builder
		for i := range recs {
			line, err := json.Marshal(recs[i])
			if err != nil {
				t.Fatal(err)
			}
			sb.Write(line)
			sb.WriteByte('\n')
		}
		again, err := decodeManifest(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-decode of replayed records: %v", err)
		}
		if len(recs) == 0 {
			recs = nil // DeepEqual: empty and nil replay the same log
		}
		if !reflect.DeepEqual(recs, again) {
			t.Fatalf("manifest replay is not a fixed point:\n%+v\n%+v", recs, again)
		}
	})
}

func testRecordJSON(shard int, fence uint64) string {
	line, err := json.Marshal(testRecord(shard, fence))
	if err != nil {
		panic(err)
	}
	return string(line)
}
