package dist

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"metaopt/internal/atomicio"
	"metaopt/internal/core"
	"metaopt/internal/faults"
	"metaopt/unroll"
)

// MergedCheckpointName is the fully merged checkpoint the final dataset is
// reconstituted from, inside the coordinator's state directory.
const MergedCheckpointName = "merged.ckpt"

// Finish merges every sealed shard checkpoint into one full-run checkpoint
// and writes the final dataset to cfg.Out. It is a pure function of the
// sealed shard files, so it is safe to die anywhere inside it: a restarted
// coordinator replays the manifest, calls Finish again, and writes the
// same bytes (every file write is atomic, so a half-finished previous
// attempt is invisible).
//
// The reconstitution itself is the serial pipeline's checkpoint-resume
// path — unroll.CollectDatasetCheckpointed over a checkpoint in which
// every benchmark is present re-attaches the measurements and recomputes
// all derived fields exactly as an uninterrupted CollectDataset would,
// which is what makes the merged dataset byte-identical to a
// single-process labelgen run.
func (c *Coordinator) Finish() error {
	c.mu.Lock()
	if c.doneN != len(c.shards) {
		n := c.doneN
		c.mu.Unlock()
		return fmt.Errorf("dist: cannot merge with %d/%d shards sealed", n, len(c.shards))
	}
	shards := make([]*shardState, len(c.shards))
	copy(shards, c.shards)
	c.mu.Unlock()

	// Chaos hook: a latency spec parks the coordinator here so a harness
	// can SIGKILL it mid-merge; an error spec aborts the merge, which a
	// restart must complete identically.
	if err := faults.Check(SiteMerge); err != nil {
		return fmt.Errorf("dist: merge: %w", err)
	}

	merged := core.NewCheckpoint(timerFor(c.cfg.Run), c.cfg.Run.Seed)
	for i, sh := range shards {
		f, err := os.Open(filepath.Join(c.cfg.Dir, sh.file))
		if err != nil {
			return fmt.Errorf("dist: merge shard %d: %w", sh.id, err)
		}
		ck, err := core.DecodeCheckpoint(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("dist: merge shard %d: %w", sh.id, err)
		}
		// Merge refuses duplicated benchmarks, so a shard can never be
		// folded in twice even if the state dir was tampered with.
		if err := merged.Merge(ck); err != nil {
			return fmt.Errorf("dist: merge shard %d: %w", sh.id, err)
		}
		gShardsMerged.Set(int64(i + 1))
	}

	mergedPath := filepath.Join(c.cfg.Dir, MergedCheckpointName)
	if err := atomicio.WriteFile(mergedPath, merged.Encode); err != nil {
		return err
	}

	ds, err := unroll.CollectDatasetCheckpointed(c.corpus, collectOptions(c.cfg.Run),
		unroll.CheckpointOptions{Path: mergedPath, Resume: true})
	if err != nil {
		return fmt.Errorf("dist: reconstitute merged dataset: %w", err)
	}
	switch c.cfg.Format {
	case "colstore":
		// SaveColumnar streams through atomicio itself.
		if err := ds.SaveColumnar(c.cfg.Out, c.cfg.Run.Fingerprint()); err != nil {
			return err
		}
	case "csv":
		if err := atomicio.WriteFile(c.cfg.Out, ds.SaveCSV); err != nil {
			return err
		}
	default:
		if err := atomicio.WriteFile(c.cfg.Out, ds.Save); err != nil {
			return err
		}
	}
	c.mu.Lock()
	c.mergedFlag = true
	c.mu.Unlock()
	log.Printf("dist: merged %d shards into %s (%d examples)", len(shards), c.cfg.Out, ds.Len())
	return nil
}
