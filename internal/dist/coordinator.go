package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"metaopt/internal/atomicio"
	"metaopt/internal/core"
	"metaopt/internal/faults"
	"metaopt/internal/loopgen"
	"metaopt/internal/obs"
)

// Shard lifecycle. pending shards are grantable; leased shards have a live
// fence and deadline; done shards are sealed in the manifest.
const (
	shardPending = iota
	shardLeased
	shardDone
)

// CoordinatorConfig configures a labeling coordinator.
type CoordinatorConfig struct {
	Run    RunConfig // labeling configuration, the fleet's single source of truth
	Shards int       // shard count target (clamped to the benchmark count; default 16)
	Dir    string    // state directory: shard files, MANIFEST.jsonl, merged checkpoint
	Out    string    // final dataset path
	Format string    // "json", "csv" or "colstore" (default json)

	LeaseTTL          time.Duration // heartbeat-extended lease deadline (default 10s)
	MaxWorkerFailures int           // expiries+reported failures before quarantine (default 3)
	MaxShardAttempts  int           // lease grants per shard before the run aborts (default 6)
	Linger            time.Duration // how long to keep answering "stop" after the merge (default 2s)

	Now func() time.Time // injectable clock for tests
}

func (cfg *CoordinatorConfig) fill() error {
	if cfg.Dir == "" {
		return errors.New("dist: coordinator needs a state dir")
	}
	if cfg.Out == "" {
		return errors.New("dist: coordinator needs an output path")
	}
	if cfg.Run.Scale <= 0 {
		cfg.Run.Scale = 1.0
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	switch cfg.Format {
	case "":
		cfg.Format = "json"
	case "json", "csv", "colstore":
	default:
		return fmt.Errorf("dist: unknown dataset format %q", cfg.Format)
	}
	cfg.LeaseTTL = defaultDur(cfg.LeaseTTL, 10*time.Second)
	cfg.Linger = defaultDur(cfg.Linger, 2*time.Second)
	if cfg.MaxWorkerFailures <= 0 {
		cfg.MaxWorkerFailures = 3
	}
	if cfg.MaxShardAttempts <= 0 {
		cfg.MaxShardAttempts = 6
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return nil
}

// shardState is one shard's coordinator-side record.
type shardState struct {
	id         int
	benchmarks []string // sorted benchmark names
	state      int
	fence      uint64 // token of the current (or last) lease
	worker     string // holder of the current lease
	deadline   time.Time
	attempts   int    // lease grants so far
	file       string // checkpoint file name once done
}

// workerState tracks one worker's health.
type workerState struct {
	failures    int
	quarantined bool
	lastSeen    time.Time
}

// Coordinator owns the shard plan, the lease state machine, and the merge.
type Coordinator struct {
	cfg    CoordinatorConfig
	corpus *loopgen.Corpus

	mu      sync.Mutex
	shards  []*shardState
	byName  map[string]int // benchmark name → shard id (upload validation)
	workers map[string]*workerState
	fence      uint64 // monotonic fencing-token counter
	doneN      int
	failure    error // sticky: a poison shard aborts the run
	man        *manifestLog
	mergedFlag bool

	done chan struct{} // closed when every shard is sealed or the run fails
}

// NewCoordinator plans the shards, replays any existing manifest in
// cfg.Dir (verifying every sealed shard file against its digest), and
// returns a coordinator ready to serve. Restarting over the same directory
// resumes exactly where the killed process durably got to.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	corpus, err := corpusFor(cfg.Run)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	c := &Coordinator{
		cfg:     cfg,
		corpus:  corpus,
		byName:  map[string]int{},
		workers: map[string]*workerState{},
		done:    make(chan struct{}),
	}
	c.planShards()
	if err := c.replayManifest(); err != nil {
		return nil, err
	}
	c.man, err = openManifest(cfg.Dir)
	if err != nil {
		return nil, err
	}
	c.publishGauges()
	if c.doneN == len(c.shards) {
		close(c.done)
	}
	return c, nil
}

// planShards splits the corpus into contiguous, deterministic groups of
// benchmarks. Work is leased by benchmark name; both sides regenerate the
// corpus from (seed, scale), so shard contents never travel on the wire
// beyond the names.
func (c *Coordinator) planShards() {
	bs := c.corpus.Benchmarks
	n := c.cfg.Shards
	if n > len(bs) {
		n = len(bs)
	}
	for s := 0; s < n; s++ {
		lo, hi := s*len(bs)/n, (s+1)*len(bs)/n
		sh := &shardState{id: s}
		for _, b := range bs[lo:hi] {
			sh.benchmarks = append(sh.benchmarks, b.Name)
			c.byName[b.Name] = s
		}
		sort.Strings(sh.benchmarks)
		c.shards = append(c.shards, sh)
	}
}

// replayManifest restores sealed shards from the append-only log. A record
// is only honored when it names a planned shard with exactly the planned
// benchmarks and its file still hashes to the recorded digest; anything
// else demotes the shard to pending (counted) rather than trusting it.
func (c *Coordinator) replayManifest() error {
	recs, err := loadManifest(filepath.Join(c.cfg.Dir, ManifestName))
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if rec.Fence > c.fence {
			c.fence = rec.Fence
		}
		if rec.Shard >= len(c.shards) {
			mManifestDrop.Inc()
			continue
		}
		sh := c.shards[rec.Shard]
		if !equalStrings(sh.benchmarks, rec.Benchmarks) {
			mManifestDrop.Inc()
			log.Printf("dist: manifest shard %d covers different benchmarks than the plan; ignoring (stale state dir?)", rec.Shard)
			continue
		}
		path := filepath.Join(c.cfg.Dir, rec.File)
		sum, err := fileSHA256(path)
		if err != nil || sum != rec.SHA256 {
			mShardCorrupt.Inc()
			log.Printf("dist: shard %d file %s fails verification (%v); re-leasing", rec.Shard, rec.File, err)
			continue
		}
		sh.state = shardDone
		sh.fence = rec.Fence
		sh.file = rec.File
		c.doneN++
		mManifestReplay.Inc()
	}
	if c.doneN > 0 {
		log.Printf("dist: manifest replay restored %d/%d sealed shards", c.doneN, len(c.shards))
	}
	return nil
}

// Handler mounts the cluster protocol plus health and metrics endpoints.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/dist/lease", c.handleLease)
	mux.HandleFunc("POST /v1/dist/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/dist/upload", c.handleUpload)
	mux.HandleFunc("POST /v1/dist/fail", c.handleFail)
	mux.HandleFunc("GET /v1/dist/status", c.handleStatus)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default.WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// handleLease grants the lowest pending shard under a fresh fencing token.
// A worker that already holds a live lease (a fast crash-restart under the
// same name) gets its shard re-granted under a new token, which fences any
// zombie twin still holding the old one.
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeLeaseRequest(http.MaxBytesReader(w, r.Body, maxWireBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, Ack{Status: StatusFenced, Reason: err.Error()})
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	ws := c.workerLocked(req.Worker, now)
	if ws.quarantined {
		writeJSON(w, http.StatusOK, LeaseResponse{Status: StatusQuarantined})
		return
	}
	if c.failure != nil || c.doneN == len(c.shards) {
		writeJSON(w, http.StatusOK, LeaseResponse{Status: StatusStop})
		return
	}
	var grant *shardState
	for _, sh := range c.shards {
		if sh.state == shardLeased && sh.worker == req.Worker {
			grant = sh // re-grant after a fast restart; fences the old lease
			break
		}
	}
	if grant == nil {
		for _, sh := range c.shards {
			if sh.state == shardPending {
				grant = sh
				break
			}
		}
	}
	if grant == nil {
		writeJSON(w, http.StatusOK, LeaseResponse{Status: StatusWait, TTLMillis: c.cfg.LeaseTTL.Milliseconds()})
		return
	}
	grant.attempts++
	if grant.attempts > c.cfg.MaxShardAttempts {
		c.failLocked(fmt.Errorf("dist: shard %d failed %d lease attempts; aborting the run", grant.id, grant.attempts-1))
		writeJSON(w, http.StatusOK, LeaseResponse{Status: StatusStop})
		return
	}
	if grant.attempts > 1 {
		mShardRetries.Inc()
	}
	c.fence++
	grant.state = shardLeased
	grant.fence = c.fence
	grant.worker = req.Worker
	grant.deadline = now.Add(c.cfg.LeaseTTL)
	mLeasesGranted.Inc()
	c.publishGauges()
	writeJSON(w, http.StatusOK, LeaseResponse{
		Status:     StatusLease,
		Shard:      grant.id,
		Fence:      grant.fence,
		Benchmarks: append([]string(nil), grant.benchmarks...),
		TTLMillis:  c.cfg.LeaseTTL.Milliseconds(),
		Config:     c.cfg.Run,
	})
}

// handleHeartbeat extends a live lease; anything else answers fenced.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	hb, err := DecodeHeartbeatRequest(http.MaxBytesReader(w, r.Body, maxWireBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, Ack{Status: StatusFenced, Reason: err.Error()})
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.workerLocked(hb.Worker, now)
	sh := c.shardLocked(hb.Shard)
	if sh == nil || sh.state != shardLeased || sh.fence != hb.Fence || sh.worker != hb.Worker {
		mLeasesFenced.Inc()
		writeJSON(w, http.StatusOK, Ack{Status: StatusFenced, Reason: "lease is not current"})
		return
	}
	sh.deadline = now.Add(c.cfg.LeaseTTL)
	writeJSON(w, http.StatusOK, Ack{Status: StatusOK})
}

// handleUpload seals a shard: the fence must be the shard's current live
// lease (at-most-once semantics — an expired or reassigned lease's token
// is rejected), the checkpoint must match the run configuration and cover
// exactly the shard's benchmarks, and the record only counts once the
// shard file is durable and its manifest line fsynced. Re-uploading an
// already sealed shard under its sealing fence is acknowledged idempotently
// (the worker may have missed the first ack).
func (c *Coordinator) handleUpload(w http.ResponseWriter, r *http.Request) {
	up, err := DecodeUploadRequest(http.MaxBytesReader(w, r.Body, maxUploadBody))
	if err != nil {
		mUploadsBad.Inc()
		writeJSON(w, http.StatusBadRequest, Ack{Status: StatusFenced, Reason: err.Error()})
		return
	}
	ck, err := core.DecodeCheckpoint(bytes.NewReader(up.Checkpoint))
	if err != nil {
		mUploadsBad.Inc()
		writeJSON(w, http.StatusBadRequest, Ack{Status: StatusFenced, Reason: err.Error()})
		return
	}

	c.mu.Lock()
	now := c.cfg.Now()
	c.workerLocked(up.Worker, now)
	sh := c.shardLocked(up.Shard)
	if sh == nil {
		c.mu.Unlock()
		mUploadsBad.Inc()
		writeJSON(w, http.StatusNotFound, Ack{Status: StatusFenced, Reason: "unknown shard"})
		return
	}
	if sh.state == shardDone {
		ok := sh.fence == up.Fence
		c.mu.Unlock()
		if ok {
			writeJSON(w, http.StatusOK, Ack{Status: StatusOK})
		} else {
			mUploadsFenced.Inc()
			writeJSON(w, http.StatusOK, Ack{Status: StatusFenced, Reason: "shard already sealed under a different lease"})
		}
		return
	}
	if sh.state != shardLeased || sh.fence != up.Fence || sh.worker != up.Worker {
		c.mu.Unlock()
		mUploadsFenced.Inc()
		mLeasesFenced.Inc()
		writeJSON(w, http.StatusOK, Ack{Status: StatusFenced, Reason: "lease is not current"})
		return
	}
	if err := c.validateShardCheckpointLocked(sh, ck); err != nil {
		// The worker labeled the wrong thing; its lease is revoked and the
		// shard re-leased. This counts against the worker's budget.
		c.releaseLocked(sh)
		c.noteFailureLocked(up.Worker, err)
		c.mu.Unlock()
		mUploadsBad.Inc()
		writeJSON(w, http.StatusUnprocessableEntity, Ack{Status: StatusFenced, Reason: err.Error()})
		return
	}
	c.mu.Unlock()

	// Seal outside the lock: canonical re-encode, atomic write, digest,
	// manifest append. The injected-fault site lets chaos tests fail the
	// seal and assert the worker's retry path.
	if err := faults.Check(SiteUpload); err == nil {
		err = c.sealShard(sh, up.Fence, ck)
		if err == nil {
			writeJSON(w, http.StatusOK, Ack{Status: StatusOK})
			return
		}
		log.Printf("dist: seal shard %d: %v", sh.id, err)
	} else {
		log.Printf("dist: upload shard %d: %v", sh.id, err)
	}
	// The seal did not become durable; the lease stays live and the worker
	// retries the upload.
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusInternalServerError, Ack{Status: StatusOK, Reason: "seal failed; retry"})
}

// sealShard writes the canonical shard checkpoint and its manifest line,
// then flips the shard to done. Named by shard id so a retried upload
// overwrites rather than duplicates.
func (c *Coordinator) sealShard(sh *shardState, fence uint64, ck *core.Checkpoint) error {
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		return err
	}
	name := fmt.Sprintf("shard-%04d.ckpt", sh.id)
	if err := atomicio.WriteFile(filepath.Join(c.cfg.Dir, name), func(w io.Writer) error {
		_, err := w.Write(buf.Bytes())
		return err
	}); err != nil {
		return err
	}
	rec := ManifestRecord{
		Shard:      sh.id,
		Fence:      fence,
		File:       name,
		SHA256:     sha256Of(buf.Bytes()),
		Benchmarks: append([]string(nil), sh.benchmarks...),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if sh.state == shardDone { // a racing retry sealed it first
		return nil
	}
	if sh.fence != fence || sh.state != shardLeased {
		mUploadsFenced.Inc()
		return fmt.Errorf("dist: shard %d lease changed during seal", sh.id)
	}
	if err := c.man.append(rec); err != nil {
		return err
	}
	sh.state = shardDone
	sh.file = name
	c.doneN++
	mUploadsOK.Inc()
	c.publishGauges()
	if c.doneN == len(c.shards) {
		close(c.done)
	}
	return nil
}

// handleFail releases a shard whose worker reported it cannot finish,
// counting the failure against the worker's budget.
func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	fr, err := DecodeFailRequest(http.MaxBytesReader(w, r.Body, maxWireBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, Ack{Status: StatusFenced, Reason: err.Error()})
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.workerLocked(fr.Worker, now)
	sh := c.shardLocked(fr.Shard)
	if sh == nil || sh.state != shardLeased || sh.fence != fr.Fence || sh.worker != fr.Worker {
		mLeasesFenced.Inc()
		writeJSON(w, http.StatusOK, Ack{Status: StatusFenced, Reason: "lease is not current"})
		return
	}
	log.Printf("dist: worker %s failed shard %d: %s", fr.Worker, fr.Shard, fr.Error)
	c.releaseLocked(sh)
	c.noteFailureLocked(fr.Worker, errors.New(fr.Error))
	c.publishGauges()
	writeJSON(w, http.StatusOK, Ack{Status: StatusOK})
}

// StatusReport is the coordinator's live state snapshot.
type StatusReport struct {
	Shards  int    `json:"shards"`
	Pending int    `json:"pending"`
	Leased  int    `json:"leased"`
	Done    int    `json:"done"`
	Merged  bool   `json:"merged"`
	Failed  string `json:"failed,omitempty"`
	Fence   uint64 `json:"fence"`

	Workers []WorkerReport `json:"workers"`
}

// WorkerReport is one worker's supervision state.
type WorkerReport struct {
	Name        string `json:"name"`
	Failures    int    `json:"failures"`
	Quarantined bool   `json:"quarantined"`
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

// Status snapshots the run.
func (c *Coordinator) Status() StatusReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := StatusReport{Shards: len(c.shards), Fence: c.fence, Merged: c.mergedLocked()}
	if c.failure != nil {
		st.Failed = c.failure.Error()
	}
	for _, sh := range c.shards {
		switch sh.state {
		case shardPending:
			st.Pending++
		case shardLeased:
			st.Leased++
		case shardDone:
			st.Done++
		}
	}
	for name := range c.workers {
		ws := c.workers[name]
		st.Workers = append(st.Workers, WorkerReport{Name: name, Failures: ws.failures, Quarantined: ws.quarantined})
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].Name < st.Workers[j].Name })
	return st
}

func (c *Coordinator) mergedLocked() bool { return c.mergedFlag }

// ExpireLeases revokes every lease past its deadline, returning those
// shards to the pending pool and charging the holders' failure budgets.
// Run's supervision ticker calls it; tests with an injected clock call it
// directly.
func (c *Coordinator) ExpireLeases() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	for _, sh := range c.shards {
		if sh.state == shardLeased && now.After(sh.deadline) {
			log.Printf("dist: lease on shard %d by %s expired; re-leasing", sh.id, sh.worker)
			mLeasesExpired.Inc()
			holder := sh.worker
			c.releaseLocked(sh)
			c.noteFailureLocked(holder, fmt.Errorf("lease on shard %d expired", sh.id))
		}
	}
	c.publishGauges()
}

// releaseLocked returns a leased shard to the pending pool. Its fence stays
// recorded so any message still carrying it mismatches (the shard is no
// longer leased), and the next grant mints a strictly larger token.
func (c *Coordinator) releaseLocked(sh *shardState) {
	sh.state = shardPending
	sh.worker = ""
	sh.deadline = time.Time{}
}

// noteFailureLocked charges one failure and quarantines the worker once its
// budget is spent.
func (c *Coordinator) noteFailureLocked(worker string, cause error) {
	ws := c.workers[worker]
	if ws == nil {
		ws = &workerState{}
		c.workers[worker] = ws
	}
	ws.failures++
	if !ws.quarantined && ws.failures >= c.cfg.MaxWorkerFailures {
		ws.quarantined = true
		mQuarantined.Inc()
		log.Printf("dist: worker %s quarantined after %d failures (last: %v)", worker, ws.failures, cause)
	}
}

// failLocked records a fatal run error and releases every waiting worker.
func (c *Coordinator) failLocked(err error) {
	if c.failure == nil {
		c.failure = err
		close(c.done)
	}
}

func (c *Coordinator) workerLocked(name string, now time.Time) *workerState {
	ws := c.workers[name]
	if ws == nil {
		ws = &workerState{}
		c.workers[name] = ws
	}
	ws.lastSeen = now
	return ws
}

func (c *Coordinator) shardLocked(id int) *shardState {
	if id < 0 || id >= len(c.shards) {
		return nil
	}
	return c.shards[id]
}

// validateShardCheckpointLocked guards the merge against a worker that
// labeled under the wrong configuration or the wrong shard: the checkpoint
// must be config-compatible with the run and cover exactly the shard's
// benchmarks.
func (c *Coordinator) validateShardCheckpointLocked(sh *shardState, ck *core.Checkpoint) error {
	want := RunConfig{Seed: c.cfg.Run.Seed, Scale: c.cfg.Run.Scale, Runs: c.cfg.Run.Runs, SWP: c.cfg.Run.SWP, Replicate: c.cfg.Run.Replicate}
	expect := core.NewCheckpoint(timerFor(want), want.Seed)
	if err := expect.CompatibleWith(ck); err != nil {
		return err
	}
	if len(ck.Benchmarks) != len(sh.benchmarks) {
		return fmt.Errorf("dist: shard %d upload covers %d benchmarks, want %d", sh.id, len(ck.Benchmarks), len(sh.benchmarks))
	}
	for _, name := range sh.benchmarks {
		if _, ok := ck.Benchmarks[name]; !ok {
			return fmt.Errorf("dist: shard %d upload is missing benchmark %q", sh.id, name)
		}
	}
	return nil
}

func (c *Coordinator) publishGauges() {
	var p, l, d int64
	for _, sh := range c.shards {
		switch sh.state {
		case shardPending:
			p++
		case shardLeased:
			l++
		case shardDone:
			d++
		}
	}
	gShardsPending.Set(p)
	gShardsLeased.Set(l)
	gShardsDone.Set(d)
	var live int64
	for _, ws := range c.workers {
		if !ws.quarantined {
			live++
		}
	}
	gWorkersLive.Set(live)
}

// Done is closed when every shard is sealed (or the run failed); Finish
// may then merge.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Err reports the sticky run failure, if any.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failure
}

// Run serves the cluster protocol on addr until every shard is sealed (or
// ctx ends), then merges and writes the dataset, keeps answering "stop"
// for the linger window so live workers exit cleanly, and shuts down.
func (c *Coordinator) Run(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: %w", err)
	}
	srv := &http.Server{Handler: c.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.Printf("dist: coordinator serving on %s (%d shards)", ln.Addr(), len(c.shards))

	tick := c.cfg.LeaseTTL / 4
	if tick < 50*time.Millisecond {
		tick = 50 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()

	var runErr error
loop:
	for {
		select {
		case <-c.done:
			break loop
		case <-ticker.C:
			c.ExpireLeases()
		case <-ctx.Done():
			runErr = ctx.Err()
			break loop
		case err := <-serveErr:
			runErr = err
			break loop
		}
	}
	if runErr == nil {
		runErr = c.Err()
	}
	if runErr == nil {
		runErr = c.Finish()
	}
	if runErr == nil && c.cfg.Linger > 0 {
		timer := time.NewTimer(c.cfg.Linger)
		select {
		case <-timer.C:
		case <-ctx.Done():
		}
		timer.Stop()
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	srv.Shutdown(shCtx)
	return runErr
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
