package dist

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"metaopt/internal/faults"
)

func testRecord(shard int, fence uint64) ManifestRecord {
	return ManifestRecord{
		Shard:      shard,
		Fence:      fence,
		File:       "shard-0000.ckpt",
		SHA256:     strings.Repeat("ab", 32),
		Benchmarks: []string{"bench-a", "bench-b"},
	}
}

func manifestLines(t *testing.T, recs ...ManifestRecord) string {
	t.Helper()
	var sb strings.Builder
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestManifestReplayToleratesTornTail: a crash can only tear the trailing
// line; everything before it must replay.
func TestManifestReplayToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), ManifestName)
	body := manifestLines(t, testRecord(0, 1), testRecord(1, 2)) + `{"shard":2,"fen`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := loadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Shard != 0 || recs[1].Shard != 1 {
		t.Fatalf("replayed %+v, want shards 0 and 1", recs)
	}
}

// TestManifestReplayStopsAtInvalidRecord: a line that parses but could not
// have been written by a coordinator (bad digest here) ends the replay —
// fail towards re-labeling, never towards trusting corrupt state.
func TestManifestReplayStopsAtInvalidRecord(t *testing.T) {
	bad := testRecord(1, 2)
	bad.SHA256 = "not-a-digest"
	path := filepath.Join(t.TempDir(), ManifestName)
	body := manifestLines(t, testRecord(0, 1), bad, testRecord(2, 3))
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := loadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Shard != 0 {
		t.Fatalf("replayed %+v, want only shard 0", recs)
	}
}

// TestManifestDuplicateShardKeepsFirst: the first seal of a shard wins;
// later records for the same shard are dropped, not merged twice.
func TestManifestDuplicateShardKeepsFirst(t *testing.T) {
	first := testRecord(0, 1)
	second := testRecord(0, 9)
	path := filepath.Join(t.TempDir(), ManifestName)
	if err := os.WriteFile(path, []byte(manifestLines(t, first, second, testRecord(1, 2))), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := loadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Fence != 1 || recs[1].Shard != 1 {
		t.Fatalf("replayed %+v, want first record of shard 0 then shard 1", recs)
	}
}

// TestManifestMissingFileIsEmptyLog: a fresh state dir replays as empty.
func TestManifestMissingFileIsEmptyLog(t *testing.T) {
	recs, err := loadManifest(filepath.Join(t.TempDir(), ManifestName))
	if err != nil || recs != nil {
		t.Fatalf("missing manifest: %v, %v", recs, err)
	}
}

// TestManifestTornAppendThenReopen injects a torn write into an append (the
// crash-mid-append case): the append must error, replay must see nothing,
// and reopening the log must trim the torn tail so the next append lands on
// its own line and replays cleanly.
func TestManifestTornAppendThenReopen(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	m, err := openManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	faults.MustInstall(faults.Spec{Site: SiteManifestAppend, Kind: faults.KindTorn, Bytes: 10, Count: 1})
	if err := m.append(testRecord(0, 1)); err == nil {
		t.Fatal("torn append reported success")
	}
	m.close()
	faults.Reset()

	recs, err := loadManifest(filepath.Join(dir, ManifestName))
	if err != nil || len(recs) != 0 {
		t.Fatalf("torn-only manifest replayed %+v, %v", recs, err)
	}

	m2, err := openManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.close()
	if err := m2.append(testRecord(0, 2)); err != nil {
		t.Fatal(err)
	}
	recs, err = loadManifest(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Fence != 2 {
		t.Fatalf("replay after reopen: %+v, want the one post-crash record", recs)
	}
}

// TestDistCorruptShardFileReLeases flips a byte in a sealed shard file; the
// restarted coordinator must fail its digest check and demote the shard to
// pending instead of merging corrupt data.
func TestDistCorruptShardFileReLeases(t *testing.T) {
	dir := t.TempDir()
	c := testCoordinator(t, dir, func(cfg *CoordinatorConfig) { cfg.Shards = 2 })
	srv := httptest.NewServer(c.Handler())
	runWorkers(t, srv.URL, 1)
	srv.Close()

	// Corrupt the first sealed shard file.
	recs, err := loadManifest(filepath.Join(dir, ManifestName))
	if err != nil || len(recs) != 2 {
		t.Fatalf("expected 2 sealed shards: %+v, %v", recs, err)
	}
	path := filepath.Join(dir, recs[0].File)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	corruptBefore := mShardCorrupt.Value()
	c2 := testCoordinator(t, dir, func(cfg *CoordinatorConfig) { cfg.Shards = 2 })
	if got := mShardCorrupt.Value() - corruptBefore; got != 1 {
		t.Fatalf("corrupt shards counted %d, want 1", got)
	}
	st := c2.Status()
	if st.Done != 1 || st.Pending != 1 {
		t.Fatalf("corrupt shard was not demoted: %+v", st)
	}
	if err := c2.Finish(); err == nil {
		t.Fatal("merge with a demoted shard must refuse")
	}
}
