package dist

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"metaopt/internal/faults"
)

// ManifestName is the append-only merge manifest inside the coordinator's
// state directory.
const ManifestName = "MANIFEST.jsonl"

// ManifestRecord seals one completed shard: which fence completed it, the
// shard checkpoint file (a bare name inside the state dir), the SHA-256 of
// that file's bytes, and the benchmarks it covers. A record is only
// believed on replay if the file still hashes to the digest — a torn or
// tampered shard file demotes the shard back to pending instead of
// poisoning the merge.
type ManifestRecord struct {
	Shard      int      `json:"shard"`
	Fence      uint64   `json:"fence"`
	File       string   `json:"file"`
	SHA256     string   `json:"sha256"`
	Benchmarks []string `json:"benchmarks"`
}

// validate rejects records no coordinator could have written. Replay treats
// an invalid record as log corruption, not as state.
func (mr *ManifestRecord) validate() error {
	if mr.Shard < 0 {
		return fmt.Errorf("dist: manifest record has negative shard %d", mr.Shard)
	}
	if mr.Fence == 0 {
		return fmt.Errorf("dist: manifest record for shard %d has no fence", mr.Shard)
	}
	if mr.File == "" || mr.File != filepath.Base(mr.File) || strings.HasPrefix(mr.File, ".") {
		return fmt.Errorf("dist: manifest record for shard %d has bad file %q", mr.Shard, mr.File)
	}
	if len(mr.SHA256) != sha256.Size*2 {
		return fmt.Errorf("dist: manifest record for shard %d has bad digest", mr.Shard)
	}
	if _, err := hex.DecodeString(mr.SHA256); err != nil {
		return fmt.Errorf("dist: manifest record for shard %d has non-hex digest", mr.Shard)
	}
	if len(mr.Benchmarks) == 0 {
		return fmt.Errorf("dist: manifest record for shard %d covers no benchmarks", mr.Shard)
	}
	return nil
}

// manifestLog is the coordinator's append handle. Appends are one
// marshal + one write + one fsync; the record only counts once the line is
// durable. Appends are not atomic — a crash mid-append leaves a partial
// trailing line, which loadManifest tolerates by treating the first
// malformed line as the end of the log (a crash can only tear the tail).
type manifestLog struct {
	path string
	f    *os.File
}

// openManifest opens (creating if needed) the append-only log in dir. A
// crash mid-append leaves an unterminated partial line at the tail; it is
// truncated away here so the next append starts on a fresh line instead of
// joining onto the torn one. Replay already ignores that tail, so nothing
// durable is lost.
func openManifest(dir string) (*manifestLog, error) {
	path := filepath.Join(dir, ManifestName)
	if raw, err := os.ReadFile(path); err == nil {
		if keep := bytes.LastIndexByte(raw, '\n') + 1; keep < len(raw) {
			if err := os.Truncate(path, int64(keep)); err != nil {
				return nil, fmt.Errorf("dist: trim torn manifest tail: %w", err)
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("dist: open manifest: %w", err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dist: open manifest: %w", err)
	}
	return &manifestLog{path: path, f: f}, nil
}

// append seals one record: marshal to a single line, write through the
// torn-IO fault site, fsync. An error means the record may not be durable
// and the caller must not mark the shard done.
func (m *manifestLog) append(rec ManifestRecord) error {
	if err := rec.validate(); err != nil {
		return err
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("dist: manifest append: %w", err)
	}
	line = append(line, '\n')
	if _, err := faults.WrapWriter(SiteManifestAppend, m.f).Write(line); err != nil {
		return fmt.Errorf("dist: manifest append: %w", err)
	}
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("dist: manifest sync: %w", err)
	}
	return nil
}

func (m *manifestLog) close() error { return m.f.Close() }

// loadManifest replays the log at path. The first malformed or invalid
// line ends the replay (dropped lines are counted on
// dist.manifest.dropped); duplicate shard entries keep the first. A
// missing file is an empty log. This is the merged-dataset manifest
// decoder FuzzMergeManifest drives.
func loadManifest(path string) ([]ManifestRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dist: read manifest: %w", err)
	}
	defer f.Close()
	return decodeManifest(f)
}

// decodeManifest is loadManifest over any reader.
func decodeManifest(r io.Reader) ([]ManifestRecord, error) {
	var out []ManifestRecord
	seen := map[int]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxWireBody)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec ManifestRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			mManifestDrop.Inc()
			break // torn tail: everything from here on never became durable
		}
		if err := rec.validate(); err != nil {
			mManifestDrop.Inc()
			break
		}
		if seen[rec.Shard] {
			mManifestDrop.Inc()
			continue
		}
		seen[rec.Shard] = true
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil && len(out) == 0 {
		return nil, fmt.Errorf("dist: scan manifest: %w", err)
	}
	return out, nil
}

// fileSHA256 hashes a shard file's bytes for manifest verification.
func fileSHA256(path string) (string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// sha256Of hashes in-memory bytes.
func sha256Of(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
