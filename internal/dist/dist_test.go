package dist

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"metaopt/internal/faults"
	"metaopt/unroll"
	"metaopt/unroll/client"
)

// testRun is the scaled-down labeling configuration every cluster test
// uses; small enough that a full serial baseline takes well under a second.
var testRun = RunConfig{Seed: 7, Scale: 0.02, Runs: 2}

// serialBytes runs the single-process pipeline and returns the dataset
// bytes the cluster must reproduce exactly.
func serialBytes(t *testing.T) []byte {
	t.Helper()
	corpus, err := unroll.GenerateCorpus(testRun.Seed, testRun.Scale)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := unroll.CollectDataset(corpus, collectOptions(testRun))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testCoordinator builds a coordinator over dir with test-friendly knobs.
func testCoordinator(t *testing.T, dir string, mut func(*CoordinatorConfig)) *Coordinator {
	t.Helper()
	cfg := CoordinatorConfig{
		Run:    testRun,
		Shards: 5,
		Dir:    dir,
		Out:    filepath.Join(dir, "dataset.json"),
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// testWorker builds a worker against the coordinator URL with fast retries
// and heartbeats.
func testWorker(t *testing.T, name, url string) *Worker {
	t.Helper()
	w, err := NewWorker(WorkerConfig{
		Name:        name,
		Coordinator: url,
		Dir:         t.TempDir(),
		Heartbeat:   25 * time.Millisecond,
		Retry:       client.RetryPolicy{MaxAttempts: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: 40 * time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// runWorkers runs n workers concurrently until each exits, failing the
// test on any non-nil return.
func runWorkers(t *testing.T, url string, n int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		w := testWorker(t, "w"+string(rune('1'+i)), url)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Run(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
}

// TestDistClusterMatchesSerial is the core guarantee: three workers label
// five shards through the full lease/heartbeat/upload protocol and the
// coordinator's merged dataset is byte-identical to the serial pipeline.
func TestDistClusterMatchesSerial(t *testing.T) {
	want := serialBytes(t)
	dir := t.TempDir()
	c := testCoordinator(t, dir, nil)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	runWorkers(t, srv.URL, 3)

	select {
	case <-c.Done():
	default:
		t.Fatal("all workers exited but the coordinator is not done")
	}
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(c.cfg.Out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("cluster dataset differs from serial run (%d vs %d bytes)", len(got), len(want))
	}
	st := c.Status()
	if st.Done != st.Shards || !st.Merged {
		t.Fatalf("status after merge: %+v", st)
	}
}

// TestDistCoordinatorCrashRestartMidMerge kills the coordinator's merge
// with an injected fault, then "restarts" it as a fresh Coordinator over
// the same state dir: the manifest replay must restore every sealed shard
// and the re-run merge must produce byte-identical output.
func TestDistCoordinatorCrashRestartMidMerge(t *testing.T) {
	defer faults.Reset()
	want := serialBytes(t)
	dir := t.TempDir()
	c := testCoordinator(t, dir, nil)
	srv := httptest.NewServer(c.Handler())
	runWorkers(t, srv.URL, 2)
	srv.Close()

	// The merge dies at its fault site — the process would be gone here.
	faults.MustInstall(faults.Spec{Site: SiteMerge, Kind: faults.KindError, Nth: 1})
	if err := c.Finish(); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("merge under injected crash: %v, want ErrInjected", err)
	}
	faults.Reset()
	if _, err := os.Stat(filepath.Join(dir, "dataset.json")); !os.IsNotExist(err) {
		t.Fatal("crashed merge left a dataset behind")
	}

	// Restart: a brand-new coordinator over the same directory.
	c2 := testCoordinator(t, dir, nil)
	select {
	case <-c2.Done():
	default:
		t.Fatal("manifest replay did not restore the sealed shards")
	}
	if err := c2.Finish(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(c2.cfg.Out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("restarted merge differs from serial run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestDistWorkerCrashMidShardThenRecovery FAULTS-kills one worker partway
// through its shard (the labeling site errors, the worker reports the
// failure and dies) and then lets a healthy worker finish the whole run;
// the dataset must still match the serial bytes and the dead worker's
// failure must be on the books.
func TestDistWorkerCrashMidShardThenRecovery(t *testing.T) {
	defer faults.Reset()
	want := serialBytes(t)
	dir := t.TempDir()
	c := testCoordinator(t, dir, nil)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	faults.MustInstall(faults.Spec{Site: "labels.benchmark", Kind: faults.KindError, Nth: 2, Count: 1})
	w1 := testWorker(t, "crashy", srv.URL)
	if err := w1.Run(context.Background()); err == nil {
		t.Fatal("injected labeling fault did not kill the worker")
	}
	faults.Reset()

	st := c.Status()
	if len(st.Workers) == 0 || st.Workers[0].Failures == 0 {
		t.Fatalf("coordinator did not record the crashed worker's failure: %+v", st)
	}
	if st.Leased != 0 {
		t.Fatalf("failed shard was not released: %+v", st)
	}

	runWorkers(t, srv.URL, 1)
	<-c.Done()
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(c.cfg.Out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("dataset after worker crash and recovery differs from serial run")
	}
}

// TestDistUploadSealRetry injects a coordinator-side seal failure on the
// first upload; the worker must retry the (idempotent) upload and the run
// must complete with byte-identical output.
func TestDistUploadSealRetry(t *testing.T) {
	defer faults.Reset()
	want := serialBytes(t)
	dir := t.TempDir()
	c := testCoordinator(t, dir, nil)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	faults.MustInstall(faults.Spec{Site: SiteUpload, Kind: faults.KindError, Nth: 1, Count: 1})
	runWorkers(t, srv.URL, 2)
	<-c.Done()
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(c.cfg.Out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("dataset after seal retry differs from serial run")
	}
	if mWorkerRetries.Value() == 0 {
		t.Error("worker never retried the failed upload")
	}
}

// TestDistClusterColstoreReplicated drives the two new wire-config paths
// end to end: the coordinator shards a replicated (2x) corpus and merges
// into the binary columnar format, and the result must decode to the same
// dataset a serial replicated run produces.
func TestDistClusterColstoreReplicated(t *testing.T) {
	run := testRun
	run.Replicate = 2
	corpus, err := corpusFor(run)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := unroll.CollectDataset(corpus, collectOptions(run))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	want := buf.Bytes()

	dir := t.TempDir()
	c := testCoordinator(t, dir, func(cfg *CoordinatorConfig) {
		cfg.Run = run
		cfg.Format = "colstore"
		cfg.Out = filepath.Join(dir, "dataset.cols")
	})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	runWorkers(t, srv.URL, 2)
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}

	merged, err := unroll.LoadDatasetFile(c.cfg.Out)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := merged.Save(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("columnar cluster dataset differs from serial replicated run (%d vs %d bytes)", got.Len(), len(want))
	}
}
