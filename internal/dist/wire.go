package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Wire protocol between coordinator and workers. Everything is HTTP/JSON,
// one request type per endpoint under /v1/dist/. The messages are small and
// boring on purpose: every field is validated on decode, and the fuzzers
// (FuzzShardWire) hold the decoders to "never panic, and anything accepted
// round-trips".

// Lease statuses a coordinator can answer.
const (
	// StatusLease grants a shard; the response carries the shard, its
	// fencing token, the benchmark names, and the run configuration.
	StatusLease = "lease"
	// StatusWait means no shard is grantable right now (all leased); poll
	// again after a backoff.
	StatusWait = "wait"
	// StatusStop means the run is over (merged or aborted); exit cleanly.
	StatusStop = "stop"
	// StatusQuarantined refuses a worker that exhausted its failure budget.
	StatusQuarantined = "quarantined"
	// StatusOK acknowledges a heartbeat or upload.
	StatusOK = "ok"
	// StatusFenced rejects a stale fencing token: the lease expired and the
	// shard was (or will be) reassigned. The worker must abandon the shard.
	StatusFenced = "fenced"
)

// Wire size limits, enforced at decode.
const (
	maxWorkerName = 128
	maxWireBody   = 1 << 20  // control messages
	maxUploadBody = 64 << 20 // shard checkpoint uploads
)

// LeaseRequest asks for a shard.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse answers a lease request; Status selects which fields are
// meaningful.
type LeaseResponse struct {
	Status     string    `json:"status"`
	Shard      int       `json:"shard,omitempty"`
	Fence      uint64    `json:"fence,omitempty"`
	Benchmarks []string  `json:"benchmarks,omitempty"`
	TTLMillis  int64     `json:"ttl_ms,omitempty"`
	Config     RunConfig `json:"config,omitempty"`
}

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Shard  int    `json:"shard"`
	Fence  uint64 `json:"fence"`
}

// Ack is the coordinator's answer to a heartbeat, upload, or failure
// report: StatusOK or StatusFenced, plus a human-readable reason on
// rejection.
type Ack struct {
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
}

// UploadRequest delivers a completed shard's checkpoint.
type UploadRequest struct {
	Worker     string          `json:"worker"`
	Shard      int             `json:"shard"`
	Fence      uint64          `json:"fence"`
	Checkpoint json.RawMessage `json:"checkpoint"`
}

// FailRequest reports that a worker could not finish its shard, so the
// coordinator can re-lease it promptly instead of waiting out the deadline.
type FailRequest struct {
	Worker string `json:"worker"`
	Shard  int    `json:"shard"`
	Fence  uint64 `json:"fence"`
	Error  string `json:"error"`
}

// validWorkerName enforces the naming rules: non-empty, bounded, printable,
// no whitespace or path separators (names appear in logs, metrics, and
// file names).
func validWorkerName(s string) error {
	if s == "" {
		return fmt.Errorf("dist: empty worker name")
	}
	if len(s) > maxWorkerName {
		return fmt.Errorf("dist: worker name longer than %d bytes", maxWorkerName)
	}
	if strings.ContainsAny(s, " \t\n\r/\\") {
		return fmt.Errorf("dist: worker name %q contains whitespace or path separators", s)
	}
	for _, r := range s {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("dist: worker name contains control characters")
		}
	}
	return nil
}

// decodeWire decodes one JSON message with a byte limit, rejecting trailing
// garbage so a framing bug cannot smuggle a second message.
func decodeWire(r io.Reader, limit int64, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, limit))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("dist: decode: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("dist: decode: trailing data after message")
	}
	return nil
}

// DecodeLeaseRequest reads and validates a lease request.
func DecodeLeaseRequest(r io.Reader) (*LeaseRequest, error) {
	var lr LeaseRequest
	if err := decodeWire(r, maxWireBody, &lr); err != nil {
		return nil, err
	}
	if err := validWorkerName(lr.Worker); err != nil {
		return nil, err
	}
	return &lr, nil
}

// DecodeLeaseResponse reads and validates a lease response (worker side).
func DecodeLeaseResponse(r io.Reader) (*LeaseResponse, error) {
	var lr LeaseResponse
	if err := decodeWire(r, maxWireBody, &lr); err != nil {
		return nil, err
	}
	switch lr.Status {
	case StatusLease:
		if lr.Shard < 0 || lr.Fence == 0 || len(lr.Benchmarks) == 0 || lr.TTLMillis <= 0 {
			return nil, fmt.Errorf("dist: malformed lease grant (shard %d, fence %d, %d benchmarks, ttl %dms)",
				lr.Shard, lr.Fence, len(lr.Benchmarks), lr.TTLMillis)
		}
		for _, b := range lr.Benchmarks {
			if b == "" || len(b) > maxWorkerName {
				return nil, fmt.Errorf("dist: malformed benchmark name in lease grant")
			}
		}
	case StatusWait, StatusStop, StatusQuarantined:
	default:
		return nil, fmt.Errorf("dist: unknown lease status %q", lr.Status)
	}
	return &lr, nil
}

// DecodeHeartbeatRequest reads and validates a heartbeat.
func DecodeHeartbeatRequest(r io.Reader) (*HeartbeatRequest, error) {
	var hb HeartbeatRequest
	if err := decodeWire(r, maxWireBody, &hb); err != nil {
		return nil, err
	}
	if err := validWorkerName(hb.Worker); err != nil {
		return nil, err
	}
	if hb.Shard < 0 || hb.Fence == 0 {
		return nil, fmt.Errorf("dist: malformed heartbeat (shard %d, fence %d)", hb.Shard, hb.Fence)
	}
	return &hb, nil
}

// DecodeUploadRequest reads and validates a shard upload.
func DecodeUploadRequest(r io.Reader) (*UploadRequest, error) {
	var up UploadRequest
	if err := decodeWire(r, maxUploadBody, &up); err != nil {
		return nil, err
	}
	if err := validWorkerName(up.Worker); err != nil {
		return nil, err
	}
	if up.Shard < 0 || up.Fence == 0 {
		return nil, fmt.Errorf("dist: malformed upload (shard %d, fence %d)", up.Shard, up.Fence)
	}
	if len(up.Checkpoint) == 0 {
		return nil, fmt.Errorf("dist: upload carries no checkpoint")
	}
	return &up, nil
}

// DecodeFailRequest reads and validates a failure report.
func DecodeFailRequest(r io.Reader) (*FailRequest, error) {
	var fr FailRequest
	if err := decodeWire(r, maxWireBody, &fr); err != nil {
		return nil, err
	}
	if err := validWorkerName(fr.Worker); err != nil {
		return nil, err
	}
	if fr.Shard < 0 || fr.Fence == 0 {
		return nil, fmt.Errorf("dist: malformed failure report (shard %d, fence %d)", fr.Shard, fr.Fence)
	}
	return &fr, nil
}

// DecodeAck reads and validates an acknowledgement (worker side).
func DecodeAck(r io.Reader) (*Ack, error) {
	var a Ack
	if err := decodeWire(r, maxWireBody, &a); err != nil {
		return nil, err
	}
	switch a.Status {
	case StatusOK, StatusFenced:
	default:
		return nil, fmt.Errorf("dist: unknown ack status %q", a.Status)
	}
	return &a, nil
}
