package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"metaopt/internal/atomicio"
	"metaopt/internal/core"
	"metaopt/internal/loopgen"
	"metaopt/internal/sim"
	"metaopt/unroll/client"
)

// ErrQuarantined is returned by Worker.Run when the coordinator refuses
// the worker for exhausting its failure budget.
var ErrQuarantined = errors.New("dist: worker quarantined by the coordinator")

// errFenced aborts a shard whose lease was revoked; the worker abandons
// the shard silently and asks for the next one.
var errFenced = errors.New("dist: lease fenced")

// WorkerConfig configures a labeling worker.
type WorkerConfig struct {
	Name        string // worker identity; must be stable across restarts to resume a lease
	Coordinator string // coordinator base URL, e.g. "http://127.0.0.1:9471"
	Dir         string // local state dir for per-shard checkpoints

	Heartbeat time.Duration      // lease renewal cadence (default 2s)
	SaveEvery int                // benchmarks between local checkpoint snapshots (default 1)
	Retry     client.RetryPolicy // backoff schedule for every coordinator RPC
	HTTP      *http.Client       // transport (default http.DefaultClient)
}

func (cfg *WorkerConfig) fill() error {
	if err := validWorkerName(cfg.Name); err != nil {
		return err
	}
	if cfg.Coordinator == "" {
		return errors.New("dist: worker needs a coordinator URL")
	}
	if cfg.Dir == "" {
		return errors.New("dist: worker needs a state dir")
	}
	cfg.Heartbeat = defaultDur(cfg.Heartbeat, 2*time.Second)
	if cfg.SaveEvery <= 0 {
		cfg.SaveEvery = 1
	}
	if cfg.HTTP == nil {
		cfg.HTTP = http.DefaultClient
	}
	return nil
}

// Worker leases shards, labels them with the resumable collector, and
// uploads the shard checkpoints. Crash-first: any labeling or upload
// failure is reported to the coordinator (so the shard is re-leased
// promptly) and then surfaces from Run — the supervisor restarting the
// process is the recovery path, and the local shard checkpoint makes the
// restart cheap.
type Worker struct {
	cfg    WorkerConfig
	bo     *client.Backoff
	corpus *loopgen.Corpus // generated on first lease; config-keyed
	ckey   RunConfig
	timer  *sim.Timer
}

// NewWorker builds a worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	return &Worker{cfg: cfg, bo: client.NewBackoff(cfg.Retry)}, nil
}

// Run leases and labels until the coordinator says the run is over, the
// context ends, or a shard fails. A clean "stop" returns nil.
func (w *Worker) Run(ctx context.Context) error {
	waits := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, err := w.lease(ctx)
		if err != nil {
			return err
		}
		switch lease.Status {
		case StatusStop:
			return nil
		case StatusQuarantined:
			return ErrQuarantined
		case StatusWait:
			waits++
			hint := time.Duration(lease.TTLMillis) * time.Millisecond / 4
			if err := w.bo.Sleep(ctx, min(waits, 6), hint); err != nil {
				return err
			}
			continue
		}
		waits = 0
		mWorkerLeases.Inc()
		err = w.runShard(ctx, lease)
		switch {
		case err == nil:
			mWorkerShardsOK.Inc()
		case errors.Is(err, errFenced):
			// The lease was revoked under us; the shard belongs to someone
			// else now. Not a worker failure.
			mWorkerFenced.Inc()
			log.Printf("dist: worker %s: shard %d fenced; moving on", w.cfg.Name, lease.Shard)
		default:
			w.reportFail(ctx, lease, err)
			return fmt.Errorf("dist: worker %s: shard %d: %w", w.cfg.Name, lease.Shard, err)
		}
	}
}

// runShard labels one leased shard and uploads its checkpoint.
func (w *Worker) runShard(ctx context.Context, lease *LeaseResponse) error {
	sub, err := w.subCorpus(lease)
	if err != nil {
		return err
	}
	ckptPath := filepath.Join(w.cfg.Dir, fmt.Sprintf("shard-%04d.ckpt", lease.Shard))
	state, err := w.loadLocal(ckptPath, lease.Config)
	if err != nil {
		return err
	}

	// Heartbeats renew the lease while labeling runs; a fenced answer trips
	// the flag, and the next local checkpoint save aborts the collection
	// (Save errors abort CollectLabelsResumable).
	var fenced atomic.Bool
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go w.heartbeatLoop(hbCtx, lease, &fenced)

	pr := &core.Progress{
		Checkpoint: state,
		Every:      w.cfg.SaveEvery,
		Save: func(s *core.Checkpoint) error {
			if fenced.Load() {
				return errFenced
			}
			return atomicio.WriteFile(ckptPath, s.Encode)
		},
	}
	if _, err := core.CollectLabelsResumable(sub, w.timer, lease.Config.Seed, pr); err != nil {
		if errors.Is(err, errFenced) {
			return errFenced
		}
		return err
	}
	stopHB()
	if fenced.Load() {
		return errFenced
	}
	return w.upload(ctx, lease, state)
}

// subCorpus regenerates the corpus for the leased configuration (cached
// across leases) and carves out the leased benchmarks.
func (w *Worker) subCorpus(lease *LeaseResponse) (*loopgen.Corpus, error) {
	if w.corpus == nil || w.ckey != lease.Config {
		c, err := corpusFor(lease.Config)
		if err != nil {
			return nil, err
		}
		w.corpus = c
		w.ckey = lease.Config
		w.timer = timerFor(lease.Config)
	}
	byName := make(map[string]*loopgen.Benchmark, len(w.corpus.Benchmarks))
	for _, b := range w.corpus.Benchmarks {
		byName[b.Name] = b
	}
	sub := &loopgen.Corpus{}
	for _, name := range lease.Benchmarks {
		b, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("dist: leased benchmark %q is not in the generated corpus (config drift?)", name)
		}
		sub.Benchmarks = append(sub.Benchmarks, b)
	}
	return sub, nil
}

// loadLocal resumes the shard's local checkpoint when present and
// compatible; an incompatible or unreadable one is discarded (it is a
// cache of raw measurements, never the source of truth).
func (w *Worker) loadLocal(path string, rc RunConfig) (*core.Checkpoint, error) {
	fresh := core.NewCheckpoint(w.timer, rc.Seed)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return fresh, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	state, err := core.DecodeCheckpoint(f)
	if err != nil || state.Compatible(w.timer, rc.Seed) != nil {
		log.Printf("dist: worker %s: discarding stale local checkpoint %s", w.cfg.Name, path)
		return fresh, nil
	}
	return state, nil
}

// heartbeatLoop renews the lease until the shard is finished or the lease
// is fenced. Transport errors are ignored — a missed heartbeat only risks
// the deadline, and the next one may get through.
func (w *Worker) heartbeatLoop(ctx context.Context, lease *LeaseResponse, fenced *atomic.Bool) {
	t := time.NewTicker(w.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		var ack Ack
		err := w.post(ctx, "/v1/dist/heartbeat",
			&HeartbeatRequest{Worker: w.cfg.Name, Shard: lease.Shard, Fence: lease.Fence}, 1, &ack)
		if err != nil {
			continue
		}
		mWorkerHeartbeat.Inc()
		if ack.Status == StatusFenced {
			fenced.Store(true)
			return
		}
	}
}

// lease asks for work, retrying transport failures on the shared backoff.
func (w *Worker) lease(ctx context.Context) (*LeaseResponse, error) {
	var resp LeaseResponse
	err := w.post(ctx, "/v1/dist/lease", &LeaseRequest{Worker: w.cfg.Name}, w.bo.MaxAttempts(), &resp)
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s: lease: %w", w.cfg.Name, err)
	}
	return &resp, nil
}

// upload delivers the finished shard, retrying on the shared backoff; a
// fenced answer abandons the shard.
func (w *Worker) upload(ctx context.Context, lease *LeaseResponse, state *core.Checkpoint) error {
	var buf bytes.Buffer
	if err := state.Encode(&buf); err != nil {
		return err
	}
	req := &UploadRequest{Worker: w.cfg.Name, Shard: lease.Shard, Fence: lease.Fence, Checkpoint: buf.Bytes()}
	var ack Ack
	if err := w.post(ctx, "/v1/dist/upload", req, w.bo.MaxAttempts(), &ack); err != nil {
		return fmt.Errorf("upload: %w", err)
	}
	if ack.Status == StatusFenced {
		return errFenced
	}
	return nil
}

// reportFail tells the coordinator the shard cannot be finished here, so
// it re-leases promptly instead of waiting out the deadline. Best-effort.
func (w *Worker) reportFail(ctx context.Context, lease *LeaseResponse, cause error) {
	var ack Ack
	// The worker is about to exit; do not inherit a cancelled context.
	if ctx.Err() != nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	err := w.post(ctx, "/v1/dist/fail",
		&FailRequest{Worker: w.cfg.Name, Shard: lease.Shard, Fence: lease.Fence, Error: cause.Error()}, 2, &ack)
	if err != nil {
		log.Printf("dist: worker %s: failure report undelivered: %v", w.cfg.Name, err)
	}
}

// post sends one JSON request to a coordinator endpoint with up to
// attempts tries, sleeping the client package's full-jitter backoff
// (honoring Retry-After hints) between them. Retried failures are
// transport errors and 5xx; a 4xx answer is returned as-is after decoding
// the Ack when possible.
func (w *Worker) post(ctx context.Context, path string, msg any, attempts int, out any) error {
	body, err := json.Marshal(msg)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			mWorkerRetries.Inc()
			if err := w.bo.Sleep(ctx, attempt-1, retryHint(lastErr)); err != nil {
				return err
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := w.cfg.HTTP.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		lastErr = w.decodeResponse(resp, out)
		if lastErr == nil {
			return nil
		}
		var he *httpError
		if errors.As(lastErr, &he) && he.status < 500 {
			return lastErr
		}
	}
	return lastErr
}

// httpError is a non-2xx coordinator answer.
type httpError struct {
	status     int
	retryAfter time.Duration
	body       string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("coordinator answered %d: %s", e.status, e.body)
}

func retryHint(err error) time.Duration {
	var he *httpError
	if errors.As(err, &he) {
		return he.retryAfter
	}
	return 0
}

func (w *Worker) decodeResponse(resp *http.Response, out any) error {
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		he := &httpError{status: resp.StatusCode, body: string(bytes.TrimSpace(raw))}
		if ra, err := time.ParseDuration(resp.Header.Get("Retry-After") + "s"); err == nil {
			he.retryAfter = ra
		}
		return he
	}
	switch v := out.(type) {
	case *LeaseResponse:
		lr, err := DecodeLeaseResponse(resp.Body)
		if err != nil {
			return err
		}
		*v = *lr
	case *Ack:
		a, err := DecodeAck(resp.Body)
		if err != nil {
			return err
		}
		*v = *a
	default:
		return decodeWire(resp.Body, maxWireBody, out)
	}
	return nil
}
