package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"metaopt/internal/core"
	"metaopt/unroll"
)

// fakeClock is an injectable coordinator clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// postJSON drives one protocol endpoint directly, decoding the answer into
// out and returning the HTTP status.
func postJSON(t *testing.T, url string, msg, out any) int {
	t.Helper()
	body, err := json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode
}

func leaseAs(t *testing.T, url, worker string) *LeaseResponse {
	t.Helper()
	var lr LeaseResponse
	if code := postJSON(t, url+"/v1/dist/lease", &LeaseRequest{Worker: worker}, &lr); code != http.StatusOK {
		t.Fatalf("lease: HTTP %d", code)
	}
	return &lr
}

// emptyCheckpointBody encodes a config-valid but empty checkpoint; enough
// to exercise the fence checks, which run before content validation.
func emptyCheckpointBody(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.NewCheckpoint(timerFor(testRun), testRun.Seed).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDistLeaseExpiryFencesZombie is the acceptance scenario: a lease
// expires, the shard is re-leased under a strictly larger fence, and the
// original holder's late upload and heartbeat are rejected and counted —
// the shard is sealed exactly once, by the new holder's fence.
func TestDistLeaseExpiryFencesZombie(t *testing.T) {
	clock := newFakeClock()
	c := testCoordinator(t, t.TempDir(), func(cfg *CoordinatorConfig) {
		cfg.LeaseTTL = time.Second
		cfg.Now = clock.Now
		cfg.MaxWorkerFailures = 100 // supervision is not under test here
	})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	fencedBefore := mUploadsFenced.Value()
	expiredBefore := mLeasesExpired.Value()

	l1 := leaseAs(t, srv.URL, "zombie")
	if l1.Status != StatusLease {
		t.Fatalf("first lease: %+v", l1)
	}

	clock.Advance(2 * time.Second)
	c.ExpireLeases()
	if got := mLeasesExpired.Value() - expiredBefore; got != 1 {
		t.Fatalf("expired leases counted %d, want 1", got)
	}

	l2 := leaseAs(t, srv.URL, "successor")
	if l2.Status != StatusLease || l2.Shard != l1.Shard {
		t.Fatalf("re-lease did not grant the expired shard: %+v", l2)
	}
	if l2.Fence <= l1.Fence {
		t.Fatalf("fence not monotonic: %d then %d", l1.Fence, l2.Fence)
	}

	// The zombie wakes up and tries to finish: heartbeat and upload both
	// carry the dead fence and must bounce.
	var ack Ack
	postJSON(t, srv.URL+"/v1/dist/heartbeat",
		&HeartbeatRequest{Worker: "zombie", Shard: l1.Shard, Fence: l1.Fence}, &ack)
	if ack.Status != StatusFenced {
		t.Fatalf("zombie heartbeat: %+v", ack)
	}
	postJSON(t, srv.URL+"/v1/dist/upload",
		&UploadRequest{Worker: "zombie", Shard: l1.Shard, Fence: l1.Fence, Checkpoint: emptyCheckpointBody(t)}, &ack)
	if ack.Status != StatusFenced {
		t.Fatalf("zombie upload: %+v", ack)
	}
	if got := mUploadsFenced.Value() - fencedBefore; got != 1 {
		t.Fatalf("fenced uploads counted %d, want 1", got)
	}

	st := c.Status()
	if st.Done != 0 || st.Leased != 1 {
		t.Fatalf("zombie messages disturbed the shard state: %+v", st)
	}
}

// TestDistUploadSealsOnceIdempotently labels one shard by hand, uploads it
// twice under the sealing fence (second ack must be an idempotent OK), and
// tries a third time under a stale fence (rejected). The manifest must hold
// exactly one record and the merge must accept the run — no shard is ever
// merged twice.
func TestDistUploadSealsOnceIdempotently(t *testing.T) {
	c := testCoordinator(t, t.TempDir(), func(cfg *CoordinatorConfig) {
		cfg.Shards = 1
	})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	lease := leaseAs(t, srv.URL, "solo")
	if lease.Status != StatusLease {
		t.Fatalf("lease: %+v", lease)
	}

	// Label the leased benchmarks exactly as a worker would.
	corpus, err := unroll.GenerateCorpus(lease.Config.Seed, lease.Config.Scale)
	if err != nil {
		t.Fatal(err)
	}
	sub := subCorpusByName(t, corpus, lease.Benchmarks)
	timer := timerFor(lease.Config)
	state := core.NewCheckpoint(timer, lease.Config.Seed)
	pr := &core.Progress{Checkpoint: state, Every: 1 << 30, Save: func(*core.Checkpoint) error { return nil }}
	if _, err := core.CollectLabelsResumable(sub, timer, lease.Config.Seed, pr); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := state.Encode(&buf); err != nil {
		t.Fatal(err)
	}

	okBefore := mUploadsOK.Value()
	up := &UploadRequest{Worker: "solo", Shard: lease.Shard, Fence: lease.Fence, Checkpoint: buf.Bytes()}
	var ack Ack
	for i := 0; i < 2; i++ {
		if code := postJSON(t, srv.URL+"/v1/dist/upload", up, &ack); code != http.StatusOK || ack.Status != StatusOK {
			t.Fatalf("upload %d: HTTP %d %+v", i+1, code, ack)
		}
	}
	if got := mUploadsOK.Value() - okBefore; got != 1 {
		t.Fatalf("accepted uploads counted %d, want 1 (the retry must be idempotent)", got)
	}
	stale := *up
	stale.Fence = up.Fence + 1
	postJSON(t, srv.URL+"/v1/dist/upload", &stale, &ack)
	if ack.Status != StatusFenced {
		t.Fatalf("stale-fence re-upload of a sealed shard: %+v", ack)
	}

	recs, err := loadManifest(c.man.path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Shard != lease.Shard {
		t.Fatalf("manifest holds %d records, want exactly 1 for shard %d", len(recs), lease.Shard)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("single sealed shard did not finish the run")
	}
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
}

func subCorpusByName(t *testing.T, corpus *unroll.Corpus, names []string) *unroll.Corpus {
	t.Helper()
	byName := map[string]int{}
	for i, b := range corpus.Benchmarks {
		byName[b.Name] = i
	}
	sub := &unroll.Corpus{}
	for _, name := range names {
		i, ok := byName[name]
		if !ok {
			t.Fatalf("leased benchmark %q not in corpus", name)
		}
		sub.Benchmarks = append(sub.Benchmarks, corpus.Benchmarks[i])
	}
	return sub
}

// TestDistQuarantineAfterFailureBudget burns a worker's whole failure
// budget through lease expiries and asserts both the protocol answer and
// Worker.Run's error.
func TestDistQuarantineAfterFailureBudget(t *testing.T) {
	clock := newFakeClock()
	c := testCoordinator(t, t.TempDir(), func(cfg *CoordinatorConfig) {
		cfg.LeaseTTL = time.Second
		cfg.Now = clock.Now
		cfg.MaxWorkerFailures = 2
		cfg.MaxShardAttempts = 100 // worker budget, not shard budget, under test
	})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	quarantinedBefore := mQuarantined.Value()
	for i := 0; i < 2; i++ {
		if lr := leaseAs(t, srv.URL, "flaky"); lr.Status != StatusLease {
			t.Fatalf("lease %d: %+v", i+1, lr)
		}
		clock.Advance(2 * time.Second)
		c.ExpireLeases()
	}
	if got := mQuarantined.Value() - quarantinedBefore; got != 1 {
		t.Fatalf("quarantined workers counted %d, want 1", got)
	}
	if lr := leaseAs(t, srv.URL, "flaky"); lr.Status != StatusQuarantined {
		t.Fatalf("post-quarantine lease: %+v", lr)
	}
	// A healthy name still gets work.
	if lr := leaseAs(t, srv.URL, "healthy"); lr.Status != StatusLease {
		t.Fatalf("healthy worker refused: %+v", lr)
	}

	// The real worker loop surfaces the quarantine as ErrQuarantined.
	w := testWorker(t, "flaky", srv.URL)
	if err := w.Run(context.Background()); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantined Worker.Run: %v, want ErrQuarantined", err)
	}
}

// TestDistPoisonShardAbortsRun exhausts one shard's lease-attempt budget
// (three different workers, so no quarantine interferes) and asserts the
// run fails closed: stop answers, a sticky error, and a refused merge.
func TestDistPoisonShardAbortsRun(t *testing.T) {
	clock := newFakeClock()
	c := testCoordinator(t, t.TempDir(), func(cfg *CoordinatorConfig) {
		cfg.Shards = 1
		cfg.LeaseTTL = time.Second
		cfg.Now = clock.Now
		cfg.MaxWorkerFailures = 100
		cfg.MaxShardAttempts = 2
	})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	for _, name := range []string{"a", "b"} {
		if lr := leaseAs(t, srv.URL, name); lr.Status != StatusLease {
			t.Fatalf("lease by %s: %+v", name, lr)
		}
		clock.Advance(2 * time.Second)
		c.ExpireLeases()
	}
	if lr := leaseAs(t, srv.URL, "c"); lr.Status != StatusStop {
		t.Fatalf("lease past the shard budget: %+v", lr)
	}
	if c.Err() == nil {
		t.Fatal("poison shard did not fail the run")
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("failed run did not close Done")
	}
	if err := c.Finish(); err == nil {
		t.Fatal("merge of a failed run must refuse")
	}
}
