package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// maxSpans bounds a trace so a benchmark looping over an instrumented stage
// cannot grow memory without limit; spans past the cap are counted, not
// stored.
const maxSpans = 1 << 16

// SpanRecord is one finished span: a named interval on the run timeline,
// nested under its parent (0 = the trace root).
type SpanRecord struct {
	ID     int64         `json:"id"`
	Parent int64         `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Start  time.Duration `json:"start_ns"` // offset from trace start
	Dur    time.Duration `json:"dur_ns"`
}

// Span is an in-flight interval. End it exactly once. A nil *Span is a
// valid no-op (Begin returns nil while telemetry is disabled).
type Span struct {
	tr    *Trace
	id    int64
	name  string
	start time.Time
	prev  *Span // innermost span when this one began
}

// Trace collects spans for one run, all relative to a common start time.
// Begin/End may be called from any goroutine; the "current span" used for
// implicit parenting is kept best-effort under concurrency (a span begun on
// a worker goroutine parents to whatever phase is current, which is the
// phase that spawned the worker).
type Trace struct {
	start   time.Time
	nextID  atomic.Int64
	current atomic.Pointer[Span]
	dropped atomic.Int64

	mu   sync.Mutex
	done []SpanRecord
}

// NewTrace starts an empty trace anchored at now.
func NewTrace() *Trace { return &Trace{start: time.Now()} }

// DefaultTrace is the process-wide trace instrumentation sites append to.
var DefaultTrace = NewTrace()

// Begin opens a span named name as a child of the innermost open span (or
// of the root when none is open) and makes it current. Returns nil — a
// no-op span — while telemetry is disabled.
func (t *Trace) Begin(name string) *Span {
	if !enabled.Load() {
		return nil
	}
	s := &Span{
		tr:    t,
		id:    t.nextID.Add(1),
		name:  name,
		start: time.Now(),
		prev:  t.current.Load(),
	}
	t.current.Store(s)
	return s
}

// End closes the span, records it, and restores its parent as current. Safe
// on a nil receiver.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	t := s.tr
	// Restore the parent only if this span is still the innermost one;
	// under racing workers the current pointer belongs to whoever set it
	// last, and stealing it back would corrupt their nesting.
	t.current.CompareAndSwap(s, s.prev)
	var parent int64
	if s.prev != nil {
		parent = s.prev.id
	}
	rec := SpanRecord{
		ID:     s.id,
		Parent: parent,
		Name:   s.name,
		Start:  s.start.Sub(t.start),
		Dur:    end.Sub(s.start),
	}
	t.mu.Lock()
	if len(t.done) < maxSpans {
		t.done = append(t.done, rec)
	} else {
		t.dropped.Add(1)
	}
	t.mu.Unlock()
}

// CurrentName returns the name of the innermost open span, or "" when none
// is open. The worker pool uses it to label stage statistics with the phase
// that launched the stage.
func (t *Trace) CurrentName() string {
	if s := t.current.Load(); s != nil {
		return s.name
	}
	return ""
}

// Spans returns the finished spans in completion order.
func (t *Trace) Spans() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.done))
	copy(out, t.done)
	return out
}

// Dropped returns how many spans were discarded after the trace filled up.
func (t *Trace) Dropped() int64 { return t.dropped.Load() }

// Reset clears all recorded spans and re-anchors the trace at now.
func (t *Trace) Reset() {
	t.mu.Lock()
	t.done = t.done[:0]
	t.mu.Unlock()
	t.current.Store(nil)
	t.dropped.Store(0)
	t.start = time.Now()
}

// Begin opens a span on the default trace.
func Begin(name string) *Span { return DefaultTrace.Begin(name) }

// CurrentName returns the innermost open span name on the default trace.
func CurrentName() string { return DefaultTrace.CurrentName() }

// StageStats is the worker pool's accounting for one parallel stage: how
// many items ran, over how many workers, how busy each worker was, and the
// resulting utilization (busy time over workers × wall time).
type StageStats struct {
	Name        string          `json:"name"` // owning phase, or "" when none was open
	Items       int             `json:"items"`
	Workers     int             `json:"workers"`
	Wall        time.Duration   `json:"wall_ns"`
	Busy        []time.Duration `json:"busy_ns"` // per worker
	BusyTotal   time.Duration   `json:"busy_total_ns"`
	Utilization float64         `json:"utilization"` // 0..1
}

// maxStages bounds the stage log the same way maxSpans bounds the trace.
const maxStages = 4096

var (
	stagesMu      sync.Mutex
	stages        []StageStats
	stagesDropped atomic.Int64
)

// RecordStage appends one stage's statistics to the run log.
func RecordStage(s StageStats) {
	if !enabled.Load() {
		return
	}
	if s.Workers > 0 && s.Wall > 0 {
		s.Utilization = float64(s.BusyTotal) / (float64(s.Workers) * float64(s.Wall))
	}
	stagesMu.Lock()
	if len(stages) < maxStages {
		stages = append(stages, s)
	} else {
		stagesDropped.Add(1)
	}
	stagesMu.Unlock()
}

// Stages returns the recorded stage statistics in order.
func Stages() []StageStats {
	stagesMu.Lock()
	defer stagesMu.Unlock()
	out := make([]StageStats, len(stages))
	copy(out, stages)
	return out
}

// Reset clears the default registry, the default trace, and the stage log —
// a fresh telemetry slate for a new in-process run.
func Reset() {
	Default.Reset()
	DefaultTrace.Reset()
	stagesMu.Lock()
	stages = stages[:0]
	stagesMu.Unlock()
	stagesDropped.Store(0)
}
