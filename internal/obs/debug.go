package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// ServeDebug starts an HTTP server on addr (":0" picks a free port)
// exposing live telemetry while a long run is in flight:
//
//	/metrics        Prometheus text-format exposition of every metric
//	/debug/metrics  expvar-style JSON snapshot of every counter/gauge/histogram
//	/debug/stages   worker-pool stage statistics so far
//	/debug/trace    completed spans as Chrome trace-event JSON
//	/debug/traces   recent slow request traces (?format=chrome for trace-event JSON)
//	/debug/pprof/   the standard net/http/pprof profiles
//
// It returns the bound address. The server runs until the process exits;
// the pipeline never blocks on it.
func ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", HandleMetrics)
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Default.Snapshot())
	})
	mux.HandleFunc("/debug/traces", HandleRequestTraces)
	mux.HandleFunc("/debug/stages", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Stages())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		DefaultTrace.WriteChromeTrace(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}

// HandleMetrics serves the Default registry in the Prometheus text
// exposition format. Shared by ServeDebug and the serve mux so both
// scrape targets render identically.
func HandleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", PromContentType)
	Default.WritePrometheus(w)
}

// HandleRequestTraces serves the DefaultRequests ring: JSON by default,
// Chrome trace-event JSON with ?format=chrome.
func HandleRequestTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if r.URL.Query().Get("format") == "chrome" {
		DefaultRequests.WriteChromeTrace(w)
		return
	}
	DefaultRequests.WriteJSON(w)
}
