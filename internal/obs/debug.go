package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// ServeDebug starts an HTTP server on addr (":0" picks a free port)
// exposing live telemetry while a long run is in flight:
//
//	/debug/metrics  expvar-style JSON snapshot of every counter/gauge/histogram
//	/debug/stages   worker-pool stage statistics so far
//	/debug/trace    completed spans as Chrome trace-event JSON
//	/debug/pprof/   the standard net/http/pprof profiles
//
// It returns the bound address. The server runs until the process exits;
// the pipeline never blocks on it.
func ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Default.Snapshot())
	})
	mux.HandleFunc("/debug/stages", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Stages())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		DefaultTrace.WriteChromeTrace(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}
