package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestWritePrometheusFormat pins the exposition format: sanitized names,
// the _total counter suffix, gauge passthrough, and cumulative histogram
// buckets ending in +Inf with _sum/_count.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.requests").Add(42)
	r.Gauge("serve.queue.depth").Set(7)
	h := r.Histogram("serve.latency_us", []int64{10, 100})
	for _, v := range []int64{5, 50, 500} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		"# TYPE serve_requests_total counter",
		"serve_requests_total 42",
		"# TYPE serve_queue_depth gauge",
		"serve_queue_depth 7",
		"# TYPE serve_latency_us histogram",
		`serve_latency_us_bucket{le="10"} 1`,
		`serve_latency_us_bucket{le="100"} 2`,
		`serve_latency_us_bucket{le="+Inf"} 3`,
		"serve_latency_us_sum 555",
		"serve_latency_us_count 3",
	}
	for _, line := range want {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing line %q in output:\n%s", line, out)
		}
	}
	// Buckets must be cumulative and ordered within the histogram block.
	if strings.Index(out, `le="10"`) > strings.Index(out, `le="+Inf"`) {
		t.Error("buckets not in bound order")
	}
}

// TestWritePrometheusValid walks every rendered line and asserts it is
// either a comment or a `name{labels} value` sample with a valid metric
// name — the grammar a scraper parses.
func TestWritePrometheusValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird. name-1").Inc()
	r.Counter("client.retry.giveups").Add(3)
	r.Gauge("9starts.with.digit").Set(1)
	r.Histogram("lat", ExpBounds(50, 2, 4)).Observe(1000)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var name string
		var value int64
		rest := line
		if i := strings.IndexAny(rest, "{ "); i >= 0 {
			name = rest[:i]
		} else {
			t.Fatalf("unparseable sample line %q", line)
		}
		if i := strings.LastIndexByte(rest, ' '); i >= 0 {
			if _, err := fmt.Sscanf(rest[i+1:], "%d", &value); err != nil {
				t.Errorf("line %q: non-integer value: %v", line, err)
			}
		}
		if name == "" {
			t.Fatalf("empty metric name in %q", line)
		}
		for i := 0; i < len(name); i++ {
			c := name[i]
			valid := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
			if !valid {
				t.Errorf("invalid metric name %q (byte %q)", name, c)
				break
			}
		}
	}
}

// TestPromName pins the sanitizer's edge cases.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve.requests":   "serve_requests",
		"a-b c":            "a_b_c",
		"1abc":             "_1abc",
		"":                 "_",
		"ok_name:subsys":   "ok_name:subsys",
		"serve.latency_us": "serve_latency_us",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestServeDebugPrometheus checks the debug endpoint serves the Default
// registry as Prometheus text.
func TestServeDebugPrometheus(t *testing.T) {
	C("promtest.counter").Add(5)
	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(string(body), "promtest_counter_total") {
		t.Errorf("scrape missing promtest_counter_total:\n%.500s", body)
	}
}
