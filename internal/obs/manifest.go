package obs

import (
	"encoding/json"
	"os"
	"runtime"
	"time"
)

// Manifest is the machine-readable record of one run: what was run, on
// what, and every telemetry value at exit. Written by the -manifest flag of
// cmd/experiments and cmd/labelgen; diff two manifests (ignoring the
// wall-clock fields) to compare runs. Metric values under Counters are
// deterministic for a fixed seed and scale — except the *.races counters,
// which count scheduling-dependent duplicate compiles — while Phases,
// Stages, and Histograms carry wall-clock measurements that naturally vary.
type Manifest struct {
	Tool string   `json:"tool"`
	Args []string `json:"args,omitempty"`

	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Workers   int    `json:"workers"` // worker-pool width used

	Seed   int64 `json:"seed"`
	Config any   `json:"config,omitempty"` // the run's full configuration struct

	Start    time.Time     `json:"start"`
	WallTime time.Duration `json:"wall_time_ns"`

	Phases     []SpanRecord            `json:"phases,omitempty"`
	Stages     []StageStats            `json:"stages,omitempty"`
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// BuildManifest snapshots the default registry, trace, and stage log into a
// manifest for the finished (or in-flight) run.
func BuildManifest(tool string, args []string, seed int64, workers int, cfg any) *Manifest {
	snap := Default.Snapshot()
	return &Manifest{
		Tool:       tool,
		Args:       args,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Workers:    workers,
		Seed:       seed,
		Config:     cfg,
		Start:      DefaultTrace.start,
		WallTime:   time.Since(DefaultTrace.start),
		Phases:     DefaultTrace.Spans(),
		Stages:     Stages(),
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: snap.Histograms,
	}
}

// WriteFile writes the manifest as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
