// Package obs is the pipeline's telemetry layer: named atomic counters,
// gauges, and fixed-bucket histograms in a registry, lightweight phase/span
// tracing with Chrome trace-event export, per-stage worker-pool accounting,
// run manifests, and a live debug HTTP endpoint.
//
// The package is zero-dependency (standard library only) and safe for
// concurrent use. Hot-path operations — Counter.Add, Gauge.Set,
// Histogram.Observe — are allocation-free atomic updates, so instrumenting
// the simulator's compile cache or the worker pool's item loop does not
// perturb results or measurably slow them down. Instrumentation never
// touches rng streams or work ordering, so the parallel engine's
// bit-identical-to-serial guarantee holds with telemetry enabled.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// enabled gates all recording. Telemetry is on by default; benchmarks
// disable it to measure instrumentation overhead.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enabled reports whether telemetry recording is active.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns recording on or off and returns a function restoring the
// previous setting. Meant for benchmarks and tests, not for toggling while
// metrics are being read.
func SetEnabled(on bool) (restore func()) {
	prev := enabled.Swap(on)
	return func() { enabled.Store(prev) }
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name string
	v    atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Allocation-free; a no-op while telemetry is disabled.
func (c *Counter) Add(n int64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is an atomic last-value metric.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set records the current value.
func (g *Gauge) Set(n int64) {
	if enabled.Load() {
		g.v.Store(n)
	}
}

// Value returns the last set value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper limits; one implicit overflow bucket catches everything above the
// last bound. Observations are atomic adds — no locks, no allocation.
type Histogram struct {
	name   string
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	// Buckets are few (≤ ~32); linear scan beats binary search on the
	// short, cache-resident bounds slice.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Name returns the registered name.
func (h *Histogram) Name() string { return h.name }

// Quantile returns an upper-bound estimate of the q-quantile (0..1): the
// bound of the bucket where the q-th observation falls.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen > target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.sum.Load() // overflow bucket: no bound; report a ceiling
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// ExpBounds builds n exponentially spaced bucket bounds starting at start
// and multiplying by factor — the usual shape for latency histograms.
func ExpBounds(start int64, factor float64, n int) []int64 {
	bounds := make([]int64, n)
	v := float64(start)
	for i := range bounds {
		bounds[i] = int64(v)
		v *= factor
	}
	return bounds
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. Most code uses the package-level Default registry through
// C, G, and H.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Default is the process-wide registry every instrumentation site uses.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use. Call sites
// resolve their counters once (package-level vars), so the hot path is a
// single atomic add with no map lookup.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later bounds are ignored — the first registration wins).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := make([]int64, len(bounds))
		copy(b, bounds)
		h = &Histogram{name: name, bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// C returns a counter from the Default registry.
func C(name string) *Counter { return Default.Counter(name) }

// G returns a gauge from the Default registry.
func G(name string) *Gauge { return Default.Gauge(name) }

// H returns a histogram from the Default registry.
func H(name string, bounds []int64) *Histogram { return Default.Histogram(name, bounds) }

// Reset zeroes every metric in the registry. Metric identities survive —
// package-level *Counter vars keep working — only the values clear. Tests
// and back-to-back in-process runs use this between runs.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.sum.Store(0)
		h.count.Store(0)
	}
}

// BucketCount is one histogram bucket in a snapshot: the count of
// observations at or below the bound (Le == 0 on the final bucket marks
// overflow).
type BucketCount struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistSnapshot is a point-in-time histogram reading.
type HistSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time reading of a whole registry, ready for JSON.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot reads every metric. Values are read without stopping writers, so
// a snapshot taken mid-run is approximate across metrics but exact per
// metric.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistSnapshot{Count: h.Count(), Sum: h.Sum()}
		for i := range h.counts {
			var le int64
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			if n := h.counts[i].Load(); n > 0 {
				hs.Buckets = append(hs.Buckets, BucketCount{Le: le, Count: n})
			}
		}
		s.Histograms[name] = hs
	}
	return s
}

// sortedKeys returns map keys in lexical order, for stable rendering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
