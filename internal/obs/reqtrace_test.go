package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRequestTraceStages(t *testing.T) {
	tr := AcquireRequestTrace("req-1")
	if tr == nil {
		t.Fatal("telemetry enabled but AcquireRequestTrace returned nil")
	}
	if tr.ID() != "req-1" {
		t.Errorf("ID %q", tr.ID())
	}
	tr.BeginStage(StageCacheLookup)
	tr.EndStage(StageCacheLookup)
	tr.BeginStage(StagePredict)
	time.Sleep(time.Millisecond)
	tr.EndStage(StagePredict)

	if d := tr.StageDur(StagePredict); d < time.Millisecond {
		t.Errorf("predict stage %v, want >= 1ms", d)
	}
	if d := tr.StageDur(StageCacheLookup); d < 0 {
		t.Errorf("cache stage %v", d)
	}
	// A stage that never ran reads zero; EndStage without BeginStage is a
	// no-op.
	tr.EndStage(StageEncode)
	if d := tr.StageDur(StageEncode); d != 0 {
		t.Errorf("unran stage duration %v", d)
	}
	if d := tr.StageDur(StageQueueWait); d != 0 {
		t.Errorf("unran stage duration %v", d)
	}
	ReleaseRequestTrace(tr)
}

func TestRequestTraceNilSafe(t *testing.T) {
	var tr *RequestTrace
	tr.BeginStage(StagePredict)
	tr.EndStage(StagePredict)
	if tr.StageDur(StagePredict) != 0 || tr.ID() != "" {
		t.Error("nil trace must read zero")
	}
	ReleaseRequestTrace(tr)

	restore := SetEnabled(false)
	defer restore()
	if got := AcquireRequestTrace("x"); got != nil {
		t.Error("disabled telemetry must acquire a nil trace")
	}
}

func TestTraceRingBoundedAndOrdered(t *testing.T) {
	ring := NewTraceRing(4)
	for i := 0; i < 10; i++ {
		tr := AcquireRequestTrace(fmt.Sprintf("r%d", i))
		ring.Add(tr, time.Duration(i+1)*time.Millisecond)
		ReleaseRequestTrace(tr)
	}
	recs := ring.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recs))
	}
	// Most recent first: r9, r8, r7, r6.
	for i, want := range []string{"r9", "r8", "r7", "r6"} {
		if recs[i].ID != want {
			t.Errorf("recs[%d].ID = %q, want %q", i, recs[i].ID, want)
		}
	}
	if ring.Seen() != 10 || ring.Kept() != 10 {
		t.Errorf("seen=%d kept=%d", ring.Seen(), ring.Kept())
	}
}

func TestTraceRingSlowThreshold(t *testing.T) {
	ring := NewTraceRing(8)
	ring.SetSlowThreshold(10 * time.Millisecond)
	fast := AcquireRequestTrace("fast")
	ring.Add(fast, time.Millisecond)
	ReleaseRequestTrace(fast)
	slow := AcquireRequestTrace("slow")
	ring.Add(slow, 20*time.Millisecond)
	ReleaseRequestTrace(slow)

	recs := ring.Snapshot()
	if len(recs) != 1 || recs[0].ID != "slow" {
		t.Fatalf("ring = %+v, want only the slow trace", recs)
	}
	if ring.Seen() != 2 || ring.Kept() != 1 {
		t.Errorf("seen=%d kept=%d", ring.Seen(), ring.Kept())
	}
}

func TestTraceRingJSONAndChrome(t *testing.T) {
	ring := NewTraceRing(8)
	tr := AcquireRequestTrace("abc")
	tr.BeginStage(StagePredict)
	tr.EndStage(StagePredict)
	ring.Add(tr, 5*time.Millisecond)
	ReleaseRequestTrace(tr)

	var buf bytes.Buffer
	if err := ring.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Seen   int64 `json:"seen"`
		Traces []struct {
			ID      string `json:"id"`
			TotalNS int64  `json:"total_ns"`
			Stages  []struct {
				Name  string `json:"name"`
				DurNS int64  `json:"dur_ns"`
			} `json:"stages"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("ring JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Traces) != 1 || doc.Traces[0].ID != "abc" || doc.Traces[0].TotalNS != int64(5*time.Millisecond) {
		t.Fatalf("trace doc: %+v", doc)
	}
	if len(doc.Traces[0].Stages) != 1 || doc.Traces[0].Stages[0].Name != "predict" {
		t.Fatalf("stages: %+v", doc.Traces[0].Stages)
	}

	buf.Reset()
	if err := ring.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace: %v\n%s", err, buf.String())
	}
	// One whole-request event plus one stage event.
	if len(events) != 2 {
		t.Fatalf("%d chrome events, want 2", len(events))
	}
	if events[0]["name"] != "request abc" || events[0]["ph"] != "X" {
		t.Errorf("request event: %+v", events[0])
	}
	if events[1]["name"] != "predict" {
		t.Errorf("stage event: %+v", events[1])
	}
}

// TestTraceRingConcurrent drives concurrent acquire/mark/add/snapshot
// under the race detector.
func TestTraceRingConcurrent(t *testing.T) {
	ring := NewTraceRing(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := AcquireRequestTrace("c")
				tr.BeginStage(StagePredict)
				tr.EndStage(StagePredict)
				ring.Add(tr, time.Microsecond)
				ReleaseRequestTrace(tr)
				if i%50 == 0 {
					ring.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if ring.Seen() != 1600 {
		t.Fatalf("seen %d, want 1600", ring.Seen())
	}
}

// TestRequestTraceZeroAllocs pins the per-request tracing cost on the
// serve hot path: acquire (pooled), stage marks, ring add (value copy into
// preallocated storage), and release must not allocate.
func TestRequestTraceZeroAllocs(t *testing.T) {
	ring := NewTraceRing(8)
	id := "warm-id"
	// Warm the pool so the measurement sees steady state.
	ReleaseRequestTrace(AcquireRequestTrace(id))
	allocs := testing.AllocsPerRun(1000, func() {
		tr := AcquireRequestTrace(id)
		tr.BeginStage(StageCacheLookup)
		tr.EndStage(StageCacheLookup)
		tr.BeginStage(StagePredict)
		tr.EndStage(StagePredict)
		ring.Add(tr, time.Millisecond)
		ReleaseRequestTrace(tr)
	})
	if allocs != 0 {
		t.Fatalf("traced request path allocates %v per request, want 0", allocs)
	}
}
