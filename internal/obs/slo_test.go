package obs

import (
	"sync"
	"testing"
	"time"
)

// sloClock is a hand-advanced clock for deterministic window accounting.
type sloClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *sloClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *sloClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newSLOUnderTest(reg *Registry, clk *sloClock) *SLO {
	return NewSLO(SLOConfig{
		Name:          "test.slo",
		Window:        60 * time.Second,
		Slots:         6,
		Availability:  0.99,
		LatencyP99US:  1000,
		LatencyBounds: []int64{100, 1000, 10000},
		Registry:      reg,
		Now:           clk.now,
	})
}

func TestSLODeterministicAccounting(t *testing.T) {
	clk := &sloClock{t: time.Unix(1000, 0)}
	reg := NewRegistry()
	s := newSLOUnderTest(reg, clk)

	// 98 fast successes, 2 failures: availability exactly 0.98, below the
	// 0.99 objective, burning budget at 2x.
	for i := 0; i < 98; i++ {
		s.Record(50, true)
	}
	s.Record(5000, false)
	s.Record(5000, false)

	st := s.Status()
	if st.Total != 100 || st.Errors != 2 {
		t.Fatalf("window: total=%d errors=%d", st.Total, st.Errors)
	}
	if st.Availability != 0.98 {
		t.Errorf("availability %v, want 0.98", st.Availability)
	}
	if got, want := st.BurnRate, 0.02/0.01; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("burn rate %v, want %v", got, want)
	}
	if st.AvailabilityOK {
		t.Error("availability objective cannot hold at 0.98 vs 0.99")
	}
	// p99 of 98×50µs + 2×5000µs falls in the 10000 bucket.
	if st.P99US != 10000 {
		t.Errorf("p99 %dµs, want 10000 (bucket bound)", st.P99US)
	}
	if st.LatencyOK || st.Healthy {
		t.Errorf("latency/healthy flags: %+v", st)
	}
}

func TestSLOWindowAgesOut(t *testing.T) {
	clk := &sloClock{t: time.Unix(2000, 0)}
	reg := NewRegistry()
	s := newSLOUnderTest(reg, clk)

	s.Record(50, false) // one failure now
	if st := s.Status(); st.Errors != 1 {
		t.Fatalf("errors=%d before aging", st.Errors)
	}
	// Advance past the whole window: the failure must age out entirely.
	clk.advance(61 * time.Second)
	st := s.Status()
	if st.Total != 0 || st.Errors != 0 {
		t.Fatalf("stale slots leaked: %+v", st)
	}
	if st.Availability != 1 || st.BurnRate != 0 || !st.Healthy {
		t.Errorf("idle window should read healthy: %+v", st)
	}

	// Fresh traffic lands in rotated slots.
	s.Record(50, true)
	if st := s.Status(); st.Total != 1 || st.Errors != 0 {
		t.Fatalf("post-rotation recording: %+v", st)
	}
}

func TestSLOPartialAging(t *testing.T) {
	clk := &sloClock{t: time.Unix(3000, 0)}
	reg := NewRegistry()
	s := newSLOUnderTest(reg, clk) // 60s window, 6 slots of 10s

	s.Record(50, false)
	clk.advance(30 * time.Second) // 3 slots later: still in window
	s.Record(50, true)
	if st := s.Status(); st.Total != 2 || st.Errors != 1 {
		t.Fatalf("mid-window: %+v", st)
	}
	clk.advance(35 * time.Second) // first record now 65s old, second 35s
	st := s.Status()
	if st.Total != 1 || st.Errors != 0 {
		t.Fatalf("partial aging: %+v", st)
	}
}

func TestSLOPublishGauges(t *testing.T) {
	clk := &sloClock{t: time.Unix(4000, 0)}
	reg := NewRegistry()
	s := newSLOUnderTest(reg, clk)

	for i := 0; i < 99; i++ {
		s.Record(50, true)
	}
	s.Record(50, false)
	s.Publish()

	snap := reg.Snapshot()
	if got := snap.Gauges["test.slo.availability_ppm"]; got != 990_000 {
		t.Errorf("availability_ppm %d, want 990000", got)
	}
	if got := snap.Gauges["test.slo.burn_rate_milli"]; got != 1000 {
		t.Errorf("burn_rate_milli %d, want 1000 (exactly at budget)", got)
	}
	if got := snap.Gauges["test.slo.window_total"]; got != 100 {
		t.Errorf("window_total %d", got)
	}
	if got := snap.Gauges["test.slo.window_errors"]; got != 1 {
		t.Errorf("window_errors %d", got)
	}
	if got := snap.Gauges["test.slo.p99_us"]; got != 100 {
		t.Errorf("p99_us %d, want 100 (all observations in first bucket)", got)
	}
}

// TestSLOConcurrent hammers Record and Status from many goroutines while
// the clock advances, for the race detector; totals must balance.
func TestSLOConcurrent(t *testing.T) {
	clk := &sloClock{t: time.Unix(5000, 0)}
	reg := NewRegistry()
	s := newSLOUnderTest(reg, clk)

	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Record(int64(i%2000), i%10 != 0)
				if i%100 == 0 {
					s.Status()
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Status()
	if st.Total != workers*per {
		t.Fatalf("total %d, want %d", st.Total, workers*per)
	}
	if st.Errors != workers*per/10 {
		t.Fatalf("errors %d, want %d", st.Errors, workers*per/10)
	}
}

// TestSLORecordZeroAllocs pins the request-path cost: Record must not
// allocate.
func TestSLORecordZeroAllocs(t *testing.T) {
	clk := &sloClock{t: time.Unix(6000, 0)}
	s := newSLOUnderTest(NewRegistry(), clk)
	allocs := testing.AllocsPerRun(1000, func() {
		s.Record(50, true)
	})
	if allocs != 0 {
		t.Fatalf("SLO.Record allocates %v per call, want 0", allocs)
	}
}
