package obs

import (
	"sync"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	h := NewRegistry().Histogram("q.empty", []int64{10, 100})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("Quantile(%v) on empty histogram = %d, want 0", q, got)
		}
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	h := NewRegistry().Histogram("q.single", []int64{100})
	h.Observe(50)
	// Every in-range quantile resolves to the sole bucket's bound.
	for _, q := range []float64{0, 0.5, 0.99} {
		if got := h.Quantile(q); got != 100 {
			t.Errorf("Quantile(%v) = %d, want 100", q, got)
		}
	}
}

func TestQuantileOutOfRange(t *testing.T) {
	h := NewRegistry().Histogram("q.range", []int64{10, 100, 1000})
	for _, v := range []int64{5, 50, 500} {
		h.Observe(v)
	}
	// q < 0 clamps to the lowest populated bucket.
	if got := h.Quantile(-1); got != 10 {
		t.Errorf("Quantile(-1) = %d, want 10", got)
	}
	// q > 1 can't be exceeded by any cumulative count; the estimate
	// saturates at the last bound.
	if got := h.Quantile(2); got != 1000 {
		t.Errorf("Quantile(2) = %d, want 1000", got)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	h := NewRegistry().Histogram("q.overflow", []int64{10})
	h.Observe(5000) // beyond every bound: lands in the implicit overflow bucket
	// The overflow bucket has no upper bound; the estimate falls back to the
	// sum as a ceiling.
	if got := h.Quantile(0.99); got != 5000 {
		t.Errorf("Quantile(0.99) = %d, want 5000 (sum ceiling)", got)
	}
	h.Observe(5) // in-range observation keeps low quantiles in real buckets
	if got := h.Quantile(0.25); got != 10 {
		t.Errorf("Quantile(0.25) = %d, want 10", got)
	}
}

// TestHistogramConcurrentObserveSnapshot races Observe against Snapshot
// and Quantile; run under -race. Totals must balance once writers stop.
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q.conc", ExpBounds(1, 2, 12))
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				reg.Snapshot()
				h.Quantile(0.5)
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	reader.Wait()

	if h.Count() != workers*per {
		t.Fatalf("count %d, want %d", h.Count(), workers*per)
	}
	snap := reg.Snapshot()
	var bucketTotal int64
	for _, b := range snap.Histograms["q.conc"].Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != workers*per {
		t.Fatalf("bucket counts sum to %d, want %d", bucketTotal, workers*per)
	}
}

// TestExpBoundsProperties is a property test over the bound generator:
// correct length, non-decreasing always, strictly increasing for integer
// growth (start >= 1, factor >= 2), and the seed lands in bounds[0].
func TestExpBoundsProperties(t *testing.T) {
	cases := []struct {
		start  int64
		factor float64
		n      int
	}{
		{1, 2, 1}, {1, 2, 16}, {50, 2, 10}, {10, 10, 6},
		{1, 1.5, 20}, {100, 1.1, 30}, {7, 3, 12}, {1000, 2.5, 8},
	}
	for _, c := range cases {
		b := ExpBounds(c.start, c.factor, c.n)
		if len(b) != c.n {
			t.Fatalf("ExpBounds(%d,%v,%d): len %d", c.start, c.factor, c.n, len(b))
		}
		if b[0] != c.start {
			t.Errorf("ExpBounds(%d,%v,%d): first bound %d, want start", c.start, c.factor, c.n, b[0])
		}
		for i := 1; i < len(b); i++ {
			if b[i] < b[i-1] {
				t.Errorf("ExpBounds(%d,%v,%d): decreasing at %d: %v", c.start, c.factor, c.n, i, b)
				break
			}
			// Integer truncation can flatten fractional factors, but with
			// factor >= 2 and start >= 1 every step must strictly grow.
			if c.start >= 1 && c.factor >= 2 && b[i] <= b[i-1] {
				t.Errorf("ExpBounds(%d,%v,%d): not strictly increasing at %d: %v", c.start, c.factor, c.n, i, b)
				break
			}
		}
	}
}
