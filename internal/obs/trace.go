package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// chromeEvent is one Chrome trace-event ("X" = complete event). Load the
// exported file in chrome://tracing or https://ui.perfetto.dev.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// WriteChromeTrace exports the finished spans as a Chrome trace-event JSON
// array. Spans that overlap in time (candidate scoring begun on worker
// goroutines) land on separate rows; nesting on a row follows time
// containment, which chrome://tracing renders as a flame graph.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	// Greedy row assignment: each span goes on the first row whose last
	// span has already ended (or contains it), so overlapping siblings
	// don't draw on top of each other.
	var rowEnd []time.Duration
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		row := -1
		for r, end := range rowEnd {
			if s.Start >= end || s.Start+s.Dur <= end {
				row = r
				break
			}
		}
		if row < 0 {
			row = len(rowEnd)
			rowEnd = append(rowEnd, 0)
		}
		if e := s.Start + s.Dur; e > rowEnd[row] {
			rowEnd[row] = e
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start) / float64(time.Microsecond),
			Dur:  float64(s.Dur) / float64(time.Microsecond),
			Pid:  1,
			Tid:  row + 1,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// WriteSummary renders the end-of-run telemetry digest: the phase tree with
// wall times, every counter and gauge, histogram quantiles, and per-stage
// worker utilization. This is what cmd/experiments prints to stderr in
// place of the old ad-hoc "[step took 1.2s]" lines.
func WriteSummary(w io.Writer) {
	fmt.Fprintln(w, "── telemetry ──")
	writePhases(w, DefaultTrace)
	writeStages(w)
	writeMetrics(w, Default.Snapshot())
}

func writePhases(w io.Writer, t *Trace) {
	spans := t.Spans()
	if len(spans) == 0 {
		return
	}
	children := map[int64][]SpanRecord{}
	for _, s := range spans {
		children[s.Parent] = append(children[s.Parent], s)
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool { return kids[i].Start < kids[j].Start })
	}
	fmt.Fprintln(w, "phases:")
	var walk func(parent int64, depth int)
	walk = func(parent int64, depth int) {
		for _, s := range children[parent] {
			fmt.Fprintf(w, "  %s%-*s %10v\n", strings.Repeat("  ", depth),
				36-2*depth, s.Name, s.Dur.Round(time.Millisecond))
			walk(s.ID, depth+1)
		}
	}
	walk(0, 0)
	if n := t.Dropped(); n > 0 {
		fmt.Fprintf(w, "  (%d spans dropped past the %d-span cap)\n", n, maxSpans)
	}
}

func writeStages(w io.Writer) {
	st := Stages()
	if len(st) == 0 {
		return
	}
	// Aggregate stages by phase name: greedy rounds and repeated folds
	// collapse into one line each.
	type agg struct {
		items, runs, workers int
		wall, busy           time.Duration
	}
	byName := map[string]*agg{}
	var order []string
	for _, s := range st {
		name := s.Name
		if name == "" {
			name = "(unphased)"
		}
		a, ok := byName[name]
		if !ok {
			a = &agg{}
			byName[name] = a
			order = append(order, name)
		}
		a.items += s.Items
		a.runs++
		if s.Workers > a.workers {
			a.workers = s.Workers
		}
		a.wall += s.Wall
		a.busy += s.BusyTotal
	}
	fmt.Fprintln(w, "worker-pool stages:")
	for _, name := range order {
		a := byName[name]
		util := 0.0
		if a.workers > 0 && a.wall > 0 {
			util = float64(a.busy) / (float64(a.workers) * float64(a.wall))
		}
		fmt.Fprintf(w, "  %-36s items=%-6d workers=%-3d wall=%-10v util=%4.0f%%\n",
			name, a.items, a.workers, a.wall.Round(time.Millisecond), 100*util)
	}
	if n := stagesDropped.Load(); n > 0 {
		fmt.Fprintf(w, "  (%d stages dropped past the %d-stage cap)\n", n, maxStages)
	}
}

func writeMetrics(w io.Writer, s *Snapshot) {
	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(w, "  %-36s %d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(w, "  %-36s %d\n", name, s.Gauges[name])
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(w, "histograms:")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			mean := int64(0)
			if h.Count > 0 {
				mean = h.Sum / h.Count
			}
			fmt.Fprintf(w, "  %-36s count=%-8d mean=%d\n", name, h.Count, mean)
		}
	}
}
