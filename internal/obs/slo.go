package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// SLOConfig sizes one service-level-objective tracker.
type SLOConfig struct {
	// Name prefixes the gauges the tracker publishes into the registry,
	// e.g. "serve.slo" publishes serve.slo.availability_ppm and friends.
	Name string

	// Window is the rolling measurement window (default 60s), divided
	// into Slots ring slots (default 12) that age out individually.
	Window time.Duration
	Slots  int

	// Availability is the success-fraction objective, e.g. 0.999.
	// Values outside (0,1) are clamped into it.
	Availability float64

	// LatencyP99US is the p99 latency objective in microseconds.
	LatencyP99US int64

	// LatencyBounds are the tracker's latency histogram bounds
	// (default ExpBounds(50, 2, 16), the serve latency shape).
	LatencyBounds []int64

	// Registry receives the published gauges (default the Default
	// registry).
	Registry *Registry

	// Now is the clock, injectable so tests get deterministic windows.
	Now func() time.Time
}

// sloSlot is one ring slot: the counts for one Window/Slots interval.
// All fields are atomics so Record never takes a lock on the happy path.
type sloSlot struct {
	start   atomic.Int64 // absolute slot index this slot currently holds
	total   atomic.Int64
	errors  atomic.Int64
	sum     atomic.Int64
	buckets []atomic.Int64 // len(bounds)+1, last = overflow
}

// SLO tracks an availability objective and a p99-latency objective over a
// rolling window, with error-budget burn-rate accounting. Record is
// allocation-free (atomic adds into a pre-built ring slot); aging a slot
// out takes a short lock once per slot interval. The clock is injectable,
// so tests pin time and get exact, deterministic window accounting.
type SLO struct {
	cfg     SLOConfig
	epoch   time.Time
	slotDur time.Duration
	bounds  []int64
	slots   []sloSlot
	mu      sync.Mutex // guards slot rotation only

	// Published gauges (integer-scaled: availability in ppm, burn rate in
	// thousandths).
	gAvailPPM  *Gauge
	gBurnMilli *Gauge
	gP99US     *Gauge
	gTotal     *Gauge
	gErrors    *Gauge
}

// NewSLO builds a tracker and registers its gauges.
func NewSLO(cfg SLOConfig) *SLO {
	if cfg.Window <= 0 {
		cfg.Window = 60 * time.Second
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 12
	}
	if cfg.Availability <= 0 || cfg.Availability >= 1 {
		cfg.Availability = 0.999
	}
	if cfg.LatencyP99US <= 0 {
		cfg.LatencyP99US = 250_000
	}
	if cfg.LatencyBounds == nil {
		cfg.LatencyBounds = ExpBounds(50, 2, 16)
	}
	if cfg.Registry == nil {
		cfg.Registry = Default
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Name == "" {
		cfg.Name = "slo"
	}
	s := &SLO{
		cfg:     cfg,
		epoch:   cfg.Now(),
		slotDur: cfg.Window / time.Duration(cfg.Slots),
		bounds:  cfg.LatencyBounds,
		slots:   make([]sloSlot, cfg.Slots),

		gAvailPPM:  cfg.Registry.Gauge(cfg.Name + ".availability_ppm"),
		gBurnMilli: cfg.Registry.Gauge(cfg.Name + ".burn_rate_milli"),
		gP99US:     cfg.Registry.Gauge(cfg.Name + ".p99_us"),
		gTotal:     cfg.Registry.Gauge(cfg.Name + ".window_total"),
		gErrors:    cfg.Registry.Gauge(cfg.Name + ".window_errors"),
	}
	for i := range s.slots {
		s.slots[i].start.Store(-1)
		s.slots[i].buckets = make([]atomic.Int64, len(s.bounds)+1)
	}
	return s
}

// Record accounts one request outcome: its latency in microseconds and
// whether it succeeded. Allocation-free; a no-op while telemetry is
// disabled.
func (s *SLO) Record(latencyUS int64, ok bool) {
	if !enabled.Load() {
		return
	}
	abs := s.absSlot()
	sl := &s.slots[abs%int64(len(s.slots))]
	if sl.start.Load() != abs {
		s.rotate(sl, abs)
	}
	sl.total.Add(1)
	if !ok {
		sl.errors.Add(1)
	}
	i := 0
	for i < len(s.bounds) && latencyUS > s.bounds[i] {
		i++
	}
	sl.buckets[i].Add(1)
	sl.sum.Add(latencyUS)
}

// absSlot returns the absolute (monotone) slot index for now.
func (s *SLO) absSlot() int64 {
	return int64(s.cfg.Now().Sub(s.epoch) / s.slotDur)
}

// rotate retires a slot whose interval has passed and re-anchors it at
// abs. Concurrent recorders that raced the rotation land in the fresh
// slot; the brief cross-slot smear is bounded by one slot interval.
func (s *SLO) rotate(sl *sloSlot, abs int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sl.start.Load() == abs {
		return // another recorder rotated it first
	}
	sl.total.Store(0)
	sl.errors.Store(0)
	sl.sum.Store(0)
	for i := range sl.buckets {
		sl.buckets[i].Store(0)
	}
	sl.start.Store(abs)
}

// SLOStatus is a point-in-time objective reading over the rolling window.
type SLOStatus struct {
	Window time.Duration `json:"window_ns"`
	Total  int64         `json:"total"`
	Errors int64         `json:"errors"`

	// Availability is the window success fraction (1.0 when idle — an
	// idle service is not failing its objective).
	Availability float64 `json:"availability"`
	// BurnRate is the error-budget burn multiple: observed error rate
	// over the budgeted error rate (1-objective). 1.0 burns the budget
	// exactly at the sustainable pace; >1 exhausts it early.
	BurnRate float64 `json:"burn_rate"`
	// P99US is the upper-bound p99 latency estimate in microseconds
	// (bucket-bound semantics, matching Histogram.Quantile).
	P99US int64 `json:"p99_us"`

	AvailabilityOK bool `json:"availability_ok"`
	LatencyOK      bool `json:"latency_ok"`
	Healthy        bool `json:"healthy"`
}

// Status merges every live slot into one objective reading.
func (s *SLO) Status() SLOStatus {
	abs := s.absSlot()
	min := abs - int64(len(s.slots)) + 1
	var total, errs, sum int64
	merged := make([]int64, len(s.bounds)+1)
	for i := range s.slots {
		sl := &s.slots[i]
		st := sl.start.Load()
		if st < min || st > abs {
			continue // empty or aged out
		}
		total += sl.total.Load()
		errs += sl.errors.Load()
		sum += sl.sum.Load()
		for b := range merged {
			merged[b] += sl.buckets[b].Load()
		}
	}
	out := SLOStatus{Window: s.cfg.Window, Total: total, Errors: errs, Availability: 1}
	if total > 0 {
		out.Availability = float64(total-errs) / float64(total)
	}
	budget := 1 - s.cfg.Availability
	if total > 0 {
		out.BurnRate = (float64(errs) / float64(total)) / budget
	}
	out.P99US = quantileOf(merged, s.bounds, sum, 0.99)
	out.AvailabilityOK = out.Availability >= s.cfg.Availability
	out.LatencyOK = out.P99US <= s.cfg.LatencyP99US
	out.Healthy = out.AvailabilityOK && out.LatencyOK
	return out
}

// Publish refreshes the registered gauges from a fresh Status. Metric
// readers (the /metrics scrape, /readyz) call it; Record never does, so
// the request path stays a handful of atomic adds.
func (s *SLO) Publish() SLOStatus {
	st := s.Status()
	s.gAvailPPM.Set(int64(math.Round(st.Availability * 1e6)))
	burn := st.BurnRate * 1000
	if burn > 1e9 {
		burn = 1e9
	}
	s.gBurnMilli.Set(int64(math.Round(burn)))
	s.gP99US.Set(st.P99US)
	s.gTotal.Set(st.Total)
	s.gErrors.Set(st.Errors)
	return st
}

// quantileOf is Histogram.Quantile over a merged bucket reading: the bound
// of the bucket holding the q-th observation, with the summed value as the
// ceiling for the overflow bucket.
func quantileOf(counts []int64, bounds []int64, sum int64, q float64) int64 {
	var total int64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	var seen int64
	for i, n := range counts {
		seen += n
		if seen > target {
			if i < len(bounds) {
				return bounds[i]
			}
			return sum
		}
	}
	return bounds[len(bounds)-1]
}
