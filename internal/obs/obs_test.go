package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("second lookup returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("gauge = %d, want 42", got)
	}

	h := r.Histogram("h", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 99, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1+10+11+99+5000 {
		t.Fatalf("hist count=%d sum=%d", h.Count(), h.Sum())
	}

	snap := r.Snapshot()
	if snap.Counters["c"] != 5 || snap.Gauges["g"] != 42 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
	hs := snap.Histograms["h"]
	// 1 and 10 land in le=10; 11 and 99 in le=100; 5000 in overflow (le=0).
	want := []BucketCount{{Le: 10, Count: 2}, {Le: 100, Count: 2}, {Le: 0, Count: 1}}
	if fmt.Sprint(hs.Buckets) != fmt.Sprint(want) {
		t.Fatalf("buckets = %+v, want %+v", hs.Buckets, want)
	}

	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("reset did not zero the metrics")
	}
	if r.Counter("c") != c {
		t.Fatal("reset destroyed metric identity")
	}
}

func TestSetEnabledGatesRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("gated")
	restore := SetEnabled(false)
	c.Add(10)
	r.Histogram("gh", []int64{1}).Observe(5)
	if sp := NewTrace().Begin("x"); sp != nil {
		t.Fatal("Begin should return a nil no-op span while disabled")
	}
	restore()
	if c.Value() != 0 {
		t.Fatalf("disabled counter advanced to %d", c.Value())
	}
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("counter did not resume after re-enable")
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTrace()
	outer := tr.Begin("outer")
	if got := tr.CurrentName(); got != "outer" {
		t.Fatalf("current = %q, want outer", got)
	}
	inner := tr.Begin("inner")
	if got := tr.CurrentName(); got != "inner" {
		t.Fatalf("current = %q, want inner", got)
	}
	inner.End()
	if got := tr.CurrentName(); got != "outer" {
		t.Fatalf("current after inner end = %q, want outer", got)
	}
	outer.End()
	if got := tr.CurrentName(); got != "" {
		t.Fatalf("current after outer end = %q, want empty", got)
	}

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["inner"].Parent != byName["outer"].ID {
		t.Fatalf("inner parent = %d, want outer id %d", byName["inner"].Parent, byName["outer"].ID)
	}
	if byName["outer"].Parent != 0 {
		t.Fatalf("outer parent = %d, want root (0)", byName["outer"].Parent)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTrace()
	a := tr.Begin("phase-a")
	time.Sleep(time.Millisecond)
	a.End()
	b := tr.Begin("phase-b")
	b.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	for _, e := range events {
		if e["ph"] != "X" || e["name"] == "" {
			t.Fatalf("malformed event: %v", e)
		}
	}
}

// TestObsConcurrent hammers every obs primitive from many goroutines at
// once; it exists to run under -race in CI.
func TestObsConcurrent(t *testing.T) {
	r := NewRegistry()
	tr := NewTrace()
	c := r.Counter("conc.counter")
	g := r.Gauge("conc.gauge")
	h := r.Histogram("conc.hist", ExpBounds(1, 2, 10))

	const workers = 16
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(i % 700))
				if i%100 == 0 {
					sp := tr.Begin("conc.span")
					sp.End()
					r.Counter("conc.dynamic").Inc() // registry map under contention
					_ = r.Snapshot()
					RecordStage(StageStats{Name: "conc", Items: 1, Workers: 1})
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
	if got := len(tr.Spans()); got != workers*iters/100 {
		t.Fatalf("spans = %d, want %d", got, workers*iters/100)
	}
}

func TestRecordStageUtilization(t *testing.T) {
	// Clear any stages left over from other tests in the package.
	Reset()
	RecordStage(StageStats{
		Name:      "stage",
		Items:     10,
		Workers:   2,
		Wall:      100 * time.Millisecond,
		Busy:      []time.Duration{90 * time.Millisecond, 70 * time.Millisecond},
		BusyTotal: 160 * time.Millisecond,
	})
	st := Stages()
	if len(st) != 1 {
		t.Fatalf("got %d stages, want 1", len(st))
	}
	if got, want := st[0].Utilization, 0.8; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("utilization = %v, want %v", got, want)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	Reset()
	C("manifest.test_counter").Add(7)
	sp := Begin("manifest.phase")
	sp.End()

	m := BuildManifest("test", []string{"-x"}, 99, 4, map[string]int{"scale": 1})
	if m.Counters["manifest.test_counter"] != 7 {
		t.Fatalf("manifest counter = %d, want 7", m.Counters["manifest.test_counter"])
	}
	if m.Seed != 99 || m.Workers != 4 || m.Tool != "test" {
		t.Fatalf("manifest header wrong: %+v", m)
	}
	found := false
	for _, p := range m.Phases {
		if p.Name == "manifest.phase" {
			found = true
		}
	}
	if !found {
		t.Fatal("manifest is missing the recorded phase span")
	}

	path := t.TempDir() + "/m.json"
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("manifest does not round-trip: %v", err)
	}
	if back.Counters["manifest.test_counter"] != 7 {
		t.Fatalf("round-tripped counter = %d", back.Counters["manifest.test_counter"])
	}
}

func TestServeDebug(t *testing.T) {
	Reset()
	C("debug.test_counter").Add(3)
	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["debug.test_counter"] != 3 {
		t.Fatalf("debug endpoint counter = %d, want 3", snap.Counters["debug.test_counter"])
	}
}

func TestWriteSummary(t *testing.T) {
	Reset()
	C("summary.counter").Add(2)
	sp := Begin("summary.phase")
	sp.End()
	var buf bytes.Buffer
	WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{"telemetry", "summary.phase", "summary.counter"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
