package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// ReqStage identifies one phase of a request's life inside the serving
// layer. Stages are recorded as offsets from the request's start, so a
// finished trace is a compact fixed-size record.
type ReqStage int

const (
	StageAdmission     ReqStage = iota // queue admission attempt
	StageQueueWait                     // admitted → picked up by a worker
	StageBatchAssembly                 // worker gathering the micro-batch
	StageCacheLookup                   // prediction-cache probe
	StagePredict                       // model dispatch
	StageEncode                        // response encoding
	NumReqStages
)

// reqStageNames index by ReqStage for rendering.
var reqStageNames = [NumReqStages]string{
	"admission", "queue_wait", "batch_assembly", "cache_lookup", "predict", "encode",
}

// String returns the stage's wire name.
func (s ReqStage) String() string {
	if s < 0 || s >= NumReqStages {
		return "unknown"
	}
	return reqStageNames[s]
}

// stageSpan is one stage's interval relative to the request start.
// durNS < 0 marks a stage that began but never ended (or never ran).
type stageSpan struct {
	startNS int64
	durNS   int64
}

// RequestTrace is one in-flight request's per-stage accounting. Acquire
// one with AcquireRequestTrace, mark stages with BeginStage/EndStage (both
// nil-safe, so call sites need no telemetry gating), then hand it to a
// TraceRing and release it. Stage marking is two clock reads and two
// stores — no locks, no allocation.
type RequestTrace struct {
	id     string
	wall   time.Time // wall+monotonic anchor
	stages [NumReqStages]stageSpan
}

// reqTracePool recycles trace objects across requests so the serve hot
// path allocates nothing for tracing.
var reqTracePool = sync.Pool{New: func() any { return new(RequestTrace) }}

// AcquireRequestTrace returns a reset trace anchored at now, or nil (a
// valid no-op trace) while telemetry is disabled.
func AcquireRequestTrace(id string) *RequestTrace {
	if !enabled.Load() {
		return nil
	}
	t := reqTracePool.Get().(*RequestTrace)
	t.id = id
	t.wall = time.Now()
	for i := range t.stages {
		t.stages[i] = stageSpan{startNS: -1, durNS: -1}
	}
	return t
}

// ReleaseRequestTrace returns a trace to the pool. Safe on nil. Callers
// must not release a trace another goroutine may still be marking (a
// deadline-abandoned request leaves its trace to the garbage collector,
// exactly like serve's batch buffers).
func ReleaseRequestTrace(t *RequestTrace) {
	if t != nil {
		reqTracePool.Put(t)
	}
}

// ID returns the request/trace identifier.
func (t *RequestTrace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// BeginStage marks the stage's start. Nil-safe.
func (t *RequestTrace) BeginStage(s ReqStage) {
	if t == nil {
		return
	}
	t.stages[s].startNS = int64(time.Since(t.wall))
}

// EndStage marks the stage's end. Nil-safe; an EndStage with no matching
// BeginStage is ignored.
func (t *RequestTrace) EndStage(s ReqStage) {
	if t == nil {
		return
	}
	sp := &t.stages[s]
	if sp.startNS < 0 {
		return
	}
	sp.durNS = int64(time.Since(t.wall)) - sp.startNS
}

// StageDur returns a stage's duration, or 0 when the stage never ran.
func (t *RequestTrace) StageDur(s ReqStage) time.Duration {
	if t == nil || t.stages[s].durNS < 0 {
		return 0
	}
	return time.Duration(t.stages[s].durNS)
}

// StageJSON is one stage in an exported trace record.
type StageJSON struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// RequestTraceRecord is one finished request trace, as stored in a
// TraceRing: a fixed-size value copy, so ring insertion does not allocate
// and the pooled RequestTrace can be recycled immediately.
type RequestTraceRecord struct {
	ID      string    `json:"id"`
	Start   time.Time `json:"start"`
	TotalNS int64     `json:"total_ns"`
	stages  [NumReqStages]stageSpan
}

// Stages renders the record's per-stage spans (stages that never ran are
// omitted).
func (r *RequestTraceRecord) Stages() []StageJSON {
	out := make([]StageJSON, 0, NumReqStages)
	for i, sp := range r.stages {
		if sp.startNS < 0 || sp.durNS < 0 {
			continue
		}
		out = append(out, StageJSON{Name: ReqStage(i).String(), StartNS: sp.startNS, DurNS: sp.durNS})
	}
	return out
}

// MarshalJSON renders the record with its stages inline.
func (r RequestTraceRecord) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		ID      string      `json:"id"`
		Start   time.Time   `json:"start"`
		TotalNS int64       `json:"total_ns"`
		Stages  []StageJSON `json:"stages"`
	}{r.ID, r.Start, r.TotalNS, r.Stages()})
}

// TraceRing is a bounded ring of recent slow request traces. Requests
// faster than the slow threshold are counted but not stored, so the ring
// holds the traces worth looking at; with the threshold at 0 it holds the
// most recent requests outright.
type TraceRing struct {
	slowNS atomic.Int64
	seen   atomic.Int64
	kept   atomic.Int64

	mu   sync.Mutex
	recs []RequestTraceRecord
	n    int // live records
	next int // ring cursor
}

// NewTraceRing returns a ring holding up to capacity traces.
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = 64
	}
	return &TraceRing{recs: make([]RequestTraceRecord, capacity)}
}

// DefaultRequests is the process-wide request-trace ring the serving
// layer records into and the debug endpoints read from.
var DefaultRequests = NewTraceRing(128)

// SetSlowThreshold keeps only traces at least this slow (0 keeps all).
func (r *TraceRing) SetSlowThreshold(d time.Duration) { r.slowNS.Store(int64(d)) }

// Add finalizes a trace with its total duration and stores it if it
// qualifies as slow. Nil-safe on the trace. The trace is copied by value;
// the caller may release it immediately after.
func (r *TraceRing) Add(t *RequestTrace, total time.Duration) {
	if t == nil {
		return
	}
	r.seen.Add(1)
	if int64(total) < r.slowNS.Load() {
		return
	}
	r.kept.Add(1)
	r.mu.Lock()
	r.recs[r.next] = RequestTraceRecord{ID: t.id, Start: t.wall, TotalNS: int64(total), stages: t.stages}
	r.next = (r.next + 1) % len(r.recs)
	if r.n < len(r.recs) {
		r.n++
	}
	r.mu.Unlock()
}

// Snapshot returns the stored traces, most recent first.
func (r *TraceRing) Snapshot() []RequestTraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RequestTraceRecord, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.recs[(r.next-1-i+len(r.recs))%len(r.recs)])
	}
	return out
}

// Seen returns how many traces were offered to the ring; Kept how many
// passed the slow threshold (including ones since overwritten).
func (r *TraceRing) Seen() int64 { return r.seen.Load() }
func (r *TraceRing) Kept() int64 { return r.kept.Load() }

// Reset clears the ring and its counters (tests and back-to-back runs).
func (r *TraceRing) Reset() {
	r.mu.Lock()
	r.n, r.next = 0, 0
	r.mu.Unlock()
	r.seen.Store(0)
	r.kept.Store(0)
}

// WriteJSON renders the ring, most recent first, as a JSON document.
func (r *TraceRing) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Seen   int64                `json:"seen"`
		Kept   int64                `json:"kept"`
		SlowNS int64                `json:"slow_threshold_ns"`
		Traces []RequestTraceRecord `json:"traces"`
	}{r.Seen(), r.Kept(), r.slowNS.Load(), r.Snapshot()})
}

// WriteChromeTrace exports the stored request traces in the same Chrome
// trace-event format as Trace.WriteChromeTrace: one row (tid) per request
// carrying the whole-request interval plus its stage spans, timestamps on
// a shared wall-clock baseline. Load the output in chrome://tracing or
// https://ui.perfetto.dev.
func (r *TraceRing) WriteChromeTrace(w io.Writer) error {
	recs := r.Snapshot()
	var base time.Time
	for _, rec := range recs {
		if base.IsZero() || rec.Start.Before(base) {
			base = rec.Start
		}
	}
	events := make([]chromeEvent, 0, len(recs)*(1+int(NumReqStages)))
	for i, rec := range recs {
		ts := float64(rec.Start.Sub(base)) / float64(time.Microsecond)
		events = append(events, chromeEvent{
			Name: "request " + rec.ID,
			Ph:   "X",
			Ts:   ts,
			Dur:  float64(rec.TotalNS) / 1e3,
			Pid:  1,
			Tid:  i + 1,
		})
		for s, sp := range rec.stages {
			if sp.startNS < 0 || sp.durNS < 0 {
				continue
			}
			events = append(events, chromeEvent{
				Name: ReqStage(s).String(),
				Ph:   "X",
				Ts:   ts + float64(sp.startNS)/1e3,
				Dur:  float64(sp.durNS) / 1e3,
				Pid:  1,
				Tid:  i + 1,
			})
		}
	}
	return json.NewEncoder(w).Encode(events)
}
