package obs

import (
	"fmt"
	"io"
	"strings"
)

// PromContentType is the Content-Type for the Prometheus text exposition
// format rendered by WritePrometheus.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promHist is one histogram's locked reading: every bucket (including
// empty ones and the overflow bucket), ready to be rendered cumulatively.
type promHist struct {
	bounds []int64
	counts []int64 // len(bounds)+1, last = overflow
	sum    int64
	count  int64
}

// WritePrometheus renders every registered counter, gauge, and histogram in
// the Prometheus text exposition format (version 0.0.4):
//
//   - counters become `<name>_total` with TYPE counter;
//   - gauges keep their name with TYPE gauge;
//   - histograms expand to cumulative `<name>_bucket{le="..."}` series
//     (every configured bound plus the implicit `+Inf` overflow), and the
//     conventional `<name>_sum` and `<name>_count`.
//
// Metric names are sanitized for Prometheus ('.' and any other invalid
// rune become '_'), so `serve.latency_us` scrapes as
// `serve_latency_us_bucket{le="50"}` and `serve.requests` as
// `serve_requests_total`. Output is sorted by name, so scrapes diff
// cleanly across processes and runs.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// Read everything under the registry lock, render after releasing it:
	// rendering does I/O and must not hold up metric registration.
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]promHist, len(r.hists))
	for name, h := range r.hists {
		ph := promHist{bounds: h.bounds, counts: make([]int64, len(h.counts))}
		for i := range h.counts {
			ph.counts[i] = h.counts[i].Load()
		}
		ph.sum = h.Sum()
		ph.count = h.Count()
		hists[name] = ph
	}
	r.mu.Unlock()

	for _, name := range sortedKeys(counters) {
		pn := promName(name)
		if !strings.HasSuffix(pn, "_total") {
			pn += "_total"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum int64
		for i, n := range h.counts {
			cum += n
			le := "+Inf"
			if i < len(h.bounds) {
				le = fmt.Sprintf("%d", h.bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", pn, h.sum, pn, h.count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry name onto the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*: every invalid rune becomes '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}
