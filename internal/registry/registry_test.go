package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"metaopt/internal/obs"
	"metaopt/unroll"
)

var (
	predsOnce sync.Once
	preds     []*unroll.Predictor
	predsErr  error
)

// testPredictors trains a handful of distinct model versions (different
// algorithms → different fingerprints) shared by every test.
func testPredictors(t *testing.T) []*unroll.Predictor {
	t.Helper()
	predsOnce.Do(func() {
		c, err := unroll.GenerateCorpus(7, 0.05)
		if err != nil {
			predsErr = err
			return
		}
		ds, err := unroll.CollectDataset(c, unroll.CollectOptions{Seed: 1, Runs: 3})
		if err != nil {
			predsErr = err
			return
		}
		for _, alg := range []unroll.Algorithm{unroll.NearNeighbor, unroll.DecisionTree, unroll.Regress, unroll.BoostedTree} {
			p, err := unroll.Train(ds, unroll.TrainOptions{Algorithm: alg, Seed: 3})
			if err != nil {
				predsErr = fmt.Errorf("train %s: %w", alg, err)
				return
			}
			preds = append(preds, p)
		}
	})
	if predsErr != nil {
		t.Fatal(predsErr)
	}
	return preds
}

func TestInsertResolvePromoteEvict(t *testing.T) {
	ps := testPredictors(t)
	r := New(Config{})

	m0, err := r.Insert(ps[0], "a.model", "stable", false)
	if err != nil {
		t.Fatal(err)
	}
	if d := r.Default(); d == nil || d.Fingerprint() != m0.Fingerprint() {
		t.Fatal("first insert did not become the default")
	}
	m1, err := r.Insert(ps[1], "b.model", "canary", false)
	if err != nil {
		t.Fatal(err)
	}

	// Resolve by alias, full fingerprint, unique prefix, and default.
	for _, ref := range []string{"canary", m1.Fingerprint(), m1.Fingerprint()[:12]} {
		got, err := r.Resolve(ref)
		if err != nil || got.Fingerprint() != m1.Fingerprint() {
			t.Fatalf("Resolve(%q) = %v, %v", ref, got, err)
		}
	}
	if got, err := r.Resolve(""); err != nil || got.Fingerprint() != m0.Fingerprint() {
		t.Fatalf("Resolve(\"\") = %v, %v", got, err)
	}
	if _, err := r.Resolve("nonesuch"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Resolve(nonesuch) = %v, want ErrNotFound", err)
	}
	if _, err := r.Resolve(m1.Fingerprint()[:4]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("short prefix must not resolve: %v", err)
	}

	// Promotion swaps the default atomically; the old default stays
	// resident and evictable.
	if _, err := r.Promote("canary"); err != nil {
		t.Fatal(err)
	}
	if d := r.Default(); d.Fingerprint() != m1.Fingerprint() {
		t.Fatal("promote did not swap the default")
	}
	if _, err := r.Evict("canary"); !errors.Is(err, ErrDefault) {
		t.Fatalf("evicting the default must fail, got %v", err)
	}
	if _, err := r.Evict("stable"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resolve("stable"); !errors.Is(err, ErrNotFound) {
		t.Fatal("evicted version (and its alias) must be gone")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestLRUBoundPrefersUnpinned(t *testing.T) {
	ps := testPredictors(t)
	r := New(Config{MaxModels: 2})
	m0, _ := r.Insert(ps[0], "", "", false) // default: never LRU-evicted
	m1, _ := r.Insert(ps[1], "", "", true)  // pinned: never LRU-evicted
	m2, _ := r.Insert(ps[2], "", "", false) // unpinned: the only candidate
	if r.Len() != 3 {
		// Nothing evictable yet: default + pinned + the newcomer overflow.
		t.Fatalf("Len = %d, want 3 (protected overflow)", r.Len())
	}
	if _, err := r.Insert(ps[3], "", "", false); err != nil {
		t.Fatal(err)
	}
	// ps[3] arrived; m2 was the least-recently-used unpinned non-default.
	if _, err := r.Resolve(m2.Fingerprint()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LRU should have evicted %s: %v", m2.Fingerprint()[:12], err)
	}
	for _, keep := range []*Model{m0, m1} {
		if _, err := r.Resolve(keep.Fingerprint()); err != nil {
			t.Fatalf("protected version evicted: %v", err)
		}
	}
}

func TestAliasRebindMovesName(t *testing.T) {
	ps := testPredictors(t)
	r := New(Config{})
	r.Insert(ps[0], "", "canary", false)
	m1, _ := r.Insert(ps[1], "", "canary", false)
	got, err := r.Resolve("canary")
	if err != nil || got.Fingerprint() != m1.Fingerprint() {
		t.Fatalf("rebound alias resolves to %v, %v", got, err)
	}
	for _, snap := range r.List() {
		if snap.Model.Fingerprint() == ps[0].Fingerprint() && len(snap.Aliases) != 0 {
			t.Fatalf("old version kept the moved alias: %v", snap.Aliases)
		}
	}
}

// TestPromoteEvictConcurrent hammers promote/evict/resolve/insert from
// many goroutines: the registry must stay internally consistent and the
// default must always be resident. Run under -race.
func TestPromoteEvictConcurrent(t *testing.T) {
	ps := testPredictors(t)
	r := New(Config{MaxModels: 3})
	for i, p := range ps[:3] {
		if _, err := r.Insert(p, "", fmt.Sprintf("v%d", i), false); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := time.Now().Add(300 * time.Millisecond)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; time.Now().Before(stop); i++ {
				ref := fmt.Sprintf("v%d", (g+i)%3)
				switch g % 4 {
				case 0:
					r.Promote(ref)
				case 1:
					r.Evict(ref) // often fails (default/absent); must never corrupt
				case 2:
					if _, err := r.Insert(ps[(g+i)%3], "", ref, false); err != nil {
						t.Error(err)
					}
				default:
					r.Resolve(ref)
				}
				if d := r.Default(); d == nil {
					t.Error("default became nil mid-churn")
				}
			}
		}(g)
	}
	wg.Wait()
	// The default must still resolve through the registry.
	d := r.Default()
	if d == nil {
		t.Fatal("no default after churn")
	}
	if _, err := r.Resolve(d.Fingerprint()); err != nil {
		t.Fatalf("default not resident after churn: %v", err)
	}
}

func TestManifestRestore(t *testing.T) {
	ps := testPredictors(t)
	dir := t.TempDir()
	paths := make([]string, 3)
	for i, p := range ps[:3] {
		paths[i] = filepath.Join(dir, fmt.Sprintf("m%d.model", i))
		if err := p.SaveFile(paths[i]); err != nil {
			t.Fatal(err)
		}
	}
	state := filepath.Join(dir, "registry.json")

	r := New(Config{StatePath: state})
	for i, p := range paths {
		pin := i == 2
		if _, err := r.Load(p, fmt.Sprintf("v%d", i), pin); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Promote("v1"); err != nil {
		t.Fatal(err)
	}

	// A fresh registry restores residency, aliases, pins, and the default.
	r2 := New(Config{StatePath: state})
	n, err := r2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("restored %d models, want 3", n)
	}
	if d := r2.Default(); d == nil || d.Fingerprint() != ps[1].Fingerprint() {
		t.Fatal("default not restored")
	}
	for i := range paths {
		if _, err := r2.Resolve(fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("alias v%d not restored: %v", i, err)
		}
	}
	var pinned bool
	for _, snap := range r2.List() {
		if snap.Model.Fingerprint() == ps[2].Fingerprint() {
			pinned = snap.Pinned
		}
	}
	if !pinned {
		t.Fatal("pin not restored")
	}

	// A deleted artifact is skipped, not fatal.
	os.Remove(paths[0])
	r3 := New(Config{StatePath: state})
	if n, err := r3.Restore(); err != nil || n != 2 {
		t.Fatalf("restore with missing artifact: n=%d err=%v, want 2, nil", n, err)
	}
}

// TestRestoreCorruptStateDegradesToEmpty: a garbage state file must not
// abort the boot — Restore counts the corruption, logs, and comes up as an
// empty but fully usable registry.
func TestRestoreCorruptStateDegradesToEmpty(t *testing.T) {
	ps := testPredictors(t)
	state := filepath.Join(t.TempDir(), "registry.json")
	if err := os.WriteFile(state, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	before := obs.C("registry.state_corrupt").Value()
	r := New(Config{StatePath: state})
	n, err := r.Restore()
	if err != nil {
		t.Fatalf("corrupt state failed the boot: %v", err)
	}
	if n != 0 {
		t.Fatalf("restored %d models from garbage, want 0", n)
	}
	if got := obs.C("registry.state_corrupt").Value() - before; got != 1 {
		t.Fatalf("corruption counter moved by %d, want 1", got)
	}

	// The empty registry is fully usable — and persisting new state heals
	// the corrupt file for the next boot.
	if _, err := r.Insert(ps[0], "", "stable", false); err != nil {
		t.Fatalf("registry unusable after degraded restore: %v", err)
	}
	if d := r.Default(); d == nil {
		t.Fatal("no default after insert into degraded registry")
	}

	// An unreadable (as opposed to corrupt) state file is still an error:
	// degrading there would silently drop real state.
	if _, err := os.Stat(state); err == nil {
		unreadable := filepath.Join(t.TempDir(), "dir-not-file")
		if err := os.MkdirAll(filepath.Join(unreadable, "x"), 0o755); err != nil {
			t.Fatal(err)
		}
		r2 := New(Config{StatePath: unreadable})
		if _, err := r2.Restore(); err == nil {
			t.Fatal("reading a directory as state must fail, not degrade")
		}
	}
}
