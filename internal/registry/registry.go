// Package registry manages the set of model versions a serve instance can
// answer with. Every version is keyed by its artifact fingerprint; aliases
// bind stable names ("canary", "tenant-a") to versions; one version is the
// promoted default that unpinned traffic is served by. Residency is
// LRU-bounded: loading past MaxModels evicts the least-recently-resolved
// version that is neither pinned nor the default. All mutations are safe
// for concurrent use, and the default-version read is a single atomic load
// so the predict hot path never takes the registry lock.
package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"metaopt/internal/atomicio"
	"metaopt/internal/obs"
	"metaopt/unroll"
)

var (
	mLoads       = obs.C("registry.loads")
	mEvictions   = obs.C("registry.evictions")
	mPromotions  = obs.C("registry.promotions")
	mCompileErr  = obs.C("registry.compile_errors")
	mResident    = obs.G("registry.models")
	mOverBound    = obs.C("registry.overbound")
	mStateWrites  = obs.C("registry.state_writes")
	mStateCorrupt = obs.C("registry.state_corrupt")
)

// Model is one immutable loaded version: the interpreted predictor, its
// serve-optimized compiled lowering (nil when compilation failed and the
// interpreted model answers), and provenance. Promotion and eviction move
// pointers; a Model's contents never change after insert, so holders may
// keep serving from one across any registry mutation.
type Model struct {
	Pred     *unroll.Predictor
	Comp     *unroll.CompiledPredictor
	Path     string
	LoadedAt time.Time
}

// Fingerprint is the version key: the artifact fingerprint of the
// interpreted predictor.
func (m *Model) Fingerprint() string { return m.Pred.Fingerprint() }

// Compiled returns the compiled lowering's versioned fingerprint, empty
// when the version serves interpreted.
func (m *Model) Compiled() string {
	if m.Comp == nil {
		return ""
	}
	return m.Comp.Fingerprint()
}

// Snapshot is one version's registry placement at List time.
type Snapshot struct {
	Model   *Model
	Default bool
	Pinned  bool
	Aliases []string
}

// Config configures a Registry.
type Config struct {
	// MaxModels bounds resident versions (default 8). Pinned versions and
	// the default never count against eviction; when everything resident
	// is protected the bound is allowed to overflow rather than refuse a
	// load.
	MaxModels int
	// StatePath, when set, persists a manifest of resident versions
	// (paths, aliases, pins, default) through atomicio on every mutation,
	// and Restore reloads it at boot.
	StatePath string
	// Now is the clock, injectable for tests. Default time.Now.
	Now func() time.Time
}

type entry struct {
	model    *Model
	pinned   bool
	aliases  []string
	lastUsed int64 // recency sequence, not wall time
}

// Registry is the versioned model store.
type Registry struct {
	cfg Config
	def atomic.Pointer[Model]

	mu      sync.Mutex
	entries map[string]*entry // fingerprint → entry
	aliases map[string]string // alias → fingerprint
	seq     int64
}

// Sentinel errors; every failure from Resolve/Promote/Evict wraps one.
var (
	ErrNotFound  = errors.New("model not found in registry")
	ErrAmbiguous = errors.New("model reference is ambiguous")
	ErrDefault   = errors.New("cannot evict the default model")
	ErrNoDefault = errors.New("registry has no default model")
)

// New builds an empty registry.
func New(cfg Config) *Registry {
	if cfg.MaxModels <= 0 {
		cfg.MaxModels = 8
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Registry{
		cfg:     cfg,
		entries: make(map[string]*entry),
		aliases: make(map[string]string),
	}
}

// Insert adds an already-loaded predictor as a resident version, compiling
// it for serving (compilation failure is not fatal: the version serves
// interpreted). Re-inserting a resident fingerprint refreshes its alias
// and pin rather than duplicating it. The first version ever inserted
// becomes the default.
func (r *Registry) Insert(pred *unroll.Predictor, path, alias string, pin bool) (*Model, error) {
	fp := pred.Fingerprint()
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[fp]
	if !ok {
		m := &Model{Pred: pred, Path: path, LoadedAt: r.cfg.Now()}
		comp, err := unroll.Compile(pred)
		if err != nil {
			mCompileErr.Inc()
			log.Printf("registry: compile %s: %v; serving interpreted", short(fp), err)
		} else {
			m.Comp = comp
		}
		e = &entry{model: m}
		r.entries[fp] = e
		mLoads.Inc()
	}
	e.pinned = e.pinned || pin
	if alias != "" {
		r.bindAliasLocked(alias, fp)
	}
	r.touchLocked(e)
	if r.def.Load() == nil {
		r.def.Store(e.model)
	}
	r.evictOverflowLocked(fp)
	mResident.Set(int64(len(r.entries)))
	r.saveLocked()
	return e.model, nil
}

// Load reads the artifact at path and inserts it (see Insert).
func (r *Registry) Load(path, alias string, pin bool) (*Model, error) {
	pred, err := unroll.LoadPredictorFile(path)
	if err != nil {
		return nil, err
	}
	return r.Insert(pred, path, alias, pin)
}

// Default returns the promoted version — one atomic load, no lock — or nil
// for an empty registry.
func (r *Registry) Default() *Model { return r.def.Load() }

// Resolve maps a reference to a resident version and marks it recently
// used. An empty ref means the default; otherwise ref is an alias, a full
// fingerprint, or a unique fingerprint prefix of at least 8 characters.
func (r *Registry) Resolve(ref string) (*Model, error) {
	if ref == "" {
		if m := r.def.Load(); m != nil {
			return m, nil
		}
		return nil, ErrNoDefault
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, err := r.lookupLocked(ref)
	if err != nil {
		return nil, err
	}
	r.touchLocked(e)
	return e.model, nil
}

// Promote atomically makes the referenced version the default. Returns the
// newly promoted version.
func (r *Registry) Promote(ref string) (*Model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, err := r.lookupLocked(ref)
	if err != nil {
		return nil, err
	}
	r.touchLocked(e)
	r.def.Store(e.model)
	mPromotions.Inc()
	r.saveLocked()
	return e.model, nil
}

// Evict removes the referenced version. The default cannot be evicted —
// promote a replacement first. Pinning protects from LRU pressure only,
// not from an explicit evict.
func (r *Registry) Evict(ref string) (*Model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, err := r.lookupLocked(ref)
	if err != nil {
		return nil, err
	}
	if d := r.def.Load(); d != nil && d.Fingerprint() == e.model.Fingerprint() {
		return nil, fmt.Errorf("%w (%s)", ErrDefault, short(e.model.Fingerprint()))
	}
	r.removeLocked(e.model.Fingerprint())
	mEvictions.Inc()
	mResident.Set(int64(len(r.entries)))
	r.saveLocked()
	return e.model, nil
}

// Len reports the number of resident versions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// List snapshots every resident version: default first, then by
// fingerprint for a stable order.
func (r *Registry) List() []Snapshot {
	d := r.def.Load()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Snapshot, 0, len(r.entries))
	for fp, e := range r.entries {
		out = append(out, Snapshot{
			Model:   e.model,
			Default: d != nil && d.Fingerprint() == fp,
			Pinned:  e.pinned,
			Aliases: append([]string(nil), e.aliases...),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Default != out[j].Default {
			return out[i].Default
		}
		return out[i].Model.Fingerprint() < out[j].Model.Fingerprint()
	})
	return out
}

// lookupLocked resolves ref (alias, fingerprint, or ≥8-char unique
// fingerprint prefix) to its entry.
func (r *Registry) lookupLocked(ref string) (*entry, error) {
	if fp, ok := r.aliases[ref]; ok {
		return r.entries[fp], nil
	}
	if e, ok := r.entries[ref]; ok {
		return e, nil
	}
	if len(ref) >= 8 {
		var found *entry
		for fp, e := range r.entries {
			if strings.HasPrefix(fp, ref) {
				if found != nil {
					return nil, fmt.Errorf("%w: %q matches multiple fingerprints", ErrAmbiguous, ref)
				}
				found = e
			}
		}
		if found != nil {
			return found, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrNotFound, ref)
}

func (r *Registry) bindAliasLocked(alias, fp string) {
	if old, ok := r.aliases[alias]; ok && old != fp {
		// Rebinding moves the name (that is how "canary" rolls forward).
		if oe := r.entries[old]; oe != nil {
			oe.aliases = without(oe.aliases, alias)
		}
	}
	r.aliases[alias] = fp
	e := r.entries[fp]
	for _, a := range e.aliases {
		if a == alias {
			return
		}
	}
	e.aliases = append(e.aliases, alias)
}

func (r *Registry) touchLocked(e *entry) {
	r.seq++
	e.lastUsed = r.seq
}

// evictOverflowLocked enforces the LRU bound: while over MaxModels, drop
// the least-recently-resolved version that is neither pinned, the default,
// nor the version whose insert triggered the pass (loading a model and
// instantly evicting it would make the load a no-op). When every resident
// version is protected the bound overflows (counted) rather than refusing
// the load that got us here.
func (r *Registry) evictOverflowLocked(keep string) {
	d := r.def.Load()
	for len(r.entries) > r.cfg.MaxModels {
		var victim string
		var vAge int64
		for fp, e := range r.entries {
			if fp == keep || e.pinned || (d != nil && d.Fingerprint() == fp) {
				continue
			}
			if victim == "" || e.lastUsed < vAge {
				victim, vAge = fp, e.lastUsed
			}
		}
		if victim == "" {
			mOverBound.Inc()
			return
		}
		r.removeLocked(victim)
		mEvictions.Inc()
	}
}

func (r *Registry) removeLocked(fp string) {
	e := r.entries[fp]
	for _, a := range e.aliases {
		delete(r.aliases, a)
	}
	delete(r.entries, fp)
}

func short(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

func without(ss []string, drop string) []string {
	out := ss[:0]
	for _, s := range ss {
		if s != drop {
			out = append(out, s)
		}
	}
	return out
}

// manifest is the persisted registry state: enough to rebuild residency
// after a restart. Versions whose artifacts are gone are skipped with a
// log line rather than failing the boot.
type manifest struct {
	Default string          `json:"default,omitempty"`
	Models  []manifestEntry `json:"models"`
}

type manifestEntry struct {
	Path        string   `json:"path"`
	Fingerprint string   `json:"fingerprint"`
	Pinned      bool     `json:"pinned,omitempty"`
	Aliases     []string `json:"aliases,omitempty"`
}

// saveLocked persists the manifest when a StatePath is configured.
// In-memory versions with no artifact path cannot be restored and are
// recorded pathless (skipped on restore).
func (r *Registry) saveLocked() {
	if r.cfg.StatePath == "" {
		return
	}
	var man manifest
	if d := r.def.Load(); d != nil {
		man.Default = d.Fingerprint()
	}
	for fp, e := range r.entries {
		man.Models = append(man.Models, manifestEntry{
			Path:        e.model.Path,
			Fingerprint: fp,
			Pinned:      e.pinned,
			Aliases:     append([]string(nil), e.aliases...),
		})
	}
	sort.Slice(man.Models, func(i, j int) bool { return man.Models[i].Fingerprint < man.Models[j].Fingerprint })
	err := atomicio.WriteFile(r.cfg.StatePath, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(man)
	})
	if err != nil {
		log.Printf("registry: persist state to %s: %v", r.cfg.StatePath, err)
		return
	}
	mStateWrites.Inc()
}

// Restore reloads the manifest at StatePath, if present, re-inserting
// every version whose artifact still loads and re-promoting the recorded
// default. Missing or unreadable artifacts are skipped with a log line;
// a missing manifest is not an error; a corrupted manifest degrades to an
// empty registry (counted on registry.state_corrupt) rather than failing
// the boot — the state file is a residency cache, and a node that comes up
// empty can be reloaded, while a node that refuses to boot serves nobody.
// Returns the number of versions restored.
func (r *Registry) Restore() (int, error) {
	if r.cfg.StatePath == "" {
		return 0, nil
	}
	raw, err := os.ReadFile(r.cfg.StatePath)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var man manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		mStateCorrupt.Inc()
		log.Printf("registry: state %s is corrupt (%v); starting with an empty registry", r.cfg.StatePath, err)
		return 0, nil
	}
	n := 0
	for _, me := range man.Models {
		if me.Path == "" {
			continue
		}
		alias := ""
		if len(me.Aliases) > 0 {
			alias = me.Aliases[0]
		}
		m, err := r.Load(me.Path, alias, me.Pinned)
		if err != nil {
			log.Printf("registry: restore %s (%s): %v; skipping", me.Path, short(me.Fingerprint), err)
			continue
		}
		r.mu.Lock()
		for _, a := range me.Aliases[min(1, len(me.Aliases)):] {
			r.bindAliasLocked(a, m.Fingerprint())
		}
		r.mu.Unlock()
		if me.Fingerprint != "" && me.Fingerprint != m.Fingerprint() {
			log.Printf("registry: restore %s: artifact fingerprint %s differs from recorded %s (retrained in place?)",
				me.Path, short(m.Fingerprint()), short(me.Fingerprint))
		}
		n++
	}
	if man.Default != "" {
		if _, err := r.Promote(man.Default); err != nil {
			log.Printf("registry: restore default %s: %v", short(man.Default), err)
		}
	}
	return n, nil
}
