package transform

import (
	"testing"

	"metaopt/internal/ir"
	"metaopt/internal/lang"
)

func lower(t *testing.T, src string) *ir.Loop {
	t.Helper()
	k, err := lang.ParseKernel(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	l, err := lang.Lower(k)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return l
}

func unroll(t *testing.T, src string, u int) (*ir.Loop, *Info) {
	t.Helper()
	l, info, err := Unroll(lower(t, src), u)
	if err != nil {
		t.Fatalf("unroll by %d: %v", u, err)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("unrolled loop invalid: %v", err)
	}
	return l, info
}

func count(l *ir.Loop, code ir.Opcode) int {
	return l.Count(func(o *ir.Op) bool { return o.Code == code })
}

const daxpy = `
kernel daxpy lang=c {
	param double a;
	double x[], y[];
	noalias;
	for i = 0 .. 4096 { y[i] = y[i] + a * x[i]; }
}`

func TestUnrollIdentity(t *testing.T) {
	l, info := unroll(t, daxpy, 1)
	if info.U != 1 || info.IV == nil {
		t.Errorf("info = %+v", info)
	}
	if l.NumOps() != 7 {
		t.Errorf("ops = %d, want 7", l.NumOps())
	}
}

func TestUnrollRejectsBadFactor(t *testing.T) {
	if _, _, err := Unroll(lower(t, daxpy), 0); err == nil {
		t.Error("expected error for factor 0")
	}
}

func TestUnrollDaxpyBy4(t *testing.T) {
	l, info := unroll(t, daxpy, 4)
	// One loop-control set for the whole body.
	if count(l, ir.OpBr) != 1 || count(l, ir.OpCmp) != 1 {
		t.Errorf("loop control not folded: br=%d cmp=%d", count(l, ir.OpBr), count(l, ir.OpCmp))
	}
	if count(l, ir.OpFMA) != 4 {
		t.Errorf("fma = %d, want 4", count(l, ir.OpFMA))
	}
	// The four x-loads coalesce pairwise (no intervening stores to x);
	// the y-loads are blocked by the interleaved y-stores.
	if info.CoalescedLoads != 2 {
		t.Errorf("coalesced loads = %d, want 2\n%s", info.CoalescedLoads, l)
	}
	if count(l, ir.OpLoad) != 4+2 {
		t.Errorf("loads = %d, want 6\n%s", count(l, ir.OpLoad), l)
	}
	if count(l, ir.OpStore) != 4 {
		t.Errorf("stores = %d, want 4", count(l, ir.OpStore))
	}
}

func TestUnrollMemRefScaling(t *testing.T) {
	l, _ := unroll(t, daxpy, 4)
	offsets := map[int]bool{}
	for _, op := range l.Body {
		if op.Code == ir.OpStore {
			if op.Mem.Stride != 4 {
				t.Errorf("store stride = %d, want 4", op.Mem.Stride)
			}
			offsets[op.Mem.Offset] = true
		}
	}
	for k := 0; k < 4; k++ {
		if !offsets[k] {
			t.Errorf("missing store offset %d; have %v", k, offsets)
		}
	}
}

func TestUnrollRecurrenceForwarding(t *testing.T) {
	// b[i] = b[i-1]*0.5: each copy's load is satisfied by the previous
	// copy's store; only the first load per body remains.
	l, info := unroll(t, `
kernel rec lang=c {
	double b[];
	for i = 1 .. 1000 { b[i] = b[i-1] * 0.5; }
}`, 4)
	if info.ForwardedLoads != 3 {
		t.Errorf("forwarded = %d, want 3\n%s", info.ForwardedLoads, l)
	}
	if count(l, ir.OpLoad) != 1 {
		t.Errorf("loads = %d, want 1\n%s", count(l, ir.OpLoad), l)
	}
	// The fmul chain must now be serial through registers: copy k's fmul
	// feeds copy k+1's fmul directly.
	fmuls := 0
	directChain := 0
	for _, op := range l.Body {
		if op.Code != ir.OpFMul {
			continue
		}
		fmuls++
		for _, a := range op.Args {
			if a.Op.Code == ir.OpFMul && a.Dist == 0 {
				directChain++
			}
		}
	}
	if fmuls != 4 || directChain != 3 {
		t.Errorf("fmuls = %d chain = %d\n%s", fmuls, directChain, l)
	}
}

func TestUnrollMemRecurrenceForwardsIntraBody(t *testing.T) {
	// b[i] = b[i-2] unrolled by 4: copies 2 and 3 read what copies 0 and 1
	// just stored, so their loads forward to register values; only the two
	// leading loads (which read the previous body's stores) remain, and the
	// cross-body portion of the recurrence stays a memory dependence.
	l, info := unroll(t, `
kernel rec2 lang=fortran {
	double b[];
	for i = 2 .. 1000 { b[i] = b[i-2] * 0.5; }
}`, 4)
	if info.ForwardedLoads != 2 {
		t.Errorf("forwarded = %d, want 2\n%s", info.ForwardedLoads, l)
	}
	if count(l, ir.OpLoad) != 2 {
		t.Errorf("loads = %d, want 2\n%s", count(l, ir.OpLoad), l)
	}
	// Copies 2 and 3 chain directly on copies 0 and 1 through registers.
	direct := 0
	for _, op := range l.Body {
		if op.Code != ir.OpFMul {
			continue
		}
		for _, a := range op.Args {
			if a.Op.Code == ir.OpFMul && a.Dist == 0 {
				direct++
			}
		}
	}
	if direct != 2 {
		t.Errorf("direct fmul chains = %d, want 2\n%s", direct, l)
	}
}

func TestUnrollReduction(t *testing.T) {
	// s = s + a[i]: the chain must thread through all copies and wrap.
	l, _ := unroll(t, `
kernel sum lang=fortran {
	double a[];
	double s;
	for i = 0 .. 1024 { s = s + a[i]; }
}`, 8)
	adds := 0
	wrap := 0
	for _, op := range l.Body {
		if op.Code != ir.OpFAdd {
			continue
		}
		adds++
		for _, a := range op.Args {
			if a.Op.Code == ir.OpFAdd && a.Dist == 1 {
				wrap++
			}
		}
	}
	if adds != 8 || wrap != 1 {
		t.Errorf("adds = %d wrap = %d\n%s", adds, wrap, l)
	}
}

func TestUnrollDeadStores(t *testing.T) {
	// c[0] is overwritten every iteration: only the last store per body
	// survives.
	l, info := unroll(t, `
kernel laststore lang=fortran {
	double a[], c[];
	for i = 0 .. 100 { c[0] = a[i]; }
}`, 4)
	if info.DeadStores != 3 {
		t.Errorf("dead stores = %d, want 3\n%s", info.DeadStores, l)
	}
	if count(l, ir.OpStore) != 1 {
		t.Errorf("stores = %d, want 1", count(l, ir.OpStore))
	}
}

func TestUnrollEarlyExitKeepsStores(t *testing.T) {
	// With a side exit between stores, earlier stores are observable.
	l, info := unroll(t, `
kernel obs lang=fortran {
	double a[], c[];
	for i = 0 .. n {
		c[0] = a[i];
		if (a[i] == 0.0) break;
	}
}`, 4)
	if info.DeadStores != 0 {
		t.Errorf("dead stores = %d, want 0", info.DeadStores)
	}
	if count(l, ir.OpCondBr) != 4 {
		t.Errorf("side exits = %d, want 4 (one per copy)", count(l, ir.OpCondBr))
	}
	if !l.EarlyExit {
		t.Error("EarlyExit lost")
	}
}

func TestUnrollPredicatesStayDistinct(t *testing.T) {
	l, _ := unroll(t, `
kernel pred lang=c {
	double a[], b[];
	for i = 0 .. 100 {
		if (a[i] > 0.0) { b[i] = a[i]; }
	}
}`, 3)
	preds := map[int]bool{}
	for _, op := range l.Body {
		if op.Predicated {
			preds[op.PredID] = true
		}
	}
	if len(preds) != 3 {
		t.Errorf("distinct predicates = %d, want 3", len(preds))
	}
}

func TestUnrollIVReads(t *testing.T) {
	// a[i] = i*2: copies > 0 need materialized i+k adds.
	l, _ := unroll(t, `
kernel ivval lang=c {
	double a[];
	for i = 0 .. 100 { a[i] = i * 2; }
}`, 4)
	// 4 muls, each fed by the IV value; copies 1..3 get an extra add.
	if got := count(l, ir.OpMul); got != 4 {
		t.Errorf("muls = %d, want 4\n%s", got, l)
	}
	adds := count(l, ir.OpAdd)
	if adds != 1+3 { // folded IV update + 3 materialized offsets
		t.Errorf("adds = %d, want 4\n%s", adds, l)
	}
}

func TestUnrollIndirect(t *testing.T) {
	l, _ := unroll(t, `
kernel gather lang=c {
	double a[], b[];
	int idx[];
	noalias;
	for i = 0 .. 100 { a[i] = b[idx[i]]; }
}`, 2)
	ind := 0
	for _, op := range l.Body {
		if op.Code == ir.OpLoad && op.Mem.Indirect {
			ind++
			if len(op.Args) == 0 {
				t.Error("indirect load lost its index dependence")
			}
		}
	}
	if ind != 2 {
		t.Errorf("indirect loads = %d, want 2", ind)
	}
}

func TestUnrollAllKernelFactors(t *testing.T) {
	srcs := []string{
		daxpy,
		`kernel dot lang=fortran { double a[], b[]; double s; for i = 0 .. 512 { s = s + a[i]*b[i]; } }`,
		`kernel stencil lang=c { double a[], b[]; noalias; for i = 1 .. 511 { b[i] = a[i-1] + a[i] + a[i+1]; } }`,
		`kernel branchy lang=c { double a[], b[]; double m; for i = 0 .. n { if (a[i] > m) { m = a[i]; } b[i] = m; } }`,
		`kernel exitk lang=c { double a[]; double s; for i = 0 .. n { s = s + a[i]; if (s > 100.0) break; } }`,
		`kernel callk lang=c { double a[]; for i = 0 .. n { a[i] = a[i] + 1.0; call f(); } }`,
		`kernel ivk lang=c { int c[]; for i = 0 .. 256 { c[i] = i; } }`,
	}
	for _, src := range srcs {
		base := lower(t, src)
		for u := 1; u <= MaxFactor; u++ {
			out, info, err := Unroll(base, u)
			if err != nil {
				t.Fatalf("%s by %d: %v", base.Name, u, err)
			}
			if err := out.Validate(); err != nil {
				t.Fatalf("%s by %d invalid: %v\n%s", base.Name, u, err, out)
			}
			if info.U != u || info.IV == nil {
				t.Errorf("%s by %d: bad info %+v", base.Name, u, info)
			}
			if count(out, ir.OpBr) != 1 {
				t.Errorf("%s by %d: br = %d", base.Name, u, count(out, ir.OpBr))
			}
		}
	}
}

func TestUnrollDoesNotMutateInput(t *testing.T) {
	base := lower(t, daxpy)
	before := base.String()
	if _, _, err := Unroll(base, 8); err != nil {
		t.Fatal(err)
	}
	if base.String() != before {
		t.Error("Unroll mutated its input")
	}
}
