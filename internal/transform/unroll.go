// Package transform implements loop unrolling on the IR, together with the
// post-unroll cleanups that give unrolling its payoff on real machines
// (paper Section 3): cross-iteration scalar replacement (store→load and
// load→load forwarding), adjacent-reference load/store coalescing (the
// wide-memory-bus effect), dead store elimination, and folding of the
// per-iteration loop overhead (induction update, trip test, back edge) into
// one instance per unrolled body.
package transform

import (
	"fmt"

	"metaopt/internal/ir"
)

// Info reports what unrolling did to a loop.
type Info struct {
	U               int // the unroll factor
	ForwardedLoads  int // loads replaced by values from earlier copies
	CoalescedLoads  int // loads merged into a neighbor's wide access
	CoalescedStores int // stores merged into a neighbor's wide access
	DeadStores      int // stores overwritten within the unrolled body
	IV              *ir.Op
}

// MaxFactor is the largest unroll factor the system considers; beyond eight
// the paper's training loops stop compiling, and the label space is 1..8.
const MaxFactor = 8

// Unroll returns a new loop whose body executes u consecutive iterations of
// l, plus a description of the cleanup opportunities it found. Unroll(l, 1)
// returns a plain clone. The input loop is not modified.
func Unroll(l *ir.Loop, u int) (*ir.Loop, *Info, error) {
	if err := l.Validate(); err != nil {
		return nil, nil, fmt.Errorf("transform: input: %w", err)
	}
	return UnrollPrechecked(l, u)
}

// UnrollPrechecked is Unroll without the input validation pass, for
// callers that validate a loop once and then unroll it at many factors
// (the labeler compiles every loop at factors 1..MaxFactor). The output
// is still validated.
func UnrollPrechecked(l *ir.Loop, u int) (*ir.Loop, *Info, error) {
	if u < 1 {
		return nil, nil, fmt.Errorf("transform: unroll factor %d", u)
	}
	iv, cmp, br, err := loopControl(l)
	if err != nil {
		return nil, nil, err
	}
	info := &Info{U: u}
	if u == 1 {
		out := l.Clone()
		info.IV = findByID(out, iv.ID)
		applyCleanups(out, info)
		return out, info, nil
	}

	out := ir.NewLoop(l.Name)
	// Worst-case op count: u body copies, shared params, loop control and
	// up to u-1 materialized IV adds with their constants. One slab block.
	out.Reserve(len(l.Params) + u*len(l.Body) + 2*u + 3)
	out.Benchmark = l.Benchmark
	out.Lang = l.Lang
	out.NestLevel = l.NestLevel
	out.TripCount = l.TripCount
	out.EarlyExit = l.EarlyExit
	out.NoAlias = l.NoAlias
	out.RuntimeTrip = l.RuntimeTrip
	out.Entries = l.Entries

	// Shared pseudo-ops.
	paramMap := make(map[*ir.Op]*ir.Op, len(l.Params))
	for _, p := range l.Params {
		var np *ir.Op
		if p.Code == ir.OpParam {
			np = out.NewParam(p.Name)
		} else {
			np = out.NewConst(p.Name)
		}
		np.FP = p.FP
		paramMap[p] = np
	}

	// The replicated portion of the body: everything except loop control.
	var repl []*ir.Op
	maxPred := 0
	for _, op := range l.Body {
		if op == iv || op == cmp || op == br {
			continue
		}
		repl = append(repl, op)
		if op.PredID > maxPred {
			maxPred = op.PredID
		}
	}

	// Pass 1: clone u copies without arguments.
	clones := make([]map[*ir.Op]*ir.Op, u)
	for k := 0; k < u; k++ {
		clones[k] = make(map[*ir.Op]*ir.Op, len(repl))
		for _, op := range repl {
			nc := out.NewOp(op.Code)
			nc.FP = op.FP
			nc.Name = op.Name
			nc.Predicated = op.Predicated
			if op.PredID != 0 {
				nc.PredID = op.PredID + k*(maxPred+1)
			}
			if op.Mem != nil {
				m := *op.Mem
				m.Stride = op.Mem.Stride * u
				m.Offset = op.Mem.Offset + op.Mem.Stride*k
				nc.Mem = &m
			}
			clones[k][op] = nc
		}
	}

	// New loop control: one induction update per unrolled body. Its
	// constant names the step for readability.
	step := out.NewConst(fmt.Sprint(u))
	newIV := out.NewOp(ir.OpAdd, ir.Use(step))
	newIV.Name = iv.Name
	newIV.Args = append(newIV.Args, ir.Carried(newIV, 1))
	info.IV = newIV

	// Per-copy materialization of the induction value (only built when a
	// copy actually reads the IV as data).
	ivValue := make([]*ir.Op, u)
	ivFor := func(k int) ir.ArgRef {
		if k == 0 {
			return ir.Carried(newIV, 1)
		}
		if ivValue[k] == nil {
			c := out.NewConst(fmt.Sprint(k))
			add := out.NewOp(ir.OpAdd, ir.Carried(newIV, 1), ir.Use(c))
			add.Name = fmt.Sprintf("%s+%d", iv.Name, k)
			ivValue[k] = add
		}
		return ir.Use(ivValue[k])
	}

	// Pass 2: wire arguments.
	for k := 0; k < u; k++ {
		for _, op := range repl {
			nc := clones[k][op]
			for _, a := range op.Args {
				nc.Args = append(nc.Args, remapArg(a, k, u, iv, clones, paramMap, ivFor))
			}
		}
	}

	// Loop control tail: compare and back edge.
	newCmp := out.NewOp(ir.OpCmp, ir.Use(newIV))
	newCmp.Name = cmp.Name
	for _, a := range cmp.Args {
		if a.Op == iv {
			continue // already wired to the new IV
		}
		newCmp.Args = append(newCmp.Args, remapArg(a, u-1, u, iv, clones, paramMap, ivFor))
	}
	out.NewOp(ir.OpBr, ir.Use(newCmp))

	// Order the body so that every dist-0 use follows its definition: the
	// materialized IV adds were appended out of order.
	if err := reorder(out); err != nil {
		return nil, nil, err
	}

	applyCleanups(out, info)
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("transform: unroll %s by %d: %w", l.Name, u, err)
	}
	return out, info, nil
}

// remapArg translates an argument of the source op into copy k's body.
func remapArg(a ir.ArgRef, k, u int, iv *ir.Op, clones []map[*ir.Op]*ir.Op,
	paramMap map[*ir.Op]*ir.Op, ivFor func(int) ir.ArgRef) ir.ArgRef {
	if np, ok := paramMap[a.Op]; ok {
		return ir.ArgRef{Op: np, Dist: 0}
	}
	if a.Op == iv {
		// Reading the induction value: copy k sees base+k.
		return ivFor(k)
	}
	j := k - a.Dist
	if j >= 0 {
		return ir.Use(clones[j][a.Op])
	}
	// Value from an earlier unrolled body: copy (j mod u), ceil(-j/u)
	// bodies back.
	dist := (-j + u - 1) / u
	src := ((j % u) + u) % u
	return ir.Carried(clones[src][a.Op], dist)
}

// loopControl identifies the induction update, trip test and back edge.
func loopControl(l *ir.Loop) (iv, cmp, br *ir.Op, err error) {
	for _, op := range l.Body {
		if op.Code == ir.OpBr {
			br = op
		}
	}
	if br == nil || len(br.Args) != 1 {
		return nil, nil, nil, fmt.Errorf("transform: %s: no back-edge branch", l.Name)
	}
	cmp = br.Args[0].Op
	if cmp == nil || cmp.Code != ir.OpCmp {
		return nil, nil, nil, fmt.Errorf("transform: %s: back edge not fed by a compare", l.Name)
	}
	for _, a := range cmp.Args {
		if a.Op.Code == ir.OpAdd && selfCarried(a.Op) {
			iv = a.Op
		}
	}
	if iv == nil {
		return nil, nil, nil, fmt.Errorf("transform: %s: no induction update", l.Name)
	}
	return iv, cmp, br, nil
}

func selfCarried(op *ir.Op) bool {
	for _, a := range op.Args {
		if a.Op == op && a.Dist == 1 {
			return true
		}
	}
	return false
}

func findByID(l *ir.Loop, id int) *ir.Op {
	for _, op := range l.Body {
		if op.ID == id {
			return op
		}
	}
	return nil
}

// reorder topologically sorts the body by dist-0 argument edges, keeping
// the original relative order where possible (memory ordering must be
// preserved: it is encoded positionally).
func reorder(l *ir.Loop) error {
	n := len(l.Body)
	index := make(map[*ir.Op]int, n)
	for i, op := range l.Body {
		index[op] = i
	}
	indeg := make([]int, n)
	succs := make([][]int, n)
	for i, op := range l.Body {
		for _, a := range op.Args {
			if a.Dist != 0 {
				continue
			}
			if j, ok := index[a.Op]; ok {
				succs[j] = append(succs[j], i)
				indeg[i]++
			}
		}
	}
	// Kahn's algorithm with a position-ordered frontier keeps the body
	// stable.
	var order []int
	frontier := make([]bool, n)
	for i, d := range indeg {
		if d == 0 {
			frontier[i] = true
		}
	}
	for len(order) < n {
		picked := -1
		for i := 0; i < n; i++ {
			if frontier[i] {
				picked = i
				break
			}
		}
		if picked < 0 {
			return fmt.Errorf("transform: %s: cycle in dist-0 dependences", l.Name)
		}
		frontier[picked] = false
		order = append(order, picked)
		for _, s := range succs[picked] {
			indeg[s]--
			if indeg[s] == 0 {
				frontier[s] = true
			}
		}
	}
	body := make([]*ir.Op, n)
	for pos, i := range order {
		body[pos] = l.Body[i]
	}
	l.Body = body
	return nil
}
