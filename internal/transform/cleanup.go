package transform

import (
	"sort"

	"metaopt/internal/ir"
)

// applyCleanups runs the post-unroll optimizations in order: store→load and
// load→load forwarding (cross-iteration scalar replacement), dead store
// elimination, then load/store coalescing (the wide-memory-bus effect).
//
// Note on modeling: this IR drives a performance model, not an interpreter.
// Coalescing therefore redirects the dependence structure (consumers of a
// merged access depend on the surviving wide access) without representing
// the distinct element values — which is exactly what the schedulers and
// the cycle model need.
func applyCleanups(l *ir.Loop, info *Info) {
	forwardLoads(l, info)
	deadStores(l, info)
	coalesce(l, info, ir.OpLoad)
	coalesce(l, info, ir.OpStore)
}

// memLoc identifies an affine memory location. Using it as a map key
// directly (instead of a formatted string) keeps the cleanup passes off
// the allocator: locKey was the single hottest call in the compile
// pipeline profile.
type memLoc struct {
	array  string
	stride int
	offset int
}

func locKey(m *ir.MemRef) memLoc {
	return memLoc{m.Array, m.Stride, m.Offset}
}

// forwardLoads replaces loads whose value is already available from an
// earlier unpredicated load of, or store to, the same location in the same
// unrolled body.
func forwardLoads(l *ir.Loop, info *Info) {
	type avail struct {
		ref ir.ArgRef // the value at the location
	}
	values := map[memLoc]avail{}
	killArray := func(array string) {
		if array == "" || !l.NoAlias {
			clear(values)
			return
		}
		for k := range values {
			if k.array == array {
				delete(values, k)
			}
		}
	}
	removed := map[*ir.Op]ir.ArgRef{}
	for _, op := range l.Body {
		switch op.Code {
		case ir.OpCall:
			killArray("")
		case ir.OpLoad:
			if op.Predicated || op.Mem.Indirect {
				continue
			}
			key := locKey(op.Mem)
			if v, ok := values[key]; ok {
				removed[op] = v.ref
				info.ForwardedLoads++
				continue
			}
			values[key] = avail{ref: ir.Use(op)}
		case ir.OpStore:
			if op.Mem.Indirect {
				killArray(op.Mem.Array)
				continue
			}
			if op.Predicated {
				// The store may not execute: the old value may survive.
				delete(values, locKey(op.Mem))
				if !l.NoAlias {
					killArray("")
				}
				continue
			}
			if !l.NoAlias {
				killArray("")
			}
			values[locKey(op.Mem)] = avail{ref: op.Args[len(op.Args)-1]}
		}
	}
	if len(removed) == 0 {
		return
	}
	rewrite(l, removed)
}

// rewrite redirects every use of the removed ops to their replacement
// values (composing carried distances) and drops them from the body.
func rewrite(l *ir.Loop, removed map[*ir.Op]ir.ArgRef) {
	// Replacements may chain (a forwarded load replaced by another load
	// that is itself forwarded); resolve transitively.
	resolve := func(op *ir.Op, dist int) ir.ArgRef {
		ref := ir.ArgRef{Op: op, Dist: dist}
		for {
			r, ok := removed[ref.Op]
			if !ok {
				return ref
			}
			ref = ir.ArgRef{Op: r.Op, Dist: ref.Dist + r.Dist}
		}
	}
	for _, op := range l.Body {
		for i := range op.Args {
			if _, ok := removed[op.Args[i].Op]; ok {
				op.Args[i] = resolve(op.Args[i].Op, op.Args[i].Dist)
			}
		}
	}
	keep := l.Body[:0]
	for _, op := range l.Body {
		if _, dead := removed[op]; !dead {
			keep = append(keep, op)
		}
	}
	l.Body = keep
}

// deadStores removes stores overwritten by a later unconditional store to
// the same location with no intervening read, exit or call that could
// observe the earlier value.
func deadStores(l *ir.Loop, info *Info) {
	dead := map[*ir.Op]bool{}
	// Backward scan: "covered" locations will be overwritten before any
	// observation point.
	covered := map[memLoc]bool{}
	for i := len(l.Body) - 1; i >= 0; i-- {
		op := l.Body[i]
		switch op.Code {
		case ir.OpCall, ir.OpCondBr:
			// Memory is observable here.
			clear(covered)
		case ir.OpLoad:
			if op.Mem.Indirect || !l.NoAlias {
				clear(covered)
			} else {
				delete(covered, locKey(op.Mem))
			}
		case ir.OpStore:
			if op.Mem.Indirect {
				clear(covered)
				continue
			}
			key := locKey(op.Mem)
			if covered[key] && !op.Predicated {
				dead[op] = true
				info.DeadStores++
				continue
			}
			if !op.Predicated {
				covered[key] = true
			}
		}
	}
	if len(dead) == 0 {
		return
	}
	keep := l.Body[:0]
	for _, op := range l.Body {
		if !dead[op] {
			keep = append(keep, op)
		}
	}
	l.Body = keep
}

// coalesce merges pairs of unpredicated affine accesses to adjacent
// elements of the same array into one wide access, provided no store or
// call intervenes between the pair. Each access joins at most one pair.
func coalesce(l *ir.Loop, info *Info, code ir.Opcode) {
	pos := make(map[*ir.Op]int, len(l.Body))
	for i, op := range l.Body {
		pos[op] = i
	}
	type groupKey struct {
		array  string
		stride int
		bytes  int
		float  bool
	}
	groups := map[groupKey][]*ir.Op{}
	for _, op := range l.Body {
		if op.Code != code || op.Predicated || op.Mem.Indirect {
			continue
		}
		k := groupKey{op.Mem.Array, op.Mem.Stride, op.Mem.Elem.Bytes, op.Mem.Elem.Float}
		groups[k] = append(groups[k], op)
	}
	// Barrier positions between a candidate pair: calls always; stores that
	// may touch the array; and — when merging stores, since the earlier
	// store is delayed to the later one's position — loads that may read
	// the array and side exits that would observe the missing store.
	barrier := func(a, b int, array string) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		for i := lo + 1; i < hi; i++ {
			op := l.Body[i]
			switch op.Code {
			case ir.OpCall:
				return true
			case ir.OpStore:
				if !l.NoAlias || op.Mem.Array == array || op.Mem.Indirect {
					return true
				}
			case ir.OpLoad:
				if code == ir.OpStore && (!l.NoAlias || op.Mem.Array == array || op.Mem.Indirect) {
					return true
				}
			case ir.OpCondBr:
				if code == ir.OpStore {
					return true
				}
			}
		}
		return false
	}

	removedLoads := map[*ir.Op]ir.ArgRef{}
	removedStores := map[*ir.Op]bool{}
	for key, ops := range groups {
		sort.Slice(ops, func(i, j int) bool { return ops[i].Mem.Offset < ops[j].Mem.Offset })
		for i := 0; i+1 < len(ops); i++ {
			a, b := ops[i], ops[i+1]
			if removedIn(a, removedLoads, removedStores) || removedIn(b, removedLoads, removedStores) {
				continue
			}
			if b.Mem.Offset != a.Mem.Offset+1 {
				continue
			}
			if barrier(pos[a], pos[b], key.array) {
				continue
			}
			first, second := a, b
			if pos[b] < pos[a] {
				first, second = b, a
			}
			lowOff := a.Mem.Offset // a has the smaller offset after sorting
			if code == ir.OpLoad {
				// Keep the earlier load: the wide access satisfies both.
				removedLoads[second] = ir.Use(first)
				first.Mem.Offset = lowOff
				first.Mem.Span = 2
				info.CoalescedLoads++
			} else {
				// Keep the later store so both values are defined by the
				// time the wide store issues; it adopts the earlier
				// store's inputs.
				second.Args = append(second.Args, first.Args...)
				second.Mem.Offset = lowOff
				second.Mem.Span = 2
				removedStores[first] = true
				info.CoalescedStores++
			}
			i++ // the pair is consumed
		}
	}
	if len(removedLoads) > 0 {
		rewrite(l, removedLoads)
	}
	if len(removedStores) > 0 {
		keep := l.Body[:0]
		for _, op := range l.Body {
			if !removedStores[op] {
				keep = append(keep, op)
			}
		}
		l.Body = keep
	}
}

func removedIn(op *ir.Op, loads map[*ir.Op]ir.ArgRef, stores map[*ir.Op]bool) bool {
	if _, ok := loads[op]; ok {
		return true
	}
	return stores[op]
}
