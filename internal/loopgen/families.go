// Package loopgen generates the training corpus: 72 benchmarks spanning
// six suites (including the 24 SPEC CPU2000 programs of the paper's
// Figures 4 and 5), each containing dozens of innermost loops emitted as
// LoopLang source text and compiled through the real frontend. Loop shapes
// are drawn from families that mirror the paper's discussion of when
// unrolling pays: streaming elementwise loops, reductions, stencils, memory
// recurrences, strided and indirect accesses, if-converted branches, early
// exits, calls, integer work, divides and wide independent expression
// trees.
package loopgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// family enumerates loop-shape generators.
type family int

const (
	famStream family = iota
	famReduce
	famStencil
	famRecur
	famStrided
	famGather
	famBranchy
	famSearch
	famCalls
	famInt
	famDiv
	famWide
	numFamilies
)

// kernelParams carries the knobs a family generator works from.
type kernelParams struct {
	name    string
	lang    string // "c", "fortran", "f90"
	noalias bool   // for C kernels: restrict-style declaration
	trip    int    // compile-time trip count; 0 = unknown bound
	runtime int    // runtime trip when the bound is unknown
	entries int64
	nest    int
	elem    string // "double" or "float"
}

// header emits the kernel line and declarations shared by all families.
func (p *kernelParams) header(arrays []string, scalars string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kernel %s lang=%s", p.name, p.lang)
	if p.nest > 1 {
		fmt.Fprintf(&sb, " nest=%d", p.nest)
	}
	if p.entries > 1 {
		fmt.Fprintf(&sb, " entries=%d", p.entries)
	}
	if p.trip == 0 && p.runtime > 0 {
		fmt.Fprintf(&sb, " runtime_trip=%d", p.runtime)
	}
	sb.WriteString(" {\n")
	if len(arrays) > 0 {
		fmt.Fprintf(&sb, "\t%s %s;\n", p.elem, strings.Join(arrays, "[], ")+"[]")
	}
	if scalars != "" {
		sb.WriteString(scalars)
	}
	if p.noalias && p.lang == "c" {
		sb.WriteString("\tnoalias;\n")
	}
	return sb.String()
}

func (p *kernelParams) forLine(lo int) string {
	if p.trip > 0 {
		return fmt.Sprintf("\tfor i = %d .. %d {\n", lo, lo+p.trip)
	}
	return fmt.Sprintf("\tfor i = %d .. n {\n", lo)
}

// arrayNames returns k distinct array names.
func arrayNames(k int) []string {
	base := []string{"a", "b", "c", "d", "e", "f", "g", "h", "p", "q", "r", "s2", "t2", "u2", "v2", "w2"}
	return base[:k]
}

// genKernel dispatches to the family generator.
func genKernel(f family, r *rand.Rand, p kernelParams) string {
	switch f {
	case famStream:
		return genStream(r, p)
	case famReduce:
		return genReduce(r, p)
	case famStencil:
		return genStencil(r, p)
	case famRecur:
		return genRecur(r, p)
	case famStrided:
		return genStrided(r, p)
	case famGather:
		return genGather(r, p)
	case famBranchy:
		return genBranchy(r, p)
	case famSearch:
		return genSearch(r, p)
	case famCalls:
		return genCalls(r, p)
	case famInt:
		return genInt(r, p)
	case famDiv:
		return genDiv(r, p)
	case famWide:
		return genWide(r, p)
	}
	return genStream(r, p)
}

// genStream emits elementwise streaming loops: out[i] = f(in[i], ...).
func genStream(r *rand.Rand, p kernelParams) string {
	stmts := 1 + r.Intn(5)
	narr := 2 + r.Intn(3) + stmts
	if narr > 8 {
		narr = 8
	}
	arrs := arrayNames(narr)
	var sb strings.Builder
	sb.WriteString(p.header(arrs, "\tparam double alpha;\n"))
	sb.WriteString(p.forLine(0))
	for s := 0; s < stmts; s++ {
		dst := arrs[s%len(arrs)]
		a := arrs[(s+1)%len(arrs)]
		b := arrs[(s+2)%len(arrs)]
		switch r.Intn(3) {
		case 0:
			fmt.Fprintf(&sb, "\t\t%s[i] = %s[i] + alpha * %s[i];\n", dst, dst, a)
		case 1:
			fmt.Fprintf(&sb, "\t\t%s[i] = %s[i] * %s[i] + %0.1f;\n", dst, a, b, 0.5+r.Float64())
		default:
			fmt.Fprintf(&sb, "\t\t%s[i] = alpha * %s[i] - %s[i];\n", dst, a, b)
		}
	}
	sb.WriteString("\t}\n}\n")
	return sb.String()
}

// genReduce emits reductions with 1-3 accumulators.
func genReduce(r *rand.Rand, p kernelParams) string {
	accs := 1 + r.Intn(3)
	arrs := arrayNames(2)
	var scal strings.Builder
	names := []string{"s0", "s1", "s2"}[:accs]
	fmt.Fprintf(&scal, "\tdouble %s;\n", strings.Join(names, ", "))
	var sb strings.Builder
	sb.WriteString(p.header(arrs, scal.String()))
	sb.WriteString(p.forLine(0))
	for k, s := range names {
		switch (k + r.Intn(2)) % 3 {
		case 0:
			fmt.Fprintf(&sb, "\t\t%s = %s + %s[i] * %s[i];\n", s, s, arrs[0], arrs[1])
		case 1:
			fmt.Fprintf(&sb, "\t\t%s = %s + %s[i+%d];\n", s, s, arrs[k%2], k)
		default:
			fmt.Fprintf(&sb, "\t\t%s = %s + %s[i] * %0.2f;\n", s, s, arrs[0], 0.25+r.Float64())
		}
	}
	sb.WriteString("\t}\n}\n")
	return sb.String()
}

// genStencil emits neighborhood loops: b[i] = w·a[i-1] + a[i] + w·a[i+1].
func genStencil(r *rand.Rand, p kernelParams) string {
	width := 1 + r.Intn(2) // 3- or 5-point
	arrs := arrayNames(2)
	var sb strings.Builder
	sb.WriteString(p.header(arrs, ""))
	sb.WriteString(p.forLine(width))
	terms := []string{}
	for o := -width; o <= width; o++ {
		switch {
		case o == 0:
			terms = append(terms, fmt.Sprintf("%s[i]", arrs[0]))
		case o < 0:
			terms = append(terms, fmt.Sprintf("%0.2f * %s[i-%d]", 0.1+r.Float64(), arrs[0], -o))
		default:
			terms = append(terms, fmt.Sprintf("%0.2f * %s[i+%d]", 0.1+r.Float64(), arrs[0], o))
		}
	}
	fmt.Fprintf(&sb, "\t\t%s[i] = %s;\n", arrs[1], strings.Join(terms, " + "))
	sb.WriteString("\t}\n}\n")
	return sb.String()
}

// genRecur emits memory recurrences b[i] = f(b[i-d]); small d serializes.
func genRecur(r *rand.Rand, p kernelParams) string {
	d := 1 + r.Intn(4)
	arrs := arrayNames(2)
	var sb strings.Builder
	sb.WriteString(p.header(arrs, ""))
	sb.WriteString(p.forLine(d))
	if r.Intn(2) == 0 {
		fmt.Fprintf(&sb, "\t\t%s[i] = %s[i-%d] * %0.3f + %s[i];\n", arrs[0], arrs[0], d, 0.3+0.5*r.Float64(), arrs[1])
	} else {
		fmt.Fprintf(&sb, "\t\t%s[i] = %s[i-%d] + %s[i-%d];\n", arrs[0], arrs[0], d, arrs[0], d+1)
	}
	sb.WriteString("\t}\n}\n")
	return sb.String()
}

// genStrided emits column-order accesses through a linearized 2-D array.
func genStrided(r *rand.Rand, p kernelParams) string {
	stride := []int{8, 16, 32, 64}[r.Intn(4)]
	arrs := arrayNames(3)
	var sb strings.Builder
	sb.WriteString(p.header(arrs, "\tparam double alpha;\n"))
	sb.WriteString(p.forLine(0))
	fmt.Fprintf(&sb, "\t\t%s[i] = %s[%d*i] * alpha + %s[i];\n", arrs[2], arrs[0], stride, arrs[1])
	if r.Intn(2) == 0 {
		fmt.Fprintf(&sb, "\t\t%s[%d*i+1] = %s[i];\n", arrs[1], stride, arrs[2])
	}
	sb.WriteString("\t}\n}\n")
	return sb.String()
}

// genGather emits indirect accesses a[idx[i]].
func genGather(r *rand.Rand, p kernelParams) string {
	arrs := arrayNames(2)
	var sb strings.Builder
	sb.WriteString(p.header(arrs, "\tint idx[];\n"))
	sb.WriteString(p.forLine(0))
	if r.Intn(2) == 0 {
		fmt.Fprintf(&sb, "\t\t%s[i] = %s[idx[i]] * %0.2f;\n", arrs[0], arrs[1], 0.5+r.Float64())
	} else {
		fmt.Fprintf(&sb, "\t\t%s[idx[i]] = %s[idx[i]] + %s[i];\n", arrs[1], arrs[1], arrs[0])
	}
	sb.WriteString("\t}\n}\n")
	return sb.String()
}

// genBranchy emits if-converted conditional updates.
func genBranchy(r *rand.Rand, p kernelParams) string {
	arrs := arrayNames(3)
	var sb strings.Builder
	sb.WriteString(p.header(arrs, "\tdouble m;\n"))
	sb.WriteString(p.forLine(0))
	switch r.Intn(3) {
	case 0:
		fmt.Fprintf(&sb, "\t\tif (%s[i] > m) { m = %s[i]; }\n", arrs[0], arrs[0])
		fmt.Fprintf(&sb, "\t\t%s[i] = m;\n", arrs[1])
	case 1:
		fmt.Fprintf(&sb, "\t\tif (%s[i] > 0.0) { %s[i] = %s[i]; } else { %s[i] = 0.0 - %s[i]; }\n",
			arrs[0], arrs[1], arrs[0], arrs[1], arrs[0])
	default:
		fmt.Fprintf(&sb, "\t\tif (%s[i] >= %s[i]) { %s[i] = %s[i] - %s[i]; }\n",
			arrs[0], arrs[1], arrs[2], arrs[0], arrs[1])
	}
	sb.WriteString("\t}\n}\n")
	return sb.String()
}

// genSearch emits data-dependent early exits.
func genSearch(r *rand.Rand, p kernelParams) string {
	arrs := arrayNames(1)
	var sb strings.Builder
	sb.WriteString(p.header(arrs, "\tdouble s;\n"))
	sb.WriteString(p.forLine(0))
	fmt.Fprintf(&sb, "\t\ts = s + %s[i];\n", arrs[0])
	fmt.Fprintf(&sb, "\t\tif (s > %d.0) break;\n", 100+r.Intn(10000))
	sb.WriteString("\t}\n}\n")
	return sb.String()
}

// genCalls emits loops containing opaque calls.
func genCalls(r *rand.Rand, p kernelParams) string {
	arrs := arrayNames(2)
	var sb strings.Builder
	sb.WriteString(p.header(arrs, ""))
	sb.WriteString(p.forLine(0))
	fmt.Fprintf(&sb, "\t\t%s[i] = %s[i] + 1.0;\n", arrs[0], arrs[1])
	sb.WriteString("\t\tcall helper();\n")
	sb.WriteString("\t}\n}\n")
	return sb.String()
}

// genInt emits integer-dominated loops.
func genInt(r *rand.Rand, p kernelParams) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kernel %s lang=%s", p.name, p.lang)
	if p.nest > 1 {
		fmt.Fprintf(&sb, " nest=%d", p.nest)
	}
	if p.entries > 1 {
		fmt.Fprintf(&sb, " entries=%d", p.entries)
	}
	if p.trip == 0 && p.runtime > 0 {
		fmt.Fprintf(&sb, " runtime_trip=%d", p.runtime)
	}
	sb.WriteString(" {\n\tint x[], y[], z[];\n\tint acc;\n")
	if p.noalias && p.lang == "c" {
		sb.WriteString("\tnoalias;\n")
	}
	sb.WriteString(p.forLine(0))
	switch r.Intn(3) {
	case 0:
		sb.WriteString("\t\tz[i] = x[i] + y[i];\n\t\tacc = acc + z[i];\n")
	case 1:
		sb.WriteString("\t\tz[i] = x[i] * 3 + y[i] * 5;\n")
	default:
		sb.WriteString("\t\ty[i] = x[i] + i;\n\t\tacc = acc + y[i];\n")
	}
	sb.WriteString("\t}\n}\n")
	return sb.String()
}

// genDiv emits divide-heavy loops (unpipelined units).
func genDiv(r *rand.Rand, p kernelParams) string {
	arrs := arrayNames(3)
	var sb strings.Builder
	sb.WriteString(p.header(arrs, ""))
	sb.WriteString(p.forLine(0))
	fmt.Fprintf(&sb, "\t\t%s[i] = %s[i] / (%s[i] + %0.2f);\n", arrs[2], arrs[0], arrs[1], 1.0+r.Float64())
	sb.WriteString("\t}\n}\n")
	return sb.String()
}

// genWide emits wide independent expression trees (high ILP).
func genWide(r *rand.Rand, p kernelParams) string {
	terms := 3 + r.Intn(6)
	narr := 2*terms + 1
	if narr > 13 {
		narr = 13
	}
	arrs := arrayNames(narr)
	var sb strings.Builder
	sb.WriteString(p.header(arrs, ""))
	sb.WriteString(p.forLine(0))
	parts := []string{}
	for k := 0; k < terms; k++ {
		parts = append(parts, fmt.Sprintf("%s[i]*%s[i]", arrs[(1+2*k)%len(arrs)], arrs[(2+2*k)%len(arrs)]))
	}
	fmt.Fprintf(&sb, "\t\t%s[i] = %s;\n", arrs[0], strings.Join(parts, " + "))
	sb.WriteString("\t}\n}\n")
	return sb.String()
}
