package loopgen

import (
	"math/rand"
	"strings"
	"testing"

	"metaopt/internal/ir"
	"metaopt/internal/lang"
	"metaopt/internal/transform"
)

func smallCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := Generate(Options{Seed: 1, LoopsScale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateStructure(t *testing.T) {
	c := smallCorpus(t)
	if len(c.Benchmarks) != 72 {
		t.Fatalf("benchmarks = %d, want 72", len(c.Benchmarks))
	}
	if len(c.Spec2000()) != 24 {
		t.Fatalf("spec2000 = %d, want 24", len(c.Spec2000()))
	}
	fp := 0
	for _, b := range c.Spec2000() {
		if b.FP {
			fp++
		}
	}
	if fp != 13 {
		t.Errorf("SPECfp count = %d, want 13", fp)
	}
	if c.TotalLoops() == 0 {
		t.Fatal("no loops")
	}
	for _, b := range c.Benchmarks {
		if len(b.Loops) != len(b.Sources) {
			t.Fatalf("%s: loops/sources mismatch", b.Name)
		}
		if b.SerialFrac <= 0 || b.SerialFrac >= 1 {
			t.Errorf("%s: serial frac %v", b.Name, b.SerialFrac)
		}
		if b.NoiseScale < 1 {
			t.Errorf("%s: noise scale %v", b.Name, b.NoiseScale)
		}
	}
}

func TestFullScaleCorpusSize(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus in -short mode")
	}
	c, err := Generate(Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if n := c.TotalLoops(); n < 2800 || n > 4500 {
		t.Errorf("full corpus loops = %d, want ~3300", n)
	}
}

func TestLoopsValidAndUnrollable(t *testing.T) {
	c := smallCorpus(t)
	for _, b := range c.Benchmarks {
		for i, l := range b.Loops {
			if err := l.Validate(); err != nil {
				t.Fatalf("%s loop %d: %v\n%s", b.Name, i, err, b.Sources[i])
			}
			if l.Benchmark != b.Name {
				t.Fatalf("%s loop %d: benchmark tag %q", b.Name, i, l.Benchmark)
			}
			if _, _, err := transform.Unroll(l, 4); err != nil {
				t.Fatalf("%s loop %d not unrollable: %v", b.Name, i, err)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Options{Seed: 42, LoopsScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Options{Seed: 42, LoopsScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Benchmarks {
		if a.Benchmarks[i].Name != b.Benchmarks[i].Name {
			t.Fatal("benchmark order differs")
		}
		for j := range a.Benchmarks[i].Sources {
			if a.Benchmarks[i].Sources[j] != b.Benchmarks[i].Sources[j] {
				t.Fatalf("%s loop %d source differs", a.Benchmarks[i].Name, j)
			}
		}
	}
	c, err := Generate(Options{Seed: 43, LoopsScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Benchmarks {
		for j := range a.Benchmarks[i].Sources {
			if j < len(c.Benchmarks[i].Sources) && a.Benchmarks[i].Sources[j] != c.Benchmarks[i].Sources[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

func TestCorpusDiversity(t *testing.T) {
	c := smallCorpus(t)
	var langs = map[ir.Lang]int{}
	earlyExit, calls, indirect, knownTrip := 0, 0, 0, 0
	for _, b := range c.Benchmarks {
		for _, l := range b.Loops {
			langs[l.Lang]++
			if l.EarlyExit {
				earlyExit++
			}
			if l.TripCount > 0 {
				knownTrip++
			}
			for _, op := range l.Body {
				if op.Code == ir.OpCall {
					calls++
					break
				}
			}
			for _, op := range l.Body {
				if op.Mem != nil && op.Mem.Indirect {
					indirect++
					break
				}
			}
		}
	}
	if len(langs) < 3 {
		t.Errorf("languages = %v", langs)
	}
	if earlyExit == 0 || calls == 0 || indirect == 0 {
		t.Errorf("diversity: exits=%d calls=%d indirect=%d", earlyExit, calls, indirect)
	}
	if knownTrip == 0 {
		t.Error("no known-trip loops")
	}
}

func TestFind(t *testing.T) {
	c := smallCorpus(t)
	if c.Find("171.swim") == nil {
		t.Error("171.swim missing")
	}
	if c.Find("nonesuch") != nil {
		t.Error("found nonexistent benchmark")
	}
}

func TestAllFamiliesGenerateValidKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for f := family(0); f < numFamilies; f++ {
		for trial := 0; trial < 8; trial++ {
			p := kernelParams{
				name: "k", lang: []string{"c", "fortran", "f90"}[trial%3],
				noalias: trial%2 == 0, nest: 1 + trial%3, elem: "double",
			}
			if trial%2 == 0 {
				p.trip = 64
			} else {
				p.runtime = 100
			}
			src := genKernel(f, rng, p)
			if _, err := compileKernel(src); err != nil {
				t.Fatalf("family %d trial %d: %v\n%s", f, trial, err, src)
			}
		}
	}
}

func TestWrapOuterLoop(t *testing.T) {
	src := "kernel k lang=c {\n\tdouble a[];\n\tfor i = 0 .. 8 {\n\t\ta[i] = 0.0;\n\t}\n}\n"
	wrapped := wrapOuterLoop(src, 16)
	l, err := compileKernel(wrapped)
	if err != nil {
		t.Fatalf("%v\n%s", err, wrapped)
	}
	if l.NestLevel < 2 {
		t.Errorf("nest level = %d, want >= 2\n%s", l.NestLevel, wrapped)
	}
	if l.Entries != 16 {
		t.Errorf("entries = %d, want 16", l.Entries)
	}
	// Unwrappable input passes through untouched.
	if got := wrapOuterLoop("garbage", 4); got != "garbage" {
		t.Errorf("wrap of garbage = %q", got)
	}
}

func TestCorpusContainsRealNests(t *testing.T) {
	c, err := Generate(Options{Seed: 3, LoopsScale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	nested := 0
	for _, b := range c.Benchmarks {
		for _, src := range b.Sources {
			if strings.Contains(src, "for oo = ") {
				nested++
			}
		}
	}
	if nested == 0 {
		t.Error("no explicitly nested kernels in the corpus")
	}
}

// TestCorpusSourcesRoundTripThroughPrinter: every generated kernel must
// survive parse → print → parse → lower with identical IR.
func TestCorpusSourcesRoundTripThroughPrinter(t *testing.T) {
	c, err := Generate(Options{Seed: 13, LoopsScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range c.Benchmarks {
		for i, src := range b.Sources {
			k, err := lang.ParseKernel(src)
			if err != nil {
				t.Fatalf("%s loop %d: %v", b.Name, i, err)
			}
			printed := lang.PrintKernel(k)
			k2, err := lang.ParseKernel(printed)
			if err != nil {
				t.Fatalf("%s loop %d reparse: %v\n%s", b.Name, i, err, printed)
			}
			l1, err := lang.Lower(k)
			if err != nil {
				t.Fatal(err)
			}
			l2, err := lang.Lower(k2)
			if err != nil {
				t.Fatalf("%s loop %d lower printed: %v", b.Name, i, err)
			}
			if l1.String() != l2.String() {
				t.Fatalf("%s loop %d lowers differently after printing:\n%s\nvs\n%s", b.Name, i, l1, l2)
			}
		}
	}
}

func TestComputeStats(t *testing.T) {
	c := smallCorpus(t)
	s := c.ComputeStats()
	if s.Benchmarks != 72 || s.Loops != c.TotalLoops() {
		t.Fatalf("stats counts: %d/%d", s.Benchmarks, s.Loops)
	}
	if s.KnownTrip+s.UnknownTrip != s.Loops {
		t.Error("trip counts do not partition the corpus")
	}
	if s.MeanOps <= 3 {
		t.Errorf("mean ops = %v", s.MeanOps)
	}
	total := 0
	for _, n := range s.BySuite {
		total += n
	}
	if total != s.Loops {
		t.Error("suite counts do not partition the corpus")
	}
	out := s.Render()
	for _, want := range []string{"SPEC2000", "languages:", "early-exit"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats render missing %q:\n%s", want, out)
		}
	}
}

// TestGenerateReplicated pins the deterministic corpus replication used
// for 10x/100x stress datasets: replica r is regenerated from a perturbed
// seed with "@rN" benchmark names, so replicas are distinct corpora yet
// the whole thing is reproducible call over call.
func TestGenerateReplicated(t *testing.T) {
	base := smallCorpus(t)
	c, err := Generate(Options{Seed: 1, LoopsScale: 0.1, Replicate: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Benchmarks) != 3*len(base.Benchmarks) {
		t.Fatalf("benchmarks = %d, want %d", len(c.Benchmarks), 3*len(base.Benchmarks))
	}
	// Replica 1 is the unreplicated corpus, byte for byte.
	for i, b := range base.Benchmarks {
		got := c.Benchmarks[i]
		if got.Name != b.Name {
			t.Fatalf("replica 1 benchmark %d: name %q, want %q", i, got.Name, b.Name)
		}
		for j := range b.Sources {
			if got.Sources[j] != b.Sources[j] {
				t.Fatalf("replica 1 %s loop %d: source changed under replication", b.Name, j)
			}
		}
	}
	// Later replicas carry the suffix and differ in content.
	n := len(base.Benchmarks)
	differs := false
	for r := 1; r < 3; r++ {
		suffix := "@r" + string(rune('0'+r+1))
		for i, b := range base.Benchmarks {
			got := c.Benchmarks[r*n+i]
			if got.Name != b.Name+suffix {
				t.Fatalf("replica %d benchmark %d: name %q, want %q", r+1, i, got.Name, b.Name+suffix)
			}
			for j := range b.Sources {
				if j < len(got.Sources) && got.Sources[j] != b.Sources[j] {
					differs = true
				}
			}
		}
	}
	if !differs {
		t.Fatal("replicas are copies of the base corpus; perturbed seeds had no effect")
	}
	// And the whole replicated corpus is deterministic.
	c2, err := Generate(Options{Seed: 1, LoopsScale: 0.1, Replicate: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range c.Benchmarks {
		if c2.Benchmarks[i].Name != b.Name {
			t.Fatalf("benchmark %d: nondeterministic name", i)
		}
		for j := range b.Sources {
			if c2.Benchmarks[i].Sources[j] != b.Sources[j] {
				t.Fatalf("%s loop %d: nondeterministic source", b.Name, j)
			}
		}
	}
}
