package loopgen

import (
	"fmt"
	"math/rand"
	"strings"

	"metaopt/internal/ir"
	"metaopt/internal/lang"
)

// Suite names a benchmark collection.
type Suite string

// The six suites of the paper's corpus (Section 4.6).
const (
	SuiteSpec2000   Suite = "SPEC2000"
	SuiteSpec95     Suite = "SPEC95"
	SuiteSpec92     Suite = "SPEC92"
	SuiteMediabench Suite = "Mediabench"
	SuitePerfect    Suite = "Perfect"
	SuiteKernels    Suite = "Kernels"
)

// Benchmark is one program: a bag of innermost loops plus the whole-program
// composition parameters used by the Figure 4/5 experiments.
type Benchmark struct {
	Name  string
	Suite Suite
	FP    bool // floating-point benchmark (SPECfp side of the figures)

	Loops   []*ir.Loop
	Sources []string // LoopLang source per loop

	// SerialFrac is the fraction of program runtime outside instrumented
	// loops (at the baseline compilation); integer codes spend far more
	// time in unloopy code than SPECfp codes do.
	SerialFrac float64

	// NoiseScale multiplies measurement noise for this benchmark's loops.
	// The paper observed three SPEC programs (mesa, mcf, crafty) whose
	// training sets were noisy enough that ORC beat the "oracle".
	NoiseScale float64
}

// Corpus is the full 72-benchmark training corpus.
type Corpus struct {
	Benchmarks []*Benchmark
}

// Options controls corpus generation.
type Options struct {
	Seed int64

	// LoopsScale scales the number of loops per benchmark (1.0 gives the
	// full ~3500-loop corpus; tests use smaller values).
	LoopsScale float64

	// Replicate deterministically replicates the whole corpus: replica
	// r ≥ 2 is regenerated from a seed perturbed by the replica index and
	// its benchmarks renamed "name@rN", so every replica contributes
	// distinct loops and an independent measurement-noise stream (noise is
	// seeded per benchmark name). 0 or 1 means a single copy; 10 or 100
	// builds the reproducible stress corpora for out-of-core training.
	Replicate int
}

// profile drives generation for one benchmark.
type profile struct {
	fp          bool
	lang        string
	famW        [numFamilies]int
	largeTrips  bool
	loops       int
	serialFrac  float64
	noaliasProb float64
	noiseScale  float64
}

func fpProfile(lang string, loops int) profile {
	p := profile{fp: true, lang: lang, loops: loops, largeTrips: true,
		serialFrac: 0.5, noaliasProb: 0.7, noiseScale: 1}
	p.famW = [numFamilies]int{
		famStream: 17, famReduce: 13, famStencil: 12, famRecur: 13,
		famStrided: 10, famGather: 5, famBranchy: 7, famSearch: 3,
		famCalls: 3, famInt: 2, famDiv: 7, famWide: 8,
	}
	return p
}

func intProfile(loops int) profile {
	p := profile{fp: false, lang: "c", loops: loops, largeTrips: false,
		serialFrac: 0.7, noaliasProb: 0.25, noiseScale: 1}
	p.famW = [numFamilies]int{
		famStream: 10, famReduce: 6, famStencil: 2, famRecur: 5,
		famStrided: 3, famGather: 11, famBranchy: 21, famSearch: 14,
		famCalls: 8, famInt: 17, famDiv: 1, famWide: 2,
	}
	return p
}

func mediaProfile(loops int) profile {
	p := profile{fp: false, lang: "c", loops: loops, largeTrips: false,
		serialFrac: 0.6, noaliasProb: 0.4, noiseScale: 1}
	p.famW = [numFamilies]int{
		famStream: 16, famReduce: 10, famStencil: 10, famRecur: 7,
		famStrided: 6, famGather: 8, famBranchy: 14, famSearch: 6,
		famCalls: 4, famInt: 13, famDiv: 3, famWide: 3,
	}
	return p
}

// spec2000 lists the 24 SPEC CPU2000 programs of Figures 4/5 (252.eon and
// 191.fma3d are excluded, as in the paper).
var spec2000 = []struct {
	name string
	fp   bool
	lang string
}{
	{"164.gzip", false, "c"},
	{"168.wupwise", true, "fortran"},
	{"171.swim", true, "fortran"},
	{"172.mgrid", true, "fortran"},
	{"173.applu", true, "fortran"},
	{"175.vpr", false, "c"},
	{"176.gcc", false, "c"},
	{"177.mesa", true, "c"},
	{"178.galgel", true, "f90"},
	{"179.art", true, "c"},
	{"181.mcf", false, "c"},
	{"183.equake", true, "c"},
	{"186.crafty", false, "c"},
	{"187.facerec", true, "f90"},
	{"188.ammp", true, "c"},
	{"189.lucas", true, "f90"},
	{"197.parser", false, "c"},
	{"200.sixtrack", true, "fortran"},
	{"253.perlbmk", false, "c"},
	{"254.gap", false, "c"},
	{"255.vortex", false, "c"},
	{"256.bzip2", false, "c"},
	{"300.twolf", false, "c"},
	{"301.apsi", true, "fortran"},
}

// noisyBenchmarks are the programs the paper flags as having noisy
// training sets (Section 6.1).
var noisyBenchmarks = map[string]float64{
	"177.mesa":   4,
	"181.mcf":    4,
	"186.crafty": 4,
}

var spec95Names = []string{"tomcatv", "su2cor", "hydro2d", "turb3d", "fpppp", "wave5",
	"m88ksim", "compress", "li", "ijpeg", "go", "perl"}
var spec95FP = map[string]bool{"tomcatv": true, "su2cor": true, "hydro2d": true, "turb3d": true, "fpppp": true, "wave5": true}

var spec92Names = []string{"alvinn", "ear", "ora", "swm256", "nasa7", "doduc", "espresso", "eqntott"}
var spec92FP = map[string]bool{"alvinn": true, "ear": true, "ora": true, "swm256": true, "nasa7": true, "doduc": true}

var mediabenchNames = []string{"adpcm", "epic", "g721", "ghostscript", "gsm", "jpeg", "mpeg2", "pegwit", "rasta", "pgp"}

var perfectNames = []string{"adm", "arc2d", "bdna", "dyfesm", "flo52", "mdg", "ocean", "qcd"}

var kernelNames = []string{"livermore", "linpack", "fft", "matmul", "stencil3", "sor", "idct", "fir", "viterbi", "cholesky"}

// Generate builds the corpus deterministically from the seed. With
// Options.Replicate > 1 the full benchmark list is generated once per
// replica, each from its own perturbed seed.
func Generate(opt Options) (*Corpus, error) {
	c := &Corpus{}
	reps := opt.Replicate
	if reps < 1 {
		reps = 1
	}
	for r := 0; r < reps; r++ {
		seed := opt.Seed
		suffix := ""
		if r > 0 {
			// Odd multiplier (the signed bits of the 64-bit golden ratio)
			// spreads replica seeds across the space; replica numbering
			// in names is 1-based to match the CLI flag.
			seed = opt.Seed + int64(r)*-0x61c8864680b583eb
			suffix = fmt.Sprintf("@r%d", r+1)
		}
		if err := generateReplica(c, seed, opt.LoopsScale, suffix); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// generateReplica appends one full benchmark list to c, every benchmark name
// carrying the replica suffix.
func generateReplica(c *Corpus, seed int64, loopsScale float64, suffix string) error {
	scale := loopsScale
	if scale <= 0 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed ^ 0x6d657461))

	scaled := func(n int) int {
		v := int(float64(n) * scale)
		if v < 2 {
			v = 2
		}
		return v
	}

	add := func(name string, suite Suite, p profile) error {
		b, err := genBenchmark(name+suffix, suite, p, rng)
		if err != nil {
			return err
		}
		c.Benchmarks = append(c.Benchmarks, b)
		return nil
	}

	for _, s := range spec2000 {
		var p profile
		if s.fp {
			p = fpProfile(s.lang, scaled(55))
		} else {
			p = intProfile(scaled(45))
		}
		if s.name == "177.mesa" || s.name == "179.art" || s.name == "183.equake" || s.name == "188.ammp" {
			p.lang = "c" // SPECfp C programs
		}
		if ns, ok := noisyBenchmarks[s.name]; ok {
			p.noiseScale = ns
		}
		if err := add(s.name, SuiteSpec2000, p); err != nil {
			return err
		}
	}
	for _, n := range spec95Names {
		var p profile
		if spec95FP[n] {
			p = fpProfile("fortran", scaled(48))
		} else {
			p = intProfile(scaled(40))
		}
		if err := add(n, SuiteSpec95, p); err != nil {
			return err
		}
	}
	for _, n := range spec92Names {
		var p profile
		if spec92FP[n] {
			p = fpProfile("fortran", scaled(42))
		} else {
			p = intProfile(scaled(36))
		}
		if err := add(n, SuiteSpec92, p); err != nil {
			return err
		}
	}
	for _, n := range mediabenchNames {
		if err := add(n, SuiteMediabench, mediaProfile(scaled(42))); err != nil {
			return err
		}
	}
	for _, n := range perfectNames {
		if err := add(n, SuitePerfect, fpProfile("fortran", scaled(46))); err != nil {
			return err
		}
	}
	for _, n := range kernelNames {
		p := fpProfile("c", scaled(36))
		p.noaliasProb = 0.9
		if err := add(n, SuiteKernels, p); err != nil {
			return err
		}
	}
	return nil
}

func genBenchmark(name string, suite Suite, p profile, rng *rand.Rand) (*Benchmark, error) {
	b := &Benchmark{
		Name:       name,
		Suite:      suite,
		FP:         p.fp,
		SerialFrac: p.serialFrac + 0.1*rng.Float64() - 0.05,
		NoiseScale: p.noiseScale,
	}
	total := 0
	for _, w := range p.famW {
		total += w
	}
	pick := func() family {
		t := rng.Intn(total)
		for f, w := range p.famW {
			if t < w {
				return family(f)
			}
			t -= w
		}
		return famStream
	}
	for i := 0; i < p.loops; i++ {
		fam := pick()
		params := kernelParams{
			name:    fmt.Sprintf("L%03d", i),
			lang:    p.lang,
			noalias: rng.Float64() < p.noaliasProb,
			nest:    1 + weightedNest(rng),
			elem:    "double",
		}
		if !p.fp && rng.Float64() < 0.5 {
			params.elem = "float"
		}
		params.trip, params.runtime = pickTrip(p.largeTrips, fam, rng)
		iters := params.trip
		if iters == 0 {
			iters = params.runtime
		}
		// Total iterations across the run: enough to clear the 50k-cycle
		// instrumentation floor for most loops, with a spread so some fall
		// below it (and get filtered, as in the paper). The spread is kept
		// moderate so no single loop dominates its benchmark's runtime.
		target := int64(40_000) << uint(rng.Intn(4)) // 40k .. 320k iterations
		// Some nested loops are written with explicit outer loops (the
		// lowering multiplies entries by the outer trip); the rest carry
		// their nest depth as an attribute.
		outer := 0
		if params.nest > 1 && fam != famSearch && rng.Float64() < 0.5 {
			outer = []int{4, 8, 16, 32}[rng.Intn(4)]
		}
		params.entries = target / int64(iters) / int64(maxInt(outer, 1))
		if params.entries < 1 {
			params.entries = 1
		}
		src := genKernel(fam, rng, params)
		if outer > 0 {
			src = wrapOuterLoop(src, outer)
		}
		loop, err := compileKernel(src)
		if err != nil {
			return nil, fmt.Errorf("loopgen: %s/%s (%v): %w\n%s", name, params.name, fam, err, src)
		}
		loop.Benchmark = name
		b.Loops = append(b.Loops, loop)
		b.Sources = append(b.Sources, src)
	}
	return b, nil
}

// wrapOuterLoop rewrites a kernel's single loop into a perfect two-level
// nest with the given outer trip count. Every family generator closes its
// kernel with the literal "\t}\n}\n", so the rewrite is purely textual.
func wrapOuterLoop(src string, trip int) string {
	forIdx := strings.Index(src, "\tfor ")
	if forIdx < 0 || !strings.HasSuffix(src, "\t}\n}\n") {
		return src
	}
	var sb strings.Builder
	sb.WriteString(src[:forIdx])
	fmt.Fprintf(&sb, "\tfor oo = 0 .. %d {\n", trip)
	sb.WriteString(src[forIdx : len(src)-len("}\n")])
	sb.WriteString("\t}\n}\n")
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func compileKernel(src string) (*ir.Loop, error) {
	k, err := lang.ParseKernel(src)
	if err != nil {
		return nil, err
	}
	return lang.Lower(k)
}

// weightedNest draws nest-1 with decreasing probability of deep nests.
func weightedNest(rng *rand.Rand) int {
	switch r := rng.Float64(); {
	case r < 0.45:
		return 0
	case r < 0.8:
		return 1
	case r < 0.95:
		return 2
	default:
		return 3
	}
}

// pickTrip draws a trip count. Round (power-of-two-ish) compile-time trips
// dominate, matching array-dimension conventions in numerical codes; a
// fraction of loops have symbolic bounds.
func pickTrip(large bool, fam family, rng *rand.Rand) (trip, runtime int) {
	unknownProb := 0.2
	if !large {
		unknownProb = 0.35
	}
	if fam == famSearch {
		unknownProb = 1 // searches rarely have static bounds
	}
	largeTrips := []int{256, 400, 512, 1000, 1024, 2048, 4096, 8192}
	smallTrips := []int{8, 12, 16, 24, 32, 50, 64, 100, 128, 256}
	if rng.Float64() < unknownProb {
		if large {
			return 0, 100 + rng.Intn(2000)
		}
		return 0, 15 + rng.Intn(300)
	}
	// Even "large" benchmarks contain plenty of short inner loops.
	if large && rng.Float64() > 0.35 {
		return largeTrips[rng.Intn(len(largeTrips))], 0
	}
	return smallTrips[rng.Intn(len(smallTrips))], 0
}

// TotalLoops counts loops across benchmarks.
func (c *Corpus) TotalLoops() int {
	n := 0
	for _, b := range c.Benchmarks {
		n += len(b.Loops)
	}
	return n
}

// Spec2000 returns the 24 SPEC CPU2000 benchmarks in figure order.
func (c *Corpus) Spec2000() []*Benchmark {
	var out []*Benchmark
	for _, b := range c.Benchmarks {
		if b.Suite == SuiteSpec2000 {
			out = append(out, b)
		}
	}
	return out
}

// Find returns the benchmark with the given name, or nil.
func (c *Corpus) Find(name string) *Benchmark {
	for _, b := range c.Benchmarks {
		if b.Name == name {
			return b
		}
	}
	return nil
}
