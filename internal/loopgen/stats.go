package loopgen

import (
	"fmt"
	"sort"
	"strings"

	"metaopt/internal/ir"
)

// Stats summarizes corpus composition, mirroring the corpus description in
// the paper's Section 4.6 (suites, languages, loop properties).
type Stats struct {
	Benchmarks int
	Loops      int

	BySuite map[Suite]int // loops per suite
	ByLang  map[ir.Lang]int

	KnownTrip   int
	UnknownTrip int
	EarlyExit   int
	WithCalls   int
	WithIndir   int
	Nested      int // nest level > 1

	MeanOps float64
}

// ComputeStats tallies the corpus.
func (c *Corpus) ComputeStats() *Stats {
	s := &Stats{
		Benchmarks: len(c.Benchmarks),
		BySuite:    map[Suite]int{},
		ByLang:     map[ir.Lang]int{},
	}
	totalOps := 0
	for _, b := range c.Benchmarks {
		s.BySuite[b.Suite] += len(b.Loops)
		for _, l := range b.Loops {
			s.Loops++
			s.ByLang[l.Lang]++
			totalOps += l.NumOps()
			if l.TripCount > 0 {
				s.KnownTrip++
			} else {
				s.UnknownTrip++
			}
			if l.EarlyExit {
				s.EarlyExit++
			}
			if l.NestLevel > 1 {
				s.Nested++
			}
			for _, op := range l.Body {
				if op.Code == ir.OpCall {
					s.WithCalls++
					break
				}
			}
			for _, op := range l.Body {
				if op.Mem != nil && op.Mem.Indirect {
					s.WithIndir++
					break
				}
			}
		}
	}
	if s.Loops > 0 {
		s.MeanOps = float64(totalOps) / float64(s.Loops)
	}
	return s
}

// Render formats the statistics.
func (s *Stats) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "corpus: %d benchmarks, %d loops (mean body %.1f ops)\n",
		s.Benchmarks, s.Loops, s.MeanOps)
	suites := make([]string, 0, len(s.BySuite))
	for suite := range s.BySuite {
		suites = append(suites, string(suite))
	}
	sort.Strings(suites)
	for _, suite := range suites {
		fmt.Fprintf(&sb, "  %-12s %5d loops\n", suite, s.BySuite[Suite(suite)])
	}
	langs := []ir.Lang{ir.LangC, ir.LangFortran, ir.LangFortran90}
	sb.WriteString("languages:")
	for _, l := range langs {
		fmt.Fprintf(&sb, " %s=%d", l, s.ByLang[l])
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "trip counts: %d known, %d unknown\n", s.KnownTrip, s.UnknownTrip)
	fmt.Fprintf(&sb, "control: %d early-exit, %d with calls, %d with indirect refs, %d nested\n",
		s.EarlyExit, s.WithCalls, s.WithIndir, s.Nested)
	return sb.String()
}
