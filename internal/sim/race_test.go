package sim

import (
	"math/rand"
	"sync"
	"testing"

	"metaopt/internal/ir"
	"metaopt/internal/transform"
)

// TestTimerSharedCacheConcurrent hammers one Timer's sharded compile and
// remainder caches from many goroutines (run under -race in CI) and checks
// every concurrent answer against a serially-filled reference timer.
func TestTimerSharedCacheConcurrent(t *testing.T) {
	srcs := []string{
		`kernel a lang=c {
			param double s;
			double x[], y[];
			noalias;
			for i = 0 .. 4096 { y[i] = y[i] + s * x[i]; }
		}`,
		`kernel b lang=c {
			double x[], y[];
			noalias;
			for i = 0 .. 999 { y[i] = x[i] * x[i]; }
		}`,
		`kernel c lang=c {
			double acc;
			double x[];
			for i = 0 .. 2047 { acc = acc + x[i]; }
		}`,
	}
	var loops []*ir.Loop
	for _, src := range srcs {
		loops = append(loops, loop(t, src))
	}

	cfg := DefaultConfig()
	cfg.Noise = 0
	cfg.BiasNoise = 0
	ref := NewTimer(cfg)
	want := map[[2]int]int64{}
	for li, l := range loops {
		for u := 1; u <= transform.MaxFactor; u++ {
			c, err := ref.Cycles(l, u)
			if err != nil {
				t.Fatal(err)
			}
			want[[2]int{li, u}] = c
		}
	}

	shared := NewTimer(cfg)
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for iter := 0; iter < 200; iter++ {
				li := rng.Intn(len(loops))
				u := 1 + rng.Intn(transform.MaxFactor)
				c, err := shared.Cycles(loops[li], u)
				if err != nil {
					errs[g] = err
					return
				}
				if c != want[[2]int{li, u}] {
					t.Errorf("goroutine %d: loop %d u=%d: got %d, want %d",
						g, li, u, c, want[[2]int{li, u}])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
