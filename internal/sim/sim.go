// Package sim is the timing substrate standing in for the paper's 1.3 GHz
// Itanium 2: it compiles a loop at a given unroll factor (unroll + cleanup,
// dependence analysis, list scheduling or modulo scheduling, register
// pressure, I-cache model) and reports the cycles the loop consumes in a
// program run. A measurement layer reproduces the paper's instrumentation
// methodology: repeated noisy runs, median aggregation, and the 50 000-cycle
// floor below which loops are considered too noisy to train on.
package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"

	"metaopt/internal/analysis"
	"metaopt/internal/ir"
	"metaopt/internal/machine"
	"metaopt/internal/obs"
	"metaopt/internal/regalloc"
	"metaopt/internal/sched"
	"metaopt/internal/swp"
	"metaopt/internal/transform"
)

// Cache and measurement telemetry. Hit/miss accounting is deterministic
// even with racing workers: a miss is counted only by the worker whose
// store wins, so misses equals the number of distinct keys compiled and
// hits equals lookups minus misses. A worker that compiled redundantly
// (lost the store race and adopted the winner's result) counts as a hit
// plus a race — the races counter is the only scheduling-dependent value.
var (
	mCompileHits   = obs.C("sim.compile_cache.hits")
	mCompileMisses = obs.C("sim.compile_cache.misses")
	mCompileRaces  = obs.C("sim.compile_cache.races")
	mRemHits       = obs.C("sim.remainder_cache.hits")
	mRemMisses     = obs.C("sim.remainder_cache.misses")
	mRemRaces      = obs.C("sim.remainder_cache.races")
	mSharedHits    = obs.C("sim.loop_shared.hits")
	mSharedMisses  = obs.C("sim.loop_shared.misses")
	mSchedules     = obs.C("sim.schedules_built")
	mMeasurements  = obs.C("sim.measurements")
	mCycles        = obs.C("sim.cycles_simulated")
)

// Config selects the compilation mode and measurement behaviour.
type Config struct {
	Mach *machine.Desc

	// SWP enables software pipelining (the paper's second experiment).
	// Loops with side exits or calls fall back to list scheduling, as in
	// ORC.
	SWP bool

	// Runs is how many times each measurement is repeated (paper: 30).
	Runs int

	// Noise is the relative standard deviation of multiplicative
	// measurement noise. Zero gives exact cycle counts.
	Noise float64

	// MinCycles is the instrumentation floor: loops running for fewer
	// cycles are too noisy to label (paper: 50 000).
	MinCycles int64

	// BiasNoise is the relative standard deviation of a systematic
	// per-measurement bias (operating-system and placement effects that an
	// entire 30-run session shares). Unlike Noise it is not suppressed by
	// taking the median, so it directly perturbs labels whose factors are
	// near ties.
	BiasNoise float64

	// ContextVar is the strength of hidden per-loop program context: real
	// loops run inside programs whose data-cache residency and
	// instruction-cache pressure the compiler's static features cannot
	// see. Each loop gets deterministic hidden factors scaling its memory
	// latency and code-size penalties; this bounds achievable prediction
	// accuracy, as on real hardware. Zero disables it.
	ContextVar float64
}

// DefaultConfig mirrors the paper's methodology on the default machine.
func DefaultConfig() *Config {
	return &Config{
		Mach:       machine.Itanium2(),
		Runs:       30,
		Noise:      0.03,
		BiasNoise:  0.02,
		MinCycles:  50_000,
		ContextVar: 0.55,
	}
}

// CompileStats describes one compiled loop variant.
type CompileStats struct {
	Unroll      int
	BodyOps     int
	CodeBytes   int
	Period      float64 // steady-state cycles per source iteration
	II          int     // SWP only
	Stages      int     // SWP only
	SpillCycles int
	Pipelined   bool
}

// cacheShards stripes the compile cache: concurrent workers hash to
// different shards and rarely contend on the same lock.
const cacheShards = 64

// Timer compiles and times loops, caching compilations: label collection
// re-times the same (loop, unroll) pairs many times. A Timer is safe for
// concurrent use — the compile and remainder caches are sharded so the
// whole evaluation pipeline can share one Timer (and one compilation of
// the corpus) across the worker pool.
type Timer struct {
	Cfg    *Config
	shards [cacheShards]compileShard
	rem    [cacheShards]remainderShard
	shared [cacheShards]sharedShard
}

type compileShard struct {
	mu sync.Mutex
	m  map[timerKey]*compiled
}

type remainderShard struct {
	mu sync.Mutex
	m  map[*ir.Loop]float64
}

type sharedShard struct {
	mu sync.Mutex
	m  map[*ir.Loop]*loopShared
}

// loopShared is the per-loop state every unroll factor of the same loop can
// reuse: the one-time input validation and the rolled body's recurrence
// ratio. The eight factor compiles of one loop used to repeat both —
// validation per factor and a full clone+dependence-analysis of the rolled
// body inside pipelineMII per factor.
type loopShared struct {
	validateOnce sync.Once
	validateErr  error

	recOnce sync.Once
	rn, rd  int
}

// validated runs l.Validate exactly once per loop, whatever unroll factor
// asks first.
func (ls *loopShared) validated(l *ir.Loop) error {
	ls.validateOnce.Do(func() {
		if err := l.Validate(); err != nil {
			ls.validateErr = fmt.Errorf("transform: input: %w", err)
		}
	})
	return ls.validateErr
}

// recurrence returns the rolled body's recurrence ratio excluding the
// induction update, computed once per loop and shared by all factors.
func (ls *loopShared) recurrence(l *ir.Loop, m *machine.Desc) (rn, rd int) {
	ls.recOnce.Do(func() {
		rg := analysis.Build(l.Clone(), m)
		ls.rn, ls.rd = rg.RecurrenceRatioExcluding(func(op *ir.Op) bool {
			return op.Code == ir.OpAdd && selfCarried(op)
		})
	})
	return ls.rn, ls.rd
}

type timerKey struct {
	loop *ir.Loop
	u    int
	swp  bool
}

type compiled struct {
	perEntry float64 // cycles per loop entry, deterministic
	stats    CompileStats
}

// NewTimer returns a Timer for the given configuration. Shard maps are
// created lazily under their shard lock, so a short-lived Timer does not
// pay for 2×64 empty maps up front.
func NewTimer(cfg *Config) *Timer {
	return &Timer{Cfg: cfg}
}

// shardOf mixes the loop's identity and the unroll factor into a shard
// index (SplitMix64 finalizer over the pointer bits).
func shardOf(l *ir.Loop, u int) uint32 {
	h := uint64(reflect.ValueOf(l).Pointer()) + uint64(u)*0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return uint32(h % cacheShards)
}

// Cycles returns the deterministic total cycles loop l consumes per program
// run when compiled with unroll factor u.
func (t *Timer) Cycles(l *ir.Loop, u int) (int64, error) {
	c, err := t.compile(l, u)
	if err != nil {
		return 0, err
	}
	return int64(c.perEntry * float64(l.Entries)), nil
}

// Stats returns the compilation statistics for (l, u).
func (t *Timer) Stats(l *ir.Loop, u int) (CompileStats, error) {
	c, err := t.compile(l, u)
	if err != nil {
		return CompileStats{}, err
	}
	return c.stats, nil
}

// compile returns the cached compilation of (l, u), compiling on a miss.
// Compilation is deterministic, so two workers racing on the same key
// compute identical results; the first store wins and the loser adopts it,
// keeping the cache single-valued. The compile itself runs outside the
// shard lock — it may recurse into the remainder cache, whose key can land
// on the same shard index.
func (t *Timer) compile(l *ir.Loop, u int) (*compiled, error) {
	key := timerKey{l, u, t.Cfg.SWP}
	sh := &t.shards[shardOf(l, u)]
	sh.mu.Lock()
	c, ok := sh.m[key]
	sh.mu.Unlock()
	if ok {
		mCompileHits.Inc()
		return c, nil
	}
	c, err := t.compileLoop(l, u)
	if err != nil {
		return nil, err
	}
	sh.mu.Lock()
	if prev, ok := sh.m[key]; ok {
		c = prev
		sh.mu.Unlock()
		// Lost the store race: the key was compiled exactly once for
		// accounting purposes, so this call is a (redundant) hit.
		mCompileHits.Inc()
		mCompileRaces.Inc()
		return c, nil
	}
	if sh.m == nil {
		sh.m = map[timerKey]*compiled{}
	}
	sh.m[key] = c
	sh.mu.Unlock()
	mCompileMisses.Inc()
	return c, nil
}

// sharedFor returns the per-loop shared compile state, creating it on first
// sight of the loop. The hit/miss counters give the graph-reuse rate: every
// hit is a factor compile that skipped the loop-level analysis work.
func (t *Timer) sharedFor(l *ir.Loop) *loopShared {
	sh := &t.shared[shardOf(l, 0)]
	sh.mu.Lock()
	ls, ok := sh.m[l]
	if !ok {
		if sh.m == nil {
			sh.m = map[*ir.Loop]*loopShared{}
		}
		ls = &loopShared{}
		sh.m[l] = ls
	}
	sh.mu.Unlock()
	if ok {
		mSharedHits.Inc()
	} else {
		mSharedMisses.Inc()
	}
	return ls
}

// compileLoop builds the unrolled variant and prices one loop entry.
func (t *Timer) compileLoop(l *ir.Loop, u int) (*compiled, error) {
	return t.compileLoopShared(l, u, t.sharedFor(l))
}

// compileLoopShared compiles (l, u) with ls carrying the loop-level work
// shared across factors. Passing a fresh, unshared loopShared reproduces the
// old independent-per-factor compile exactly — the bit-identity test relies
// on this.
func (t *Timer) compileLoopShared(l *ir.Loop, u int, ls *loopShared) (*compiled, error) {
	cfg := t.Cfg
	if err := ls.validated(l); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	unrolled, info, err := transform.UnrollPrechecked(l, u)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	m := cfg.Mach
	g := analysis.Build(unrolled, m)

	usePipeline := cfg.SWP && !unrolled.EarlyExit && !hasCalls(unrolled)

	var bodyCycles float64 // steady-state cycles per unrolled body
	var fillDrain float64  // per-entry pipeline fill/drain
	stats := CompileStats{Unroll: u, BodyOps: len(unrolled.Body)}

	mSchedules.Inc()
	if usePipeline {
		mii := pipelineMII(l, g, u, ls, m)
		r, err := swp.Schedule(g, mii)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		bodyCycles = float64(r.II + r.SpillCycles)
		fillDrain = float64(2 * (r.Stages - 1) * r.II)
		stats.II = r.II
		stats.Stages = r.Stages
		stats.SpillCycles = r.SpillCycles
		stats.Pipelined = true
		// Kernel plus prologue/epilogue code.
		stats.CodeBytes = m.CodeBytes(len(unrolled.Body) * (1 + r.Stages))
	} else {
		s := sched.List(g)
		ra := regalloc.Run(s)
		bodyCycles = float64(s.Period + ra.SpillCycles)
		stats.SpillCycles = ra.SpillCycles
		stats.CodeBytes = m.CodeBytes(len(unrolled.Body) + ra.StoreOps + ra.ReloadOps)
	}

	// Replicated side exits cost extra branch resolution per body.
	if unrolled.EarlyExit && u > 1 {
		bodyCycles += float64((u - 1) * m.EarlyExitOverhead)
	}

	// Hidden program context (see Config.ContextVar): deterministic
	// per-loop factors modeling the surrounding program's data-cache
	// behaviour, instruction-cache pressure and branch-predictor state.
	// They tilt the unrolling trade-off in ways no static loop feature can
	// observe.
	hMem, hIC, hBr := contextFactors(l)
	v := cfg.ContextVar
	if v > 0 {
		// Contended data cache: issuing many loads in parallel from a big
		// unrolled body thrashes; cost grows with the unroll factor.
		loads := 0
		for _, op := range unrolled.Body {
			if op.Code == ir.OpLoad {
				loads++
			}
		}
		bodyCycles += v * hMem * 2.2 * float64(loads) * float64(u-1) / 7
		// Costly back edges (cold predictor, deep frontend): rewards
		// larger bodies.
		bodyCycles += v * hBr * 2
	}

	// Instruction-cache model: cold misses on entry plus a steady-state
	// capacity penalty once the loop outgrows its share of L1I.
	const lineBytes = 64
	lines := (stats.CodeBytes + lineBytes - 1) / lineBytes
	icScale := 1 + 3*v*hIC
	coldPenalty := icScale * float64(lines*m.L1IMissCycles) / 2
	share := m.L1IBytes / 4
	var capacityPerBody float64
	if stats.CodeBytes > share {
		capacityPerBody = icScale * float64(m.L1IMissCycles) * float64(stats.CodeBytes-share) / float64(m.L1IBytes)
	}
	bodyCycles += capacityPerBody

	trip := l.RuntimeTrip
	if trip < 1 {
		trip = 1
	}
	var perEntry float64
	const setup = 6.0 // loop preconditioning: counted once per entry
	switch {
	case unrolled.EarlyExit:
		// The exit can fire mid-body: the final body runs to completion,
		// wasting up to u-1 iterations of work.
		bodies := (trip + u - 1) / u
		perEntry = float64(bodies)*bodyCycles + setup
	default:
		bodies := trip / u
		rem := trip % u
		perEntry = float64(bodies)*bodyCycles + fillDrain + setup
		if rem > 0 {
			remCycles, err := t.rolledRemainder(l)
			if err != nil {
				return nil, err
			}
			perEntry += float64(rem)*remCycles + 2 // re-dispatch into the tail loop
		}
		if u > 1 && l.TripCount < 0 {
			perEntry += 2 // dynamic trip test guarding the unrolled body
		}
	}
	perEntry += coldPenalty

	stats.Period = perEntry / float64(trip)
	_ = info
	return &compiled{perEntry: perEntry, stats: stats}, nil
}

// rolledRemainder prices one iteration of the rolled loop (used for the
// tail of a trip count not divisible by the unroll factor). Remainder
// iterations always run unpipelined. The schedule is cached per loop: the
// same rolled tail serves every unroll factor 2..8, so pricing it once
// removes seven redundant unroll+analysis+schedule+regalloc passes per
// loop.
func (t *Timer) rolledRemainder(l *ir.Loop) (float64, error) {
	sh := &t.rem[shardOf(l, 0)]
	sh.mu.Lock()
	v, ok := sh.m[l]
	sh.mu.Unlock()
	if ok {
		mRemHits.Inc()
		return v, nil
	}
	rolled, _, err := transform.Unroll(l, 1)
	if err != nil {
		return 0, err
	}
	g := analysis.Build(rolled, t.Cfg.Mach)
	s := sched.List(g)
	ra := regalloc.Run(s)
	mSchedules.Inc()
	v = float64(s.Period + ra.SpillCycles)
	sh.mu.Lock()
	if _, ok := sh.m[l]; ok {
		v = sh.m[l]
		sh.mu.Unlock()
		mRemHits.Inc()
		mRemRaces.Inc()
		return v, nil
	}
	if sh.m == nil {
		sh.m = map[*ir.Loop]float64{}
	}
	sh.m[l] = v
	sh.mu.Unlock()
	mRemMisses.Inc()
	return v, nil
}

// pipelineMII estimates the modulo-scheduling lower bound for the unrolled
// body: the exact resource bound plus the rolled loop's recurrence ratio
// scaled by the unroll factor (the induction-variable update is excluded —
// unrolling folds it). The recurrence ratio comes from the shared per-loop
// state, so only the first factor pays the rolled-body analysis.
func pipelineMII(rolled *ir.Loop, g *analysis.Graph, u int, ls *loopShared, m *machine.Desc) int {
	num, den := g.ResMII()
	mii := (num + den - 1) / den
	rn, rd := ls.recurrence(rolled, m)
	if rd > 0 && rn > 0 {
		if r := (u*rn + rd - 1) / rd; r > mii {
			mii = r
		}
	}
	if mii < 1 {
		mii = 1
	}
	return mii
}

func selfCarried(op *ir.Op) bool {
	for _, a := range op.Args {
		if a.Op == op && a.Dist == 1 {
			return true
		}
	}
	return false
}

func hasCalls(l *ir.Loop) bool {
	return l.Count(func(o *ir.Op) bool { return o.Code == ir.OpCall }) > 0
}

// contextFactors derives three deterministic uniforms in [0,1) from the
// loop's identity — its hidden execution context.
func contextFactors(l *ir.Loop) (hMem, hIC, hBr float64) {
	var h uint64 = 14695981039346656037
	for _, s := range []string{l.Benchmark, "/", l.Name} {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 1099511628211
		}
	}
	next := func() float64 {
		h += 0x9e3779b97f4a7c15
		z := h
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / float64(1<<53)
	}
	return next(), next(), next()
}

// Measure runs the paper's instrumentation protocol for one (loop, unroll)
// pair: cfg.Runs noisy executions, reported as the median. The rng makes
// noise reproducible; measurements from the same rng sequence are
// independent draws.
func (t *Timer) Measure(l *ir.Loop, u int, rng *rand.Rand) (int64, error) {
	return t.MeasureScaled(l, u, rng, 1)
}

// MeasureScaled measures with the configured noise multiplied by scale —
// some benchmarks are noisier than others (the paper's mesa/mcf/crafty).
func (t *Timer) MeasureScaled(l *ir.Loop, u int, rng *rand.Rand, scale float64) (int64, error) {
	base, err := t.Cycles(l, u)
	if err != nil {
		return 0, err
	}
	mMeasurements.Inc()
	runs := t.Cfg.Runs
	noise := t.Cfg.Noise * scale
	if runs < 1 || (noise == 0 && t.Cfg.BiasNoise == 0) {
		mCycles.Add(base)
		return base, nil
	}
	// The whole measurement session shares one systematic bias; the
	// per-run noise on top of it is mostly removed by the median.
	bias := 1 + t.Cfg.BiasNoise*scale*rng.NormFloat64()
	if bias < 0.5 {
		bias = 0.5
	}
	var stack [64]int64
	samples := stack[:0]
	if runs > len(stack) {
		samples = make([]int64, 0, runs)
	}
	fbase := float64(base)
	for i := 0; i < runs; i++ {
		f := bias * (1 + noise*rng.NormFloat64())
		if f < 0.25 {
			f = 0.25
		}
		samples = append(samples, int64(fbase*f))
	}
	med := selectKth(samples, runs/2)
	mCycles.Add(med)
	return med, nil
}

// selectKth returns the k-th smallest element (0-based) by in-place Hoare
// quickselect — the median of 30 runs needs a selection, not the full
// sort+closure allocation this hot path used to pay 8 factors × 2,500
// loops × every measurement session.
func selectKth(s []int64, k int) int64 {
	lo, hi := 0, len(s)-1
	for lo < hi {
		p := s[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for s[i] < p {
				i++
			}
			for s[j] > p {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return s[k]
		}
	}
	return s[k]
}

// MeasureAll measures a loop at every unroll factor 1..MaxFactor and
// reports whether the loop meets the instrumentation floor at its rolled
// setting.
func (t *Timer) MeasureAll(l *ir.Loop, rng *rand.Rand) (cycles [transform.MaxFactor + 1]int64, usable bool, err error) {
	for u := 1; u <= transform.MaxFactor; u++ {
		c, err := t.Measure(l, u, rng)
		if err != nil {
			return cycles, false, err
		}
		cycles[u] = c
	}
	return cycles, cycles[1] >= t.Cfg.MinCycles, nil
}
