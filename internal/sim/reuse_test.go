package sim

import (
	"testing"

	"metaopt/internal/transform"
)

// Kernels exercising the distinct compile paths: plain vector code, a
// loop-carried reduction (recurrence-bound under SWP), a non-noalias
// stencil, and an early exit (never pipelined).
var reuseKernels = []string{
	daxpy,
	`
kernel reduce lang=fortran {
	double a[];
	double s;
	for i = 0 .. 300 { s = s + a[i]*a[i]; }
}`,
	`
kernel stencil lang=c {
	double a[], b[];
	for i = 1 .. 1000 { b[i] = a[i-1] + a[i] + a[i+1]; }
}`,
	`
kernel search lang=c {
	double a[];
	double s;
	for i = 0 .. n { s = s + a[i]; if (s > 1000.0) break; }
}`,
}

// TestCompileReuseBitIdentical compiles every kernel at every factor twice:
// through the shared per-loop state (the production path, where validation
// and the rolled-body recurrence analysis run once per loop) and with a
// fresh unshared state per call (the old independent-per-factor behaviour).
// Cycle counts and compile stats must match exactly.
func TestCompileReuseBitIdentical(t *testing.T) {
	for _, swpOn := range []bool{false, true} {
		tm := exactTimer(swpOn)
		for _, src := range reuseKernels {
			l := loop(t, src)
			for u := 1; u <= transform.MaxFactor; u++ {
				got, err := tm.compile(l, u)
				if err != nil {
					t.Fatalf("swp=%v %s u=%d: shared: %v", swpOn, l.Name, u, err)
				}
				want, err := tm.compileLoopShared(l, u, &loopShared{})
				if err != nil {
					t.Fatalf("swp=%v %s u=%d: independent: %v", swpOn, l.Name, u, err)
				}
				if got.perEntry != want.perEntry {
					t.Errorf("swp=%v %s u=%d: perEntry %v != independent %v",
						swpOn, l.Name, u, got.perEntry, want.perEntry)
				}
				if got.stats != want.stats {
					t.Errorf("swp=%v %s u=%d: stats %+v != independent %+v",
						swpOn, l.Name, u, got.stats, want.stats)
				}
			}
		}
	}
}
