package sim

import (
	"math/rand"
	"testing"

	"metaopt/internal/ir"
	"metaopt/internal/lang"
	"metaopt/internal/machine"
	"metaopt/internal/transform"
)

func loop(t *testing.T, src string) *ir.Loop {
	t.Helper()
	k, err := lang.ParseKernel(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	l, err := lang.Lower(k)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return l
}

func exactTimer(swpOn bool) *Timer {
	cfg := DefaultConfig()
	cfg.Noise = 0
	cfg.SWP = swpOn
	return NewTimer(cfg)
}

const daxpy = `
kernel daxpy lang=c {
	param double a;
	double x[], y[];
	noalias;
	for i = 0 .. 4096 { y[i] = y[i] + a * x[i]; }
}`

func TestUnrollingHelpsDaxpyNoSWP(t *testing.T) {
	l := loop(t, daxpy)
	tm := exactTimer(false)
	c1, err := tm.Cycles(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	c8, err := tm.Cycles(l, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c8 >= c1 {
		t.Errorf("unrolling daxpy should help without SWP: u1=%d u8=%d", c1, c8)
	}
	// The benefit should be substantial (latency amortized over 8 copies).
	if float64(c1)/float64(c8) < 1.5 {
		t.Errorf("speedup only %.2fx", float64(c1)/float64(c8))
	}
}

func TestSWPReducesGapFromUnrolling(t *testing.T) {
	l := loop(t, daxpy)
	off := exactTimer(false)
	on := exactTimer(true)
	off1, _ := off.Cycles(l, 1)
	on1, err := on.Cycles(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	if on1 >= off1 {
		t.Errorf("pipelining the rolled loop should help: off=%d on=%d", off1, on1)
	}
	// With SWP on, the additional win from unrolling is much smaller than
	// without it.
	on8, _ := on.Cycles(l, 8)
	off8, _ := off.Cycles(l, 8)
	gainOff := float64(off1) / float64(off8)
	gainOn := float64(on1) / float64(on8)
	if gainOn >= gainOff {
		t.Errorf("SWP should shrink unrolling gains: off %.2fx on %.2fx", gainOff, gainOn)
	}
}

func TestEarlyExitPenalizesUnrolling(t *testing.T) {
	src := `
kernel search lang=c {
	double a[];
	double s;
	for i = 0 .. n { s = s + a[i]; if (s > 1000.0) break; }
}`
	l := loop(t, src)
	l.RuntimeTrip = 37 // exits early, often mid-body
	tm := exactTimer(false)
	c1, _ := tm.Cycles(l, 1)
	c8, err := tm.Cycles(l, 8)
	if err != nil {
		t.Fatal(err)
	}
	// With a 37-iteration trip, u=8 wastes up to 7 iterations of work plus
	// extra exit branches; the win must be small or negative relative to
	// what daxpy-style loops get.
	if float64(c1)/float64(c8) > 1.6 {
		t.Errorf("early-exit loop gained too much from unrolling: u1=%d u8=%d", c1, c8)
	}
}

func TestRemainderCostPenalizesNonDivisor(t *testing.T) {
	src := `
kernel shortloop lang=c {
	double x[], y[];
	noalias;
	for i = 0 .. 12 { y[i] = y[i] + x[i]; }
}`
	l := loop(t, src)
	l.Entries = 10000 // entered many times, 12 iterations each
	tm := exactTimer(false)
	c4, err := tm.Cycles(l, 4) // divides 12 exactly
	if err != nil {
		t.Fatal(err)
	}
	c8, err := tm.Cycles(l, 8) // leaves a remainder of 4 every entry
	if err != nil {
		t.Fatal(err)
	}
	if c8 <= c4 {
		t.Errorf("remainder of 4 rolled iterations should hurt: u4=%d u8=%d", c4, c8)
	}
}

func TestSerialRecurrenceGainsLittle(t *testing.T) {
	src := `
kernel serial lang=fortran {
	double a[];
	double s;
	for i = 0 .. 4096 { s = s*0.99 + a[i]; }
}`
	l := loop(t, src)
	tm := exactTimer(false)
	c1, _ := tm.Cycles(l, 1)
	c8, _ := tm.Cycles(l, 8)
	gain := float64(c1) / float64(c8)
	// The chain is strictly serial: gains come only from amortized loads
	// and overhead, far less than a parallel loop would see.
	if gain > 1.8 {
		t.Errorf("serial recurrence gained %.2fx from unrolling", gain)
	}
}

func TestStatsExposeCompilation(t *testing.T) {
	l := loop(t, daxpy)
	tm := exactTimer(true)
	st, err := tm.Stats(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Pipelined || st.II < 1 || st.Stages < 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BodyOps <= 7 {
		t.Errorf("unrolled body ops = %d", st.BodyOps)
	}
	tm2 := exactTimer(false)
	st2, err := tm2.Stats(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Pipelined {
		t.Error("SWP-off stats claim pipelining")
	}
	if st2.Period <= 0 {
		t.Errorf("period = %v", st2.Period)
	}
}

func TestCallsDisablePipelining(t *testing.T) {
	src := `
kernel callk lang=c {
	double a[];
	for i = 0 .. 512 { a[i] = a[i] + 1.0; call f(); }
}`
	l := loop(t, src)
	tm := exactTimer(true)
	st, err := tm.Stats(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pipelined {
		t.Error("loop with calls must not be pipelined")
	}
}

func TestMeasureMedianTracksTruth(t *testing.T) {
	l := loop(t, daxpy)
	cfg := DefaultConfig()
	cfg.SWP = false
	tm := NewTimer(cfg)
	rng := rand.New(rand.NewSource(1))
	exact, err := tm.Cycles(l, 2)
	if err != nil {
		t.Fatal(err)
	}
	med, err := tm.Measure(l, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(med) / float64(exact)
	if ratio < 0.97 || ratio > 1.03 {
		t.Errorf("median measurement off by %.3fx", ratio)
	}
}

func TestMeasureAllAndFloor(t *testing.T) {
	l := loop(t, daxpy) // 4096 iters × ~1-11 cycles: above the 50k floor rolled
	cfg := DefaultConfig()
	cfg.SWP = false
	tm := NewTimer(cfg)
	rng := rand.New(rand.NewSource(7))
	cycles, usable, err := tm.MeasureAll(l, rng)
	if err != nil {
		t.Fatal(err)
	}
	if cycles[1] < cycles[8] {
		t.Errorf("expected unrolling to help: %v", cycles)
	}
	_ = usable // depends on the floor; check the floor logic directly:
	small := loop(t, `
kernel tiny lang=c {
	double a[];
	for i = 0 .. 8 { a[i] = a[i] + 1.0; }
}`)
	_, usableSmall, err := tm.MeasureAll(small, rng)
	if err != nil {
		t.Fatal(err)
	}
	if usableSmall {
		t.Error("an 8-iteration loop must fall below the instrumentation floor")
	}
}

func TestTimerCacheConsistency(t *testing.T) {
	l := loop(t, daxpy)
	tm := exactTimer(false)
	a, _ := tm.Cycles(l, 3)
	b, _ := tm.Cycles(l, 3)
	if a != b {
		t.Errorf("cache inconsistency: %d vs %d", a, b)
	}
}

func TestEmbeddedMachinePrefersSmallerFactors(t *testing.T) {
	// On the narrow machine with a tiny I-cache, aggressive unrolling of a
	// modest loop should pay less than on Itanium 2.
	l := loop(t, daxpy)
	cfgE := &Config{Mach: machine.Embedded(), Runs: 1}
	e := NewTimer(cfgE)
	i2 := exactTimer(false)
	e1, err := e.Cycles(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	e8, err := e.Cycles(l, 8)
	if err != nil {
		t.Fatal(err)
	}
	i1, _ := i2.Cycles(l, 1)
	i8, _ := i2.Cycles(l, 8)
	gainE := float64(e1) / float64(e8)
	gainI := float64(i1) / float64(i8)
	if gainE >= gainI {
		t.Errorf("embedded gain %.2fx should trail itanium gain %.2fx", gainE, gainI)
	}
}

func TestAllFactorsAllKernels(t *testing.T) {
	srcs := []string{
		daxpy,
		`kernel dot lang=fortran { double a[], b[]; double s; for i = 0 .. 512 { s = s + a[i]*b[i]; } }`,
		`kernel stencil lang=c { double a[], b[]; noalias; for i = 1 .. 511 { b[i] = a[i-1] + a[i] + a[i+1]; } }`,
		`kernel gather lang=c { double a[], b[]; int idx[]; for i = 0 .. 200 { a[i] = b[idx[i]]; } }`,
		`kernel pred lang=c { double a[], b[]; for i = 0 .. 300 { if (a[i] > 0.0) { b[i] = a[i]; } } }`,
	}
	for _, swpOn := range []bool{false, true} {
		tm := exactTimer(swpOn)
		for _, src := range srcs {
			l := loop(t, src)
			for u := 1; u <= transform.MaxFactor; u++ {
				c, err := tm.Cycles(l, u)
				if err != nil {
					t.Fatalf("%s u=%d swp=%v: %v", l.Name, u, swpOn, err)
				}
				if c <= 0 {
					t.Errorf("%s u=%d swp=%v: %d cycles", l.Name, u, swpOn, c)
				}
			}
		}
	}
}

func TestBiasNoiseSurvivesMedian(t *testing.T) {
	l := loop(t, daxpy)
	cfg := DefaultConfig()
	cfg.Noise = 0
	cfg.BiasNoise = 0.05
	tm := NewTimer(cfg)
	exact, err := tm.Cycles(l, 2)
	if err != nil {
		t.Fatal(err)
	}
	// With per-run noise at zero, the measurement equals base×bias exactly;
	// across many sessions the spread must reflect the bias, which a median
	// cannot remove.
	rng := rand.New(rand.NewSource(3))
	differs := 0
	for trial := 0; trial < 20; trial++ {
		m, err := tm.Measure(l, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		if m != exact {
			differs++
		}
	}
	if differs < 15 {
		t.Errorf("systematic bias visible in only %d/20 sessions", differs)
	}
}

func TestContextFactorsDeterministicPerLoop(t *testing.T) {
	a := loop(t, daxpy)
	b := loop(t, daxpy)
	b.Benchmark = "other"
	cfg := DefaultConfig()
	cfg.Noise = 0
	cfg.BiasNoise = 0
	tm := NewTimer(cfg)
	ca1, err := tm.Cycles(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	ca2, err := NewTimer(cfg).Cycles(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ca1 != ca2 {
		t.Error("hidden context not deterministic for the same loop")
	}
	cb, err := tm.Cycles(b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cb == ca1 {
		t.Error("different benchmark identity should give different hidden context")
	}
}
