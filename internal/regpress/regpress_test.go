package regpress

import (
	"testing"

	"metaopt/internal/analysis"
	"metaopt/internal/lang"
	"metaopt/internal/machine"
	"metaopt/internal/sched"
)

func pressureOf(t *testing.T, src string, m *machine.Desc) Pressure {
	t.Helper()
	k, err := lang.ParseKernel(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	l, err := lang.Lower(k)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return Analyze(sched.List(analysis.Build(l, m)))
}

const daxpy = `
kernel daxpy lang=c {
	param double a;
	double x[], y[];
	noalias;
	for i = 0 .. 4096 { y[i] = y[i] + a * x[i]; }
}`

func TestDaxpyPressure(t *testing.T) {
	p := pressureOf(t, daxpy, machine.Itanium2())
	if p.MaxLiveFP < 2 {
		t.Errorf("fp pressure = %d, want >= 2 (param a + pipeline values)", p.MaxLiveFP)
	}
	if p.MaxLiveInt < 1 {
		t.Errorf("int pressure = %d, want >= 1 (induction variable)", p.MaxLiveInt)
	}
	if p.SpillCycles != 0 {
		t.Errorf("daxpy should not spill on Itanium 2, got %d cycles", p.SpillCycles)
	}
	if p.LiveRangeSum <= 0 {
		t.Errorf("live range sum = %d", p.LiveRangeSum)
	}
}

func TestWiderLoopMorePressure(t *testing.T) {
	wide := `
kernel wide lang=fortran {
	double a[], b[], c[], d[], e[], f[], o[];
	for i = 0 .. 100 { o[i] = a[i]*b[i] + c[i]*d[i] + e[i]*f[i]; }
}`
	pd := pressureOf(t, daxpy, machine.Itanium2())
	pw := pressureOf(t, wide, machine.Itanium2())
	if pw.MaxLiveFP <= pd.MaxLiveFP {
		t.Errorf("wide fp pressure %d <= daxpy %d", pw.MaxLiveFP, pd.MaxLiveFP)
	}
}

func TestSmallMachineSpills(t *testing.T) {
	// A loop with many simultaneously-live FP values on a machine with a
	// tiny FP register file must spill.
	src := `
kernel fat lang=fortran {
	double a[], b[], c[], d[], e[], f[], g[], h[], o[];
	for i = 0 .. 100 {
		o[i] = a[i]*b[i] + c[i]*d[i] + e[i]*f[i] + g[i]*h[i]
		     + a[i+1]*b[i+1] + c[i+1]*d[i+1] + e[i+1]*f[i+1] + g[i+1]*h[i+1];
	}
}`
	m := machine.Embedded()
	m.FPRegs = 4
	p := pressureOf(t, src, m)
	if p.SpillsFP == 0 {
		t.Errorf("expected FP spills, pressure = %+v", p)
	}
	if p.SpillCycles != (p.SpillsFP+p.SpillsInt)*m.SpillCost {
		t.Errorf("spill cycles inconsistent: %+v", p)
	}
}

func TestCarriedValueLiveToBodyEnd(t *testing.T) {
	// A reduction keeps its accumulator live across the entire body.
	red := `
kernel red lang=fortran {
	double a[];
	double s;
	for i = 0 .. 100 { s = s + a[i]; }
}`
	p := pressureOf(t, red, machine.Itanium2())
	if p.MaxLiveFP < 1 {
		t.Errorf("reduction fp pressure = %d", p.MaxLiveFP)
	}
}
