// Package regpress estimates the register pressure of a scheduled loop body
// and converts excess pressure into a spill-cycle penalty. Growing live
// ranges — and the spills they eventually force — are one of the principal
// costs of aggressive unrolling (paper Section 3).
package regpress

import (
	"metaopt/internal/analysis"
	"metaopt/internal/ir"
	"metaopt/internal/sched"
)

// Pressure summarizes the register demand of one scheduled body.
type Pressure struct {
	MaxLiveInt   int // peak simultaneously-live integer values
	MaxLiveFP    int // peak simultaneously-live floating-point values
	SpillsInt    int // values beyond the integer register file
	SpillsFP     int
	SpillCycles  int // estimated extra cycles per body execution
	LiveRangeSum int // total live cycles across all values
}

// Analyze computes register pressure for a scheduled body. A value is live
// from its definition's issue cycle to its last same-iteration use; values
// consumed by a later iteration stay live to the end of the body. Loop
// invariants occupy a register for the whole body.
func Analyze(s *sched.Schedule) Pressure {
	g := s.Graph
	length := s.Length
	if length < 1 {
		length = 1
	}
	// Sweep events: +1 at live start, -1 after live end, per register file.
	deltaInt := make([]int, length+2)
	deltaFP := make([]int, length+2)
	var p Pressure

	addRange := func(from, to int, fp bool) {
		if from < 0 {
			from = 0
		}
		if to > length {
			to = length
		}
		if to < from {
			to = from
		}
		p.LiveRangeSum += to - from + 1
		if fp {
			deltaFP[from]++
			deltaFP[to+1]--
		} else {
			deltaInt[from]++
			deltaInt[to+1]--
		}
	}

	// Loop-invariant inputs are live throughout.
	for _, par := range g.Loop.Params {
		if par.Code == ir.OpParam {
			addRange(0, length, par.FP)
		}
	}

	for i, op := range g.Ops {
		if !op.Code.HasResult() {
			continue
		}
		def := s.Cycle[i]
		last := def
		carried := false
		used := false
		for _, e := range g.Out[i] {
			if e.Kind != analysis.EdgeData {
				continue
			}
			used = true
			if e.Dist > 0 {
				carried = true
				continue
			}
			if c := s.Cycle[e.To]; c > last {
				last = c
			}
		}
		if carried {
			last = length
		}
		if !used {
			// Dead value (e.g. a compare feeding only the branch is still
			// used; a truly dead op holds its register one cycle).
			last = def
		}
		addRange(def, last, op.FP)
	}

	p.MaxLiveInt = peak(deltaInt)
	p.MaxLiveFP = peak(deltaFP)
	m := g.Mach
	if p.MaxLiveInt > m.IntRegs {
		p.SpillsInt = p.MaxLiveInt - m.IntRegs
	}
	if p.MaxLiveFP > m.FPRegs {
		p.SpillsFP = p.MaxLiveFP - m.FPRegs
	}
	p.SpillCycles = (p.SpillsInt + p.SpillsFP) * m.SpillCost
	return p
}

func peak(delta []int) int {
	live, best := 0, 0
	for _, d := range delta {
		live += d
		if live > best {
			best = live
		}
	}
	return best
}
