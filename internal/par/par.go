// Package par is the shared bounded worker pool behind every parallel
// stage of the evaluation pipeline: label collection, leave-one-out folds,
// greedy feature-selection scoring, and the per-benchmark speedup folds.
// Work is indexed, results are written by index, and errors are reported in
// index order, so a parallel pass is bit-identical to a serial one — the
// pool changes wall-clock time, never output.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"metaopt/internal/faults"
	"metaopt/internal/obs"
)

// Pool telemetry: every stage (one ForEachWorker call) records how many
// items it processed over how many workers and how busy each worker was;
// per-item latency feeds a shared histogram. All of it is counter/timestamp
// work outside the items themselves, so output stays bit-identical.
var (
	mItems     = obs.C("par.items_processed")
	mStages    = obs.C("par.stages")
	mPanics    = obs.C("par.panics")
	mPoolWidth = obs.G("par.pool_width")
	hItemNS    = obs.H("par.item_ns", obs.ExpBounds(1_000, 4, 16)) // 1µs .. ~4.3s
)

// limit overrides the pool width when positive; 0 means GOMAXPROCS.
var limit atomic.Int32

// Limit returns the configured pool width: GOMAXPROCS by default, or the
// last SetLimit value.
func Limit() int {
	if n := limit.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetLimit overrides the pool width (1 forces every parallel stage to run
// serially) and returns a function restoring the previous setting. It is
// meant for tests, benchmarks, and command-line flags, not for concurrent
// use while a parallel stage is in flight.
func SetLimit(n int) (restore func()) {
	prev := limit.Swap(int32(n))
	return func() { limit.Store(prev) }
}

// Workers returns the number of workers a stage with n items will use.
func Workers(n int) int {
	w := Limit()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(i) for every i in [0, n) across the pool. fn must write
// its result into a caller-owned slot at index i; ForEach returns the error
// of the lowest failing index (the same error a serial loop would hit
// first).
func ForEach(n int, fn func(i int) error) error {
	return ForEachWorker(n, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with a worker id in [0, Workers(n)) passed to
// fn, so callers can maintain per-worker scratch buffers (fold datasets,
// projection slabs) without locking.
//
// A panic in fn fails only that item: the worker recovers it into a
// *faults.PanicError carrying the panic value and stack, counts it on
// "par.panics", and keeps draining. The pool itself never dies, and error
// reporting stays index-ordered, so a panicking item surfaces exactly like
// an erroring one.
func ForEachWorker(n int, fn func(worker, i int) error) error {
	w := Workers(n)
	st := beginStage(n, w)
	if w <= 1 {
		for i := 0; i < n; i++ {
			t0 := time.Now()
			err := safeCall(fn, 0, i)
			st.item(0, time.Since(t0))
			if err != nil {
				st.end()
				return err
			}
		}
		st.end()
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				t0 := time.Now()
				errs[i] = safeCall(fn, wk, i)
				st.item(wk, time.Since(t0))
			}
		}(wk)
	}
	wg.Wait()
	st.end()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// safeCall runs one item with panic containment: a panic (real or injected
// at the "par.item" fault site) becomes a *faults.PanicError instead of
// tearing down the pool.
func safeCall(fn func(worker, i int) error, wk, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			mPanics.Inc()
			err = faults.NewPanicError(r)
		}
	}()
	if err := faults.Check("par.item"); err != nil {
		return err
	}
	return fn(wk, i)
}

// stage accumulates telemetry for one ForEachWorker call. Each worker owns
// its busy slot, so no synchronization is needed beyond the pool's own
// WaitGroup; the shared histogram and counters are atomic.
type stage struct {
	name    string
	items   int
	workers int
	start   time.Time
	busy    []time.Duration
	on      bool
}

func beginStage(n, w int) *stage {
	if !obs.Enabled() {
		return &stage{}
	}
	mStages.Inc()
	mPoolWidth.Set(int64(w))
	return &stage{
		name:    obs.CurrentName(),
		items:   n,
		workers: w,
		start:   time.Now(),
		busy:    make([]time.Duration, w),
		on:      true,
	}
}

func (s *stage) item(wk int, d time.Duration) {
	if !s.on {
		return
	}
	s.busy[wk] += d
	mItems.Inc()
	hItemNS.Observe(d.Nanoseconds())
}

func (s *stage) end() {
	if !s.on {
		return
	}
	var total time.Duration
	for _, b := range s.busy {
		total += b
	}
	obs.RecordStage(obs.StageStats{
		Name:      s.name,
		Items:     s.items,
		Workers:   s.workers,
		Wall:      time.Since(s.start),
		Busy:      s.busy,
		BusyTotal: total,
	})
}
