package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, w := range []int{1, 2, 7} {
		restore := SetLimit(w)
		got := make([]int, 100)
		if err := ForEach(len(got), func(i int) error {
			got[i] = i + 1
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i+1 {
				t.Fatalf("limit %d: index %d not visited (got %d)", w, i, v)
			}
		}
		restore()
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	restore := SetLimit(4)
	defer restore()
	wantErr := errors.New("boom-3")
	err := ForEach(10, func(i int) error {
		if i == 3 || i == 7 {
			return fmt.Errorf("boom-%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != wantErr.Error() {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func TestForEachWorkerIDsAreBounded(t *testing.T) {
	restore := SetLimit(3)
	defer restore()
	n := 50
	var bad atomic.Int32
	if err := ForEachWorker(n, func(w, i int) error {
		if w < 0 || w >= Workers(n) {
			bad.Add(1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if bad.Load() != 0 {
		t.Fatalf("%d calls saw an out-of-range worker id", bad.Load())
	}
}

func TestWorkersClamps(t *testing.T) {
	restore := SetLimit(8)
	defer restore()
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d, want 3", got)
	}
	if got := Workers(0); got != 1 {
		t.Fatalf("Workers(0) = %d, want 1", got)
	}
	restore()
	restore2 := SetLimit(1)
	defer restore2()
	if got := Workers(100); got != 1 {
		t.Fatalf("Workers(100) at limit 1 = %d, want 1", got)
	}
}
