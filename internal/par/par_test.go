package par

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"metaopt/internal/faults"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, w := range []int{1, 2, 7} {
		restore := SetLimit(w)
		got := make([]int, 100)
		if err := ForEach(len(got), func(i int) error {
			got[i] = i + 1
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i+1 {
				t.Fatalf("limit %d: index %d not visited (got %d)", w, i, v)
			}
		}
		restore()
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	restore := SetLimit(4)
	defer restore()
	wantErr := errors.New("boom-3")
	err := ForEach(10, func(i int) error {
		if i == 3 || i == 7 {
			return fmt.Errorf("boom-%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != wantErr.Error() {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func TestForEachWorkerIDsAreBounded(t *testing.T) {
	restore := SetLimit(3)
	defer restore()
	n := 50
	var bad atomic.Int32
	if err := ForEachWorker(n, func(w, i int) error {
		if w < 0 || w >= Workers(n) {
			bad.Add(1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if bad.Load() != 0 {
		t.Fatalf("%d calls saw an out-of-range worker id", bad.Load())
	}
}

// TestForEachPanicIsolation: a panicking item fails only itself, not the
// pool. The stage reports the panic as an indexed error — serial mode stops
// there exactly like a serial loop, parallel mode still drains the rest —
// and the pool survives for the next stage.
func TestForEachPanicIsolation(t *testing.T) {
	for _, tc := range []struct {
		limit       int
		wantVisited int32
	}{
		{limit: 1, wantVisited: 5},  // serial: stops at the failing index
		{limit: 4, wantVisited: 19}, // parallel: workers drain everything
	} {
		restore := SetLimit(tc.limit)
		panicsBefore := mPanics.Value()
		var visited atomic.Int32
		err := ForEach(20, func(i int) error {
			if i == 5 {
				panic(fmt.Sprintf("item %d exploded", i))
			}
			visited.Add(1)
			return nil
		})
		w := tc.limit
		var pe *faults.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("limit %d: err = %v, want *faults.PanicError", w, err)
		}
		if !strings.Contains(pe.Error(), "item 5 exploded") || !strings.Contains(pe.Error(), "goroutine") {
			t.Errorf("limit %d: PanicError missing value or stack:\n%s", w, pe.Error())
		}
		if got := visited.Load(); got != tc.wantVisited {
			t.Errorf("limit %d: %d healthy items ran, want %d", w, got, tc.wantVisited)
		}
		if mPanics.Value() != panicsBefore+1 {
			t.Errorf("limit %d: par.panics moved %d, want 1", w, mPanics.Value()-panicsBefore)
		}
		// The pool is still fully usable after a panic.
		if err := ForEach(8, func(int) error { return nil }); err != nil {
			t.Fatalf("limit %d: pool unusable after panic: %v", w, err)
		}
		restore()
	}
}

// TestForEachPanicLowestIndexWins: panics report in index order exactly
// like errors, preserving the bit-identical-to-serial contract.
func TestForEachPanicLowestIndexWins(t *testing.T) {
	restore := SetLimit(4)
	defer restore()
	err := ForEach(10, func(i int) error {
		if i == 2 {
			panic("first")
		}
		if i == 8 {
			panic("second")
		}
		return nil
	})
	var pe *faults.PanicError
	if !errors.As(err, &pe) || pe.Value != "first" {
		t.Fatalf("err = %v, want panic %q from index 2", err, "first")
	}
}

// TestForEachInjectedFault: the "par.item" fault site feeds both error and
// panic kinds through the same containment path.
func TestForEachInjectedFault(t *testing.T) {
	restore := SetLimit(2)
	defer restore()
	faults.MustInstall(faults.Spec{Site: "par.item", Kind: faults.KindError, Nth: 3})
	defer faults.Reset()
	err := ForEach(6, func(int) error { return nil })
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	faults.Reset()
	faults.MustInstall(faults.Spec{Site: "par.item", Kind: faults.KindPanic, Nth: 2})
	err = ForEach(6, func(int) error { return nil })
	var pe *faults.PanicError
	if !errors.As(err, &pe) || !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want injected PanicError", err)
	}
}

func TestWorkersClamps(t *testing.T) {
	restore := SetLimit(8)
	defer restore()
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d, want 3", got)
	}
	if got := Workers(0); got != 1 {
		t.Fatalf("Workers(0) = %d, want 1", got)
	}
	restore()
	restore2 := SetLimit(1)
	defer restore2()
	if got := Workers(100); got != 1 {
		t.Fatalf("Workers(100) at limit 1 = %d, want 1", got)
	}
}
