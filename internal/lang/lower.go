package lang

import (
	"fmt"
	"strconv"

	"metaopt/internal/ir"
)

// Lower translates a parsed kernel into the loop IR. Control flow inside the
// body is if-converted (predicated operations plus select merges), matching
// how an Itanium compiler presents an innermost loop to its scheduler.
// Scalars assigned in the body become loop-carried values: a read before the
// iteration's definition refers to the previous iteration's final value.
func Lower(k *Kernel) (*ir.Loop, error) {
	lw := &lowerer{
		kernel:  k,
		loop:    ir.NewLoop(k.Name),
		scalars: map[string]*scalarInfo{},
		arrays:  map[string]arrayInfo{},
	}
	if err := lw.applyAttrs(); err != nil {
		return nil, err
	}
	if err := lw.declare(); err != nil {
		return nil, err
	}
	if err := lw.lowerLoop(); err != nil {
		return nil, err
	}
	if err := lw.loop.Validate(); err != nil {
		return nil, fmt.Errorf("lang: internal error lowering %s: %w", k.Name, err)
	}
	return lw.loop, nil
}

// LowerFile parses src and lowers every kernel in it.
func LowerFile(src string) ([]*ir.Loop, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	loops := make([]*ir.Loop, 0, len(f.Kernels))
	for _, k := range f.Kernels {
		l, err := Lower(k)
		if err != nil {
			return nil, err
		}
		loops = append(loops, l)
	}
	return loops, nil
}

type scalarInfo struct {
	typ         Type
	param       bool
	assigned    bool   // assigned somewhere in the loop body
	def         *ir.Op // current definition this iteration (nil if none yet)
	paramOp     *ir.Op // lazily created OpParam for live-in reads
	placeholder *ir.Op // stand-in for "previous iteration's final value"
}

type arrayInfo struct {
	elem ir.ElemKind
}

type lowerer struct {
	kernel  *Kernel
	loop    *ir.Loop
	scalars map[string]*scalarInfo
	arrays  map[string]arrayInfo
	consts  map[string]*ir.Op

	nextPred int
	curPred  int    // active predicate id; 0 = unpredicated
	predCmp  *ir.Op // compare op guarding the current if body
	innerIV  string // induction variable of the innermost loop

	// loadCache maps memory locations to an earlier unpredicated load of
	// the same location, for redundant load elimination. Stores and calls
	// invalidate it.
	loadCache map[string]*ir.Op
}

func loadKey(m *ir.MemRef) string {
	return fmt.Sprintf("%s|%d|%d", m.Array, m.Stride, m.Offset)
}

// invalidateLoads drops cached loads a store to array could alias. Calls
// and may-alias stores clobber everything.
func (lw *lowerer) invalidateLoads(array string) {
	if lw.loadCache == nil {
		return
	}
	if array == "" || !lw.loop.NoAlias {
		lw.loadCache = map[string]*ir.Op{}
		return
	}
	for k := range lw.loadCache {
		if len(k) >= len(array) && k[:len(array)] == array && k[len(array)] == '|' {
			delete(lw.loadCache, k)
		}
	}
}

func (lw *lowerer) applyAttrs() error {
	l := lw.loop
	k := lw.kernel
	l.NoAlias = k.NoAlias
	for key, val := range k.Attrs {
		switch key {
		case "lang":
			switch val {
			case "c":
				l.Lang = ir.LangC
			case "fortran":
				l.Lang = ir.LangFortran
				l.NoAlias = true
			case "f90":
				l.Lang = ir.LangFortran90
				l.NoAlias = true
			default:
				return errf(k.Pos, "kernel %s: unknown lang %q", k.Name, val)
			}
		case "nest":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return errf(k.Pos, "kernel %s: bad nest %q", k.Name, val)
			}
			l.NestLevel = n
		case "entries":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return errf(k.Pos, "kernel %s: bad entries %q", k.Name, val)
			}
			l.Entries = n
		case "runtime_trip":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return errf(k.Pos, "kernel %s: bad runtime_trip %q", k.Name, val)
			}
			l.RuntimeTrip = n
		default:
			return errf(k.Pos, "kernel %s: unknown attribute %q", k.Name, key)
		}
	}
	return nil
}

func (lw *lowerer) declare() error {
	for _, d := range lw.kernel.Decls {
		for _, dn := range d.Names {
			if _, dup := lw.scalars[dn.Name]; dup {
				return errf(d.Pos, "redeclaration of %q", dn.Name)
			}
			if _, dup := lw.arrays[dn.Name]; dup {
				return errf(d.Pos, "redeclaration of %q", dn.Name)
			}
			if dn.IsArray {
				lw.arrays[dn.Name] = arrayInfo{elem: ir.ElemKind{Float: d.Type.IsFloat(), Bytes: d.Type.Bytes()}}
			} else {
				lw.scalars[dn.Name] = &scalarInfo{typ: d.Type, param: d.Param}
			}
		}
	}
	return nil
}

func (lw *lowerer) lowerLoop() error {
	fl := lw.kernel.Loop
	l := lw.loop

	// Descend through perfect nesting: an outer loop whose whole body is
	// another loop multiplies the inner loop's entry count and deepens its
	// nest level. Outer induction variables are loop-invariant within the
	// innermost body, so they become readable parameters.
	depth := 0
	for {
		inner, ok := singleFor(fl.Body)
		if !ok {
			break
		}
		if err := lw.checkIVFresh(fl); err != nil {
			return err
		}
		outerTrip := 50 // assumed entry multiplier for a symbolic outer bound
		if hi, isLit := fl.Hi.(*NumLit); isLit {
			if !hi.IsInt || hi.IntVal-fl.Lo <= 0 {
				return errf(hi.Pos, "outer loop bound must exceed its lower bound")
			}
			outerTrip = hi.IntVal - fl.Lo
		}
		l.Entries *= int64(outerTrip)
		lw.scalars[fl.IV] = &scalarInfo{typ: TypeLong, param: true}
		depth++
		fl = inner
	}
	// A loop mixed among other statements is not a perfect nest.
	for _, s := range fl.Body {
		if _, isFor := s.(*ForLoop); isFor {
			return errf(fl.Pos, "a nested loop must be the only statement of its parent loop")
		}
	}
	if depth > 0 && depth+1 > l.NestLevel {
		l.NestLevel = depth + 1
	}

	if err := lw.checkIVFresh(fl); err != nil {
		return err
	}
	lw.innerIV = fl.IV
	// The induction variable behaves like an integer scalar assigned at the
	// end of every iteration by the increment op.
	lw.scalars[fl.IV] = &scalarInfo{typ: TypeLong, assigned: true}

	switch hi := fl.Hi.(type) {
	case *NumLit:
		if !hi.IsInt {
			return errf(hi.Pos, "loop bound must be an integer")
		}
		trip := hi.IntVal - fl.Lo
		if trip <= 0 {
			return errf(hi.Pos, "loop executes %d iterations", trip)
		}
		l.TripCount = trip
		if l.RuntimeTrip <= 1 {
			l.RuntimeTrip = trip
		}
	case *Ident:
		l.TripCount = -1
		if l.RuntimeTrip <= 1 {
			l.RuntimeTrip = 1000
		}
	default:
		return errf(fl.Pos, "bad loop bound")
	}

	// Record which scalars are assigned in the body so reads know whether
	// they are live-in parameters or loop-carried values.
	markAssigned(fl.Body, lw.scalars)

	for _, s := range fl.Body {
		if err := lw.lowerStmt(s); err != nil {
			return err
		}
	}

	// Induction variable update (iv = iv + 1), trip test, back edge.
	ivAdd := l.NewOp(ir.OpAdd, ir.Use(lw.constOp("1")))
	ivAdd.Name = fl.IV
	ivAdd.Args = append(ivAdd.Args, ir.Carried(ivAdd, 1))
	ivAdd.FP = false
	lw.defineScalar(fl.IV, ivAdd)

	var bound ir.ArgRef
	if id, ok := fl.Hi.(*Ident); ok {
		bound = ir.Use(lw.paramFor(id.Name, TypeLong))
	} else {
		bound = ir.Use(lw.constOp(fmt.Sprint(fl.Hi.(*NumLit).IntVal)))
	}
	cmp := l.NewOp(ir.OpCmp, ir.Use(ivAdd), bound)
	cmp.FP = false
	l.NewOp(ir.OpBr, ir.Use(cmp))

	return lw.resolveCarried()
}

// markAssigned records every scalar assigned anywhere in the statement list.
func markAssigned(stmts []Stmt, scalars map[string]*scalarInfo) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *AssignStmt:
			if id, ok := st.Target.(*Ident); ok {
				if info, ok := scalars[id.Name]; ok {
					info.assigned = true
				}
			}
		case *IfStmt:
			markAssigned(st.Then, scalars)
			markAssigned(st.Else, scalars)
		}
	}
}

// singleFor reports whether the statement list is exactly one nested loop.
func singleFor(stmts []Stmt) (*ForLoop, bool) {
	if len(stmts) != 1 {
		return nil, false
	}
	fl, ok := stmts[0].(*ForLoop)
	return fl, ok
}

// checkIVFresh rejects induction variables that shadow declared names.
func (lw *lowerer) checkIVFresh(fl *ForLoop) error {
	if _, clash := lw.scalars[fl.IV]; clash {
		return errf(fl.Pos, "induction variable %q shadows another name", fl.IV)
	}
	if _, clash := lw.arrays[fl.IV]; clash {
		return errf(fl.Pos, "induction variable %q shadows a declared array", fl.IV)
	}
	return nil
}

func (lw *lowerer) lowerStmt(s Stmt) error {
	switch st := s.(type) {
	case *AssignStmt:
		return lw.lowerAssign(st)
	case *IfStmt:
		return lw.lowerIf(st)
	case *BreakIfStmt:
		cond, err := lw.lowerCond(st.Cond)
		if err != nil {
			return err
		}
		lw.loop.NewOp(ir.OpCondBr, ir.Use(cond))
		lw.loop.EarlyExit = true
		return nil
	case *CallStmt:
		call := lw.loop.NewOp(ir.OpCall)
		call.Name = st.Name
		lw.markPred(call)
		lw.invalidateLoads("")
		return nil
	}
	return fmt.Errorf("lang: unknown statement %T", s)
}

func (lw *lowerer) lowerAssign(st *AssignStmt) error {
	val, err := lw.lowerExpr(st.Value)
	if err != nil {
		return err
	}
	switch target := st.Target.(type) {
	case *Ident:
		info, ok := lw.scalars[target.Name]
		if !ok {
			return errf(target.Pos, "assignment to undeclared scalar %q", target.Name)
		}
		if info.param {
			return errf(target.Pos, "assignment to param %q", target.Name)
		}
		val = lw.coerce(val, info.typ.IsFloat())
		if lw.curPred != 0 {
			// Conditional assignment: select-merge with the incoming value.
			old, err := lw.readScalar(target.Name, target.Pos)
			if err != nil {
				return err
			}
			sel := lw.loop.NewOp(ir.OpSel, ir.Use(lw.predCmp), val, old)
			sel.Name = target.Name
			lw.markPred(sel)
			sel.FP = info.typ.IsFloat()
			lw.defineScalar(target.Name, sel)
			return nil
		}
		lw.defineScalar(target.Name, lw.materialize(val, info.typ.IsFloat()))
		return nil
	case *IndexExpr:
		arr, ok := lw.arrays[target.Array]
		if !ok {
			return errf(target.Pos, "store to undeclared array %q", target.Array)
		}
		mem, deps, err := lw.lowerIndex(target)
		if err != nil {
			return err
		}
		val = lw.coerce(val, arr.elem.Float)
		store := lw.loop.NewOp(ir.OpStore, append(deps, val)...)
		store.Mem = mem
		lw.markPred(store)
		lw.invalidateLoads(target.Array)
		return nil
	}
	return errf(st.Pos, "bad assignment target")
}

func (lw *lowerer) lowerIf(st *IfStmt) error {
	if lw.curPred != 0 {
		return errf(st.Pos, "nested if statements are not supported")
	}
	cond, err := lw.lowerCond(st.Cond)
	if err != nil {
		return err
	}
	lw.nextPred++
	lw.curPred = lw.nextPred
	lw.predCmp = cond
	defer func() { lw.curPred = 0; lw.predCmp = nil }()
	for _, s := range st.Then {
		if err := lw.lowerStmt(s); err != nil {
			return err
		}
	}
	for _, s := range st.Else {
		if err := lw.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

// lowerCond lowers a condition to a compare op producing a predicate.
func (lw *lowerer) lowerCond(e Expr) (*ir.Op, error) {
	be, ok := e.(*BinaryExpr)
	if !ok || !be.Op.IsCompare() {
		return nil, errf(e.ExprPos(), "condition must be a comparison")
	}
	x, err := lw.lowerExpr(be.X)
	if err != nil {
		return nil, err
	}
	y, err := lw.lowerExpr(be.Y)
	if err != nil {
		return nil, err
	}
	code := ir.OpCmp
	if lw.refIsFloat(x) || lw.refIsFloat(y) {
		code = ir.OpFCmp
		x = lw.coerce(x, true)
		y = lw.coerce(y, true)
	}
	cmp := lw.loop.NewOp(code, x, y)
	lw.markPred(cmp)
	cmp.FP = false
	return cmp, nil
}

func (lw *lowerer) markPred(op *ir.Op) {
	if lw.curPred == 0 || op == lw.predCmp {
		return
	}
	op.Predicated = true
	op.PredID = lw.curPred
	// The predicate is a real data dependence: the op cannot issue before
	// the guarding compare. Prepend it so positional argument conventions
	// (e.g. "a store's value is its last argument") keep holding.
	for _, a := range op.Args {
		if a.Op == lw.predCmp && a.Dist == 0 {
			return
		}
	}
	op.Args = append([]ir.ArgRef{ir.Use(lw.predCmp)}, op.Args...)
}

// lowerExpr lowers a value expression and returns a reference to its value.
// The reference may be loop-carried (Dist > 0) for recurrence reads.
func (lw *lowerer) lowerExpr(e Expr) (ir.ArgRef, error) {
	switch ex := e.(type) {
	case *NumLit:
		return ir.Use(lw.constOp(ex.Text)), nil
	case *Ident:
		ref, err := lw.readScalar(ex.Name, ex.Pos)
		if err != nil {
			return ir.ArgRef{}, err
		}
		return ref, nil
	case *IndexExpr:
		arr, ok := lw.arrays[ex.Array]
		if !ok {
			return ir.ArgRef{}, errf(ex.Pos, "use of undeclared array %q", ex.Array)
		}
		mem, deps, err := lw.lowerIndex(ex)
		if err != nil {
			return ir.ArgRef{}, err
		}
		// Redundant load elimination: reuse an earlier load of the same
		// location when no intervening store or call could have changed it.
		if !mem.Indirect {
			if prev, ok := lw.loadCache[loadKey(mem)]; ok {
				return ir.Use(prev), nil
			}
		}
		ld := lw.loop.NewOp(ir.OpLoad, deps...)
		ld.Mem = mem
		lw.markPred(ld)
		ld.FP = arr.elem.Float
		if !mem.Indirect && lw.curPred == 0 {
			if lw.loadCache == nil {
				lw.loadCache = map[string]*ir.Op{}
			}
			lw.loadCache[loadKey(mem)] = ld
		}
		return ir.Use(ld), nil
	case *UnaryExpr:
		x, err := lw.lowerExpr(ex.X)
		if err != nil {
			return ir.ArgRef{}, err
		}
		code := ir.OpSub
		if lw.refIsFloat(x) {
			code = ir.OpFSub
		}
		neg := lw.loop.NewOp(code, ir.Use(lw.constOp("0")), x)
		lw.markPred(neg)
		neg.FP = lw.refIsFloat(x)
		return ir.Use(neg), nil
	case *BinaryExpr:
		if ex.Op.IsCompare() {
			return ir.ArgRef{}, errf(ex.Pos, "comparison outside condition context")
		}
		return lw.lowerBinary(ex)
	}
	return ir.ArgRef{}, errf(e.ExprPos(), "unsupported expression")
}

func (lw *lowerer) lowerBinary(ex *BinaryExpr) (ir.ArgRef, error) {
	x, err := lw.lowerExpr(ex.X)
	if err != nil {
		return ir.ArgRef{}, err
	}
	y, err := lw.lowerExpr(ex.Y)
	if err != nil {
		return ir.ArgRef{}, err
	}
	isF := lw.refIsFloat(x) || lw.refIsFloat(y)
	if isF {
		x = lw.coerce(x, true)
		y = lw.coerce(y, true)
	}
	var code ir.Opcode
	switch ex.Op {
	case BinAdd:
		code = ir.OpAdd
		if isF {
			code = ir.OpFAdd
		}
	case BinSub:
		code = ir.OpSub
		if isF {
			code = ir.OpFSub
		}
	case BinMul:
		code = ir.OpMul
		if isF {
			code = ir.OpFMul
		}
	case BinDiv:
		code = ir.OpDiv
		if isF {
			code = ir.OpFDiv
		}
	default:
		return ir.ArgRef{}, errf(ex.Pos, "bad binary operator")
	}

	// Fuse a*b+c (either order) into an FMA when the multiply has no other
	// uses, as the Itanium back end would.
	if code == ir.OpFAdd {
		if fma := lw.tryFuseFMA(x, y); fma != nil {
			return ir.Use(fma), nil
		}
	}

	op := lw.loop.NewOp(code, x, y)
	lw.markPred(op)
	op.FP = isF
	return ir.Use(op), nil
}

// tryFuseFMA rewrites fadd(fmul(a,b), c) as fma(a,b,c). The multiply must be
// an anonymous expression temporary (never bound to a scalar), which
// guarantees it has exactly one use; it is moved to the end of the body so
// the fused op follows all of its inputs in program order.
func (lw *lowerer) tryFuseFMA(x, y ir.ArgRef) *ir.Op {
	try := func(mul, addend ir.ArgRef) *ir.Op {
		if mul.Dist != 0 || mul.Op.Code != ir.OpFMul || mul.Op.Name != "" {
			return nil
		}
		if mul.Op.Predicated != (lw.curPred != 0) {
			return nil
		}
		body := lw.loop.Body
		pos := -1
		for i, op := range body {
			if op == mul.Op {
				pos = i
				break
			}
		}
		if pos < 0 {
			return nil
		}
		copy(body[pos:], body[pos+1:])
		body[len(body)-1] = mul.Op
		mul.Op.Code = ir.OpFMA
		mul.Op.Args = append(mul.Op.Args, addend)
		return mul.Op
	}
	if op := try(x, y); op != nil {
		return op
	}
	return try(y, x)
}

// lowerIndex turns an IndexExpr into a MemRef plus any address dependences
// (for indirect accesses, the load producing the index value).
func (lw *lowerer) lowerIndex(ex *IndexExpr) (*ir.MemRef, []ir.ArgRef, error) {
	arr := lw.arrays[ex.Array]
	iv := lw.innerIV
	if coef, off, ok := affine(ex.Index, iv); ok {
		return &ir.MemRef{Array: ex.Array, Stride: coef, Offset: off, Elem: arr.elem}, nil, nil
	}
	if inner, ok := ex.Index.(*IndexExpr); ok {
		innerRef, err := lw.lowerExpr(inner)
		if err != nil {
			return nil, nil, err
		}
		mem := &ir.MemRef{Array: ex.Array, Indirect: true, Elem: arr.elem}
		if innerRef.Op.Mem != nil {
			mem.Stride = innerRef.Op.Mem.Stride
			mem.Offset = innerRef.Op.Mem.Offset
		}
		return mem, []ir.ArgRef{innerRef}, nil
	}
	return nil, nil, errf(ex.Pos, "array index must be affine in %q or an indirect access", iv)
}

// affine matches c*iv + k (in any association) and returns (c, k).
func affine(e Expr, iv string) (coef, off int, ok bool) {
	switch ex := e.(type) {
	case *NumLit:
		if ex.IsInt {
			return 0, ex.IntVal, true
		}
	case *Ident:
		if ex.Name == iv {
			return 1, 0, true
		}
	case *UnaryExpr:
		if c, o, ok := affine(ex.X, iv); ok {
			return -c, -o, true
		}
	case *BinaryExpr:
		xc, xo, xok := affine(ex.X, iv)
		yc, yo, yok := affine(ex.Y, iv)
		if !xok || !yok {
			return 0, 0, false
		}
		switch ex.Op {
		case BinAdd:
			return xc + yc, xo + yo, true
		case BinSub:
			return xc - yc, xo - yo, true
		case BinMul:
			if xc == 0 {
				return xo * yc, xo * yo, true
			}
			if yc == 0 {
				return yo * xc, yo * xo, true
			}
		}
	}
	return 0, 0, false
}

// readScalar returns a reference to the current value of a scalar. Reads of
// loop-carried scalars before this iteration's definition point at a
// placeholder that resolveCarried patches to the final definition.
func (lw *lowerer) readScalar(name string, pos Pos) (ir.ArgRef, error) {
	info, ok := lw.scalars[name]
	if !ok {
		return ir.ArgRef{}, errf(pos, "use of undeclared scalar %q", name)
	}
	if info.def != nil {
		return ir.Use(info.def), nil
	}
	if !info.assigned {
		return ir.Use(lw.paramFor(name, info.typ)), nil
	}
	if info.placeholder == nil {
		ph := &ir.Op{ID: -1, Code: ir.OpParam, Name: name + ".carried"}
		info.placeholder = ph
		ph.FP = info.typ.IsFloat()
	}
	return ir.Carried(info.placeholder, 1), nil
}

func (lw *lowerer) defineScalar(name string, def *ir.Op) {
	info := lw.scalars[name]
	info.def = def
	if def.Name == "" {
		def.Name = name
	}
}

// resolveCarried rewrites placeholder references with the final definition
// of each carried scalar.
func (lw *lowerer) resolveCarried() error {
	for name, info := range lw.scalars {
		if info.placeholder == nil {
			continue
		}
		if info.def == nil {
			return fmt.Errorf("lang: scalar %q read as carried but never defined", name)
		}
		for _, op := range lw.loop.Body {
			for i := range op.Args {
				if op.Args[i].Op == info.placeholder {
					op.Args[i].Op = info.def
				}
			}
		}
	}
	return nil
}

func (lw *lowerer) paramFor(name string, typ Type) *ir.Op {
	info, ok := lw.scalars[name]
	if !ok {
		info = &scalarInfo{typ: typ, param: true}
		lw.scalars[name] = info
	}
	if info.paramOp == nil {
		info.paramOp = lw.loop.NewParam(name)
		info.paramOp.FP = info.typ.IsFloat()
	}
	return info.paramOp
}

func (lw *lowerer) constOp(text string) *ir.Op {
	if lw.consts == nil {
		lw.consts = map[string]*ir.Op{}
	}
	if c, ok := lw.consts[text]; ok {
		return c
	}
	c := lw.loop.NewConst(text)
	lw.consts[text] = c
	return c
}

// refIsFloat reports whether a reference carries a floating-point value.
// Constants are typeless: they adopt the type of their context.
func (lw *lowerer) refIsFloat(ref ir.ArgRef) bool {
	if ref.Op.Code == ir.OpConst {
		return false
	}
	return ref.Op.FP
}

// coerce inserts an int<->float conversion when needed. Constants convert
// for free: they are materialized in the right register file.
func (lw *lowerer) coerce(ref ir.ArgRef, wantFloat bool) ir.ArgRef {
	if ref.Op.Code == ir.OpConst || lw.refIsFloat(ref) == wantFloat {
		return ref
	}
	conv := lw.loop.NewOp(ir.OpConv, ref)
	lw.markPred(conv)
	conv.FP = wantFloat
	return ir.Use(conv)
}

// materialize turns a (possibly carried) reference into a concrete op that
// can serve as a scalar definition. Carried references need a register copy
// (`s = t` where t is a recurrence value from the previous iteration).
func (lw *lowerer) materialize(ref ir.ArgRef, isFloat bool) *ir.Op {
	if ref.Dist == 0 {
		return ref.Op
	}
	code := ir.OpAdd
	if isFloat {
		code = ir.OpFAdd
	}
	cp := lw.loop.NewOp(code, ir.Use(lw.constOp("0")), ref)
	lw.markPred(cp)
	cp.FP = isFloat
	return cp
}
