// Package lang implements LoopLang, the small C/Fortran-flavoured kernel
// language the benchmark corpus is written in. A kernel describes one
// innermost loop — parameters, array declarations and the loop body — plus
// the metadata the paper's feature vector needs (source language, nest
// level, trip counts, entry counts).
//
// The package provides a lexer, a recursive-descent parser producing an AST,
// and a lowering pass that if-converts control flow and emits the loop IR
// consumed by the rest of the system.
//
// Example kernel:
//
//	kernel daxpy lang=c trip=4096 {
//	    param double a;
//	    double x[], y[];
//	    noalias;
//	    for i = 0 .. 4096 {
//	        y[i] = y[i] + a * x[i];
//	    }
//	}
package lang

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	TokEOF Kind = iota
	TokIdent
	TokNumber

	// Punctuation and operators.
	TokLBrace   // {
	TokRBrace   // }
	TokLParen   // (
	TokRParen   // )
	TokLBracket // [
	TokRBracket // ]
	TokSemi     // ;
	TokComma    // ,
	TokAssign   // =
	TokPlus     // +
	TokMinus    // -
	TokStar     // *
	TokSlash    // /
	TokDotDot   // ..
	TokEq       // ==
	TokNeq      // !=
	TokLt       // <
	TokLe       // <=
	TokGt       // >
	TokGe       // >=

	// Keywords.
	TokKernel
	TokParam
	TokFor
	TokIf
	TokElse
	TokBreak
	TokCall
	TokNoalias
	TokDouble
	TokFloat
	TokInt
	TokLong
)

var kindNames = map[Kind]string{
	TokEOF:      "EOF",
	TokIdent:    "identifier",
	TokNumber:   "number",
	TokLBrace:   "{",
	TokRBrace:   "}",
	TokLParen:   "(",
	TokRParen:   ")",
	TokLBracket: "[",
	TokRBracket: "]",
	TokSemi:     ";",
	TokComma:    ",",
	TokAssign:   "=",
	TokPlus:     "+",
	TokMinus:    "-",
	TokStar:     "*",
	TokSlash:    "/",
	TokDotDot:   "..",
	TokEq:       "==",
	TokNeq:      "!=",
	TokLt:       "<",
	TokLe:       "<=",
	TokGt:       ">",
	TokGe:       ">=",
	TokKernel:   "kernel",
	TokParam:    "param",
	TokFor:      "for",
	TokIf:       "if",
	TokElse:     "else",
	TokBreak:    "break",
	TokCall:     "call",
	TokNoalias:  "noalias",
	TokDouble:   "double",
	TokFloat:    "float",
	TokInt:      "int",
	TokLong:     "long",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"kernel":  TokKernel,
	"param":   TokParam,
	"for":     TokFor,
	"if":      TokIf,
	"else":    TokElse,
	"break":   TokBreak,
	"call":    TokCall,
	"noalias": TokNoalias,
	"double":  TokDouble,
	"float":   TokFloat,
	"int":     TokInt,
	"long":    TokLong,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token with its source position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// Error is a front-end error carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
