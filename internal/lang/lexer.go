package lang

import (
	"strings"
	"unicode"
)

// Lexer turns LoopLang source text into tokens. It supports //-style line
// comments and /* */ block comments.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peek2() byte {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.here()
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func (lx *Lexer) here() Pos { return Pos{Line: lx.line, Col: lx.col} }

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.here()
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentCont(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		if k, ok := keywords[strings.ToLower(text)]; ok {
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
	case unicode.IsDigit(rune(c)):
		start := lx.pos
		for lx.pos < len(lx.src) && (unicode.IsDigit(rune(lx.peek())) || lx.peek() == '.') {
			// ".." terminates a number: it is the range operator.
			if lx.peek() == '.' && lx.peek2() == '.' {
				break
			}
			lx.advance()
		}
		return Token{Kind: TokNumber, Text: lx.src[start:lx.pos], Pos: pos}, nil
	}
	lx.advance()
	single := map[byte]Kind{
		'{': TokLBrace, '}': TokRBrace, '(': TokLParen, ')': TokRParen,
		'[': TokLBracket, ']': TokRBracket, ';': TokSemi, ',': TokComma,
		'+': TokPlus, '-': TokMinus, '*': TokStar, '/': TokSlash,
	}
	switch c {
	case '.':
		if lx.peek() == '.' {
			lx.advance()
			return Token{Kind: TokDotDot, Text: "..", Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected character %q", string(c))
	case '=':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: TokEq, Text: "==", Pos: pos}, nil
		}
		return Token{Kind: TokAssign, Text: "=", Pos: pos}, nil
	case '!':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: TokNeq, Text: "!=", Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected character %q", string(c))
	case '<':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: TokLe, Text: "<=", Pos: pos}, nil
		}
		return Token{Kind: TokLt, Text: "<", Pos: pos}, nil
	case '>':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: TokGe, Text: ">=", Pos: pos}, nil
		}
		return Token{Kind: TokGt, Text: ">", Pos: pos}, nil
	}
	if k, ok := single[c]; ok {
		return Token{Kind: k, Text: string(c), Pos: pos}, nil
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

// Tokenize lexes the whole input, returning all tokens up to and including
// the EOF token.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
