package lang

import (
	"strings"
	"testing"
)

const daxpySrc = `
kernel daxpy lang=c trip=0 nest=1 {
	param double a;
	double x[], y[];
	noalias;
	for i = 0 .. 4096 {
		y[i] = y[i] + a * x[i];
	}
}
`

func TestParseDaxpy(t *testing.T) {
	// trip=0 is not a real attribute; use a valid variant here.
	src := strings.Replace(daxpySrc, " trip=0 nest=1", " nest=2", 1)
	k, err := ParseKernel(src)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "daxpy" {
		t.Errorf("name = %q", k.Name)
	}
	if k.Attrs["lang"] != "c" || k.Attrs["nest"] != "2" {
		t.Errorf("attrs = %v", k.Attrs)
	}
	if !k.NoAlias {
		t.Error("noalias not recorded")
	}
	if len(k.Decls) != 2 {
		t.Fatalf("decls = %d", len(k.Decls))
	}
	if !k.Decls[0].Param || k.Decls[0].Type != TypeDouble {
		t.Errorf("decl 0 = %+v", k.Decls[0])
	}
	if !k.Decls[1].Names[0].IsArray || !k.Decls[1].Names[1].IsArray {
		t.Error("x,y should be arrays")
	}
	if k.Loop.IV != "i" || k.Loop.Lo != 0 {
		t.Errorf("loop header = %+v", k.Loop)
	}
	hi, ok := k.Loop.Hi.(*NumLit)
	if !ok || hi.IntVal != 4096 {
		t.Errorf("hi = %#v", k.Loop.Hi)
	}
	if len(k.Loop.Body) != 1 {
		t.Fatalf("body stmts = %d", len(k.Loop.Body))
	}
	asg, ok := k.Loop.Body[0].(*AssignStmt)
	if !ok {
		t.Fatalf("stmt = %T", k.Loop.Body[0])
	}
	if _, ok := asg.Target.(*IndexExpr); !ok {
		t.Errorf("target = %T", asg.Target)
	}
}

func TestParseSymbolicBound(t *testing.T) {
	k, err := ParseKernel(`kernel k { double a[]; for i = 0 .. n { a[i] = 1; } }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := k.Loop.Hi.(*Ident); !ok {
		t.Errorf("hi = %#v", k.Loop.Hi)
	}
}

func TestParseIfElseAndBreak(t *testing.T) {
	src := `
kernel k {
	double a[], b[];
	int s;
	for i = 0 .. 100 {
		if (a[i] > 0) {
			b[i] = a[i];
		} else {
			b[i] = 0 - a[i];
		}
		if (b[i] >= 100) break;
		s = s + 1;
		call helper();
	}
}`
	k, err := ParseKernel(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Loop.Body) != 4 {
		t.Fatalf("body stmts = %d", len(k.Loop.Body))
	}
	ifs, ok := k.Loop.Body[0].(*IfStmt)
	if !ok || len(ifs.Then) != 1 || len(ifs.Else) != 1 {
		t.Errorf("if stmt = %#v", k.Loop.Body[0])
	}
	if _, ok := k.Loop.Body[1].(*BreakIfStmt); !ok {
		t.Errorf("stmt 1 = %T", k.Loop.Body[1])
	}
	if _, ok := k.Loop.Body[2].(*AssignStmt); !ok {
		t.Errorf("stmt 2 = %T", k.Loop.Body[2])
	}
	cs, ok := k.Loop.Body[3].(*CallStmt)
	if !ok || cs.Name != "helper" {
		t.Errorf("stmt 3 = %#v", k.Loop.Body[3])
	}
}

func TestParsePrecedence(t *testing.T) {
	k, err := ParseKernel(`kernel k { double s; double a[]; for i = 0 .. 10 { s = 1 + a[i] * 2 - 3 / a[i+1]; } }`)
	if err != nil {
		t.Fatal(err)
	}
	asg := k.Loop.Body[0].(*AssignStmt)
	// ((1 + (a[i]*2)) - (3/a[i+1]))
	top, ok := asg.Value.(*BinaryExpr)
	if !ok || top.Op != BinSub {
		t.Fatalf("top = %#v", asg.Value)
	}
	left, ok := top.X.(*BinaryExpr)
	if !ok || left.Op != BinAdd {
		t.Fatalf("left = %#v", top.X)
	}
	if mul, ok := left.Y.(*BinaryExpr); !ok || mul.Op != BinMul {
		t.Errorf("left.Y = %#v", left.Y)
	}
	if div, ok := top.Y.(*BinaryExpr); !ok || div.Op != BinDiv {
		t.Errorf("top.Y = %#v", top.Y)
	}
}

func TestParseParenAndUnary(t *testing.T) {
	k, err := ParseKernel(`kernel k { double s, t; for i = 0 .. 10 { s = -(t + 1) * 2; } }`)
	if err != nil {
		t.Fatal(err)
	}
	asg := k.Loop.Body[0].(*AssignStmt)
	mul, ok := asg.Value.(*BinaryExpr)
	if !ok || mul.Op != BinMul {
		t.Fatalf("value = %#v", asg.Value)
	}
	if _, ok := mul.X.(*UnaryExpr); !ok {
		t.Errorf("mul.X = %#v", mul.X)
	}
}

func TestParseIndirectIndex(t *testing.T) {
	k, err := ParseKernel(`kernel k { double a[]; int idx[]; for i = 0 .. 10 { a[idx[i]] = 1; } }`)
	if err != nil {
		t.Fatal(err)
	}
	asg := k.Loop.Body[0].(*AssignStmt)
	ix := asg.Target.(*IndexExpr)
	if _, ok := ix.Index.(*IndexExpr); !ok {
		t.Errorf("index = %#v", ix.Index)
	}
}

func TestParseMultipleKernels(t *testing.T) {
	f, err := Parse(`
kernel a { double x[]; for i = 0 .. 4 { x[i] = 0; } }
kernel b { double x[]; for i = 0 .. 4 { x[i] = 1; } }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Kernels) != 2 || f.Kernels[0].Name != "a" || f.Kernels[1].Name != "b" {
		t.Errorf("kernels = %v", f.Kernels)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no loop", "kernel k { double a[]; }"},
		{"two loops", "kernel k { double a[]; for i = 0 .. 4 { a[i]=0; } for j = 0 .. 4 { a[j]=0; } }"},
		{"dup attr", "kernel k lang=c lang=c { double a[]; for i = 0 .. 4 { a[i]=0; } }"},
		{"bad stmt", "kernel k { double a[]; for i = 0 .. 4 { break; } }"},
		{"assign to expr", "kernel k { double a[]; for i = 0 .. 4 { 3 = a[i]; } }"},
		{"missing semi", "kernel k { double a[]; for i = 0 .. 4 { a[i] = 0 } }"},
		{"array param", "kernel k { param double a[]; for i = 0 .. 4 { a[i]=0; } }"},
		{"bad bound", "kernel k { double a[]; for i = 0 .. { a[i]=0; } }"},
		{"extra kernel tokens", "kernel k = { }"},
		{"two kernels same file one broken", "kernel a { double x[]; for i = 0 .. 4 { x[i]=0; } } kernel"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestParseSingleKernelHelper(t *testing.T) {
	if _, err := ParseKernel("kernel a { double x[]; for i = 0 .. 4 { x[i]=0; } } kernel b { double x[]; for i = 0 .. 4 { x[i]=0; } }"); err == nil {
		t.Error("ParseKernel should reject two kernels")
	}
}
