package lang

// File is a parsed LoopLang source file: a sequence of kernels.
type File struct {
	Kernels []*Kernel
}

// Type is a LoopLang scalar/element type.
type Type int

// Types.
const (
	TypeDouble Type = iota
	TypeFloat
	TypeInt
	TypeLong
)

// IsFloat reports whether the type is floating point.
func (t Type) IsFloat() bool { return t == TypeDouble || t == TypeFloat }

// Bytes returns the size of the type in bytes.
func (t Type) Bytes() int {
	if t == TypeFloat || t == TypeInt {
		return 4
	}
	return 8
}

// String returns the source spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeDouble:
		return "double"
	case TypeFloat:
		return "float"
	case TypeInt:
		return "int"
	case TypeLong:
		return "long"
	}
	return "type?"
}

// Kernel is one `kernel name attrs { ... }` definition.
type Kernel struct {
	Name    string
	Attrs   map[string]string // raw attribute strings, e.g. lang=c trip=100
	Pos     Pos
	Decls   []*Decl
	NoAlias bool
	Loop    *ForLoop
}

// Decl declares scalars or arrays. Param marks loop-invariant inputs.
type Decl struct {
	Pos   Pos
	Type  Type
	Param bool
	Names []DeclName
}

// DeclName is one declared name; IsArray marks `name[]`.
type DeclName struct {
	Name    string
	IsArray bool
}

// ForLoop is a counted loop: `for iv = lo .. hi { body }`. Lo must be a
// number; Hi may be a number (compile-time-known trip count) or an
// identifier (unknown trip count). Loops nest by containing exactly one
// ForLoop as their whole body; only the innermost loop carries
// computation (the unit the system instruments and unrolls).
type ForLoop struct {
	Pos  Pos
	IV   string
	Lo   int
	Hi   Expr // *NumLit or *Ident
	Body []Stmt
}

func (*ForLoop) stmtNode() {}

// Stmt is a loop-body statement.
type Stmt interface{ stmtNode() }

// AssignStmt is `lvalue = expr;`. Target is either an *Ident (scalar) or an
// *IndexExpr (array store).
type AssignStmt struct {
	Pos    Pos
	Target Expr
	Value  Expr
}

// IfStmt is `if (cond) { then } else { else }`. The else branch may be nil.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// BreakIfStmt is `if (cond) break;` — a data-dependent early exit.
type BreakIfStmt struct {
	Pos  Pos
	Cond Expr
}

// CallStmt is `call name();` — a call to an opaque function.
type CallStmt struct {
	Pos  Pos
	Name string
}

func (*AssignStmt) stmtNode()  {}
func (*IfStmt) stmtNode()      {}
func (*BreakIfStmt) stmtNode() {}
func (*CallStmt) stmtNode()    {}

// Expr is an expression node.
type Expr interface {
	exprNode()
	ExprPos() Pos
}

// NumLit is a numeric literal. Integer-valued literals may appear in index
// expressions; any literal may appear in value expressions.
type NumLit struct {
	Pos     Pos
	Text    string
	Value   float64
	IsInt   bool
	IntVal  int
	Negated bool
}

// Ident names a scalar variable or the induction variable.
type Ident struct {
	Pos  Pos
	Name string
}

// IndexExpr is an array element access `array[index]`.
type IndexExpr struct {
	Pos   Pos
	Array string
	Index Expr
}

// UnaryExpr is unary negation.
type UnaryExpr struct {
	Pos Pos
	X   Expr
}

// BinOp is a binary operator.
type BinOp int

// Binary operators.
const (
	BinAdd BinOp = iota
	BinSub
	BinMul
	BinDiv
	BinEq
	BinNeq
	BinLt
	BinLe
	BinGt
	BinGe
)

// IsCompare reports whether the operator is a comparison.
func (b BinOp) IsCompare() bool { return b >= BinEq }

// String returns the operator's source spelling.
func (b BinOp) String() string {
	return [...]string{"+", "-", "*", "/", "==", "!=", "<", "<=", ">", ">="}[b]
}

// BinaryExpr is `x op y`.
type BinaryExpr struct {
	Pos  Pos
	Op   BinOp
	X, Y Expr
}

func (*NumLit) exprNode()     {}
func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}

// ExprPos returns the position of the literal.
func (e *NumLit) ExprPos() Pos { return e.Pos }

// ExprPos returns the position of the identifier.
func (e *Ident) ExprPos() Pos { return e.Pos }

// ExprPos returns the position of the access.
func (e *IndexExpr) ExprPos() Pos { return e.Pos }

// ExprPos returns the position of the operator.
func (e *UnaryExpr) ExprPos() Pos { return e.Pos }

// ExprPos returns the position of the operator.
func (e *BinaryExpr) ExprPos() Pos { return e.Pos }
