package lang

import (
	"fmt"
	"sort"
	"strings"
)

// Print renders a parsed file back to canonical LoopLang source. The output
// reparses to an equivalent AST (same lowering), making the printer usable
// for corpus dumps and test-case reduction.
func Print(f *File) string {
	var sb strings.Builder
	for i, k := range f.Kernels {
		if i > 0 {
			sb.WriteByte('\n')
		}
		printKernel(&sb, k)
	}
	return sb.String()
}

// PrintKernel renders one kernel.
func PrintKernel(k *Kernel) string {
	var sb strings.Builder
	printKernel(&sb, k)
	return sb.String()
}

func printKernel(sb *strings.Builder, k *Kernel) {
	fmt.Fprintf(sb, "kernel %s", k.Name)
	// Attributes in a stable order.
	keys := make([]string, 0, len(k.Attrs))
	for key := range k.Attrs {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		fmt.Fprintf(sb, " %s=%s", key, k.Attrs[key])
	}
	sb.WriteString(" {\n")
	for _, d := range k.Decls {
		sb.WriteByte('\t')
		if d.Param {
			sb.WriteString("param ")
		}
		sb.WriteString(d.Type.String())
		sb.WriteByte(' ')
		for i, n := range d.Names {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(n.Name)
			if n.IsArray {
				sb.WriteString("[]")
			}
		}
		sb.WriteString(";\n")
	}
	if k.NoAlias {
		sb.WriteString("\tnoalias;\n")
	}
	printFor(sb, k.Loop, 1)
	sb.WriteString("}\n")
}

func printFor(sb *strings.Builder, fl *ForLoop, depth int) {
	ind := strings.Repeat("\t", depth)
	fmt.Fprintf(sb, "%sfor %s = %d .. %s {\n", ind, fl.IV, fl.Lo, exprString(fl.Hi))
	for _, s := range fl.Body {
		printStmt(sb, s, depth+1)
	}
	fmt.Fprintf(sb, "%s}\n", ind)
}

func printStmt(sb *strings.Builder, s Stmt, depth int) {
	ind := strings.Repeat("\t", depth)
	switch st := s.(type) {
	case *AssignStmt:
		fmt.Fprintf(sb, "%s%s = %s;\n", ind, exprString(st.Target), exprString(st.Value))
	case *IfStmt:
		fmt.Fprintf(sb, "%sif (%s) {\n", ind, exprString(st.Cond))
		for _, t := range st.Then {
			printStmt(sb, t, depth+1)
		}
		if len(st.Else) > 0 {
			fmt.Fprintf(sb, "%s} else {\n", ind)
			for _, e := range st.Else {
				printStmt(sb, e, depth+1)
			}
		}
		fmt.Fprintf(sb, "%s}\n", ind)
	case *BreakIfStmt:
		fmt.Fprintf(sb, "%sif (%s) break;\n", ind, exprString(st.Cond))
	case *CallStmt:
		fmt.Fprintf(sb, "%scall %s();\n", ind, st.Name)
	case *ForLoop:
		printFor(sb, st, depth)
	}
}

// exprString renders an expression fully parenthesized (except at the
// leaves), so the output never depends on precedence reconstruction.
func exprString(e Expr) string {
	switch ex := e.(type) {
	case *NumLit:
		return ex.Text
	case *Ident:
		return ex.Name
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", ex.Array, exprString(ex.Index))
	case *UnaryExpr:
		return fmt.Sprintf("(-%s)", exprString(ex.X))
	case *BinaryExpr:
		if ex.Op.IsCompare() {
			return fmt.Sprintf("%s %s %s", exprString(ex.X), ex.Op, exprString(ex.Y))
		}
		return fmt.Sprintf("(%s %s %s)", exprString(ex.X), ex.Op, exprString(ex.Y))
	}
	return "?"
}
