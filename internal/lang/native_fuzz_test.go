package lang

import (
	"testing"
)

// FuzzParseLower is the native-fuzzing counterpart of the quick.Check
// probes above: the Go fuzzer's coverage guidance finds parser and lowerer
// paths that random splicing misses. The whole frontend must stay
// panic-free on arbitrary input, and anything that parses and lowers must
// produce IR that passes validation.
func FuzzParseLower(f *testing.F) {
	seeds := []string{
		"",
		"kernel k { double a[]; for i = 0 .. 4 { a[i] = 0.0; } }",
		"kernel k lang=c nest=2 entries=3 {\n param double a;\n double x[], y[];\n int idx[];\n noalias;\n for i = 0 .. 128 {\n  if (x[i] > a) { y[i] = x[i] * 2.0; } else { y[i] = y[idx[i]]; }\n  if (y[i] == 0.0) break;\n  call f();\n }\n}",
		"kernel q lang=fortran { double a[], b[]; double s; for i = 0 .. 1024 { s = s + a[i]*b[i]; } }",
		"kernel s lang=c { double a[], b[]; noalias; for i = 1 .. 511 { b[i] = a[i-1] + a[i] + a[i+1]; } }",
		"/* comment */ kernel c { int k[]; for i = 0 .. 8 { k[i] = i; } } // trailing",
		"kernel bad { for i = 0 .. { } }",
		"kernel k { double a[]; for i = 0 .. 4 { a[i] = ",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil {
			return
		}
		for _, k := range file.Kernels {
			l, err := Lower(k)
			if err != nil {
				continue
			}
			if verr := l.Validate(); verr != nil {
				t.Fatalf("kernel %q lowered to invalid IR: %v\nsource:\n%s", k.Name, verr, src)
			}
		}
	})
}
