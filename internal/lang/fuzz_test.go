package lang

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanicsOnRandomBytes: the frontend must reject garbage with
// errors, never panics.
func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", data, r)
			}
		}()
		_, _ = Parse(string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParseNeverPanicsOnMutatedKernels: corrupting valid kernels at random
// positions exercises error paths deep inside the parser and lowerer.
func TestParseNeverPanicsOnMutatedKernels(t *testing.T) {
	base := `
kernel k lang=c nest=2 entries=3 {
	param double a;
	double x[], y[];
	int idx[];
	noalias;
	for i = 0 .. 128 {
		if (x[i] > a) { y[i] = x[i] * 2.0; } else { y[i] = y[idx[i]]; }
		if (y[i] == 0.0) break;
		call f();
	}
}`
	mutants := []string{"", "}", "{", ";", "..", "for", "kernel", "==", "@", "3", "i"}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 400; trial++ {
		src := base
		// Apply 1-3 random splice mutations.
		for m := 0; m < 1+rng.Intn(3); m++ {
			pos := rng.Intn(len(src))
			mut := mutants[rng.Intn(len(mutants))]
			switch rng.Intn(3) {
			case 0: // insert
				src = src[:pos] + mut + src[pos:]
			case 1: // delete a span
				end := pos + rng.Intn(8)
				if end > len(src) {
					end = len(src)
				}
				src = src[:pos] + src[end:]
			default: // replace
				end := pos + rng.Intn(4)
				if end > len(src) {
					end = len(src)
				}
				src = src[:pos] + mut + src[end:]
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("frontend panicked on mutant:\n%s\npanic: %v", src, r)
				}
			}()
			if k, err := ParseKernel(src); err == nil {
				// If it still parses, lowering must also stay panic-free,
				// and a successful lowering must produce valid IR.
				if l, err := Lower(k); err == nil {
					if verr := l.Validate(); verr != nil {
						t.Fatalf("mutant lowered to invalid IR: %v\n%s", verr, src)
					}
				}
			}
		}()
	}
}

// TestLexerPositionsMonotonic: token positions never go backwards.
func TestLexerPositionsMonotonic(t *testing.T) {
	srcs := []string{
		"kernel k { double a[]; for i = 0 .. 4 { a[i] = 0.0; } }",
		strings.Repeat("a ", 200),
		"/* block */ x // line\ny",
	}
	for _, src := range srcs {
		toks, err := Tokenize(src)
		if err != nil {
			t.Fatal(err)
		}
		prevLine, prevCol := 0, 0
		for _, tok := range toks {
			if tok.Pos.Line < prevLine || (tok.Pos.Line == prevLine && tok.Pos.Col < prevCol) {
				t.Fatalf("position went backwards at %v", tok)
			}
			prevLine, prevCol = tok.Pos.Line, tok.Pos.Col
		}
	}
}
