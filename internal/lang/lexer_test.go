package lang

import "testing"

func kinds(toks []Token) []Kind {
	ks := make([]Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("kernel k { for i = 0 .. 10 { a[i] = b + 1.5; } }")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{
		TokKernel, TokIdent, TokLBrace, TokFor, TokIdent, TokAssign, TokNumber,
		TokDotDot, TokNumber, TokLBrace, TokIdent, TokLBracket, TokIdent,
		TokRBracket, TokAssign, TokIdent, TokPlus, TokNumber, TokSemi,
		TokRBrace, TokRBrace, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	toks, err := Tokenize("== != < <= > >= = .. - * /")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{TokEq, TokNeq, TokLt, TokLe, TokGt, TokGe, TokAssign, TokDotDot, TokMinus, TokStar, TokSlash, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("a // line comment\n/* block\ncomment */ b")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Errorf("tokens = %v", toks)
	}
	if toks[1].Pos.Line != 3 {
		t.Errorf("b at line %d, want 3", toks[1].Pos.Line)
	}
}

func TestTokenizeUnterminatedComment(t *testing.T) {
	if _, err := Tokenize("a /* never closed"); err == nil {
		t.Error("expected error for unterminated comment")
	}
}

func TestTokenizeBadChar(t *testing.T) {
	if _, err := Tokenize("a @ b"); err == nil {
		t.Error("expected error for bad character")
	}
	if _, err := Tokenize("a ! b"); err == nil {
		t.Error("expected error for lone !")
	}
	if _, err := Tokenize("a . b"); err == nil {
		t.Error("expected error for lone .")
	}
}

func TestTokenizeNumberBeforeDotDot(t *testing.T) {
	toks, err := Tokenize("0..8")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{TokNumber, TokDotDot, TokNumber, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokens = %v, want %v", got, want)
		}
	}
	if toks[0].Text != "0" || toks[2].Text != "8" {
		t.Errorf("number texts = %q %q", toks[0].Text, toks[2].Text)
	}
}

func TestTokenizeFloatNumber(t *testing.T) {
	toks, err := Tokenize("1.25")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokNumber || toks[0].Text != "1.25" {
		t.Errorf("token = %+v", toks[0])
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, err := Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("a pos = %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("b pos = %v", toks[1].Pos)
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Tokenize("KERNEL For")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokKernel || toks[1].Kind != TokFor {
		t.Errorf("kinds = %v %v", toks[0].Kind, toks[1].Kind)
	}
}
