package lang

import (
	"strings"
	"testing"
)

var printerSources = []string{
	`kernel daxpy lang=c {
	param double a;
	double x[], y[];
	noalias;
	for i = 0 .. 4096 {
		y[i] = y[i] + a * x[i];
	}
}`,
	`kernel control lang=fortran nest=2 entries=7 runtime_trip=55 {
	double a[], b[];
	double m;
	for i = 0 .. n {
		if (a[i] > m) { m = a[i]; } else { b[i] = -a[i]; }
		if (m >= 100.5) break;
		call helper();
	}
}`,
	`kernel nested lang=c {
	double a[];
	int idx[];
	for j = 0 .. 16 {
		for i = 2 .. 510 {
			a[i] = a[i-2] * 0.5 + a[2*i+1] / (a[idx[i]] + 1.0);
		}
	}
}`,
}

// TestPrintRoundTrip: printed source reparses, reprints identically
// (idempotence), and lowers to the same IR as the original.
func TestPrintRoundTrip(t *testing.T) {
	for _, src := range printerSources {
		k1, err := ParseKernel(src)
		if err != nil {
			t.Fatalf("parse original: %v", err)
		}
		printed := PrintKernel(k1)
		k2, err := ParseKernel(printed)
		if err != nil {
			t.Fatalf("reparse printed:\n%s\nerror: %v", printed, err)
		}
		printed2 := PrintKernel(k2)
		if printed != printed2 {
			t.Errorf("printer not idempotent:\n--- first\n%s\n--- second\n%s", printed, printed2)
		}
		l1, err := Lower(k1)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := Lower(k2)
		if err != nil {
			t.Fatalf("lower printed:\n%s\nerror: %v", printed, err)
		}
		if l1.String() != l2.String() {
			t.Errorf("printed kernel lowers differently:\n--- original IR\n%s\n--- printed IR\n%s", l1, l2)
		}
	}
}

func TestPrintFileMultipleKernels(t *testing.T) {
	f, err := Parse(printerSources[0] + "\n" + printerSources[1])
	if err != nil {
		t.Fatal(err)
	}
	out := Print(f)
	f2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse file:\n%s\nerror: %v", out, err)
	}
	if len(f2.Kernels) != 2 {
		t.Errorf("kernels after round trip = %d", len(f2.Kernels))
	}
	if !strings.Contains(out, "kernel daxpy") || !strings.Contains(out, "kernel control") {
		t.Error("printed file lost kernels")
	}
}

func TestPrintAttributeOrderStable(t *testing.T) {
	k, err := ParseKernel(`kernel k runtime_trip=9 lang=c nest=3 entries=2 { double a[]; for i = 0 .. n { a[i] = 0.0; } }`)
	if err != nil {
		t.Fatal(err)
	}
	a := PrintKernel(k)
	b := PrintKernel(k)
	if a != b {
		t.Error("printing not deterministic")
	}
	if !strings.Contains(a, "entries=2 lang=c nest=3 runtime_trip=9") {
		t.Errorf("attributes not sorted:\n%s", a)
	}
}
