package lang

import (
	"strconv"
)

// Parser is a recursive-descent parser for LoopLang.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a whole source file.
func Parse(src string) (*File, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	f := &File{}
	for p.cur().Kind != TokEOF {
		k, err := p.parseKernel()
		if err != nil {
			return nil, err
		}
		f.Kernels = append(f.Kernels, k)
	}
	if len(f.Kernels) == 0 {
		return nil, errf(p.cur().Pos, "no kernels in input")
	}
	return f, nil
}

// ParseKernel parses a source file expected to contain exactly one kernel.
func ParseKernel(src string) (*Kernel, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(f.Kernels) != 1 {
		return nil, errf(Pos{1, 1}, "expected exactly one kernel, found %d", len(f.Kernels))
	}
	return f.Kernels[0], nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) expect(k Kind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errf(t.Pos, "expected %s, found %s %q", k, t.Kind, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *Parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) parseKernel() (*Kernel, error) {
	start, err := p.expect(TokKernel)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	k := &Kernel{Name: name.Text, Pos: start.Pos, Attrs: map[string]string{}}
	// Attributes: ident=value pairs up to the opening brace.
	for p.cur().Kind == TokIdent {
		key := p.next().Text
		if _, err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		val := p.cur()
		if val.Kind != TokIdent && val.Kind != TokNumber {
			return nil, errf(val.Pos, "expected attribute value, found %s", val.Kind)
		}
		p.pos++
		if _, dup := k.Attrs[key]; dup {
			return nil, errf(val.Pos, "duplicate attribute %q", key)
		}
		k.Attrs[key] = val.Text
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokParam, TokDouble, TokFloat, TokInt, TokLong:
			d, err := p.parseDecl()
			if err != nil {
				return nil, err
			}
			k.Decls = append(k.Decls, d)
		case TokNoalias:
			p.next()
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			k.NoAlias = true
		case TokFor:
			loop, err := p.parseFor()
			if err != nil {
				return nil, err
			}
			if k.Loop != nil {
				return nil, errf(loop.Pos, "kernel %s has more than one loop", k.Name)
			}
			k.Loop = loop
		case TokRBrace:
			p.next()
			if k.Loop == nil {
				return nil, errf(k.Pos, "kernel %s has no loop", k.Name)
			}
			return k, nil
		default:
			return nil, errf(p.cur().Pos, "unexpected %s in kernel body", p.cur().Kind)
		}
	}
}

func (p *Parser) parseType() (Type, error) {
	t := p.next()
	switch t.Kind {
	case TokDouble:
		return TypeDouble, nil
	case TokFloat:
		return TypeFloat, nil
	case TokInt:
		return TypeInt, nil
	case TokLong:
		return TypeLong, nil
	}
	return 0, errf(t.Pos, "expected type, found %s", t.Kind)
}

func (p *Parser) parseDecl() (*Decl, error) {
	d := &Decl{Pos: p.cur().Pos}
	if p.accept(TokParam) {
		d.Param = true
	}
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	d.Type = ty
	for {
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		dn := DeclName{Name: name.Text}
		if p.accept(TokLBracket) {
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			dn.IsArray = true
		}
		if dn.IsArray && d.Param {
			return nil, errf(name.Pos, "param declarations must be scalar")
		}
		d.Names = append(d.Names, dn)
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) parseFor() (*ForLoop, error) {
	start, err := p.expect(TokFor)
	if err != nil {
		return nil, err
	}
	iv, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	lo, err := p.expect(TokNumber)
	if err != nil {
		return nil, err
	}
	loVal, err := strconv.Atoi(lo.Text)
	if err != nil {
		return nil, errf(lo.Pos, "loop lower bound must be an integer: %v", err)
	}
	if _, err := p.expect(TokDotDot); err != nil {
		return nil, err
	}
	var hi Expr
	switch p.cur().Kind {
	case TokNumber:
		t := p.next()
		iv, err := strconv.Atoi(t.Text)
		if err != nil {
			return nil, errf(t.Pos, "loop upper bound must be an integer: %v", err)
		}
		hi = &NumLit{Pos: t.Pos, Text: t.Text, Value: float64(iv), IsInt: true, IntVal: iv}
	case TokIdent:
		t := p.next()
		hi = &Ident{Pos: t.Pos, Name: t.Text}
	default:
		return nil, errf(p.cur().Pos, "expected loop upper bound, found %s", p.cur().Kind)
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ForLoop{Pos: start.Pos, IV: iv.Text, Lo: loVal, Hi: hi, Body: body}, nil
}

func (p *Parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for p.cur().Kind != TokRBrace {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // consume }
	return stmts, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokFor:
		return p.parseFor()
	case TokIf:
		return p.parseIf()
	case TokCall:
		start := p.next()
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &CallStmt{Pos: start.Pos, Name: name.Text}, nil
	case TokIdent:
		return p.parseAssign()
	}
	return nil, errf(p.cur().Pos, "unexpected %s at start of statement", p.cur().Kind)
}

func (p *Parser) parseIf() (Stmt, error) {
	start := p.next() // if
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if p.accept(TokBreak) {
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BreakIfStmt{Pos: start.Pos, Cond: cond}, nil
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	var els []Stmt
	if p.accept(TokElse) {
		els, err = p.parseBlock()
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{Pos: start.Pos, Cond: cond, Then: then, Else: els}, nil
}

func (p *Parser) parseAssign() (Stmt, error) {
	target, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	switch target.(type) {
	case *Ident, *IndexExpr:
	default:
		return nil, errf(target.ExprPos(), "assignment target must be a scalar or array element")
	}
	eq, err := p.expect(TokAssign)
	if err != nil {
		return nil, err
	}
	value, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &AssignStmt{Pos: eq.Pos, Target: target, Value: value}, nil
}

// parseExpr parses comparisons (lowest precedence).
func (p *Parser) parseExpr() (Expr, error) {
	x, err := p.parseAddSub()
	if err != nil {
		return nil, err
	}
	var op BinOp
	switch p.cur().Kind {
	case TokEq:
		op = BinEq
	case TokNeq:
		op = BinNeq
	case TokLt:
		op = BinLt
	case TokLe:
		op = BinLe
	case TokGt:
		op = BinGt
	case TokGe:
		op = BinGe
	default:
		return x, nil
	}
	t := p.next()
	y, err := p.parseAddSub()
	if err != nil {
		return nil, err
	}
	return &BinaryExpr{Pos: t.Pos, Op: op, X: x, Y: y}, nil
}

func (p *Parser) parseAddSub() (Expr, error) {
	x, err := p.parseMulDiv()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.cur().Kind {
		case TokPlus:
			op = BinAdd
		case TokMinus:
			op = BinSub
		default:
			return x, nil
		}
		t := p.next()
		y, err := p.parseMulDiv()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Pos: t.Pos, Op: op, X: x, Y: y}
	}
}

func (p *Parser) parseMulDiv() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.cur().Kind {
		case TokStar:
			op = BinMul
		case TokSlash:
			op = BinDiv
		default:
			return x, nil
		}
		t := p.next()
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Pos: t.Pos, Op: op, X: x, Y: y}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.cur().Kind == TokMinus {
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: t.Pos, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad number %q: %v", t.Text, err)
		}
		n := &NumLit{Pos: t.Pos, Text: t.Text, Value: v}
		if iv, err := strconv.Atoi(t.Text); err == nil {
			n.IsInt = true
			n.IntVal = iv
		}
		return n, nil
	case TokIdent:
		p.next()
		if p.accept(TokLBracket) {
			idx, err := p.parseAddSub()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Pos: t.Pos, Array: t.Text, Index: idx}, nil
		}
		return &Ident{Pos: t.Pos, Name: t.Text}, nil
	case TokLParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, errf(t.Pos, "unexpected %s in expression", t.Kind)
}
