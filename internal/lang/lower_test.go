package lang

import (
	"testing"

	"metaopt/internal/ir"
)

func mustLower(t *testing.T, src string) *ir.Loop {
	t.Helper()
	k, err := ParseKernel(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	l, err := Lower(k)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return l
}

func countCode(l *ir.Loop, code ir.Opcode) int {
	return l.Count(func(o *ir.Op) bool { return o.Code == code })
}

func TestLowerDaxpy(t *testing.T) {
	l := mustLower(t, `
kernel daxpy lang=c {
	param double a;
	double x[], y[];
	noalias;
	for i = 0 .. 4096 {
		y[i] = y[i] + a * x[i];
	}
}`)
	if l.TripCount != 4096 || l.RuntimeTrip != 4096 {
		t.Errorf("trip = %d/%d", l.TripCount, l.RuntimeTrip)
	}
	if !l.NoAlias {
		t.Error("NoAlias not set")
	}
	if l.Lang != ir.LangC {
		t.Errorf("lang = %v", l.Lang)
	}
	// Expect: 2 loads, FMA (fused), store, iv add, cmp, br = 7 ops.
	if countCode(l, ir.OpLoad) != 2 {
		t.Errorf("loads = %d, want 2", countCode(l, ir.OpLoad))
	}
	if countCode(l, ir.OpFMA) != 1 {
		t.Errorf("fma = %d, want 1 (fusion failed?)\n%s", countCode(l, ir.OpFMA), l)
	}
	if countCode(l, ir.OpFMul) != 0 || countCode(l, ir.OpFAdd) != 0 {
		t.Errorf("unfused fp ops remain:\n%s", l)
	}
	if countCode(l, ir.OpStore) != 1 || countCode(l, ir.OpBr) != 1 || countCode(l, ir.OpCmp) != 1 {
		t.Errorf("store/br/cmp counts wrong:\n%s", l)
	}
	if l.NumOps() != 7 {
		t.Errorf("ops = %d, want 7:\n%s", l.NumOps(), l)
	}
}

func TestLowerReduction(t *testing.T) {
	l := mustLower(t, `
kernel dot lang=fortran {
	double a[], b[];
	double s;
	for i = 0 .. 1024 {
		s = s + a[i] * b[i];
	}
}`)
	if !l.NoAlias {
		t.Error("fortran should imply noalias")
	}
	// The reduction must produce a self-carried FMA: s += a*b.
	var fma *ir.Op
	for _, op := range l.Body {
		if op.Code == ir.OpFMA {
			fma = op
		}
	}
	if fma == nil {
		t.Fatalf("no FMA:\n%s", l)
	}
	carried := false
	for _, a := range fma.Args {
		if a.Op == fma && a.Dist == 1 {
			carried = true
		}
	}
	if !carried {
		t.Errorf("reduction not self-carried: %s\n%s", fma, l)
	}
}

func TestLowerRecurrenceDistance(t *testing.T) {
	// b[i] = b[i-2] + 1 is a memory recurrence; the loads/stores carry the
	// distance in their MemRefs (analysis recovers distance 2).
	l := mustLower(t, `
kernel rec lang=c {
	double b[];
	for i = 2 .. 1000 {
		b[i] = b[i-2] * 0.5;
	}
}`)
	var load, store *ir.Op
	for _, op := range l.Body {
		switch op.Code {
		case ir.OpLoad:
			load = op
		case ir.OpStore:
			store = op
		}
	}
	if load == nil || store == nil {
		t.Fatalf("missing load/store:\n%s", l)
	}
	if load.Mem.Offset != -2 || load.Mem.Stride != 1 {
		t.Errorf("load ref = %s", load.Mem)
	}
	if store.Mem.Offset != 0 || store.Mem.Stride != 1 {
		t.Errorf("store ref = %s", store.Mem)
	}
	if l.TripCount != 998 {
		t.Errorf("trip = %d, want 998", l.TripCount)
	}
}

func TestLowerScalarCarriedRead(t *testing.T) {
	// t is read before being written: the read refers to the previous
	// iteration's final value.
	l := mustLower(t, `
kernel lag lang=c {
	double a[];
	double t;
	for i = 0 .. 100 {
		a[i] = t;
		t = a[i] * 2;
	}
}`)
	var store *ir.Op
	for _, op := range l.Body {
		if op.Code == ir.OpStore {
			store = op
			break
		}
	}
	if store == nil {
		t.Fatal("no store")
	}
	// The store's value argument must be carried at distance 1.
	val := store.Args[len(store.Args)-1]
	if val.Dist != 1 {
		t.Errorf("store value dist = %d, want 1:\n%s", val.Dist, l)
	}
	if val.Op.Name != "t" {
		t.Errorf("store value op = %s", val.Op)
	}
}

func TestLowerIfConversion(t *testing.T) {
	l := mustLower(t, `
kernel clip lang=c {
	double a[], b[];
	for i = 0 .. 100 {
		if (a[i] > 1.0) {
			b[i] = 1.0;
		}
	}
}`)
	if countCode(l, ir.OpFCmp) != 1 {
		t.Errorf("fcmp = %d:\n%s", countCode(l, ir.OpFCmp), l)
	}
	var store *ir.Op
	for _, op := range l.Body {
		if op.Code == ir.OpStore {
			store = op
		}
	}
	if store == nil || !store.Predicated || store.PredID != 1 {
		t.Errorf("store not predicated: %v\n%s", store, l)
	}
	if l.EarlyExit {
		t.Error("if without break should not set EarlyExit")
	}
}

func TestLowerConditionalScalarUsesSel(t *testing.T) {
	l := mustLower(t, `
kernel selmax lang=c {
	double a[];
	double m;
	for i = 0 .. 100 {
		if (a[i] > m) {
			m = a[i];
		}
	}
}`)
	if countCode(l, ir.OpSel) != 1 {
		t.Errorf("sel = %d, want 1:\n%s", countCode(l, ir.OpSel), l)
	}
	// The Sel is the carried definition of m: its old-value argument refers
	// to itself at distance 1.
	var sel *ir.Op
	for _, op := range l.Body {
		if op.Code == ir.OpSel {
			sel = op
		}
	}
	self := false
	for _, a := range sel.Args {
		if a.Op == sel && a.Dist == 1 {
			self = true
		}
	}
	if !self {
		t.Errorf("sel not self-carried: %s\n%s", sel, l)
	}
}

func TestLowerEarlyExit(t *testing.T) {
	l := mustLower(t, `
kernel find lang=c {
	double a[];
	for i = 0 .. n {
		if (a[i] == 0.0) break;
	}
}`)
	if !l.EarlyExit {
		t.Error("EarlyExit not set")
	}
	if countCode(l, ir.OpCondBr) != 1 {
		t.Errorf("condbr = %d:\n%s", countCode(l, ir.OpCondBr), l)
	}
	if l.TripCount != -1 {
		t.Errorf("symbolic trip = %d, want -1", l.TripCount)
	}
	if l.RuntimeTrip != 1000 {
		t.Errorf("default runtime trip = %d, want 1000", l.RuntimeTrip)
	}
}

func TestLowerIndirect(t *testing.T) {
	l := mustLower(t, `
kernel gather lang=c {
	double a[], b[];
	int idx[];
	for i = 0 .. 100 {
		a[i] = b[idx[i]];
	}
}`)
	var indirect *ir.Op
	for _, op := range l.Body {
		if op.Code == ir.OpLoad && op.Mem.Indirect {
			indirect = op
		}
	}
	if indirect == nil {
		t.Fatalf("no indirect load:\n%s", l)
	}
	// The indirect load must depend on the index load.
	if len(indirect.Args) != 1 || indirect.Args[0].Op.Code != ir.OpLoad {
		t.Errorf("indirect load deps = %v", indirect.Args)
	}
}

func TestLowerConversion(t *testing.T) {
	l := mustLower(t, `
kernel mix lang=c {
	double a[];
	int k[];
	for i = 0 .. 100 {
		a[i] = a[i] + k[i];
	}
}`)
	if countCode(l, ir.OpConv) != 1 {
		t.Errorf("conv = %d, want 1:\n%s", countCode(l, ir.OpConv), l)
	}
}

func TestLowerAttrs(t *testing.T) {
	l := mustLower(t, `
kernel attrs lang=f90 nest=3 entries=7 runtime_trip=321 {
	double a[];
	for i = 0 .. n {
		a[i] = 0;
	}
}`)
	if l.Lang != ir.LangFortran90 || !l.NoAlias {
		t.Errorf("lang = %v noalias = %v", l.Lang, l.NoAlias)
	}
	if l.NestLevel != 3 || l.Entries != 7 || l.RuntimeTrip != 321 {
		t.Errorf("nest/entries/rtrip = %d/%d/%d", l.NestLevel, l.Entries, l.RuntimeTrip)
	}
}

func TestLowerIVAsValue(t *testing.T) {
	l := mustLower(t, `
kernel ivuse lang=c {
	double a[];
	for i = 0 .. 100 {
		a[i] = i * 2;
	}
}`)
	// Must validate (the IV read resolves to the increment op at distance 1)
	// and include an int multiply plus a conversion to double.
	if countCode(l, ir.OpMul) != 1 {
		t.Errorf("mul = %d:\n%s", countCode(l, ir.OpMul), l)
	}
	if countCode(l, ir.OpConv) != 1 {
		t.Errorf("conv = %d:\n%s", countCode(l, ir.OpConv), l)
	}
}

func TestLowerScalarCopyOfCarried(t *testing.T) {
	l := mustLower(t, `
kernel copy lang=c {
	double a[];
	double s, t;
	for i = 0 .. 10 {
		t = s;
		s = a[i];
		a[i] = t;
	}
}`)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLowerErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"undeclared array", "kernel k { for i = 0 .. 4 { a[i]=0; } }"},
		{"undeclared scalar read", "kernel k { double a[]; for i = 0 .. 4 { a[i]=zz; } }"},
		{"assign to param", "kernel k { param double p; double a[]; for i = 0 .. 4 { p = a[i]; } }"},
		{"bad lang", "kernel k lang=ada { double a[]; for i = 0 .. 4 { a[i]=0; } }"},
		{"bad nest", "kernel k nest=zero { double a[]; for i = 0 .. 4 { a[i]=0; } }"},
		{"unknown attr", "kernel k wibble=3 { double a[]; for i = 0 .. 4 { a[i]=0; } }"},
		{"zero trip", "kernel k { double a[]; for i = 5 .. 5 { a[i]=0; } }"},
		{"nonaffine index", "kernel k { double a[]; for i = 0 .. 4 { a[i*i]=0; } }"},
		{"nested if", "kernel k { double a[]; for i = 0 .. 4 { if (a[i] > 0) { if (a[i] > 1) { a[i]=0; } } } }"},
		{"iv shadows scalar", "kernel k { double i; double a[]; for i = 0 .. 4 { a[i]=0; } }"},
		{"iv shadows array", "kernel k { double i[]; for i = 0 .. 4 { i[i]=0; } }"},
		{"redeclaration", "kernel k { double a[]; double a; for i = 0 .. 4 { a=0; } }"},
		{"comparison as value", "kernel k { double a[]; for i = 0 .. 4 { a[i] = (a[i] > 0); } }"},
		{"non-comparison cond", "kernel k { double a[]; for i = 0 .. 4 { if (a[i]) break; } }"},
	}
	for _, c := range cases {
		k, err := ParseKernel(c.src)
		if err != nil {
			continue // parse-level rejection also counts
		}
		if _, err := Lower(k); err == nil {
			t.Errorf("%s: expected lowering error", c.name)
		}
	}
}

func TestLowerFile(t *testing.T) {
	loops, err := LowerFile(`
kernel a lang=c { double x[]; for i = 0 .. 4 { x[i] = 0; } }
kernel b lang=fortran { double x[]; for i = 0 .. 4 { x[i] = 1; } }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 2 || loops[0].Name != "a" || loops[1].Name != "b" {
		t.Errorf("loops = %v", loops)
	}
}

func TestLoweredLoopsValidate(t *testing.T) {
	srcs := []string{
		`kernel k1 lang=c { double a[], b[], c[]; for i = 0 .. 100 { c[i] = a[i]*b[i] + a[i+1]*b[i+1]; } }`,
		`kernel k2 lang=fortran { double a[]; double s; for i = 0 .. 100 { s = s + a[2*i] / a[2*i+1]; } }`,
		`kernel k3 lang=c { double a[]; int p[]; for i = 0 .. n { if (p[i] != 0) { a[p[i]] = a[p[i]] + 1; } } }`,
		`kernel k4 lang=c { double a[]; double s; for i = 0 .. n { s = s + a[i]; if (s > 100) break; call log(); } }`,
	}
	for _, src := range srcs {
		l := mustLower(t, src)
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
	}
}

func TestLowerNestedLoops(t *testing.T) {
	l := mustLower(t, `
kernel mm lang=fortran entries=2 {
	double a[], b[], c[];
	for j = 0 .. 16 {
		for i = 0 .. 64 {
			c[i] = c[i] + a[i] * b[64*i];
		}
	}
}`)
	if l.NestLevel != 2 {
		t.Errorf("nest level = %d, want 2", l.NestLevel)
	}
	// entries attribute × outer trip.
	if l.Entries != 2*16 {
		t.Errorf("entries = %d, want 32", l.Entries)
	}
	if l.TripCount != 64 {
		t.Errorf("trip = %d, want 64 (innermost)", l.TripCount)
	}
}

func TestLowerTripleNest(t *testing.T) {
	l := mustLower(t, `
kernel deep lang=c {
	double a[];
	for k = 0 .. 4 {
		for j = 0 .. 8 {
			for i = 0 .. 128 {
				a[i] = a[i] + 1.0;
			}
		}
	}
}`)
	if l.NestLevel != 3 {
		t.Errorf("nest level = %d, want 3", l.NestLevel)
	}
	if l.Entries != 4*8 {
		t.Errorf("entries = %d, want 32", l.Entries)
	}
}

func TestLowerOuterIVIsInvariant(t *testing.T) {
	// Reading the outer IV inside the innermost body is legal: it is
	// loop-invariant there (becomes a parameter).
	l := mustLower(t, `
kernel rowsum lang=c {
	double a[], s[];
	for j = 0 .. 8 {
		for i = 0 .. 64 {
			s[i] = s[i] + a[i] + j;
		}
	}
}`)
	found := false
	for _, p := range l.Params {
		if p.Name == "j" {
			found = true
		}
	}
	if !found {
		t.Errorf("outer IV not materialized as a parameter:\n%s", l)
	}
}

func TestLowerNestedSymbolicOuter(t *testing.T) {
	l := mustLower(t, `
kernel symouter lang=c {
	double a[];
	for j = 0 .. m {
		for i = 0 .. 128 {
			a[i] = a[i] * 2.0;
		}
	}
}`)
	// Symbolic outer bound assumes a default entry multiplier.
	if l.Entries != 50 {
		t.Errorf("entries = %d, want 50", l.Entries)
	}
}

func TestLowerNestedErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"imperfect nest", `kernel k { double a[]; for j = 0 .. 8 { a[0] = 1.0; for i = 0 .. 8 { a[i] = 0.0; } } }`},
		{"outer iv shadows decl", `kernel k { double j; double a[]; for j = 0 .. 8 { for i = 0 .. 8 { a[i] = 0.0; } } }`},
		{"duplicate ivs", `kernel k { double a[]; for i = 0 .. 8 { for i = 0 .. 8 { a[i] = 0.0; } } }`},
		{"zero-trip outer", `kernel k { double a[]; for j = 5 .. 5 { for i = 0 .. 8 { a[i] = 0.0; } } }`},
	}
	for _, c := range cases {
		k, err := ParseKernel(c.src)
		if err != nil {
			continue
		}
		if _, err := Lower(k); err == nil {
			t.Errorf("%s: expected lowering error", c.name)
		}
	}
}
