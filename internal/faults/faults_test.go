package faults

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestCheckDisabledIsNil(t *testing.T) {
	var in Injector
	if in.Enabled() {
		t.Fatal("zero injector claims to be enabled")
	}
	for i := 0; i < 3; i++ {
		if err := in.Check("anything"); err != nil {
			t.Fatalf("disarmed check returned %v", err)
		}
	}
}

func TestNthTrigger(t *testing.T) {
	var in Injector
	if err := in.Install(Spec{Site: "s", Kind: KindError, Nth: 3}); err != nil {
		t.Fatal(err)
	}
	for call := 1; call <= 5; call++ {
		err := in.Check("s")
		if call == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("call 3: want injected error, got %v", err)
			}
		} else if err != nil {
			t.Fatalf("call %d: unexpected %v", call, err)
		}
	}
	if got := in.Fires("s"); got != 1 {
		t.Fatalf("fires = %d, want 1", got)
	}
}

func TestRateTriggerDeterministic(t *testing.T) {
	fire := func() []bool {
		var in Injector
		in.Install(Spec{Site: "s", Kind: KindError, Rate: 0.5, Seed: 7})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Check("s") != nil
		}
		return out
	}
	a, b := fire(), fire()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedule at call %d", i)
		}
	}
	hits := 0
	for _, h := range a {
		if h {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("rate 0.5 fired %d/%d times", hits, len(a))
	}
}

func TestCountCapsFires(t *testing.T) {
	var in Injector
	in.Install(Spec{Site: "s", Kind: KindError, Count: 2})
	errs := 0
	for i := 0; i < 10; i++ {
		if in.Check("s") != nil {
			errs++
		}
	}
	if errs != 2 {
		t.Fatalf("count=2 spec fired %d times", errs)
	}
}

func TestPanicKind(t *testing.T) {
	var in Injector
	in.Install(Spec{Site: "s", Kind: KindPanic, Nth: 1})
	defer func() {
		r := recover()
		ip, ok := r.(InjectedPanic)
		if !ok {
			t.Fatalf("recovered %v (%T), want InjectedPanic", r, r)
		}
		if ip.Site != "s" || ip.Call != 1 {
			t.Fatalf("InjectedPanic = %+v", ip)
		}
		pe := NewPanicError(r)
		if !errors.Is(pe, ErrInjected) {
			t.Error("PanicError over an injected panic should unwrap to ErrInjected")
		}
		if !strings.Contains(pe.Error(), "injected panic at s") {
			t.Errorf("PanicError message: %s", pe.Error())
		}
	}()
	in.Check("s")
	t.Fatal("unreachable: panic fault did not panic")
}

func TestLatencyKind(t *testing.T) {
	var in Injector
	in.Install(Spec{Site: "s", Kind: KindLatency, Nth: 1, Latency: 20 * time.Millisecond})
	start := time.Now()
	if err := in.Check("s"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("latency fault slept only %v", d)
	}
}

func TestTornWriter(t *testing.T) {
	var in Injector
	in.Install(Spec{Site: "w", Kind: KindTorn, Nth: 1, Bytes: 5})
	var buf bytes.Buffer
	w := in.WrapWriter("w", &buf)
	n, err := w.Write([]byte("hello world"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	if buf.String() != "hello" {
		t.Fatalf("torn prefix = %q", buf.String())
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after budget: %v", err)
	}
	// Second wrap at the site: the Nth=1 spec is spent, pass-through.
	var buf2 bytes.Buffer
	w2 := in.WrapWriter("w", &buf2)
	if _, err := w2.Write([]byte("fine")); err != nil || buf2.String() != "fine" {
		t.Fatalf("pass-through wrap failed: %v %q", err, buf2.String())
	}
}

func TestTornReader(t *testing.T) {
	var in Injector
	in.Install(Spec{Site: "r", Kind: KindTorn, Nth: 1, Bytes: 4})
	r := in.WrapReader("r", io.NopCloser(strings.NewReader("abcdefgh")))
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("truncated read err = %v", err)
	}
	if string(got) != "abcd" {
		t.Fatalf("truncated prefix = %q", got)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParseSpecs(t *testing.T) {
	specs, err := ParseSpecs("serve.predict=panic,nth=3; persist.write=torn,bytes=100,count=1;client.request=error,rate=0.25,seed=9;slow=latency,latency=50ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("parsed %d specs", len(specs))
	}
	want := []Spec{
		{Site: "serve.predict", Kind: KindPanic, Nth: 3},
		{Site: "persist.write", Kind: KindTorn, Bytes: 100, Count: 1},
		{Site: "client.request", Kind: KindError, Rate: 0.25, Seed: 9},
		{Site: "slow", Kind: KindLatency, Latency: 50 * time.Millisecond},
	}
	for i, s := range specs {
		if s != want[i] {
			t.Errorf("spec %d = %+v, want %+v", i, s, want[i])
		}
	}
	for _, bad := range []string{"noequals", "s=unknownkind", "s=error,nth=x", "s=error,mystery=1"} {
		if _, err := ParseSpecs(bad); err == nil {
			t.Errorf("ParseSpecs(%q) accepted", bad)
		}
	}
	// Unknown kinds are rejected at install, malformed ones at parse.
	var in Injector
	if err := in.Install(Spec{Site: "s", Kind: "bogus"}); err == nil {
		t.Error("Install accepted unknown kind")
	}
	if err := in.Install(Spec{Kind: KindError}); err == nil {
		t.Error("Install accepted empty site")
	}
}

func TestInstallFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "env.site=error,nth=1")
	defer Reset()
	if err := InstallFromEnv(); err != nil {
		t.Fatal(err)
	}
	if err := Check("env.site"); !errors.Is(err, ErrInjected) {
		t.Fatalf("env-armed site did not fire: %v", err)
	}
	if sites := Default.Sites(); len(sites) != 1 || sites[0] != "env.site" {
		t.Fatalf("Sites() = %v", sites)
	}
	Reset()
	t.Setenv(EnvVar, "bad spec")
	if err := InstallFromEnv(); err == nil {
		t.Fatal("malformed FAULTS accepted")
	}
	t.Setenv(EnvVar, "")
	if err := InstallFromEnv(); err != nil {
		t.Fatalf("empty FAULTS: %v", err)
	}
}

func TestPanicErrorRealPanicIsNotInjected(t *testing.T) {
	pe := NewPanicError("real bug")
	if errors.Is(pe, ErrInjected) {
		t.Fatal("real panic unwrapped to ErrInjected")
	}
	if !strings.Contains(pe.Error(), "real bug") {
		t.Errorf("message: %s", pe.Error())
	}
}
