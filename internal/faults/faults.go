// Package faults is the pipeline's controlled-failure layer: a
// deterministic, seeded fault injector that the serving engine, the worker
// pool, the artifact store, and the HTTP client consult at named sites, plus
// the PanicError type those subsystems use to contain real panics.
//
// Production binaries pay one atomic load per site while no faults are
// armed. Chaos tests arm faults two ways:
//
//   - in-process, via Install / Reset (unit and -race tests);
//   - across a process boundary, via the FAULTS environment variable
//     (InstallFromEnv, called by cmd/unrolld and cmd/labelgen), so chaos
//     harnesses can drive the real binaries.
//
// A spec names a site and a fault kind, and fires deterministically: on the
// Nth eligible call, at a seeded Bernoulli rate, or on every call, with an
// optional cap on total fires. The injectable kinds are panic, error,
// latency, and torn I/O (a Writer that fails after a byte budget and a
// ReadCloser that truncates early), which between them simulate the crash,
// overload, slow-peer, and partial-write failures the fault-tolerance layer
// must contain.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind selects what an armed fault does when it fires.
type Kind string

// Injectable fault kinds.
const (
	// KindPanic panics with an InjectedPanic value.
	KindPanic Kind = "panic"
	// KindError returns an error wrapping ErrInjected.
	KindError Kind = "error"
	// KindLatency sleeps for Spec.Latency, then proceeds normally.
	KindLatency Kind = "latency"
	// KindTorn arms the I/O wrappers: a Writer fails (and stops writing)
	// after Spec.Bytes bytes, a ReadCloser truncates after Spec.Bytes.
	// At a plain Check site it behaves like KindError.
	KindTorn Kind = "torn"
)

// ErrInjected is the sentinel every injected error wraps; tests assert
// errors.Is(err, ErrInjected) to tell injected failures from real ones.
var ErrInjected = errors.New("injected fault")

// InjectedPanic is the value a KindPanic fault panics with, so recovery
// layers (and tests) can tell an injected panic from a genuine one.
type InjectedPanic struct {
	Site string
	Call int // 1-based call number at the site that fired
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("faults: injected panic at %s (call %d)", p.Site, p.Call)
}

// Spec arms one fault at one site. Trigger selection, most specific wins:
// Nth > 0 fires on exactly the Nth eligible call; else Rate > 0 fires on a
// seeded coin flip per call; else every call fires. Count caps total fires
// (0 = unlimited).
type Spec struct {
	Site    string        // instrumentation site, e.g. "serve.predict"
	Kind    Kind          // what to do when the fault fires
	Nth     int           // fire on the Nth call at the site (1-based)
	Rate    float64       // per-call fire probability (used when Nth == 0)
	Count   int           // max fires; 0 = unlimited
	Seed    int64         // seeds the Rate coin; same seed, same schedule
	Latency time.Duration // KindLatency sleep
	Bytes   int64         // KindTorn byte budget before the wrapper fails
}

// armed is one installed spec plus its call/fire bookkeeping.
type armed struct {
	spec  Spec
	calls int
	fires int
	rng   *rand.Rand
}

// fire decides whether this call triggers, updating bookkeeping. The caller
// holds the injector lock.
func (a *armed) fire() (call int, ok bool) {
	a.calls++
	if a.spec.Count > 0 && a.fires >= a.spec.Count {
		return a.calls, false
	}
	switch {
	case a.spec.Nth > 0:
		ok = a.calls == a.spec.Nth
	case a.spec.Rate > 0:
		ok = a.rng.Float64() < a.spec.Rate
	default:
		ok = true
	}
	if ok {
		a.fires++
	}
	return a.calls, ok
}

// Injector holds armed faults. The zero value is ready to use; most code
// shares the package-level default through Check, Install, and the
// wrappers.
type Injector struct {
	armedCount atomic.Int64 // fast-path gate: 0 = nothing armed anywhere
	mu         sync.Mutex
	sites      map[string][]*armed
}

// Install arms a spec. Multiple specs may share a site; each keeps its own
// call count and trigger state.
func (in *Injector) Install(s Spec) error {
	if s.Site == "" {
		return errors.New("faults: spec has no site")
	}
	if err := validKind(s.Kind); err != nil {
		return err
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.sites == nil {
		in.sites = map[string][]*armed{}
	}
	in.sites[s.Site] = append(in.sites[s.Site], &armed{
		spec: s,
		rng:  rand.New(rand.NewSource(s.Seed)),
	})
	in.armedCount.Add(1)
	return nil
}

// Reset disarms every fault.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sites = nil
	in.armedCount.Store(0)
}

// Enabled reports whether any fault is armed; a single atomic load, so
// instrumentation sites cost nothing in production.
func (in *Injector) Enabled() bool { return in.armedCount.Load() > 0 }

// Check consults the injector at a site. It returns an injected error,
// panics with an InjectedPanic, sleeps and returns nil, or — the production
// path — returns nil immediately.
func (in *Injector) Check(site string) error {
	if !in.Enabled() {
		return nil
	}
	kind, call, latency, _, ok := in.match(site)
	if !ok {
		return nil
	}
	switch kind {
	case KindPanic:
		panic(InjectedPanic{Site: site, Call: call})
	case KindLatency:
		time.Sleep(latency)
		return nil
	default: // KindError, KindTorn
		return fmt.Errorf("faults: %w at %s (call %d)", ErrInjected, site, call)
	}
}

// match runs the trigger logic for one call at a site. The first firing
// spec wins.
func (in *Injector) match(site string) (kind Kind, call int, latency time.Duration, bytes int64, ok bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, a := range in.sites[site] {
		if c, fired := a.fire(); fired {
			return a.spec.Kind, c, a.spec.Latency, a.spec.Bytes, true
		}
	}
	return "", 0, 0, 0, false
}

// Fires reports how many times faults at a site have fired.
func (in *Injector) Fires(site string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, a := range in.sites[site] {
		n += a.fires
	}
	return n
}

// Default is the process-wide injector every instrumentation site consults.
var Default = &Injector{}

// Enabled reports whether any fault is armed in the default injector.
func Enabled() bool { return Default.Enabled() }

// Check consults the default injector at a site.
func Check(site string) error { return Default.Check(site) }

// Install arms a spec in the default injector.
func Install(s Spec) error { return Default.Install(s) }

// MustInstall is Install for tests; it panics on a malformed spec.
func MustInstall(s Spec) {
	if err := Install(s); err != nil {
		panic(err)
	}
}

// Reset disarms the default injector.
func Reset() { Default.Reset() }

// Fires reports the default injector's fire count at a site.
func Fires(site string) int { return Default.Fires(site) }

func validKind(k Kind) error {
	switch k {
	case KindPanic, KindError, KindLatency, KindTorn:
		return nil
	}
	return fmt.Errorf("faults: unknown kind %q (want panic, error, latency, or torn)", k)
}

// EnvVar is the environment variable InstallFromEnv reads.
const EnvVar = "FAULTS"

// ParseSpecs parses a FAULTS environment spec: semicolon-separated entries
// of the form
//
//	site=kind[,key=value...]
//
// with keys nth, rate, count, seed, latency (a time.Duration), and bytes.
// For example:
//
//	FAULTS="serve.predict=panic,nth=3;persist.write=torn,bytes=100,count=1"
func ParseSpecs(s string) ([]Spec, error) {
	var specs []Spec
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		site, rest, ok := strings.Cut(entry, "=")
		if !ok || site == "" {
			return nil, fmt.Errorf("faults: malformed entry %q (want site=kind[,key=value...])", entry)
		}
		fields := strings.Split(rest, ",")
		spec := Spec{Site: strings.TrimSpace(site), Kind: Kind(strings.TrimSpace(fields[0]))}
		if err := validKind(spec.Kind); err != nil {
			return nil, err
		}
		for _, f := range fields[1:] {
			key, val, ok := strings.Cut(strings.TrimSpace(f), "=")
			if !ok {
				return nil, fmt.Errorf("faults: malformed option %q in entry %q", f, entry)
			}
			var err error
			switch key {
			case "nth":
				spec.Nth, err = strconv.Atoi(val)
			case "rate":
				spec.Rate, err = strconv.ParseFloat(val, 64)
			case "count":
				spec.Count, err = strconv.Atoi(val)
			case "seed":
				spec.Seed, err = strconv.ParseInt(val, 10, 64)
			case "latency":
				spec.Latency, err = time.ParseDuration(val)
			case "bytes":
				spec.Bytes, err = strconv.ParseInt(val, 10, 64)
			default:
				return nil, fmt.Errorf("faults: unknown option %q in entry %q", key, entry)
			}
			if err != nil {
				return nil, fmt.Errorf("faults: bad %s in entry %q: %v", key, entry, err)
			}
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// InstallFromEnv arms the default injector from the FAULTS environment
// variable, so chaos harnesses can inject faults into the real binaries.
// It is a no-op when FAULTS is unset or empty.
func InstallFromEnv() error {
	v := os.Getenv(EnvVar)
	if v == "" {
		return nil
	}
	specs, err := ParseSpecs(v)
	if err != nil {
		return err
	}
	for _, s := range specs {
		if err := Install(s); err != nil {
			return err
		}
	}
	return nil
}

// Sites returns the sites with armed faults, sorted, for diagnostics.
func (in *Injector) Sites() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.sites))
	for s := range in.sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// PanicError is a panic converted to an error by a containment layer (the
// par pool, the serve workers): the recovered value plus the stack captured
// at the recovery point. It unwraps to ErrInjected when the panic was an
// injected one, so chaos tests can tell their own faults from real bugs.
type PanicError struct {
	Value any
	Stack []byte
}

// NewPanicError wraps a recovered panic value, capturing the current
// goroutine's stack. Call it from inside the deferred recover handler so
// the stack shows the panic's unwinding frames.
func NewPanicError(value any) *PanicError {
	return &PanicError{Value: value, Stack: debug.Stack()}
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// Unwrap lets errors.Is(err, ErrInjected) see through recovered injected
// panics.
func (e *PanicError) Unwrap() error {
	if _, ok := e.Value.(InjectedPanic); ok {
		return ErrInjected
	}
	return nil
}
