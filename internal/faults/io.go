package faults

import (
	"fmt"
	"io"
)

// WrapWriter consults the injector once and, if a torn fault fires at the
// site, returns a writer that accepts Bytes bytes and then fails every
// subsequent write — a torn write: the prefix lands, the tail never does.
// When nothing fires the original writer is returned untouched, so the
// production path adds one atomic load and no wrapping.
func WrapWriter(site string, w io.Writer) io.Writer { return Default.WrapWriter(site, w) }

// WrapWriter is the injector-scoped form of the package-level WrapWriter.
func (in *Injector) WrapWriter(site string, w io.Writer) io.Writer {
	if !in.Enabled() {
		return w
	}
	kind, call, _, bytes, ok := in.match(site)
	if !ok || kind != KindTorn {
		return w
	}
	return &tornWriter{w: w, site: site, call: call, budget: bytes}
}

type tornWriter struct {
	w      io.Writer
	site   string
	call   int
	budget int64
}

func (t *tornWriter) Write(p []byte) (int, error) {
	if t.budget <= 0 {
		return 0, t.err()
	}
	if int64(len(p)) <= t.budget {
		n, err := t.w.Write(p)
		t.budget -= int64(n)
		return n, err
	}
	n, err := t.w.Write(p[:t.budget])
	t.budget -= int64(n)
	if err != nil {
		return n, err
	}
	return n, t.err()
}

func (t *tornWriter) err() error {
	return fmt.Errorf("faults: %w at %s (call %d): torn write after budget exhausted", ErrInjected, t.site, t.call)
}

// WrapReader consults the injector once and, if a torn fault fires at the
// site, returns a reader that yields Bytes bytes and then reports an
// unexpected EOF — a truncated read, as from a half-written file.
func WrapReader(site string, r io.ReadCloser) io.ReadCloser { return Default.WrapReader(site, r) }

// WrapReader is the injector-scoped form of the package-level WrapReader.
func (in *Injector) WrapReader(site string, r io.ReadCloser) io.ReadCloser {
	if !in.Enabled() {
		return r
	}
	kind, call, _, bytes, ok := in.match(site)
	if !ok || kind != KindTorn {
		return r
	}
	return &tornReader{r: r, site: site, call: call, budget: bytes}
}

type tornReader struct {
	r      io.ReadCloser
	site   string
	call   int
	budget int64
}

func (t *tornReader) Read(p []byte) (int, error) {
	if t.budget <= 0 {
		return 0, fmt.Errorf("faults: %w at %s (call %d): truncated read", ErrInjected, t.site, t.call)
	}
	if int64(len(p)) > t.budget {
		p = p[:t.budget]
	}
	n, err := t.r.Read(p)
	t.budget -= int64(n)
	return n, err
}

func (t *tornReader) Close() error { return t.r.Close() }
