package machine

import (
	"testing"

	"metaopt/internal/ir"
)

func TestItanium2Valid(t *testing.T) {
	d := Itanium2()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.IssueWidth != 6 {
		t.Errorf("issue width = %d", d.IssueWidth)
	}
	if d.Units[UnitM] != 4 || d.Units[UnitF] != 2 {
		t.Errorf("units = %v", d.Units)
	}
}

func TestEmbeddedValid(t *testing.T) {
	if err := Embedded().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUnitFor(t *testing.T) {
	d := Itanium2()
	cases := []struct {
		code ir.Opcode
		want UnitKind
	}{
		{ir.OpLoad, UnitM},
		{ir.OpStore, UnitM},
		{ir.OpAdd, UnitI},
		{ir.OpCmp, UnitI},
		{ir.OpSel, UnitI},
		{ir.OpFAdd, UnitF},
		{ir.OpFMA, UnitF},
		{ir.OpMul, UnitF}, // integer multiply runs on the FP side
		{ir.OpBr, UnitB},
		{ir.OpCall, UnitB},
	}
	for _, c := range cases {
		if got := d.UnitFor(c.code); got != c.want {
			t.Errorf("UnitFor(%s) = %s, want %s", c.code, got, c.want)
		}
	}
}

func TestLatencies(t *testing.T) {
	d := Itanium2()
	fadd := &ir.Op{Code: ir.OpFAdd}
	if d.Latency(fadd) != d.FPLat {
		t.Errorf("fadd latency = %d", d.Latency(fadd))
	}
	intLd := &ir.Op{Code: ir.OpLoad, Mem: &ir.MemRef{Array: "a", Stride: 1, Elem: ir.ElemI64}}
	if d.Latency(intLd) != d.IntLoadLat {
		t.Errorf("int load latency = %d", d.Latency(intLd))
	}
	fpLd := &ir.Op{Code: ir.OpLoad, Mem: &ir.MemRef{Array: "a", Stride: 1, Elem: ir.ElemF64}}
	if d.Latency(fpLd) != d.FPLoadLat {
		t.Errorf("fp load latency = %d", d.Latency(fpLd))
	}
	ind := &ir.Op{Code: ir.OpLoad, Mem: &ir.MemRef{Array: "a", Indirect: true, Elem: ir.ElemF64}}
	if d.Latency(ind) != d.FPLoadLat+d.IndirectLoadPenalty {
		t.Errorf("indirect load latency = %d", d.Latency(ind))
	}
	strided := &ir.Op{Code: ir.OpLoad, Mem: &ir.MemRef{Array: "a", Stride: 16, Elem: ir.ElemF64}}
	if d.Latency(strided) != d.FPLoadLat+d.StridePenalty {
		t.Errorf("strided load latency = %d", d.Latency(strided))
	}
	negStride := &ir.Op{Code: ir.OpLoad, Mem: &ir.MemRef{Array: "a", Stride: -16, Elem: ir.ElemF64}}
	if d.Latency(negStride) != d.FPLoadLat+d.StridePenalty {
		t.Errorf("negative strided load latency = %d", d.Latency(negStride))
	}
}

func TestBlockCycles(t *testing.T) {
	d := Itanium2()
	if d.BlockCycles(ir.OpFAdd) != 1 {
		t.Error("fadd should be pipelined")
	}
	if d.BlockCycles(ir.OpFDiv) != d.DivBlock {
		t.Error("fdiv should block its unit")
	}
	if d.BlockCycles(ir.OpDiv) != d.DivBlock {
		t.Error("div should block its unit")
	}
}

func TestCodeBytes(t *testing.T) {
	d := Itanium2()
	if got := d.CodeBytes(3); got != 16 {
		t.Errorf("CodeBytes(3) = %d, want 16", got)
	}
	if got := d.CodeBytes(4); got != 32 {
		t.Errorf("CodeBytes(4) = %d, want 32", got)
	}
	if got := d.CodeBytes(0); got != 0 {
		t.Errorf("CodeBytes(0) = %d, want 0", got)
	}
}

func TestValidateCatchesBadDesc(t *testing.T) {
	d := Itanium2()
	d.IssueWidth = 0
	if err := d.Validate(); err == nil {
		t.Error("expected error for zero issue width")
	}
	d = Itanium2()
	d.Units[UnitM] = 0
	d.Units[UnitI] = 0
	d.Units[UnitF] = 0
	d.Units[UnitB] = 0
	if err := d.Validate(); err == nil {
		t.Error("expected error for insufficient units")
	}
	d = Itanium2()
	d.OpsPerBundle = 0
	if err := d.Validate(); err == nil {
		t.Error("expected error for bad bundle geometry")
	}
	d = Itanium2()
	d.FPRegs = 0
	if err := d.Validate(); err == nil {
		t.Error("expected error for bad register file")
	}
}

func TestUnitKindString(t *testing.T) {
	if UnitM.String() != "M" || UnitB.String() != "B" || UnitKind(9).String() != "?" {
		t.Error("UnitKind.String wrong")
	}
}

func TestWideValid(t *testing.T) {
	d := Wide()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.IssueWidth != 8 || d.Units[UnitF] != 4 {
		t.Errorf("wide geometry: issue %d, F %d", d.IssueWidth, d.Units[UnitF])
	}
	// Wide must not alias Itanium2's description.
	i2 := Itanium2()
	if i2.IssueWidth != 6 {
		t.Error("Wide mutated the Itanium2 description")
	}
}
