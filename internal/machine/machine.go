// Package machine describes the target processor to the schedulers and the
// timing simulator. The default description models an Itanium 2 class
// machine — a 6-issue in-order VLIW with explicit functional-unit classes,
// large rotating register files and predication — which is the platform the
// paper evaluates on. Alternative descriptions support retargeting
// experiments (the paper's motivation is cheap retuning after architectural
// changes).
package machine

import (
	"fmt"

	"metaopt/internal/ir"
)

// UnitKind classifies functional units, following Itanium conventions:
// M (memory), I (integer), F (floating point), B (branch).
type UnitKind int

// Functional unit kinds.
const (
	UnitM UnitKind = iota
	UnitI
	UnitF
	UnitB
	numUnits
)

// NumUnitKinds is the number of distinct unit kinds.
const NumUnitKinds = int(numUnits)

// String returns the unit letter.
func (u UnitKind) String() string {
	switch u {
	case UnitM:
		return "M"
	case UnitI:
		return "I"
	case UnitF:
		return "F"
	case UnitB:
		return "B"
	}
	return "?"
}

// Desc is a machine description.
type Desc struct {
	Name string

	// IssueWidth is the total number of operations issued per cycle.
	IssueWidth int

	// Units maps each unit kind to the number of available slots per cycle.
	Units [NumUnitKinds]int

	// Latencies per opcode (cycles from issue to result availability).
	IntLatency          int // simple integer ALU
	IntMulLat           int // integer multiply (runs on F units on Itanium)
	IntDivLat           int
	FPLat               int // FP add/sub/mul/FMA
	FPDivLat            int
	CmpLat              int
	SelLat              int
	ConvLat             int
	IntLoadLat          int
	FPLoadLat           int
	StoreLat            int
	CallCycles          int // fixed cost charged for an opaque call
	DivBlock            int // cycles a divide occupies its unit (unpipelined)
	IndirectLoadPenalty int // expected extra cycles for indirect (gather) loads
	StridePenalty       int // expected extra cycles per load with stride > StrideHitLimit
	StrideHitLimit      int // largest stride (in elements) assumed to stay in cache lines

	// Register files.
	IntRegs      int // general registers available to the loop
	FPRegs       int
	RotatingRegs int // registers available for modulo-scheduled variables
	SpillCost    int // cycles per spill/reload pair per iteration

	// Front end / code size.
	OpsPerBundle  int // operations per instruction bundle
	BundleBytes   int
	L1IBytes      int // instruction cache capacity available to a loop
	L1IMissCycles int // per-iteration penalty factor once a loop overflows L1I

	// Branching.
	BranchCycles      int // back-edge branch cost per unrolled body execution
	EarlyExitOverhead int // extra per-copy cycles for replicated side exits
}

// Itanium2 returns the default machine description: a 1.3 GHz Itanium 2
// class core (6-issue; 4 M, 2 I, 2 F, 3 B units; 128 GR / 128 FR of which
// about half are usable for loop values; 16 KB L1I).
func Itanium2() *Desc {
	d := &Desc{
		Name:       "itanium2",
		IssueWidth: 6,

		IntLatency: 1,
		IntMulLat:  4,
		IntDivLat:  24,
		FPLat:      4,
		FPDivLat:   16,
		CmpLat:     1,
		SelLat:     1,
		ConvLat:    4,
		IntLoadLat: 2,
		FPLoadLat:  6,
		StoreLat:   1,
		CallCycles: 24,
		DivBlock:   8,

		IndirectLoadPenalty: 9,
		StridePenalty:       4,
		StrideHitLimit:      4,

		// Of the 128 architectural registers per file, the compiler keeps
		// roughly half free for loop values (globals, stacked frames and
		// the software conventions consume the rest).
		IntRegs:      64,
		FPRegs:       64,
		RotatingRegs: 64,
		SpillCost:    3,

		OpsPerBundle:  3,
		BundleBytes:   16,
		L1IBytes:      16 * 1024,
		L1IMissCycles: 8,

		BranchCycles:      1,
		EarlyExitOverhead: 1,
	}
	d.Units[UnitM] = 4
	d.Units[UnitI] = 2
	d.Units[UnitF] = 2
	d.Units[UnitB] = 3
	return d
}

// Embedded returns a narrow 2-issue machine with small register files and a
// tiny instruction cache. It exists for retargeting experiments: the best
// unroll factors on this machine differ sharply from Itanium 2.
func Embedded() *Desc {
	d := &Desc{
		Name:       "embedded2",
		IssueWidth: 2,

		IntLatency: 1,
		IntMulLat:  3,
		IntDivLat:  20,
		FPLat:      3,
		FPDivLat:   18,
		CmpLat:     1,
		SelLat:     1,
		ConvLat:    2,
		IntLoadLat: 2,
		FPLoadLat:  3,
		StoreLat:   1,
		CallCycles: 16,
		DivBlock:   10,

		IndirectLoadPenalty: 12,
		StridePenalty:       6,
		StrideHitLimit:      2,

		IntRegs:      24,
		FPRegs:       16,
		RotatingRegs: 0,
		SpillCost:    4,

		OpsPerBundle:  1,
		BundleBytes:   4,
		L1IBytes:      4 * 1024,
		L1IMissCycles: 10,

		BranchCycles:      2,
		EarlyExitOverhead: 2,
	}
	d.Units[UnitM] = 1
	d.Units[UnitI] = 2
	d.Units[UnitF] = 1
	d.Units[UnitB] = 1
	return d
}

// Wide returns a hypothetical Itanium successor: 8-issue with four FP
// units, faster FP loads and a bigger I-cache. It exists for retargeting
// experiments — the paper's Section 4.5 scenario of retuning after an
// architectural change.
func Wide() *Desc {
	d := Itanium2()
	d.Name = "wide8"
	d.IssueWidth = 8
	d.Units[UnitM] = 4
	d.Units[UnitI] = 4
	d.Units[UnitF] = 4
	d.Units[UnitB] = 3
	d.FPLoadLat = 4
	d.L1IBytes = 32 * 1024
	d.IntRegs = 96
	d.FPRegs = 96
	d.RotatingRegs = 96
	return d
}

// UnitFor returns the functional unit class an operation executes on.
func (d *Desc) UnitFor(code ir.Opcode) UnitKind {
	switch code {
	case ir.OpLoad, ir.OpStore:
		return UnitM
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFMA, ir.OpFCmp, ir.OpConv, ir.OpMul, ir.OpDiv:
		// Integer multiply/divide execute on the FP side on Itanium.
		return UnitF
	case ir.OpBr, ir.OpCondBr, ir.OpCall:
		return UnitB
	default:
		return UnitI
	}
}

// Latency returns the cycles from issue of op until its result is available.
func (d *Desc) Latency(op *ir.Op) int {
	switch op.Code {
	case ir.OpAdd, ir.OpSub, ir.OpShl, ir.OpShr, ir.OpAnd, ir.OpOr, ir.OpXor:
		return d.IntLatency
	case ir.OpMul:
		return d.IntMulLat
	case ir.OpDiv:
		return d.IntDivLat
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFMA:
		return d.FPLat
	case ir.OpFDiv:
		return d.FPDivLat
	case ir.OpCmp, ir.OpFCmp:
		return d.CmpLat
	case ir.OpSel:
		return d.SelLat
	case ir.OpConv:
		return d.ConvLat
	case ir.OpLoad:
		return d.loadLatency(op)
	case ir.OpStore:
		return d.StoreLat
	case ir.OpBr, ir.OpCondBr:
		return d.BranchCycles
	case ir.OpCall:
		return d.CallCycles
	}
	return 1
}

func (d *Desc) loadLatency(op *ir.Op) int {
	base := d.IntLoadLat
	if op.Mem != nil && op.Mem.Elem.Float {
		base = d.FPLoadLat
	}
	if op.Mem != nil {
		if op.Mem.Indirect {
			base += d.IndirectLoadPenalty
		} else if abs(op.Mem.Stride) > d.StrideHitLimit {
			base += d.StridePenalty
		}
	}
	return base
}

// BlockCycles returns how many cycles op occupies its functional unit.
// Divides are unpipelined; everything else is fully pipelined.
func (d *Desc) BlockCycles(code ir.Opcode) int {
	if code == ir.OpDiv || code == ir.OpFDiv {
		return d.DivBlock
	}
	return 1
}

// CodeBytes returns the code footprint of n operations.
func (d *Desc) CodeBytes(n int) int {
	bundles := (n + d.OpsPerBundle - 1) / d.OpsPerBundle
	return bundles * d.BundleBytes
}

// Validate checks the description for obvious inconsistencies.
func (d *Desc) Validate() error {
	if d.IssueWidth < 1 {
		return fmt.Errorf("machine %s: issue width %d", d.Name, d.IssueWidth)
	}
	total := 0
	for _, n := range d.Units {
		if n < 0 {
			return fmt.Errorf("machine %s: negative unit count", d.Name)
		}
		total += n
	}
	if total < d.IssueWidth {
		return fmt.Errorf("machine %s: %d unit slots cannot sustain issue width %d", d.Name, total, d.IssueWidth)
	}
	if d.OpsPerBundle < 1 || d.BundleBytes < 1 {
		return fmt.Errorf("machine %s: bad bundle geometry", d.Name)
	}
	if d.IntRegs < 1 || d.FPRegs < 1 {
		return fmt.Errorf("machine %s: bad register files", d.Name)
	}
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
