package core

import (
	"reflect"
	"testing"

	"metaopt/internal/obs"
)

// stripNondeterministic drops or folds the counters whose values depend on
// scheduling or GC timing: the *.races counters count scheduling-dependent
// duplicate compiles (two workers racing on the same cache miss), and the
// sched.pool_hits/pool_misses split depends on when the GC clears the
// sync.Pool — their sum (total scheduler invocations) is deterministic, so
// it is kept as a derived counter.
func stripNondeterministic(counters map[string]int64) map[string]int64 {
	out := map[string]int64{}
	for name, v := range counters {
		switch name {
		case "sim.compile_cache.races", "sim.remainder_cache.races":
		case "sched.pool_hits", "sched.pool_misses":
			out["sched.pool_requests"] += v
		default:
			out[name] = v
		}
	}
	return out
}

// snapshotDeterministic runs the full pipeline at a fixed seed on a fresh
// telemetry slate and returns the deterministic counter values.
func snapshotDeterministic(t *testing.T, workers int) map[string]int64 {
	t.Helper()
	obs.Reset()
	runPipeline(t, workers)
	return stripNondeterministic(obs.Default.Snapshot().Counters)
}

// TestTelemetryDeterministicParallel is the manifest golden test: for a
// small fixed-seed run, every metric value the manifest reports (modulo
// wall-clock fields and race counters) is identical run to run and across
// worker-pool widths. Cache hit/miss accounting counts a miss only for the
// store that wins, so the split is stable even when workers race.
func TestTelemetryDeterministicParallel(t *testing.T) {
	first := snapshotDeterministic(t, 8)
	second := snapshotDeterministic(t, 8)
	serial := snapshotDeterministic(t, 1)

	if !reflect.DeepEqual(first, second) {
		t.Fatalf("same-seed runs disagree:\nfirst:  %v\nsecond: %v", first, second)
	}
	if !reflect.DeepEqual(first, serial) {
		t.Fatalf("parallel and serial metric values disagree:\nparallel: %v\nserial:   %v", first, serial)
	}

	// Golden structural facts for the Seed=41/Scale=0.05 pipeline run:
	// compilations happen (misses), the cache is re-hit during repeated
	// measurement (hits), and every pipeline stage left its footprint.
	for _, name := range []string{
		"sim.compile_cache.hits",
		"sim.compile_cache.misses",
		"sim.remainder_cache.hits",
		"sim.measurements",
		"sim.cycles_simulated",
		"sim.schedules_built",
		"core.loops_labeled",
		"core.speedup_folds",
		"ml.loocv_folds",
		"par.items_processed",
		"par.stages",
	} {
		if first[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0 (counters: %v)", name, first[name], first)
		}
	}
	// Hit rate must be meaningful: labeling measures each (loop, unroll)
	// pair once per compile, then the speedup folds re-measure the same
	// loops against a warm cache.
	hits, misses := first["sim.compile_cache.hits"], first["sim.compile_cache.misses"]
	if hitRate := float64(hits) / float64(hits+misses); hitRate <= 0 {
		t.Errorf("compile-cache hit rate = %v, want > 0", hitRate)
	}
}

// TestManifestDeterministic builds two full manifests from back-to-back
// same-seed runs and asserts the metric sections match exactly, so
// manifests are diffable across runs.
func TestManifestDeterministic(t *testing.T) {
	obs.Reset()
	runPipeline(t, 4)
	m1 := obs.BuildManifest("test", nil, 41, 4, nil)

	obs.Reset()
	runPipeline(t, 4)
	m2 := obs.BuildManifest("test", nil, 41, 4, nil)

	if !reflect.DeepEqual(stripNondeterministic(m1.Counters), stripNondeterministic(m2.Counters)) {
		t.Fatalf("manifest counters differ:\nfirst:  %v\nsecond: %v", m1.Counters, m2.Counters)
	}
	if !reflect.DeepEqual(m1.Gauges, m2.Gauges) {
		t.Fatalf("manifest gauges differ:\nfirst:  %v\nsecond: %v", m1.Gauges, m2.Gauges)
	}
	if len(m1.Phases) == 0 || len(m1.Stages) == 0 {
		t.Fatalf("manifest missing phases (%d) or stages (%d)", len(m1.Phases), len(m1.Stages))
	}
}
