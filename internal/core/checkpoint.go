package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"metaopt/internal/faults"
	"metaopt/internal/ir"
	"metaopt/internal/loopgen"
	"metaopt/internal/obs"
	"metaopt/internal/par"
	"metaopt/internal/sim"
	"metaopt/internal/transform"
)

var mBenchesResumed = obs.C("core.benchmarks_resumed")

// CheckpointVersion is the labeling checkpoint format this build writes.
const CheckpointVersion = 1

// LoopRecord is one loop's measured cycle vector inside a checkpoint.
// Only the raw measurements are stored; Best, Usable, and Kept are
// recomputed on resume so a checkpoint can never disagree with the
// labeling code that loads it.
type LoopRecord struct {
	Name   string  `json:"name"`
	Cycles []int64 `json:"cycles"` // index 1..MaxFactor; [0] unused
}

// Checkpoint is a partial labeling run: the configuration that produced it
// plus the cycle measurements of every completed benchmark. Because corpus
// generation is deterministic in the seed and each benchmark's noise
// stream is seeded by its name, resuming from a checkpoint yields output
// bit-identical to an uninterrupted run.
type Checkpoint struct {
	Version int    `json:"version"`
	Seed    int64  `json:"seed"`
	Runs    int    `json:"runs"`
	SWP     bool   `json:"swp"`
	Machine string `json:"machine"`
	// Workers records the parallelism of the run that wrote the checkpoint.
	// It is provenance only: worker count never affects which cycles are
	// measured (each benchmark's noise stream is seeded by its name), so
	// Compatible deliberately ignores it and a checkpoint written with
	// -workers 1 resumes cleanly under -workers 32.
	Workers    int                     `json:"workers,omitempty"`
	Benchmarks map[string][]LoopRecord `json:"benchmarks"`
}

// NewCheckpoint returns an empty checkpoint recording the run's
// configuration.
func NewCheckpoint(t *sim.Timer, seed int64) *Checkpoint {
	return &Checkpoint{
		Version:    CheckpointVersion,
		Seed:       seed,
		Runs:       t.Cfg.Runs,
		SWP:        t.Cfg.SWP,
		Machine:    t.Cfg.Mach.Name,
		Workers:    par.Limit(),
		Benchmarks: map[string][]LoopRecord{},
	}
}

// Compatible reports whether the checkpoint was produced by the same
// configuration as the run trying to resume from it. Resuming under a
// different seed, machine, or measurement setup would splice measurements
// from two different experiments into one dataset, so it is refused.
// Worker count (Checkpoint.Workers) is not label-affecting configuration
// and is never compared.
func (ck *Checkpoint) Compatible(t *sim.Timer, seed int64) error {
	if ck.Version > CheckpointVersion {
		return fmt.Errorf("core: checkpoint uses format v%d but this build understands up to v%d", ck.Version, CheckpointVersion)
	}
	switch {
	case ck.Seed != seed:
		return fmt.Errorf("core: checkpoint was collected with seed %d, this run uses %d", ck.Seed, seed)
	case ck.Runs != t.Cfg.Runs:
		return fmt.Errorf("core: checkpoint was collected with %d runs per timing, this run uses %d", ck.Runs, t.Cfg.Runs)
	case ck.SWP != t.Cfg.SWP:
		return fmt.Errorf("core: checkpoint was collected with swp=%v, this run uses swp=%v", ck.SWP, t.Cfg.SWP)
	case ck.Machine != t.Cfg.Mach.Name:
		return fmt.Errorf("core: checkpoint was collected on machine %q, this run targets %q", ck.Machine, t.Cfg.Mach.Name)
	}
	return nil
}

// CompatibleWith reports whether two checkpoints come from the same
// experiment configuration, the merge-side analogue of Compatible: shard
// checkpoints produced by different seeds, run counts, pipelining modes, or
// machines must never be spliced into one dataset. Worker count is ignored
// for the same reason Compatible ignores it.
func (ck *Checkpoint) CompatibleWith(other *Checkpoint) error {
	if other.Version > CheckpointVersion {
		return fmt.Errorf("core: checkpoint uses format v%d but this build understands up to v%d", other.Version, CheckpointVersion)
	}
	switch {
	case other.Seed != ck.Seed:
		return fmt.Errorf("core: checkpoint seed %d, want %d", other.Seed, ck.Seed)
	case other.Runs != ck.Runs:
		return fmt.Errorf("core: checkpoint has %d runs per timing, want %d", other.Runs, ck.Runs)
	case other.SWP != ck.SWP:
		return fmt.Errorf("core: checkpoint has swp=%v, want swp=%v", other.SWP, ck.SWP)
	case other.Machine != ck.Machine:
		return fmt.Errorf("core: checkpoint targets machine %q, want %q", other.Machine, ck.Machine)
	}
	return nil
}

// Merge folds another checkpoint's measurements into ck. The two must be
// config-compatible, and no benchmark may appear in both: a duplicate means
// the same shard of work is being merged twice, which Merge refuses rather
// than silently letting one copy win.
func (ck *Checkpoint) Merge(other *Checkpoint) error {
	if err := ck.CompatibleWith(other); err != nil {
		return err
	}
	for name := range other.Benchmarks {
		if _, dup := ck.Benchmarks[name]; dup {
			return fmt.Errorf("core: merge: benchmark %q already merged", name)
		}
	}
	for name, recs := range other.Benchmarks {
		ck.Benchmarks[name] = recs
	}
	return nil
}

// Encode writes the checkpoint as indented JSON. Map keys marshal sorted,
// so identical progress always encodes to identical bytes.
func (ck *Checkpoint) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ck)
}

// DecodeCheckpoint reads a checkpoint written by Encode.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var ck Checkpoint
	if err := json.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("core: decode checkpoint: %w", err)
	}
	if ck.Benchmarks == nil {
		ck.Benchmarks = map[string][]LoopRecord{}
	}
	return &ck, nil
}

// Progress wires periodic checkpointing into a labeling run. Checkpoint
// must be non-nil (start from NewCheckpoint, or from DecodeCheckpoint to
// resume); benchmarks already recorded in it are reconstituted instead of
// re-measured. Save, when set, is called with the updated checkpoint after
// every Every completed benchmarks — and once more on any labeling error,
// so an aborted run keeps its progress. Save must write atomically
// (internal/atomicio) for the checkpoint itself to be crash-safe.
type Progress struct {
	Checkpoint *Checkpoint
	Save       func(*Checkpoint) error
	Every      int // benchmarks between saves; <= 0 means 8
}

// CollectLabelsResumable is CollectLabels with checkpointing: completed
// benchmarks recorded in pr.Checkpoint are skipped (their stored cycle
// vectors are re-attached to the regenerated corpus), newly measured ones
// are added to it, and pr.Save persists progress along the way. The
// resulting Labels are bit-identical to an uninterrupted CollectLabels run
// because reconstitution recomputes every derived field from the stored
// cycles and the noise streams of the remaining benchmarks are independent,
// seeded by benchmark name. A nil pr degrades to plain CollectLabels.
func CollectLabelsResumable(c *loopgen.Corpus, t *sim.Timer, seed int64, pr *Progress) (*Labels, error) {
	sp := obs.Begin("labels.collect")
	defer sp.End()
	if pr != nil && pr.Checkpoint == nil {
		return nil, fmt.Errorf("core: Progress needs a Checkpoint (use NewCheckpoint or DecodeCheckpoint)")
	}
	every := 8
	if pr != nil && pr.Every > 0 {
		every = pr.Every
	}

	var (
		mu        sync.Mutex
		sinceSave int
	)
	perBench := make([][]*LoopLabel, len(c.Benchmarks))
	err := par.ForEach(len(c.Benchmarks), func(bi int) error {
		b := c.Benchmarks[bi]
		if pr != nil {
			mu.Lock()
			recs, done := pr.Checkpoint.Benchmarks[b.Name]
			mu.Unlock()
			if done {
				lls, err := reconstitute(b, t, recs)
				if err != nil {
					return err
				}
				perBench[bi] = lls
				mBenchesResumed.Inc()
				return nil
			}
		}
		if err := faults.Check("labels.benchmark"); err != nil {
			return fmt.Errorf("core: labeling %s: %w", b.Name, err)
		}
		var benchErr error
		lls := labelBenchmark(b, t, seed, &benchErr)
		if benchErr != nil {
			return benchErr
		}
		perBench[bi] = lls
		if pr != nil {
			mu.Lock()
			pr.Checkpoint.Benchmarks[b.Name] = records(lls)
			sinceSave++
			var saveErr error
			if pr.Save != nil && sinceSave >= every {
				saveErr = pr.Save(pr.Checkpoint)
				sinceSave = 0
			}
			mu.Unlock()
			if saveErr != nil {
				return fmt.Errorf("core: checkpoint: %w", saveErr)
			}
		}
		return nil
	})
	// Persist whatever completed — on success so the on-disk checkpoint is
	// whole, on failure so the work done before the error survives it.
	if pr != nil && pr.Save != nil && sinceSave > 0 {
		mu.Lock()
		saveErr := pr.Save(pr.Checkpoint)
		mu.Unlock()
		if saveErr != nil && err == nil {
			err = fmt.Errorf("core: checkpoint: %w", saveErr)
		}
	}
	if err != nil {
		return nil, err
	}

	lb := &Labels{ByLoop: map[*ir.Loop]*LoopLabel{}}
	kept := 0
	for bi := range c.Benchmarks {
		for _, ll := range perBench[bi] {
			lb.ByLoop[ll.Loop] = ll
			lb.Order = append(lb.Order, ll)
			if ll.Kept {
				kept++
			}
		}
	}
	mLoopsLabeled.Add(int64(len(lb.Order)))
	mLoopsKept.Add(int64(kept))
	return lb, nil
}

// records converts a benchmark's labels to checkpoint form.
func records(lls []*LoopLabel) []LoopRecord {
	out := make([]LoopRecord, len(lls))
	for i, ll := range lls {
		out[i] = LoopRecord{Name: ll.Loop.Name, Cycles: append([]int64(nil), ll.Cycles[:]...)}
	}
	return out
}

// reconstitute re-attaches a checkpointed benchmark's measurements to the
// regenerated corpus, recomputing Best/Usable/Kept from the stored cycles.
// Any mismatch with the corpus means the checkpoint came from a different
// generation (stale file, wrong seed slipped past Compatible) and is fatal:
// splicing it in would corrupt the dataset silently.
func reconstitute(b *loopgen.Benchmark, t *sim.Timer, recs []LoopRecord) ([]*LoopLabel, error) {
	if len(recs) != len(b.Loops) {
		return nil, fmt.Errorf("core: checkpoint records %d loops for %s, corpus has %d: stale checkpoint", len(recs), b.Name, len(b.Loops))
	}
	out := make([]*LoopLabel, 0, len(b.Loops))
	for i, l := range b.Loops {
		r := recs[i]
		if r.Name != l.Name {
			return nil, fmt.Errorf("core: checkpoint loop %q at %s[%d], corpus has %q: stale checkpoint", r.Name, b.Name, i, l.Name)
		}
		if len(r.Cycles) != transform.MaxFactor+1 {
			return nil, fmt.Errorf("core: checkpoint loop %s/%s has %d cycle entries, want %d", b.Name, r.Name, len(r.Cycles), transform.MaxFactor+1)
		}
		ll := &LoopLabel{Loop: l, Benchmark: b.Name}
		copy(ll.Cycles[:], r.Cycles)
		ll.Best = bestFactor(ll.Cycles)
		ll.Usable = ll.Cycles[1] >= t.Cfg.MinCycles
		ll.Kept = ll.Usable && passesFilter(ll.Cycles)
		out = append(out, ll)
	}
	return out, nil
}
