// Package core implements the paper's pipeline end to end: collecting
// labeled training data by timing every loop at every unroll factor
// (Section 4.4), filtering to measurable loops whose unrolling choice
// matters (Section 4.6), extracting and selecting features (Section 7),
// training and cross-validating classifiers (Section 6), and realizing
// whole-program speedups on the SPEC 2000 benchmarks under
// leave-one-benchmark-out training (Section 6.1).
package core

import (
	"fmt"
	"math/rand"

	"metaopt/internal/features"
	"metaopt/internal/ir"
	"metaopt/internal/loopgen"
	"metaopt/internal/ml"
	"metaopt/internal/obs"
	"metaopt/internal/sim"
	"metaopt/internal/transform"
)

var (
	mLoopsLabeled = obs.C("core.loops_labeled")
	mLoopsKept    = obs.C("core.loops_kept")
)

// FilterRatio is the paper's corpus filter: a loop is kept for training
// only when its best unroll factor beats the average over all factors by
// at least this ratio ("measurably better than the average (1.05x)").
const FilterRatio = 1.05

// LoopLabel is the measured outcome for one loop.
type LoopLabel struct {
	Loop      *ir.Loop
	Benchmark string
	Cycles    [transform.MaxFactor + 1]int64 // median measured cycles per factor
	Best      int                            // argmin over factors
	Usable    bool                           // cleared the instrumentation floor
	Kept      bool                           // passed the 1.05x filter too
}

// Labels holds the labeling pass over a corpus.
type Labels struct {
	ByLoop map[*ir.Loop]*LoopLabel
	Order  []*LoopLabel // corpus order, for determinism
}

// CollectLabels measures every loop in the corpus at every unroll factor
// (cfg.Runs noisy runs each, median taken), reproducing the paper's fully
// automated label collection. Benchmarks flagged as noisy get
// proportionally noisier measurements.
//
// Benchmarks are labeled concurrently — the paper's collection was "a
// completely unsupervised process" run in parallel across machines — over
// the shared worker pool, every worker compiling into the Timer's
// concurrency-safe sharded cache (so each (loop, unroll) pair is compiled
// once for the whole run, not once per worker). Compilation is
// deterministic and each benchmark's noise stream is seeded by its name,
// so results are bit-identical to a serial pass.
// Interrupted runs can be checkpointed and resumed bit-identically; see
// CollectLabelsResumable.
func CollectLabels(c *loopgen.Corpus, t *sim.Timer, seed int64) (*Labels, error) {
	return CollectLabelsResumable(c, t, seed, nil)
}

func labelBenchmark(b *loopgen.Benchmark, t *sim.Timer, seed int64, errOut *error) []*LoopLabel {
	rng := rand.New(rand.NewSource(seed ^ int64(hashString(b.Name))))
	out := make([]*LoopLabel, 0, len(b.Loops))
	for _, l := range b.Loops {
		ll := &LoopLabel{Loop: l, Benchmark: b.Name}
		for u := 1; u <= transform.MaxFactor; u++ {
			cyc, err := t.MeasureScaled(l, u, rng, b.NoiseScale)
			if err != nil {
				*errOut = fmt.Errorf("core: labeling %s/%s: %w", b.Name, l.Name, err)
				return nil
			}
			ll.Cycles[u] = cyc
		}
		ll.Best = bestFactor(ll.Cycles)
		ll.Usable = ll.Cycles[1] >= t.Cfg.MinCycles
		ll.Kept = ll.Usable && passesFilter(ll.Cycles)
		out = append(out, ll)
	}
	return out
}

func bestFactor(cycles [transform.MaxFactor + 1]int64) int {
	best := 1
	for u := 2; u <= transform.MaxFactor; u++ {
		if cycles[u] < cycles[best] {
			best = u
		}
	}
	return best
}

// passesFilter keeps loops whose optimal factor is measurably better than
// the average over all factors.
func passesFilter(cycles [transform.MaxFactor + 1]int64) bool {
	var sum float64
	for u := 1; u <= transform.MaxFactor; u++ {
		sum += float64(cycles[u])
	}
	avg := sum / transform.MaxFactor
	best := float64(cycles[bestFactor(cycles)])
	return best > 0 && avg/best >= FilterRatio
}

// Dataset builds the training set from the kept loops: the full 38-feature
// vector per loop plus its label and measured cycle vector.
func (lb *Labels) Dataset(t *sim.Timer) *ml.Dataset {
	d := &ml.Dataset{FeatureNames: features.Names[:]}
	for _, ll := range lb.Order {
		if !ll.Kept {
			continue
		}
		e := ml.Example{
			Name:      ll.Loop.Name,
			Benchmark: ll.Benchmark,
			Features:  features.Extract(ll.Loop, t.Cfg.Mach),
			Label:     ll.Best,
		}
		copy(e.Cycles[:], ll.Cycles[:])
		d.Examples = append(d.Examples, e)
	}
	return d
}

// Histogram returns the distribution of optimal unroll factors over the
// kept loops — Figure 3.
func (lb *Labels) Histogram() [transform.MaxFactor + 1]float64 {
	var hist [transform.MaxFactor + 1]float64
	n := 0
	for _, ll := range lb.Order {
		if ll.Kept {
			hist[ll.Best]++
			n++
		}
	}
	if n > 0 {
		for u := range hist {
			hist[u] /= float64(n)
		}
	}
	return hist
}

// KeptCount returns how many loops survived the filters.
func (lb *Labels) KeptCount() int {
	n := 0
	for _, ll := range lb.Order {
		if ll.Kept {
			n++
		}
	}
	return n
}

func hashString(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}
