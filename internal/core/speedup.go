package core

import (
	"fmt"
	"math"
	"math/rand"

	"metaopt/internal/loopgen"
	"metaopt/internal/ml"
	"metaopt/internal/ml/nn"
	"metaopt/internal/ml/svm"
	"metaopt/internal/obs"
	"metaopt/internal/par"
	"metaopt/internal/sim"
)

var mSpeedupFolds = obs.C("core.speedup_folds")

// SpeedupRow is one benchmark's outcome in Figure 4 or 5: the relative
// improvement of each method over the baseline heuristic.
type SpeedupRow struct {
	Benchmark string
	FP        bool
	NN        float64 // e.g. +0.05 = 5% faster than the baseline
	SVM       float64
	Oracle    float64
}

// SpeedupSummary aggregates Figure 4/5 outcomes.
type SpeedupSummary struct {
	Rows []SpeedupRow

	// Geometric-mean improvements over the whole suite and the FP subset.
	NNAll, SVMAll, OracleAll float64
	NNFP, SVMFP, OracleFP    float64

	// Wins counts benchmarks where the method beat the baseline.
	NNWins, SVMWins int
}

// SpeedupOptions bounds the experiment.
type SpeedupOptions struct {
	TrainCap int   // cap on SVM training-set size per fold (0 = no cap)
	Seed     int64 // evaluation-noise seed
}

// DefaultSpeedupOptions matches the full experiment with tractable SVM
// retraining per fold.
func DefaultSpeedupOptions() SpeedupOptions {
	return SpeedupOptions{TrainCap: 1500, Seed: 2}
}

// Speedups reproduces the Figure 4/5 protocol: for every SPEC 2000
// benchmark, train the classifiers on the corpus minus that benchmark's
// loops, compile each of its loops with every method's chosen factor, and
// compare whole-program runtimes (loop cycles plus the benchmark's serial
// fraction) against the baseline heuristic. The timer's configuration
// decides whether software pipelining is on (Figure 5) or off (Figure 4).
//
// The leave-one-benchmark-out folds are independent, so they run across
// the shared worker pool against the shared timer cache; every
// measurement's rng is seeded by (benchmark, method), and rows are written
// in benchmark-list order, so the summary is bit-identical to a serial
// run.
func Speedups(c *loopgen.Corpus, lb *Labels, d *ml.Dataset, featIdx []int,
	t *sim.Timer, opt SpeedupOptions) (*SpeedupSummary, error) {

	sp := obs.Begin("speedups.folds")
	defer sp.End()
	sel := d.Select(featIdx)
	m := t.Cfg.Mach
	ex := NewExtractor(m)
	base := HeuristicChoice(t.Cfg.SWP, m)
	benches := c.Spec2000()
	rows := make([]SpeedupRow, len(benches))
	mSpeedupFolds.Add(int64(len(benches)))

	err := par.ForEach(len(benches), func(bi int) error {
		b := benches[bi]
		train, _ := sel.WithoutBenchmark(b.Name)
		svmTrain := train
		if opt.TrainCap > 0 && train.Len() > opt.TrainCap {
			svmTrain = sample(train, opt.TrainCap, opt.Seed+int64(hashString(b.Name)))
		}
		nnC, err := (&nn.Trainer{}).Train(train)
		if err != nil {
			return fmt.Errorf("core: %s: NN: %w", b.Name, err)
		}
		svmC, err := (&svm.LSSVM{}).Train(svmTrain)
		if err != nil {
			return fmt.Errorf("core: %s: SVM: %w", b.Name, err)
		}

		// Methods are evaluated in a fixed order (the baseline first — the
		// serial fraction is anchored to it) so timing/debug output and any
		// future shared-rng refactor stay deterministic.
		methods := []struct {
			name string
			ch   Choice
		}{
			{"base", base},
			{"nn", ClassifierChoice(nnC, ex, featIdx)},
			{"svm", ClassifierChoice(svmC, ex, featIdx)},
			{"oracle", OracleChoice(lb, base)},
		}
		times := make(map[string]float64, len(methods))
		var serial float64
		for _, mth := range methods {
			rng := rand.New(rand.NewSource(opt.Seed ^ int64(hashString(b.Name+mth.name))))
			var total float64
			for _, l := range b.Loops {
				cyc, err := t.MeasureScaled(l, mth.ch(l), rng, b.NoiseScale)
				if err != nil {
					return fmt.Errorf("core: %s/%s: %w", b.Name, l.Name, err)
				}
				total += float64(cyc)
			}
			if mth.name == "base" {
				// The serial fraction is anchored to the baseline build.
				serial = total * b.SerialFrac / (1 - b.SerialFrac)
			}
			times[mth.name] = total
		}
		row := SpeedupRow{Benchmark: b.Name, FP: b.FP}
		baseTime := times["base"] + serial
		row.NN = baseTime/(times["nn"]+serial) - 1
		row.SVM = baseTime/(times["svm"]+serial) - 1
		row.Oracle = baseTime/(times["oracle"]+serial) - 1
		rows[bi] = row
		return nil
	})
	if err != nil {
		return nil, err
	}

	sum := &SpeedupSummary{Rows: rows}
	gm := newGeoMeans()
	for _, row := range rows {
		if row.NN > 0 {
			sum.NNWins++
		}
		if row.SVM > 0 {
			sum.SVMWins++
		}
		gm.add(row)
	}
	gm.finish(sum)
	return sum, nil
}

type geoMeans struct {
	nAll, nFP               float64
	lnNN, lnSVM, lnOr       float64
	lnNNFP, lnSVMFP, lnOrFP float64
}

func newGeoMeans() *geoMeans { return &geoMeans{} }

func (g *geoMeans) add(r SpeedupRow) {
	g.nAll++
	g.lnNN += ln1p(r.NN)
	g.lnSVM += ln1p(r.SVM)
	g.lnOr += ln1p(r.Oracle)
	if r.FP {
		g.nFP++
		g.lnNNFP += ln1p(r.NN)
		g.lnSVMFP += ln1p(r.SVM)
		g.lnOrFP += ln1p(r.Oracle)
	}
}

func (g *geoMeans) finish(s *SpeedupSummary) {
	if g.nAll > 0 {
		s.NNAll = expm1(g.lnNN / g.nAll)
		s.SVMAll = expm1(g.lnSVM / g.nAll)
		s.OracleAll = expm1(g.lnOr / g.nAll)
	}
	if g.nFP > 0 {
		s.NNFP = expm1(g.lnNNFP / g.nFP)
		s.SVMFP = expm1(g.lnSVMFP / g.nFP)
		s.OracleFP = expm1(g.lnOrFP / g.nFP)
	}
}

func ln1p(x float64) float64  { return math.Log1p(x) }
func expm1(x float64) float64 { return math.Expm1(x) }
