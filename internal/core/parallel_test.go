package core

import (
	"reflect"
	"testing"

	"metaopt/internal/loopgen"
	"metaopt/internal/ml"
	"metaopt/internal/ml/greedy"
	"metaopt/internal/ml/tree"
	"metaopt/internal/obs"
	"metaopt/internal/par"
	"metaopt/internal/sim"
)

// runPipeline executes the full evaluation pipeline — label collection,
// slow-path LOOCV, greedy selection, and the speedup folds — at the given
// worker-pool limit, and returns every output that must be bit-identical
// across limits.
func runPipeline(t *testing.T, workers int) (*Labels, []int, []greedy.Result, *SpeedupSummary) {
	t.Helper()
	restore := par.SetLimit(workers)
	defer restore()

	c, err := loopgen.Generate(loopgen.Options{Seed: 41, LoopsScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Runs = 5
	tm := sim.NewTimer(cfg)
	lb, err := CollectLabels(c, tm, 7)
	if err != nil {
		t.Fatal(err)
	}
	d := lb.Dataset(tm)
	if d.Len() < 4 {
		t.Fatalf("dataset too small to exercise the pipeline: %d examples", d.Len())
	}

	// Slow-path LOOCV: the CART trainer has no exact shortcut, so ml.LOOCV
	// fans its folds out over the pool.
	preds, err := ml.LOOCV(&tree.Trainer{MaxDepth: 3}, d)
	if err != nil {
		t.Fatal(err)
	}

	gr, err := greedy.Select(&tree.Trainer{MaxDepth: 3}, d, 3)
	if err != nil {
		t.Fatal(err)
	}

	sum, err := Speedups(c, lb, d, []int{0, 1, 2, 3, 4}, tm, SpeedupOptions{TrainCap: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return lb, preds, gr, sum
}

// TestParallelBitIdenticalToSerial is the engine's core guarantee: a run
// over the full worker pool produces byte-for-byte the same labels, LOOCV
// predictions, greedy selections, and Figure 4 speedup rows as a forced
// workers=1 run. Telemetry (internal/obs) is active throughout — the test
// also asserts the run was actually instrumented, so the guarantee is
// checked with telemetry enabled, not around it.
func TestParallelBitIdenticalToSerial(t *testing.T) {
	before := obs.Default.Snapshot().Counters
	lb1, preds1, gr1, sum1 := runPipeline(t, 1)
	lb8, preds8, gr8, sum8 := runPipeline(t, 8)
	after := obs.Default.Snapshot().Counters
	if after["sim.measurements"] <= before["sim.measurements"] ||
		after["par.items_processed"] <= before["par.items_processed"] {
		t.Fatalf("telemetry did not advance during the pipeline: before=%v after=%v", before, after)
	}

	if len(lb1.Order) != len(lb8.Order) {
		t.Fatalf("label counts differ: %d vs %d", len(lb1.Order), len(lb8.Order))
	}
	for i := range lb1.Order {
		a, b := lb1.Order[i], lb8.Order[i]
		if a.Benchmark != b.Benchmark || a.Best != b.Best || a.Cycles != b.Cycles ||
			a.Usable != b.Usable || a.Kept != b.Kept {
			t.Fatalf("label %d differs: %+v vs %+v", i, a, b)
		}
	}
	if !reflect.DeepEqual(preds1, preds8) {
		t.Fatalf("LOOCV predictions differ:\nserial:   %v\nparallel: %v", preds1, preds8)
	}
	if !reflect.DeepEqual(gr1, gr8) {
		t.Fatalf("greedy selections differ:\nserial:   %+v\nparallel: %+v", gr1, gr8)
	}
	if !reflect.DeepEqual(sum1, sum8) {
		t.Fatalf("speedup summaries differ:\nserial:   %+v\nparallel: %+v", sum1, sum8)
	}
}

// TestExtractorConcurrent exercises the shared feature-extraction cache
// from the pool (meaningful under -race).
func TestExtractorConcurrent(t *testing.T) {
	c, err := loopgen.Generate(loopgen.Options{Seed: 43, LoopsScale: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	ex := NewExtractor(cfg.Mach)
	var loops []*LoopLabel
	for _, b := range c.Benchmarks {
		for _, l := range b.Loops {
			loops = append(loops, &LoopLabel{Loop: l, Benchmark: b.Name})
		}
	}
	restore := par.SetLimit(8)
	defer restore()
	got := make([][]float64, len(loops)*2)
	if err := par.ForEach(len(got), func(i int) error {
		got[i] = ex.Vector(loops[i%len(loops)].Loop)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range loops {
		a, b := got[i], got[i+len(loops)]
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("loop %d: concurrent extractions disagree", i)
		}
	}
}
