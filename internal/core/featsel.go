package core

import (
	"fmt"
	"math/rand"
	"sort"

	"metaopt/internal/ml"
	"metaopt/internal/ml/greedy"
	"metaopt/internal/ml/mis"
	"metaopt/internal/ml/nn"
	"metaopt/internal/ml/svm"
)

// FeatureSelection reproduces Section 7: mutual-information ranking, greedy
// forward selection under each classifier, and the union the paper actually
// classifies with ("we used the union of the features in Table 3 and
// Table 4 to perform the classification experiments").
type FeatureSelection struct {
	MIS       []mis.Ranked    // all features, descending score (Table 3)
	GreedyNN  []greedy.Result // Table 4, near-neighbor column
	GreedySVM []greedy.Result // Table 4, SVM column
	Union     []int           // the feature set used for classification
}

// SelectOptions bounds the expensive parts of feature selection.
type SelectOptions struct {
	TopK      int // features per method (paper reports 5)
	SVMSample int // greedy-SVM subsample size (LS-SVM LOOCV is cubic)
	Seed      int64
}

// DefaultSelectOptions mirrors the paper's setup.
func DefaultSelectOptions() SelectOptions {
	return SelectOptions{TopK: 5, SVMSample: 350, Seed: 1}
}

// SelectFeatures runs the three feature-selection procedures on a dataset.
func SelectFeatures(d *ml.Dataset, opt SelectOptions) (*FeatureSelection, error) {
	if opt.TopK <= 0 {
		opt.TopK = 5
	}
	fs := &FeatureSelection{MIS: mis.Rank(d, 0)}

	gnn, err := greedy.Select(&nn.Trainer{OneNN: true}, d, opt.TopK)
	if err != nil {
		return nil, fmt.Errorf("core: greedy NN: %w", err)
	}
	fs.GreedyNN = gnn

	svmSet := d
	if opt.SVMSample > 0 && d.Len() > opt.SVMSample {
		svmSet = sample(d, opt.SVMSample, opt.Seed)
	}
	gsvm, err := greedy.Select(&svm.LSSVM{}, svmSet, opt.TopK)
	if err != nil {
		return nil, fmt.Errorf("core: greedy SVM: %w", err)
	}
	fs.GreedySVM = gsvm

	set := map[int]bool{}
	for i := 0; i < opt.TopK && i < len(fs.MIS); i++ {
		set[fs.MIS[i].Feature] = true
	}
	for _, r := range fs.GreedyNN {
		set[r.Feature] = true
	}
	for _, r := range fs.GreedySVM {
		set[r.Feature] = true
	}
	for f := range set {
		fs.Union = append(fs.Union, f)
	}
	sort.Ints(fs.Union)
	return fs, nil
}

// sample draws a deterministic random subset of the dataset.
func sample(d *ml.Dataset, n int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(d.Len())[:n]
	sort.Ints(idx)
	out := &ml.Dataset{FeatureNames: d.FeatureNames}
	for _, i := range idx {
		out.Examples = append(out.Examples, d.Examples[i])
	}
	return out
}
