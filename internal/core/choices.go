package core

import (
	"sync"

	"metaopt/internal/features"
	"metaopt/internal/heuristic"
	"metaopt/internal/ir"
	"metaopt/internal/machine"
	"metaopt/internal/ml"
)

// Choice picks an unroll factor for a loop at compile time.
type Choice func(l *ir.Loop) int

// HeuristicChoice wraps the hand-written baseline for the given mode.
func HeuristicChoice(swpOn bool, m *machine.Desc) Choice {
	if swpOn {
		return func(l *ir.Loop) int { return heuristic.SWP(l, m) }
	}
	return func(l *ir.Loop) int { return heuristic.NoSWP(l, m) }
}

// Extractor memoizes feature extraction per loop: the dependence-graph
// analyses behind the 38 features are far more expensive than a classifier
// lookup, and the same loop is classified by several methods. It is safe
// for concurrent use, so the parallel speedup folds share one cache.
type Extractor struct {
	Mach  *machine.Desc
	mu    sync.Mutex
	cache map[*ir.Loop][]float64
}

// NewExtractor returns a caching extractor for the machine.
func NewExtractor(m *machine.Desc) *Extractor {
	return &Extractor{Mach: m, cache: map[*ir.Loop][]float64{}}
}

// Vector returns the loop's full 38-feature vector, cached. Extraction is
// deterministic; when two workers race on a miss the first store wins and
// the loser adopts it. Extraction runs outside the lock so a slow loop
// does not serialize unrelated lookups.
func (e *Extractor) Vector(l *ir.Loop) []float64 {
	e.mu.Lock()
	v, ok := e.cache[l]
	e.mu.Unlock()
	if ok {
		return v
	}
	v = features.Extract(l, e.Mach)
	e.mu.Lock()
	if prev, ok := e.cache[l]; ok {
		v = prev
	} else {
		e.cache[l] = v
	}
	e.mu.Unlock()
	return v
}

// ClassifierChoice wraps a trained classifier: it extracts the loop's
// feature vector, projects it onto the selected features, and predicts.
func ClassifierChoice(c ml.Classifier, ex *Extractor, featIdx []int) Choice {
	return func(l *ir.Loop) int {
		full := ex.Vector(l)
		v := full
		if featIdx != nil {
			v = make([]float64, len(featIdx))
			for k, j := range featIdx {
				v[k] = full[j]
			}
		}
		u := c.Predict(v)
		if u < 1 {
			u = 1
		}
		if u > ml.NumClasses {
			u = ml.NumClasses
		}
		return u
	}
}

// OracleChoice answers the measured-best factor for labeled loops and
// falls back for anything unlabeled.
func OracleChoice(lb *Labels, fallback Choice) Choice {
	return func(l *ir.Loop) int {
		if ll, ok := lb.ByLoop[l]; ok {
			return ll.Best
		}
		return fallback(l)
	}
}

// FixedChoice always answers u.
func FixedChoice(u int) Choice {
	return func(*ir.Loop) int { return u }
}
