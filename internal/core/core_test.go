package core

import (
	"testing"

	"metaopt/internal/loopgen"
	"metaopt/internal/sim"
)

// testFixture builds a small corpus and its labels once per test run.
type fixture struct {
	corpus *loopgen.Corpus
	timer  *sim.Timer
	labels *Labels
}

func newFixture(t *testing.T, swpOn bool, scale float64) *fixture {
	t.Helper()
	c, err := loopgen.Generate(loopgen.Options{Seed: 11, LoopsScale: scale})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.SWP = swpOn
	cfg.Runs = 5 // keep tests fast; the paper uses 30
	tm := sim.NewTimer(cfg)
	lb, err := CollectLabels(c, tm, 3)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{corpus: c, timer: tm, labels: lb}
}

func TestCollectLabels(t *testing.T) {
	f := newFixture(t, false, 0.08)
	if len(f.labels.Order) != f.corpus.TotalLoops() {
		t.Fatalf("labels = %d, loops = %d", len(f.labels.Order), f.corpus.TotalLoops())
	}
	kept := f.labels.KeptCount()
	if kept == 0 {
		t.Fatal("no loops survived filtering")
	}
	if kept == len(f.labels.Order) {
		t.Error("filters rejected nothing — the 1.05x/50k filters should bite")
	}
	for _, ll := range f.labels.Order {
		if ll.Best < 1 || ll.Best > 8 {
			t.Fatalf("best factor %d", ll.Best)
		}
		for u := 1; u <= 8; u++ {
			if ll.Cycles[u] <= 0 {
				t.Fatalf("cycles[%d] = %d", u, ll.Cycles[u])
			}
		}
	}
}

func TestCollectLabelsDeterministicUnderConcurrency(t *testing.T) {
	c, err := loopgen.Generate(loopgen.Options{Seed: 31, LoopsScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Runs = 5
	a, err := CollectLabels(c, sim.NewTimer(cfg), 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CollectLabels(c, sim.NewTimer(cfg), 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Order) != len(b.Order) {
		t.Fatalf("order lengths differ: %d vs %d", len(a.Order), len(b.Order))
	}
	for i := range a.Order {
		la, lbl := a.Order[i], b.Order[i]
		if la.Loop != lbl.Loop || la.Best != lbl.Best || la.Cycles != lbl.Cycles {
			t.Fatalf("label %d differs across parallel runs: %+v vs %+v", i, la, lbl)
		}
	}
}

func TestHistogramShape(t *testing.T) {
	f := newFixture(t, false, 0.15)
	hist := f.labels.Histogram()
	var sum float64
	for _, v := range hist {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("histogram sums to %v", sum)
	}
	// Key paper shape: unrolling helps most loops (label 1 well under 50%),
	// and power-of-two factors dominate the non-trivial labels.
	if hist[1] > 0.5 {
		t.Errorf("rolled fraction = %.2f, unrolling should usually help", hist[1])
	}
	pow2 := hist[2] + hist[4] + hist[8]
	nonPow2 := hist[3] + hist[5] + hist[6] + hist[7]
	if pow2 <= nonPow2 {
		t.Errorf("power-of-two factors should dominate: pow2=%.2f others=%.2f", pow2, nonPow2)
	}
}

func TestDatasetFromLabels(t *testing.T) {
	f := newFixture(t, false, 0.08)
	d := f.labels.Dataset(f.timer)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != f.labels.KeptCount() {
		t.Errorf("dataset %d vs kept %d", d.Len(), f.labels.KeptCount())
	}
	if len(d.FeatureNames) != 38 {
		t.Errorf("feature names = %d", len(d.FeatureNames))
	}
}

func TestSelectFeatures(t *testing.T) {
	f := newFixture(t, false, 0.08)
	d := f.labels.Dataset(f.timer)
	opt := DefaultSelectOptions()
	opt.SVMSample = 120
	fs, err := SelectFeatures(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.MIS) != 38 {
		t.Errorf("MIS entries = %d", len(fs.MIS))
	}
	if len(fs.GreedyNN) != 5 || len(fs.GreedySVM) != 5 {
		t.Errorf("greedy lengths = %d/%d", len(fs.GreedyNN), len(fs.GreedySVM))
	}
	if len(fs.Union) < 5 || len(fs.Union) > 15 {
		t.Errorf("union size = %d", len(fs.Union))
	}
	// MIS must be sorted descending.
	for i := 1; i < len(fs.MIS); i++ {
		if fs.MIS[i].Score > fs.MIS[i-1].Score+1e-12 {
			t.Fatal("MIS not sorted")
		}
	}
}

func TestEvaluateTable2SmallCorpus(t *testing.T) {
	f := newFixture(t, false, 0.1)
	d := f.labels.Dataset(f.timer)
	opt := DefaultSelectOptions()
	opt.SVMSample = 100
	fs, err := SelectFeatures(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := EvaluateTable2(f.labels, d, fs.Union, f.timer, EvalOptions{SVMCap: 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range [][8]float64{tab.NNFrac, tab.SVMFrac, tab.HeurFrac} {
		var sum float64
		for _, v := range frac {
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("rank fractions sum to %v", sum)
		}
	}
	// The learned classifiers must beat the baseline heuristic at rank 1.
	if tab.NNAccuracy <= tab.HeurAccuracy {
		t.Errorf("NN %.2f should beat heuristic %.2f", tab.NNAccuracy, tab.HeurAccuracy)
	}
	if tab.SVMAccuracy <= tab.HeurAccuracy {
		t.Errorf("SVM %.2f should beat heuristic %.2f", tab.SVMAccuracy, tab.HeurAccuracy)
	}
	// Cost grows with rank.
	if tab.Cost[0] != 1 {
		t.Errorf("rank-1 cost = %v", tab.Cost[0])
	}
	if tab.Cost[7] <= tab.Cost[0] {
		t.Errorf("worst-rank cost = %v", tab.Cost[7])
	}
}

func TestSpeedupsSmallCorpus(t *testing.T) {
	f := newFixture(t, false, 0.08)
	d := f.labels.Dataset(f.timer)
	opt := DefaultSelectOptions()
	opt.SVMSample = 100
	fs, err := SelectFeatures(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	sOpt := DefaultSpeedupOptions()
	sOpt.TrainCap = 250
	sum, err := Speedups(f.corpus, f.labels, d, fs.Union, f.timer, sOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Rows) != 24 {
		t.Fatalf("rows = %d", len(sum.Rows))
	}
	// The oracle never does meaningfully worse than the baseline on
	// average, and the learned methods should land between zero and the
	// oracle overall.
	if sum.OracleAll <= 0 {
		t.Errorf("oracle overall = %.3f, want > 0", sum.OracleAll)
	}
	if sum.SVMAll > sum.OracleAll+0.02 {
		t.Errorf("SVM %.3f above oracle %.3f", sum.SVMAll, sum.OracleAll)
	}
	if sum.NNWins < 8 || sum.SVMWins < 8 {
		t.Errorf("wins too low: NN %d SVM %d", sum.NNWins, sum.SVMWins)
	}
	// FP benchmarks should benefit more than the overall average.
	if sum.OracleFP < sum.OracleAll {
		t.Errorf("oracle FP %.3f < overall %.3f", sum.OracleFP, sum.OracleAll)
	}
}

func TestChoices(t *testing.T) {
	f := newFixture(t, false, 0.05)
	l := f.corpus.Benchmarks[0].Loops[0]
	if u := FixedChoice(5)(l); u != 5 {
		t.Errorf("FixedChoice = %d", u)
	}
	h := HeuristicChoice(false, f.timer.Cfg.Mach)
	if u := h(l); u < 1 || u > 8 {
		t.Errorf("heuristic = %d", u)
	}
	or := OracleChoice(f.labels, FixedChoice(1))
	if u := or(l); u != f.labels.ByLoop[l].Best {
		t.Errorf("oracle = %d, want %d", u, f.labels.ByLoop[l].Best)
	}
}
