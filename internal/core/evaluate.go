package core

import (
	"fmt"

	"metaopt/internal/ml"
	"metaopt/internal/ml/nn"
	"metaopt/internal/ml/svm"
	"metaopt/internal/sim"
	"metaopt/internal/transform"
)

// Table2 is the paper's prediction-correctness table: for each method, the
// fraction of predictions whose factor ranked Nth-best in the measured
// ordering, plus the average runtime penalty of a rank-N choice.
type Table2 struct {
	NNFrac   [ml.NumClasses]float64
	SVMFrac  [ml.NumClasses]float64
	HeurFrac [ml.NumClasses]float64
	Cost     [ml.NumClasses]float64

	NNAccuracy   float64 // rank-1 fraction for NN
	SVMAccuracy  float64
	HeurAccuracy float64
	Examples     int
}

// EvalOptions bounds Table 2 evaluation.
type EvalOptions struct {
	// SVMCap caps the LOOCV set for the LS-SVM (0 = the full dataset;
	// cubic cost).
	SVMCap int
	Seed   int64
}

// EvaluateTable2 runs leave-one-out cross-validation for the near-neighbor
// classifier and the LS-SVM on the selected feature set, evaluates the
// baseline heuristic on the same loops, and assembles Table 2.
func EvaluateTable2(lb *Labels, d *ml.Dataset, featIdx []int, t *sim.Timer, opt EvalOptions) (*Table2, error) {
	sel := d.Select(featIdx)
	out := &Table2{Examples: sel.Len()}

	nnPreds, err := ml.LOOCV(&nn.Trainer{}, sel)
	if err != nil {
		return nil, fmt.Errorf("core: NN LOOCV: %w", err)
	}
	out.NNFrac, _ = ml.RankTable(sel, nnPreds)

	svmSet := sel
	if opt.SVMCap > 0 && sel.Len() > opt.SVMCap {
		svmSet = sample(sel, opt.SVMCap, opt.Seed+7)
	}
	svmPreds, err := ml.LOOCV(&svm.LSSVM{}, svmSet)
	if err != nil {
		return nil, fmt.Errorf("core: SVM LOOCV: %w", err)
	}
	out.SVMFrac, _ = ml.RankTable(svmSet, svmPreds)

	// The heuristic sees the loops themselves (it is not feature-based).
	heur := HeuristicChoice(t.Cfg.SWP, t.Cfg.Mach)
	var hFrac [ml.NumClasses]int
	total := 0
	for _, ll := range lb.Order {
		if !ll.Kept {
			continue
		}
		pred := heur(ll.Loop)
		r := rankOf(ll, pred) - 1
		if r >= ml.NumClasses {
			r = ml.NumClasses - 1
		}
		hFrac[r]++
		total++
	}
	for r := range hFrac {
		if total > 0 {
			out.HeurFrac[r] = float64(hFrac[r]) / float64(total)
		}
	}

	out.Cost = ml.CostByRank(sel)
	out.NNAccuracy = out.NNFrac[0]
	out.SVMAccuracy = out.SVMFrac[0]
	out.HeurAccuracy = out.HeurFrac[0]
	return out, nil
}

func rankOf(ll *LoopLabel, pred int) int {
	if pred < 1 || pred > transform.MaxFactor {
		return transform.MaxFactor
	}
	rank := 1
	for u := 1; u <= transform.MaxFactor; u++ {
		if ll.Cycles[u] < ll.Cycles[pred] {
			rank++
		}
	}
	return rank
}
