package colstore

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"metaopt/internal/atomicio"
	"metaopt/internal/ml"
)

// Writer streams a dataset into the columnar format one example at a time.
// Rows accumulate in a bounded column buffer and are sealed into an on-disk
// chunk every ChunkRows appends, so writing a corpus never holds more than
// one chunk of feature floats beyond what the caller already has — the
// append-only shape the distributed merge needs. Finish seals the last chunk
// and commits the chunk directory, counters, and CRC footer.
//
// The writer never seeks: the CRC and every directory offset are tracked as
// bytes go out, so it composes with atomicio.WriteFile's temp-file stream.
type Writer struct {
	w   io.Writer
	crc hash.Hash32
	off int64

	dim    int
	meta   Meta
	scratch []byte

	// current chunk accumulation, column-major
	names  []byte // uvarint-framed benchmark+name pairs, row order
	feats  [][]float64
	labels []int64
	cycles [Factors][]int64

	dir  []dirEnt
	rows int64
	done bool
}

type dirEnt struct {
	off  uint64
	rows uint64
}

// NewWriter writes the header and returns a writer appending to w. The
// feature names fix the column count; config is free-form provenance,
// fingerprinted into the header meta.
func NewWriter(w io.Writer, featureNames []string, config string) (*Writer, error) {
	if len(featureNames) == 0 {
		return nil, fmt.Errorf("colstore: no feature names — the column count comes from them")
	}
	cw := &Writer{
		w:   w,
		crc: crc32.New(crcTable),
		dim: len(featureNames),
		meta: Meta{
			FeatureNames: featureNames,
			Config:       config,
			Fingerprint:  ConfigFingerprint(config),
			Factors:      Factors,
			ChunkRows:    DefaultChunkRows,
		},
		feats: make([][]float64, len(featureNames)),
	}
	metaJSON, err := json.Marshal(&cw.meta)
	if err != nil {
		return nil, fmt.Errorf("colstore: encode meta: %w", err)
	}
	var head [headerFixed]byte
	binary.LittleEndian.PutUint32(head[0:], headMagic)
	binary.LittleEndian.PutUint32(head[4:], Version)
	binary.LittleEndian.PutUint64(head[8:], uint64(len(metaJSON)))
	if err := cw.write(head[:]); err != nil {
		return nil, err
	}
	if err := cw.write(metaJSON); err != nil {
		return nil, err
	}
	if err := cw.writeZeros(pad8(len(metaJSON))); err != nil {
		return nil, err
	}
	return cw, nil
}

// Append adds one example. Its feature width must match the header's
// feature names.
func (cw *Writer) Append(e *ml.Example) error {
	if cw.done {
		return fmt.Errorf("colstore: append after Finish")
	}
	if len(e.Features) != cw.dim {
		return fmt.Errorf("colstore: example %s has %d features, want %d", e.Name, len(e.Features), cw.dim)
	}
	cw.names = binary.AppendUvarint(cw.names, uint64(len(e.Benchmark)))
	cw.names = append(cw.names, e.Benchmark...)
	cw.names = binary.AppendUvarint(cw.names, uint64(len(e.Name)))
	cw.names = append(cw.names, e.Name...)
	for j, v := range e.Features {
		cw.feats[j] = append(cw.feats[j], v)
	}
	cw.labels = append(cw.labels, int64(e.Label))
	for u := 1; u <= Factors; u++ {
		cw.cycles[u-1] = append(cw.cycles[u-1], e.Cycles[u])
	}
	if len(cw.labels) >= DefaultChunkRows {
		return cw.seal()
	}
	return nil
}

// seal flushes the buffered rows as one chunk and records it in the
// directory.
func (cw *Writer) seal() error {
	rows := len(cw.labels)
	if rows == 0 {
		return nil
	}
	cw.dir = append(cw.dir, dirEnt{off: uint64(cw.off), rows: uint64(rows)})
	var head [chunkFixed]byte
	binary.LittleEndian.PutUint32(head[0:], chunkMagic)
	binary.LittleEndian.PutUint32(head[4:], uint32(rows))
	binary.LittleEndian.PutUint64(head[8:], uint64(len(cw.names)))
	if err := cw.write(head[:]); err != nil {
		return err
	}
	if err := cw.write(cw.names); err != nil {
		return err
	}
	if err := cw.writeZeros(pad8(len(cw.names))); err != nil {
		return err
	}
	for _, col := range cw.feats {
		if err := cw.writeFloats(col); err != nil {
			return err
		}
	}
	if err := cw.writeInts(cw.labels); err != nil {
		return err
	}
	for u := 0; u < Factors; u++ {
		if err := cw.writeInts(cw.cycles[u]); err != nil {
			return err
		}
	}
	cw.rows += int64(rows)
	cw.names = cw.names[:0]
	for j := range cw.feats {
		cw.feats[j] = cw.feats[j][:0]
	}
	cw.labels = cw.labels[:0]
	for u := range cw.cycles {
		cw.cycles[u] = cw.cycles[u][:0]
	}
	return nil
}

// Finish seals any buffered rows and writes the footer. The writer is
// unusable afterwards.
func (cw *Writer) Finish() error {
	if cw.done {
		return fmt.Errorf("colstore: double Finish")
	}
	if err := cw.seal(); err != nil {
		return err
	}
	cw.done = true
	var ent [16]byte
	for _, d := range cw.dir {
		binary.LittleEndian.PutUint64(ent[0:], d.off)
		binary.LittleEndian.PutUint64(ent[8:], d.rows)
		if err := cw.write(ent[:]); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint64(ent[0:], uint64(len(cw.dir)))
	binary.LittleEndian.PutUint64(ent[8:], uint64(cw.rows))
	if err := cw.write(ent[:]); err != nil {
		return err
	}
	// The CRC covers every byte written so far, including the directory.
	var tail [8]byte
	binary.LittleEndian.PutUint32(tail[0:], cw.crc.Sum32())
	binary.LittleEndian.PutUint32(tail[4:], tailMagic)
	_, err := cw.w.Write(tail[:])
	return err
}

// Rows returns how many examples have been sealed into chunks so far.
func (cw *Writer) Rows() int64 { return cw.rows }

func (cw *Writer) write(b []byte) error {
	if _, err := cw.w.Write(b); err != nil {
		return err
	}
	cw.crc.Write(b)
	cw.off += int64(len(b))
	return nil
}

var zeros [8]byte

func (cw *Writer) writeZeros(n int) error {
	if n == 0 {
		return nil
	}
	return cw.write(zeros[:n])
}

// writeFloats streams a float64 column as little-endian bytes through the
// reusable scratch buffer.
func (cw *Writer) writeFloats(col []float64) error {
	cw.grow(len(col) * 8)
	for i, v := range col {
		binary.LittleEndian.PutUint64(cw.scratch[i*8:], math.Float64bits(v))
	}
	return cw.write(cw.scratch[:len(col)*8])
}

func (cw *Writer) writeInts(col []int64) error {
	cw.grow(len(col) * 8)
	for i, v := range col {
		binary.LittleEndian.PutUint64(cw.scratch[i*8:], uint64(v))
	}
	return cw.write(cw.scratch[:len(col)*8])
}

func (cw *Writer) grow(n int) {
	if cap(cw.scratch) < n {
		cw.scratch = make([]byte, n)
	}
}

// WriteDataset writes a row-materialized dataset to path atomically
// (temp + fsync + rename, like every other artifact in the repo). Feature
// names are synthesized as f0..fN-1 when the dataset carries none.
func WriteDataset(path string, d *ml.Dataset, config string) error {
	if !d.HasRows() {
		return fmt.Errorf("colstore: dataset has no materialized feature rows")
	}
	names := d.FeatureNames
	if len(names) == 0 {
		names = make([]string, d.Dim())
		for j := range names {
			names[j] = fmt.Sprintf("f%d", j)
		}
	}
	return atomicio.WriteFile(path, func(w io.Writer) error {
		bw := bufio.NewWriterSize(w, 1<<20)
		cw, err := NewWriter(bw, names, config)
		if err != nil {
			return err
		}
		for i := range d.Examples {
			if err := cw.Append(&d.Examples[i]); err != nil {
				return err
			}
		}
		if err := cw.Finish(); err != nil {
			return err
		}
		return bw.Flush()
	})
}
