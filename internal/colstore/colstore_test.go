package colstore

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"metaopt/internal/ml"
)

// testDataset builds a deterministic dataset with enough rows to span
// multiple chunks when chunkRows is small, including awkward float values.
func testDataset(n, dim int) *ml.Dataset {
	d := &ml.Dataset{}
	for j := 0; j < dim; j++ {
		d.FeatureNames = append(d.FeatureNames, "feat_"+string(rune('a'+j)))
	}
	specials := []float64{0, -0, 1.5, math.Inf(1), math.SmallestNonzeroFloat64, -3.25e-200}
	for i := 0; i < n; i++ {
		e := ml.Example{
			Name:      "loop" + string(rune('0'+i%10)),
			Benchmark: "bench",
			Label:     1 + i%ml.NumClasses,
		}
		if i%7 == 0 {
			e.Benchmark = "" // empty strings must frame cleanly
		}
		for j := 0; j < dim; j++ {
			e.Features = append(e.Features, specials[(i*dim+j)%len(specials)]+float64(i)*0.125)
		}
		for u := 1; u <= Factors; u++ {
			e.Cycles[u] = int64(i*100 + u)
		}
		d.Examples = append(d.Examples, e)
	}
	return d
}

// encode writes d through the streaming writer into memory.
func encode(t testing.TB, d *ml.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, d.FeatureNames, "test-config")
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Examples {
		if err := w.Append(&d.Examples[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func assertEqual(t *testing.T, want, got *ml.Dataset) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("rows: got %d want %d", got.Len(), want.Len())
	}
	if len(got.FeatureNames) != len(want.FeatureNames) {
		t.Fatalf("feature names: got %d want %d", len(got.FeatureNames), len(want.FeatureNames))
	}
	for i := range want.Examples {
		w, g := &want.Examples[i], &got.Examples[i]
		if g.Name != w.Name || g.Benchmark != w.Benchmark || g.Label != w.Label || g.Cycles != w.Cycles {
			t.Fatalf("row %d metadata mismatch: got %+v want %+v", i, g, w)
		}
		for j := range w.Features {
			if math.Float64bits(g.Features[j]) != math.Float64bits(w.Features[j]) {
				t.Fatalf("row %d feature %d: got %x want %x", i, j,
					math.Float64bits(g.Features[j]), math.Float64bits(w.Features[j]))
			}
		}
	}
}

func TestRoundTripBytes(t *testing.T) {
	d := testDataset(300, 5)
	img := encode(t, d)
	r, err := OpenBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Rows() != 300 {
		t.Fatalf("rows = %d", r.Rows())
	}
	if m := r.Meta(); m.Config != "test-config" || m.Fingerprint != ConfigFingerprint("test-config") {
		t.Fatalf("meta config/fingerprint mismatch: %+v", m)
	}
	assertEqual(t, d, r.Materialize())

	// The out-of-core view serves the same values through the columns.
	lite := r.Dataset()
	if lite.HasRows() {
		t.Fatal("lite dataset materialized rows")
	}
	if err := lite.Validate(); err != nil {
		t.Fatal(err)
	}
	cols := lite.UsableCols()
	if cols == nil {
		t.Fatal("lite dataset has no usable columns")
	}
	for i := range d.Examples {
		for j := range d.Examples[i].Features {
			if math.Float64bits(cols.At(i, j)) != math.Float64bits(d.Examples[i].Features[j]) {
				t.Fatalf("column value (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestRoundTripFileMmap(t *testing.T) {
	d := testDataset(100, 3)
	path := filepath.Join(t.TempDir(), "ds.mocs")
	if err := WriteDataset(path, d, "cfg"); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	assertEqual(t, d, got)

	// Zero-copy open: values must survive reads after the Reader closes a
	// *different* reader, and the materialized copy must survive Close.
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	lite := r.Dataset()
	if lite.UsableCols() == nil {
		t.Fatal("no usable columns on mmap dataset")
	}
	keep := r.Materialize()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	assertEqual(t, d, keep)
}

func TestMultiChunk(t *testing.T) {
	// More rows than one chunk holds: the directory must record several
	// chunks and the reassembled row order must be exact.
	d := testDataset(DefaultChunkRows+513, 2)
	img := encode(t, d)
	r, err := OpenBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n := r.Dataset().UsableCols().NumChunks(); n != 2 {
		t.Fatalf("chunks = %d, want 2", n)
	}
	assertEqual(t, d, r.Materialize())
}

func TestRejectsCorruption(t *testing.T) {
	img := encode(t, testDataset(50, 4))
	cases := map[string][]byte{
		"empty":      {},
		"truncated":  img[:len(img)/2],
		"torn tail":  img[:len(img)-3],
		"no header":  img[4:],
		"one short":  img[:len(img)-1],
		"just magic": img[:4],
	}
	for name, b := range cases {
		if _, err := OpenBytes(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Any single flipped byte must fail the CRC (or a structural check).
	for _, off := range []int{0, 5, 17, len(img) / 2, len(img) - 20, len(img) - 5} {
		mut := append([]byte(nil), img...)
		mut[off] ^= 0x40
		if _, err := OpenBytes(mut); err == nil {
			t.Errorf("flip at %d: accepted", off)
		}
	}
}

func TestRejectsTornAtomicWrite(t *testing.T) {
	// A crash mid-write leaves either no file or the old one — never a
	// torn new file — because the writer streams through atomicio.
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.mocs")
	d := testDataset(20, 2)
	if err := WriteDataset(path, d, ""); err != nil {
		t.Fatal(err)
	}
	if err := WriteDataset(path, testDataset(30, 2), ""); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 30 {
		t.Fatalf("rows = %d, want 30", got.Len())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("%d directory entries, want 1 (no temp litter)", len(ents))
	}
}

func FuzzColstoreLoad(f *testing.F) {
	f.Add(encode(f, testDataset(10, 2)))
	f.Add([]byte("MOCS"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := OpenBytes(b)
		if err != nil {
			return
		}
		// A file that parses must serve a self-consistent dataset.
		d := r.Materialize()
		if d.Len() > 0 {
			if err := d.Validate(); err != nil {
				t.Fatalf("parsed file fails validation: %v", err)
			}
		}
		r.Close()
	})
}
