package colstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"unsafe"

	"metaopt/internal/ml"
)

// Reader is an opened columnar dataset file. Feature columns are served
// zero-copy as views over the underlying bytes — the mmap'd file on Linux, a
// read-into-memory buffer elsewhere — while the small per-example metadata
// (names, labels, cycles) is decoded onto the heap once at open. Column
// views stay valid until Close.
type Reader struct {
	data   []byte
	mapped bool
	meta   Meta
	rows   int

	cols     *ml.Columns
	examples []ml.Example // metadata only: Features nil
	closed   bool
}

// Open maps the file at path and validates it end to end: header magic and
// version, meta JSON, chunk directory, per-chunk bounds, and the footer CRC
// over the whole body. A truncated or torn file fails here, never later.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("colstore: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("colstore: %w", err)
	}
	data, mapped, err := mmapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("colstore: mmap %s: %w", path, err)
	}
	if !mapped {
		// No mmap on this platform: fall back to one aligned read.
		data = alignedBuf(int(st.Size()))
		if _, err := io.ReadFull(f, data); err != nil {
			return nil, fmt.Errorf("colstore: read %s: %w", path, err)
		}
	}
	r, err := parse(data, mapped)
	if err != nil {
		if mapped {
			munmap(data)
		}
		return nil, fmt.Errorf("colstore: %s: %w", path, err)
	}
	return r, nil
}

// OpenBytes parses an in-memory image of a columnar file (tests, fuzzing).
// The bytes are copied into an 8-byte-aligned buffer when needed, since the
// zero-copy column views reinterpret them as float64/int64 slabs.
func OpenBytes(b []byte) (*Reader, error) {
	if len(b) > 0 && uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		ab := alignedBuf(len(b))
		copy(ab, b)
		b = ab
	}
	r, err := parse(b, false)
	if err != nil {
		return nil, fmt.Errorf("colstore: %w", err)
	}
	return r, nil
}

// alignedBuf allocates n bytes guaranteed to start on an 8-byte boundary by
// carving them out of a []uint64.
func alignedBuf(n int) []byte {
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(words))), n)
}

// parse validates the image and decodes metadata. Every offset and length is
// bounds-checked before use — a corrupt file must produce an error, not a
// panic — and the footer CRC is verified first so all later checks run over
// bytes known to be exactly what the writer emitted.
func parse(data []byte, mapped bool) (*Reader, error) {
	if len(data) < headerFixed+footerFixed {
		return nil, fmt.Errorf("file too short (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data[len(data)-4:]) != tailMagic {
		return nil, fmt.Errorf("missing tail magic: truncated or torn file")
	}
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-8:])
	if got := crc32.Checksum(data[:len(data)-8], crcTable); got != wantCRC {
		return nil, fmt.Errorf("crc mismatch: file %08x, computed %08x", wantCRC, got)
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != headMagic {
		return nil, fmt.Errorf("bad magic %08x", m)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != Version {
		return nil, fmt.Errorf("unsupported version %d", v)
	}
	metaLen := binary.LittleEndian.Uint64(data[8:])
	if metaLen > uint64(len(data)-headerFixed-footerFixed) {
		return nil, fmt.Errorf("meta length %d out of bounds", metaLen)
	}
	r := &Reader{data: data, mapped: mapped}
	if err := json.Unmarshal(data[headerFixed:headerFixed+int(metaLen)], &r.meta); err != nil {
		return nil, fmt.Errorf("decode meta: %w", err)
	}
	dim := len(r.meta.FeatureNames)
	if dim == 0 {
		return nil, fmt.Errorf("meta has no feature names")
	}
	if r.meta.Factors != Factors {
		return nil, fmt.Errorf("file has %d cycles columns, want %d", r.meta.Factors, Factors)
	}

	totalRows := binary.LittleEndian.Uint64(data[len(data)-16:])
	chunkCount := binary.LittleEndian.Uint64(data[len(data)-24:])
	dirLen := chunkCount * 16
	dirOff := uint64(len(data)) - footerFixed - dirLen
	if chunkCount > uint64(len(data))/16 || dirOff > uint64(len(data)) {
		return nil, fmt.Errorf("chunk count %d out of bounds", chunkCount)
	}
	if totalRows > uint64(len(data))/8 {
		return nil, fmt.Errorf("row count %d out of bounds", totalRows)
	}

	r.rows = int(totalRows)
	r.examples = make([]ml.Example, 0, r.rows)
	labels := make([]int, 0, r.rows)
	chunks := make([]ml.ColChunk, 0, chunkCount)
	start := 0
	for c := uint64(0); c < chunkCount; c++ {
		off := binary.LittleEndian.Uint64(data[dirOff+c*16:])
		rows := binary.LittleEndian.Uint64(data[dirOff+c*16+8:])
		ch, err := parseChunk(data[:dirOff], off, rows, dim, start, r)
		if err != nil {
			return nil, fmt.Errorf("chunk %d: %w", c, err)
		}
		chunks = append(chunks, ch)
		for _, l := range r.examples[start : start+int(rows)] {
			labels = append(labels, l.Label)
		}
		start += int(rows)
	}
	if start != r.rows {
		return nil, fmt.Errorf("chunks hold %d rows, footer says %d", start, r.rows)
	}
	cols, err := ml.NewColumns(dim, labels, chunks)
	if err != nil {
		return nil, err
	}
	r.cols = cols
	return r, nil
}

// parseChunk validates one chunk at off, decodes its name/label/cycles
// metadata into r.examples, and returns the zero-copy feature column views.
func parseChunk(data []byte, off, rows uint64, dim, start int, r *Reader) (ml.ColChunk, error) {
	var ch ml.ColChunk
	if off%8 != 0 || off+chunkFixed > uint64(len(data)) {
		return ch, fmt.Errorf("offset %d out of bounds", off)
	}
	if m := binary.LittleEndian.Uint32(data[off:]); m != chunkMagic {
		return ch, fmt.Errorf("bad chunk magic %08x", m)
	}
	n := uint64(binary.LittleEndian.Uint32(data[off+4:]))
	if n != rows || n == 0 {
		return ch, fmt.Errorf("chunk says %d rows, directory says %d", n, rows)
	}
	namesLen := binary.LittleEndian.Uint64(data[off+8:])
	slabBytes := rows * 8
	// Bound-check the chunk body piecewise with division, so no adversarial
	// length can overflow the arithmetic: names blob + padding, then
	// dim feature slabs + label slab + Factors cycles slabs.
	rem := uint64(len(data)) - off - chunkFixed
	pad := uint64(pad8(int(namesLen % 8)))
	if namesLen > rem || namesLen+pad > rem {
		return ch, fmt.Errorf("chunk body out of bounds")
	}
	rem -= namesLen + pad
	if slabBytes > rem || uint64(dim+1+Factors) > rem/slabBytes {
		return ch, fmt.Errorf("chunk body out of bounds")
	}

	names := data[off+chunkFixed : off+chunkFixed+namesLen]
	p := off + chunkFixed + namesLen + pad
	ch.Start = start
	ch.Rows = int(rows)
	ch.Feats = make([][]float64, dim)
	for j := 0; j < dim; j++ {
		ch.Feats[j] = float64View(data[p : p+slabBytes])
		p += slabBytes
	}
	labelCol := int64View(data[p : p+slabBytes])
	p += slabBytes
	var cycleCols [Factors][]int64
	for u := 0; u < Factors; u++ {
		cycleCols[u] = int64View(data[p : p+slabBytes])
		p += slabBytes
	}

	for i := 0; i < int(rows); i++ {
		bench, rest, err := readString(names)
		if err != nil {
			return ch, fmt.Errorf("row %d benchmark: %w", i, err)
		}
		name, rest, err := readString(rest)
		if err != nil {
			return ch, fmt.Errorf("row %d name: %w", i, err)
		}
		names = rest
		e := ml.Example{Name: name, Benchmark: bench, Label: int(labelCol[i])}
		if e.Label < 1 || e.Label > ml.NumClasses {
			return ch, fmt.Errorf("row %d has label %d", i, e.Label)
		}
		for u := 1; u <= Factors; u++ {
			e.Cycles[u] = cycleCols[u-1][i]
		}
		r.examples = append(r.examples, e)
	}
	if len(names) != 0 {
		return ch, fmt.Errorf("%d trailing bytes in names blob", len(names))
	}
	return ch, nil
}

// readString decodes one uvarint-framed string and returns the remainder.
func readString(b []byte) (string, []byte, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 || l > uint64(len(b)-n) {
		return "", nil, fmt.Errorf("bad string frame")
	}
	return string(b[n : n+int(l)]), b[n+int(l):], nil
}

// float64View reinterprets 8-aligned little-endian bytes as a float64 slice
// without copying. Only correct on little-endian hosts — every platform this
// repo targets — and for b produced at 8-byte file offsets over an aligned
// base, which parse guarantees.
func float64View(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func int64View(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// Meta returns the file's self-description.
func (r *Reader) Meta() Meta { return r.meta }

// Rows returns the total example count.
func (r *Reader) Rows() int { return r.rows }

// Dataset returns the out-of-core view: examples carry name, benchmark,
// label, and cycles, but no feature rows — the attached column backing,
// aliasing the opened file, is the sole feature storage. The dataset is
// valid only until Close; training paths that need materialized rows must
// use Materialize instead.
func (r *Reader) Dataset() *ml.Dataset {
	return &ml.Dataset{
		Examples:     r.examples,
		FeatureNames: append([]string(nil), r.meta.FeatureNames...),
		Cols:         r.cols,
	}
}

// Materialize returns a fully heap-resident dataset: feature rows copied out
// of the file plus a heap column backing, so it outlives Close. This is the
// load path for ordinary-sized corpora — one sequential pass over the file.
func (r *Reader) Materialize() *ml.Dataset {
	d := &ml.Dataset{
		Examples:     make([]ml.Example, r.rows),
		FeatureNames: append([]string(nil), r.meta.FeatureNames...),
	}
	copy(d.Examples, r.examples)
	dim := r.cols.Dim
	slab := make([]float64, r.rows*dim)
	for i := range d.Examples {
		d.Examples[i].Features = slab[i*dim : (i+1)*dim : (i+1)*dim]
	}
	for c := 0; c < r.cols.NumChunks(); c++ {
		ch := r.cols.Chunk(c)
		for j, col := range ch.Feats {
			for k, v := range col {
				d.Examples[ch.Start+k].Features[j] = v
			}
		}
	}
	d.BuildColumns()
	return d
}

// Close releases the mapping. Column views handed out by Dataset become
// invalid; datasets from Materialize are unaffected.
func (r *Reader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.mapped {
		return munmap(r.data)
	}
	return nil
}

// Load opens path, materializes the dataset onto the heap, and closes the
// mapping — the drop-in replacement for JSON LoadDataset.
func Load(path string) (*ml.Dataset, error) {
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return r.Materialize(), nil
}
