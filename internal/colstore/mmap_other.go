//go:build !linux

package colstore

import "os"

// mmapFile reports mapping unavailable on this platform; Open falls back to
// reading the file into an aligned heap buffer. Column views still work —
// they just are not demand-paged.
func mmapFile(f *os.File, size int64) ([]byte, bool, error) {
	return nil, false, nil
}

func munmap(b []byte) error { return nil }
