// Package colstore is the columnar on-disk dataset format: an append-only,
// mmap-friendly binary layout that stores a labeled corpus as contiguous
// per-feature column slabs instead of row-major JSON. Loading is a mmap plus
// a metadata scan — feature values are served zero-copy straight from the
// page cache — so corpora 10×–100× the paper's 2,500 loops never need to be
// re-heapified to train on.
//
// # Layout (version 1, all little-endian)
//
//	header:  magic "MOCS" u32 · version u32 · metaLen u64 ·
//	         meta JSON (feature names, config + fingerprint, factors,
//	         chunk rows) zero-padded to 8 bytes
//	chunks:  repeated, each 8-byte aligned:
//	         magic "CHNK" u32 · rows u32 · namesLen u64 ·
//	         names blob (per row: uvarint-framed benchmark, then loop name)
//	         zero-padded to 8 ·
//	         dim × feature column slabs (rows × float64 each) ·
//	         label slab (rows × int64) ·
//	         factors × cycles column slabs (rows × int64, factors 1..8)
//	footer:  per-chunk directory (offset u64 · rows u64) ·
//	         chunkCount u64 · totalRows u64 ·
//	         crc32-Castagnoli u32 over every preceding byte ·
//	         tail magic "MOCE" u32
//
// Every numeric slab sits at an 8-byte file offset, so a page-aligned mmap
// can reinterpret the raw bytes as []float64/[]int64 without copying. The
// trailing CRC + tail magic mean a truncated or torn file — the failure mode
// of a crash mid-append — is rejected on open instead of parsed into a
// silently short dataset.
package colstore

import (
	"crypto/sha256"
	"encoding/hex"
	"hash/crc32"
)

const (
	// Version is the current format version written by Writer.
	Version = 1

	headMagic  = 0x53434F4D // "MOCS" little-endian
	chunkMagic = 0x4B4E4843 // "CHNK"
	tailMagic  = 0x45434F4D // "MOCE"

	// DefaultChunkRows is how many rows the writer accumulates before
	// sealing a chunk. Columns are contiguous within a chunk, so larger
	// chunks mean longer sequential scans; smaller chunks bound the
	// writer's buffering and the blocked readers' working set.
	DefaultChunkRows = 4096

	// Factors is how many per-factor cycle columns each chunk carries:
	// unroll factors 1..Factors, matching ml.Example.Cycles[1:].
	Factors = 8

	headerFixed = 4 + 4 + 8     // magic + version + metaLen
	chunkFixed  = 4 + 4 + 8     // magic + rows + namesLen
	footerFixed = 8 + 8 + 4 + 4 // chunkCount + totalRows + crc + magic
)

// crcTable is the Castagnoli polynomial table shared by writer and reader.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Meta is the file's self-description, serialized as JSON in the header.
type Meta struct {
	// FeatureNames names each feature column, in column order; its length
	// is the dataset dimensionality.
	FeatureNames []string `json:"feature_names"`
	// Config records the collection configuration that produced the file
	// (the dist.RunConfig fingerprint string, or free-form provenance).
	Config string `json:"config,omitempty"`
	// Fingerprint is the SHA-256 of Config, so mergers and caches can
	// compare provenance without parsing it.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Factors is how many cycles columns each chunk carries (always 8 in
	// version 1; recorded so future versions can widen it).
	Factors int `json:"factors"`
	// ChunkRows is the writer's sealing threshold, recorded for
	// diagnostics only — readers trust the chunk directory.
	ChunkRows int `json:"chunk_rows"`
}

// ConfigFingerprint returns the hex SHA-256 a Meta carries for the given
// config string; empty config fingerprints to the empty string.
func ConfigFingerprint(config string) string {
	if config == "" {
		return ""
	}
	sum := sha256.Sum256([]byte(config))
	return hex.EncodeToString(sum[:])
}

// pad8 returns how many zero bytes extend n to the next 8-byte boundary.
func pad8(n int) int { return (8 - n%8) % 8 }
