//go:build linux

package colstore

import (
	"os"
	"syscall"
)

// mmapFile maps the whole file read-only. The kernel pages columns in on
// demand and evicts them under pressure, which is what keeps out-of-core
// scans over a 100× corpus inside a fixed RSS budget.
func mmapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size <= 0 {
		return nil, false, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

func munmap(b []byte) error { return syscall.Munmap(b) }
