// Package ir defines the loop-level intermediate representation that the
// whole system is built around: operations with explicit intra- and
// cross-iteration dependences, affine memory references, and innermost loops
// annotated with the source-level properties (language, nest level, trip
// count) that the feature extractor and the machine model consume.
//
// The IR deliberately models a single innermost loop body, because that is
// the unit the paper instruments, unrolls and classifies. Surrounding
// program structure is represented by per-loop metadata (entries, nest
// level, benchmark name) rather than by a full CFG.
package ir

// Opcode enumerates the operation kinds the machine model understands.
type Opcode int

// Operation kinds. The split mirrors what an Itanium-class machine cares
// about: integer ALU, floating point, memory, control, and long-latency
// divides/calls.
const (
	OpInvalid Opcode = iota

	// Integer ALU.
	OpAdd
	OpSub
	OpMul // integer multiply (runs on the FP-multiply unit on Itanium)
	OpDiv // integer divide (long latency, unpipelined)
	OpShl
	OpShr
	OpAnd
	OpOr
	OpXor
	OpCmp // integer compare, produces a predicate/flag value

	// Floating point.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv // long latency, unpipelined
	OpFMA  // fused multiply-add
	OpFCmp
	OpConv // int<->float conversion

	// Memory.
	OpLoad
	OpStore

	// Control.
	OpBr     // the loop back-edge branch
	OpCondBr // a conditional branch inside the body (early exit / control flow)
	OpSel    // predicated select (if-converted control flow)
	OpCall   // call to an opaque function

	// Pseudo-operations.
	OpParam // loop-invariant live-in value; never scheduled
	OpConst // compile-time constant; never occupies an issue slot

	numOpcodes
)

var opcodeNames = [...]string{
	OpInvalid: "invalid",
	OpAdd:     "add",
	OpSub:     "sub",
	OpMul:     "mul",
	OpDiv:     "div",
	OpShl:     "shl",
	OpShr:     "shr",
	OpAnd:     "and",
	OpOr:      "or",
	OpXor:     "xor",
	OpCmp:     "cmp",
	OpFAdd:    "fadd",
	OpFSub:    "fsub",
	OpFMul:    "fmul",
	OpFDiv:    "fdiv",
	OpFMA:     "fma",
	OpFCmp:    "fcmp",
	OpConv:    "conv",
	OpLoad:    "load",
	OpStore:   "store",
	OpBr:      "br",
	OpCondBr:  "condbr",
	OpSel:     "sel",
	OpCall:    "call",
	OpParam:   "param",
	OpConst:   "const",
}

// String returns the mnemonic for the opcode.
func (o Opcode) String() string {
	if o <= OpInvalid || int(o) >= len(opcodeNames) {
		return "opcode?"
	}
	return opcodeNames[o]
}

// Valid reports whether o is a defined opcode other than OpInvalid.
func (o Opcode) Valid() bool { return o > OpInvalid && o < numOpcodes }

// IsFloat reports whether the operation executes on the floating-point side
// of the machine.
func (o Opcode) IsFloat() bool {
	switch o {
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFMA, OpFCmp, OpConv:
		return true
	}
	return false
}

// IsMem reports whether the operation accesses memory.
func (o Opcode) IsMem() bool { return o == OpLoad || o == OpStore }

// IsBranch reports whether the operation is a control transfer.
func (o Opcode) IsBranch() bool { return o == OpBr || o == OpCondBr || o == OpCall }

// IsPseudo reports whether the operation is a non-executing placeholder
// (parameters and constants are materialized outside the loop).
func (o Opcode) IsPseudo() bool { return o == OpParam || o == OpConst }

// HasResult reports whether the operation defines a value that can be used
// by other operations.
func (o Opcode) HasResult() bool {
	switch o {
	case OpStore, OpBr, OpCondBr:
		return false
	}
	return true
}

// Lang identifies the source language a loop came from. The paper's corpus
// spans C, Fortran and Fortran 90; language is one of the 38 features.
type Lang int

// Source languages.
const (
	LangC Lang = iota
	LangFortran
	LangFortran90
)

// String returns the language name.
func (l Lang) String() string {
	switch l {
	case LangC:
		return "C"
	case LangFortran:
		return "Fortran"
	case LangFortran90:
		return "Fortran90"
	}
	return "lang?"
}
