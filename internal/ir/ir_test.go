package ir

import (
	"strings"
	"testing"
)

// buildDaxpy constructs y[i] = y[i] + a*x[i] by hand.
func buildDaxpy() *Loop {
	l := NewLoop("daxpy.L1")
	a := l.NewParam("a")
	lx := l.NewOp(OpLoad)
	lx.Mem = &MemRef{Array: "x", Stride: 1, Elem: ElemF64}
	ly := l.NewOp(OpLoad)
	ly.Mem = &MemRef{Array: "y", Stride: 1, Elem: ElemF64}
	mul := l.NewOp(OpFMul, Use(a), Use(lx))
	add := l.NewOp(OpFAdd, Use(ly), Use(mul))
	st := l.NewOp(OpStore, Use(add))
	st.Mem = &MemRef{Array: "y", Stride: 1, Elem: ElemF64}
	l.NewOp(OpBr)
	return l
}

func TestOpcodeProperties(t *testing.T) {
	if !OpFAdd.IsFloat() || OpAdd.IsFloat() {
		t.Error("IsFloat misclassifies fadd/add")
	}
	if !OpLoad.IsMem() || !OpStore.IsMem() || OpAdd.IsMem() {
		t.Error("IsMem misclassifies")
	}
	if !OpBr.IsBranch() || !OpCall.IsBranch() || OpAdd.IsBranch() {
		t.Error("IsBranch misclassifies")
	}
	if !OpParam.IsPseudo() || OpLoad.IsPseudo() {
		t.Error("IsPseudo misclassifies")
	}
	if OpStore.HasResult() || OpBr.HasResult() || !OpLoad.HasResult() {
		t.Error("HasResult misclassifies")
	}
	if OpInvalid.Valid() || !OpFMA.Valid() {
		t.Error("Valid misclassifies")
	}
	if OpFMA.String() != "fma" {
		t.Errorf("String = %q", OpFMA.String())
	}
	if Opcode(999).String() != "opcode?" {
		t.Errorf("out-of-range String = %q", Opcode(999).String())
	}
}

func TestLangString(t *testing.T) {
	if LangC.String() != "C" || LangFortran.String() != "Fortran" || LangFortran90.String() != "Fortran90" {
		t.Error("Lang.String wrong")
	}
	if Lang(9).String() != "lang?" {
		t.Error("out-of-range Lang.String wrong")
	}
}

func TestValidateOK(t *testing.T) {
	l := buildDaxpy()
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if l.NumOps() != 6 {
		t.Errorf("NumOps = %d, want 6", l.NumOps())
	}
	got := l.Count(func(o *Op) bool { return o.Code.IsMem() })
	if got != 3 {
		t.Errorf("memory ops = %d, want 3", got)
	}
}

func TestValidateRejectsUseBeforeDef(t *testing.T) {
	l := NewLoop("bad")
	add := l.NewOp(OpAdd)
	b := l.NewOp(OpAdd)
	add.Args = []ArgRef{Use(b)} // forward reference at distance 0
	if err := l.Validate(); err == nil {
		t.Error("expected use-before-def error")
	}
}

func TestValidateAllowsRecurrence(t *testing.T) {
	l := NewLoop("reduce")
	x := l.NewParam("x")
	add := l.NewOp(OpFAdd, Use(x))
	add.Args = append(add.Args, Carried(add, 1)) // s = s + x: self at distance 1
	l.NewOp(OpBr)
	if err := l.Validate(); err != nil {
		t.Errorf("recurrence should validate: %v", err)
	}
}

func TestValidateRejectsNegativeDist(t *testing.T) {
	l := NewLoop("bad")
	a := l.NewOp(OpAdd)
	l.NewOp(OpAdd, ArgRef{Op: a, Dist: -1})
	if err := l.Validate(); err == nil {
		t.Error("expected negative-distance error")
	}
}

func TestValidateRejectsMemlessLoad(t *testing.T) {
	l := NewLoop("bad")
	l.NewOp(OpLoad)
	if err := l.Validate(); err == nil {
		t.Error("expected missing-MemRef error")
	}
}

func TestValidateRejectsCarriedParam(t *testing.T) {
	l := NewLoop("bad")
	p := l.NewParam("a")
	l.NewOp(OpAdd, Carried(p, 1))
	if err := l.Validate(); err == nil {
		t.Error("expected carried-invariant error")
	}
}

func TestValidateRejectsForeignOp(t *testing.T) {
	l1 := buildDaxpy()
	l2 := NewLoop("bad")
	l2.NewOp(OpAdd, Use(l1.Body[0]))
	if err := l2.Validate(); err == nil {
		t.Error("expected foreign-op error")
	}
}

func TestValidateRejectsUseOfResultless(t *testing.T) {
	l := NewLoop("bad")
	st := l.NewOp(OpStore)
	st.Mem = &MemRef{Array: "a", Stride: 1, Elem: ElemF64}
	l.NewOp(OpAdd, Use(st))
	if err := l.Validate(); err == nil {
		t.Error("expected resultless-use error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	l := buildDaxpy()
	c := l.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone Validate: %v", err)
	}
	if len(c.Body) != len(l.Body) || len(c.Params) != len(l.Params) {
		t.Fatal("clone sizes differ")
	}
	// Mutating the clone must not affect the original.
	c.Body[0].Mem.Array = "zzz"
	if l.Body[0].Mem.Array == "zzz" {
		t.Error("clone shares MemRef storage")
	}
	c.Body[2].Args[0].Dist = 5
	if l.Body[2].Args[0].Dist == 5 {
		t.Error("clone shares Args storage")
	}
	// Clone args must point at clone ops.
	for _, op := range c.Body {
		for _, a := range op.Args {
			found := false
			for _, o := range c.Body {
				if a.Op == o {
					found = true
				}
			}
			for _, o := range c.Params {
				if a.Op == o {
					found = true
				}
			}
			if !found {
				t.Fatalf("clone op %s references non-clone op", op)
			}
		}
	}
}

func TestMemRefString(t *testing.T) {
	cases := []struct {
		m    MemRef
		want string
	}{
		{MemRef{Array: "a", Stride: 1}, "a[i]"},
		{MemRef{Array: "a", Stride: 1, Offset: 1}, "a[i+1]"},
		{MemRef{Array: "a", Stride: 2, Offset: -1}, "a[2i-1]"},
		{MemRef{Array: "a", Stride: 0, Offset: 3}, "a[3]"},
		{MemRef{Array: "a", Stride: 1, Indirect: true}, "a[ind:i]"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("MemRef.String = %q, want %q", got, c.want)
		}
	}
}

func TestLoopString(t *testing.T) {
	s := buildDaxpy().String()
	for _, want := range []string{"loop daxpy.L1", "fmul", "fadd", "store y[i]", "param a"} {
		if !strings.Contains(s, want) {
			t.Errorf("Loop.String missing %q in:\n%s", want, s)
		}
	}
}

func TestOpString(t *testing.T) {
	l := NewLoop("t")
	a := l.NewOp(OpAdd)
	b := l.NewOp(OpAdd, Use(a), Carried(a, 2))
	b.Predicated = true
	b.PredID = 1
	s := b.String()
	for _, want := range []string{"v1 = add", "v0", "@2", "(p1)"} {
		if !strings.Contains(s, want) {
			t.Errorf("Op.String = %q missing %q", s, want)
		}
	}
}
