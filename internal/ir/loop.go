package ir

import (
	"fmt"
	"strings"
)

// Loop is a single innermost loop: the unit the system instruments, unrolls
// and classifies. Body holds the operations in original program order;
// Params holds loop-invariant live-in values (never scheduled).
type Loop struct {
	// Identity.
	Name      string // unique within a benchmark, e.g. "daxpy.L1"
	Benchmark string // owning benchmark, e.g. "171.swim"

	// Source-level properties.
	Lang      Lang
	NestLevel int  // nesting depth of this loop (1 = not nested)
	TripCount int  // compile-time trip count; -1 if unknown to the compiler
	EarlyExit bool // body contains a data-dependent exit branch
	NoAlias   bool // arrays are known distinct (Fortran semantics / restrict)

	// Runtime behaviour used by the simulator, invisible to the compiler
	// analyses and the feature extractor except through TripCount.
	RuntimeTrip int   // iterations actually executed per entry
	Entries     int64 // times the loop is entered per program run

	Body   []*Op
	Params []*Op

	nextID int

	// slab backs Op allocation: ops are handed out from one contiguous
	// block instead of individual heap objects. When a block fills, a new
	// one is started — previously handed-out ops keep their addresses.
	slab []Op
}

// NewLoop returns an empty loop with the given name.
func NewLoop(name string) *Loop {
	return &Loop{Name: name, NestLevel: 1, TripCount: -1, RuntimeTrip: 1, Entries: 1}
}

// alloc hands out one Op from the slab, starting a fresh block when the
// current one is full (never reallocating in place: existing *Op pointers
// into a full block must stay valid).
func (l *Loop) alloc() *Op {
	if len(l.slab) == cap(l.slab) {
		n := 2 * cap(l.slab)
		if n < 16 {
			n = 16
		}
		l.slab = make([]Op, 0, n)
	}
	l.slab = l.slab[:len(l.slab)+1]
	return &l.slab[len(l.slab)-1]
}

// Reserve pre-sizes the op slab for about n upcoming New* calls, so a
// builder that knows the final size (e.g. unrolling) allocates one block.
func (l *Loop) Reserve(n int) {
	if free := cap(l.slab) - len(l.slab); free >= n {
		return
	}
	l.slab = make([]Op, 0, n)
}

// MaxID returns an exclusive upper bound on the op IDs in this loop, so
// analyses can use ID-indexed slices instead of pointer-keyed maps.
func (l *Loop) MaxID() int { return l.nextID }

// NewOp appends a fresh operation with the given opcode to the loop body and
// returns it.
func (l *Loop) NewOp(code Opcode, args ...ArgRef) *Op {
	op := l.alloc()
	op.ID, op.Code, op.Args = l.nextID, code, args
	l.nextID++
	l.Body = append(l.Body, op)
	return op
}

// NewParam appends a loop-invariant live-in value and returns it.
func (l *Loop) NewParam(name string) *Op {
	op := l.alloc()
	op.ID, op.Code, op.Name = l.nextID, OpParam, name
	l.nextID++
	l.Params = append(l.Params, op)
	return op
}

// NewConst appends a constant pseudo-op and returns it. Constants live with
// the parameters: they are materialized outside the loop.
func (l *Loop) NewConst(name string) *Op {
	op := l.alloc()
	op.ID, op.Code, op.Name = l.nextID, OpConst, name
	l.nextID++
	l.Params = append(l.Params, op)
	return op
}

// Use is shorthand for an intra-iteration argument reference.
func Use(op *Op) ArgRef { return ArgRef{Op: op} }

// Carried is shorthand for a loop-carried argument reference at the given
// iteration distance.
func Carried(op *Op, dist int) ArgRef { return ArgRef{Op: op, Dist: dist} }

// NumOps returns the number of real (non-pseudo) operations in the body.
func (l *Loop) NumOps() int { return len(l.Body) }

// Count returns how many body operations satisfy pred.
func (l *Loop) Count(pred func(*Op) bool) int {
	n := 0
	for _, op := range l.Body {
		if pred(op) {
			n++
		}
	}
	return n
}

// Validate checks structural invariants: every argument refers to an
// operation that belongs to this loop, pseudo-ops never appear in the body,
// distances are non-negative, memory ops carry memory references, and
// intra-iteration dependences respect program order (no forward references
// at distance 0, which would be a use before a def).
func (l *Loop) Validate() error {
	index := make(map[*Op]int, len(l.Body))
	for i, op := range l.Body {
		if op.Code.IsPseudo() {
			return fmt.Errorf("ir: loop %s: pseudo op %s in body", l.Name, op)
		}
		if !op.Code.Valid() {
			return fmt.Errorf("ir: loop %s: invalid opcode on op v%d", l.Name, op.ID)
		}
		if op.Code.IsMem() && op.Mem == nil {
			return fmt.Errorf("ir: loop %s: memory op %s without MemRef", l.Name, op)
		}
		if !op.Code.IsMem() && op.Mem != nil {
			return fmt.Errorf("ir: loop %s: non-memory op %s with MemRef", l.Name, op)
		}
		index[op] = i
	}
	params := make(map[*Op]bool, len(l.Params))
	for _, p := range l.Params {
		if !p.Code.IsPseudo() {
			return fmt.Errorf("ir: loop %s: non-pseudo op %s in params", l.Name, p)
		}
		params[p] = true
	}
	for i, op := range l.Body {
		for _, a := range op.Args {
			if a.Dist < 0 {
				return fmt.Errorf("ir: loop %s: negative dependence distance on %s", l.Name, op)
			}
			if params[a.Op] {
				if a.Dist != 0 {
					return fmt.Errorf("ir: loop %s: carried dependence on invariant %s", l.Name, a.Op.Name)
				}
				continue
			}
			j, ok := index[a.Op]
			if !ok {
				return fmt.Errorf("ir: loop %s: op %s uses value from another loop", l.Name, op)
			}
			if !a.Op.Code.HasResult() {
				return fmt.Errorf("ir: loop %s: op %s uses resultless op v%d", l.Name, op, a.Op.ID)
			}
			if a.Dist == 0 && j >= i {
				return fmt.Errorf("ir: loop %s: op %s uses v%d before its definition", l.Name, op, a.Op.ID)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the loop. Cloned ops get fresh identities but
// preserve IDs, so dependences stay aligned.
func (l *Loop) Clone() *Loop {
	c := &Loop{
		Name:        l.Name,
		Benchmark:   l.Benchmark,
		Lang:        l.Lang,
		NestLevel:   l.NestLevel,
		TripCount:   l.TripCount,
		EarlyExit:   l.EarlyExit,
		NoAlias:     l.NoAlias,
		RuntimeTrip: l.RuntimeTrip,
		Entries:     l.Entries,
		nextID:      l.nextID,
	}
	c.Reserve(len(l.Body) + len(l.Params))
	remap := make(map[*Op]*Op, len(l.Body)+len(l.Params))
	cloneOp := func(op *Op) *Op {
		n := c.alloc()
		n.ID, n.Code, n.FP, n.Predicated, n.PredID, n.Name = op.ID, op.Code, op.FP, op.Predicated, op.PredID, op.Name
		if op.Mem != nil {
			m := *op.Mem
			n.Mem = &m
		}
		remap[op] = n
		return n
	}
	for _, p := range l.Params {
		c.Params = append(c.Params, cloneOp(p))
	}
	for _, op := range l.Body {
		c.Body = append(c.Body, cloneOp(op))
	}
	for i, op := range l.Body {
		for _, a := range op.Args {
			c.Body[i].Args = append(c.Body[i].Args, ArgRef{Op: remap[a.Op], Dist: a.Dist})
		}
	}
	return c
}

// String renders the loop for debugging.
func (l *Loop) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "loop %s (%s, nest %d, trip %d", l.Name, l.Lang, l.NestLevel, l.TripCount)
	if l.EarlyExit {
		sb.WriteString(", early-exit")
	}
	sb.WriteString(") {\n")
	for _, p := range l.Params {
		fmt.Fprintf(&sb, "  v%d = %s %s\n", p.ID, p.Code, p.Name)
	}
	for _, op := range l.Body {
		fmt.Fprintf(&sb, "  %s\n", op)
	}
	sb.WriteString("}\n")
	return sb.String()
}
