package ir

import (
	"fmt"
	"strings"
)

// ArgRef is a use of a value defined by another operation. Dist is the
// iteration distance: 0 means the value produced in the same iteration,
// k > 0 means the value produced k iterations earlier (a loop-carried
// dependence, e.g. a reduction or a recurrence through an array).
type ArgRef struct {
	Op   *Op
	Dist int
}

// ElemKind describes the element type of a memory reference.
type ElemKind struct {
	Float bool // floating-point element
	Bytes int  // element size in bytes (4 or 8)
}

// Common element kinds.
var (
	ElemF64 = ElemKind{Float: true, Bytes: 8}
	ElemF32 = ElemKind{Float: true, Bytes: 4}
	ElemI64 = ElemKind{Float: false, Bytes: 8}
	ElemI32 = ElemKind{Float: false, Bytes: 4}
)

// MemRef describes the address computed by a load or store. Addresses are
// affine in the innermost induction variable: element index = Stride*i +
// Offset into Array. Indirect references (a[b[i]]) set Indirect, in which
// case Stride/Offset describe the index array access pattern but the actual
// address is unknown to the compiler.
type MemRef struct {
	Array    string
	Stride   int // elements advanced per source iteration
	Offset   int // constant element offset
	Indirect bool
	Elem     ElemKind

	// Span is the number of consecutive elements the access covers,
	// starting at Offset. Zero means one. Coalesced wide accesses set it
	// so dependence analysis still sees every element they touch.
	Span int
}

// SpanElems returns the number of elements covered (at least 1).
func (m *MemRef) SpanElems() int {
	if m.Span < 1 {
		return 1
	}
	return m.Span
}

// String renders the reference like "a[2i+1]".
func (m *MemRef) String() string {
	var sb strings.Builder
	sb.WriteString(m.Array)
	sb.WriteByte('[')
	if m.Indirect {
		sb.WriteString("ind:")
	}
	switch m.Stride {
	case 0:
	case 1:
		sb.WriteString("i")
	default:
		fmt.Fprintf(&sb, "%di", m.Stride)
	}
	if m.Offset != 0 || m.Stride == 0 {
		if m.Offset >= 0 && m.Stride != 0 {
			sb.WriteByte('+')
		}
		fmt.Fprintf(&sb, "%d", m.Offset)
	}
	sb.WriteByte(']')
	return sb.String()
}

// Op is a single operation in a loop body. Operations form a DAG through
// Args; loop-carried edges (Dist > 0) may create cycles in the underlying
// dependence graph, which is exactly what the recurrence analysis needs.
type Op struct {
	ID   int
	Code Opcode
	Args []ArgRef

	// Mem is set for OpLoad and OpStore.
	Mem *MemRef

	// FP marks operations whose result lives in the floating-point
	// register file. The frontend sets it from declared types; it drives
	// register-pressure accounting per register file.
	FP bool

	// Predicated marks operations guarded by an if-converted condition.
	// Predicated operations still occupy issue slots but their guarding
	// compare contributes a unique predicate (a paper feature).
	Predicated bool

	// PredID identifies which predicate guards the op (0 = unpredicated).
	// Distinct IDs count as distinct predicates in the feature vector.
	PredID int

	// Name optionally carries a source-level name for debugging.
	Name string
}

// IsFloat reports whether the op runs on the FP side.
func (o *Op) IsFloat() bool { return o.Code.IsFloat() }

// String renders the op for debugging, e.g. "v3 = fadd v1 v2@1".
func (o *Op) String() string {
	var sb strings.Builder
	if o.Code.HasResult() {
		fmt.Fprintf(&sb, "v%d = ", o.ID)
	}
	sb.WriteString(o.Code.String())
	if o.Mem != nil {
		sb.WriteByte(' ')
		sb.WriteString(o.Mem.String())
	}
	for _, a := range o.Args {
		fmt.Fprintf(&sb, " v%d", a.Op.ID)
		if a.Dist > 0 {
			fmt.Fprintf(&sb, "@%d", a.Dist)
		}
	}
	if o.Predicated {
		fmt.Fprintf(&sb, " (p%d)", o.PredID)
	}
	return sb.String()
}
