package analysis

import (
	"fmt"
	"strings"
)

// DOT renders the dependence graph in Graphviz format: data edges solid,
// memory-ordering edges dashed, control edges dotted; loop-carried edges
// are labeled with their iteration distance.
func (g *Graph) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", g.Loop.Name)
	sb.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n")
	for i, op := range g.Ops {
		label := op.Code.String()
		if op.Mem != nil {
			label = fmt.Sprintf("%s %s", op.Code, op.Mem)
		} else if op.Name != "" {
			label = fmt.Sprintf("%s %s", op.Code, op.Name)
		}
		attrs := fmt.Sprintf("label=\"v%d: %s\\nlat %d\"", op.ID, label, g.Mach.Latency(op))
		if op.Predicated {
			attrs += ", style=filled, fillcolor=lightyellow"
		}
		fmt.Fprintf(&sb, "  n%d [%s];\n", i, attrs)
	}
	for _, e := range g.Edges {
		style := "solid"
		switch e.Kind {
		case EdgeMem:
			style = "dashed"
		case EdgeCtrl:
			style = "dotted"
		}
		label := fmt.Sprintf("%d", e.Lat)
		if e.Dist > 0 {
			label = fmt.Sprintf("%d @%d", e.Lat, e.Dist)
		}
		constraint := "true"
		if e.Dist > 0 {
			constraint = "false" // carried edges close cycles; keep layout a DAG
		}
		fmt.Fprintf(&sb, "  n%d -> n%d [style=%s, label=%q, constraint=%s];\n",
			e.From, e.To, style, label, constraint)
	}
	sb.WriteString("}\n")
	return sb.String()
}
