package analysis

import (
	"strings"
	"testing"
)

func TestDOTWellFormed(t *testing.T) {
	g := mustGraph(t, daxpy)
	out := g.DOT()
	if !strings.HasPrefix(out, "digraph") || !strings.HasSuffix(out, "}\n") {
		t.Fatalf("not a digraph:\n%s", out)
	}
	// One node per op, at least one edge per edge kind present.
	for i := range g.Ops {
		if !strings.Contains(out, nodeName(i)) {
			t.Errorf("missing node n%d", i)
		}
	}
	if !strings.Contains(out, "style=solid") {
		t.Error("missing data edges")
	}
	if !strings.Contains(out, "style=dashed") {
		t.Error("missing memory edges")
	}
	if !strings.Contains(out, "style=dotted") {
		t.Error("missing control edges")
	}
}

func nodeName(i int) string {
	return "n" + string(rune('0'+i%10)) // nodes n0..n9 suffice for daxpy
}

func TestDOTCarriedEdgesLabeled(t *testing.T) {
	g := mustGraph(t, `
kernel red lang=fortran {
	double a[];
	double s;
	for i = 0 .. 64 { s = s + a[i]; }
}`)
	out := g.DOT()
	if !strings.Contains(out, "@1") {
		t.Errorf("carried edge not labeled with distance:\n%s", out)
	}
	if !strings.Contains(out, "constraint=false") {
		t.Error("carried edges should not constrain layout")
	}
}

func TestDOTPredicatedHighlighted(t *testing.T) {
	g := mustGraph(t, `
kernel pred lang=c {
	double a[], b[];
	for i = 0 .. 64 { if (a[i] > 0.0) { b[i] = a[i]; } }
}`)
	if !strings.Contains(g.DOT(), "lightyellow") {
		t.Error("predicated ops not highlighted")
	}
}
