package analysis

import (
	"metaopt/internal/ir"
)

// asapTimes returns, for every op, the earliest issue cycle under infinite
// resources considering only same-iteration (Dist == 0) edges.
func (g *Graph) asapTimes() []int {
	times := make([]int, len(g.Ops))
	// Ops are in program order and dist-0 edges always point forward
	// (validated by the IR), so one forward pass settles everything.
	for to := range g.Ops {
		for _, e := range g.In[to] {
			if e.Dist != 0 {
				continue
			}
			if t := times[e.From] + e.Lat; t > times[to] {
				times[to] = t
			}
		}
	}
	return times
}

// CriticalPath returns the length in cycles of the longest same-iteration
// dependence chain, including the latency of its final operation. This is
// the paper's "estimated latency of critical path" feature.
func (g *Graph) CriticalPath() int {
	times := g.asapTimes()
	best := 0
	for i, op := range g.Ops {
		if t := times[i] + g.Mach.Latency(op); t > best {
			best = t
		}
	}
	return best
}

// EstimatedCycleLength is a fast schedule estimate: the maximum of the
// critical path and every resource bound. It approximates the paper's
// "estimated cycle length of loop body" feature without running the
// scheduler.
func (g *Graph) EstimatedCycleLength() int {
	cp := g.CriticalPath()
	num, den := g.ResMII()
	res := (num + den - 1) / den
	if res > cp {
		return res
	}
	return cp
}

// computation membership: ops that belong to the actual computation rather
// than loop control (the induction update, trip test and back edge).
func (g *Graph) isComputation(op *ir.Op) bool {
	switch op.Code {
	case ir.OpBr:
		return false
	}
	return true
}

// Components partitions the computation ops into weakly-connected
// components of the data-flow graph (all data edges, any distance). Each
// component is one of the paper's parallel "computations".
func (g *Graph) Components() [][]int {
	n := len(g.Ops)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, e := range g.Edges {
		if e.Kind != EdgeData {
			continue
		}
		if !g.isComputation(g.Ops[e.From]) || !g.isComputation(g.Ops[e.To]) {
			continue
		}
		union(e.From, e.To)
	}
	groups := map[int][]int{}
	for i, op := range g.Ops {
		if !g.isComputation(op) {
			continue
		}
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	comps := make([][]int, 0, len(groups))
	for _, c := range groups {
		comps = append(comps, c)
	}
	return comps
}

// DepHeights returns the maximum and mean dependence height over the
// computations (per-component same-iteration critical path in cycles).
func (g *Graph) DepHeights() (max int, mean float64) {
	comps := g.Components()
	if len(comps) == 0 {
		return 0, 0
	}
	times := g.asapTimes()
	var sum float64
	for _, comp := range comps {
		h := 0
		for _, i := range comp {
			if t := times[i] + g.Mach.Latency(g.Ops[i]); t > h {
				h = t
			}
		}
		if h > max {
			max = h
		}
		sum += float64(h)
	}
	return max, sum / float64(len(comps))
}

// chainHeight computes the longest dist-0 chain restricted to ops accepted
// by keep, counting one unit per op on the chain.
func (g *Graph) chainHeight(keep func(*ir.Op) bool) int {
	n := len(g.Ops)
	h := make([]int, n)
	best := 0
	for to := 0; to < n; to++ {
		if !keep(g.Ops[to]) {
			continue
		}
		h[to] = 1
		for _, e := range g.In[to] {
			if e.Dist != 0 || !keep(g.Ops[e.From]) {
				continue
			}
			if t := h[e.From] + 1; t > h[to] {
				h[to] = t
			}
		}
		if h[to] > best {
			best = h[to]
		}
	}
	return best
}

// MemDepHeight returns the length of the longest same-iteration chain of
// memory operations linked by dependences (the paper's "max height of
// memory dependencies of computations").
func (g *Graph) MemDepHeight() int {
	return g.chainHeight(func(op *ir.Op) bool { return op.Code.IsMem() })
}

// CtrlDepHeight returns the longest same-iteration chain through
// control-related ops — compares, selects and branches (the paper's "max
// height of control dependencies").
func (g *Graph) CtrlDepHeight() int {
	return g.chainHeight(func(op *ir.Op) bool {
		switch op.Code {
		case ir.OpCmp, ir.OpFCmp, ir.OpSel, ir.OpCondBr, ir.OpBr:
			return true
		}
		return false
	})
}

// FanIn returns the maximum and mean data-flow in-degree of the loop's
// operations ("instruction fan-in in DAG", a Table 3 feature).
func (g *Graph) FanIn() (max int, mean float64) {
	if len(g.Ops) == 0 {
		return 0, 0
	}
	var sum int
	for i := range g.Ops {
		d := 0
		for _, e := range g.In[i] {
			if e.Kind == EdgeData && e.Dist == 0 {
				d++
			}
		}
		if d > max {
			max = d
		}
		sum += d
	}
	return max, float64(sum) / float64(len(g.Ops))
}

// MemDeps summarizes loop-carried memory-to-memory dependences: how many
// there are and the minimum carried distance. When the loop has none,
// minDist reports 0.
func (g *Graph) MemDeps() (count, minDist int) {
	for _, e := range g.Edges {
		if e.Kind != EdgeMem {
			continue
		}
		count++
		if e.Dist > 0 && (minDist == 0 || e.Dist < minDist) {
			minDist = e.Dist
		}
	}
	return count, minDist
}

// LiveValueEstimate approximates register demand: for every value it spans
// the cycles between its definition and its last same-iteration use in the
// ASAP schedule, plus one iteration-long range per loop-carried value, and
// returns the peak number of simultaneously live values.
func (g *Graph) LiveValueEstimate() int {
	peak, _ := g.LiveStats()
	return peak
}

// LiveStats returns both the peak count of simultaneously-live values and
// the total live cycles summed across values (the "live range size" family
// of features).
func (g *Graph) LiveStats() (peak, sum int) {
	times := g.asapTimes()
	length := g.CriticalPath()
	if length == 0 {
		return 0, 0
	}
	delta := make([]int, length+2)
	for i, op := range g.Ops {
		if !op.Code.HasResult() {
			continue
		}
		def := times[i] + g.Mach.Latency(op)
		last := def
		carried := false
		for _, e := range g.Out[i] {
			if e.Kind != EdgeData {
				continue
			}
			if e.Dist > 0 {
				carried = true
				continue
			}
			if t := times[e.To]; t > last {
				last = t
			}
		}
		if carried {
			last = length
		}
		if def > length {
			def = length
		}
		if last > length {
			last = length
		}
		delta[def]++
		delta[last+1]--
		sum += last - def + 1
	}
	live := 0
	for _, d := range delta {
		live += d
		if live > peak {
			peak = live
		}
	}
	return peak, sum
}
