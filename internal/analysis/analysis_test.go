package analysis

import (
	"testing"

	"metaopt/internal/ir"
	"metaopt/internal/lang"
	"metaopt/internal/machine"
)

func mustGraph(t *testing.T, src string) *Graph {
	t.Helper()
	k, err := lang.ParseKernel(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	l, err := lang.Lower(k)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return Build(l, machine.Itanium2())
}

func findOp(g *Graph, code ir.Opcode) int {
	for i, op := range g.Ops {
		if op.Code == code {
			return i
		}
	}
	return -1
}

func hasEdge(g *Graph, from, to int, kind EdgeKind, dist int) bool {
	for _, e := range g.Out[from] {
		if e.To == to && e.Kind == kind && e.Dist == dist {
			return true
		}
	}
	return false
}

const daxpy = `
kernel daxpy lang=c {
	param double a;
	double x[], y[];
	noalias;
	for i = 0 .. 4096 { y[i] = y[i] + a * x[i]; }
}`

func TestDataEdges(t *testing.T) {
	g := mustGraph(t, daxpy)
	fma := findOp(g, ir.OpFMA)
	st := findOp(g, ir.OpStore)
	if fma < 0 || st < 0 {
		t.Fatal("missing ops")
	}
	if !hasEdge(g, fma, st, EdgeData, 0) {
		t.Error("missing fma→store data edge")
	}
	// Store value edge latency equals FMA latency.
	for _, e := range g.Out[fma] {
		if e.To == st && e.Lat != machine.Itanium2().FPLat {
			t.Errorf("fma→store latency = %d", e.Lat)
		}
	}
}

func TestMemSameLocationDep(t *testing.T) {
	// y[i] load and y[i] store conflict at distance 0 (load first).
	g := mustGraph(t, daxpy)
	st := findOp(g, ir.OpStore)
	// Find the y-load.
	yld := -1
	for i, op := range g.Ops {
		if op.Code == ir.OpLoad && op.Mem.Array == "y" {
			yld = i
		}
	}
	if yld < 0 {
		t.Fatal("no y load")
	}
	if !hasEdge(g, yld, st, EdgeMem, 0) {
		t.Error("missing load→store anti dependence")
	}
}

func TestMemCarriedDistance(t *testing.T) {
	g := mustGraph(t, `
kernel rec lang=c {
	double b[];
	for i = 2 .. 1000 { b[i] = b[i-2] * 0.5; }
}`)
	st := findOp(g, ir.OpStore)
	ld := findOp(g, ir.OpLoad)
	// store b[i] at iter i feeds load b[i-2] two iterations later.
	if !hasEdge(g, st, ld, EdgeMem, 2) {
		t.Errorf("missing store→load dist-2 dependence; edges = %v", g.Edges)
	}
}

func TestAliasConservatism(t *testing.T) {
	cSrc := `
kernel maybealias lang=c {
	double a[], b[];
	for i = 0 .. 100 { b[i] = a[i] + 1.0; }
}`
	g := mustGraph(t, cSrc)
	memEdges := 0
	for _, e := range g.Edges {
		if e.Kind == EdgeMem {
			memEdges++
		}
	}
	if memEdges == 0 {
		t.Error("C loop without noalias should have conservative mem edges")
	}
	gf := mustGraph(t, `
kernel nolias lang=fortran {
	double a[], b[];
	for i = 0 .. 100 { b[i] = a[i] + 1.0; }
}`)
	for _, e := range gf.Edges {
		if e.Kind == EdgeMem {
			t.Errorf("fortran loop should have no cross-array mem edges: %v", e)
		}
	}
}

func TestIndirectSerializes(t *testing.T) {
	g := mustGraph(t, `
kernel scatter lang=c {
	double a[];
	int idx[];
	noalias;
	for i = 0 .. 100 { a[idx[i]] = a[idx[i]] + 1.0; }
}`)
	carried := false
	for _, e := range g.Edges {
		if e.Kind == EdgeMem && e.Dist == 1 {
			carried = true
		}
	}
	if !carried {
		t.Error("indirect same-array refs should serialize across iterations")
	}
}

func TestCriticalPath(t *testing.T) {
	g := mustGraph(t, daxpy)
	m := machine.Itanium2()
	// Longest chain: load x (6) → fma (4) → store (1) = 11.
	want := m.FPLoadLat + m.FPLat + m.StoreLat
	if got := g.CriticalPath(); got != want {
		t.Errorf("critical path = %d, want %d", got, want)
	}
}

func TestResMIIFractional(t *testing.T) {
	// Three FP ops on 2 F units: ResMII = 3/2.
	g := mustGraph(t, `
kernel f3 lang=fortran {
	double a[], b[], c[], d[];
	for i = 0 .. 100 { d[i] = a[i]*b[i] + a[i]*c[i] + b[i]*c[i]; }
}`)
	// With redundant-load elimination the body has 10 ops: 3 loads, 1 fmul,
	// 2 fma, store, iv add, cmp, br. Bounds: issue 10/6, F 3/2, M 4/4.
	num, den := g.ResMII()
	if num*6 != 10*den {
		t.Errorf("ResMII = %d/%d, want 10/6", num, den)
	}
}

func TestRecurrenceRatioReduction(t *testing.T) {
	g := mustGraph(t, `
kernel dot lang=fortran {
	double a[], b[];
	double s;
	for i = 0 .. 1024 { s = s + a[i]*b[i]; }
}`)
	num, den := g.RecurrenceRatio()
	m := machine.Itanium2()
	if den != 1 || num != m.FPLat {
		t.Errorf("recurrence ratio = %d/%d, want %d/1", num, den, m.FPLat)
	}
	if !g.HasRecurrence() {
		t.Error("HasRecurrence = false")
	}
}

func TestRecurrenceRatioIVOnly(t *testing.T) {
	// daxpy's only recurrence is the induction-variable increment: ratio 1.
	g := mustGraph(t, daxpy)
	num, den := g.RecurrenceRatio()
	if num != 1 || den != 1 {
		t.Errorf("daxpy recurrence ratio = %d/%d, want 1/1", num, den)
	}
	// Excluding the IV update leaves no recurrence at all.
	num, den = g.RecurrenceRatioExcluding(func(op *ir.Op) bool { return op.Name == "i" })
	if num != 0 || den != 1 {
		t.Errorf("non-IV recurrence ratio = %d/%d, want 0/1", num, den)
	}
}

func TestRecurrenceRatioMultiEdgeCycle(t *testing.T) {
	// Two mutually-carried scalars: t reads s@1, s reads (new) t. The cycle
	// spans two iterations.
	g := mustGraph(t, `
kernel pingpong lang=c {
	double a[];
	double s, t;
	for i = 0 .. 100 {
		t = s * 0.5;
		s = t + a[i];
	}
}`)
	num, den := g.RecurrenceRatio()
	if num <= 0 {
		t.Fatalf("expected positive recurrence ratio, got %d/%d", num, den)
	}
	m := machine.Itanium2()
	want := 2 * m.FPLat // fmul + fadd per trip around, dist 1
	if den != 1 || num != want {
		t.Errorf("recurrence ratio = %d/%d, want %d/1", num, den, want)
	}
}

func TestMII(t *testing.T) {
	g := mustGraph(t, `
kernel dot lang=fortran {
	double a[], b[];
	double s;
	for i = 0 .. 1024 { s = s + a[i]*b[i]; }
}`)
	if got := g.MII(); got != machine.Itanium2().FPLat {
		t.Errorf("MII = %d", got)
	}
}

func TestComponents(t *testing.T) {
	// Two independent computations: c[i] and d[i] chains.
	g := mustGraph(t, `
kernel two lang=fortran {
	double a[], b[], c[], d[];
	for i = 0 .. 100 {
		c[i] = a[i] + 1.0;
		d[i] = b[i] * 2.0;
	}
}`)
	comps := g.Components()
	// Expect: two value chains plus the loop-control component (iv/cmp) —
	// the iv-add/cmp chain is one more component.
	if len(comps) != 3 {
		t.Errorf("components = %d, want 3", len(comps))
	}
}

func TestDepHeightsAndFanIn(t *testing.T) {
	g := mustGraph(t, daxpy)
	max, mean := g.DepHeights()
	if max <= 0 || mean <= 0 || float64(max) < mean {
		t.Errorf("heights = %d/%.2f", max, mean)
	}
	fmax, fmean := g.FanIn()
	if fmax < 2 { // fma has three inputs but one is a param
		t.Errorf("max fan-in = %d", fmax)
	}
	if fmean <= 0 {
		t.Errorf("mean fan-in = %f", fmean)
	}
}

func TestMemDeps(t *testing.T) {
	g := mustGraph(t, `
kernel rec lang=c {
	double b[];
	for i = 3 .. 1000 { b[i] = b[i-3] * 0.5; }
}`)
	count, minDist := g.MemDeps()
	if count == 0 {
		t.Fatal("no memory deps found")
	}
	if minDist != 3 {
		t.Errorf("min carried distance = %d, want 3", minDist)
	}
}

func TestChainHeights(t *testing.T) {
	g := mustGraph(t, `
kernel chain lang=c {
	double a[];
	noalias;
	for i = 1 .. 100 {
		a[i] = a[i-1] + 1.0;
		if (a[i] > 10.0) break;
	}
}`)
	if got := g.MemDepHeight(); got < 1 {
		t.Errorf("mem dep height = %d", got)
	}
	if got := g.CtrlDepHeight(); got < 2 { // fcmp → condbr at least
		t.Errorf("ctrl dep height = %d", got)
	}
}

func TestLiveValueEstimate(t *testing.T) {
	g := mustGraph(t, daxpy)
	if got := g.LiveValueEstimate(); got < 2 {
		t.Errorf("live estimate = %d", got)
	}
	// A wider loop must have more simultaneously-live values.
	g2 := mustGraph(t, `
kernel wide lang=fortran {
	double a[], b[], c[], d[], e[], f[], o[];
	for i = 0 .. 100 {
		o[i] = a[i]*b[i] + c[i]*d[i] + e[i]*f[i];
	}
}`)
	if g2.LiveValueEstimate() <= g.LiveValueEstimate() {
		t.Errorf("wide live %d <= daxpy live %d", g2.LiveValueEstimate(), g.LiveValueEstimate())
	}
}

func TestCtrlEdgesForExitAndCall(t *testing.T) {
	g := mustGraph(t, `
kernel exits lang=c {
	double a[];
	double s;
	for i = 0 .. n {
		if (a[i] == 0.0) break;
		s = s + a[i];
		call log();
	}
}`)
	cb := findOp(g, ir.OpCondBr)
	call := findOp(g, ir.OpCall)
	st := -1
	for i, op := range g.Ops {
		if op.Code == ir.OpFAdd || op.Code == ir.OpFMA {
			st = i
		}
	}
	if cb < 0 || call < 0 || st < 0 {
		t.Fatalf("ops missing: condbr=%d call=%d fadd=%d", cb, call, st)
	}
	if !hasEdge(g, cb, st, EdgeCtrl, 0) {
		t.Error("missing exit→op control edge")
	}
	br := findOp(g, ir.OpBr)
	if !hasEdge(g, cb, br, EdgeCtrl, 0) && !hasEdge(g, call, br, EdgeCtrl, 0) {
		// Back edge must be anchored after everything.
		t.Error("back edge not anchored")
	}
	// Loads before the call must not cross it.
	ld := findOp(g, ir.OpLoad)
	if !hasEdge(g, ld, call, EdgeCtrl, 0) {
		t.Error("missing mem→call barrier edge")
	}
}

func TestEstimatedCycleLength(t *testing.T) {
	g := mustGraph(t, daxpy)
	if got := g.EstimatedCycleLength(); got < g.CriticalPath() {
		t.Errorf("estimated cycle length %d < critical path %d", got, g.CriticalPath())
	}
}

func TestOpClassCounts(t *testing.T) {
	k, err := lang.ParseKernel(daxpy)
	if err != nil {
		t.Fatal(err)
	}
	l, err := lang.Lower(k)
	if err != nil {
		t.Fatal(err)
	}
	counts := OpClassCounts(l, machine.Itanium2())
	if counts[machine.UnitM] != 3 {
		t.Errorf("M ops = %d, want 3", counts[machine.UnitM])
	}
	if counts[machine.UnitF] != 1 {
		t.Errorf("F ops = %d, want 1", counts[machine.UnitF])
	}
	if counts[machine.UnitB] != 1 {
		t.Errorf("B ops = %d, want 1", counts[machine.UnitB])
	}
}
