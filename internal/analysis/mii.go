package analysis

import (
	"metaopt/internal/ir"
	"metaopt/internal/machine"
)

// ResMII returns the resource-constrained minimum initiation interval as a
// rational num/den: the tightest bound over functional-unit classes and the
// global issue width. Keeping it rational is what exposes fractional-II
// opportunities — the reason unrolling helps a software-pipelined loop.
func (g *Graph) ResMII() (num, den int) {
	var perUnit [machine.NumUnitKinds]int
	blocked := 0
	for _, op := range g.Ops {
		perUnit[g.Mach.UnitFor(op.Code)] += g.Mach.BlockCycles(op.Code)
		blocked++
	}
	num, den = 0, 1
	consider := func(n, d int) {
		if d > 0 && n*den > num*d {
			num, den = n, d
		}
	}
	for k, cnt := range perUnit {
		consider(cnt, g.Mach.Units[k])
	}
	consider(blocked, g.Mach.IssueWidth)
	if num == 0 {
		num, den = 1, 1
	}
	return num, den
}

// RecurrenceRatio returns the maximum cycle ratio of the dependence graph —
// max over dependence cycles of (total latency) / (total distance) — as a
// rational num/den. Loops with no recurrence return (0, 1). The ratio is the
// recurrence-constrained component of the MII; for a loop unrolled by u the
// recurrence bound scales to u·num/den.
//
// The computation finds the smallest integer II admitting no positive cycle
// under edge weights lat − II·dist (Bellman-Ford detection), then refines
// the last interval [II−1, II] by testing den·lat − num·dist weights for
// exact rational bounds with small denominators.
func (g *Graph) RecurrenceRatio() (num, den int) {
	return g.RecurrenceRatioExcluding(nil)
}

// RecurrenceRatioExcluding computes the maximum cycle ratio ignoring cycles
// through operations rejected by keep (keep == nil keeps everything). The
// software pipeliner uses this to discount the induction-variable update,
// whose recurrence folds away under unrolling.
func (g *Graph) RecurrenceRatioExcluding(exclude func(*ir.Op) bool) (num, den int) {
	n := len(g.Ops)
	if n == 0 {
		return 0, 1
	}
	edges := g.Edges
	if exclude != nil {
		kept := make([]Edge, 0, len(edges))
		for _, e := range edges {
			if exclude(g.Ops[e.From]) || exclude(g.Ops[e.To]) {
				continue
			}
			kept = append(kept, e)
		}
		edges = kept
	}
	hasCarried := false
	maxII := 1
	for _, e := range edges {
		if e.Dist > 0 {
			hasCarried = true
		}
		if e.Lat > 0 {
			maxII += e.Lat
		}
	}
	if !hasCarried {
		return 0, 1
	}

	// positiveCycle reports whether weights a·lat − b·dist admit a positive
	// cycle, i.e. whether some cycle has lat/dist > b/a... equivalently the
	// candidate ratio b/a is infeasible as an II.
	positiveCycle := func(a, b int) bool {
		dist := make([]int64, n)
		for iter := 0; iter < n; iter++ {
			changed := false
			for _, e := range edges {
				w := int64(a*e.Lat - b*e.Dist)
				if dist[e.From]+w > dist[e.To] {
					dist[e.To] = dist[e.From] + w
					changed = true
				}
			}
			if !changed {
				return false
			}
		}
		// One more relaxation round: any further improvement proves a
		// positive cycle.
		for _, e := range edges {
			w := int64(a*e.Lat - b*e.Dist)
			if dist[e.From]+w > dist[e.To] {
				return true
			}
		}
		return false
	}

	// Binary search the smallest integer II with no positive cycle.
	lo, hi := 0, maxII // II=lo infeasible or unknown; II=hi feasible
	if !positiveCycle(1, 0) {
		// No positive-latency cycle at all: recurrences exist but impose
		// no initiation bound (e.g. pure anti-dependences).
		return 0, 1
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if positiveCycle(1, mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	// The true max cycle ratio r satisfies lo < r <= hi. Search small
	// denominators for the exact rational in that interval.
	const maxDen = 8
	bestNum, bestDen := hi, 1
	for d := 2; d <= maxDen; d++ {
		// Smallest numerator nn with nn/d > lo and no positive cycle.
		for nn := lo*d + 1; nn <= hi*d; nn++ {
			if !positiveCycle(d, nn) {
				if nn*bestDen < bestNum*d {
					bestNum, bestDen = nn, d
				}
				break
			}
		}
	}
	return bestNum, bestDen
}

// MII returns the integer minimum initiation interval for modulo
// scheduling: the ceiling of the larger of the resource bound and the
// recurrence bound.
func (g *Graph) MII() int {
	rn, rd := g.ResMII()
	mii := ceilDiv(rn, rd)
	cn, cd := g.RecurrenceRatio()
	if cd > 0 {
		if r := ceilDiv(cn, cd); r > mii {
			mii = r
		}
	}
	if mii < 1 {
		mii = 1
	}
	return mii
}

// HasRecurrence reports whether any loop-carried dependence exists.
func (g *Graph) HasRecurrence() bool {
	for _, e := range g.Edges {
		if e.Dist > 0 {
			return true
		}
	}
	return false
}

// CarriedEdges returns the loop-carried edges of the graph.
func (g *Graph) CarriedEdges() []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if e.Dist > 0 {
			out = append(out, e)
		}
	}
	return out
}

func ceilDiv(a, b int) int {
	if b == 0 {
		return 0
	}
	return (a + b - 1) / b
}

// OpClassCounts tallies body ops per functional-unit class; the scheduler,
// the heuristics and the feature extractor all use it.
func OpClassCounts(l *ir.Loop, m *machine.Desc) [machine.NumUnitKinds]int {
	var counts [machine.NumUnitKinds]int
	for _, op := range l.Body {
		counts[m.UnitFor(op.Code)]++
	}
	return counts
}
