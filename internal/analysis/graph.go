// Package analysis builds the dependence graph of a loop body and derives
// the quantities everything downstream needs: critical paths, recurrence and
// resource bounds on the initiation interval, dependence heights, memory
// dependence distances and the structural statistics that feed the
// 38-element feature vector.
package analysis

import (
	"metaopt/internal/ir"
	"metaopt/internal/machine"
)

// EdgeKind classifies dependence edges.
type EdgeKind int

// Dependence edge kinds.
const (
	EdgeData EdgeKind = iota // register data flow (including predicates)
	EdgeMem                  // memory ordering (RAW/WAR/WAW through arrays)
	EdgeCtrl                 // control ordering (exits, calls, back edge)
)

// String names the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeData:
		return "data"
	case EdgeMem:
		return "mem"
	case EdgeCtrl:
		return "ctrl"
	}
	return "edge?"
}

// Edge is a dependence From→To: To may issue no earlier than Lat cycles
// after From, Dist iterations later.
type Edge struct {
	From, To int
	Lat      int
	Dist     int
	Kind     EdgeKind
}

// Graph is the dependence graph of one loop body on one machine.
type Graph struct {
	Loop  *ir.Loop
	Mach  *machine.Desc
	Ops   []*ir.Op
	Index map[*ir.Op]int
	Out   [][]Edge
	In    [][]Edge
	Edges []Edge
}

// Build constructs the dependence graph of l for machine m.
func Build(l *ir.Loop, m *machine.Desc) *Graph {
	g := &Graph{
		Loop:  l,
		Mach:  m,
		Ops:   l.Body,
		Index: make(map[*ir.Op]int, len(l.Body)),
		Out:   make([][]Edge, len(l.Body)),
		In:    make([][]Edge, len(l.Body)),
	}
	for i, op := range l.Body {
		g.Index[op] = i
	}
	g.addDataEdges()
	g.addMemEdges()
	g.addCtrlEdges()
	return g
}

func (g *Graph) addEdge(e Edge) {
	g.Edges = append(g.Edges, e)
	g.Out[e.From] = append(g.Out[e.From], e)
	g.In[e.To] = append(g.In[e.To], e)
}

func (g *Graph) addDataEdges() {
	for to, op := range g.Ops {
		for _, a := range op.Args {
			from, ok := g.Index[a.Op]
			if !ok {
				continue // parameter or constant: always available
			}
			g.addEdge(Edge{From: from, To: to, Lat: g.Mach.Latency(a.Op), Dist: a.Dist, Kind: EdgeData})
		}
	}
}

// addMemEdges adds ordering edges between memory operations. Two affine
// references to the same array with equal strides conflict at an exact
// iteration distance; other same-array pairs and — unless the loop is
// known alias-free — cross-array store pairs are handled conservatively.
func (g *Graph) addMemEdges() {
	var mems []int
	for i, op := range g.Ops {
		if op.Code.IsMem() {
			mems = append(mems, i)
		}
	}
	for ai := 0; ai < len(mems); ai++ {
		for bi := ai + 1; bi < len(mems); bi++ {
			g.memPair(mems[ai], mems[bi])
		}
	}
}

// memPair adds dependence edges between the earlier op e and later op l
// (program order). At least one must be a store for a dependence to exist.
func (g *Graph) memPair(e, l int) {
	eo, lo := g.Ops[e], g.Ops[l]
	if eo.Code == ir.OpLoad && lo.Code == ir.OpLoad {
		return
	}
	em, lm := eo.Mem, lo.Mem
	if em.Array != lm.Array {
		// Distinct arrays: independent when alias-free; otherwise keep
		// program order within the iteration (C without restrict).
		if !g.Loop.NoAlias {
			g.addEdge(Edge{From: e, To: l, Lat: g.aliasLat(eo, lo), Dist: 0, Kind: EdgeMem})
		}
		return
	}
	if em.Indirect || lm.Indirect {
		// Unknown addresses into the same array: serialize within and
		// across iterations.
		g.addEdge(Edge{From: e, To: l, Lat: g.aliasLat(eo, lo), Dist: 0, Kind: EdgeMem})
		g.addEdge(Edge{From: l, To: e, Lat: g.aliasLat(lo, eo), Dist: 1, Kind: EdgeMem})
		return
	}
	if em.Stride == lm.Stride {
		overlap0 := false
		if em.Stride == 0 {
			if rangesOverlap(em, lm) {
				g.addEdge(Edge{From: e, To: l, Lat: g.aliasLat(eo, lo), Dist: 0, Kind: EdgeMem})
				g.addEdge(Edge{From: l, To: e, Lat: g.aliasLat(lo, eo), Dist: 1, Kind: EdgeMem})
			}
			return
		}
		// Conflict distances, considering every element either wide access
		// covers: stride·d = (eOff+ke) − (lOff+kl).
		minFwd, minBwd := 0, 0 // 0 = none found
		for ke := 0; ke < em.SpanElems(); ke++ {
			for kl := 0; kl < lm.SpanElems(); kl++ {
				diff := em.Offset + ke - (lm.Offset + kl)
				if diff%em.Stride != 0 {
					continue
				}
				d := diff / em.Stride
				switch {
				case d == 0:
					overlap0 = true
				case d > 0:
					if minFwd == 0 || d < minFwd {
						minFwd = d
					}
				default:
					if minBwd == 0 || -d < minBwd {
						minBwd = -d
					}
				}
			}
		}
		if overlap0 {
			g.addEdge(Edge{From: e, To: l, Lat: g.aliasLat(eo, lo), Dist: 0, Kind: EdgeMem})
		}
		if minFwd > 0 {
			g.addEdge(Edge{From: e, To: l, Lat: g.aliasLat(eo, lo), Dist: minFwd, Kind: EdgeMem})
		}
		if minBwd > 0 {
			g.addEdge(Edge{From: l, To: e, Lat: g.aliasLat(lo, eo), Dist: minBwd, Kind: EdgeMem})
		}
		return
	}
	// Same array, different strides: conservative serialization.
	g.addEdge(Edge{From: e, To: l, Lat: g.aliasLat(eo, lo), Dist: 0, Kind: EdgeMem})
	g.addEdge(Edge{From: l, To: e, Lat: g.aliasLat(lo, eo), Dist: 1, Kind: EdgeMem})
}

// rangesOverlap reports whether two stride-0 references touch a common
// element.
func rangesOverlap(a, b *ir.MemRef) bool {
	return a.Offset < b.Offset+b.SpanElems() && b.Offset < a.Offset+a.SpanElems()
}

// aliasLat returns the ordering latency from one memory op to another:
// store→load forwards in one cycle, store→store keeps a cycle apart, and a
// load→store anti-dependence may share a cycle.
func (g *Graph) aliasLat(from, to *ir.Op) int {
	if from.Code == ir.OpLoad {
		return 0 // WAR
	}
	return 1 // RAW through memory (forwarded) or WAW
}

// addCtrlEdges serializes side exits and calls against the ops around them
// and anchors the back-edge branch after everything else.
func (g *Graph) addCtrlEdges() {
	n := len(g.Ops)
	brIdx := -1
	for i, op := range g.Ops {
		if op.Code == ir.OpBr {
			brIdx = i
		}
	}
	for i, op := range g.Ops {
		switch op.Code {
		case ir.OpCondBr:
			// Nothing after a side exit may move above it: its effects must
			// not happen if the loop exits.
			for j := i + 1; j < n; j++ {
				if g.Ops[j].Code == ir.OpBr {
					continue // the back edge is anchored separately
				}
				g.addEdge(Edge{From: i, To: j, Lat: 0, Dist: 0, Kind: EdgeCtrl})
			}
		case ir.OpCall:
			// Calls are scheduling barriers for memory and other calls.
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				other := g.Ops[j]
				if !other.Code.IsMem() && other.Code != ir.OpCall && other.Code != ir.OpCondBr {
					continue
				}
				if j < i {
					g.addEdge(Edge{From: j, To: i, Lat: 1, Dist: 0, Kind: EdgeCtrl})
				} else {
					g.addEdge(Edge{From: i, To: j, Lat: g.Mach.CallCycles, Dist: 0, Kind: EdgeCtrl})
				}
			}
		}
	}
	if brIdx >= 0 {
		for i := range g.Ops {
			if i != brIdx {
				g.addEdge(Edge{From: i, To: brIdx, Lat: 0, Dist: 0, Kind: EdgeCtrl})
			}
		}
	}
}
