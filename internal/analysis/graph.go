// Package analysis builds the dependence graph of a loop body and derives
// the quantities everything downstream needs: critical paths, recurrence and
// resource bounds on the initiation interval, dependence heights, memory
// dependence distances and the structural statistics that feed the
// 38-element feature vector.
package analysis

import (
	"metaopt/internal/ir"
	"metaopt/internal/machine"
)

// EdgeKind classifies dependence edges.
type EdgeKind int

// Dependence edge kinds.
const (
	EdgeData EdgeKind = iota // register data flow (including predicates)
	EdgeMem                  // memory ordering (RAW/WAR/WAW through arrays)
	EdgeCtrl                 // control ordering (exits, calls, back edge)
)

// String names the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeData:
		return "data"
	case EdgeMem:
		return "mem"
	case EdgeCtrl:
		return "ctrl"
	}
	return "edge?"
}

// Edge is a dependence From→To: To may issue no earlier than Lat cycles
// after From, Dist iterations later.
type Edge struct {
	From, To int
	Lat      int
	Dist     int
	Kind     EdgeKind
}

// Graph is the dependence graph of one loop body on one machine.
type Graph struct {
	Loop  *ir.Loop
	Mach  *machine.Desc
	Ops   []*ir.Op
	Out   [][]Edge
	In    [][]Edge
	Edges []Edge

	// idx maps op ID → body position during construction (-1 for pseudo
	// ops). IDs are dense per loop, so a slice beats a pointer-keyed map.
	idx []int32
}

// Build constructs the dependence graph of l for machine m.
func Build(l *ir.Loop, m *machine.Desc) *Graph {
	g := &Graph{
		Loop: l,
		Mach: m,
		Ops:  l.Body,
		idx:  make([]int32, l.MaxID()),
	}
	for i := range g.idx {
		g.idx[i] = -1
	}
	for i, op := range l.Body {
		g.idx[op.ID] = int32(i)
	}
	g.addDataEdges()
	g.addMemEdges()
	g.addCtrlEdges()
	g.buildAdjacency()
	return g
}

// addEdge records an edge; adjacency lists are built in one pass at the
// end (buildAdjacency), so edge collection only grows a single slice.
func (g *Graph) addEdge(e Edge) {
	g.Edges = append(g.Edges, e)
}

// buildAdjacency materializes Out and In as views into two flat edge
// slabs, sized exactly. Per-list edge order matches insertion order, the
// same order incremental appends produced.
func (g *Graph) buildAdjacency() {
	n := len(g.Ops)
	g.Out = make([][]Edge, n)
	g.In = make([][]Edge, n)
	if len(g.Edges) == 0 {
		return
	}
	outDeg := make([]int32, n)
	inDeg := make([]int32, n)
	for _, e := range g.Edges {
		outDeg[e.From]++
		inDeg[e.To]++
	}
	outSlab := make([]Edge, len(g.Edges))
	inSlab := make([]Edge, len(g.Edges))
	var outOff, inOff int32
	for i := 0; i < n; i++ {
		g.Out[i] = outSlab[outOff:outOff:outOff+outDeg[i]]
		g.In[i] = inSlab[inOff:inOff:inOff+inDeg[i]]
		outOff += outDeg[i]
		inOff += inDeg[i]
	}
	for _, e := range g.Edges {
		g.Out[e.From] = append(g.Out[e.From], e)
		g.In[e.To] = append(g.In[e.To], e)
	}
}

func (g *Graph) addDataEdges() {
	for to, op := range g.Ops {
		for _, a := range op.Args {
			if a.Op.ID >= len(g.idx) {
				continue
			}
			from := g.idx[a.Op.ID]
			if from < 0 {
				continue // parameter or constant: always available
			}
			g.addEdge(Edge{From: int(from), To: to, Lat: g.Mach.Latency(a.Op), Dist: a.Dist, Kind: EdgeData})
		}
	}
}

// addMemEdges adds ordering edges between memory operations. Two affine
// references to the same array with equal strides conflict at an exact
// iteration distance; other same-array pairs and — unless the loop is
// known alias-free — cross-array store pairs are handled conservatively.
func (g *Graph) addMemEdges() {
	var mems []int
	for i, op := range g.Ops {
		if op.Code.IsMem() {
			mems = append(mems, i)
		}
	}
	for ai := 0; ai < len(mems); ai++ {
		for bi := ai + 1; bi < len(mems); bi++ {
			g.memPair(mems[ai], mems[bi])
		}
	}
}

// memPair adds dependence edges between the earlier op e and later op l
// (program order). At least one must be a store for a dependence to exist.
func (g *Graph) memPair(e, l int) {
	eo, lo := g.Ops[e], g.Ops[l]
	if eo.Code == ir.OpLoad && lo.Code == ir.OpLoad {
		return
	}
	em, lm := eo.Mem, lo.Mem
	if em.Array != lm.Array {
		// Distinct arrays: independent when alias-free; otherwise keep
		// program order within the iteration (C without restrict).
		if !g.Loop.NoAlias {
			g.addEdge(Edge{From: e, To: l, Lat: g.aliasLat(eo, lo), Dist: 0, Kind: EdgeMem})
		}
		return
	}
	if em.Indirect || lm.Indirect {
		// Unknown addresses into the same array: serialize within and
		// across iterations.
		g.addEdge(Edge{From: e, To: l, Lat: g.aliasLat(eo, lo), Dist: 0, Kind: EdgeMem})
		g.addEdge(Edge{From: l, To: e, Lat: g.aliasLat(lo, eo), Dist: 1, Kind: EdgeMem})
		return
	}
	if em.Stride == lm.Stride {
		overlap0 := false
		if em.Stride == 0 {
			if rangesOverlap(em, lm) {
				g.addEdge(Edge{From: e, To: l, Lat: g.aliasLat(eo, lo), Dist: 0, Kind: EdgeMem})
				g.addEdge(Edge{From: l, To: e, Lat: g.aliasLat(lo, eo), Dist: 1, Kind: EdgeMem})
			}
			return
		}
		// Conflict distances, considering every element either wide access
		// covers: stride·d = (eOff+ke) − (lOff+kl).
		minFwd, minBwd := 0, 0 // 0 = none found
		for ke := 0; ke < em.SpanElems(); ke++ {
			for kl := 0; kl < lm.SpanElems(); kl++ {
				diff := em.Offset + ke - (lm.Offset + kl)
				if diff%em.Stride != 0 {
					continue
				}
				d := diff / em.Stride
				switch {
				case d == 0:
					overlap0 = true
				case d > 0:
					if minFwd == 0 || d < minFwd {
						minFwd = d
					}
				default:
					if minBwd == 0 || -d < minBwd {
						minBwd = -d
					}
				}
			}
		}
		if overlap0 {
			g.addEdge(Edge{From: e, To: l, Lat: g.aliasLat(eo, lo), Dist: 0, Kind: EdgeMem})
		}
		if minFwd > 0 {
			g.addEdge(Edge{From: e, To: l, Lat: g.aliasLat(eo, lo), Dist: minFwd, Kind: EdgeMem})
		}
		if minBwd > 0 {
			g.addEdge(Edge{From: l, To: e, Lat: g.aliasLat(lo, eo), Dist: minBwd, Kind: EdgeMem})
		}
		return
	}
	// Same array, different strides: conservative serialization.
	g.addEdge(Edge{From: e, To: l, Lat: g.aliasLat(eo, lo), Dist: 0, Kind: EdgeMem})
	g.addEdge(Edge{From: l, To: e, Lat: g.aliasLat(lo, eo), Dist: 1, Kind: EdgeMem})
}

// rangesOverlap reports whether two stride-0 references touch a common
// element.
func rangesOverlap(a, b *ir.MemRef) bool {
	return a.Offset < b.Offset+b.SpanElems() && b.Offset < a.Offset+a.SpanElems()
}

// aliasLat returns the ordering latency from one memory op to another:
// store→load forwards in one cycle, store→store keeps a cycle apart, and a
// load→store anti-dependence may share a cycle.
func (g *Graph) aliasLat(from, to *ir.Op) int {
	if from.Code == ir.OpLoad {
		return 0 // WAR
	}
	return 1 // RAW through memory (forwarded) or WAW
}

// addCtrlEdges serializes side exits and calls against the ops around them
// and anchors the back-edge branch after everything else.
func (g *Graph) addCtrlEdges() {
	n := len(g.Ops)
	brIdx := -1
	for i, op := range g.Ops {
		if op.Code == ir.OpBr {
			brIdx = i
		}
	}
	for i, op := range g.Ops {
		switch op.Code {
		case ir.OpCondBr:
			// Nothing after a side exit may move above it: its effects must
			// not happen if the loop exits.
			for j := i + 1; j < n; j++ {
				if g.Ops[j].Code == ir.OpBr {
					continue // the back edge is anchored separately
				}
				g.addEdge(Edge{From: i, To: j, Lat: 0, Dist: 0, Kind: EdgeCtrl})
			}
		case ir.OpCall:
			// Calls are scheduling barriers for memory and other calls.
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				other := g.Ops[j]
				if !other.Code.IsMem() && other.Code != ir.OpCall && other.Code != ir.OpCondBr {
					continue
				}
				if j < i {
					g.addEdge(Edge{From: j, To: i, Lat: 1, Dist: 0, Kind: EdgeCtrl})
				} else {
					g.addEdge(Edge{From: i, To: j, Lat: g.Mach.CallCycles, Dist: 0, Kind: EdgeCtrl})
				}
			}
		}
	}
	if brIdx >= 0 {
		for i := range g.Ops {
			if i != brIdx {
				g.addEdge(Edge{From: i, To: brIdx, Lat: 0, Dist: 0, Kind: EdgeCtrl})
			}
		}
	}
}
