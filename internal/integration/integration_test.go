// Package integration_test stress-tests cross-package invariants over
// randomly generated corpus loops: every loop must survive unrolling at
// every factor, produce verifiable schedules in both modes, and price
// consistently in the simulator.
package integration_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"metaopt/internal/analysis"
	"metaopt/internal/ir"
	"metaopt/internal/loopgen"
	"metaopt/internal/machine"
	"metaopt/internal/regpress"
	"metaopt/internal/sched"
	"metaopt/internal/sim"
	"metaopt/internal/swp"
	"metaopt/internal/transform"
)

// loops returns a deterministic bag of generated loops.
func loops(t testing.TB, seed int64) []*ir.Loop {
	t.Helper()
	c, err := loopgen.Generate(loopgen.Options{Seed: seed, LoopsScale: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	var out []*ir.Loop
	for _, b := range c.Benchmarks {
		out = append(out, b.Loops...)
	}
	return out
}

func TestUnrollPreservesValidity(t *testing.T) {
	for _, l := range loops(t, 21) {
		for u := 1; u <= transform.MaxFactor; u++ {
			out, info, err := transform.Unroll(l, u)
			if err != nil {
				t.Fatalf("%s/%s u=%d: %v", l.Benchmark, l.Name, u, err)
			}
			if err := out.Validate(); err != nil {
				t.Fatalf("%s/%s u=%d: %v", l.Benchmark, l.Name, u, err)
			}
			if info.U != u {
				t.Fatalf("info.U = %d", info.U)
			}
			// The unrolled body never has more than u copies of the
			// original ops plus the per-copy IV materializations.
			if max := u*l.NumOps() + u + 2; out.NumOps() > max {
				t.Fatalf("%s u=%d: %d ops exceeds bound %d", l.Name, u, out.NumOps(), max)
			}
		}
	}
}

func TestListSchedulesVerify(t *testing.T) {
	m := machine.Itanium2()
	for _, l := range loops(t, 22) {
		for _, u := range []int{1, 3, 8} {
			out, _, err := transform.Unroll(l, u)
			if err != nil {
				t.Fatal(err)
			}
			g := analysis.Build(out, m)
			s := sched.List(g)
			if err := s.Verify(); err != nil {
				t.Fatalf("%s/%s u=%d: %v", l.Benchmark, l.Name, u, err)
			}
			if s.Period < s.Length {
				t.Fatalf("%s u=%d: period %d < length %d", l.Name, u, s.Period, s.Length)
			}
			p := regpress.Analyze(s)
			if p.MaxLiveInt < 0 || p.MaxLiveFP < 0 || p.SpillCycles < 0 {
				t.Fatalf("%s u=%d: negative pressure %+v", l.Name, u, p)
			}
		}
	}
}

func TestModuloSchedulesVerify(t *testing.T) {
	m := machine.Itanium2()
	for _, l := range loops(t, 23) {
		if l.EarlyExit || hasCall(l) {
			continue // the pipeliner refuses these, as ORC does
		}
		for _, u := range []int{1, 2, 4} {
			out, _, err := transform.Unroll(l, u)
			if err != nil {
				t.Fatal(err)
			}
			g := analysis.Build(out, m)
			r, err := swp.Schedule(g, g.MII())
			if err != nil {
				t.Fatalf("%s/%s u=%d: %v", l.Benchmark, l.Name, u, err)
			}
			if err := r.Verify(g); err != nil {
				t.Fatalf("%s/%s u=%d: %v", l.Benchmark, l.Name, u, err)
			}
			// The achieved II respects the resource bound.
			rn, rd := g.ResMII()
			if r.II*rd < rn {
				t.Fatalf("%s u=%d: II %d beats ResMII %d/%d", l.Name, u, r.II, rn, rd)
			}
		}
	}
}

func TestSimulatorConsistency(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Noise = 0
	cfg.BiasNoise = 0
	tm := sim.NewTimer(cfg)
	for _, l := range loops(t, 24) {
		var prev int64
		for u := 1; u <= transform.MaxFactor; u++ {
			c, err := tm.Cycles(l, u)
			if err != nil {
				t.Fatalf("%s/%s u=%d: %v", l.Benchmark, l.Name, u, err)
			}
			if c <= 0 {
				t.Fatalf("%s u=%d: %d cycles", l.Name, u, c)
			}
			// No factor should be implausibly cheap relative to u=1: the
			// work per iteration bounds the possible speedup.
			if u > 1 && prev > 0 && c*20 < prev {
				t.Fatalf("%s u=%d: %d vs u1 %d — speedup beyond plausibility", l.Name, u, c, prev)
			}
			if u == 1 {
				prev = c
			}
		}
	}
}

func TestMeasurementDeterminismAcrossTimers(t *testing.T) {
	ls := loops(t, 25)
	cfgA := sim.DefaultConfig()
	cfgB := sim.DefaultConfig()
	a := sim.NewTimer(cfgA)
	b := sim.NewTimer(cfgB)
	rngA := rand.New(rand.NewSource(9))
	rngB := rand.New(rand.NewSource(9))
	for _, l := range ls[:20] {
		for u := 1; u <= 4; u++ {
			ca, err := a.Measure(l, u, rngA)
			if err != nil {
				t.Fatal(err)
			}
			cb, err := b.Measure(l, u, rngB)
			if err != nil {
				t.Fatal(err)
			}
			if ca != cb {
				t.Fatalf("%s u=%d: %d vs %d — measurement not reproducible", l.Name, u, ca, cb)
			}
		}
	}
}

// TestScheduleLengthMonotonicity: adding more copies never shortens the
// absolute schedule (though per-iteration cost falls).
func TestScheduleLengthMonotonicity(t *testing.T) {
	m := machine.Itanium2()
	f := func(seed int64) bool {
		ls := loops(t, 26)
		l := ls[int(uint64(seed)%uint64(len(ls)))]
		u1, _, err := transform.Unroll(l, 2)
		if err != nil {
			return false
		}
		u2, _, err := transform.Unroll(l, 8)
		if err != nil {
			return false
		}
		s1 := sched.List(analysis.Build(u1, m))
		s2 := sched.List(analysis.Build(u2, m))
		return s2.Length >= s1.Length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func hasCall(l *ir.Loop) bool {
	return l.Count(func(o *ir.Op) bool { return o.Code == ir.OpCall }) > 0
}
